#!/usr/bin/env bash
# E28 sweep: open-loop throughput-vs-p99 knee curves for the serving tier.
#
# Drives one plserve (n=20k Chung-Lu power-law graph, admission + shedding
# armed at depths the sweep load cannot trip) with cmd/plload open-loop runs
# across an offered-rate ladder, for uniform vs zipf(s=1.1) pair skew and
# batch 64 vs 4096 — four curves. A final pair of runs against a deliberately
# under-provisioned (-shed-depth 4) server shows overload degrading into shed
# frames rather than errors. Rows append to the JSON file given as $1
# (default: tracked BENCH_serving.json at the repo root).
#
# Takes ~2 minutes on the reference container. Usage: scripts/e28_sweep.sh [out.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_serving.json}"
case "$out" in /*) ;; *) out="$PWD/$out" ;; esac
work=$(mktemp -d)
trap 'kill "${serve_pid:-}" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$work"' EXIT

echo "== build + generate (chunglu n=20000 alpha=2.5 seed=17)"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/plgen ./cmd/pllabel ./cmd/plserve ./cmd/plload
"$work/bin/plgen" -model chunglu -n 20000 -alpha 2.5 -wmin 2 -seed 17 -o "$work/graph.el" >/dev/null
"$work/bin/pllabel" -scheme powerlaw -in "$work/graph.el" -o "$work/labels.pllb" >/dev/null

start_server() { # start_server <shed-depth>
    "$work/bin/plserve" -labels "$work/labels.pllb" -addr 127.0.0.1:0 \
        -max-conns 64 -shed-depth "$1" >"$work/serve.log" 2>&1 &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^plserve: listening on //p' "$work/serve.log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$work/serve.log"; echo "plserve never came up"; exit 1; }
}
stop_server() { kill -TERM "$serve_pid"; wait "$serve_pid" || true; serve_pid=""; }

run() { # run <label> <extra plload args...>
    local label=$1; shift
    "$work/bin/plload" -addr "$addr" -duration 3s -warmup 500ms \
        -graph "$work/graph.el" -zipf-s 1.1 -seed 5 \
        -json "$out" -label "$label" "$@" \
        | sed -n 's/^plload: /  '"$label"': /p'
}

echo "== knee sweep (server shed-depth 256: unarmed at this worker count)"
start_server 256
for dist in uniform zipf; do
    for rate in 5000 15000 30000 45000 60000 75000 90000; do
        run "e28_${dist}_b64_r${rate}" -rate "$rate" -conns 4 -workers 8 \
            -batch 64 -pair-dist "$dist"
    done
    for rate in 250 750 1500 2250 3000; do
        run "e28_${dist}_b4096_r${rate}" -rate "$rate" -conns 4 -workers 8 \
            -batch 4096 -pair-dist "$dist"
    done
done
stop_server

echo "== overload (server shed-depth 4: pipelined bursts trip the latch)"
start_server 4
run e28_overload_b64 -conns 8 -workers 48 -batch 64 -pair-dist zipf
run e28_overload_b4096 -conns 8 -workers 48 -batch 4096 -pair-dist zipf
stop_server

echo "== wrote $(python3 -c "import json,sys; print(len(json.load(open('$out'))))" ) rows to $out"
