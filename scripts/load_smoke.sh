#!/usr/bin/env bash
# Loopback load-harness smoke test: generate + label a small power-law graph,
# serve it with plserve (admission + shedding armed), and drive it with a
# ~5 second plload open-loop run. Checks the harness achieves a nonzero rate,
# appends a well-formed BENCH_serving.json row, and that a deliberately
# under-provisioned server sheds instead of erroring. The CI-run complement
# to the in-process tests in cmd/plload and internal/adjserve.
#
# Usage: scripts/load_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
trap 'kill "${serve_pid:-}" "${route_pid:-}" ${shard_pids:-} 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$work/bin" "$work"/*.tmp' EXIT

echo "== build"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/plgen ./cmd/pllabel ./cmd/plserve ./cmd/plload ./cmd/plroute

echo "== generate + label"
"$work/bin/plgen" -model chunglu -n 5000 -alpha 2.5 -wmin 2 -seed 7 -o "$work/graph.el"
"$work/bin/pllabel" -scheme powerlaw -in "$work/graph.el" -o "$work/labels.pllb"

echo "== serve (admission cap + shedding armed, admin plane on)"
"$work/bin/plserve" -labels "$work/labels.pllb" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
    -max-conns 64 -shed-depth 128 >"$work/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log"; echo "plserve died"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/serve.log"; echo "plserve never became ready"; exit 1; }
admin=$(sed -n 's/.*msg=admin addr=//p' "$work/serve.log")
echo "   plserve up at $addr, admin at $admin (pid $serve_pid)"

echo "== open-loop run: 2s at 1500 frames/s, zipf-skewed pairs, mixed batches"
"$work/bin/plload" -addr "$addr" -rate 1500 -duration 2s -warmup 500ms \
    -conns 2 -workers 4 -batch "64:0.9,1024:0.1" \
    -pair-dist zipf -zipf-s 1.1 -graph "$work/graph.el" -seed 3 \
    -json "$work/BENCH_serving.json" -label ci_smoke_open | tee "$work/load.log"

achieved=$(sed -n 's/.*achieved=\([0-9.]*\).*/\1/p' "$work/load.log" | head -1)
[ -n "$achieved" ] || { echo "no achieved rate in plload output"; exit 1; }
awk -v a="$achieved" 'BEGIN { exit (a > 0) ? 0 : 1 }' \
    || { echo "achieved rate $achieved, want > 0"; exit 1; }
grep -q " err=0 " "$work/load.log" \
    || { echo "error frames against a healthy server"; cat "$work/load.log"; exit 1; }
echo "   achieved $achieved frames/s with zero error frames"

echo "== closed-loop chaos run: slow client + mid-run kills (redial jitter path)"
"$work/bin/plload" -addr "$addr" -duration 1500ms -warmup 300ms \
    -conns 3 -workers 2 -batch 64 -slow-conns 1 -slow-bps 65536 -kill-every 400ms \
    -json "$work/BENCH_serving.json" -label ci_smoke_chaos | tee "$work/chaos.log"
grep -q "chaos:" "$work/chaos.log" || { echo "no chaos summary line"; exit 1; }

echo "== BENCH_serving.json: two well-formed rows"
python3 - "$work/BENCH_serving.json" <<'PY'
import json, sys
rows = json.load(open(sys.argv[1]))
assert isinstance(rows, list) and len(rows) == 2, f"want 2 rows, got {len(rows)}"
for r in rows:
    for key in ("label", "git_rev", "mode", "offered_qps", "achieved_qps",
                "frames_sent", "frames_ok", "p50_us", "p99_us"):
        assert key in r, f"row missing {key}: {r}"
open_row = rows[0]
assert open_row["label"] == "ci_smoke_open" and open_row["mode"] == "open"
assert open_row["frames_ok"] > 0 and open_row["achieved_qps"] > 0
assert open_row["p99_us"] >= open_row["p50_us"] > 0
chaos = rows[1]
assert chaos["label"] == "ci_smoke_chaos" and chaos["mode"] == "closed"
assert chaos["slow_conns"] == 1
print(f"   rows OK: open achieved={open_row['achieved_qps']:.0f}/s "
      f"p99={open_row['p99_us']}us; chaos ok={chaos['frames_ok']}")
PY

echo "== shedding: a depth-1 server under concurrency refuses, never errors"
kill -TERM "$serve_pid"; wait "$serve_pid" || true; serve_pid=""
"$work/bin/plserve" -labels "$work/labels.pllb" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
    -shed-depth 1 >"$work/serve-shed.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve-shed.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve-shed.log"; echo "plserve (shed) died"; exit 1; }
    sleep 0.1
done
admin=$(sed -n 's/.*msg=admin addr=//p' "$work/serve-shed.log")
"$work/bin/plload" -addr "$addr" -duration 1s -warmup 200ms \
    -conns 4 -workers 8 -batch 1024 | tee "$work/shed.log"
shed=$(sed -n 's/.* shed=\([0-9]*\).*/\1/p' "$work/shed.log" | head -1)
errs=$(sed -n 's/.* err=\([0-9]*\) .*/\1/p' "$work/shed.log" | head -1)
[ "${shed:-0}" -gt 0 ] || { echo "depth-1 server under 32-way load shed nothing"; exit 1; }
[ "${errs:-1}" = 0 ] || { echo "shedding produced $errs error frames, want 0"; exit 1; }
curl -fsS "http://$admin/metrics" >"$work/metrics.txt"
metric() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$work/metrics.txt"; }
sf=$(metric adjserve_shed_frames_total) || { echo "no adjserve_shed_frames_total in scrape"; exit 1; }
[ "$sf" -gt 0 ] || { echo "adjserve_shed_frames_total=$sf, want > 0"; exit 1; }
se=$(metric adjserve_shed_events_total) || { echo "no adjserve_shed_events_total in scrape"; exit 1; }
[ "$se" -gt 0 ] || { echo "adjserve_shed_events_total=$se, want > 0"; exit 1; }
echo "   shed $shed frames (metrics: frames=$sf events=$se), zero errors"

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "plserve (shed) exited non-zero"; cat "$work/serve-shed.log"; exit 1; }
serve_pid=""


echo "== tracing: 3-shard fleet behind plroute, sampled end-to-end attribution"
"$work/bin/pllabel" -scheme powerlaw -layout degree -in "$work/graph.el" \
    -o "$work/labels-sh.pllb" -shards 3 >"$work/label-sh.log"
shard_addrs=""
shard_pids=""
for i in 0 1 2; do
    "$work/bin/plserve" -labels "$work/labels-sh.pllb.shard$i" -addr 127.0.0.1:0 \
        -trace-sample 4 >"$work/serve-tr$i.log" 2>&1 &
    shard_pids="$shard_pids $!"
done
for i in 0 1 2; do
    saddr=""
    for _ in $(seq 1 100); do
        saddr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve-tr$i.log")
        [ -n "$saddr" ] && break
        sleep 0.1
    done
    [ -n "$saddr" ] || { cat "$work/serve-tr$i.log"; echo "traced shard $i never became ready"; exit 1; }
    shard_addrs="$shard_addrs,$saddr"
done
shard_addrs="${shard_addrs#,}"
"$work/bin/plroute" -shards "$shard_addrs" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
    -trace-sample 4 -slowlog-ms 1 >"$work/route.log" 2>&1 &
route_pid=$!
raddr=""
for _ in $(seq 1 100); do
    raddr=$(sed -n 's/.*msg=listening addr=//p' "$work/route.log")
    [ -n "$raddr" ] && break
    kill -0 "$route_pid" 2>/dev/null || { cat "$work/route.log"; echo "plroute died"; exit 1; }
    sleep 0.1
done
[ -n "$raddr" ] || { cat "$work/route.log"; echo "plroute never became ready"; exit 1; }
radmin=$(sed -n 's/.*msg=admin addr=//p' "$work/route.log")
# No -json: the BENCH file must keep exactly the two rows asserted above.
"$work/bin/plload" -addr "$raddr" -duration 1500ms -warmup 300ms \
    -conns 2 -workers 2 -batch 256 -trace-sample 8 | tee "$work/trace.log"
grep -q "trace: per-stage latency attribution" "$work/trace.log" \
    || { echo "no attribution table in plload output"; exit 1; }
cover=$(sed -n 's/.*trace: stage sum covers \([0-9.]*\)%.*/\1/p' "$work/trace.log" | head -1)
[ -n "$cover" ] || { echo "no coverage line in plload output"; exit 1; }
awk -v c="$cover" 'BEGIN { exit (c >= 95.0 && c <= 101.0) ? 0 : 1 }' \
    || { echo "stage sum covers $cover% of e2e, want within 5%"; exit 1; }
curl -fsS "http://$radmin/debug/traces" >"$work/traces.json"
python3 - "$work/traces.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
traces = doc.get("traces", [])
assert traces, "router /debug/traces is empty after a sampled run"
tr = traces[0]
assert tr["trace_id"] and tr["stages"], f"trace missing id/stages: {tr}"
hops = {s["hop"] for s in tr["stages"]}
assert "local" in hops, f"no local-hop stages in {sorted(hops)}"
print(f"   /debug/traces OK: {len(traces)} traces, newest has "
      f"{len(tr['stages'])} stages across hops {sorted(hops)}")
PY
curl -fsS "http://$radmin/debug/slowlog" >"$work/slowlog.json"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$work/slowlog.json" \
    || { echo "slowlog endpoint returned bad JSON"; exit 1; }
echo "   traced run OK: coverage=$cover%, slowlog artifact captured"

kill -TERM "$route_pid"
wait "$route_pid" || { echo "plroute exited non-zero"; cat "$work/route.log"; exit 1; }
route_pid=""
for p in $shard_pids; do kill -TERM "$p"; done
for p in $shard_pids; do wait "$p" || { echo "traced shard $p exited non-zero"; exit 1; }; done
shard_pids=""

cp "$work/BENCH_serving.json" "${BENCH_OUT:-$work/BENCH_serving.json}" 2>/dev/null || true
cp "$work/slowlog.json" "${SLOWLOG_OUT:-$work/slowlog.json}" 2>/dev/null || true
echo "== load smoke OK"
