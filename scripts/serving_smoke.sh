#!/usr/bin/env bash
# Loopback end-to-end smoke test for the serving tier: generate a power-law
# graph, label it, serve the store with plserve (mmap path), and check that
# plquery -remote produces byte-identical output to plquery -labels on the
# same query stream. Exercises the real binaries over real TCP — the CI-run
# complement to the in-process tests in internal/adjserve.
#
# Usage: scripts/serving_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
trap 'kill "${serve_pid:-}" 2>/dev/null || true; wait "${serve_pid:-}" 2>/dev/null || true; rm -rf "$work/bin" "$work"/*.tmp' EXIT

echo "== build"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/plgen ./cmd/pllabel ./cmd/plserve ./cmd/plquery

echo "== generate + label"
"$work/bin/plgen" -model chunglu -n 5000 -alpha 2.5 -wmin 2 -seed 7 -o "$work/graph.el"
"$work/bin/pllabel" -scheme powerlaw -in "$work/graph.el" -o "$work/labels.pllb"

echo "== serve (port 0 = kernel-assigned, admin plane on)"
"$work/bin/plserve" -labels "$work/labels.pllb" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 >"$work/serve.log" 2>&1 &
serve_pid=$!
# The daemon prints "plserve: listening on HOST:PORT" once ready (and
# "plserve: admin on HOST:PORT" for the admin endpoint).
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^plserve: listening on //p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log"; echo "plserve died"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/serve.log"; echo "plserve never became ready"; exit 1; }
admin=$(sed -n 's/^plserve: admin on //p' "$work/serve.log")
[ -n "$admin" ] || { cat "$work/serve.log"; echo "no admin address line"; exit 1; }
echo "   plserve up at $addr, admin at $admin (pid $serve_pid)"

echo "== admin: health + readiness"
curl -fsS "http://$admin/healthz" | grep -qx "ok" || { echo "/healthz not ok"; exit 1; }
curl -fsS "http://$admin/readyz" | grep -qx "ok" || { echo "/readyz not ok while serving"; exit 1; }

echo "== query: remote vs local must be byte-identical"
awk 'BEGIN{srand(9); for(i=0;i<2000;i++) printf "%d %d\n", int(rand()*5000), int(rand()*5000)}' >"$work/pairs.txt"
"$work/bin/plquery" -labels "$work/labels.pllb" -batch <"$work/pairs.txt" >"$work/local.out"
"$work/bin/plquery" -remote "$addr" -batch <"$work/pairs.txt" >"$work/remote.out"
"$work/bin/plquery" -remote "$addr" <"$work/pairs.txt" >"$work/remote-stream.out"
diff "$work/local.out" "$work/remote.out"
diff "$work/local.out" "$work/remote-stream.out"
echo "   $(wc -l <"$work/local.out") answers identical across local, remote-batch, remote-stream"

echo "== admin: /metrics mid-serve reflects the traffic just driven"
curl -fsS "http://$admin/metrics" >"$work/metrics.txt"
# 2000 batch pairs + 2000 streamed pairs answered so far, counted by both the
# frame loop and the engine; the store was mmapped exactly once.
metric() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$work/metrics.txt"; }
q=$(metric adjserve_queries_total) || { echo "no adjserve_queries_total in scrape"; exit 1; }
[ "$q" = 4000 ] || { echo "adjserve_queries_total=$q, want 4000"; exit 1; }
eq=$(metric engine_queries_total) || { echo "no engine_queries_total in scrape"; exit 1; }
[ "$eq" = 4000 ] || { echo "engine_queries_total=$eq, want 4000"; exit 1; }
mm=$(metric 'labelstore_open_total{mode="mmap"}') || { echo "no labelstore_open_total in scrape"; exit 1; }
[ "$mm" = 1 ] || { echo "labelstore_open_total{mode=mmap}=$mm, want 1"; exit 1; }
for fam in adjserve_frames_total adjserve_bytes_in_total engine_branch_thin_total \
           labelstore_mapped_bytes go_goroutines process_uptime_seconds_total; do
    grep -q "^$fam" "$work/metrics.txt" || { echo "family $fam missing from scrape"; exit 1; }
done
echo "   scrape OK: adjserve_queries_total=$q engine_queries_total=$eq mmap_opens=$mm"

echo "== graceful shutdown on SIGTERM"
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "plserve exited non-zero after SIGTERM"; cat "$work/serve.log"; exit 1; }
grep -q "draining" "$work/serve.log" || { echo "no drain line in log"; cat "$work/serve.log"; exit 1; }
grep -q "served" "$work/serve.log" || { echo "no serve summary in log"; cat "$work/serve.log"; exit 1; }
serve_pid=""

echo "== skew phase: degree-ordered store, result cache, sorted batches"
"$work/bin/pllabel" -scheme powerlaw -layout degree -in "$work/graph.el" -o "$work/labels-deg.pllb" >"$work/label-deg.log"
grep -q "layout: degree-ordered" "$work/label-deg.log" \
    || { echo "pllabel did not report the degree layout"; cat "$work/label-deg.log"; exit 1; }
"$work/bin/plserve" -labels "$work/labels-deg.pllb" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
    -pair-cache-bits 14 -sort-min 256 >"$work/serve-deg.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^plserve: listening on //p' "$work/serve-deg.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve-deg.log"; echo "plserve (degree) died"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/serve-deg.log"; echo "plserve (degree) never became ready"; exit 1; }
admin=$(sed -n 's/^plserve: admin on //p' "$work/serve-deg.log")
grep -q "layout=degree" "$work/serve-deg.log" \
    || { echo "plserve did not report layout=degree"; cat "$work/serve-deg.log"; exit 1; }

echo "== query: degree-ordered remote vs id-ordered local must be byte-identical"
"$work/bin/plquery" -remote "$addr" -batch <"$work/pairs.txt" >"$work/remote-deg.out"
diff "$work/local.out" "$work/remote-deg.out"
# Same stream again: the second pass should land in the (u,v) result cache.
"$work/bin/plquery" -remote "$addr" -batch <"$work/pairs.txt" >/dev/null
echo "   answers identical across layouts; cache warmed"

echo "== admin: cache hit/miss counters visible in /metrics"
curl -fsS "http://$admin/metrics" >"$work/metrics-deg.txt"
metric_deg() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$work/metrics-deg.txt"; }
hits=$(metric_deg engine_cache_hits_total) || { echo "no engine_cache_hits_total in scrape"; exit 1; }
misses=$(metric_deg engine_cache_misses_total) || { echo "no engine_cache_misses_total in scrape"; exit 1; }
[ "$hits" -gt 0 ] || { echo "engine_cache_hits_total=$hits after a repeated batch, want > 0"; exit 1; }
[ "$misses" -gt 0 ] || { echo "engine_cache_misses_total=$misses on a cold cache, want > 0"; exit 1; }
echo "   cache counters OK: hits=$hits misses=$misses"

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "plserve (degree) exited non-zero"; cat "$work/serve-deg.log"; exit 1; }
serve_pid=""

echo "== serving smoke OK"
