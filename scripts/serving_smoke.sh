#!/usr/bin/env bash
# Loopback end-to-end smoke test for the serving tier: generate a power-law
# graph, label it, serve the store with plserve (mmap path), and check that
# plquery -remote produces byte-identical output to plquery -labels on the
# same query stream. Exercises the real binaries over real TCP — the CI-run
# complement to the in-process tests in internal/adjserve.
#
# Usage: scripts/serving_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
trap 'kill "${serve_pid:-}" "${route_pid:-}" ${shard_pids:-} ${dist_pids:-} 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$work/bin" "$work"/*.tmp' EXIT

echo "== build"
mkdir -p "$work/bin"
go build -o "$work/bin" ./cmd/plgen ./cmd/pllabel ./cmd/plserve ./cmd/plquery ./cmd/plroute

echo "== generate + label"
"$work/bin/plgen" -model chunglu -n 5000 -alpha 2.5 -wmin 2 -seed 7 -o "$work/graph.el"
"$work/bin/pllabel" -scheme powerlaw -in "$work/graph.el" -o "$work/labels.pllb"

echo "== serve (port 0 = kernel-assigned, admin plane on)"
"$work/bin/plserve" -labels "$work/labels.pllb" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 >"$work/serve.log" 2>&1 &
serve_pid=$!
# The daemon logs msg=listening addr=HOST:PORT once ready (and msg=admin
# addr=HOST:PORT for the admin endpoint).
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log"; echo "plserve died"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/serve.log"; echo "plserve never became ready"; exit 1; }
admin=$(sed -n 's/.*msg=admin addr=//p' "$work/serve.log")
[ -n "$admin" ] || { cat "$work/serve.log"; echo "no admin address line"; exit 1; }
echo "   plserve up at $addr, admin at $admin (pid $serve_pid)"

echo "== admin: health + readiness"
curl -fsS "http://$admin/healthz" | grep -qx "ok" || { echo "/healthz not ok"; exit 1; }
curl -fsS "http://$admin/readyz" | grep -qx "ok" || { echo "/readyz not ok while serving"; exit 1; }

echo "== query: remote vs local must be byte-identical"
awk 'BEGIN{srand(9); for(i=0;i<2000;i++) printf "%d %d\n", int(rand()*5000), int(rand()*5000)}' >"$work/pairs.txt"
"$work/bin/plquery" -labels "$work/labels.pllb" -batch <"$work/pairs.txt" >"$work/local.out"
"$work/bin/plquery" -remote "$addr" -batch <"$work/pairs.txt" >"$work/remote.out"
"$work/bin/plquery" -remote "$addr" <"$work/pairs.txt" >"$work/remote-stream.out"
diff "$work/local.out" "$work/remote.out"
diff "$work/local.out" "$work/remote-stream.out"
echo "   $(wc -l <"$work/local.out") answers identical across local, remote-batch, remote-stream"

echo "== admin: /metrics mid-serve reflects the traffic just driven"
curl -fsS "http://$admin/metrics" >"$work/metrics.txt"
# 2000 batch pairs + 2000 streamed pairs answered so far, counted by both the
# frame loop and the engine; the store was mmapped exactly once.
metric() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$work/metrics.txt"; }
q=$(metric adjserve_queries_total) || { echo "no adjserve_queries_total in scrape"; exit 1; }
[ "$q" = 4000 ] || { echo "adjserve_queries_total=$q, want 4000"; exit 1; }
eq=$(metric engine_queries_total) || { echo "no engine_queries_total in scrape"; exit 1; }
[ "$eq" = 4000 ] || { echo "engine_queries_total=$eq, want 4000"; exit 1; }
mm=$(metric 'labelstore_open_total{mode="mmap"}') || { echo "no labelstore_open_total in scrape"; exit 1; }
[ "$mm" = 1 ] || { echo "labelstore_open_total{mode=mmap}=$mm, want 1"; exit 1; }
for fam in adjserve_frames_total adjserve_bytes_in_total engine_branch_thin_total \
           labelstore_mapped_bytes go_goroutines process_uptime_seconds_total; do
    grep -q "^$fam" "$work/metrics.txt" || { echo "family $fam missing from scrape"; exit 1; }
done
grep -q '^plabel_build_info{' "$work/metrics.txt" \
    || { echo "no plabel_build_info gauge in scrape"; exit 1; }
grep '^plabel_build_info{' "$work/metrics.txt" | grep -q 'goversion="go' \
    || { echo "plabel_build_info missing goversion label"; exit 1; }
grep '^plabel_build_info{' "$work/metrics.txt" | grep -q 'scheme="powerlaw' \
    || { echo "plabel_build_info missing scheme label"; exit 1; }
echo "   scrape OK: adjserve_queries_total=$q engine_queries_total=$eq mmap_opens=$mm build_info present"

echo "== graceful shutdown on SIGTERM"
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "plserve exited non-zero after SIGTERM"; cat "$work/serve.log"; exit 1; }
grep -q "draining" "$work/serve.log" || { echo "no drain line in log"; cat "$work/serve.log"; exit 1; }
grep -q "served" "$work/serve.log" || { echo "no serve summary in log"; cat "$work/serve.log"; exit 1; }
serve_pid=""

echo "== skew phase: degree-ordered store, result cache, sorted batches"
"$work/bin/pllabel" -scheme powerlaw -layout degree -in "$work/graph.el" -o "$work/labels-deg.pllb" >"$work/label-deg.log"
grep -q "layout: degree-ordered" "$work/label-deg.log" \
    || { echo "pllabel did not report the degree layout"; cat "$work/label-deg.log"; exit 1; }
"$work/bin/plserve" -labels "$work/labels-deg.pllb" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
    -pair-cache-bits 14 -sort-min 256 >"$work/serve-deg.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve-deg.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve-deg.log"; echo "plserve (degree) died"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/serve-deg.log"; echo "plserve (degree) never became ready"; exit 1; }
admin=$(sed -n 's/.*msg=admin addr=//p' "$work/serve-deg.log")
grep -q "layout=degree" "$work/serve-deg.log" \
    || { echo "plserve did not report layout=degree"; cat "$work/serve-deg.log"; exit 1; }

echo "== query: degree-ordered remote vs id-ordered local must be byte-identical"
"$work/bin/plquery" -remote "$addr" -batch <"$work/pairs.txt" >"$work/remote-deg.out"
diff "$work/local.out" "$work/remote-deg.out"
# Same stream again: the second pass should land in the (u,v) result cache.
"$work/bin/plquery" -remote "$addr" -batch <"$work/pairs.txt" >/dev/null
echo "   answers identical across layouts; cache warmed"

echo "== admin: cache hit/miss counters visible in /metrics"
curl -fsS "http://$admin/metrics" >"$work/metrics-deg.txt"
metric_deg() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$work/metrics-deg.txt"; }
hits=$(metric_deg engine_cache_hits_total) || { echo "no engine_cache_hits_total in scrape"; exit 1; }
misses=$(metric_deg engine_cache_misses_total) || { echo "no engine_cache_misses_total in scrape"; exit 1; }
[ "$hits" -gt 0 ] || { echo "engine_cache_hits_total=$hits after a repeated batch, want > 0"; exit 1; }
[ "$misses" -gt 0 ] || { echo "engine_cache_misses_total=$misses on a cold cache, want > 0"; exit 1; }
echo "   cache counters OK: hits=$hits misses=$misses"

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "plserve (degree) exited non-zero"; cat "$work/serve-deg.log"; exit 1; }
serve_pid=""

echo "== sharded phase: 3 shard stores, 3 servers, one router"
"$work/bin/pllabel" -scheme powerlaw -layout degree -in "$work/graph.el" \
    -o "$work/labels-sh.pllb" -shards 3 >"$work/label-sh.log"
grep -c "shard store written" "$work/label-sh.log" | grep -qx 3 \
    || { echo "expected 3 shard stores"; cat "$work/label-sh.log"; exit 1; }
shard_addrs=""
shard_pids=""
for i in 0 1 2; do
    "$work/bin/plserve" -labels "$work/labels-sh.pllb.shard$i" -addr 127.0.0.1:0 \
        >"$work/serve-sh$i.log" 2>&1 &
    shard_pids="$shard_pids $!"
done
for i in 0 1 2; do
    saddr=""
    for _ in $(seq 1 100); do
        saddr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve-sh$i.log")
        [ -n "$saddr" ] && break
        sleep 0.1
    done
    [ -n "$saddr" ] || { cat "$work/serve-sh$i.log"; echo "shard $i never became ready"; exit 1; }
    grep -q "shard=$i/3 fn=range" "$work/serve-sh$i.log" \
        || { echo "shard $i did not report its shard map"; cat "$work/serve-sh$i.log"; exit 1; }
    shard_addrs="$shard_addrs,$saddr"
done
shard_addrs="${shard_addrs#,}"
"$work/bin/plroute" -shards "$shard_addrs" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 \
    >"$work/route.log" 2>&1 &
route_pid=$!
raddr=""
for _ in $(seq 1 100); do
    raddr=$(sed -n 's/.*msg=listening addr=//p' "$work/route.log")
    [ -n "$raddr" ] && break
    kill -0 "$route_pid" 2>/dev/null || { cat "$work/route.log"; echo "plroute died"; exit 1; }
    sleep 0.1
done
[ -n "$raddr" ] || { cat "$work/route.log"; echo "plroute never became ready"; exit 1; }
radmin=$(sed -n 's/.*msg=admin addr=//p' "$work/route.log")
echo "   fleet $shard_addrs behind plroute at $raddr"

echo "== query: routed fleet vs single-store local must be byte-identical"
curl -fsS "http://$radmin/readyz" | grep -qx "ok" || { echo "router /readyz not ok"; exit 1; }
"$work/bin/plquery" -remote "$raddr" -batch <"$work/pairs.txt" >"$work/routed.out"
diff "$work/local.out" "$work/routed.out"
echo "   $(wc -l <"$work/routed.out") routed answers identical to the single-store local run"

echo "== admin: per-shard router metrics nonzero"
curl -fsS "http://$radmin/metrics" >"$work/metrics-route.txt"
metric_rt() { awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) exit 1 }' "$work/metrics-route.txt"; }
rq=$(metric_rt adjserve_router_queries_total) || { echo "no adjserve_router_queries_total"; exit 1; }
[ "$rq" = 2000 ] || { echo "adjserve_router_queries_total=$rq, want 2000"; exit 1; }
for i in 0 1 2; do
    up=$(metric_rt "adjserve_router_upstream_pairs_total{shard=\"$i\"}") \
        || { echo "no upstream pairs series for shard $i"; exit 1; }
    [ "$up" -gt 0 ] || { echo "shard $i routed 0 pairs"; exit 1; }
    fr=$(metric_rt "adjserve_client_frames_total{shard=\"$i\"}") \
        || { echo "no per-shard client frames series for shard $i"; exit 1; }
    [ "$fr" -gt 0 ] || { echo "shard $i client sent 0 frames"; exit 1; }
done
echo "   per-shard scrape OK: router_queries=$rq, all 3 upstreams nonzero"

echo "== graceful shutdown: router then fleet"
kill -TERM "$route_pid"
wait "$route_pid" || { echo "plroute exited non-zero after SIGTERM"; cat "$work/route.log"; exit 1; }
grep -q "routed" "$work/route.log" || { echo "no route summary in log"; cat "$work/route.log"; exit 1; }
route_pid=""
for p in $shard_pids; do kill -TERM "$p"; done
for p in $shard_pids; do wait "$p" || { echo "shard server $p exited non-zero"; exit 1; }; done
shard_pids=""

echo "== distance phase: dist-pll store, distance daemon, replica fleet"
"$work/bin/pllabel" -scheme dist-pll -layout degree -in "$work/graph.el" \
    -o "$work/dists.pllb" >"$work/label-dist.log"
grep -q "verify: ok" "$work/label-dist.log" \
    || { echo "distance labeling failed verification"; cat "$work/label-dist.log"; exit 1; }
dist_addrs=""
dist_pids=""
for i in 0 1; do
    "$work/bin/plserve" -labels "$work/dists.pllb" -addr 127.0.0.1:0 \
        >"$work/serve-dist$i.log" 2>&1 &
    dist_pids="$dist_pids $!"
done
for i in 0 1; do
    daddr=""
    for _ in $(seq 1 100); do
        daddr=$(sed -n 's/.*msg=listening addr=//p' "$work/serve-dist$i.log")
        [ -n "$daddr" ] && break
        sleep 0.1
    done
    [ -n "$daddr" ] || { cat "$work/serve-dist$i.log"; echo "distance replica $i never became ready"; exit 1; }
    grep -q "plane=distance/pll" "$work/serve-dist$i.log" \
        || { echo "replica $i did not report the distance plane"; cat "$work/serve-dist$i.log"; exit 1; }
    dist_addrs="$dist_addrs,$daddr"
    [ $i = 0 ] && daddr0="$daddr"
done
dist_addrs="${dist_addrs#,}"

echo "== query: distance remote vs local must be byte-identical"
"$work/bin/plquery" -dist -labels "$work/dists.pllb" -batch <"$work/pairs.txt" >"$work/dist-local.out"
"$work/bin/plquery" -dist -remote "$daddr0" -batch <"$work/pairs.txt" >"$work/dist-remote.out"
"$work/bin/plquery" -dist -remote "$daddr0" <"$work/pairs.txt" >"$work/dist-stream.out"
diff "$work/dist-local.out" "$work/dist-remote.out"
diff "$work/dist-local.out" "$work/dist-stream.out"
echo "   $(wc -l <"$work/dist-local.out") distances identical across local, remote-batch, remote-stream"

echo "== replica fleet: 2 identical distance servers behind plroute"
"$work/bin/plroute" -shards "$dist_addrs" -addr 127.0.0.1:0 >"$work/route-dist.log" 2>&1 &
route_pid=$!
raddr=""
for _ in $(seq 1 100); do
    raddr=$(sed -n 's/.*msg=listening addr=//p' "$work/route-dist.log")
    [ -n "$raddr" ] && break
    kill -0 "$route_pid" 2>/dev/null || { cat "$work/route-dist.log"; echo "plroute (replicas) died"; exit 1; }
    sleep 0.1
done
[ -n "$raddr" ] || { cat "$work/route-dist.log"; echo "plroute (replicas) never became ready"; exit 1; }
grep -q "msg=handshaked shards=2 fleet=replicas" "$work/route-dist.log" \
    || { echo "fleet not admitted as replicas"; cat "$work/route-dist.log"; exit 1; }
"$work/bin/plquery" -dist -remote "$raddr" -batch <"$work/pairs.txt" >"$work/dist-routed.out"
diff "$work/dist-local.out" "$work/dist-routed.out"
echo "   $(wc -l <"$work/dist-routed.out") routed distances identical to local"

kill -TERM "$route_pid"
wait "$route_pid" || { echo "plroute (replicas) exited non-zero"; cat "$work/route-dist.log"; exit 1; }
route_pid=""
for p in $dist_pids; do kill -TERM "$p"; done
for p in $dist_pids; do wait "$p" || { echo "distance replica $p exited non-zero"; exit 1; }; done
dist_pids=""

echo "== serving smoke OK"
