// Package repro is a Go reproduction of "Near Optimal Adjacency Labeling
// Schemes for Power-Law Graphs" (Petersen, Rotbart, Simonsen, Wulff-Nilsen;
// ICALP 2016, announced at PODC 2016 as "Brief Announcement: Labeling
// Schemes for Power-Law Graphs").
//
// The library lives under internal/: the paper's fat/thin adjacency
// labeling schemes (internal/core), the P_h/P_l power-law graph families
// and their constants (internal/powerlaw), the Section 5 lower-bound
// construction and workload generators (internal/gen), the Section 6
// relaxations (internal/schemes/forest, internal/schemes/onequery), the
// Lemma 7 distance labels (internal/schemes/distance), and the evaluation
// harness (internal/experiments). See README.md for a tour, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for the paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every experiment
// table.
package repro
