// Package robustness fuzz-tests every decoder in the repository against
// arbitrary bit strings: a decoder handed corrupt or adversarial labels
// must return an error or a boolean — never panic and never read out of
// bounds. This matters for the paper's deployment model, where labels
// arrive over a network from untrusted peers.
package robustness

import (
	"math/rand"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/distance"
	"repro/internal/schemes/dynamic"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/routing"
	"repro/internal/schemes/tree"
)

// randomLabel produces an arbitrary bit string of up to maxBits bits.
func randomLabel(rng *rand.Rand, maxBits int) bitstr.String {
	n := rng.Intn(maxBits + 1)
	var b bitstr.Builder
	for i := 0; i < n; i += 64 {
		w := n - i
		if w > 64 {
			w = 64
		}
		b.AppendUint(rng.Uint64(), w)
	}
	return b.String()
}

func fuzzAdjacency(t *testing.T, name string, dec core.AdjacencyDecoder) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: decoder panicked: %v", name, r)
		}
	}()
	for i := 0; i < 3000; i++ {
		a := randomLabel(rng, 200)
		b := randomLabel(rng, 200)
		// Result is irrelevant; the contract is "no panic".
		_, _ = dec.Adjacent(a, b)
	}
}

func TestFatThinDecoderRobust(t *testing.T) {
	fuzzAdjacency(t, "fatthin", core.NewFatThinDecoder(100))
	fuzzAdjacency(t, "fatthin-n1", core.NewFatThinDecoder(1))
	fuzzAdjacency(t, "fatthin-n0", core.NewFatThinDecoder(0))
}

func TestCompressedDecoderRobust(t *testing.T) {
	fuzzAdjacency(t, "compressed", core.NewCompressedDecoder(100))
	fuzzAdjacency(t, "compressed-n1", core.NewCompressedDecoder(1))
}

func TestTreeDecoderRobust(t *testing.T) {
	fuzzAdjacency(t, "tree", tree.NewDecoder(64))
	fuzzAdjacency(t, "tree-n1", tree.NewDecoder(1))
}

func TestForestDecoderRobust(t *testing.T) {
	fuzzAdjacency(t, "forest", forest.NewDecoder(64))
	fuzzAdjacency(t, "forest-n1", forest.NewDecoder(1))
}

func TestAdjMatrixDecoderRobust(t *testing.T) {
	fuzzAdjacency(t, "adjmatrix", baseline.NewAdjMatrixDecoder(64))
}

func TestDynamicDecoderRobust(t *testing.T) {
	fuzzAdjacency(t, "dynamic", &dynamic.Decoder{W: 7})
	fuzzAdjacency(t, "dynamic-w0", &dynamic.Decoder{W: 0})
}

func TestRoutingDecoderRobust(t *testing.T) {
	g := gen.Path(20)
	lab, err := (routing.Scheme{K: 2}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	dec := lab.Decoder()
	rng := rand.New(rand.NewSource(11))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("routing decoder panicked: %v", r)
		}
	}()
	for i := 0; i < 3000; i++ {
		a := randomLabel(rng, 200)
		b := randomLabel(rng, 200)
		_, _ = dec.TreeDist(a, b)
		_, _ = dec.NextHop(a, b)
	}
}

func TestDistanceDecodersRobust(t *testing.T) {
	// Distance decoders come from encodes; fuzz their Dist entry points.
	g := gen.Path(30)
	lab, err := (distance.Scheme{Alpha: 2.5, F: 3}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	pll, err := (distance.PLLScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (distance.ExactScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("distance decoder panicked: %v", r)
		}
	}()
	for i := 0; i < 2000; i++ {
		a := randomLabel(rng, 300)
		b := randomLabel(rng, 300)
		_, _ = lab.Decoder().Dist(a, b)
		_, _ = pllDist(pll, a, b)
		_, _ = exactDist(exact, a, b)
	}
}

// pllDist / exactDist reach the decoders through a pair of stored labels
// replaced by fuzz inputs (the decoders are only exposed via labelings).
func pllDist(l *distance.PLLLabeling, a, b bitstr.String) (int, error) {
	return l.DistLabels(a, b)
}

func exactDist(l *distance.ExactLabeling, a, b bitstr.String) (int, error) {
	return l.DistLabels(a, b)
}
