package universal

import (
	"errors"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/schemes/tree"
)

func TestBuildRejectsHugeLabelSpace(t *testing.T) {
	if _, err := Build(40, tree.NewDecoder(4)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if _, err := Build(-1, tree.NewDecoder(4)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("negative bits err = %v", err)
	}
}

// buildForestUniverse builds the induced-universal graph for n-vertex
// forests under the tree parent-pointer scheme.
func buildForestUniverse(t *testing.T, n int) (*graph.Graph, int) {
	t.Helper()
	bits := 2 * bitstr.WidthFor(uint64(n))
	u, err := Build(bits, tree.NewDecoder(n))
	if err != nil {
		t.Fatal(err)
	}
	return u, bits
}

func embedCheck(t *testing.T, u *graph.Graph, bits int, f *graph.Graph, name string) {
	t.Helper()
	lab, err := (tree.Scheme{}).Encode(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := VerifyEmbedding(u, lab, f, bits); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestUniversalGraphForForests(t *testing.T) {
	// n=8 forests: labels are 2·3 = 6 bits, universe has 64 vertices —
	// the KNR 2^f(n) bound, here n² = 64.
	n := 8
	u, bits := buildForestUniverse(t, n)
	if u.N() != 1<<uint(bits) {
		t.Fatalf("universe has %d vertices, want %d", u.N(), 1<<uint(bits))
	}
	for seed := int64(0); seed < 20; seed++ {
		embedCheck(t, u, bits, gen.RandomTree(n, seed), "random tree")
	}
	embedCheck(t, u, bits, gen.Path(n), "path")
	embedCheck(t, u, bits, gen.Star(n), "star")
	embedCheck(t, u, bits, graph.Empty(n), "edgeless")

	// A forest with two components and isolated vertices.
	b := graph.NewBuilder(n)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {4, 5}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	embedCheck(t, u, bits, b.Build(), "two-component forest")
}

func TestUniversalGraphLargerFamily(t *testing.T) {
	// n=16: 8-bit labels, 256-vertex universe.
	n := 16
	u, bits := buildForestUniverse(t, n)
	for seed := int64(0); seed < 10; seed++ {
		embedCheck(t, u, bits, gen.RandomTree(n, seed), "random tree 16")
	}
}

func TestVerifyEmbeddingCatchesCorruption(t *testing.T) {
	n := 8
	u, bits := buildForestUniverse(t, n)
	f := gen.Path(n)
	lab, err := (tree.Scheme{}).Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a DIFFERENT graph: must fail.
	if err := VerifyEmbedding(u, lab, gen.Star(n), bits); err == nil {
		t.Error("embedding of wrong graph accepted")
	}
}

func TestLabelIndex(t *testing.T) {
	var b bitstr.Builder
	b.AppendUint(0b1011, 4)
	i, err := LabelIndex(b.String(), 4)
	if err != nil || i != 0b1011 {
		t.Errorf("LabelIndex = %d, %v", i, err)
	}
	if _, err := LabelIndex(b.String(), 6); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestUniversalEdgeSemantics(t *testing.T) {
	// In the forest universe, label (id=a, parent=b) with a != b must be
	// adjacent to any label whose id is b, and labels with equal ids are
	// never adjacent.
	n := 8
	u, bits := buildForestUniverse(t, n)
	w := bits / 2
	mk := func(id, parent int) int { return id<<uint(w) | parent }
	if !u.HasEdge(mk(2, 5), mk(5, 5)) {
		t.Error("child (2←5) not adjacent to root 5")
	}
	if u.HasEdge(mk(3, 3), mk(3, 3)) {
		t.Error("self pair adjacent")
	}
	if u.HasEdge(mk(1, 1), mk(2, 2)) {
		t.Error("two roots adjacent")
	}
}
