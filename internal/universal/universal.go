// Package universal materializes the connection between adjacency labeling
// schemes and induced-universal graphs that the paper uses in Section 5:
// by Kannan–Naor–Rudich, an f(n)-bit labeling scheme for a family F_n
// yields an induced-universal graph U on 2^f(n) vertices — one vertex per
// possible label, with two label-vertices adjacent exactly when the decoder
// says so. Every member of F_n then appears as an induced subgraph of U via
// the map "vertex ↦ its label".
//
// Building U is only feasible for fixed-length labels and small f(n); the
// package targets the tree/forest scheme (2·ceil(log2 n) bits), giving the
// classical n²-vertex universal graph for forests, and verifies the
// embedding property experimentally (experiment E13).
package universal

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
)

// ErrTooLarge is returned when the label length would create an infeasible
// universal graph.
var ErrTooLarge = errors.New("universal: label space too large to materialize")

// MaxLabelBits bounds the materialized label space to 2^18 vertices.
const MaxLabelBits = 18

// Build constructs the induced-universal graph for all labels of exactly
// bits length under the given decoder. Vertex i of the result corresponds
// to the label whose bit pattern is the bits-wide big-endian encoding of i.
// Pairs on which the decoder errors are treated as non-adjacent (such label
// values are malformed and never assigned by the encoder).
func Build(bits int, dec core.AdjacencyDecoder) (*graph.Graph, error) {
	if bits < 0 || bits > MaxLabelBits {
		return nil, fmt.Errorf("%w: %d bits", ErrTooLarge, bits)
	}
	size := 1 << uint(bits)
	labels := make([]bitstr.String, size)
	var b bitstr.Builder
	for i := 0; i < size; i++ {
		b.Reset()
		b.AppendUint(uint64(i), bits)
		labels[i] = b.String()
	}
	gb := graph.NewBuilder(size)
	for u := 0; u < size; u++ {
		for v := u + 1; v < size; v++ {
			adj, err := dec.Adjacent(labels[u], labels[v])
			if err != nil {
				continue // malformed label value: never produced by an encoder
			}
			if adj {
				if err := gb.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return gb.Build(), nil
}

// LabelIndex returns the universal-graph vertex hosting the given label,
// which must be exactly bits long.
func LabelIndex(l bitstr.String, bits int) (int, error) {
	if l.Len() != bits {
		return 0, fmt.Errorf("universal: label has %d bits, universe uses %d", l.Len(), bits)
	}
	r := bitstr.NewReader(l)
	v, err := r.ReadUint(bits)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// VerifyEmbedding checks the defining property: mapping each vertex of g to
// the universal-graph vertex of its label must give an induced-subgraph
// embedding (adjacency preserved in both directions, labels distinct).
func VerifyEmbedding(u *graph.Graph, lab *core.Labeling, g *graph.Graph, bits int) error {
	n := g.N()
	if lab.N() != n {
		return fmt.Errorf("universal: labeling covers %d vertices, graph has %d", lab.N(), n)
	}
	idx := make([]int, n)
	seen := make(map[int]int, n)
	for v := 0; v < n; v++ {
		l, err := lab.Label(v)
		if err != nil {
			return err
		}
		i, err := LabelIndex(l, bits)
		if err != nil {
			return err
		}
		if prev, dup := seen[i]; dup {
			return fmt.Errorf("universal: vertices %d and %d share label index %d", prev, v, i)
		}
		seen[i] = v
		if i >= u.N() {
			return fmt.Errorf("universal: label index %d outside universe of %d", i, u.N())
		}
		idx[v] = i
	}
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			if g.HasEdge(x, y) != u.HasEdge(idx[x], idx[y]) {
				return fmt.Errorf("universal: embedding breaks at pair (%d,%d): graph=%v universe=%v",
					x, y, g.HasEdge(x, y), u.HasEdge(idx[x], idx[y]))
			}
		}
	}
	return nil
}
