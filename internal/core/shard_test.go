package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// shardTestEngines builds the full engine plus count sharded engines (each
// with its shard map attached) over one labeling of g.
func shardTestEngines(t *testing.T, lay Layout, count int, fn ShardFn, n int, seed int64) (*QueryEngine, []*QueryEngine) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	s := NewPowerLawScheme(2.5)
	s.SetLayout(lay)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		t.Fatal("labeling is not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	full, err := NewQueryEngineFromPermutedArena(slab, bitLens, order)
	if err != nil {
		t.Fatal(err)
	}
	arenas, err := ShardLabelArenas(slab, bitLens, order, count, fn)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*QueryEngine, count)
	for i, a := range arenas {
		e, err := NewQueryEngineFromPermutedArena(a.Slab, a.BitLens, order)
		if err != nil {
			t.Fatalf("shard %d engine: %v", i, err)
		}
		if err := e.SetShard(ShardMap{Count: count, Index: i, Fn: fn}); err != nil {
			t.Fatalf("shard %d SetShard: %v", i, err)
		}
		engines[i] = e
	}
	return full, engines
}

// routeShard mirrors the router's rule: a thin endpoint forces its owner
// (thin bodies are the only place a thin–fat or thin–thin pair resolves);
// otherwise (self, fat–fat, thin–thin) the min owner answers.
func routeShard(e *QueryEngine, fn ShardFn, count, u, v int) int {
	n := e.N()
	ou, ov := ShardOwner(fn, u, n, count), ShardOwner(fn, v, n, count)
	uFat, vFat := e.Fat(u), e.Fat(v)
	switch {
	case u == v || uFat == vFat:
		return min(ou, ov)
	case !uFat:
		return ou
	default:
		return ov
	}
}

// TestShardOwnerPartition: both ownership functions partition 0..n-1 into
// count non-empty classes whose sizes OwnedCount predicts exactly, and range
// ownership is contiguous and monotone.
func TestShardOwnerPartition(t *testing.T) {
	for _, fn := range []ShardFn{ShardRange, ShardHash} {
		for _, n := range []int{7, 64, 1000} {
			for _, count := range []int{2, 3, 7} {
				got := make([]int, count)
				prev := 0
				for v := 0; v < n; v++ {
					o := ShardOwner(fn, v, n, count)
					if o < 0 || o >= count {
						t.Fatalf("%v: owner(%d) = %d of %d shards", fn, v, o, count)
					}
					got[o]++
					if fn == ShardRange {
						if o < prev {
							t.Fatalf("range owner not monotone at v=%d: %d after %d", v, o, prev)
						}
						prev = o
					}
				}
				for i, c := range got {
					m := ShardMap{Count: count, Index: i, Fn: fn}
					if want := m.OwnedCount(n); c != want {
						t.Fatalf("%v n=%d count=%d: shard %d owns %d, OwnedCount says %d", fn, n, count, i, c, want)
					}
					if fn == ShardRange && c == 0 {
						t.Fatalf("range shard %d/%d empty at n=%d", i, count, n)
					}
				}
			}
		}
	}
}

// TestShardedEngineEquivalence is the core correctness property of the
// sharded layout: for every pair, the shard the routing rule picks answers
// bit-for-bit identically to the full engine — across both ownership
// functions and both physical layouts, over every edge plus random pairs.
func TestShardedEngineEquivalence(t *testing.T) {
	for _, lay := range []Layout{LayoutID, LayoutDegree} {
		for _, fn := range []ShardFn{ShardRange, ShardHash} {
			full, engines := shardTestEngines(t, lay, 3, fn, 400, 11)
			n := full.N()
			rng := rand.New(rand.NewSource(99))
			check := func(u, v int) {
				want, err := full.Adjacent(u, v)
				if err != nil {
					t.Fatal(err)
				}
				s := routeShard(full, fn, 3, u, v)
				got, err := engines[s].Adjacent(u, v)
				if err != nil {
					t.Fatalf("layout=%v fn=%v: routed (%d,%d) to shard %d: %v", lay, fn, u, v, s, err)
				}
				if got != want {
					t.Fatalf("layout=%v fn=%v: (%d,%d) on shard %d = %v, full engine says %v", lay, fn, u, v, s, got, want)
				}
			}
			for i := 0; i < 4000; i++ {
				check(rng.Intn(n), rng.Intn(n))
			}
			for v := 0; v < n; v++ {
				check(v, v)
			}
		}
	}
}

// TestShardedEngineNotResident: a pair neither of whose thin endpoints is
// owned (and that is not fat–fat) must fail with ErrNotResident on the wrong
// shard — never answer false from a stub.
func TestShardedEngineNotResident(t *testing.T) {
	full, engines := shardTestEngines(t, LayoutID, 3, ShardRange, 400, 11)
	n := full.N()
	misrouted := 0
	for u := 0; u < n && misrouted < 50; u++ {
		for v := 0; v < n && misrouted < 50; v++ {
			if u == v || full.Fat(u) || full.Fat(v) {
				continue
			}
			right := routeShard(full, ShardRange, 3, u, v)
			for s, e := range engines {
				if ShardOwner(ShardRange, u, n, 3) == s || ShardOwner(ShardRange, v, n, 3) == s {
					continue
				}
				if right == s {
					continue
				}
				_, err := e.Adjacent(u, v)
				if !errors.Is(err, ErrNotResident) {
					t.Fatalf("thin pair (%d,%d) on non-owning shard %d: err = %v, want ErrNotResident", u, v, s, err)
				}
				misrouted++
			}
		}
	}
	if misrouted == 0 {
		t.Fatal("test graph produced no misroutable thin pairs")
	}
}

// TestSetShardRejectsWrongMap: attaching a shard map whose index does not
// match the slab's actual partition must fail — thin labels the wrong map
// claims foreign still carry bodies, and SetShard's stub check sees them.
func TestSetShardRejectsWrongMap(t *testing.T) {
	_, engines := shardTestEngines(t, LayoutID, 3, ShardRange, 400, 11)
	// Rebuild shard 0's engine (SetShard is one-shot per engine in spirit;
	// use a fresh engine over the same slab).
	e := engines[0]
	fresh, err := NewQueryEngineFromPermutedArena(e.slab, rebuildBitLens(e), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetShard(ShardMap{Count: 3, Index: 1, Fn: ShardRange}); err == nil {
		t.Fatal("SetShard accepted shard 0's slab under index 1")
	}
	if err := fresh.SetShard(ShardMap{Count: 3, Index: 3, Fn: ShardRange}); err == nil {
		t.Fatal("SetShard accepted an out-of-range index")
	}
	if err := fresh.SetShard(ShardMap{Count: 3, Index: 0, Fn: ShardFn(9)}); err == nil {
		t.Fatal("SetShard accepted an unknown ownership function")
	}
}

// rebuildBitLens recovers an engine's per-label bit lengths from its meta
// (test helper; header + body units).
func rebuildBitLens(e *QueryEngine) []int {
	lens := make([]int, e.n)
	for v := 0; v < e.n; v++ {
		m := e.meta[v]
		body := int(m.cnt())
		if !m.fat() {
			body *= e.w
		}
		lens[v] = 1 + e.w + body
	}
	return lens
}

// TestShardLabelArenasValidates rejects degenerate splits.
func TestShardLabelArenasValidates(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(50, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, _ := lab.ArenaLayout()
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, _ := lab.Label(v)
		bitLens[v] = l.Len()
	}
	if _, err := ShardLabelArenas(slab, bitLens, order, 1, ShardRange); err == nil {
		t.Fatal("accepted a 1-shard split")
	}
	if _, err := ShardLabelArenas(slab, bitLens, order, g.N()+1, ShardRange); err == nil {
		t.Fatal("accepted more shards than vertices")
	}
	if _, err := ShardLabelArenas(slab, bitLens, order, 2, ShardFn(7)); err == nil {
		t.Fatal("accepted an unknown ownership function")
	}
}
