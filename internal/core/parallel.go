package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// EncodeParallel labels g with the same fat/thin layout as Encode, building
// labels concurrently across worker goroutines. The identifier assignment
// (a sort by degree) stays sequential; label construction — the dominant
// cost for large graphs — is embarrassingly parallel because every label
// depends only on its own adjacency list and the shared id table.
// workers <= 0 selects GOMAXPROCS.
func (s *FatThinScheme) EncodeParallel(g *graph.Graph, workers int) (*Labeling, error) {
	tau, err := s.threshold(g)
	if err != nil {
		return nil, err
	}
	if tau < 1 {
		return nil, fmt.Errorf("core: threshold must be >= 1, got %d", tau)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	if n <= 1 || workers == 1 {
		return encodeFatThin(s.name, g, tau)
	}
	w := bitstr.WidthFor(uint64(n))

	id, k := assignFatThinIDs(g, tau)
	labels := make([]bitstr.String, n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Per-worker scratch; the shared range builder guarantees a
			// layout identical to the sequential encoder's.
			buildFatThinRange(g, id, k, w, lo, hi, labels, newFatThinScratch(k))
		}(start, end)
	}
	wg.Wait()
	return NewLabeling(s.name, labels, &FatThinDecoder{n: n, w: w}), nil
}
