package core

import (
	"repro/internal/graph"
)

// EncodeParallel labels g with the same fat/thin layout as Encode, through
// the slab pipeline with label construction sharded across worker
// goroutines. The identifier assignment (a sort by degree) and the size-plan
// prefix sum stay sequential; the fill phase — the dominant cost for large
// graphs — is embarrassingly parallel because every label occupies its own
// word-aligned slab range and depends only on its own adjacency list and the
// shared id table. Output is bit-for-bit identical to Encode's.
// workers <= 0 selects GOMAXPROCS.
func (s *FatThinScheme) EncodeParallel(g *graph.Graph, workers int) (*Labeling, error) {
	tau, err := s.threshold(g)
	if err != nil {
		return nil, err
	}
	return encodeFatThinSlab(s.name, g, tau, workers, s.layout)
}

// EncodeParallel is the sharded-fill counterpart of CompressedScheme.Encode;
// both the size-plan (which must sort neighbor ids to price the δ-gap
// encoding) and the fill phase run across workers.
func (s *CompressedScheme) EncodeParallel(g *graph.Graph, workers int) (*Labeling, error) {
	tau, err := s.inner.threshold(g)
	if err != nil {
		return nil, err
	}
	return encodeCompressedSlab(s.Name(), g, tau, workers, s.layout)
}
