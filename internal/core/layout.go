package core

import "fmt"

// Layout selects the physical order of label bodies inside a pipeline slab.
// The logical labeling — which label belongs to which vertex, and every query
// answer — is identical under every layout; only where each body lives in the
// arena changes, and with it the cache behavior of skewed query traffic.
type Layout uint8

const (
	// LayoutID is the historical layout: label v occupies the v-th
	// word-aligned slot. The zero value, and the default everywhere.
	LayoutID Layout = iota
	// LayoutDegree orders bodies by descending degree: the fat-set hubs —
	// the labels Zipf-skewed traffic hammers — pack into the first few pages
	// of the slab, with the thin tail after. Because fat/thin identifiers are
	// themselves assigned in descending-degree order (assignFatThinIDs), this
	// is exactly identifier order, and the rank→vertex permutation is the
	// plan's byID table. Engines and stores carry that permutation so
	// id-indexed lookup is reconstructed bit-for-bit (see
	// NewQueryEngineFromPermutedArena, labelstore's layout param).
	LayoutDegree
)

// String names the layout as the CLIs spell it (pllabel -layout).
func (l Layout) String() string {
	switch l {
	case LayoutID:
		return "id"
	case LayoutDegree:
		return "degree"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// ParseLayout maps the CLI spelling back to a Layout.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "id":
		return LayoutID, nil
	case "degree":
		return LayoutDegree, nil
	default:
		return LayoutID, fmt.Errorf("core: unknown layout %q (want id or degree)", s)
	}
}
