package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitstr"
	"repro/internal/gen"
)

// TestQueryEngineEquivalence checks that the engine answers bit-for-bit
// identically to FatThinDecoder on every ordered pair of every test graph,
// for every scheme, for both the plain and the compacted labeling.
func TestQueryEngineEquivalence(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, s := range schemesUnderTest() {
			lab, err := s.Encode(g)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", name, s.Name(), err)
			}
			eng, err := NewQueryEngine(lab)
			if err != nil {
				t.Fatalf("%s/%s: engine: %v", name, s.Name(), err)
			}
			if eng.N() != lab.N() {
				t.Fatalf("%s/%s: engine N=%d, labeling N=%d", name, s.Name(), eng.N(), lab.N())
			}
			for u := 0; u < g.N(); u++ {
				for v := 0; v < g.N(); v++ {
					want, werr := lab.Adjacent(u, v)
					got, gerr := eng.Adjacent(u, v)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s/%s: (%d,%d): decoder err=%v, engine err=%v",
							name, s.Name(), u, v, werr, gerr)
					}
					if werr == nil && got != want {
						t.Fatalf("%s/%s: (%d,%d): decoder=%v, engine=%v",
							name, s.Name(), u, v, want, got)
					}
				}
			}
			// Compacting the labeling must not change a single answer.
			ceng, err := NewQueryEngine(lab.Compact())
			if err != nil {
				t.Fatalf("%s/%s: engine after Compact: %v", name, s.Name(), err)
			}
			for u := 0; u < g.N(); u++ {
				for v := u; v < g.N(); v++ {
					want, werr := eng.Adjacent(u, v)
					got, gerr := ceng.Adjacent(u, v)
					if werr != nil || gerr != nil || got != want {
						t.Fatalf("%s/%s: compact (%d,%d): %v/%v vs %v/%v",
							name, s.Name(), u, v, want, werr, got, gerr)
					}
				}
			}
		}
	}
}

// TestQueryEngineSampledLargeGraph checks engine-vs-decoder agreement on
// sampled pairs of a graph above the exhaustive-verification limit.
func TestQueryEngineSampledLargeGraph(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(4000, 2.5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab.Compact())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	check := func(u, v int) {
		want, werr := lab.Adjacent(u, v)
		got, gerr := eng.Adjacent(u, v)
		if werr != nil || gerr != nil || got != want {
			t.Fatalf("(%d,%d): decoder=%v/%v engine=%v/%v", u, v, want, werr, got, gerr)
		}
	}
	g.Edges(func(u, v int) { check(u, v); check(v, u) })
	for i := 0; i < 20000; i++ {
		check(rng.Intn(g.N()), rng.Intn(g.N()))
	}
}

// TestQueryEngineMalformedLabels: labels FatThinDecoder rejects at query
// time are rejected by the engine at build time, with the same sentinel.
func TestQueryEngineMalformedLabels(t *testing.T) {
	g := gen.Star(50)
	lab, err := NewFixedThresholdScheme(3).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, lab.N())
	for v := range labels {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		labels[v] = l
	}
	w := bitstr.WidthFor(uint64(len(labels)))

	corrupt := func(name string, mutate func([]bitstr.String)) {
		bad := append([]bitstr.String(nil), labels...)
		mutate(bad)
		if _, err := NewQueryEngineFromLabels(bad); !errors.Is(err, ErrBadLabel) {
			t.Errorf("%s: engine build err = %v, want ErrBadLabel", name, err)
		}
	}
	// Truncated header: too short for even the fat bit + id.
	corrupt("short-header", func(bad []bitstr.String) {
		var b bitstr.Builder
		b.AppendUint(1, w/2)
		bad[3] = b.String()
	})
	// Thin body not a multiple of the id width — the same corruption
	// FatThinDecoder reports at query time.
	var b bitstr.Builder
	b.AppendBit(false)
	b.AppendUint(7, w)
	b.AppendUint(1, w+1)
	oddThin := b.String()
	corrupt("ragged-thin-body", func(bad []bitstr.String) { bad[5] = oddThin })
	dec := NewFatThinDecoder(len(labels))
	if _, err := dec.Adjacent(oddThin, labels[0]); !errors.Is(err, ErrBadLabel) {
		t.Errorf("decoder on ragged thin body: err = %v, want ErrBadLabel", err)
	}
}

func TestQueryEngineVertexRange(t *testing.T) {
	lab, err := NewFixedThresholdScheme(2).Encode(gen.Path(10))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int{{-1, 0}, {0, -1}, {10, 0}, {0, 10}} {
		if _, err := eng.Adjacent(p[0], p[1]); !errors.Is(err, ErrVertexRange) {
			t.Errorf("Adjacent(%d,%d) err = %v, want ErrVertexRange", p[0], p[1], err)
		}
	}
	if _, err := eng.AdjacentMany([][2]int{{0, 1}, {0, 99}}, nil); !errors.Is(err, ErrVertexRange) {
		t.Errorf("AdjacentMany err = %v, want ErrVertexRange", err)
	}
	if _, err := eng.AdjacentManyParallel(make([][2]int, 64), nil, 4); err != nil {
		// all-zero pairs are valid (0,0) queries
		t.Errorf("AdjacentManyParallel err = %v", err)
	}
}

// TestQueryEngineBatchDrivers checks the batch and sharded-parallel paths
// against the single-query path, including result ordering and out-slice
// reuse, and exercises concurrent use of one engine (run with -race).
func TestQueryEngineBatchDrivers(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(1200, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab.Compact())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pairs := make([][2]int, 5000)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(g.N()), rng.Intn(g.N())}
	}
	want := make([]bool, len(pairs))
	for i, p := range pairs {
		ok, err := eng.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ok
	}
	batch, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if batch[i] != want[i] {
			t.Fatalf("AdjacentMany[%d] = %v, want %v", i, batch[i], want[i])
		}
	}
	// Concurrent parallel batches over the same shared engine.
	var wg sync.WaitGroup
	for job := 0; job < 4; job++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			out := make([]bool, 0, len(pairs))
			out, err := eng.AdjacentManyParallel(pairs, out, workers)
			if err != nil {
				t.Errorf("parallel(%d): %v", workers, err)
				return
			}
			for i := range want {
				if out[i] != want[i] {
					t.Errorf("parallel(%d)[%d] = %v, want %v", workers, i, out[i], want[i])
					return
				}
			}
		}(1 + job)
	}
	wg.Wait()
	// Reused out slice with spare capacity must not reallocate results.
	out := make([]bool, 0, len(pairs))
	out, err = eng.AdjacentManyParallel(pairs, out[:0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(pairs) {
		t.Fatalf("parallel out len = %d, want %d", len(out), len(pairs))
	}
}

// TestCompactPreservesLabels: Compact must keep every label bit-identical,
// stay idempotent, and leave Verify green.
func TestCompactPreservesLabels(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(600, 2.5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]bitstr.String, lab.N())
	for v := range before {
		l, _ := lab.Label(v)
		before[v] = l
	}
	statsBefore := lab.Stats()
	if lab.Compact() != lab {
		t.Fatal("Compact must return the receiver")
	}
	lab.Compact() // idempotent
	for v := range before {
		after, _ := lab.Label(v)
		if !after.Equal(before[v]) {
			t.Fatalf("label %d changed after Compact", v)
		}
	}
	if lab.Stats() != statsBefore {
		t.Fatal("Stats changed after Compact")
	}
	if err := lab.Verify(g); err != nil {
		t.Fatalf("Verify after Compact: %v", err)
	}
}

func TestStatsMemoized(t *testing.T) {
	lab, err := NewFixedThresholdScheme(2).Encode(gen.Star(40))
	if err != nil {
		t.Fatal(err)
	}
	first := lab.Stats()
	for i := 0; i < 3; i++ {
		if got := lab.Stats(); got != first {
			t.Fatalf("Stats call %d = %+v, want %+v", i, got, first)
		}
	}
	if first.Total == 0 || first.Max < first.Min {
		t.Fatalf("implausible stats: %+v", first)
	}
}
