// Package core implements the paper's primary contribution: adjacency
// labeling schemes for sparse and power-law graphs based on a fat/thin
// vertex partition (Theorems 3 and 4 of "Near Optimal Adjacency Labeling
// Schemes for Power-Law Graphs", ICALP 2016; announced at PODC 2016).
//
// A labeling scheme is a pair (encoder, decoder): the encoder assigns each
// vertex of a graph a bit-string label, and the decoder determines the
// adjacency of any two vertices from their labels alone — the graph itself
// is never consulted at query time. The package also defines the shared
// Labeling container and size-statistics used by every other scheme in this
// repository.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// ErrBadLabel is returned by decoders when a label cannot be parsed.
var ErrBadLabel = errors.New("core: malformed label")

// ErrVertexRange is returned for queries on vertex IDs outside the labeling.
var ErrVertexRange = errors.New("core: vertex out of range")

// Scheme is an adjacency labeling scheme: an encoder plus a factory for the
// matching decoder. Implementations live in this package and in
// internal/schemes/*.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Encode labels every vertex of g.
	Encode(g *graph.Graph) (*Labeling, error)
}

// AdjacencyDecoder decides adjacency from two labels alone.
type AdjacencyDecoder interface {
	Adjacent(a, b bitstr.String) (bool, error)
}

// Labeling is the output of an encoder: one label per vertex plus the
// decoder able to answer queries over those labels.
type Labeling struct {
	scheme  string
	labels  []bitstr.String
	decoder AdjacencyDecoder

	// Labels are immutable after construction, so size statistics are
	// computed at most once.
	statsOnce sync.Once
	stats     SizeStats

	compacted bool

	// arena, when non-nil, is the word-aligned slab the labels are views
	// into: label v starts at bit offset 64·Σ_{u<v} ceil(len_u/64). Pipeline
	// encoders produce labelings born this way; NewQueryEngine adopts the
	// slab zero-copy instead of relocating label bodies.
	arena []byte
	// order, when non-nil, is the physical layout permutation of the arena:
	// the label at slab rank r is label order[r] (LayoutDegree packs hubs
	// first). The labels slice is always id-indexed — views already point at
	// the right offsets — so every query answer is layout-independent.
	order []int32
}

// NewLabeling bundles per-vertex labels with their decoder. It is exported
// for use by the scheme implementations in internal/schemes.
func NewLabeling(scheme string, labels []bitstr.String, dec AdjacencyDecoder) *Labeling {
	return &Labeling{scheme: scheme, labels: labels, decoder: dec}
}

// NewArenaLabeling bundles labels that live in one word-aligned slab (label
// v occupying bits [off_v, off_v + bitLens[v]) with off_v = 64·Σ_{u<v}
// ceil(bitLens[u]/64)) with their decoder. The labeling is born compact —
// Compact is a no-op — and Arena exposes the slab for zero-copy adoption by
// query engines and stores. The slab must not be modified afterwards, and
// its padding bits must be zero (true of any slab built with
// bitstr.SlabWriter; see bitstr.SlabViews).
func NewArenaLabeling(scheme string, slab []byte, bitLens []int, dec AdjacencyDecoder) (*Labeling, error) {
	labels, err := bitstr.SlabViews(slab, bitLens)
	if err != nil {
		return nil, fmt.Errorf("core: arena labels: %w", err)
	}
	return &Labeling{scheme: scheme, labels: labels, decoder: dec, compacted: true, arena: slab}, nil
}

// NewPermutedArenaLabeling is NewArenaLabeling for a physically permuted
// slab: the label at slab rank r is label order[r] (bitLens stays indexed by
// label number). The returned labeling's labels are id-indexed views into
// the permuted slab, so Label, Adjacent, Verify and Stats are oblivious to
// the layout. order must be a permutation of 0..len(bitLens)-1; nil
// delegates to NewArenaLabeling.
func NewPermutedArenaLabeling(scheme string, slab []byte, bitLens []int, order []int32, dec AdjacencyDecoder) (*Labeling, error) {
	if order == nil {
		return NewArenaLabeling(scheme, slab, bitLens, dec)
	}
	labels, err := bitstr.SlabViewsPermuted(slab, bitLens, order)
	if err != nil {
		return nil, fmt.Errorf("core: arena labels: %w", err)
	}
	return &Labeling{scheme: scheme, labels: labels, decoder: dec, compacted: true, arena: slab, order: order}, nil
}

// Arena returns the word-aligned slab backing an arena labeling, or ok=false
// for labelings assembled label-by-label. The per-label bit lengths (and
// hence slab offsets) are recoverable from the labels themselves. For a
// permuted arena (LayoutDegree) Arena reports ok=false — label v is *not* at
// the v-th slot, so callers unaware of the permutation would misread every
// offset; use ArenaLayout, which hands out the permutation alongside.
func (l *Labeling) Arena() (slab []byte, ok bool) {
	if l.order != nil {
		return nil, false
	}
	return l.arena, l.arena != nil
}

// ArenaLayout returns the backing slab together with its physical layout
// permutation: order is nil for the id-ordered layout, otherwise the label
// at slab rank r is label order[r]. The pair (plus the per-label bit
// lengths) is what NewQueryEngineFromPermutedArena and
// labelstore.NewPermutedArenaFile accept.
func (l *Labeling) ArenaLayout() (slab []byte, order []int32, ok bool) {
	return l.arena, l.order, l.arena != nil
}

// LayoutOrder returns the arena's physical layout permutation, or nil when
// the labeling is id-ordered (or not arena-backed).
func (l *Labeling) LayoutOrder() []int32 { return l.order }

// Scheme returns the name of the scheme that produced the labeling.
func (l *Labeling) Scheme() string { return l.scheme }

// N returns the number of labeled vertices.
func (l *Labeling) N() int { return len(l.labels) }

// Label returns vertex v's label.
func (l *Labeling) Label(v int) (bitstr.String, error) {
	if v < 0 || v >= len(l.labels) {
		return bitstr.String{}, fmt.Errorf("%w: %d of %d", ErrVertexRange, v, len(l.labels))
	}
	return l.labels[v], nil
}

// Decoder returns the scheme's decoder.
func (l *Labeling) Decoder() AdjacencyDecoder { return l.decoder }

// Compact moves every label into one contiguous arena slab and re-points
// the labels at byte-aligned (offset, bitlen) views of it. Encoders produce
// one heap allocation per vertex; after Compact the whole labeling is a
// single allocation, which removes n-1 objects from the GC scan set and
// packs the query working set for cache locality. Label contents and all
// query answers are unchanged. Compact is idempotent and returns l.
func (l *Labeling) Compact() *Labeling {
	if l.compacted {
		return l
	}
	total := 0
	for _, s := range l.labels {
		total += s.SizeBytes()
	}
	slab := make([]byte, 0, total)
	for i, s := range l.labels {
		off := len(slab)
		slab = append(slab, s.Bytes()...)
		view, err := bitstr.Wrap(slab[off:len(slab):len(slab)], s.Len())
		if err != nil {
			// Unreachable: every String carries exactly ceil(Len/8) bytes.
			continue
		}
		l.labels[i] = view
	}
	l.compacted = true
	return l
}

// Adjacent answers an adjacency query between vertices u and v using only
// their labels.
func (l *Labeling) Adjacent(u, v int) (bool, error) {
	lu, err := l.Label(u)
	if err != nil {
		return false, err
	}
	lv, err := l.Label(v)
	if err != nil {
		return false, err
	}
	return l.decoder.Adjacent(lu, lv)
}

// SizeStats summarizes label sizes in bits.
type SizeStats struct {
	Min, Max      int
	Mean          float64
	Total         int64
	P50, P90, P99 int
}

// Stats returns label-size statistics across all vertices. Labels are
// immutable after construction, so the sort-heavy computation runs once and
// the result is memoized.
func (l *Labeling) Stats() SizeStats {
	l.statsOnce.Do(func() { l.stats = l.computeStats() })
	return l.stats
}

func (l *Labeling) computeStats() SizeStats {
	n := len(l.labels)
	if n == 0 {
		return SizeStats{}
	}
	sizes := make([]int, n)
	var total int64
	for i, s := range l.labels {
		sizes[i] = s.Len()
		total += int64(s.Len())
	}
	sort.Ints(sizes)
	pct := func(p float64) int {
		i := int(p * float64(n-1))
		return sizes[i]
	}
	return SizeStats{
		Min:   sizes[0],
		Max:   sizes[n-1],
		Mean:  float64(total) / float64(n),
		Total: total,
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
	}
}

// Verify checks the labeling against the source graph. For graphs with at
// most exhaustiveLimit vertices it checks every ordered pair; for larger
// graphs it checks all edges plus sampleNonEdges pseudo-random non-edges per
// vertex. It returns the first discrepancy found.
func (l *Labeling) Verify(g *graph.Graph) error {
	const exhaustiveLimit = 1500
	n := g.N()
	if n != l.N() {
		return fmt.Errorf("core: labeling has %d vertices, graph has %d", l.N(), n)
	}
	if n <= exhaustiveLimit {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				got, err := l.Adjacent(u, v)
				if err != nil {
					return fmt.Errorf("core: query (%d,%d): %w", u, v, err)
				}
				if want := g.HasEdge(u, v); got != want {
					return fmt.Errorf("core: scheme %s: adjacency(%d,%d) = %v, graph says %v",
						l.scheme, u, v, got, want)
				}
			}
		}
		return nil
	}
	// Large graphs: all edges + deterministic pseudo-random non-edges.
	var verr error
	g.Edges(func(u, v int) {
		if verr != nil {
			return
		}
		got, err := l.Adjacent(u, v)
		if err != nil {
			verr = fmt.Errorf("core: query (%d,%d): %w", u, v, err)
			return
		}
		if !got {
			verr = fmt.Errorf("core: scheme %s: edge (%d,%d) decoded as non-adjacent", l.scheme, u, v)
		}
	})
	if verr != nil {
		return verr
	}
	const sampleNonEdges = 4
	state := uint64(0x9E3779B97F4A7C15)
	for u := 0; u < n; u++ {
		for k := 0; k < sampleNonEdges; k++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			v := int(state % uint64(n))
			if v == u || g.HasEdge(u, v) {
				continue
			}
			got, err := l.Adjacent(u, v)
			if err != nil {
				return fmt.Errorf("core: query (%d,%d): %w", u, v, err)
			}
			if got {
				return fmt.Errorf("core: scheme %s: non-edge (%d,%d) decoded as adjacent", l.scheme, u, v)
			}
		}
	}
	return nil
}
