package core

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// CompressedScheme is the distribution-aware refinement the paper's future
// work hints at ("refinements of our labeling scheme that utilize knowledge
// about such distributions"): the fat/thin layout of Theorems 3/4 with the
// thin neighbor list stored in the cheaper of two encodings, chosen per
// label by a one-bit flag:
//
//	thin: [0][own id: w][0][neighbor ids: deg·w]                (fixed width)
//	thin: [0][own id: w][1][δ(gap₀+1)][δ(gap₁+1)]...            (sorted gaps)
//	fat:  [1][own id: w][bitmap over fat ids: k bits]
//
// Gap coding wins exactly when a vertex's neighbors concentrate on small
// identifiers — i.e. on the hubs, which receive the smallest ids. The win
// therefore grows as α falls (heavier hubs); for light-tailed inputs the
// flag keeps every label within one bit of the fixed-width layout. This
// trade-off is measured by experiment E15. Decoding remains a single scan.
type CompressedScheme struct {
	inner  *FatThinScheme
	layout Layout
}

var _ Scheme = (*CompressedScheme)(nil)

// NewCompressedScheme wraps any fat/thin threshold rule with δ-coded thin
// labels.
func NewCompressedScheme(threshold *FatThinScheme) *CompressedScheme {
	return &CompressedScheme{inner: threshold}
}

// Name implements Scheme.
func (s *CompressedScheme) Name() string { return "compressed+" + s.inner.Name() }

// Threshold exposes the wrapped threshold rule.
func (s *CompressedScheme) Threshold(g *graph.Graph) (int, error) { return s.inner.threshold(g) }

// SetLayout selects the physical slab layout of subsequent encodes, exactly
// as FatThinScheme.SetLayout.
func (s *CompressedScheme) SetLayout(l Layout) { s.layout = l }

// Encode implements Scheme, through the slab pipeline (see pipeline.go):
// the returned labeling is arena-backed and born compact.
func (s *CompressedScheme) Encode(g *graph.Graph) (*Labeling, error) {
	tau, err := s.inner.threshold(g)
	if err != nil {
		return nil, err
	}
	return encodeCompressedSlab(s.Name(), g, tau, 1, s.layout)
}

// encodeCompressedLegacy is the original Builder-based encoder, kept as the
// executable layout specification the pipeline is tested against
// (pipeline_test.go).
func encodeCompressedLegacy(name string, g *graph.Graph, tau int) (*Labeling, error) {
	if tau < 1 {
		return nil, fmt.Errorf("core: threshold must be >= 1, got %d", tau)
	}
	n := g.N()
	w := bitstr.WidthFor(uint64(n))
	id, k := assignFatThinIDs(g, tau)

	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	nbrIDs := make([]uint64, 0, 64)
	for v := 0; v < n; v++ {
		b.Reset()
		if id[v] < k { // fat: identical to the fixed-width layout
			b.AppendBit(true)
			b.AppendUint(uint64(id[v]), w)
			vec := bitstr.NewVector(k)
			for _, u := range g.Neighbors(v) {
				if uid := id[u]; uid < k {
					vec.Set(uid)
				}
			}
			vec.Append(&b)
		} else { // thin: cheaper of fixed-width ids and δ-coded sorted gaps
			b.AppendBit(false)
			b.AppendUint(uint64(id[v]), w)
			nbrIDs = nbrIDs[:0]
			for _, u := range g.Neighbors(v) {
				nbrIDs = append(nbrIDs, uint64(id[u]))
			}
			sortUint64(nbrIDs)
			gapBits := 0
			prev := uint64(0)
			for i, x := range nbrIDs {
				gap := x - prev
				if i == 0 {
					gap = x
				}
				gapBits += bitstr.DeltaLen(gap + 1)
				prev = x
			}
			if gapBits < len(nbrIDs)*w {
				b.AppendBit(true) // gap encoding
				prev = uint64(0)
				for i, x := range nbrIDs {
					gap := x - prev
					if i == 0 {
						gap = x
					}
					b.AppendDelta0(gap)
					prev = x
				}
			} else {
				b.AppendBit(false) // fixed-width encoding
				for _, x := range nbrIDs {
					b.AppendUint(x, w)
				}
			}
		}
		labels[v] = b.String()
	}
	return NewLabeling(name, labels, &CompressedDecoder{n: n, w: w}), nil
}

func sortUint64(xs []uint64) {
	// Insertion sort: thin lists are short (< τ entries) and usually nearly
	// sorted already (neighbor lists are sorted by vertex, ids by degree).
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// CompressedDecoder answers adjacency queries over compressed fat/thin
// labels; like FatThinDecoder it depends only on n.
type CompressedDecoder struct {
	n int
	w int
}

var _ AdjacencyDecoder = (*CompressedDecoder)(nil)

// NewCompressedDecoder returns the decoder for n-vertex compressed
// labelings.
func NewCompressedDecoder(n int) *CompressedDecoder {
	return &CompressedDecoder{n: n, w: bitstr.WidthFor(uint64(n))}
}

// Adjacent implements AdjacencyDecoder.
func (d *CompressedDecoder) Adjacent(a, b bitstr.String) (bool, error) {
	pa, err := d.parse(a)
	if err != nil {
		return false, err
	}
	pb, err := d.parse(b)
	if err != nil {
		return false, err
	}
	if pa.id == pb.id {
		return false, nil
	}
	switch {
	case !pa.fat:
		return d.thinContains(pa, pb.id)
	case !pb.fat:
		return d.thinContains(pb, pa.id)
	default:
		k := pa.s.Len() - pa.body
		if pb.id >= uint64(k) {
			return false, fmt.Errorf("%w: fat id %d outside vector of %d bits", ErrBadLabel, pb.id, k)
		}
		bit, err := pa.s.Bit(pa.body + int(pb.id))
		if err != nil {
			return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		return bit, nil
	}
}

func (d *CompressedDecoder) parse(s bitstr.String) (parsedLabel, error) {
	r := bitstr.NewReader(s)
	fat, err := r.ReadBit()
	if err != nil {
		return parsedLabel{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	id, err := r.ReadUint(d.w)
	if err != nil {
		return parsedLabel{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	return parsedLabel{fat: fat, id: id, body: 1 + d.w, s: s}, nil
}

// thinContains reads the encoding flag and scans the neighbor list in
// whichever form the encoder chose.
func (d *CompressedDecoder) thinContains(p parsedLabel, target uint64) (bool, error) {
	r := bitstr.NewReader(p.s)
	if err := r.Seek(p.body); err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	gapEncoded, err := r.ReadBit()
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	if !gapEncoded {
		if d.w == 0 {
			return false, nil
		}
		if r.Remaining()%d.w != 0 {
			return false, fmt.Errorf("%w: fixed thin body of %d bits", ErrBadLabel, r.Remaining())
		}
		for r.Remaining() >= d.w {
			v, err := r.ReadUint(d.w)
			if err != nil {
				return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
			}
			if v == target {
				return true, nil
			}
		}
		return false, nil
	}
	cur := uint64(0)
	first := true
	for r.Remaining() > 0 {
		gap, err := r.ReadDelta0()
		if err != nil {
			return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		if first {
			cur = gap
			first = false
		} else {
			cur += gap
		}
		if cur == target {
			return true, nil
		}
		if cur > target {
			return false, nil // list is sorted: early exit
		}
	}
	return false, nil
}
