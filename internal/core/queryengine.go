package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitstr"
)

// QueryEngine is the serving-path counterpart of FatThinDecoder: it is built
// once from a complete fat/thin labeling, pre-parses every label's header
// (fat bit, identifier, body length) into flat slices, and relocates every
// label body into one word-aligned uint64 arena. A query is then a handful
// of word-addressed probes into the arena — at most two word loads and a
// shift per probe, zero heap allocations, no Reader, no re-parsing. Labels
// are validated once at construction, so the hot path never errors on
// well-formed inputs.
//
// A QueryEngine is immutable after construction and safe for concurrent use
// by any number of goroutines.
type QueryEngine struct {
	n int // number of vertices
	w int // identifier width: ceil(log2 n)
	// meta holds the flat pre-parsed headers, one entry per vertex, packed
	// so a query touches a single cache line per endpoint.
	meta []vertexMeta
	// words is the arena: each vertex's label body (neighbor ids or fat
	// vector) starts at bit offset meta[v].off, which is 64-bit aligned.
	words []uint64
}

// vertexMeta is one label's pre-parsed header.
type vertexMeta struct {
	off int64  // arena bit offset of the body
	id  uint64 // the vertex's own identifier
	// cnt is the body size in body units: for thin labels the number of
	// neighbor identifiers, for fat labels the vector length in bits.
	cnt int32
	fat bool
}

// NewQueryEngine builds an engine over a labeling produced by any scheme
// using the fat/thin label layout (FatThinScheme, baseline.NeighborList).
// Labels are validated once here; malformed labels that FatThinDecoder
// would reject at query time are rejected at build time instead.
func NewQueryEngine(lab *Labeling) (*QueryEngine, error) {
	return NewQueryEngineFromLabels(lab.labels)
}

// NewQueryEngineFromLabels builds an engine directly over per-vertex labels
// in the fat/thin layout, e.g. from a labelstore.File. The identifier width
// is ceil(log2 len(labels)), exactly as for NewFatThinDecoder.
func NewQueryEngineFromLabels(labels []bitstr.String) (*QueryEngine, error) {
	n := len(labels)
	w := bitstr.WidthFor(uint64(n))
	header := 1 + w
	e := &QueryEngine{
		n:    n,
		w:    w,
		meta: make([]vertexMeta, n),
	}
	// Pass 1: validate headers and size the arena (bodies word-aligned).
	totalWords := 0
	for v, s := range labels {
		if s.Len() < header {
			return nil, fmt.Errorf("%w: label %d has %d bits, header needs %d", ErrBadLabel, v, s.Len(), header)
		}
		m := &e.meta[v]
		m.fat = s.MustPeekUint(0, 1) == 1
		m.id = s.MustPeekUint(1, w)
		body := s.Len() - header
		switch {
		case m.fat:
			m.cnt = int32(body)
		case w == 0:
			m.cnt = 0
		default:
			if body%w != 0 {
				return nil, fmt.Errorf("%w: label %d: thin body %d bits not a multiple of id width %d",
					ErrBadLabel, v, body, w)
			}
			m.cnt = int32(body / w)
		}
		totalWords += (body + 63) >> 6
	}
	// Pass 2: copy bodies into the arena, MSB-first within each word to
	// match the label bit order.
	e.words = make([]uint64, totalWords)
	word := 0
	for v, s := range labels {
		e.meta[v].off = int64(word) << 6
		body := s.Len() - header
		for i := 0; i < body; i += 64 {
			chunk := body - i
			if chunk > 64 {
				chunk = 64
			}
			e.words[word] = s.MustPeekUint(header+i, chunk) << (64 - uint(chunk))
			word++
		}
	}
	return e, nil
}

// readBits returns w (1..64) bits of the arena starting at bit offset off,
// MSB first. Bodies are word-aligned and probes stay inside their body, so
// a probe spans at most two adjacent in-bounds words. Small enough for the
// compiler to inline into the search loops.
func readBits(words []uint64, off int64, w int) uint64 {
	i := off >> 6
	sh := uint(off & 63)
	v := words[i] << sh
	if sh+uint(w) > 64 {
		v |= words[i+1] >> (64 - sh)
	}
	return v >> (64 - uint(w))
}

// N returns the number of vertices the engine serves.
func (e *QueryEngine) N() int { return e.n }

// Adjacent answers an adjacency query between vertices u and v. It is
// allocation-free and answers bit-for-bit identically to
// FatThinDecoder.Adjacent over the same labels.
func (e *QueryEngine) Adjacent(u, v int) (bool, error) {
	if uint(u) >= uint(e.n) || uint(v) >= uint(e.n) {
		return false, fmt.Errorf("%w: (%d,%d) of %d", ErrVertexRange, u, v, e.n)
	}
	mu, mv := &e.meta[u], &e.meta[v]
	if mu.id == mv.id {
		// Same vertex: never self-adjacent in a simple graph.
		return false, nil
	}
	switch {
	case !mu.fat:
		return e.thinProbe(mu, mv.id), nil
	case !mv.fat:
		return e.thinProbe(mv, mu.id), nil
	default:
		// Both fat: bit mv.id of u's adjacency vector.
		if mv.id >= uint64(mu.cnt) {
			return false, fmt.Errorf("%w: fat id %d outside vector of %d bits", ErrBadLabel, mv.id, mu.cnt)
		}
		return readBits(e.words, mu.off+int64(mv.id), 1) == 1, nil
	}
}

// thinProbe binary-searches thin vertex u's sorted neighbor-id list for
// target — the O(log n) decode of Theorems 3/4, with each probe at most two
// word loads at a computed arena offset. Bounds were validated at build
// time.
func (e *QueryEngine) thinProbe(m *vertexMeta, target uint64) bool {
	w := e.w
	if w == 0 {
		return false
	}
	words, base := e.words, m.off
	lo, hi := 0, int(m.cnt)-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		got := readBits(words, base+int64(mid*w), w)
		switch {
		case got == target:
			return true
		case got < target:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false
}

// AdjacentMany answers a batch of queries, appending one result per pair to
// out and returning the extended slice. Passing an out slice with capacity
// for len(pairs) results makes the whole batch allocation-free. It stops at
// the first failing query.
func (e *QueryEngine) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	for _, p := range pairs {
		ok, err := e.Adjacent(p[0], p[1])
		if err != nil {
			return out, fmt.Errorf("core: query (%d,%d): %w", p[0], p[1], err)
		}
		out = append(out, ok)
	}
	return out, nil
}

// AdjacentManyParallel shards a batch across workers goroutines (workers
// <= 0 selects GOMAXPROCS) and answers each shard with the allocation-free
// single-query path. Results are returned in pair order. The engine itself
// is read-only, so shards share it without synchronization; the only
// coordination is the final join.
func (e *QueryEngine) AdjacentManyParallel(pairs [][2]int, out []bool, workers int) ([]bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		return e.AdjacentMany(pairs, out)
	}
	start := len(out)
	if need := start + len(pairs); cap(out) >= need {
		out = out[:need]
	} else {
		grown := make([]bool, need)
		copy(grown, out)
		out = grown
	}
	res := out[start:]
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				ok, err := e.Adjacent(pairs[i][0], pairs[i][1])
				if err != nil {
					errs[wi] = fmt.Errorf("core: query (%d,%d): %w", pairs[i][0], pairs[i][1], err)
					return
				}
				res[i] = ok
			}
		}(wi, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out[:start], err
		}
	}
	return out, nil
}
