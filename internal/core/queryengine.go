package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitstr"
)

// QueryEngine is the serving-path counterpart of FatThinDecoder: it is built
// once from a complete fat/thin labeling, pre-parses every label's header
// (fat bit, identifier, body length) into flat slices, and probes label
// bodies in a word-aligned byte slab (big-endian 64-bit words, the shared
// slab layout of bitstr). A query is then a handful of word-addressed probes
// — at most two word loads and a shift per probe, zero heap allocations, no
// Reader, no re-parsing. Labels are validated once at construction, so the
// hot path never errors on well-formed inputs.
//
// Arena-backed labelings (the encode pipeline's output, or a format-v2 label
// store) are adopted zero-copy: the engine points straight at the encoder's
// slab and only parses headers. Labelings assembled label-by-label are
// relocated into a fresh slab, as before.
//
// A QueryEngine is immutable after construction and safe for concurrent use
// by any number of goroutines.
type QueryEngine struct {
	n int // number of vertices
	w int // identifier width: ceil(log2 n)
	// meta holds the flat pre-parsed headers, one entry per vertex, packed
	// so a query touches a single cache line per endpoint.
	meta []vertexMeta
	// slab holds the label bodies: each vertex's body (neighbor ids or fat
	// vector) starts at bit offset meta[v].off. Probes via
	// bitstr.SlabReadBits never cross the end of the backing slice (see the
	// in-bounds argument there).
	slab []byte
	// metrics, when attached, receives per-call tallies (nil costs the hot
	// path a single predictable branch). It is the one mutable piece of an
	// otherwise immutable engine: attach before sharing the engine across
	// goroutines.
	metrics *EngineMetrics
}

// AttachMetrics wires instrumentation into the engine's query paths. Must be
// called before the engine is shared (typically right after construction);
// passing nil detaches. The per-query cost is a stack-local tally flushed
// with O(1) atomic adds per call, preserving the 0 allocs/op guarantee.
func (e *QueryEngine) AttachMetrics(m *EngineMetrics) { e.metrics = m }

// vertexMeta is one label's pre-parsed header.
type vertexMeta struct {
	off int64  // slab bit offset of the body
	id  uint64 // the vertex's own identifier
	// cnt is the body size in body units: for thin labels the number of
	// neighbor identifiers, for fat labels the vector length in bits.
	cnt int32
	fat bool
}

// NewQueryEngine builds an engine over a labeling produced by any scheme
// using the fat/thin label layout (FatThinScheme, baseline.NeighborList).
// Labels are validated once here; malformed labels that FatThinDecoder
// would reject at query time are rejected at build time instead. An
// arena-backed labeling is adopted without relocating a single body bit.
func NewQueryEngine(lab *Labeling) (*QueryEngine, error) {
	if slab, ok := lab.Arena(); ok {
		bitLens := make([]int, len(lab.labels))
		for v, s := range lab.labels {
			bitLens[v] = s.Len()
		}
		return NewQueryEngineFromArena(slab, bitLens)
	}
	return NewQueryEngineFromLabels(lab.labels)
}

// NewQueryEngineFromArena builds an engine directly over a word-aligned
// label slab (label v at bit offset 64·Σ_{u<v} ceil(bitLens[u]/64)), e.g.
// the arena of a pipeline-built Labeling or a format-v2 label store. The
// slab is adopted zero-copy: construction parses and validates the n label
// headers but never moves a body.
func NewQueryEngineFromArena(slab []byte, bitLens []int) (*QueryEngine, error) {
	n := len(bitLens)
	w := bitstr.WidthFor(uint64(n))
	header := 1 + w
	e := &QueryEngine{n: n, w: w, meta: make([]vertexMeta, n), slab: slab}
	var off int64
	for v, bits := range bitLens {
		if bits < header {
			return nil, fmt.Errorf("%w: label %d has %d bits, header needs %d", ErrBadLabel, v, bits, header)
		}
		if bits > maxLabelBits {
			// Also keeps end below overflow for any label count that fits in
			// memory: untrusted bit lengths (fuzzed or corrupt headers) are
			// bounded before any offset arithmetic.
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrBadLabel, v, bits)
		}
		end := off + int64(bitstr.SlabWords(bits))*bitstr.SlabWordBits
		if int(end>>3) > len(slab) {
			return nil, fmt.Errorf("%w: label %d ends at byte %d of a %d-byte slab", ErrBadLabel, v, end>>3, len(slab))
		}
		m := &e.meta[v]
		m.fat = bitstr.SlabReadBits(slab, off, 1) == 1
		if w > 0 {
			m.id = bitstr.SlabReadBits(slab, off+1, w)
		}
		if err := setBodyCount(m, bits-header, w, v); err != nil {
			return nil, err
		}
		m.off = off + int64(header)
		off = end
	}
	return e, nil
}

// maxLabelBits caps a single label's declared bit length (matching the
// labelstore's cap): beyond it, offset arithmetic and the int32 body counts
// below could overflow on attacker-controlled headers.
const maxLabelBits = 1 << 34

// setBodyCount validates and records a label's body size in body units.
func setBodyCount(m *vertexMeta, body, w, v int) error {
	if body > 1<<31-1 {
		// cnt is an int32; a larger body would silently truncate and turn the
		// build-time bounds guarantees into query-time garbage.
		return fmt.Errorf("%w: label %d: body of %d bits", ErrBadLabel, v, body)
	}
	switch {
	case m.fat:
		m.cnt = int32(body)
	case w == 0:
		m.cnt = 0
	default:
		if body%w != 0 {
			return fmt.Errorf("%w: label %d: thin body %d bits not a multiple of id width %d",
				ErrBadLabel, v, body, w)
		}
		m.cnt = int32(body / w)
	}
	return nil
}

// NewQueryEngineFromLabels builds an engine over per-vertex labels from any
// source (e.g. a legacy label store), relocating the bodies into a fresh
// word-aligned slab. The identifier width is ceil(log2 len(labels)), exactly
// as for NewFatThinDecoder.
func NewQueryEngineFromLabels(labels []bitstr.String) (*QueryEngine, error) {
	n := len(labels)
	w := bitstr.WidthFor(uint64(n))
	header := 1 + w
	e := &QueryEngine{
		n:    n,
		w:    w,
		meta: make([]vertexMeta, n),
	}
	// Pass 1: validate headers and size the slab (bodies word-aligned).
	totalWords := 0
	for v, s := range labels {
		if s.Len() < header {
			return nil, fmt.Errorf("%w: label %d has %d bits, header needs %d", ErrBadLabel, v, s.Len(), header)
		}
		m := &e.meta[v]
		m.fat = s.MustPeekUint(0, 1) == 1
		m.id = s.MustPeekUint(1, w)
		if err := setBodyCount(m, s.Len()-header, w, v); err != nil {
			return nil, err
		}
		totalWords += bitstr.SlabWords(s.Len() - header)
	}
	// Pass 2: copy bodies into the slab, MSB-first within each big-endian
	// word to match the label bit order.
	e.slab = make([]byte, bitstr.SlabBytes(totalWords))
	word := 0
	for v, s := range labels {
		e.meta[v].off = int64(word) * bitstr.SlabWordBits
		body := s.Len() - header
		for i := 0; i < body; i += 64 {
			chunk := body - i
			if chunk > 64 {
				chunk = 64
			}
			binary.BigEndian.PutUint64(e.slab[word<<3:], s.MustPeekUint(header+i, chunk)<<(64-uint(chunk)))
			word++
		}
	}
	return e, nil
}

// N returns the number of vertices the engine serves.
func (e *QueryEngine) N() int { return e.n }

// Adjacent answers an adjacency query between vertices u and v. It is
// allocation-free and answers bit-for-bit identically to
// FatThinDecoder.Adjacent over the same labels.
func (e *QueryEngine) Adjacent(u, v int) (bool, error) {
	var t QueryTally
	ok, err := e.AdjacentTallied(u, v, &t)
	if m := e.metrics; m != nil {
		m.flush(&t)
	}
	return ok, err
}

// AdjacentTallied is the shared probe path: it answers one query and tallies
// which decode branch resolved it into t — plain stack increments that the
// batch paths (and external frame loops like adjserve) flush to atomics once
// per span via FlushTally. It is the call to use when streaming single
// queries at batch rates: same probes as Adjacent, no per-query metric cost.
func (e *QueryEngine) AdjacentTallied(u, v int, t *QueryTally) (bool, error) {
	if uint(u) >= uint(e.n) || uint(v) >= uint(e.n) {
		return false, fmt.Errorf("%w: (%d,%d) of %d", ErrVertexRange, u, v, e.n)
	}
	t.queries++
	mu, mv := &e.meta[u], &e.meta[v]
	if mu.id == mv.id {
		// Same vertex: never self-adjacent in a simple graph.
		t.self++
		return false, nil
	}
	switch {
	case !mu.fat:
		t.thin++
		return e.thinProbe(mu, mv.id), nil
	case !mv.fat:
		t.thin++
		return e.thinProbe(mv, mu.id), nil
	default:
		// Both fat: bit mv.id of u's adjacency vector.
		t.fat++
		if mv.id >= uint64(mu.cnt) {
			return false, fmt.Errorf("%w: fat id %d outside vector of %d bits", ErrBadLabel, mv.id, mu.cnt)
		}
		return bitstr.SlabReadBits(e.slab, mu.off+int64(mv.id), 1) == 1, nil
	}
}

// thinProbe binary-searches thin vertex u's sorted neighbor-id list for
// target — the O(log n) decode of Theorems 3/4, with each probe at most two
// word loads at a computed slab offset. Bounds were validated at build
// time.
func (e *QueryEngine) thinProbe(m *vertexMeta, target uint64) bool {
	w := e.w
	if w == 0 {
		return false
	}
	slab, base := e.slab, m.off
	lo, hi := 0, int(m.cnt)-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		got := bitstr.SlabReadBits(slab, base+int64(mid*w), w)
		switch {
		case got == target:
			return true
		case got < target:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false
}

// AdjacentMany answers a batch of queries, appending one result per pair to
// out and returning the extended slice. Passing an out slice with capacity
// for len(pairs) results makes the whole batch allocation-free. It stops at
// the first failing query.
func (e *QueryEngine) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	var t QueryTally
	for _, p := range pairs {
		ok, err := e.AdjacentTallied(p[0], p[1], &t)
		if err != nil {
			e.flushBatch(&t, len(pairs))
			return out, fmt.Errorf("core: query (%d,%d): %w", p[0], p[1], err)
		}
		out = append(out, ok)
	}
	e.flushBatch(&t, len(pairs))
	return out, nil
}

// flushBatch charges one batch call's tally: O(1) atomic adds however many
// pairs the batch held.
func (e *QueryEngine) flushBatch(t *QueryTally, pairs int) {
	if m := e.metrics; m != nil {
		m.flush(t)
		m.Batches.Inc()
		m.BatchPairs.Observe(int64(pairs))
	}
}

// FlushTally charges a caller-managed tally span (see QueryTally) to the
// attached metrics and zeroes the tally. pairs > 0 additionally records one
// batch of that many pairs, making an externally-streamed frame
// indistinguishable from an AdjacentMany call in the exposition; pass 0 for
// a span that ended early (the queries already probed still count). A no-op
// apart from the zeroing when no metrics are attached.
func (e *QueryEngine) FlushTally(t *QueryTally, pairs int) {
	if m := e.metrics; m != nil {
		m.flush(t)
		if pairs > 0 {
			m.Batches.Inc()
			m.BatchPairs.Observe(int64(pairs))
		}
	}
	*t = QueryTally{}
}

// AdjacentManyParallel shards a batch across workers goroutines (workers
// <= 0 selects GOMAXPROCS) and answers each shard with the allocation-free
// single-query path. Results are returned in pair order. The engine itself
// is read-only, so shards share it without synchronization; the only
// coordination is the final join.
func (e *QueryEngine) AdjacentManyParallel(pairs [][2]int, out []bool, workers int) ([]bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		return e.AdjacentMany(pairs, out)
	}
	start := len(out)
	if need := start + len(pairs); cap(out) >= need {
		out = out[:need]
	} else {
		grown := make([]bool, need)
		copy(grown, out)
		out = grown
	}
	res := out[start:]
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			// Worker-local tally, flushed once per shard: the atomics merge
			// shards without any cross-worker coordination in the loop.
			var t QueryTally
			for i := lo; i < hi; i++ {
				ok, err := e.AdjacentTallied(pairs[i][0], pairs[i][1], &t)
				if err != nil {
					errs[wi] = fmt.Errorf("core: query (%d,%d): %w", pairs[i][0], pairs[i][1], err)
					break
				}
				res[i] = ok
			}
			if m := e.metrics; m != nil {
				m.flush(&t)
			}
		}(wi, lo, hi)
	}
	wg.Wait()
	if m := e.metrics; m != nil {
		m.Batches.Inc()
		m.BatchPairs.Observe(int64(len(pairs)))
	}
	for _, err := range errs {
		if err != nil {
			return out[:start], err
		}
	}
	return out, nil
}
