package core

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"repro/internal/bitstr"
)

// QueryEngine is the serving-path counterpart of FatThinDecoder: it is built
// once from a complete fat/thin labeling, pre-parses every label's header
// (fat bit, identifier, body length) into flat slices, and probes label
// bodies in a word-aligned byte slab (big-endian 64-bit words, the shared
// slab layout of bitstr). A query is then a handful of word-addressed probes
// — at most two word loads and a shift per probe, zero heap allocations, no
// Reader, no re-parsing. Labels are validated once at construction, so the
// hot path never errors on well-formed inputs.
//
// Arena-backed labelings (the encode pipeline's output, or a format-v2 label
// store) are adopted zero-copy: the engine points straight at the encoder's
// slab and only parses headers. A degree-ordered slab (LayoutDegree) is
// adopted just the same through NewQueryEngineFromPermutedArena — the meta
// table stays id-indexed, only the offsets follow the permutation, so every
// answer is bit-for-bit identical to the id-ordered layout. Labelings
// assembled label-by-label are relocated into a fresh slab, as before.
//
// A QueryEngine is immutable after construction and safe for concurrent use
// by any number of goroutines.
type QueryEngine struct {
	n int // number of vertices
	w int // identifier width: ceil(log2 n)
	// meta holds the flat pre-parsed headers, one 16-byte record per vertex
	// (four to a cache line), indexed by vertex id regardless of the slab's
	// physical layout.
	meta []vertexMeta
	// slab holds the label bodies: each vertex's body (neighbor ids or fat
	// vector) starts at bit offset meta[v].off. Probes via
	// bitstr.SlabReadBits never cross the end of the backing slice (see the
	// in-bounds argument there).
	slab []byte
	// metrics, when attached, receives per-call tallies (nil costs the hot
	// path a single predictable branch). It is the one mutable piece of an
	// otherwise immutable engine: attach before sharing the engine across
	// goroutines.
	metrics *EngineMetrics
	// cache, when enabled, memoizes (u,v)→answer in a fixed direct-mapped
	// table probed before the slab (see cache.go). Like metrics it must be
	// attached before the engine is shared; afterwards it is written only
	// through single-word atomics and is safe under concurrent batches.
	cache *pairCache
	// resident, when non-nil, marks the engine as serving one shard of a
	// partitioned store (SetShard): bit v says vertex v's full label body is
	// present in the slab (owned, or fat — fat labels are replicated to every
	// shard). Queries resolvable only from a non-resident body return
	// ErrNotResident instead of probing a stripped stub. Like metrics and the
	// cache it is set before the engine is shared and read-only afterwards.
	resident []uint64
	shard    ShardMap
}

// AttachMetrics wires instrumentation into the engine's query paths. Must be
// called before the engine is shared (typically right after construction);
// passing nil detaches. The per-query cost is a stack-local tally flushed
// with O(1) atomic adds per call, preserving the 0 allocs/op guarantee.
func (e *QueryEngine) AttachMetrics(m *EngineMetrics) { e.metrics = m }

// vertexMeta is one label's pre-parsed header, packed into a single 16-byte
// record: the body's slab bit offset, and one word holding the identifier,
// the body count, and the fat flag —
//
//	word = id<<32 | cnt<<1 | fat
//
// cnt is the body size in body units: for thin labels the number of neighbor
// identifiers, for fat labels the vector length in bits; both are capped at
// 2^31-1 at build time, and identifiers fit 32 bits because the engine
// refuses id widths above 32 (2^32 vertices is far beyond maxLabels).
type vertexMeta struct {
	off  int64
	word uint64
}

func (m vertexMeta) id() uint64 { return m.word >> 32 }
func (m vertexMeta) cnt() int64 { return int64(m.word >> 1 & (1<<31 - 1)) }
func (m vertexMeta) fat() bool  { return m.word&1 != 0 }

// packMeta validates a label's body size and packs the header word.
func packMeta(fat bool, id uint64, body, w, v int) (uint64, error) {
	if body > 1<<31-1 {
		// cnt occupies 31 bits; a larger body would silently truncate and turn
		// the build-time bounds guarantees into query-time garbage.
		return 0, fmt.Errorf("%w: label %d: body of %d bits", ErrBadLabel, v, body)
	}
	cnt := 0
	switch {
	case fat:
		cnt = body
	case w == 0:
		cnt = 0
	default:
		if body%w != 0 {
			return 0, fmt.Errorf("%w: label %d: thin body %d bits not a multiple of id width %d",
				ErrBadLabel, v, body, w)
		}
		cnt = body / w
	}
	word := id<<32 | uint64(cnt)<<1
	if fat {
		word |= 1
	}
	return word, nil
}

// NewQueryEngine builds an engine over a labeling produced by any scheme
// using the fat/thin label layout (FatThinScheme, baseline.NeighborList).
// Labels are validated once here; malformed labels that FatThinDecoder
// would reject at query time are rejected at build time instead. An
// arena-backed labeling — id-ordered or degree-ordered — is adopted without
// relocating a single body bit.
func NewQueryEngine(lab *Labeling) (*QueryEngine, error) {
	if lab.arena != nil {
		bitLens := make([]int, len(lab.labels))
		for v, s := range lab.labels {
			bitLens[v] = s.Len()
		}
		return NewQueryEngineFromPermutedArena(lab.arena, bitLens, lab.order)
	}
	return NewQueryEngineFromLabels(lab.labels)
}

// NewQueryEngineFromArena builds an engine directly over a word-aligned
// label slab (label v at bit offset 64·Σ_{u<v} ceil(bitLens[u]/64)), e.g.
// the arena of a pipeline-built Labeling or a format-v2 label store. The
// slab is adopted zero-copy: construction parses and validates the n label
// headers but never moves a body.
func NewQueryEngineFromArena(slab []byte, bitLens []int) (*QueryEngine, error) {
	return NewQueryEngineFromPermutedArena(slab, bitLens, nil)
}

// NewQueryEngineFromPermutedArena builds an engine over a physically
// permuted slab: the label at slab rank r is label order[r], occupying
// bitLens[order[r]] bits (the LayoutDegree output of the encode pipeline,
// or a label store carrying a layout permutation). The meta table is still
// indexed by vertex id — reconstruction is a matter of walking the slab in
// rank order while scattering headers to meta[order[r]] — so queries are
// answered byte-for-byte identically to an id-ordered engine over the same
// labeling. order must be a permutation of 0..len(bitLens)-1; nil is the
// identity (NewQueryEngineFromArena).
func NewQueryEngineFromPermutedArena(slab []byte, bitLens []int, order []int32) (*QueryEngine, error) {
	n := len(bitLens)
	w := bitstr.WidthFor(uint64(n))
	if w > 32 {
		return nil, fmt.Errorf("%w: %d labels need id width %d, engine packs ids in 32 bits", ErrBadLabel, n, w)
	}
	if order != nil && len(order) != n {
		return nil, fmt.Errorf("%w: layout permutation of %d entries over %d labels", ErrBadLabel, len(order), n)
	}
	header := 1 + w
	e := &QueryEngine{n: n, w: w, meta: make([]vertexMeta, n), slab: slab}
	var seen []uint64
	if order != nil {
		seen = make([]uint64, (n+63)>>6)
	}
	var off int64
	for r := 0; r < n; r++ {
		v := r
		if order != nil {
			v = int(order[r])
			if v < 0 || v >= n {
				return nil, fmt.Errorf("%w: layout permutation entry %d = %d of %d labels", ErrBadLabel, r, order[r], n)
			}
			if seen[v>>6]&(1<<uint(v&63)) != 0 {
				return nil, fmt.Errorf("%w: layout permutation repeats label %d at rank %d", ErrBadLabel, v, r)
			}
			seen[v>>6] |= 1 << uint(v&63)
		}
		bits := bitLens[v]
		if bits < header {
			return nil, fmt.Errorf("%w: label %d has %d bits, header needs %d", ErrBadLabel, v, bits, header)
		}
		if bits > maxLabelBits {
			// Also keeps end below overflow for any label count that fits in
			// memory: untrusted bit lengths (fuzzed or corrupt headers) are
			// bounded before any offset arithmetic.
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrBadLabel, v, bits)
		}
		end := off + int64(bitstr.SlabWords(bits))*bitstr.SlabWordBits
		if int(end>>3) > len(slab) {
			return nil, fmt.Errorf("%w: label %d ends at byte %d of a %d-byte slab", ErrBadLabel, v, end>>3, len(slab))
		}
		fat := bitstr.SlabReadBits(slab, off, 1) == 1
		var id uint64
		if w > 0 {
			id = bitstr.SlabReadBits(slab, off+1, w)
		}
		word, err := packMeta(fat, id, bits-header, w, v)
		if err != nil {
			return nil, err
		}
		e.meta[v] = vertexMeta{off: off + int64(header), word: word}
		off = end
	}
	return e, nil
}

// maxLabelBits caps a single label's declared bit length (matching the
// labelstore's cap): beyond it, offset arithmetic and the 31-bit body counts
// could overflow on attacker-controlled headers.
const maxLabelBits = 1 << 34

// NewQueryEngineFromLabels builds an engine over per-vertex labels from any
// source (e.g. a legacy label store), relocating the bodies into a fresh
// word-aligned slab. The identifier width is ceil(log2 len(labels)), exactly
// as for NewFatThinDecoder.
func NewQueryEngineFromLabels(labels []bitstr.String) (*QueryEngine, error) {
	n := len(labels)
	w := bitstr.WidthFor(uint64(n))
	if w > 32 {
		return nil, fmt.Errorf("%w: %d labels need id width %d, engine packs ids in 32 bits", ErrBadLabel, n, w)
	}
	header := 1 + w
	e := &QueryEngine{
		n:    n,
		w:    w,
		meta: make([]vertexMeta, n),
	}
	// Pass 1: validate headers and size the slab (bodies word-aligned).
	totalWords := 0
	for v, s := range labels {
		if s.Len() < header {
			return nil, fmt.Errorf("%w: label %d has %d bits, header needs %d", ErrBadLabel, v, s.Len(), header)
		}
		fat := s.MustPeekUint(0, 1) == 1
		word, err := packMeta(fat, s.MustPeekUint(1, w), s.Len()-header, w, v)
		if err != nil {
			return nil, err
		}
		e.meta[v] = vertexMeta{word: word}
		totalWords += bitstr.SlabWords(s.Len() - header)
	}
	// Pass 2: copy bodies into the slab, MSB-first within each big-endian
	// word to match the label bit order.
	e.slab = make([]byte, bitstr.SlabBytes(totalWords))
	word := 0
	for v, s := range labels {
		e.meta[v].off = int64(word) * bitstr.SlabWordBits
		body := s.Len() - header
		for i := 0; i < body; i += 64 {
			chunk := body - i
			if chunk > 64 {
				chunk = 64
			}
			binary.BigEndian.PutUint64(e.slab[word<<3:], s.MustPeekUint(header+i, chunk)<<(64-uint(chunk)))
			word++
		}
	}
	return e, nil
}

// N returns the number of vertices the engine serves.
func (e *QueryEngine) N() int { return e.n }

// Adjacent answers an adjacency query between vertices u and v. It is
// allocation-free and answers bit-for-bit identically to
// FatThinDecoder.Adjacent over the same labels.
func (e *QueryEngine) Adjacent(u, v int) (bool, error) {
	var t QueryTally
	ok, err := e.AdjacentTallied(u, v, &t)
	if m := e.metrics; m != nil {
		m.flush(&t)
	}
	return ok, err
}

// AdjacentTallied is the shared probe path: it answers one query and tallies
// which decode branch resolved it into t — plain stack increments that the
// batch paths (and external frame loops like adjserve) flush to atomics once
// per span via FlushTally. It is the call to use when streaming single
// queries at batch rates: same probes as Adjacent, no per-query metric cost.
// With a result cache enabled (EnableResultCache) the slab is only probed on
// a miss; hits and misses are tallied alongside the branch counts.
func (e *QueryEngine) AdjacentTallied(u, v int, t *QueryTally) (bool, error) {
	if uint(u) >= uint(e.n) || uint(v) >= uint(e.n) {
		return false, fmt.Errorf("%w: (%d,%d) of %d", ErrVertexRange, u, v, e.n)
	}
	t.queries++
	if c := e.cache; c != nil {
		key := pairCacheKey(u, v)
		if ans, hit := c.get(key); hit {
			t.cacheHits++
			return ans, nil
		}
		t.cacheMisses++
		ans, err := e.probe(u, v, t)
		if err == nil {
			c.put(key, ans)
		}
		return ans, err
	}
	return e.probe(u, v, t)
}

// probe resolves one in-range query against the slab.
func (e *QueryEngine) probe(u, v int, t *QueryTally) (bool, error) {
	if e.resident != nil {
		// Sharded engine: pick a resident body (see probeSharded). The nil
		// check is the only cost an unsharded engine pays.
		return e.probeSharded(u, v, t)
	}
	mu, mv := e.meta[u], e.meta[v]
	if mu.id() == mv.id() {
		// Same vertex: never self-adjacent in a simple graph.
		t.self++
		return false, nil
	}
	switch {
	case !mu.fat():
		t.thin++
		return e.thinProbe(mu, mv.id()), nil
	case !mv.fat():
		t.thin++
		return e.thinProbe(mv, mu.id()), nil
	default:
		// Both fat: bit mv.id of u's adjacency vector.
		t.fat++
		if mv.id() >= uint64(mu.cnt()) {
			return false, fmt.Errorf("%w: fat id %d outside vector of %d bits", ErrBadLabel, mv.id(), mu.cnt())
		}
		return bitstr.SlabReadBits(e.slab, mu.off+int64(mv.id()), 1) == 1, nil
	}
}

// thinProbe binary-searches thin vertex u's sorted neighbor-id list for
// target — the O(log n) decode of Theorems 3/4, with each probe at most two
// word loads at a computed slab offset. Bounds were validated at build
// time.
func (e *QueryEngine) thinProbe(m vertexMeta, target uint64) bool {
	w := e.w
	if w == 0 {
		return false
	}
	slab, base := e.slab, m.off
	lo, hi := 0, int(m.cnt())-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		got := bitstr.SlabReadBits(slab, base+int64(mid*w), w)
		switch {
		case got == target:
			return true
		case got < target:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false
}

// AdjacentMany answers a batch of queries, appending one result per pair to
// out and returning the extended slice. Passing an out slice with capacity
// for len(pairs) results makes the whole batch allocation-free. It stops at
// the first failing query.
func (e *QueryEngine) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	var t QueryTally
	for _, p := range pairs {
		ok, err := e.AdjacentTallied(p[0], p[1], &t)
		if err != nil {
			e.flushBatch(&t, len(pairs))
			return out, fmt.Errorf("core: query (%d,%d): %w", p[0], p[1], err)
		}
		out = append(out, ok)
	}
	e.flushBatch(&t, len(pairs))
	return out, nil
}

// BatchScratch holds the reusable working memory of AdjacentManySorted. One
// scratch serves any number of sequential batches on one goroutine (the
// buffers grow to the largest batch seen and stay); concurrent batches each
// need their own.
type BatchScratch struct {
	keys []uint64
}

// sortIdxBits is the width of the pair-index field packed into a sort key;
// the remaining 40 bits carry the probe's slab word index.
const sortIdxBits = 24

// AdjacentManySorted answers a batch like AdjacentMany but probes the pairs
// in ascending arena-offset order and scatters the answers back into request
// order — on a degree-ordered slab under skewed traffic the probe stream
// walks the hot pages nearly sequentially instead of striding the whole
// arena. Each pair's key is the slab word its probe will touch (the first
// endpoint's body, or the thin endpoint's when a fat/thin pair binary-searches
// the thin list), packed with the pair's index so the sort itself is
// allocation-free over sc.keys. Answers are identical to AdjacentMany in any
// order and layout; only the probe schedule changes. Batches of 2^24 pairs
// or more (beyond the index field) and calls without a scratch fall back to
// AdjacentMany. Unlike AdjacentMany, a failing query drops the whole batch:
// probes run out of request order, so "results so far" has no prefix
// meaning.
func (e *QueryEngine) AdjacentManySorted(pairs [][2]int, out []bool, sc *BatchScratch) ([]bool, error) {
	if sc == nil || len(pairs) >= 1<<sortIdxBits {
		return e.AdjacentMany(pairs, out)
	}
	start := len(out)
	out = growBools(out, len(pairs))
	res := out[start:]
	if cap(sc.keys) < len(pairs) {
		sc.keys = make([]uint64, len(pairs))
	}
	keys := sc.keys[:len(pairs)]
	const maxSortKey = 1<<(64-sortIdxBits) - 1
	for i, p := range pairs {
		u, v := p[0], p[1]
		if uint(u) >= uint(e.n) || uint(v) >= uint(e.n) {
			return out[:start], fmt.Errorf("core: query (%d,%d): %w: (%d,%d) of %d", u, v, ErrVertexRange, u, v, e.n)
		}
		mu, mv := e.meta[u], e.meta[v]
		off := mu.off
		if mu.fat() && !mv.fat() {
			off = mv.off
		}
		key := uint64(off) >> 6
		if key > maxSortKey {
			// Only the schedule degrades; the index bits stay exact.
			key = maxSortKey
		}
		keys[i] = key<<sortIdxBits | uint64(i)
	}
	slices.Sort(keys)
	var t QueryTally
	for _, k := range keys {
		i := int(k & (1<<sortIdxBits - 1))
		ok, err := e.AdjacentTallied(pairs[i][0], pairs[i][1], &t)
		if err != nil {
			e.flushBatch(&t, len(pairs))
			return out[:start], fmt.Errorf("core: query (%d,%d): %w", pairs[i][0], pairs[i][1], err)
		}
		res[i] = ok
	}
	e.flushBatch(&t, len(pairs))
	return out, nil
}

// growBools extends out by extra entries, reusing capacity when it can.
func growBools(out []bool, extra int) []bool {
	if need := len(out) + extra; cap(out) >= need {
		return out[:need]
	}
	grown := make([]bool, len(out)+extra)
	copy(grown, out)
	return grown
}

// flushBatch charges one batch call's tally: O(1) atomic adds however many
// pairs the batch held.
func (e *QueryEngine) flushBatch(t *QueryTally, pairs int) {
	if m := e.metrics; m != nil {
		m.flush(t)
		m.Batches.Inc()
		m.BatchPairs.Observe(int64(pairs))
	}
}

// FlushTally charges a caller-managed tally span (see QueryTally) to the
// attached metrics and zeroes the tally. pairs > 0 additionally records one
// batch of that many pairs, making an externally-streamed frame
// indistinguishable from an AdjacentMany call in the exposition; pass 0 for
// a span that ended early (the queries already probed still count). A no-op
// apart from the zeroing when no metrics are attached.
func (e *QueryEngine) FlushTally(t *QueryTally, pairs int) {
	if m := e.metrics; m != nil {
		m.flush(t)
		if pairs > 0 {
			m.Batches.Inc()
			m.BatchPairs.Observe(int64(pairs))
		}
	}
	*t = QueryTally{}
}

// ObserveProbe charges one served frame's engine-probe wall time to the
// attached metrics (see EngineMetrics.ObserveProbe); a no-op without
// metrics. The serving loop calls it once per successful query frame.
func (e *QueryEngine) ObserveProbe(ns int64, traceID uint64) {
	if m := e.metrics; m != nil {
		m.ObserveProbe(ns, traceID)
	}
}

// AdjacentManyParallel shards a batch across workers goroutines (workers
// <= 0 selects GOMAXPROCS) and answers each shard with the allocation-free
// single-query path. Results are returned in pair order. The engine itself
// is read-only, so shards share it without synchronization; the only
// coordination is the final join.
func (e *QueryEngine) AdjacentManyParallel(pairs [][2]int, out []bool, workers int) ([]bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		return e.AdjacentMany(pairs, out)
	}
	start := len(out)
	out = growBools(out, len(pairs))
	res := out[start:]
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			// Worker-local tally, flushed once per shard: the atomics merge
			// shards without any cross-worker coordination in the loop.
			var t QueryTally
			for i := lo; i < hi; i++ {
				ok, err := e.AdjacentTallied(pairs[i][0], pairs[i][1], &t)
				if err != nil {
					errs[wi] = fmt.Errorf("core: query (%d,%d): %w", pairs[i][0], pairs[i][1], err)
					break
				}
				res[i] = ok
			}
			if m := e.metrics; m != nil {
				m.flush(&t)
			}
		}(wi, lo, hi)
	}
	wg.Wait()
	if m := e.metrics; m != nil {
		m.Batches.Inc()
		m.BatchPairs.Observe(int64(len(pairs)))
	}
	for _, err := range errs {
		if err != nil {
			return out[:start], err
		}
	}
	return out, nil
}
