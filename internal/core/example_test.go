package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
)

// Example shows the end-to-end flow: encode a power-law graph, then decide
// adjacency from two labels with a decoder that knows only n.
func Example() {
	g, err := gen.ChungLuPowerLaw(2000, 2.5, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	lab, err := core.NewPowerLawSchemeAuto().Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	a, err := lab.Label(10)
	if err != nil {
		log.Fatal(err)
	}
	b, err := lab.Label(20)
	if err != nil {
		log.Fatal(err)
	}
	dec := core.NewFatThinDecoder(g.N())
	adj, err := dec.Adjacent(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(adj == g.HasEdge(10, 20))
	// Output: true
}

// ExampleNewFixedThresholdScheme shows manual control over the fat/thin
// threshold, as used by the sweep experiments.
func ExampleNewFixedThresholdScheme() {
	g := gen.Star(64) // one hub, 63 leaves
	lab, err := core.NewFixedThresholdScheme(10).Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	st := lab.Stats()
	// The hub (degree 63 ≥ 10) is fat: its label is 1 + log n + k = 1+6+1
	// bits. Leaves are thin with a single neighbor id: 1 + 6 + 6 bits.
	fmt.Println(st.Max, st.Min)
	// Output: 13 8
}

// ExampleFatThinScheme_Threshold shows the threshold a scheme would pick.
func ExampleFatThinScheme_Threshold() {
	g, err := gen.ChungLuPowerLaw(10000, 2.5, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	tau, err := core.NewPowerLawSchemePractical(2.5).Threshold(g)
	if err != nil {
		log.Fatal(err)
	}
	// ceil((10000 / log2 10000)^(1/2.5))
	fmt.Println(tau)
	// Output: 15
}
