package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/gen"
)

// encodeLens packs per-label bit lengths as uvarints — the same wire shape
// the labelstore header uses, so fuzz mutations explore realistic header
// corruptions (truncated varints, giant lengths, length/blob disagreement).
func encodeLens(bitLens []int) []byte {
	out := make([]byte, 0, len(bitLens))
	var buf [binary.MaxVarintLen64]byte
	for _, bits := range bitLens {
		out = append(out, buf[:binary.PutUvarint(buf[:], uint64(bits))]...)
	}
	return out
}

// decodeLens is the fuzz-side inverse: uvarints back to ints, deliberately
// without sanitizing values (overlong lengths and wrap-around negatives must
// be rejected by the engine, not by the harness). Only the count is capped
// so a pathological input can't make the harness itself slow.
func decodeLens(data []byte) []int {
	const maxFuzzLabels = 1 << 12
	var lens []int
	for len(data) > 0 && len(lens) < maxFuzzLabels {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			break
		}
		data = data[n:]
		lens = append(lens, int(v))
	}
	return lens
}

// FuzzQueryEngineHeaders hammers NewQueryEngineFromArena with raw slab bytes
// and header-declared bit lengths. The property under test: for ANY input,
// construction either errors or yields an engine whose queries never panic
// or read out of bounds — the build-time validation is the only line of
// defense, because the probe path (bitstr.SlabReadBits) is unchecked by
// design. Seeds come from real fat/thin and compressed labelings so the
// corpus starts at valid headers and mutates outward.
func FuzzQueryEngineHeaders(f *testing.F) {
	seed := func(encode func() (*Labeling, error)) {
		lab, err := encode()
		if err != nil {
			f.Fatal(err)
		}
		slab, ok := lab.Arena()
		if !ok {
			f.Fatal("seed labeling is not arena-backed")
		}
		bitLens := make([]int, lab.N())
		for v := range bitLens {
			l, err := lab.Label(v)
			if err != nil {
				f.Fatal(err)
			}
			bitLens[v] = l.Len()
		}
		f.Add(slab, encodeLens(bitLens))
	}
	g, err := gen.ChungLuPowerLaw(150, 2.5, 2, 17)
	if err != nil {
		f.Fatal(err)
	}
	seed(func() (*Labeling, error) { return NewPowerLawScheme(2.5).Encode(g) })
	seed(func() (*Labeling, error) { return NewSparseSchemeAuto().Encode(g) })
	seed(func() (*Labeling, error) { return NewCompressedScheme(NewPowerLawScheme(2.5)).Encode(g) })
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 16), encodeLens([]int{9, 64}))

	f.Fuzz(func(t *testing.T, slab []byte, lensBytes []byte) {
		bitLens := decodeLens(lensBytes)
		eng, err := NewQueryEngineFromArena(slab, bitLens)
		if err != nil {
			return // rejected at build time: exactly what corrupt headers should get
		}
		n := eng.N()
		if n == 0 {
			if _, err := eng.Adjacent(0, 0); err == nil {
				t.Fatal("empty engine accepted a query")
			}
			return
		}
		// Probe a spread of pairs, including out-of-range ones; answers may
		// be garbage relative to any graph (the slab is noise), but every
		// call must return without panicking and errors must be range or
		// label errors, never index faults.
		pairs := [][2]int{
			{0, 0}, {0, n - 1}, {n - 1, 0}, {n / 2, n / 3},
			{-1, 0}, {0, n}, {n, n},
		}
		for i := 0; i < n && i < 32; i++ {
			pairs = append(pairs, [2]int{i, (i * 7) % n})
		}
		for _, p := range pairs {
			_, _ = eng.Adjacent(p[0], p[1])
		}
		_, _ = eng.AdjacentMany(pairs, nil)
	})
}
