package core

import (
	"repro/internal/obs"
)

// EngineMetrics instruments a QueryEngine's hot path without breaking its
// zero-allocation guarantee: the probe loops tally into a stack-local
// QueryTally (plain register increments), and the tally is flushed to these
// atomics once per call — one batch of AdjacentMany costs a constant number
// of atomic adds regardless of its pair count.
//
// The fat/thin branch split is the paper's decode dichotomy made visible:
// ThinBranch counts queries resolved by the O(log n) binary search of
// Theorems 3–4, FatBranch the O(1) hub bitmap probes, SelfBranch the
// same-identifier short-circuit.
type EngineMetrics struct {
	Queries     obs.Counter // adjacency queries answered
	Batches     obs.Counter // AdjacentMany/AdjacentManyParallel calls
	ThinBranch  obs.Counter // queries resolved by a thin binary-search probe
	FatBranch   obs.Counter // queries resolved by a fat bitmap probe
	SelfBranch  obs.Counter // same-identifier short-circuits
	CacheHits   obs.Counter // result-cache hits (cache enabled only)
	CacheMisses obs.Counter // result-cache misses (cache enabled only)
	BatchPairs  obs.Histogram
	// ProbeNs is the engine-probe wall time per served frame (decode pairs,
	// probe the arena, encode the answer), charged once per frame by the
	// serving loop via ObserveProbe — the engine-layer stage the tracing
	// plane attributes as "probe".
	ProbeNs obs.Histogram
}

// Register exposes the metrics on reg under the engine_* family names. Call
// once per registry.
func (m *EngineMetrics) Register(reg *obs.Registry) {
	reg.Counter("engine_queries_total", "Adjacency queries answered by the query engine.", &m.Queries)
	reg.Counter("engine_batches_total", "Batch calls (AdjacentMany and the parallel variant).", &m.Batches)
	reg.Counter("engine_branch_thin_total", "Queries resolved by the thin O(log n) binary-search branch.", &m.ThinBranch)
	reg.Counter("engine_branch_fat_total", "Queries resolved by the fat O(1) bitmap-probe branch.", &m.FatBranch)
	reg.Counter("engine_branch_self_total", "Queries short-circuited by equal identifiers.", &m.SelfBranch)
	reg.Counter("engine_cache_hits_total", "Queries answered from the (u,v) result cache.", &m.CacheHits)
	reg.Counter("engine_cache_misses_total", "Result-cache lookups that fell through to a slab probe.", &m.CacheMisses)
	reg.Histogram("engine_batch_pairs", "Pairs per batch call.", &m.BatchPairs)
	reg.Histogram("engine_probe_ns", "Engine-probe wall time per served frame.", &m.ProbeNs)
}

// RegisterDist exposes the metrics on reg under the dist_engine_* family
// names — the distance plane's instrumentation (DistEngine shares the
// EngineMetrics/QueryTally machinery; only the exposition names and branch
// semantics differ: thin counts PLL merges and thin-thin bounded pairs, fat
// counts bounded queries resolved through the fat-hub relay tables).
func (m *EngineMetrics) RegisterDist(reg *obs.Registry) {
	reg.Counter("dist_engine_queries_total", "Distance queries answered by the distance engine.", &m.Queries)
	reg.Counter("dist_engine_batches_total", "Batch calls (DistMany and variants).", &m.Batches)
	reg.Counter("dist_engine_branch_thin_total", "PLL hub-list merges and thin-thin bounded-distance queries.", &m.ThinBranch)
	reg.Counter("dist_engine_branch_fat_total", "Bounded-distance queries with a fat endpoint (fat-relay only).", &m.FatBranch)
	reg.Counter("dist_engine_branch_self_total", "Queries short-circuited by equal identifiers.", &m.SelfBranch)
	reg.Counter("dist_engine_cache_hits_total", "Queries answered from the (u,v) distance cache.", &m.CacheHits)
	reg.Counter("dist_engine_cache_misses_total", "Distance-cache lookups that fell through to a slab probe.", &m.CacheMisses)
	reg.Histogram("dist_engine_batch_pairs", "Pairs per distance batch call.", &m.BatchPairs)
	reg.Histogram("dist_engine_probe_ns", "Engine-probe wall time per served distance frame.", &m.ProbeNs)
}

// QueryTally is the stack-local accumulator the probe paths increment; it is
// flushed to an EngineMetrics in O(1) atomic adds per span. The zero value is
// an empty tally. Callers that stream single queries at batch rates (the
// adjserve frame loop) keep one tally per frame, feed it to AdjacentTallied,
// and flush with QueryEngine.FlushTally — per-query cost is two stack
// increments, never an atomic.
type QueryTally struct {
	queries, thin, fat, self int64
	cacheHits, cacheMisses   int64
}

// ObserveProbe charges one served frame's engine-probe wall time, stamping
// the latency bucket's exemplar with the trace id when the frame was traced
// (id != 0) so /debug/traces can join buckets back to concrete traces.
func (m *EngineMetrics) ObserveProbe(ns int64, traceID uint64) {
	if traceID != 0 {
		m.ProbeNs.ObserveExemplar(ns, traceID)
		return
	}
	m.ProbeNs.Observe(ns)
}

// flush merges a tally into the atomics.
func (m *EngineMetrics) flush(t *QueryTally) {
	m.Queries.Add(t.queries)
	m.ThinBranch.Add(t.thin)
	m.FatBranch.Add(t.fat)
	m.SelfBranch.Add(t.self)
	m.CacheHits.Add(t.cacheHits)
	m.CacheMisses.Add(t.cacheMisses)
}

// pipelineMetrics instruments the slab encode pipeline (both the fat/thin
// and compressed encoders): per-phase durations and the label construction
// volume. Package-level because the pipeline entry points are free
// functions; the counters accumulate whether or not a registry exposes them.
var pipelineMetrics struct {
	Runs   obs.Counter
	Labels obs.Counter
	PlanNs obs.Histogram
	FillNs obs.Histogram
}

// RegisterPipelineMetrics exposes the encode-pipeline metrics on reg under
// the encode_* family names. Call once per registry; the values cover every
// pipeline encode in the process, including those finished before
// registration.
func RegisterPipelineMetrics(reg *obs.Registry) {
	reg.Counter("encode_runs_total", "Slab-pipeline encodes completed.", &pipelineMetrics.Runs)
	reg.Counter("encode_labels_total", "Labels constructed by the slab pipeline (rate() gives labels/s).", &pipelineMetrics.Labels)
	reg.Histogram("encode_plan_ns", "Size-plan phase duration per encode run.", &pipelineMetrics.PlanNs)
	reg.Histogram("encode_fill_ns", "Fill phase duration per encode run.", &pipelineMetrics.FillNs)
}
