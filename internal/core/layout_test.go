package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestParseLayout(t *testing.T) {
	for s, want := range map[string]Layout{"id": LayoutID, "degree": LayoutDegree} {
		got, err := ParseLayout(s)
		if err != nil || got != want {
			t.Errorf("ParseLayout(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("Layout(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseLayout("zigzag"); err == nil {
		t.Error("ParseLayout accepted garbage")
	}
}

// layoutScheme is any scheme that can switch its physical slab layout.
type layoutScheme interface {
	Scheme
	SetLayout(Layout)
	EncodeParallel(*graph.Graph, int) (*Labeling, error)
}

// TestLayoutEquivalence is the tentpole invariant: the degree-ordered layout
// is a physical rearrangement only. Across schemes, graphs, and worker
// counts, every per-vertex label must be byte-equal to the id-ordered
// encoding's and every adjacency answer identical pair-for-pair — through
// the decoder and (for the engine's label format) through the query engine.
func TestLayoutEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":  gen.Path(24),
		"empty": graph.Empty(3),
		"n1":    graph.Empty(1),
		"n0":    graph.Empty(0),
	}
	if g, err := gen.ChungLuPowerLaw(600, 2.5, 2, 17); err == nil {
		graphs["chunglu"] = g
	} else {
		t.Fatal(err)
	}
	if g, err := gen.BarabasiAlbert(400, 3, 23); err == nil {
		graphs["ba"] = g
	} else {
		t.Fatal(err)
	}
	schemes := map[string]func() layoutScheme{
		"powerlaw":   func() layoutScheme { return NewPowerLawScheme(2.5) },
		"sparse":     func() layoutScheme { return NewSparseSchemeAuto() },
		"compressed": func() layoutScheme { return NewCompressedScheme(NewPowerLawScheme(2.5)) },
	}
	for sname, mk := range schemes {
		for gname, g := range graphs {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/w%d", sname, gname, workers), func(t *testing.T) {
					idScheme, degScheme := mk(), mk()
					idScheme.SetLayout(LayoutID)
					degScheme.SetLayout(LayoutDegree)
					idLab, err := idScheme.EncodeParallel(g, workers)
					if err != nil {
						t.Fatal(err)
					}
					degLab, err := degScheme.EncodeParallel(g, workers)
					if err != nil {
						t.Fatal(err)
					}
					for v := 0; v < g.N(); v++ {
						a, err1 := idLab.Label(v)
						b, err2 := degLab.Label(v)
						if err1 != nil || err2 != nil {
							t.Fatal(err1, err2)
						}
						if !a.Equal(b) {
							t.Fatalf("label %d differs between layouts", v)
						}
					}
					rng := rand.New(rand.NewSource(1))
					checkPairs := equivalencePairs(g, rng, 500)
					for _, p := range checkPairs {
						a, err1 := idLab.Adjacent(p[0], p[1])
						b, err2 := degLab.Adjacent(p[0], p[1])
						if err1 != nil || err2 != nil {
							t.Fatal(err1, err2)
						}
						if a != b {
							t.Fatalf("decoder answers differ at (%d,%d): id=%v degree=%v", p[0], p[1], a, b)
						}
						if a != g.HasEdge(p[0], p[1]) {
							t.Fatalf("wrong answer at (%d,%d)", p[0], p[1])
						}
					}
					if sname == "compressed" || g.N() == 0 {
						return // engine serves the plain fat/thin format only
					}
					engID, err := NewQueryEngine(idLab)
					if err != nil {
						t.Fatal(err)
					}
					engDeg, err := NewQueryEngine(degLab)
					if err != nil {
						t.Fatal(err)
					}
					outID, err := engID.AdjacentMany(checkPairs, nil)
					if err != nil {
						t.Fatal(err)
					}
					outDeg, err := engDeg.AdjacentMany(checkPairs, nil)
					if err != nil {
						t.Fatal(err)
					}
					var sc BatchScratch
					outSorted, err := engDeg.AdjacentManySorted(checkPairs, nil, &sc)
					if err != nil {
						t.Fatal(err)
					}
					for i := range checkPairs {
						if outID[i] != outDeg[i] || outID[i] != outSorted[i] {
							t.Fatalf("engine answers differ at pair %d (%v): id=%v degree=%v sorted=%v",
								i, checkPairs[i], outID[i], outDeg[i], outSorted[i])
						}
					}
				})
			}
		}
	}
}

// equivalencePairs mixes every edge (up to a cap) with random pairs so both
// positive and negative answers are exercised.
func equivalencePairs(g *graph.Graph, rng *rand.Rand, extra int) [][2]int {
	var pairs [][2]int
	g.Edges(func(u, v int) {
		if len(pairs) < 2000 {
			pairs = append(pairs, [2]int{u, v})
		}
	})
	for i := 0; i < extra && g.N() > 0; i++ {
		pairs = append(pairs, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}
	return pairs
}

func TestAdjacentManySortedFallsBackWithoutScratch(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(200, 2.5, 2, 29)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	pairs := equivalencePairs(g, rand.New(rand.NewSource(2)), 100)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AdjacentManySorted(pairs, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if want[i] != got[i] {
			t.Fatalf("fallback answer differs at %d", i)
		}
	}
}

func TestEnableResultCacheValidates(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(100, 2.5, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableResultCache(40); err == nil {
		t.Error("oversized cache accepted")
	}
	if err := eng.EnableResultCache(10); err != nil {
		t.Errorf("EnableResultCache(10): %v", err)
	}
	if err := eng.EnableResultCache(0); err != nil {
		t.Errorf("EnableResultCache(0) should detach, got %v", err)
	}
}

// TestResultCacheAnswersAndCounters: with the cache attached, answers stay
// identical and a repeated batch registers hits on the engine metrics.
func TestResultCacheAnswersAndCounters(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(400, 2.5, 2, 37)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	pairs := equivalencePairs(g, rand.New(rand.NewSource(3)), 300)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableResultCache(12); err != nil {
		t.Fatal(err)
	}
	var em EngineMetrics
	eng.AttachMetrics(&em)
	var sc BatchScratch
	for round := 0; round < 2; round++ {
		got, err := eng.AdjacentManySorted(pairs, nil, &sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if got[i] != want[i] {
				t.Fatalf("round %d: cached answer differs at pair %d (%v)", round, i, pairs[i])
			}
		}
	}
	hits, misses := em.CacheHits.Load(), em.CacheMisses.Load()
	if hits == 0 {
		t.Errorf("no cache hits after a repeated batch (misses=%d)", misses)
	}
	if misses == 0 {
		t.Error("no cache misses recorded on a cold cache")
	}
}

// TestResultCacheConcurrentBatches hammers one cache-enabled engine from
// many goroutines (run under -race in CI): the direct-mapped slots are
// single-word atomics, so concurrent batches may lose updates but can never
// corrupt an answer.
func TestResultCacheConcurrentBatches(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(500, 2.5, 2, 41)
	if err != nil {
		t.Fatal(err)
	}
	s := NewPowerLawScheme(2.5)
	s.SetLayout(LayoutDegree)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableResultCache(8); err != nil { // tiny: force eviction races
		t.Fatal(err)
	}
	pairs := equivalencePairs(g, rand.New(rand.NewSource(4)), 400)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([][2]int, len(pairs))
			idx := rng.Perm(len(pairs))
			for i, j := range idx {
				local[i] = pairs[j]
			}
			var sc BatchScratch
			var out []bool
			for round := 0; round < 20; round++ {
				var err error
				out, err = eng.AdjacentManySorted(local, out[:0], &sc)
				if err != nil {
					errs <- err
					return
				}
				for i := range local {
					if out[i] != want[idx[i]] {
						errs <- fmt.Errorf("worker %d round %d: wrong answer at pair %v", seed, round, local[i])
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAdjacentManySortedZeroAlloc is the acceptance bar from the issue: the
// hot batch path performs zero heap allocations per call, result cache
// enabled included.
func TestAdjacentManySortedZeroAlloc(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(400, 2.5, 2, 43)
	if err != nil {
		t.Fatal(err)
	}
	s := NewPowerLawScheme(2.5)
	s.SetLayout(LayoutDegree)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableResultCache(10); err != nil {
		t.Fatal(err)
	}
	pairs := equivalencePairs(g, rand.New(rand.NewSource(5)), 200)
	out := make([]bool, 0, len(pairs))
	var sc BatchScratch
	if out, err = eng.AdjacentManySorted(pairs, out[:0], &sc); err != nil {
		t.Fatal(err) // warm-up grows the scratch once
	}
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		out, err = eng.AdjacentManySorted(pairs, out[:0], &sc)
		if err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AdjacentManySorted allocates %.1f objects/op, want 0", allocs)
	}
}
