package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/powerlaw"
)

// testGraphs returns a battery of small named graphs that every scheme must
// label correctly.
func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	ba, err := gen.BarabasiAlbert(120, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gen.ChungLuPowerLaw(200, 2.5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"empty0":   graph.Empty(0),
		"single":   graph.Empty(1),
		"two-isol": graph.Empty(2),
		"edge":     gen.Path(2),
		"path10":   gen.Path(10),
		"cycle9":   gen.Cycle(9),
		"star50":   gen.Star(50),
		"K8":       gen.Complete(8),
		"K3x5":     gen.CompleteBipartite(3, 5),
		"grid5x5":  gen.Grid(5, 5),
		"er100":    gen.ErdosRenyi(100, 0.08, 3),
		"tree80":   gen.RandomTree(80, 4),
		"ba120":    ba,
		"cl200":    cl,
	}
}

func schemesUnderTest() []*FatThinScheme {
	return []*FatThinScheme{
		NewSparseScheme(2),
		NewSparseSchemeAuto(),
		NewPowerLawScheme(2.5),
		NewFixedThresholdScheme(1),
		NewFixedThresholdScheme(3),
		NewFixedThresholdScheme(1 << 20), // everything thin
	}
}

func TestFatThinExhaustiveCorrectness(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, s := range schemesUnderTest() {
			lab, err := s.Encode(g)
			if err != nil {
				t.Fatalf("%s / %s: encode: %v", name, s.Name(), err)
			}
			if err := lab.Verify(g); err != nil {
				t.Errorf("%s / %s: %v", name, s.Name(), err)
			}
		}
	}
}

func TestFatThinDecoderIsStandalone(t *testing.T) {
	// Adjacency must be answerable from the labels plus n alone: rebuild a
	// fresh decoder not connected to the Labeling.
	g := gen.ErdosRenyi(60, 0.15, 9)
	lab, err := NewSparseScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewFatThinDecoder(g.N())
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			lu, err := lab.Label(u)
			if err != nil {
				t.Fatal(err)
			}
			lv, err := lab.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Adjacent(lu, lv)
			if err != nil {
				t.Fatalf("(%d,%d): %v", u, v, err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("standalone decoder wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestFatThinDecoderSymmetry(t *testing.T) {
	g := gen.ErdosRenyi(50, 0.2, 10)
	lab, err := NewSparseScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			a, err := lab.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := lab.Adjacent(v, u)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("asymmetric decode at (%d,%d)", u, v)
			}
		}
	}
}

func TestFatThinSelfQuery(t *testing.T) {
	g := gen.Complete(10)
	lab, err := NewFixedThresholdScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		got, err := lab.Adjacent(v, v)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Fatalf("vertex %d self-adjacent", v)
		}
	}
}

// TestTheorem3SizeBound asserts the structural size guarantee exactly and
// the paper's Theorem 3 formula up to integer-rounding slack (identifiers
// use ceil(log2 n) bits and τ = ceil(x), which together can exceed the
// real-valued formula by at most τ + log n bits).
func TestTheorem3SizeBound(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		g := gen.ErdosRenyiM(n, 2*n, int64(n)) // c = 2 exactly
		c := 2.0
		s := NewSparseScheme(c)
		tau, err := s.Threshold(g)
		if err != nil {
			t.Fatal(err)
		}
		lab, err := s.Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		stats := lab.Stats()
		w := bitstr.WidthFor(uint64(n))

		// Exact structural bound: every label is 1 + w + max((τ-1)·w, k)
		// where k ≤ 2cn/τ.
		kMax := int(2 * c * float64(n) / float64(tau))
		structural := 1 + w + maxInt((tau-1)*w, kMax)
		if stats.Max > structural {
			t.Errorf("n=%d: max label %d exceeds structural bound %d", n, stats.Max, structural)
		}

		paper := SparseTheoremBound(c, n)
		if stats.Max > paper+tau+w {
			t.Errorf("n=%d: max label %d exceeds Theorem 3 bound %d (+rounding slack %d)",
				n, stats.Max, paper, tau+w)
		}
	}
}

// TestTheorem4SizeBound does the same for the power-law scheme on graphs
// verified to be members of P_h.
func TestTheorem4SizeBound(t *testing.T) {
	alpha := 2.5
	for _, n := range []int{2000, 10000} {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		p, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			t.Fatal(err)
		}
		if rep := powerlaw.CheckPh(g, p, 1); !rep.Member {
			t.Fatalf("n=%d: workload graph not in P_h (worst k=%d ratio=%.2f) — fix the generator",
				n, rep.WorstK, rep.WorstRatio)
		}
		s := NewPowerLawScheme(alpha)
		tau, err := s.Threshold(g)
		if err != nil {
			t.Fatal(err)
		}
		lab, err := s.Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		stats := lab.Stats()
		w := bitstr.WidthFor(uint64(n))

		// For P_h members the number of fat vertices is bounded by
		// C'n/τ^(α-1) (Definition 1 with k = τ ≥ (n/log n)^(1/α)).
		kMax := int(p.CPrim * float64(n) / powF(float64(tau), alpha-1))
		structural := 1 + w + maxInt((tau-1)*w, kMax)
		if stats.Max > structural {
			t.Errorf("n=%d: max label %d exceeds structural bound %d", n, stats.Max, structural)
		}

		paper, err := PowerLawTheoremBound(alpha, n)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Max > paper+tau+w {
			t.Errorf("n=%d: max label %d exceeds Theorem 4 bound %d (+slack %d)",
				n, stats.Max, paper, tau+w)
		}
	}
}

func powF(base, exp float64) float64 { return math.Pow(base, exp) }

func TestAutoSchemesRun(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(3000, 2.4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*FatThinScheme{NewSparseSchemeAuto(), NewPowerLawSchemeAuto()} {
		lab, err := s.Encode(g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := lab.Verify(g); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestFixedThresholdValidation(t *testing.T) {
	if _, err := NewFixedThresholdScheme(0).Encode(gen.Path(4)); err == nil {
		t.Error("τ=0 accepted")
	}
}

func TestThresholdExtremes(t *testing.T) {
	g := gen.Star(64)
	// τ=1: every vertex fat — labels are 1 + w + n bits.
	lab1, err := NewFixedThresholdScheme(1).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstr.WidthFor(64)
	if got := lab1.Stats().Max; got != 1+w+64 {
		t.Errorf("all-fat max label = %d, want %d", got, 1+w+64)
	}
	// τ=huge: every vertex thin — the hub stores 63 neighbor ids.
	lab2, err := NewFixedThresholdScheme(1 << 30).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := lab2.Stats().Max; got != 1+w+63*w {
		t.Errorf("all-thin max label = %d, want %d", got, 1+w+63*w)
	}
}

func TestStats(t *testing.T) {
	g := gen.Star(10)
	lab, err := NewFixedThresholdScheme(5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	st := lab.Stats()
	if st.Min <= 0 || st.Max < st.Min || st.Mean < float64(st.Min) || st.Mean > float64(st.Max) {
		t.Errorf("inconsistent stats: %+v", st)
	}
	if st.P50 > st.P90 || st.P90 > st.P99 || st.P99 > st.Max {
		t.Errorf("percentiles out of order: %+v", st)
	}
	if st.Total <= 0 {
		t.Errorf("total = %d", st.Total)
	}
	empty := NewLabeling("x", nil, nil)
	if s := empty.Stats(); s != (SizeStats{}) {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestLabelOutOfRange(t *testing.T) {
	g := gen.Path(4)
	lab, err := NewSparseScheme(1).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.Label(-1); !errors.Is(err, ErrVertexRange) {
		t.Errorf("Label(-1) err = %v", err)
	}
	if _, err := lab.Label(4); !errors.Is(err, ErrVertexRange) {
		t.Errorf("Label(4) err = %v", err)
	}
	if _, err := lab.Adjacent(0, 99); !errors.Is(err, ErrVertexRange) {
		t.Errorf("Adjacent out of range err = %v", err)
	}
}

func TestMalformedLabels(t *testing.T) {
	dec := NewFatThinDecoder(100)
	var empty bitstr.String
	var ok bitstr.Builder
	ok.AppendBit(false)
	ok.AppendUint(3, bitstr.WidthFor(100))
	if _, err := dec.Adjacent(empty, ok.String()); !errors.Is(err, ErrBadLabel) {
		t.Errorf("empty label err = %v", err)
	}
	// Thin label whose body is not a multiple of the id width.
	var bad bitstr.Builder
	bad.AppendBit(false)
	bad.AppendUint(5, bitstr.WidthFor(100))
	bad.AppendUint(1, 3) // ragged tail
	if _, err := dec.Adjacent(bad.String(), ok.String()); !errors.Is(err, ErrBadLabel) {
		t.Errorf("ragged thin label err = %v", err)
	}
	// Fat/fat query where the partner id exceeds the fat vector length.
	var fatA, fatB bitstr.Builder
	w := bitstr.WidthFor(100)
	fatA.AppendBit(true)
	fatA.AppendUint(0, w)
	fatA.AppendUint(0, 2) // vector of length 2
	fatB.AppendBit(true)
	fatB.AppendUint(9, w) // id 9 >= 2
	fatB.AppendUint(0, 2)
	if _, err := dec.Adjacent(fatA.String(), fatB.String()); !errors.Is(err, ErrBadLabel) {
		t.Errorf("oversized fat id err = %v", err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := gen.Path(6)
	lab, err := NewSparseScheme(1).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two labels: verification must notice.
	l := lab.labels
	l[0], l[5] = l[5], l[0]
	if err := lab.Verify(g); err == nil {
		t.Error("Verify accepted a corrupted labeling")
	}
}

func TestVerifySampledPath(t *testing.T) {
	// Exercise the sampled branch of Verify (> exhaustiveLimit vertices).
	g, err := gen.ChungLuPowerLaw(2500, 2.5, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Verify(g); err != nil {
		t.Error(err)
	}
}

// Property: on arbitrary G(n,p) graphs and arbitrary thresholds, decode
// agrees with the graph on every pair.
func TestQuickFatThinAgreesWithGraph(t *testing.T) {
	f := func(seed int64, tauRaw uint8) bool {
		n := 24
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					if err := b.AddEdge(u, v); err != nil {
						return false
					}
				}
			}
		}
		g := b.Build()
		tau := int(tauRaw)%12 + 1
		lab, err := NewFixedThresholdScheme(tau).Encode(g)
		if err != nil {
			return false
		}
		return lab.Verify(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
