package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/graph"
	"repro/internal/powerlaw"
)

// Label layout shared by the Theorem 3 and Theorem 4 schemes
// (w = ceil(log2 n) bits per identifier, identifiers are 0-based):
//
//	thin vertex: [0][own id: w][neighbor id: w]...[neighbor id: w]
//	fat vertex:  [1][own id: w][fat adjacency bit-vector: k bits]
//
// Fat vertices receive identifiers 0..k-1 in order of decreasing degree;
// thin vertices receive identifiers k..n-1. Bit i of a fat vertex's vector
// is set iff it is adjacent to the fat vertex with identifier i. Adjacency
// between a fat and a thin vertex is stored only in the thin label, which is
// what caps the fat label at 1 + w + k bits (Figure 1 of the paper).
//
// The decoder needs only n (the graph family parameter F_n fixes it): the
// identifier width is w = ceil(log2 n), and the fat vector length is
// recovered from the label length itself.

// FatThinScheme is the paper's threshold-partition adjacency labeling
// scheme. The threshold function distinguishes Theorem 3 (sparse graphs,
// τ = ceil(sqrt(2cn/log n))) from Theorem 4 (power-law graphs,
// τ = ceil((C'n/log n)^(1/α))); a fixed threshold supports the E2/E9
// sweep experiments.
type FatThinScheme struct {
	name      string
	threshold func(g *graph.Graph) (int, error)
	layout    Layout
}

var _ Scheme = (*FatThinScheme)(nil)

// NewSparseScheme returns the Theorem 3 scheme for c-sparse graphs.
func NewSparseScheme(c float64) *FatThinScheme {
	return &FatThinScheme{
		name: fmt.Sprintf("sparse(c=%g)", c),
		threshold: func(g *graph.Graph) (int, error) {
			return powerlaw.SparseThreshold(c, g.N()), nil
		},
	}
}

// NewSparseSchemeAuto returns the Theorem 3 scheme with c derived from the
// input graph itself (c = m/n), the natural choice when no a-priori
// sparsity bound is known.
func NewSparseSchemeAuto() *FatThinScheme {
	return &FatThinScheme{
		name: "sparse(auto)",
		threshold: func(g *graph.Graph) (int, error) {
			n := g.N()
			if n == 0 {
				return 1, nil
			}
			c := float64(g.M()) / float64(n)
			if c < 0.5 {
				c = 0.5
			}
			return powerlaw.SparseThreshold(c, n), nil
		},
	}
}

// NewPowerLawScheme returns the Theorem 4 scheme for the family P_h with
// exponent alpha.
func NewPowerLawScheme(alpha float64) *FatThinScheme {
	return &FatThinScheme{
		name: fmt.Sprintf("powerlaw(α=%g)", alpha),
		threshold: func(g *graph.Graph) (int, error) {
			p, err := powerlaw.NewParams(alpha, maxInt(g.N(), 1))
			if err != nil {
				return 0, err
			}
			return p.PowerLawThreshold(), nil
		},
	}
}

// NewPowerLawSchemePractical returns the fat/thin scheme with the practical
// threshold τ(n) = ceil((n/log n)^(1/α)) — the smallest threshold Theorem
// 4's analysis permits (Definition 1 requires τ ≥ (n/log n)^(1/α)). This is
// the variant the paper's full-version experiments evaluate: it drops the
// worst-case constant C', whose α-th root inflates the Theorem 4 threshold
// by ~5x on real inputs without improving actual labels.
func NewPowerLawSchemePractical(alpha float64) *FatThinScheme {
	return &FatThinScheme{
		name: fmt.Sprintf("powerlaw-prac(α=%g)", alpha),
		threshold: func(g *graph.Graph) (int, error) {
			return practicalThreshold(alpha, g.N())
		},
	}
}

func practicalThreshold(alpha float64, n int) (int, error) {
	if alpha <= 1 {
		return 0, fmt.Errorf("core: alpha must be > 1, got %v", alpha)
	}
	if n < 2 {
		return 1, nil
	}
	x := math.Pow(float64(n)/powerlaw.Log2(n), 1/alpha)
	t := int(math.Ceil(x))
	if t < 1 {
		t = 1
	}
	return t, nil
}

// NewPowerLawSchemeAuto returns the fat/thin scheme with the full
// fitted-curve threshold prediction of the paper's experiments: α is
// estimated by discrete maximum likelihood and the tail coefficient Ĉ from
// the observed tail counts, then τ balances the two label parts by solving
// τ·log n = Ĉ·n/τ^(α-1), i.e. τ = ceil((Ĉ·n / log n)^(1/α)). This realizes
// the paper's "threshold prediction that depends only on the coefficient α
// of a power-law curve fitted to the degree distribution of G".
func NewPowerLawSchemeAuto() *FatThinScheme {
	return &FatThinScheme{
		name: "powerlaw(auto)",
		threshold: func(g *graph.Graph) (int, error) {
			degrees := g.Degrees()
			fit, err := powerlaw.FitAlpha(degrees)
			if err != nil {
				return 0, fmt.Errorf("core: fit alpha: %w", err)
			}
			alpha := fit.Alpha
			// Clamp to the domain where the threshold formula is sane.
			if alpha < 1.5 {
				alpha = 1.5
			}
			if alpha > 6 {
				alpha = 6
			}
			cHat := FitTailConstant(g, alpha)
			return fittedThreshold(alpha, cHat, g.N())
		},
	}
}

// NewPowerLawSchemeModel returns the fat/thin scheme for the paper's
// "incomplete knowledge" setting (future work, Section 8.1): the encoder
// knows only the *expected* degree frequencies — the model parameters
// (α, cTail) with tail(k) ≈ cTail·n/k^(α-1) — and never inspects the actual
// graph. The threshold is τ = ceil((cTail·n / log n)^(1/α)), the balance
// point of the modeled label parts. For the truncated zeta distribution
// the exact tail coefficient is ZetaTailCoefficient(α).
func NewPowerLawSchemeModel(alpha, cTail float64) *FatThinScheme {
	return &FatThinScheme{
		name: fmt.Sprintf("powerlaw-model(α=%g,Ĉ=%.2f)", alpha, cTail),
		threshold: func(g *graph.Graph) (int, error) {
			return fittedThreshold(alpha, cTail, g.N())
		},
	}
}

// ZetaTailCoefficient returns the tail coefficient of the ideal discrete
// power law P(K = k) = k^{-α}/ζ(α): the expected number of vertices with
// degree ≥ k is ≈ n·c/k^(α-1) with c = 1/(ζ(α)·(α-1)).
func ZetaTailCoefficient(alpha float64) (float64, error) {
	z, err := powerlaw.Zeta(alpha)
	if err != nil {
		return 0, err
	}
	return 1 / (z * (alpha - 1)), nil
}

// FitTailConstant estimates Ĉ such that the observed degree tails satisfy
// Σ_{i≥k}|V_i| ≈ Ĉ·n/k^(α-1), as the median of tail(k)·k^(α-1)/n over the
// statistically stable range (tails with at least 8 vertices). Returns 1 on
// degenerate inputs.
func FitTailConstant(g *graph.Graph, alpha float64) float64 {
	n := g.N()
	if n == 0 {
		return 1
	}
	tails := g.TailCounts()
	var samples []float64
	for k := 2; k < len(tails); k++ {
		if tails[k] < 8 {
			break
		}
		samples = append(samples, float64(tails[k])*math.Pow(float64(k), alpha-1)/float64(n))
	}
	if len(samples) == 0 {
		return 1
	}
	sort.Float64s(samples)
	return samples[len(samples)/2]
}

func fittedThreshold(alpha, cHat float64, n int) (int, error) {
	if alpha <= 1 {
		return 0, fmt.Errorf("core: alpha must be > 1, got %v", alpha)
	}
	if n < 2 {
		return 1, nil
	}
	if cHat <= 0 {
		cHat = 1
	}
	x := math.Pow(cHat*float64(n)/powerlaw.Log2(n), 1/alpha)
	t := int(math.Ceil(x))
	if t < 1 {
		t = 1
	}
	return t, nil
}

// NewFixedThresholdScheme returns a fat/thin scheme with an explicit degree
// threshold, used by the threshold-sweep experiments.
func NewFixedThresholdScheme(tau int) *FatThinScheme {
	return &FatThinScheme{
		name: fmt.Sprintf("fatthin(τ=%d)", tau),
		threshold: func(*graph.Graph) (int, error) {
			if tau < 1 {
				return 0, fmt.Errorf("core: threshold must be >= 1, got %d", tau)
			}
			return tau, nil
		},
	}
}

// Name implements Scheme.
func (s *FatThinScheme) Name() string { return s.name }

// Threshold exposes the degree threshold the scheme would use on g.
func (s *FatThinScheme) Threshold(g *graph.Graph) (int, error) { return s.threshold(g) }

// SetLayout selects the physical slab layout of subsequent encodes
// (LayoutID, the default, or LayoutDegree — see layout.go). Label contents
// and query answers are identical under either; only the arena order (and
// with it the locality of skewed traffic) changes. Call before Encode; a
// scheme is not safe to reconfigure concurrently with an encode.
func (s *FatThinScheme) SetLayout(l Layout) { s.layout = l }

// Encode implements Scheme. It runs in O(n + m) time beyond the threshold
// computation, through the two-phase slab pipeline (see pipeline.go): the
// returned labeling is arena-backed and born compact.
func (s *FatThinScheme) Encode(g *graph.Graph) (*Labeling, error) {
	tau, err := s.threshold(g)
	if err != nil {
		return nil, err
	}
	return encodeFatThinSlab(s.name, g, tau, 1, s.layout)
}

// encodeFatThinLegacy is the original one-Builder-per-label encoder. It is
// kept as the executable specification of the label layout: the pipeline
// encoder must produce bit-for-bit identical labels (pipeline_test.go), and
// the BenchmarkEncode* suite measures the pipeline against it.
func encodeFatThinLegacy(name string, g *graph.Graph, tau int) (*Labeling, error) {
	if tau < 1 {
		return nil, fmt.Errorf("core: threshold must be >= 1, got %d", tau)
	}
	n := g.N()
	w := bitstr.WidthFor(uint64(n))
	if n <= 1 {
		// Degenerate graphs: a single empty-ish label per vertex.
		labels := make([]bitstr.String, n)
		for v := range labels {
			var b bitstr.Builder
			b.AppendBit(false)
			b.AppendUint(uint64(v), w)
			labels[v] = b.String()
		}
		return NewLabeling(name, labels, &FatThinDecoder{n: n, w: w}), nil
	}

	id, k := assignFatThinIDs(g, tau)
	labels := make([]bitstr.String, n)
	buildFatThinRange(g, id, k, w, 0, n, labels, newFatThinScratch(k))
	return NewLabeling(name, labels, &FatThinDecoder{n: n, w: w}), nil
}

// assignFatThinIDs computes the identifier table shared by the sequential
// and parallel encoders: fat vertices (degree >= tau) receive 0..k-1 in
// order of decreasing degree, thin vertices receive k..n-1 in the same
// degree order. Keeping this in one place guarantees the two encoders can
// never drift apart on layout.
func assignFatThinIDs(g *graph.Graph, tau int) (id []int, k int) {
	n := g.N()
	id = make([]int, n)
	order := g.VerticesByDegreeDesc()
	for _, v := range order {
		if g.Degree(v) >= tau {
			id[v] = k
			k++
		}
	}
	next := k
	for _, v := range order {
		if g.Degree(v) < tau {
			id[v] = next
			next++
		}
	}
	return id, k
}

// fatThinScratch pools the per-vertex working buffers of label
// construction: the bit builder, the k-bit fat adjacency vector, and the
// neighbor-id sort buffer. One scratch serves an entire vertex range, so
// the only allocation left per vertex is the label itself.
type fatThinScratch struct {
	b   bitstr.Builder
	vec *bitstr.Vector
	nbr []int
}

func newFatThinScratch(k int) *fatThinScratch {
	return &fatThinScratch{vec: bitstr.NewVector(k), nbr: make([]int, 0, 64)}
}

// buildFatThinRange writes the labels of vertices [lo, hi) into labels,
// using the shared identifier table and the caller's scratch buffers. It is
// the single label-layout implementation behind both Encode and
// EncodeParallel.
func buildFatThinRange(g *graph.Graph, id []int, k, w, lo, hi int, labels []bitstr.String, sc *fatThinScratch) {
	for v := lo; v < hi; v++ {
		sc.b.Reset()
		if id[v] < k { // fat
			sc.b.AppendBit(true)
			sc.b.AppendUint(uint64(id[v]), w)
			sc.vec.Reset()
			for _, u := range g.Neighbors(v) {
				if uid := id[u]; uid < k {
					sc.vec.Set(uid)
				}
			}
			sc.vec.Append(&sc.b)
		} else { // thin: neighbor ids sorted, enabling O(log n) binary search
			sc.b.AppendBit(false)
			sc.b.AppendUint(uint64(id[v]), w)
			sc.nbr = sc.nbr[:0]
			for _, u := range g.Neighbors(v) {
				sc.nbr = append(sc.nbr, id[u])
			}
			sort.Ints(sc.nbr)
			for _, u := range sc.nbr {
				sc.b.AppendUint(uint64(u), w)
			}
		}
		labels[v] = sc.b.String()
	}
}

// FatThinDecoder answers adjacency queries for fat/thin labels. It depends
// only on n (through the identifier width), never on the labeled graph.
type FatThinDecoder struct {
	n int
	w int
}

var _ AdjacencyDecoder = (*FatThinDecoder)(nil)

// NewFatThinDecoder returns the decoder for n-vertex fat/thin labelings.
func NewFatThinDecoder(n int) *FatThinDecoder {
	return &FatThinDecoder{n: n, w: bitstr.WidthFor(uint64(n))}
}

type parsedLabel struct {
	fat bool
	id  uint64
	// body starts at bit 1+w: neighbor ids (thin) or fat vector (fat).
	body int // bit offset of the body
	s    bitstr.String
}

func (d *FatThinDecoder) parse(s bitstr.String) (parsedLabel, error) {
	r := bitstr.NewReader(s)
	fat, err := r.ReadBit()
	if err != nil {
		return parsedLabel{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	id, err := r.ReadUint(d.w)
	if err != nil {
		return parsedLabel{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	return parsedLabel{fat: fat, id: id, body: 1 + d.w, s: s}, nil
}

// Adjacent implements AdjacencyDecoder. Queries run in O(deg_thin) time for
// thin labels (a scan over at most τ-1 identifiers, each compared in O(1)
// 64-bit chunks) and O(1) for fat/fat pairs — the paper's O(log n) word
// operations under the standard word-RAM assumption.
func (d *FatThinDecoder) Adjacent(a, b bitstr.String) (bool, error) {
	pa, err := d.parse(a)
	if err != nil {
		return false, err
	}
	pb, err := d.parse(b)
	if err != nil {
		return false, err
	}
	if pa.id == pb.id {
		// Same vertex: never self-adjacent in a simple graph.
		return false, nil
	}
	switch {
	case !pa.fat:
		return d.thinContains(pa, pb.id)
	case !pb.fat:
		return d.thinContains(pb, pa.id)
	default:
		// Both fat: bit pb.id of pa's vector (vectors are symmetric; either
		// direction works, but pa's vector must be long enough).
		return d.fatBit(pa, pb.id)
	}
}

// thinContains binary-searches the sorted neighbor-id list — the "O(log n)
// time using standard assumptions" decode of Theorems 3/4 (each probe reads
// one ceil(log2 n)-bit word at a computed offset).
func (d *FatThinDecoder) thinContains(p parsedLabel, target uint64) (bool, error) {
	body := p.s.Len() - p.body
	if d.w == 0 {
		return false, nil
	}
	if body%d.w != 0 {
		return false, fmt.Errorf("%w: thin body %d bits not a multiple of id width %d", ErrBadLabel, body, d.w)
	}
	r := bitstr.NewReader(p.s)
	lo, hi := 0, body/d.w-1
	for lo <= hi {
		mid := int(uint(lo+hi) >> 1)
		if err := r.Seek(p.body + mid*d.w); err != nil {
			return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		v, err := r.ReadUint(d.w)
		if err != nil {
			return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		switch {
		case v == target:
			return true, nil
		case v < target:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false, nil
}

func (d *FatThinDecoder) fatBit(p parsedLabel, i uint64) (bool, error) {
	k := p.s.Len() - p.body // fat vector length
	if i >= uint64(k) {
		return false, fmt.Errorf("%w: fat id %d outside vector of %d bits", ErrBadLabel, i, k)
	}
	bit, err := p.s.Bit(p.body + int(i))
	if err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	return bit, nil
}

// TheoremBound returns the label-size guarantee the scheme's source theorem
// promises for an n-vertex input, in bits: Theorem 3's bound when the
// scheme was built by NewSparseScheme, Theorem 4's for NewPowerLawScheme.
// For fixed-threshold schemes it returns the generic bound
// max(1 + w + (τ-1)·w, 1 + w + k) which requires the graph.
func SparseTheoremBound(c float64, n int) int {
	return int(math.Ceil(powerlaw.SparseLabelBound(c, n)))
}

// PowerLawTheoremBound returns Theorem 4's bound for (alpha, n), in bits.
func PowerLawTheoremBound(alpha float64, n int) (int, error) {
	p, err := powerlaw.NewParams(alpha, maxInt(n, 1))
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(p.PowerLawLabelBound())), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
