package core_test

// The distance-plane twin of FuzzQueryEngineHeaders. It lives in the
// external test package because the seeds come from the real distance
// encoders (internal/schemes/distance imports core, so an in-package seed
// would be an import cycle).

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/schemes/distance"
)

// encodeFuzzInts packs ints as uvarints — the labelstore's wire shape for
// both bit lengths and permutation entries, so mutations explore realistic
// header corruptions.
func encodeFuzzInts(vals []int) []byte {
	out := make([]byte, 0, len(vals))
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vals {
		out = append(out, buf[:binary.PutUvarint(buf[:], uint64(v))]...)
	}
	return out
}

// decodeFuzzInts is the inverse, deliberately unsanitized (bad values must
// be rejected by the engine, not the harness); only the count is capped.
func decodeFuzzInts(data []byte) []int {
	const maxFuzzLabels = 1 << 12
	var vals []int
	for len(data) > 0 && len(vals) < maxFuzzLabels {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			break
		}
		data = data[n:]
		vals = append(vals, int(v))
	}
	return vals
}

// FuzzDistEngineHeaders hammers NewDistEngineFromArena with raw slab bytes,
// header-declared bit lengths, a layout permutation, and engine parameters.
// The property: for ANY input, construction either errors or yields an
// engine whose distance queries never panic or read out of bounds, and
// whose answers are always >= -1 — build-time validation is the only line
// of defense, because the merge kernel reads the slab unchecked by design.
// Seeds are real pll and bounded labelings in both layouts, so the corpus
// starts valid and mutates outward.
func FuzzDistEngineHeaders(f *testing.F) {
	g, err := gen.ChungLuPowerLaw(150, 2.5, 2, 17)
	if err != nil {
		f.Fatal(err)
	}
	seed := func(encode func(lay core.Layout) (*core.DistArena, error), lay core.Layout) {
		a, err := encode(lay)
		if err != nil {
			f.Fatal(err)
		}
		order := make([]int, len(a.Order))
		for i, v := range a.Order {
			order[i] = int(v)
		}
		f.Add(a.Slab, encodeFuzzInts(a.BitLens), encodeFuzzInts(order),
			byte(a.Params.Kind), a.Params.DW, a.Params.F, a.Params.NFat)
	}
	pll := func(lay core.Layout) (*core.DistArena, error) {
		return distance.PLLScheme{}.EncodeArena(g, 1, lay)
	}
	bdist := func(lay core.Layout) (*core.DistArena, error) {
		return distance.Scheme{Alpha: 2.5, F: 3}.EncodeArena(g, 1, lay)
	}
	seed(pll, core.LayoutID)
	seed(pll, core.LayoutDegree)
	seed(bdist, core.LayoutID)
	seed(bdist, core.LayoutDegree)
	f.Add([]byte{}, []byte{}, []byte{}, byte(1), 4, 0, 0)
	f.Add(make([]byte, 16), encodeFuzzInts([]int{9, 64}), []byte{}, byte(2), 3, 2, 1)

	f.Fuzz(func(t *testing.T, slab, lensBytes, orderBytes []byte, kind byte, dw, fBound, nFat int) {
		bitLens := decodeFuzzInts(lensBytes)
		var order []int32
		if ints := decodeFuzzInts(orderBytes); len(ints) > 0 {
			order = make([]int32, len(ints))
			for i, v := range ints {
				order[i] = int32(v)
			}
		}
		p := core.DistParams{Kind: core.DistKind(kind), DW: dw, F: fBound, NFat: nFat}
		eng, err := core.NewDistEngineFromArena(slab, bitLens, order, p)
		if err != nil {
			return // rejected at build time: exactly what corrupt headers should get
		}
		n := eng.N()
		if n == 0 {
			if _, err := eng.Dist(0, 0); err == nil {
				t.Fatal("empty engine accepted a query")
			}
			return
		}
		// Probe a spread of pairs, including out-of-range ones; answers may be
		// garbage relative to any graph (the slab is noise), but every call
		// must return without panicking, errors must be range errors, and any
		// accepted answer must be a distance or the -1 sentinel.
		pairs := [][2]int{
			{0, 0}, {0, n - 1}, {n - 1, 0}, {n / 2, n / 3},
			{-1, 0}, {0, n}, {n, n},
		}
		for i := 0; i < n && i < 32; i++ {
			pairs = append(pairs, [2]int{i, (i * 7) % n})
		}
		for _, pr := range pairs {
			d, err := eng.Dist(pr[0], pr[1])
			if err == nil && d < -1 {
				t.Fatalf("dist(%d,%d) = %d", pr[0], pr[1], d)
			}
		}
		_, _ = eng.DistMany(pairs, nil)
		var sc core.BatchScratch
		_, _ = eng.DistManySorted(pairs, nil, &sc)
	})
}
