package core

import (
	"fmt"
	"sync/atomic"
)

// pairCache is a direct-mapped (u,v)→answer cache for the query engine's hot
// pairs. Each slot is one atomic 64-bit word:
//
//	slot = key<<2 | answer<<1 | 1
//
// with key = min(u,v)<<31 | max(u,v) (vertices are below 2^31, so the key is
// unique and fits 62 bits and the packed slot exactly 64). The low valid bit
// distinguishes the empty slot from key 0; because the full key is embedded,
// a lost race between two concurrent stores to the same slot can only leave
// one of the two correct entries — never a key answering for a different
// pair — so reads and writes need no locks and no versioning. Entries are
// evicted only by collision (direct-mapped), which is exactly the behavior
// wanted for Zipf-skewed traffic: the hot pairs pin their slots.
type pairCache struct {
	slots []atomic.Uint64
	mask  uint64
}

func newPairCache(bits int) *pairCache {
	return &pairCache{slots: make([]atomic.Uint64, 1<<bits), mask: 1<<bits - 1}
}

// pairCacheKey canonicalizes an unordered pair (adjacency is symmetric, so
// (u,v) and (v,u) share an entry). Callers guarantee 0 <= u,v < n <= 2^31.
func pairCacheKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<31 | uint64(v)
}

// index spreads the key with the splitmix64 finalizer; without it,
// direct-mapping on the low bits would collide every pair sharing a low
// vertex id — precisely the hub pairs the cache exists for.
func (c *pairCache) index(key uint64) uint64 {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h & c.mask
}

func (c *pairCache) get(key uint64) (ans, hit bool) {
	s := c.slots[c.index(key)].Load()
	if s&1 == 1 && s>>2 == key {
		return s&2 != 0, true
	}
	return false, false
}

func (c *pairCache) put(key uint64, ans bool) {
	s := key<<2 | 1
	if ans {
		s |= 2
	}
	c.slots[c.index(key)].Store(s)
}

// maxCacheBits caps the cache at 2^28 slots (2 GiB of slots is past any
// sensible configuration; the cap mostly guards against a mistyped flag).
const maxCacheBits = 28

// EnableResultCache attaches a direct-mapped result cache of 2^bits slots
// (8·2^bits bytes) probed before the slab on every query; bits <= 0
// detaches. Like AttachMetrics it must be called before the engine is shared
// across goroutines — afterwards the cache itself is safe under any number
// of concurrent readers and writers, including concurrent AdjacentManySorted
// batches. Hits and misses are tallied into the attached EngineMetrics
// (engine_cache_{hits,misses}_total). The hot path stays allocation-free:
// the cache is allocated here, once.
//
// The cache serves read-only engines; answers are inserted after a
// successful probe and never invalidated, which is sound because a
// QueryEngine's labeling is immutable.
func (e *QueryEngine) EnableResultCache(bits int) error {
	if bits <= 0 {
		e.cache = nil
		return nil
	}
	if bits > maxCacheBits {
		return fmt.Errorf("core: result cache of 2^%d slots (max 2^%d)", bits, maxCacheBits)
	}
	if e.n > 1<<31 {
		return fmt.Errorf("core: result cache keys pack 31-bit vertex ids, engine has %d vertices", e.n)
	}
	e.cache = newPairCache(bits)
	return nil
}
