package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestCompressedCorrectness(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, inner := range []*FatThinScheme{
			NewSparseScheme(2),
			NewPowerLawScheme(2.5),
			NewFixedThresholdScheme(3),
			NewFixedThresholdScheme(1 << 20),
		} {
			s := NewCompressedScheme(inner)
			lab, err := s.Encode(g)
			if err != nil {
				t.Fatalf("%s / %s: %v", name, s.Name(), err)
			}
			if err := lab.Verify(g); err != nil {
				t.Errorf("%s / %s: %v", name, s.Name(), err)
			}
		}
	}
}

func TestCompressedDecoderStandalone(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(400, 2.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewCompressedScheme(NewPowerLawScheme(2.5)).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewCompressedDecoder(g.N())
	for u := 0; u < 50; u++ {
		for v := u + 1; v < 50; v++ {
			lu, err := lab.Label(u)
			if err != nil {
				t.Fatal(err)
			}
			lv, err := lab.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := dec.Adjacent(lu, lv)
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("standalone compressed decoder wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestCompressedNeverMuchWorse(t *testing.T) {
	// The adaptive flag guarantees every thin label is within 1 bit of the
	// fixed-width layout (fat labels are identical).
	g, err := gen.ChungLuPowerLaw(5000, 2.5, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewPowerLawSchemeAuto()
	plain, err := inner.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompressedScheme(inner).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Stats().Max > plain.Stats().Max+1 {
		t.Errorf("compressed max %d > plain max %d + 1", comp.Stats().Max, plain.Stats().Max)
	}
	if comp.Stats().Total > plain.Stats().Total+int64(g.N()) {
		t.Errorf("compressed total %d > plain total %d + n", comp.Stats().Total, plain.Stats().Total)
	}
}

func TestCompressedWinsOnHeavyHubs(t *testing.T) {
	// On a hub-dominated graph (α close to 2 → thin neighbors concentrate
	// on the few smallest ids) gap coding must deliver real savings.
	g, err := gen.ChungLuPowerLaw(8000, 2.05, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewPowerLawSchemeAuto()
	plain, err := inner.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompressedScheme(inner).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Stats().Total >= plain.Stats().Total {
		t.Errorf("compressed total %d >= plain total %d on hub-heavy graph",
			comp.Stats().Total, plain.Stats().Total)
	}
}

func TestCompressedThresholdPassthrough(t *testing.T) {
	g := gen.Star(100)
	inner := NewFixedThresholdScheme(7)
	s := NewCompressedScheme(inner)
	tau, err := s.Threshold(g)
	if err != nil {
		t.Fatal(err)
	}
	if tau != 7 {
		t.Errorf("Threshold = %d, want 7", tau)
	}
	if _, err := NewCompressedScheme(NewFixedThresholdScheme(0)).Encode(g); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestQuickCompressedAgreesWithPlain(t *testing.T) {
	f := func(seed int64, tauRaw uint8) bool {
		g := gen.ErdosRenyi(30, 0.2, seed)
		tau := int(tauRaw)%10 + 1
		plain, err := NewFixedThresholdScheme(tau).Encode(g)
		if err != nil {
			return false
		}
		comp, err := NewCompressedScheme(NewFixedThresholdScheme(tau)).Encode(g)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				a, err := plain.Adjacent(u, v)
				if err != nil {
					return false
				}
				b, err := comp.Adjacent(u, v)
				if err != nil {
					return false
				}
				if a != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
