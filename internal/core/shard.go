package core

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
)

// Sharded label stores: the horizontal-scale path of the serving tier.
//
// The fat/thin split (Theorems 3/4) makes vertex partitioning unusually
// clean. Every query (u,v) is resolved from a single label body: a thin
// endpoint's sorted neighbor list (which names *all* its neighbors, fat ones
// included), or — when both endpoints are fat — the k-bit fat adjacency
// bitmap of either. So a shard that holds
//
//   - the full labels of the thin vertices it owns, and
//   - the full labels of every fat vertex (O(√(n/ln n) · n/ln n) bits in
//     total — the replicated fat–fat data is tiny relative to the store),
//
// can answer any pair with at least one endpoint it owns, plus every
// fat–fat pair. Foreign thin labels are kept as header-only stubs
// ([fat=0][id], exactly 1+w bits): the stub preserves the vertex's scheme
// identifier and fat flag, so a shard engine still classifies both endpoints
// of every query and routes misdirected pairs to ErrNotResident instead of
// silently answering from an empty body.

// ShardFn selects the vertex→shard ownership function. It is serialized in
// the label-store shard block, so values are stable wire constants.
type ShardFn uint8

const (
	// ShardRange assigns contiguous vertex ranges: owner(v) = ⌊v·S/n⌋.
	// Ranges follow vertex numbering, so workloads with id locality keep it.
	ShardRange ShardFn = 0
	// ShardHash assigns vertices by a splitmix64 hash of the vertex number:
	// owner(v) = h(v) mod S. Robust to any id-correlated skew.
	ShardHash ShardFn = 1
)

func (f ShardFn) String() string {
	switch f {
	case ShardRange:
		return "range"
	case ShardHash:
		return "hash"
	default:
		return fmt.Sprintf("shardfn(%d)", uint8(f))
	}
}

// Valid reports whether f is a defined ownership function.
func (f ShardFn) Valid() bool { return f == ShardRange || f == ShardHash }

// ParseShardFn parses the flag spelling of an ownership function.
func ParseShardFn(s string) (ShardFn, error) {
	switch s {
	case "range":
		return ShardRange, nil
	case "hash":
		return ShardHash, nil
	default:
		return 0, fmt.Errorf("core: unknown shard ownership function %q (want range or hash)", s)
	}
}

// shardHash is the splitmix64 finalizer over the vertex number (the same
// mixer the pair cache uses): owner assignment must be uncorrelated with the
// id ordering, or hash sharding would degenerate into range sharding.
func shardHash(v int) uint64 {
	h := uint64(v) + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ShardOwner returns the shard owning vertex v among count shards of an
// n-vertex labeling. Callers guarantee 0 <= v < n and count >= 1.
func ShardOwner(fn ShardFn, v, n, count int) int {
	if fn == ShardHash {
		return int(shardHash(v) % uint64(count))
	}
	return int(int64(v) * int64(count) / int64(n))
}

// ShardMap identifies one shard of a partitioned label store: the shard
// count, this shard's index, and the ownership function all shards agree on.
type ShardMap struct {
	Count int
	Index int
	Fn    ShardFn
}

// Validate checks the map against a vertex count.
func (m ShardMap) Validate(n int) error {
	switch {
	case m.Count < 1:
		return fmt.Errorf("core: shard map with %d shards", m.Count)
	case m.Count > n:
		return fmt.Errorf("core: %d shards over %d vertices", m.Count, n)
	case m.Index < 0 || m.Index >= m.Count:
		return fmt.Errorf("core: shard index %d of %d shards", m.Index, m.Count)
	case !m.Fn.Valid():
		return fmt.Errorf("core: unknown shard ownership function %d", uint8(m.Fn))
	}
	return nil
}

// Owner returns the shard owning vertex v of an n-vertex labeling.
func (m ShardMap) Owner(v, n int) int { return ShardOwner(m.Fn, v, n, m.Count) }

// Owns reports whether this shard owns vertex v.
func (m ShardMap) Owns(v, n int) bool { return m.Owner(v, n) == m.Index }

// OwnedCount returns the number of vertices this shard owns — the figure the
// label-store shard block records so a corrupted index or function is caught
// structurally at load.
func (m ShardMap) OwnedCount(n int) int {
	if m.Fn == ShardRange {
		// Contiguous: [⌈index·n/count⌉, ⌈(index+1)·n/count⌉) … computed by
		// inverting Owner's floor division, i.e. counting v with
		// ⌊v·count/n⌋ == index.
		lo := (int64(m.Index)*int64(n) + int64(m.Count) - 1) / int64(m.Count)
		hi := (int64(m.Index+1)*int64(n) + int64(m.Count) - 1) / int64(m.Count)
		return int(hi - lo)
	}
	owned := 0
	for v := 0; v < n; v++ {
		if m.Owns(v, n) {
			owned++
		}
	}
	return owned
}

// ShardArena is one shard's label slab: resident labels (owned vertices plus
// every fat vertex) copied verbatim, foreign thin labels reduced to their
// 1+w-bit header stub. BitLens is id-indexed like the source; the physical
// rank order (and hence any layout permutation) is preserved, so a
// degree-ordered source yields degree-ordered shards carrying the same
// permutation.
type ShardArena struct {
	Slab    []byte
	BitLens []int
	// Owned is the number of vertices the shard owns (fat vertices it does
	// not own are resident but not counted).
	Owned int
}

// ShardLabelArenas splits a fat/thin label slab into count per-shard arenas
// under the given ownership function. slab/bitLens/order describe the source
// exactly as NewQueryEngineFromPermutedArena accepts them (order nil = id
// layout); the source is validated the same way and is not modified. The
// fat–fat data is replicated to every shard; thin labels are kept in full
// only on their owner and stripped to the [fat-bit][id] header elsewhere.
func ShardLabelArenas(slab []byte, bitLens []int, order []int32, count int, fn ShardFn) ([]ShardArena, error) {
	n := len(bitLens)
	if count < 2 || count > n {
		return nil, fmt.Errorf("core: splitting %d labels into %d shards (want 2..n)", n, count)
	}
	if !fn.Valid() {
		return nil, fmt.Errorf("core: unknown shard ownership function %d", uint8(fn))
	}
	// The source engine validates the slab geometry and pre-parses every
	// header — fat flags and offsets — in one pass.
	src, err := NewQueryEngineFromPermutedArena(slab, bitLens, order)
	if err != nil {
		return nil, err
	}
	w := src.w
	header := 1 + w
	stub := int64(bitstr.SlabWordBits) // a 1+w <= 33-bit stub occupies one word

	// Pass 1: per-shard sizes. Resident labels keep their word footprint,
	// foreign thin labels shrink to one word.
	shards := make([]ShardArena, count)
	words := make([]int64, count)
	for s := range shards {
		shards[s].BitLens = make([]int, n)
	}
	for v := 0; v < n; v++ {
		owner := ShardOwner(fn, v, n, count)
		fat := src.meta[v].fat()
		shards[owner].Owned++
		for s := 0; s < count; s++ {
			if fat || s == owner {
				shards[s].BitLens[v] = bitLens[v]
				words[s] += int64(bitstr.SlabWords(bitLens[v]))
			} else {
				shards[s].BitLens[v] = header
				words[s]++
			}
		}
	}
	for s := range shards {
		shards[s].Slab = make([]byte, bitstr.SlabBytes(int(words[s])))
	}

	// Pass 2: copy in rank order, so each shard slab keeps the source's
	// physical layout. meta[v].off points at the body; the label (header
	// included) starts header bits earlier, on a word boundary.
	offs := make([]int64, count)
	for r := 0; r < n; r++ {
		v := r
		if order != nil {
			v = int(order[r])
		}
		start := src.meta[v].off - int64(header)
		fat := src.meta[v].fat()
		owner := ShardOwner(fn, v, n, count)
		full := int64(bitstr.SlabWords(bitLens[v])) * bitstr.SlabWordBits
		for s := 0; s < count; s++ {
			if fat || s == owner {
				copy(shards[s].Slab[offs[s]>>3:], slab[start>>3:(start+full)>>3])
				offs[s] += full
			} else {
				// Header stub: the label's first 1+w bits, left-aligned in one
				// zeroed word.
				hw := bitstr.SlabReadBits(slab, start, header) << (64 - uint(header))
				putWord(shards[s].Slab[offs[s]>>3:], hw)
				offs[s] += stub
			}
		}
	}
	return shards, nil
}

// ErrNotResident is returned by a sharded engine for queries neither of
// whose endpoints' full labels live on this shard — a misrouted pair. The
// router's job is to make this unreachable; surfacing it as an error (rather
// than answering false from a stripped stub) is what makes misrouting loud.
var ErrNotResident = errors.New("core: query not resident on this shard")

// SetShard marks the engine as serving one shard of a partitioned store: it
// builds the residency bitset (owned vertices plus every fat vertex) and
// cross-checks the shard map against the loaded labels — every non-resident
// thin label must be a header-only stub, so a store loaded under the wrong
// shard map fails here, at attach time, not at query time. Like
// AttachMetrics it must be called before the engine is shared across
// goroutines.
func (e *QueryEngine) SetShard(m ShardMap) error {
	if err := m.Validate(e.n); err != nil {
		return err
	}
	resident := make([]uint64, (e.n+63)>>6)
	for v := 0; v < e.n; v++ {
		if e.meta[v].fat() || m.Owns(v, e.n) {
			resident[v>>6] |= 1 << uint(v&63)
		} else if e.meta[v].cnt() != 0 {
			return fmt.Errorf("%w: vertex %d is foreign to shard %d/%d yet its thin label carries a %d-id body (wrong shard map?)",
				ErrBadLabel, v, m.Index, m.Count, e.meta[v].cnt())
		}
	}
	e.resident = resident
	e.shard = m
	return nil
}

// Shard returns the shard map attached by SetShard; ok=false for an
// unsharded engine.
func (e *QueryEngine) Shard() (ShardMap, bool) { return e.shard, e.resident != nil }

// Resident reports whether vertex v's full label body is present (always
// true on an unsharded engine).
func (e *QueryEngine) Resident(v int) bool {
	if e.resident == nil {
		return true
	}
	return e.resident[v>>6]&(1<<uint(v&63)) != 0
}

// Fat reports whether vertex v is fat (its label carries the k-bit fat
// adjacency bitmap). Valid on sharded engines for every vertex: stubs keep
// the fat bit.
func (e *QueryEngine) Fat(v int) bool { return e.meta[v].fat() }

// AppendFatBits appends the fat bitmap — ceil(n/8) bytes, bit v MSB-first
// within its byte set iff vertex v is fat — and returns the extended slice.
// This is the routing table a scatter-gather router needs: with the fat set
// and the ownership function, it can compute which shards can answer any
// pair. (Stubs preserve fat bits, so every shard serves the same bitmap.)
func (e *QueryEngine) AppendFatBits(dst []byte) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, (e.n+7)/8)...)
	for v := 0; v < e.n; v++ {
		if e.meta[v].fat() {
			dst[base+v/8] |= 1 << (7 - uint(v)%8)
		}
	}
	return dst
}

// probeSharded resolves one in-range query on a sharded engine. The
// orientation differs from the unsharded probe only in *which* body it
// reads: a thin body answers for either endpoint (thin lists are complete),
// so the probe picks a resident one; fat–fat pairs read the replicated
// bitmap. Answers are bit-for-bit identical to an unsharded engine over the
// full labeling whenever a resident body exists; otherwise the pair was
// misrouted and the probe refuses.
func (e *QueryEngine) probeSharded(u, v int, t *QueryTally) (bool, error) {
	mu, mv := e.meta[u], e.meta[v]
	if mu.id() == mv.id() {
		t.self++
		return false, nil
	}
	switch {
	case !mu.fat() && e.Resident(u):
		t.thin++
		return e.thinProbe(mu, mv.id()), nil
	case !mv.fat() && e.Resident(v):
		t.thin++
		return e.thinProbe(mv, mu.id()), nil
	case mu.fat() && mv.fat():
		t.fat++
		if mv.id() >= uint64(mu.cnt()) {
			return false, fmt.Errorf("%w: fat id %d outside vector of %d bits", ErrBadLabel, mv.id(), mu.cnt())
		}
		return bitstr.SlabReadBits(e.slab, mu.off+int64(mv.id()), 1) == 1, nil
	default:
		return false, fmt.Errorf("%w: (%d,%d) on shard %d/%d", ErrNotResident, u, v, e.shard.Index, e.shard.Count)
	}
}

// putWord stores one big-endian 64-bit word at the start of dst.
func putWord(dst []byte, w uint64) {
	_ = dst[7]
	dst[0] = byte(w >> 56)
	dst[1] = byte(w >> 48)
	dst[2] = byte(w >> 40)
	dst[3] = byte(w >> 32)
	dst[4] = byte(w >> 24)
	dst[5] = byte(w >> 16)
	dst[6] = byte(w >> 8)
	dst[7] = byte(w)
}
