package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// equivGraphs is the cross-encoder test corpus: seeded Chung–Lu power-law
// graphs plus adversarial shapes (all-fat, all-thin, empty, hub-only,
// bipartite) that stress the fat/thin split from both sides.
func equivGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	cl1, err := gen.ChungLuPowerLaw(600, 2.2, 2, 1)
	if err != nil {
		t.Fatalf("chunglu: %v", err)
	}
	cl2, err := gen.ChungLuPowerLaw(900, 2.8, 2, 7)
	if err != nil {
		t.Fatalf("chunglu: %v", err)
	}
	return map[string]*graph.Graph{
		"chunglu-a2.2": cl1,
		"chunglu-a2.8": cl2,
		"empty":        graph.Empty(64),
		"path":         gen.Path(257),
		"star":         gen.Star(300),
		"clique":       gen.Complete(65),
		"bipartite":    gen.CompleteBipartite(9, 120),
		"er":           gen.ErdosRenyi(400, 0.02, 3),
		"two":          gen.Path(2),
		"single":       graph.Empty(1),
		"none":         graph.Empty(0),
	}
}

// equivSchemes builds the scheme matrix of the equivalence property test:
// sparse, power-law and fixed-threshold rules, each encoded by the slab
// pipeline and compared against the legacy encoder.
func equivSchemes() []*FatThinScheme {
	return []*FatThinScheme{
		NewSparseSchemeAuto(),
		NewSparseScheme(2),
		NewPowerLawSchemePractical(2.5),
		NewFixedThresholdScheme(1),
		NewFixedThresholdScheme(4),
		NewFixedThresholdScheme(1 << 20), // all thin
	}
}

func requireLabelsEqual(t *testing.T, want, got *Labeling) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("N: legacy %d, pipeline %d", want.N(), got.N())
	}
	for v := 0; v < want.N(); v++ {
		lw, err := want.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		lg, err := got.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		if !lw.Equal(lg) {
			t.Fatalf("label %d differs:\nlegacy   %v\npipeline %v", v, lw, lg)
		}
	}
}

// TestPipelineMatchesLegacyFatThin is the cross-encoder equivalence
// property: over every (scheme, graph, workers) cell, slab-pipeline labels
// are bit-for-bit Equal to legacy-encoder labels vertex-by-vertex, and the
// QueryEngine built on the pipeline labeling answers exactly like the
// legacy decoder on sampled pairs.
func TestPipelineMatchesLegacyFatThin(t *testing.T) {
	graphs := equivGraphs(t)
	for _, s := range equivSchemes() {
		for gname, g := range graphs {
			t.Run(fmt.Sprintf("%s/%s", s.Name(), gname), func(t *testing.T) {
				tau, err := s.Threshold(g)
				if err != nil {
					t.Fatalf("threshold: %v", err)
				}
				legacy, err := encodeFatThinLegacy(s.Name(), g, tau)
				if err != nil {
					t.Fatalf("legacy encode: %v", err)
				}
				for _, workers := range []int{1, 3, 0} {
					pipe, err := encodeFatThinSlab(s.Name(), g, tau, workers, LayoutID)
					if err != nil {
						t.Fatalf("pipeline encode (workers=%d): %v", workers, err)
					}
					requireLabelsEqual(t, legacy, pipe)
				}
				pipe, err := s.Encode(g)
				if err != nil {
					t.Fatalf("Encode: %v", err)
				}
				requireLabelsEqual(t, legacy, pipe)
				requireEnginesAgree(t, g, legacy, pipe)
			})
		}
	}
}

// requireEnginesAgree samples vertex pairs and checks the pipeline-backed
// QueryEngine against the legacy labeling's decoder.
func requireEnginesAgree(t *testing.T, g *graph.Graph, legacy, pipe *Labeling) {
	t.Helper()
	n := g.N()
	if n < 2 {
		return
	}
	eng, err := NewQueryEngine(pipe)
	if err != nil {
		t.Fatalf("engine over pipeline labeling: %v", err)
	}
	state := uint64(0x243F6A8885A308D3)
	for i := 0; i < 4000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		u := int(state % uint64(n))
		v := int((state >> 17) % uint64(n))
		want, err := legacy.Adjacent(u, v)
		if err != nil {
			t.Fatalf("legacy query (%d,%d): %v", u, v, err)
		}
		got, err := eng.Adjacent(u, v)
		if err != nil {
			t.Fatalf("engine query (%d,%d): %v", u, v, err)
		}
		if got != want {
			t.Fatalf("query (%d,%d): engine %v, legacy decoder %v", u, v, got, want)
		}
	}
}

// TestPipelineMatchesLegacyCompressed is the same property for the δ-gap
// compressed scheme (variable-length thin bodies exercise the size plan's
// exactness: any mispriced label would shift every later offset).
func TestPipelineMatchesLegacyCompressed(t *testing.T) {
	graphs := equivGraphs(t)
	for _, inner := range []*FatThinScheme{NewSparseSchemeAuto(), NewFixedThresholdScheme(6)} {
		s := NewCompressedScheme(inner)
		for gname, g := range graphs {
			t.Run(fmt.Sprintf("%s/%s", s.Name(), gname), func(t *testing.T) {
				tau, err := s.Threshold(g)
				if err != nil {
					t.Fatalf("threshold: %v", err)
				}
				legacy, err := encodeCompressedLegacy(s.Name(), g, tau)
				if err != nil {
					t.Fatalf("legacy encode: %v", err)
				}
				for _, workers := range []int{1, 4} {
					pipe, err := encodeCompressedSlab(s.Name(), g, tau, workers, LayoutID)
					if err != nil {
						t.Fatalf("pipeline encode (workers=%d): %v", workers, err)
					}
					requireLabelsEqual(t, legacy, pipe)
				}
				pipe, err := s.Encode(g)
				if err != nil {
					t.Fatalf("Encode: %v", err)
				}
				requireLabelsEqual(t, legacy, pipe)
				if err := pipe.Verify(g); err != nil {
					t.Fatalf("pipeline compressed labeling fails verification: %v", err)
				}
			})
		}
	}
}

// TestPipelineLabelingBornCompact asserts the arena contract: a
// pipeline-built labeling exposes its slab, Compact is a no-op, and
// NewQueryEngine adopts the slab zero-copy — the engine's probe arena is
// the very same backing array, not a relocated copy.
func TestPipelineLabelingBornCompact(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(2000, 2.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewPowerLawSchemePractical(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := lab.Arena()
	if !ok || len(slab) == 0 {
		t.Fatal("pipeline labeling is not arena-backed")
	}
	if lab.Compact() != lab {
		t.Fatal("Compact must return the labeling itself")
	}
	if slab2, _ := lab.Arena(); &slab2[0] != &slab[0] {
		t.Fatal("Compact relocated the arena of a born-compact labeling")
	}
	eng, err := NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	if &eng.slab[0] != &slab[0] {
		t.Fatal("NewQueryEngine relocated the arena instead of adopting it zero-copy")
	}
	if err := lab.Verify(g); err != nil {
		t.Fatalf("arena labeling fails verification: %v", err)
	}
}

// TestSplitByWords checks the word-balanced range partitioner covers all
// vertices exactly once, in order.
func TestSplitByWords(t *testing.T) {
	offs := []int64{0, 64, 64 * 40, 64 * 41, 64 * 42, 64 * 43, 64 * 100}
	for workers := 1; workers <= 8; workers++ {
		ranges := splitByWords(offs, workers)
		next := 0
		for _, r := range ranges {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("workers=%d: bad ranges %v", workers, ranges)
			}
			next = r[1]
		}
		if next != len(offs)-1 {
			t.Fatalf("workers=%d: ranges %v do not cover %d vertices", workers, ranges, len(offs)-1)
		}
	}
}

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkEncodeLegacy is the pre-pipeline baseline: one Builder-built
// label per vertex, then Compact for the arena layout the serving path
// wants.
func BenchmarkEncodeLegacy(b *testing.B) {
	g := benchGraph(b, 100_000)
	s := NewPowerLawSchemePractical(2.5)
	tau, err := s.Threshold(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab, err := encodeFatThinLegacy(s.Name(), g, tau)
		if err != nil {
			b.Fatal(err)
		}
		lab.Compact()
	}
}

// BenchmarkEncodePipeline measures the sequential slab pipeline on the same
// 100k-vertex Chung–Lu graph (acceptance: ≥2x BenchmarkEncodeLegacy).
func BenchmarkEncodePipeline(b *testing.B) {
	g := benchGraph(b, 100_000)
	s := NewPowerLawSchemePractical(2.5)
	tau, err := s.Threshold(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFatThinSlab(s.Name(), g, tau, 1, LayoutID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodePipelineParallel is the sharded fill (GOMAXPROCS workers).
func BenchmarkEncodePipelineParallel(b *testing.B) {
	g := benchGraph(b, 100_000)
	s := NewPowerLawSchemePractical(2.5)
	tau, err := s.Threshold(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeFatThinSlab(s.Name(), g, tau, 0, LayoutID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodePipelineFill isolates phase 2 (the per-vertex fill): plan
// once, fill b.N times. The per-iteration allocation count divided by the
// vertex count is the "allocs per vertex" figure — the pipeline target is
// ~0 (only the per-range scratch buffers remain).
func BenchmarkEncodePipelineFill(b *testing.B) {
	g := benchGraph(b, 100_000)
	s := NewPowerLawSchemePractical(2.5)
	tau, err := s.Threshold(g)
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	w := 17 // ceil(log2 100000)
	header := 1 + w
	plan := newSlabPlan(g, tau, w)
	plan.buildNeighborLists(g)
	id, k := plan.id, plan.k
	for v := 0; v < n; v++ {
		if id[v] < k {
			plan.bitLens[v] = header + k
		} else {
			plan.bitLens[v] = header + g.Degree(v)*w
		}
	}
	plan.layout(LayoutID)
	slab := make([]byte, int(plan.offs[n]>>3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillFatThinSlab(plan, slab, 0, n)
	}
}

// BenchmarkEncodeCompressedLegacy / Pipeline: the δ-gap scheme pair.
func BenchmarkEncodeCompressedLegacy(b *testing.B) {
	g := benchGraph(b, 100_000)
	s := NewCompressedScheme(NewPowerLawSchemePractical(2.5))
	tau, err := s.Threshold(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab, err := encodeCompressedLegacy(s.Name(), g, tau)
		if err != nil {
			b.Fatal(err)
		}
		lab.Compact()
	}
}

func BenchmarkEncodeCompressedPipeline(b *testing.B) {
	g := benchGraph(b, 100_000)
	s := NewCompressedScheme(NewPowerLawSchemePractical(2.5))
	tau, err := s.Threshold(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeCompressedSlab(s.Name(), g, tau, 0, LayoutID); err != nil {
			b.Fatal(err)
		}
	}
}
