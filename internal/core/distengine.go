package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// DistEngine is the distance-plane counterpart of QueryEngine: built once
// over a DistArena (or a format-v2 distance label store), it pre-parses
// every label's header into the same packed 16-byte vertexMeta records and
// answers Dist(u, v) straight from the word-aligned slab — no Reader, no
// re-parsing, zero heap allocations on the hot path.
//
// Two kernels, selected by the arena's DistKind:
//
//   - DistPLL: a merge-intersection min-sum scan over the two sorted hub
//     lists, decoding δ-gap hub ranks inline (one guarded 64-bit peek per
//     entry) and fixed-width distances beside them. Answers match
//     distance.PLLDecoder.Dist bit for bit; unreachable pairs return -1
//     (graph.Unreachable).
//   - DistBounded: Lemma 7's decode — the minimum over fat-hub relays
//     (both fixed-width fat tables walked in lockstep with the legacy
//     early-out) plus, for thin-thin pairs, a binary search of each sorted
//     thin list. Distances beyond the bound f return -1 (distance.Beyond,
//     numerically the same sentinel).
//
// Every label is fully validated at construction — entry lists must stay in
// bounds, strictly sorted, and tile their label exactly — so the hot path
// never errors and never reads outside the slab on any engine that
// construction accepted (FuzzDistEngineHeaders leans on exactly this).
// Like QueryEngine, a DistEngine is immutable after construction and safe
// for concurrent use; metrics and the result cache attach before sharing.
type DistEngine struct {
	kind DistKind
	n    int
	w    int // identifier width (pll: min 1; bdist: exact ceil(log2 n))
	wCnt int // pll entry-count width
	dw   int // distance field width
	f    int // bdist bound
	nFat int // bdist fat-table width
	// meta reuses QueryEngine's packed header record: off is the bit offset
	// of the label body (pll: the first entry; bdist: the fat table), and
	// word packs id<<32 | cnt<<1 | fat with cnt the entry count (pll: hub
	// entries; bdist: thin-list entries).
	meta     []vertexMeta
	slab     []byte
	slabBits int64
	metrics  *EngineMetrics
	cache    *distCache
}

// NewDistEngine adopts a pipeline-encoded DistArena zero-copy.
func NewDistEngine(a *DistArena) (*DistEngine, error) {
	return NewDistEngineFromArena(a.Slab, a.BitLens, a.Order, a.Params)
}

// NewDistEngineFromArena builds an engine over a distance label slab (label
// at rank r holds vertex order[r], nil order is the identity — the same
// permuted-arena contract as NewQueryEngineFromPermutedArena). The slab is
// adopted zero-copy; construction parses and validates every label, so a
// corrupt or truncated store errors here rather than at query time.
func NewDistEngineFromArena(slab []byte, bitLens []int, order []int32, p DistParams) (*DistEngine, error) {
	n := len(bitLens)
	if n == 0 {
		return nil, fmt.Errorf("%w: distance engine over zero labels", ErrBadLabel)
	}
	if p.DW < 1 || p.DW > 32 {
		return nil, fmt.Errorf("%w: distance width %d (want 1..32)", ErrBadLabel, p.DW)
	}
	e := &DistEngine{kind: p.Kind, n: n, dw: p.DW, slab: slab, slabBits: int64(len(slab)) * 8,
		meta: make([]vertexMeta, n)}
	switch p.Kind {
	case DistPLL:
		e.w, e.wCnt, _ = pllWidths(n, 0)
	case DistBounded:
		e.w = bitstr.WidthFor(uint64(n))
		if p.F < 1 {
			return nil, fmt.Errorf("%w: distance bound %d (want >= 1)", ErrBadLabel, p.F)
		}
		if want := bitstr.WidthFor(uint64(p.F) + 2); want != p.DW {
			return nil, fmt.Errorf("%w: bound %d needs distance width %d, params carry %d", ErrBadLabel, p.F, want, p.DW)
		}
		if p.NFat < 0 || p.NFat > n {
			return nil, fmt.Errorf("%w: fat table of %d hubs over %d vertices", ErrBadLabel, p.NFat, n)
		}
		e.f, e.nFat = p.F, p.NFat
	default:
		return nil, fmt.Errorf("%w: unknown distance scheme kind %d", ErrBadLabel, uint8(p.Kind))
	}
	if e.w > 32 {
		return nil, fmt.Errorf("%w: %d labels need id width %d, engine packs ids in 32 bits", ErrBadLabel, n, e.w)
	}
	if order != nil && len(order) != n {
		return nil, fmt.Errorf("%w: layout permutation of %d entries over %d labels", ErrBadLabel, len(order), n)
	}
	var seen []uint64
	if order != nil {
		seen = make([]uint64, (n+63)>>6)
	}
	var off int64
	for r := 0; r < n; r++ {
		v := r
		if order != nil {
			v = int(order[r])
			if v < 0 || v >= n {
				return nil, fmt.Errorf("%w: layout permutation entry %d = %d of %d labels", ErrBadLabel, r, order[r], n)
			}
			if seen[v>>6]&(1<<uint(v&63)) != 0 {
				return nil, fmt.Errorf("%w: layout permutation repeats label %d at rank %d", ErrBadLabel, v, r)
			}
			seen[v>>6] |= 1 << uint(v&63)
		}
		lbits := bitLens[v]
		if lbits < 0 || lbits > maxLabelBits {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrBadLabel, v, lbits)
		}
		end := off + int64(bitstr.SlabWords(lbits))*bitstr.SlabWordBits
		if int(end>>3) > len(slab) {
			return nil, fmt.Errorf("%w: label %d ends at byte %d of a %d-byte slab", ErrBadLabel, v, end>>3, len(slab))
		}
		var err error
		if e.kind == DistPLL {
			err = e.validatePLL(v, off, int64(lbits))
		} else {
			err = e.validateBounded(v, off, int64(lbits))
		}
		if err != nil {
			return nil, err
		}
		off = end
	}
	return e, nil
}

// validatePLL parses label v at slab bit off spanning lbits bits, walking
// every δ-coded entry: ranks must be strictly increasing vertex ranks, the
// entries must tile the label exactly, and the count must fit the packed
// meta word. On success the header lands in e.meta[v].
func (e *DistEngine) validatePLL(v int, off, lbits int64) error {
	header := int64(e.w + e.wCnt)
	if lbits < header {
		return fmt.Errorf("%w: pll label %d has %d bits, header needs %d", ErrBadLabel, v, lbits, header)
	}
	id := bitstr.SlabReadBits(e.slab, off, e.w)
	cnt := bitstr.SlabReadBits(e.slab, off+int64(e.w), e.wCnt)
	// A well-formed entry is at least 1 (delta0 of gap 0) + dw bits; a count
	// beyond that bound cannot tile the label and would make the walk below
	// quadratic on corrupt headers.
	if cnt > uint64(lbits-header)/uint64(1+e.dw) || cnt > 1<<31-1 {
		return fmt.Errorf("%w: pll label %d declares %d entries in %d body bits", ErrBadLabel, v, cnt, lbits-header)
	}
	pos, end := off+header, off+lbits
	prev := uint64(0)
	for i := uint64(0); i < cnt; i++ {
		gap, wd, ok := slabReadDeltaChecked(e.slab, pos, end)
		if !ok {
			return fmt.Errorf("%w: pll label %d entry %d: bad rank gap code", ErrBadLabel, v, i)
		}
		rank := prev + gap
		if i == 0 {
			rank = gap
		}
		if rank >= uint64(e.n) || (i > 0 && gap == 0) {
			return fmt.Errorf("%w: pll label %d entry %d: rank %d of %d", ErrBadLabel, v, i, rank, e.n)
		}
		prev = rank
		pos += wd
		if pos+int64(e.dw) > end {
			return fmt.Errorf("%w: pll label %d entry %d: distance past label end", ErrBadLabel, v, i)
		}
		pos += int64(e.dw)
	}
	if pos != end {
		return fmt.Errorf("%w: pll label %d: %d trailing bits after %d entries", ErrBadLabel, v, end-pos, cnt)
	}
	e.meta[v] = vertexMeta{off: off + header, word: id<<32 | cnt<<1}
	return nil
}

// validateBounded checks a Lemma 7 label: exact fat length, thin list
// tiling, and strictly ascending in-range thin ids (the binary search's
// precondition — and what makes it answer identically to the legacy linear
// scan).
func (e *DistEngine) validateBounded(v int, off, lbits int64) error {
	header := int64(1 + e.w)
	listOff := header + int64(e.nFat*e.dw)
	if lbits < listOff {
		return fmt.Errorf("%w: bdist label %d has %d bits, fat table needs %d", ErrBadLabel, v, lbits, listOff)
	}
	fat := bitstr.SlabReadBits(e.slab, off, 1) == 1
	var id uint64
	if e.w > 0 {
		id = bitstr.SlabReadBits(e.slab, off+1, e.w)
	}
	cnt := uint64(0)
	if fat {
		if lbits != listOff {
			return fmt.Errorf("%w: bdist fat label %d of %d bits, want %d", ErrBadLabel, v, lbits, listOff)
		}
	} else {
		body := lbits - listOff
		stride := int64(e.w + e.dw)
		if body%stride != 0 {
			return fmt.Errorf("%w: bdist label %d thin list of %d bits", ErrBadLabel, v, body)
		}
		cnt = uint64(body / stride)
		if cnt > 1<<31-1 {
			return fmt.Errorf("%w: bdist label %d thin list of %d entries", ErrBadLabel, v, cnt)
		}
		prev := int64(-1)
		for i := int64(0); i < int64(cnt); i++ {
			tid := int64(0)
			if e.w > 0 {
				tid = int64(bitstr.SlabReadBits(e.slab, off+listOff+i*stride, e.w))
			}
			if tid <= prev || tid >= int64(e.n) {
				return fmt.Errorf("%w: bdist label %d thin entry %d: id %d after %d of %d", ErrBadLabel, v, i, tid, prev, e.n)
			}
			prev = tid
		}
	}
	word := id<<32 | cnt<<1
	if fat {
		word |= 1
	}
	e.meta[v] = vertexMeta{off: off + header, word: word}
	return nil
}

// slabReadDeltaChecked decodes one Elias delta0 code at bit pos, refusing to
// read at or past bit end: it returns the decoded value, the code width in
// bits, and ok=false for any code that is malformed, oversized (values are
// vertex ranks, so 32 bits at most), or runs past end. Used only at
// construction; the hot path decodes validated codes without checks.
func slabReadDeltaChecked(slab []byte, pos, end int64) (val uint64, width int64, ok bool) {
	avail := end - pos
	if avail <= 0 {
		return 0, 0, false
	}
	peek := avail
	if peek > 64 {
		peek = 64
	}
	buf := bitstr.SlabReadBits(slab, pos, int(peek))
	if peek < 64 {
		buf <<= uint(64 - peek)
	}
	z := bits.LeadingZeros64(buf)
	// gamma(nb): z zeros then nb in z+1 bits; values fit 33 bits (rank+1 for
	// ranks below 2^32), so nb <= 33 and z <= 5.
	if z > 5 || int64(2*z+1) > avail {
		return 0, 0, false
	}
	nb := int(buf << uint(z) >> uint(64-(z+1)))
	if nb < 1 || nb > 33 {
		return 0, 0, false
	}
	width = int64(2*z + 1 + nb - 1)
	if width > avail {
		return 0, 0, false
	}
	v := uint64(1) << uint(nb-1)
	if nb > 1 {
		v |= buf << uint(2*z+1) >> uint(64-(nb-1))
	}
	return v - 1, width, true
}

// pllEntry decodes the validated entry at bit off: the δ-coded rank gap and
// the fixed-width distance beside it, returning the entry's total width.
// One guarded 64-bit peek covers the whole gap code (validated codes are at
// most 43 bits); the clamp only fires within the slab's last word.
func (e *DistEngine) pllEntry(off int64) (gap, dist uint64, width int64) {
	peek := e.slabBits - off
	if peek > 64 {
		peek = 64
	}
	buf := bitstr.SlabReadBits(e.slab, off, int(peek))
	if peek < 64 {
		buf <<= uint(64 - peek)
	}
	z := bits.LeadingZeros64(buf)
	nb := int(buf << uint(z) >> uint(64-(z+1)))
	v := uint64(1) << uint(nb-1)
	if nb > 1 {
		v |= buf << uint(2*z+1) >> uint(64-(nb-1))
	}
	wd := int64(2*z + nb)
	dist = bitstr.SlabReadBits(e.slab, off+wd, e.dw)
	return v - 1, dist, wd + int64(e.dw)
}

// N returns the number of vertices the engine serves.
func (e *DistEngine) N() int { return e.n }

// Kind returns the engine's distance scheme kind.
func (e *DistEngine) Kind() DistKind { return e.kind }

// F returns the distance bound of a DistBounded engine (0 for DistPLL).
func (e *DistEngine) F() int { return e.f }

// AttachMetrics wires instrumentation into the engine's query paths; same
// contract as QueryEngine.AttachMetrics (attach before sharing, nil
// detaches). Distance queries tally the branch that resolved them: self for
// equal identifiers, fat when a bdist query had a fat endpoint, thin for
// thin-thin bdist pairs and every PLL merge.
func (e *DistEngine) AttachMetrics(m *EngineMetrics) { e.metrics = m }

// Dist answers a distance query between vertices u and v: the exact hop
// distance, or -1 when unreachable (DistPLL) or beyond the bound f
// (DistBounded) — the same sentinel both legacy decoders return. It is
// allocation-free and answers bit-for-bit identically to
// distance.PLLDecoder.Dist / distance.Decoder.Dist over the same labels.
func (e *DistEngine) Dist(u, v int) (int, error) {
	var t QueryTally
	d, err := e.DistTallied(u, v, &t)
	if m := e.metrics; m != nil {
		m.flush(&t)
	}
	return d, err
}

// DistTallied is the shared probe path: one query, branch tallies into t,
// flushed by the caller via FlushTally once per span (the adjserve opDist
// frame loop streams through here). With a result cache enabled the slab is
// only probed on a miss.
func (e *DistEngine) DistTallied(u, v int, t *QueryTally) (int, error) {
	if uint(u) >= uint(e.n) || uint(v) >= uint(e.n) {
		return 0, fmt.Errorf("%w: (%d,%d) of %d", ErrVertexRange, u, v, e.n)
	}
	t.queries++
	if c := e.cache; c != nil {
		key := distCacheKey(u, v)
		if d, hit := c.get(key); hit {
			t.cacheHits++
			return d, nil
		}
		t.cacheMisses++
		d := e.probeDist(u, v, t)
		c.put(key, d)
		return d, nil
	}
	return e.probeDist(u, v, t), nil
}

// probeDist resolves one in-range query against the slab.
func (e *DistEngine) probeDist(u, v int, t *QueryTally) int {
	mu, mv := e.meta[u], e.meta[v]
	if mu.id() == mv.id() {
		t.self++
		return 0
	}
	if e.kind == DistPLL {
		t.thin++
		return e.distPLL(mu, mv)
	}
	if mu.fat() || mv.fat() {
		t.fat++
	} else {
		t.thin++
	}
	return e.distBounded(mu, mv)
}

// distPLL merges the two sorted hub lists and returns the minimum summed
// distance — the exact loop of distance.PLLDecoder.Dist, reading δ-gap
// ranks and fixed-width distances straight from the slab.
func (e *DistEngine) distPLL(mu, mv vertexMeta) int {
	cntA, cntB := int(mu.cnt()), int(mv.cnt())
	offA, offB := mu.off, mv.off
	const inf = 1 << 30
	best := inf
	var rankA, rankB, distA, distB uint64
	haveA, haveB := false, false
	i, j := 0, 0
	for i < cntA || j < cntB {
		if !haveA && i < cntA {
			gap, d, wd := e.pllEntry(offA)
			if i == 0 {
				rankA = gap
			} else {
				rankA += gap
			}
			distA, offA = d, offA+wd
			haveA = true
		}
		if !haveB && j < cntB {
			gap, d, wd := e.pllEntry(offB)
			if j == 0 {
				rankB = gap
			} else {
				rankB += gap
			}
			distB, offB = d, offB+wd
			haveB = true
		}
		switch {
		case !haveA:
			j = cntB // A exhausted: no more common hubs
		case !haveB:
			i = cntA
		case rankA == rankB:
			if s := int(distA + distB); s < best {
				best = s
			}
			haveA, haveB = false, false
			i++
			j++
		case rankA < rankB:
			haveA = false
			i++
		default:
			haveB = false
			j++
		}
	}
	if best == inf {
		return graph.Unreachable
	}
	return best
}

// distBounded is Lemma 7's decode: the minimum over fat-hub relays, then
// for thin-thin pairs the two sorted thin lists — binary-searched here, with
// answers identical to the legacy linear scan because construction verified
// strict id order.
func (e *DistEngine) distBounded(mu, mv vertexMeta) int {
	best := e.f + 1
	offA, offB := mu.off, mv.off
	dw := e.dw
	for i := 0; i < e.nFat; i++ {
		da := int(bitstr.SlabReadBits(e.slab, offA+int64(i*dw), dw))
		if da >= best {
			continue
		}
		db := int(bitstr.SlabReadBits(e.slab, offB+int64(i*dw), dw))
		if s := da + db; s < best {
			best = s
		}
	}
	if !mu.fat() && !mv.fat() {
		if d, ok := e.thinDist(mu, mv.id()); ok && d < best {
			best = d
		}
		if best > 0 {
			if d, ok := e.thinDist(mv, mu.id()); ok && d < best {
				best = d
			}
		}
	}
	if best > e.f {
		return graph.Unreachable // distance.Beyond: the same -1 sentinel
	}
	return best
}

// thinDist binary-searches m's sorted thin list for target and returns its
// stored distance.
func (e *DistEngine) thinDist(m vertexMeta, target uint64) (int, bool) {
	w := e.w
	if w == 0 {
		return 0, false
	}
	stride := int64(w + e.dw)
	base := m.off + int64(e.nFat*e.dw)
	slab := e.slab
	lo, hi := int64(0), m.cnt()-1
	for lo <= hi {
		mid := (lo + hi) >> 1
		got := bitstr.SlabReadBits(slab, base+mid*stride, w)
		switch {
		case got == target:
			return int(bitstr.SlabReadBits(slab, base+mid*stride+int64(w), e.dw)), true
		case got < target:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return 0, false
}

// DistMany answers a batch of queries, appending one distance per pair to
// out and returning the extended slice; capacity for len(pairs) results
// makes the batch allocation-free. It stops at the first failing query.
func (e *DistEngine) DistMany(pairs [][2]int, out []int) ([]int, error) {
	var t QueryTally
	for _, p := range pairs {
		d, err := e.DistTallied(p[0], p[1], &t)
		if err != nil {
			e.flushDistBatch(&t, len(pairs))
			return out, fmt.Errorf("core: dist query (%d,%d): %w", p[0], p[1], err)
		}
		out = append(out, d)
	}
	e.flushDistBatch(&t, len(pairs))
	return out, nil
}

// DistManySorted answers a batch like DistMany but probes pairs in
// ascending arena-offset order of their first endpoint's label and scatters
// the answers back into request order — the distance-plane twin of
// AdjacentManySorted, sharing its BatchScratch and its fallback and
// whole-batch-failure semantics.
func (e *DistEngine) DistManySorted(pairs [][2]int, out []int, sc *BatchScratch) ([]int, error) {
	if sc == nil || len(pairs) >= 1<<sortIdxBits {
		return e.DistMany(pairs, out)
	}
	start := len(out)
	out = growInts(out, len(pairs))
	res := out[start:]
	if cap(sc.keys) < len(pairs) {
		sc.keys = make([]uint64, len(pairs))
	}
	keys := sc.keys[:len(pairs)]
	const maxSortKey = 1<<(64-sortIdxBits) - 1
	for i, p := range pairs {
		u, v := p[0], p[1]
		if uint(u) >= uint(e.n) || uint(v) >= uint(e.n) {
			return out[:start], fmt.Errorf("core: dist query (%d,%d): %w: (%d,%d) of %d", u, v, ErrVertexRange, u, v, e.n)
		}
		key := uint64(e.meta[u].off) >> 6
		if key > maxSortKey {
			key = maxSortKey
		}
		keys[i] = key<<sortIdxBits | uint64(i)
	}
	slices.Sort(keys)
	var t QueryTally
	for _, k := range keys {
		i := int(k & (1<<sortIdxBits - 1))
		d, err := e.DistTallied(pairs[i][0], pairs[i][1], &t)
		if err != nil {
			e.flushDistBatch(&t, len(pairs))
			return out[:start], fmt.Errorf("core: dist query (%d,%d): %w", pairs[i][0], pairs[i][1], err)
		}
		res[i] = d
	}
	e.flushDistBatch(&t, len(pairs))
	return out, nil
}

// DistManyParallel shards a batch across workers goroutines (<= 0 selects
// GOMAXPROCS), answering each shard with the allocation-free single-query
// path; results are in pair order.
func (e *DistEngine) DistManyParallel(pairs [][2]int, out []int, workers int) ([]int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		return e.DistMany(pairs, out)
	}
	start := len(out)
	out = growInts(out, len(pairs))
	res := out[start:]
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(pairs) {
			break
		}
		hi := min(lo+chunk, len(pairs))
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			var t QueryTally
			for i := lo; i < hi; i++ {
				d, err := e.DistTallied(pairs[i][0], pairs[i][1], &t)
				if err != nil {
					errs[wi] = fmt.Errorf("core: dist query (%d,%d): %w", pairs[i][0], pairs[i][1], err)
					break
				}
				res[i] = d
			}
			if m := e.metrics; m != nil {
				m.flush(&t)
			}
		}(wi, lo, hi)
	}
	wg.Wait()
	if m := e.metrics; m != nil {
		m.Batches.Inc()
		m.BatchPairs.Observe(int64(len(pairs)))
	}
	for _, err := range errs {
		if err != nil {
			return out[:start], err
		}
	}
	return out, nil
}

// growInts extends out by extra entries, reusing capacity when it can.
func growInts(out []int, extra int) []int {
	if need := len(out) + extra; cap(out) >= need {
		return out[:need]
	}
	grown := make([]int, len(out)+extra)
	copy(grown, out)
	return grown
}

// flushDistBatch charges one batch call's tally.
func (e *DistEngine) flushDistBatch(t *QueryTally, pairs int) {
	if m := e.metrics; m != nil {
		m.flush(t)
		m.Batches.Inc()
		m.BatchPairs.Observe(int64(pairs))
	}
}

// FlushTally charges a caller-managed tally span, exactly as
// QueryEngine.FlushTally does for adjacency frames.
func (e *DistEngine) FlushTally(t *QueryTally, pairs int) {
	if m := e.metrics; m != nil {
		m.flush(t)
		if pairs > 0 {
			m.Batches.Inc()
			m.BatchPairs.Observe(int64(pairs))
		}
	}
	*t = QueryTally{}
}

// ObserveProbe charges one served frame's engine-probe wall time to the
// attached metrics, exactly as QueryEngine.ObserveProbe does for adjacency
// frames.
func (e *DistEngine) ObserveProbe(ns int64, traceID uint64) {
	if m := e.metrics; m != nil {
		m.ObserveProbe(ns, traceID)
	}
}

// distCache is the (u,v)→distance twin of pairCache. A slot is one atomic
// word:
//
//	slot = key<<10 | (dist+1)<<1 | 1
//
// with key = min(u,v)<<27 | max(u,v). Distances carry 9 bits (stored +1 so
// the -1 sentinel packs as 0), so the cache holds answers up to 510 hops —
// far past any power-law diameter; larger answers are simply not inserted.
// Keys embed both vertices, so a lost store race leaves a correct entry,
// never a mismatched one.
type distCache struct {
	slots []atomic.Uint64
	mask  uint64
}

func newDistCache(bits int) *distCache {
	return &distCache{slots: make([]atomic.Uint64, 1<<bits), mask: 1<<bits - 1}
}

// distCacheKey canonicalizes an unordered pair (distances are symmetric).
// Callers guarantee 0 <= u,v < n <= 2^27.
func distCacheKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<27 | uint64(v)
}

func (c *distCache) index(key uint64) uint64 {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h & c.mask
}

func (c *distCache) get(key uint64) (dist int, hit bool) {
	s := c.slots[c.index(key)].Load()
	if s&1 == 1 && s>>10 == key {
		return int(s>>1&0x1ff) - 1, true
	}
	return 0, false
}

func (c *distCache) put(key uint64, dist int) {
	if dist < -1 || dist > 509 {
		return
	}
	c.slots[c.index(key)].Store(key<<10 | uint64(dist+1)<<1 | 1)
}

// EnableResultCache attaches a direct-mapped (u,v)→distance cache of 2^bits
// slots probed before the slab; bits <= 0 detaches. Same contract as the
// adjacency engine's: attach before sharing, safe under concurrent readers
// and writers afterwards, hits/misses tallied into the attached metrics.
// Distance keys pack two 27-bit vertex ids, so the cache is available for
// engines up to 2^27 vertices.
func (e *DistEngine) EnableResultCache(bits int) error {
	if bits <= 0 {
		e.cache = nil
		return nil
	}
	if bits > maxCacheBits {
		return fmt.Errorf("core: result cache of 2^%d slots (max 2^%d)", bits, maxCacheBits)
	}
	if e.n > 1<<27 {
		return fmt.Errorf("core: distance cache keys pack 27-bit vertex ids, engine has %d vertices", e.n)
	}
	e.cache = newDistCache(bits)
	return nil
}
