package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/bitstr"
)

// Distance slab encode pipeline
//
// The distance schemes (PLL's 2-hop cover and Lemma 7's bounded-distance
// labels) get the same two-phase treatment as the adjacency encoders in
// pipeline.go: an exact per-label size plan, a word-aligned prefix sum into
// one shared slab, and a parallel in-place fill over word-balanced rank
// ranges. The graph work (pruned BFS sweeps, bounded BFS tables) stays in
// internal/schemes/distance, which hands the pipeline flat per-vertex entry
// lists; the pipeline owns only widths, offsets and bit stores, so core
// never imports a scheme package.
//
// Two slab label layouts, selected by DistKind:
//
//	pll    [own id: w][entry count: wCnt]
//	       then per entry, sorted by hub rank:
//	       [delta0(rank gap)][dist: dw]
//	       w = max(ceil(log2 n), 1), wCnt = max(ceil(log2 (n+1)), 1); the
//	       rank gaps use the δ-gap convention of the compressed adjacency
//	       scheme (gap 0 is the first rank itself, later gaps are strictly
//	       positive differences), dw is fixed-width.
//
//	bdist  [fat bit][own id: w][dist to fat hub i: dw] × nFat
//	       then, thin vertices only, entries sorted by vertex id:
//	       [thin id: w][dist: dw]
//	       w = ceil(log2 n), dw = ceil(log2 (f+2)) — bit-for-bit the legacy
//	       Lemma 7 label layout of distance.Scheme, so a slab label and the
//	       Builder-built label are identical strings.
//
// Answers from a DistEngine over either slab are pinned byte-identical to
// the legacy PLLDecoder/Decoder by TestDistEngineMatchesLegacy*.

// DistEntry is one (id, dist) pair of a distance label body: a PLL
// (landmark rank, distance) entry, or a Lemma 7 thin-list (vertex id,
// distance) entry. Lists handed to the pipeline are sorted by ID ascending.
type DistEntry struct {
	ID int32
	D  int32
}

// DistKind selects a distance slab layout.
type DistKind uint8

const (
	// DistPLL is the pruned-landmark 2-hop-cover layout (exact distances).
	DistPLL DistKind = 1
	// DistBounded is the Lemma 7 f(n)-bounded layout.
	DistBounded DistKind = 2
)

// String names the kind as the labelstore scheme= record value.
func (k DistKind) String() string {
	switch k {
	case DistPLL:
		return "pll"
	case DistBounded:
		return "bdist"
	}
	return fmt.Sprintf("DistKind(%d)", uint8(k))
}

// DistParams carries the family parameters a DistEngine needs beyond the
// slab itself; they travel in the labelstore header next to the scheme=
// record kind.
type DistParams struct {
	Kind DistKind
	// DW is the fixed distance field width in bits (PLL: sized to the
	// largest stored distance; bdist: ceil(log2 (F+2)), derived).
	DW int
	// F is the bdist distance bound: queries up to F hops are exact, beyond
	// is reported as distance.Beyond.
	F int
	// NFat is the bdist fat-table width (number of fat hubs).
	NFat int
}

// DistArena is a pipeline-encoded distance labeling: one word-aligned slab,
// per-vertex bit lengths, an optional physical layout permutation (rank r
// holds vertex Order[r]'s label; nil is the identity), and the family
// parameters. It is what NewDistEngineFromArena adopts zero-copy and what
// labelstore stores as a format-v2 blob.
type DistArena struct {
	Slab    []byte
	BitLens []int
	Order   []int32
	Params  DistParams
}

// N returns the number of labeled vertices.
func (a *DistArena) N() int { return len(a.BitLens) }

// pllWidths returns the PLL label field widths for an n-vertex graph with
// maximum stored distance maxDist — identical to the legacy encoder's.
func pllWidths(n int, maxDist int32) (w, wCnt, dw int) {
	w = bitstr.WidthFor(uint64(n))
	if w == 0 {
		w = 1
	}
	wCnt = bitstr.WidthFor(uint64(n) + 1)
	if wCnt == 0 {
		wCnt = 1
	}
	dw = bitstr.WidthFor(uint64(maxDist) + 2)
	if dw == 0 {
		dw = 1
	}
	return w, wCnt, dw
}

// distPlanRanges chunks 0..n-1 for the parallel size-plan phase.
func distPlanRanges(n, workers int) [][2]int {
	ranges := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	return ranges
}

// distLayout prefix-sums word-aligned offsets over the physical order and
// scatters them back to id-indexed offs, exactly as slabPlan.layout does.
// Returns (id-indexed offs, rank-indexed monotonic physOffs).
func distLayout(bitLens []int, order []int32) ([]int64, []int64, error) {
	n := len(bitLens)
	if order != nil && len(order) != n {
		return nil, nil, fmt.Errorf("core: layout permutation of %d entries over %d labels", len(order), n)
	}
	physOffs := make([]int64, n+1)
	words := 0
	for r := 0; r < n; r++ {
		v := r
		if order != nil {
			v = int(order[r])
			if v < 0 || v >= n {
				return nil, nil, fmt.Errorf("core: layout permutation entry %d = %d of %d labels", r, order[r], n)
			}
		}
		physOffs[r] = int64(words) * bitstr.SlabWordBits
		words += bitstr.SlabWords(bitLens[v])
	}
	physOffs[n] = int64(words) * bitstr.SlabWordBits
	if order == nil {
		return physOffs[:n], physOffs, nil
	}
	offs := make([]int64, n)
	for r, v := range order {
		offs[v] = physOffs[r]
	}
	return offs, physOffs, nil
}

// EncodePLLArena writes per-vertex PLL entry lists (sorted by hub rank,
// exactly as the pruned BFS emits them) into one word-aligned slab. maxDist
// is the largest entry distance (it sizes the fixed-width distance field the
// same way the legacy encoder does). order, when non-nil, is the physical
// layout permutation (rank→vertex); workers <= 0 selects GOMAXPROCS.
func EncodePLLArena(entries [][]DistEntry, maxDist int32, order []int32, workers int) (*DistArena, error) {
	n := len(entries)
	if n == 0 {
		return nil, fmt.Errorf("core: pll encode of zero vertices")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	w, wCnt, dw := pllWidths(n, maxDist)

	// Phase 1 (parallel): exact per-label bit lengths — header plus the
	// δ-coded rank gaps and fixed-width distances of each entry.
	planStart := time.Now()
	bitLens := make([]int, n)
	var planErr error
	runRanges(distPlanRanges(n, workers), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			bits := w + wCnt
			prev := uint64(0)
			for i, e := range entries[v] {
				if e.ID < 0 || int(e.ID) >= n || (i > 0 && uint64(e.ID) <= prev) ||
					e.D < 0 || e.D > maxDist {
					planErr = fmt.Errorf("core: pll label %d entry %d: rank %d dist %d (n=%d maxDist=%d)",
						v, i, e.ID, e.D, n, maxDist)
					return
				}
				gap := uint64(e.ID) - prev
				if i == 0 {
					gap = uint64(e.ID)
				}
				bits += bitstr.DeltaLen(gap+1) + dw
				prev = uint64(e.ID)
			}
			bitLens[v] = bits
		}
	})
	if planErr != nil {
		return nil, planErr
	}
	offs, physOffs, err := distLayout(bitLens, order)
	if err != nil {
		return nil, err
	}
	pipelineMetrics.PlanNs.ObserveDuration(time.Since(planStart))

	// Phase 2 (parallel): direct-to-arena fill over word-balanced rank
	// ranges.
	fillStart := time.Now()
	slab := make([]byte, int(physOffs[n]>>3))
	runRanges(splitByWords(physOffs, workers), func(lo, hi int) {
		sw := bitstr.NewSlabWriter(slab)
		for r := lo; r < hi; r++ {
			v := r
			if order != nil {
				v = int(order[r])
			}
			sw.SeekBit(offs[v])
			sw.WriteUint(uint64(v), w)
			sw.WriteUint(uint64(len(entries[v])), wCnt)
			prev := uint64(0)
			for i, e := range entries[v] {
				gap := uint64(e.ID) - prev
				if i == 0 {
					gap = uint64(e.ID)
				}
				sw.WriteDelta0(gap)
				sw.WriteUint(uint64(e.D), dw)
				prev = uint64(e.ID)
			}
			sw.Flush()
		}
	})
	pipelineMetrics.FillNs.ObserveDuration(time.Since(fillStart))
	pipelineMetrics.Runs.Inc()
	pipelineMetrics.Labels.Add(int64(n))
	return &DistArena{Slab: slab, BitLens: bitLens, Order: order,
		Params: DistParams{Kind: DistPLL, DW: dw}}, nil
}

// EncodeBoundedArena writes Lemma 7 bounded-distance labels into one
// word-aligned slab, bit-for-bit identical to the legacy Builder encoder's
// labels. fat flags each vertex's class; fatDist[v] is v's full fat table
// (one dw-wide entry per hub, sentinel f+1 for "beyond"); thin[v] is thin
// vertex v's (id, dist) list sorted by id ascending (ignored for fat
// vertices). order and workers as in EncodePLLArena.
func EncodeBoundedArena(fat []bool, fatDist [][]int32, thin [][]DistEntry, f int, order []int32, workers int) (*DistArena, error) {
	n := len(fat)
	if n == 0 {
		return nil, fmt.Errorf("core: bounded-distance encode of zero vertices")
	}
	if f < 1 {
		return nil, fmt.Errorf("core: distance bound must be >= 1, got %d", f)
	}
	if len(fatDist) != n || len(thin) != n {
		return nil, fmt.Errorf("core: bounded-distance inputs of %d/%d/%d vertices", n, len(fatDist), len(thin))
	}
	nFat := len(fatDist[0])
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	w := bitstr.WidthFor(uint64(n))
	dw := bitstr.WidthFor(uint64(f) + 2)
	header := 1 + w + nFat*dw

	// Phase 1: sizes are pure arithmetic on the input shapes.
	planStart := time.Now()
	bitLens := make([]int, n)
	var planErr error
	runRanges(distPlanRanges(n, workers), func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if len(fatDist[v]) != nFat {
				planErr = fmt.Errorf("core: bdist label %d: fat table of %d entries, want %d", v, len(fatDist[v]), nFat)
				return
			}
			bits := header
			if !fat[v] {
				prev := int32(-1)
				for i, e := range thin[v] {
					if e.ID < 0 || int(e.ID) >= n || e.ID <= prev || e.D < 0 || int(e.D) > f+1 {
						planErr = fmt.Errorf("core: bdist label %d thin entry %d: id %d dist %d (n=%d f=%d)",
							v, i, e.ID, e.D, n, f)
						return
					}
					prev = e.ID
				}
				bits += len(thin[v]) * (w + dw)
			}
			bitLens[v] = bits
		}
	})
	if planErr != nil {
		return nil, planErr
	}
	offs, physOffs, err := distLayout(bitLens, order)
	if err != nil {
		return nil, err
	}
	pipelineMetrics.PlanNs.ObserveDuration(time.Since(planStart))

	// Phase 2: parallel fill.
	fillStart := time.Now()
	slab := make([]byte, int(physOffs[n]>>3))
	runRanges(splitByWords(physOffs, workers), func(lo, hi int) {
		sw := bitstr.NewSlabWriter(slab)
		for r := lo; r < hi; r++ {
			v := r
			if order != nil {
				v = int(order[r])
			}
			sw.SeekBit(offs[v])
			// Fat bit and w-bit identifier in one store, as in the adjacency
			// fill.
			hdr := uint64(v)
			if fat[v] {
				hdr |= 1 << uint(w)
			}
			sw.WriteUint(hdr, 1+w)
			sw.WriteUints32(fatDist[v], dw)
			if !fat[v] {
				for _, e := range thin[v] {
					sw.WriteUint(uint64(e.ID), w)
					sw.WriteUint(uint64(e.D), dw)
				}
			}
			sw.Flush()
		}
	})
	pipelineMetrics.FillNs.ObserveDuration(time.Since(fillStart))
	pipelineMetrics.Runs.Inc()
	pipelineMetrics.Labels.Add(int64(n))
	return &DistArena{Slab: slab, BitLens: bitLens, Order: order,
		Params: DistParams{Kind: DistBounded, DW: dw, F: f, NFat: nFat}}, nil
}
