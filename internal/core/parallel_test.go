package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestEncodeParallelMatchesSequential(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(2000, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewPowerLawScheme(2.5)
	seq, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		par, err := s.EncodeParallel(g, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.N() != seq.N() {
			t.Fatalf("workers=%d: N mismatch", workers)
		}
		for v := 0; v < g.N(); v++ {
			a, err := seq.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("workers=%d: label %d differs", workers, v)
			}
		}
	}
}

func TestEncodeParallelDegenerate(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Empty(0), graph.Empty(1), gen.Path(2)} {
		lab, err := NewSparseScheme(1).EncodeParallel(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.Verify(g); err != nil {
			t.Error(err)
		}
	}
}

func TestEncodeParallelErrorPropagates(t *testing.T) {
	if _, err := NewFixedThresholdScheme(0).EncodeParallel(gen.Path(4), 2); err == nil {
		t.Error("bad threshold accepted")
	}
}

func TestPracticalThreshold(t *testing.T) {
	s := NewPowerLawSchemePractical(2.5)
	g, err := gen.ChungLuPowerLaw(1000, 2.5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := s.Threshold(g)
	if err != nil {
		t.Fatal(err)
	}
	// (1000/log2(1000))^(1/2.5) ≈ 5.99 → 6.
	if tau < 5 || tau > 8 {
		t.Errorf("practical threshold = %d, expected ≈ 6", tau)
	}
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Verify(g); err != nil {
		t.Error(err)
	}
	if _, err := NewPowerLawSchemePractical(0.5).Threshold(g); err == nil {
		t.Error("alpha <= 1 accepted")
	}
}

func TestModelScheme(t *testing.T) {
	c, err := ZetaTailCoefficient(2.5)
	if err != nil {
		t.Fatal(err)
	}
	// c = 1/(ζ(2.5)·1.5) ≈ 0.4969.
	if c < 0.45 || c < 0 || c > 0.55 {
		t.Errorf("ZetaTailCoefficient(2.5) = %v", c)
	}
	if _, err := ZetaTailCoefficient(1.0); err == nil {
		t.Error("alpha=1 accepted")
	}
	g, err := gen.PowerLawConfiguration(2000, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewPowerLawSchemeModel(2.5, c)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Verify(g); err != nil {
		t.Error(err)
	}
}

func TestFitTailConstant(t *testing.T) {
	// On an ideal zeta-degree graph the fitted tail coefficient should land
	// near the analytic value 1/(ζ(α)(α-1)).
	alpha := 2.5
	g, err := gen.PowerLawConfiguration(20000, alpha, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ZetaTailCoefficient(alpha)
	if err != nil {
		t.Fatal(err)
	}
	got := FitTailConstant(g, alpha)
	if got < want/3 || got > want*3 {
		t.Errorf("FitTailConstant = %.3f, analytic %.3f (off by >3x)", got, want)
	}
	// Degenerate inputs return the safe default.
	if FitTailConstant(graph.Empty(0), alpha) != 1 {
		t.Error("empty graph should return 1")
	}
	if FitTailConstant(graph.Empty(10), alpha) != 1 {
		t.Error("edgeless graph should return 1")
	}
}
