package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// Slab encode pipeline
//
// The fat/thin layout fixes every label's exact bit length up front: a fat
// label is 1 + w + k bits, a thin label 1 + w + deg·w (w = ceil(log2 n), k =
// number of fat vertices). The pipeline exploits that in two phases:
//
//  1. size-plan: compute each vertex's label bit length from its degree and
//     fat/thin class, then prefix-sum word-aligned offsets into one shared
//     slab — one allocation for the entire labeling;
//  2. fill: write every label in place, in parallel across word-balanced
//     vertex ranges. Fat bitmaps are built by OR stores at computed bit
//     positions (no intermediate Vector, no copy), thin neighbor lists by
//     packed 64-bit word stores through a bitstr.SlabWriter.
//
// The result is a Labeling born compact (arena-backed), which NewQueryEngine
// adopts zero-copy, and which labelstore writes as a single body blob. The
// labels are bit-for-bit identical to the legacy Builder-based encoder's
// (asserted by TestPipelineMatchesLegacy* in pipeline_test.go).
//
// An optional layout pass (Layout, layout.go) reorders the *physical* slots:
// LayoutDegree stores bodies in descending-degree order — hubs packed into
// the first contiguous pages, thin tail after — while every label keeps its
// exact bits and its id-indexed view, carried by the rank→vertex permutation
// that NewPermutedArenaLabeling, the labelstore format and the query engine
// all thread through.

// slabPlan is the output of phase 1: the identifier tables and the exact
// slab layout.
type slabPlan struct {
	w, k    int
	id      []int
	bitLens []int
	// byID[i] is the vertex whose identifier is i (ids are a permutation);
	// fatBits[v>>6] bit v&63 is set iff id[v] < k. Together they drive the
	// counting-sort transpose of the fill phase.
	byID    []int32
	fatBits []uint64
	// order, when non-nil, is the physical layout permutation: slab rank r
	// holds vertex order[r]'s label. LayoutDegree simply points it at byID —
	// identifiers are assigned in descending-degree order (fat hubs 0..k-1,
	// then the thin tail), so identifier order *is* degree order and the
	// layout pass costs nothing beyond the plan's existing tables.
	order []int32
	// offs[v] is the bit offset of label v's word-aligned start (id-indexed,
	// non-monotonic under a permuted layout); physOffs[r] is the offset of
	// slab rank r (monotonic — what splitByWords and the slab size read),
	// with physOffs[n] the total slab size in bits. Under LayoutID the two
	// share backing.
	offs     []int64
	physOffs []int64
	// nbrIDs[nbrOffs[v]:nbrOffs[v+1]] holds thin vertex v's neighbor
	// identifiers in ascending order — the exact body of its label, built by
	// buildNeighborLists. Fat vertices have empty ranges; instead,
	// fatIDs[fatOffs[j]:fatOffs[j+1]] holds the identifiers of hub j's fat
	// neighbors — exactly the set bits of its bitmap.
	nbrOffs []int32
	nbrIDs  []int32
	fatOffs []int32
	fatIDs  []int32
}

// newSlabPlan builds the identifier tables for an n-vertex plan.
func newSlabPlan(g *graph.Graph, tau, w int) *slabPlan {
	id, k := assignFatThinIDs(g, tau)
	n := g.N()
	p := &slabPlan{w: w, k: k, id: id, bitLens: make([]int, n)}
	p.byID = make([]int32, n)
	p.fatBits = make([]uint64, (n+63)>>6)
	for v, i := range id {
		p.byID[i] = int32(v)
		if i < k {
			p.fatBits[v>>6] |= 1 << uint(v&63)
		}
	}
	return p
}

// buildNeighborLists materializes every thin vertex's neighbor-identifier
// list, already sorted ascending, in one O(n + m) pass: walking vertices in
// increasing identifier order and appending that identifier to each
// neighbor's list emits every list's entries in sorted order. This
// counting-sort transpose replaces a comparison sort per thin vertex — the
// sorts were the single hottest piece of the encode profile.
//
// The same walk over hub sources (ids below k) also emits each hub's
// fat-neighbor identifiers — precisely the set bits of its bitmap — so the
// fill phase never rescans hub adjacency or resolves neighbor ids at all.
// The fat test is the plan's L1-resident fatBits bitset, and the cursor
// tables are int32 so the pass's random-access streams stay small.
func (p *slabPlan) buildNeighborLists(g *graph.Graph) {
	n, k := g.N(), p.k
	fat := p.fatBits
	offs := make([]int32, n+1)
	var pos int32
	for v := 0; v < n; v++ {
		offs[v] = pos
		if p.id[v] >= k {
			pos += int32(g.Degree(v))
		}
	}
	offs[n] = pos
	// The scatter loops are branchless on the thin stream: every edge
	// stores, but edges whose target is fat store into a shared trash slot
	// (index pos) and leave the cursor unmoved, so hub-bound edges —
	// frequent and unpredictably interleaved in power-law graphs — cost no
	// mispredicts.
	cur := make([]int32, n)
	for v := 0; v < n; v++ {
		if p.id[v] < k {
			cur[v] = pos
		} else {
			cur[v] = offs[v]
		}
	}
	ids := make([]int32, pos+1)

	// Hub sources first: their edges additionally feed the fat-fat lists.
	// Each hub's list length is its own fat-neighbor count (adjacency is
	// symmetric), so one cheap sequential counting scan sizes the table
	// exactly. The fat-fat branch in the scatter is rare among a hub's
	// mostly-thin neighbors, hence well predicted.
	fatOffs := make([]int32, k+1)
	for j := 0; j < k; j++ {
		cnt := int32(0)
		for _, v := range g.Neighbors(int(p.byID[j])) {
			cnt += int32(fat[v>>6] >> uint(v&63) & 1)
		}
		fatOffs[j+1] = fatOffs[j] + cnt
	}
	fcur := make([]int32, k)
	copy(fcur, fatOffs[:k])
	fatIDs := make([]int32, fatOffs[k])
	for i := 0; i < k; i++ {
		for _, v := range g.Neighbors(int(p.byID[i])) {
			c := cur[v]
			ids[c] = int32(i)
			cur[v] = c + 1 - int32(fat[v>>6]>>uint(v&63)&1)
			if fat[v>>6]&(1<<uint(v&63)) != 0 {
				j := p.id[v]
				fatIDs[fcur[j]] = int32(i)
				fcur[j]++
			}
		}
	}
	for i := k; i < n; i++ {
		for _, v := range g.Neighbors(int(p.byID[i])) {
			c := cur[v]
			ids[c] = int32(i)
			cur[v] = c + 1 - int32(fat[v>>6]>>uint(v&63)&1)
		}
	}
	p.nbrOffs, p.nbrIDs = offs, ids[:pos:pos]
	p.fatOffs, p.fatIDs = fatOffs, fatIDs
}

// layout prefix-sums word-aligned label offsets from the bit lengths, in the
// physical order the chosen layout dictates. LayoutID keeps the historical
// identity (label v at slot v); LayoutDegree walks ranks through byID, which
// packs the fat-set hubs — the labels skewed traffic actually touches — into
// the first contiguous pages of the slab, thin tail after.
func (p *slabPlan) layout(lay Layout) {
	n := len(p.bitLens)
	if lay == LayoutDegree {
		p.order = p.byID
	}
	p.physOffs = make([]int64, n+1)
	words := 0
	for r := 0; r < n; r++ {
		p.physOffs[r] = int64(words) * bitstr.SlabWordBits
		words += bitstr.SlabWords(p.bitLens[p.vertexAt(r)])
	}
	p.physOffs[n] = int64(words) * bitstr.SlabWordBits
	if p.order == nil {
		p.offs = p.physOffs[:n]
		return
	}
	p.offs = make([]int64, n)
	for r, v := range p.order {
		p.offs[v] = p.physOffs[r]
	}
}

// vertexAt maps a slab rank to the vertex whose label occupies it.
func (p *slabPlan) vertexAt(r int) int {
	if p.order == nil {
		return r
	}
	return int(p.order[r])
}

// splitByWords partitions slab ranks into up to `workers` contiguous ranges
// of roughly equal slab footprint, so one hub-heavy range cannot serialize
// the fill phase. offs must be the monotonic rank-indexed offsets
// (plan.physOffs); under a permuted layout the ranges are rank ranges, which
// keeps each worker's stores contiguous in the slab.
func splitByWords(offs []int64, workers int) [][2]int {
	n := len(offs) - 1
	total := offs[n]
	out := make([][2]int, 0, workers)
	lo := 0
	for i := 1; i <= workers && lo < n; i++ {
		target := total * int64(i) / int64(workers)
		hi := lo
		for hi < n && offs[hi] < target {
			hi++
		}
		if hi > lo {
			out = append(out, [2]int{lo, hi})
			lo = hi
		}
	}
	return out
}

// runRanges executes fill over the ranges, one goroutine per range beyond
// the first caller-run one.
func runRanges(ranges [][2]int, fill func(lo, hi int)) {
	if len(ranges) == 1 {
		fill(ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	for _, r := range ranges[1:] {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(r[0], r[1])
	}
	fill(ranges[0][0], ranges[0][1])
	wg.Wait()
}

// encodeFatThinSlab is the pipeline encoder behind FatThinScheme.Encode and
// EncodeParallel. workers <= 0 selects GOMAXPROCS; lay selects the physical
// body order (LayoutDegree returns a permuted arena labeling, answers
// unchanged).
func encodeFatThinSlab(name string, g *graph.Graph, tau, workers int, lay Layout) (*Labeling, error) {
	if tau < 1 {
		return nil, fmt.Errorf("core: threshold must be >= 1, got %d", tau)
	}
	n := g.N()
	if n <= 1 {
		// Degenerate graphs take the legacy path (no body bits to plan, no
		// layout to choose).
		return encodeFatThinLegacy(name, g, tau)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	w := bitstr.WidthFor(uint64(n))
	header := 1 + w

	// Phase 1: size-plan. Fat/thin class and degree determine each label
	// exactly; the scan is O(n) arithmetic on top of the id assignment and
	// the thin-list transpose.
	planStart := time.Now()
	plan := newSlabPlan(g, tau, w)
	plan.buildNeighborLists(g)
	id, k := plan.id, plan.k
	for v := 0; v < n; v++ {
		if id[v] < k {
			plan.bitLens[v] = header + k
		} else {
			plan.bitLens[v] = header + g.Degree(v)*w
		}
	}
	plan.layout(lay)
	pipelineMetrics.PlanNs.ObserveDuration(time.Since(planStart))

	// Phase 2: parallel direct-to-arena fill.
	fillStart := time.Now()
	slab := make([]byte, int(plan.physOffs[n]>>3))
	runRanges(splitByWords(plan.physOffs, workers), func(lo, hi int) {
		fillFatThinSlab(plan, slab, lo, hi)
	})
	pipelineMetrics.FillNs.ObserveDuration(time.Since(fillStart))
	pipelineMetrics.Runs.Inc()
	pipelineMetrics.Labels.Add(int64(n))
	return NewPermutedArenaLabeling(name, slab, plan.bitLens, plan.order, &FatThinDecoder{n: n, w: w})
}

// fillFatThinSlab writes the labels of slab ranks [lo, hi) directly into the
// slab, with zero allocations. Both label bodies come straight from the
// plan's transposed lists — the graph is never consulted here.
func fillFatThinSlab(plan *slabPlan, slab []byte, lo, hi int) {
	sw := bitstr.NewSlabWriter(slab)
	id, k, w := plan.id, plan.k, plan.w
	for r := lo; r < hi; r++ {
		v := plan.vertexAt(r)
		off := plan.offs[v]
		sw.SeekBit(off)
		// The header — fat bit then the w-bit identifier — is one write: the
		// flag is simply bit w of a (1+w)-bit field.
		if vid := id[v]; vid < k { // fat: OR stores into the k-bit bitmap
			sw.WriteUint(1<<uint(w)|uint64(vid), 1+w)
			sw.Flush()
			base := off + int64(1+w)
			for _, i := range plan.fatIDs[plan.fatOffs[vid]:plan.fatOffs[vid+1]] {
				bitstr.SlabSetBit(slab, base+int64(i))
			}
		} else { // thin: packed pre-sorted neighbor ids, 64 bits per store
			sw.WriteUint(uint64(vid), 1+w)
			sw.WriteUints32(plan.nbrIDs[plan.nbrOffs[v]:plan.nbrOffs[v+1]], w)
			sw.Flush()
		}
	}
}

// encodeCompressedSlab is the pipeline encoder behind CompressedScheme. The
// size plan is heavier than the fat/thin one — choosing between fixed-width
// and δ-gap thin encodings requires the sorted neighbor ids — so phase 1 is
// parallelized too; only the prefix sum is sequential.
func encodeCompressedSlab(name string, g *graph.Graph, tau, workers int, lay Layout) (*Labeling, error) {
	if tau < 1 {
		return nil, fmt.Errorf("core: threshold must be >= 1, got %d", tau)
	}
	n := g.N()
	if n <= 1 {
		return encodeCompressedLegacy(name, g, tau)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	w := bitstr.WidthFor(uint64(n))
	header := 1 + w

	planStart := time.Now()
	plan := newSlabPlan(g, tau, w)
	plan.buildNeighborLists(g)
	id, k := plan.id, plan.k
	gapFlag := make([]bool, n)

	// Phase 1 (parallel): exact per-label sizes and encoding choices.
	planRanges := make([][2]int, 0, workers)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		planRanges = append(planRanges, [2]int{lo, hi})
	}
	runRanges(planRanges, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if id[v] < k {
				plan.bitLens[v] = header + k
				continue
			}
			nbr := plan.nbrIDs[plan.nbrOffs[v]:plan.nbrOffs[v+1]]
			gapBits := 0
			prev := uint64(0)
			for i, x := range nbr {
				gap := uint64(x) - prev
				if i == 0 {
					gap = uint64(x)
				}
				gapBits += bitstr.DeltaLen(gap + 1)
				prev = uint64(x)
			}
			if fixed := len(nbr) * w; gapBits < fixed {
				gapFlag[v] = true
				plan.bitLens[v] = header + 1 + gapBits
			} else {
				plan.bitLens[v] = header + 1 + fixed
			}
		}
	})
	plan.layout(lay)
	pipelineMetrics.PlanNs.ObserveDuration(time.Since(planStart))

	// Phase 2 (parallel): fill, over rank ranges as in fillFatThinSlab.
	fillStart := time.Now()
	slab := make([]byte, int(plan.physOffs[n]>>3))
	runRanges(splitByWords(plan.physOffs, workers), func(lo, hi int) {
		sw := bitstr.NewSlabWriter(slab)
		for r := lo; r < hi; r++ {
			v := plan.vertexAt(r)
			off := plan.offs[v]
			sw.SeekBit(off)
			if vid := id[v]; vid < k {
				sw.WriteUint(1<<uint(w)|uint64(vid), 1+w)
				sw.Flush()
				base := off + int64(header)
				for _, i := range plan.fatIDs[plan.fatOffs[vid]:plan.fatOffs[vid+1]] {
					bitstr.SlabSetBit(slab, base+int64(i))
				}
				continue
			}
			nbr := plan.nbrIDs[plan.nbrOffs[v]:plan.nbrOffs[v+1]]
			sw.WriteUint(uint64(id[v]), 1+w)
			sw.WriteBit(gapFlag[v])
			if gapFlag[v] {
				prev := uint64(0)
				for i, x := range nbr {
					gap := uint64(x) - prev
					if i == 0 {
						gap = uint64(x)
					}
					sw.WriteDelta0(gap)
					prev = uint64(x)
				}
			} else {
				sw.WriteUints32(nbr, w)
			}
			sw.Flush()
		}
	})
	pipelineMetrics.FillNs.ObserveDuration(time.Since(fillStart))
	pipelineMetrics.Runs.Inc()
	pipelineMetrics.Labels.Add(int64(n))
	return NewPermutedArenaLabeling(name, slab, plan.bitLens, plan.order, &CompressedDecoder{n: n, w: w})
}
