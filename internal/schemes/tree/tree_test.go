package tree

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTreeSchemeOnTrees(t *testing.T) {
	cases := map[string]*graph.Graph{
		"empty":   graph.Empty(0),
		"single":  graph.Empty(1),
		"edge":    gen.Path(2),
		"path20":  gen.Path(20),
		"star30":  gen.Star(30),
		"rand100": gen.RandomTree(100, 7),
		"forest":  forestFixture(t),
	}
	s := Scheme{}
	for name, g := range cases {
		lab, err := s.Encode(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := lab.Verify(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// forestFixture: two disjoint trees plus isolated vertices.
func forestFixture(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {5, 6}, {6, 7}, {6, 8}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestTreeSchemeRejectsCycles(t *testing.T) {
	if _, err := (Scheme{}).Encode(gen.Cycle(5)); !errors.Is(err, ErrNotForest) {
		t.Errorf("cycle accepted: err = %v", err)
	}
	if _, err := (Scheme{}).Encode(gen.Complete(4)); !errors.Is(err, ErrNotForest) {
		t.Errorf("K4 accepted: err = %v", err)
	}
}

func TestTreeLabelSizeIsTwoLogN(t *testing.T) {
	g := gen.RandomTree(1000, 3)
	lab, err := (Scheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * bitstr.WidthFor(1000)
	st := lab.Stats()
	if st.Min != want || st.Max != want {
		t.Errorf("label sizes [%d,%d], want exactly %d", st.Min, st.Max, want)
	}
}

func TestLabelsFromParentsValidation(t *testing.T) {
	if _, err := LabelsFromParents(3, []int32{-1}); err == nil {
		t.Error("mismatched parent array accepted")
	}
}

func TestTreeDecoderMalformed(t *testing.T) {
	d := NewDecoder(100)
	var short bitstr.Builder
	short.AppendUint(1, 3)
	var ok bitstr.Builder
	ok.AppendUint(1, bitstr.WidthFor(100))
	ok.AppendUint(1, bitstr.WidthFor(100))
	if _, err := d.Adjacent(short.String(), ok.String()); err == nil {
		t.Error("short label accepted")
	}
}

func TestTreeRootSelfParentNotAdjacent(t *testing.T) {
	// Roots encode themselves as parent; a root must not appear adjacent to
	// itself or spuriously to another root.
	g := graph.Empty(4) // four isolated roots
	lab, err := (Scheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			got, err := lab.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got {
				t.Errorf("isolated roots %d,%d reported adjacent", u, v)
			}
		}
	}
}

// Property: on random trees, the scheme agrees with the graph on all pairs.
func TestQuickTreeCorrectness(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 2
		g := gen.RandomTree(n, seed)
		lab, err := (Scheme{}).Encode(g)
		if err != nil {
			return false
		}
		return lab.Verify(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
