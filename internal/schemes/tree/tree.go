// Package tree implements an adjacency labeling scheme for forests.
//
// Two vertices of a rooted forest are adjacent exactly when one is the
// parent of the other, so a label consisting of a vertex's own identifier
// and its parent's identifier (its own for roots) decides adjacency in O(1).
// Labels are 2·ceil(log2 n) bits — a constant factor from the optimal
// log n + O(1) scheme of Alstrup–Dahlgaard–Knudsen (FOCS'15) the paper
// cites; the substitution is documented in DESIGN.md and only affects
// constants in Proposition 5's O(m log n) bound.
package tree

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
)

// ErrNotForest is returned when the input graph contains a cycle.
var ErrNotForest = errors.New("tree: input graph is not a forest")

// Scheme labels forests with parent-pointer labels.
type Scheme struct{}

var _ core.Scheme = Scheme{}

// Name implements core.Scheme.
func (Scheme) Name() string { return "tree-parent" }

// Encode implements core.Scheme. The input must be a forest; each component
// is rooted at its smallest vertex ID.
func (s Scheme) Encode(g *graph.Graph) (*core.Labeling, error) {
	n := g.N()
	if g.M() > n-1 && n > 0 {
		return nil, fmt.Errorf("%w: %d edges on %d vertices", ErrNotForest, g.M(), n)
	}
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = -1
	}
	visited := make([]bool, n)
	var stack []int32
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		stack = append(stack[:0], int32(root))
		for len(stack) > 0 {
			u := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if int(w) == int(parent[u]) {
					continue
				}
				if visited[w] {
					return nil, fmt.Errorf("%w: cycle through vertex %d", ErrNotForest, w)
				}
				visited[w] = true
				parent[w] = int32(u)
				stack = append(stack, w)
			}
		}
	}
	labels, err := LabelsFromParents(n, parent)
	if err != nil {
		return nil, err
	}
	return core.NewLabeling(s.Name(), labels, NewDecoder(n)), nil
}

// LabelsFromParents builds parent-pointer labels directly from a parent
// array (parent[v] = -1 for roots). Exported for the forest-decomposition
// scheme, which already has parents in hand.
func LabelsFromParents(n int, parent []int32) ([]bitstr.String, error) {
	if len(parent) != n {
		return nil, fmt.Errorf("tree: parent array has %d entries for n=%d", len(parent), n)
	}
	w := bitstr.WidthFor(uint64(n))
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendUint(uint64(v), w)
		p := parent[v]
		if p < 0 {
			// Roots store their own ID: self-parenting is unambiguous
			// because simple graphs have no self-loops.
			p = int32(v)
		}
		b.AppendUint(uint64(p), w)
		labels[v] = b.String()
	}
	return labels, nil
}

// Decoder answers adjacency queries over parent-pointer labels; it depends
// only on n.
type Decoder struct {
	w int
}

var _ core.AdjacencyDecoder = (*Decoder)(nil)

// NewDecoder returns the decoder for n-vertex forests.
func NewDecoder(n int) *Decoder { return &Decoder{w: bitstr.WidthFor(uint64(n))} }

// Adjacent implements core.AdjacencyDecoder in O(1).
func (d *Decoder) Adjacent(a, b bitstr.String) (bool, error) {
	ida, pa, err := d.parse(a)
	if err != nil {
		return false, err
	}
	idb, pb, err := d.parse(b)
	if err != nil {
		return false, err
	}
	if ida == idb {
		return false, nil
	}
	return pa == idb || pb == ida, nil
}

func (d *Decoder) parse(s bitstr.String) (id, parent uint64, err error) {
	if s.Len() != 2*d.w {
		return 0, 0, fmt.Errorf("%w: tree label has %d bits, want %d", core.ErrBadLabel, s.Len(), 2*d.w)
	}
	r := bitstr.NewReader(s)
	if id, err = r.ReadUint(d.w); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	if parent, err = r.ReadUint(d.w); err != nil {
		return 0, 0, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	return id, parent, nil
}
