// Package dynamic implements the dynamic-network extension the paper's
// future-work section calls for: a fat/thin adjacency labeling scheme that
// maintains labels under vertex insertions and edge insertions/deletions,
// while counting the communication cost — the number of re-labels and the
// number of label bits rewritten — that the paper says "an analysis is
// required to account for".
//
// # Design
//
// The static scheme's labels break under updates because identifiers encode
// the fat/thin split (fat vertices own the bitmap indexes 0..k-1). The
// dynamic variant decouples the two numbering systems:
//
//	thin label: [0][stable id: w][neighbor stable ids: deg·w]
//	fat label:  [1][stable id: w][fat index: w][bitmap over fat indexes]
//
// Stable ids never change while an epoch lasts, so promoting a vertex to
// fat rewrites only that vertex's label: its thin neighbors keep listing it
// by stable id, and fat/fat adjacency involving the newcomer lives in the
// newcomer's bitmap, which is long enough to cover every older fat index.
// The decoder ORs the two bitmaps (reading out-of-range bits as absent), so
// differently-aged fat labels stay mutually consistent; insertions and
// deletions write the bit on every side long enough to hold it.
//
// Epochs bound the drift: when the vertex count outgrows the identifier
// width or the fat count outgrows its budget, the whole labeling is rebuilt
// from scratch (threshold re-fitted, fat indexes reassigned). Rebuilds are
// triggered by at least a constant-factor growth, so their Θ(n) relabels
// amortize to O(1) per update — the bound experiment E11 measures.
package dynamic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
)

// ErrVertexRange is returned for operations on unknown vertices.
var ErrVertexRange = errors.New("dynamic: vertex out of range")

// ErrEdgeState is returned when adding an existing edge or removing a
// missing one.
var ErrEdgeState = errors.New("dynamic: edge state conflict")

// Stats accumulates the communication cost of the update sequence.
type Stats struct {
	Updates       int64 // AddVertex + AddEdge + RemoveEdge calls
	Relabels      int64 // labels rewritten (the paper's "number of re-labels")
	BitsRewritten int64 // total size of rewritten labels
	Promotions    int64 // thin→fat transitions
	Rebuilds      int64 // full epoch rebuilds
}

// Scheme is a dynamic fat/thin adjacency labeling over a mutable graph.
// The zero value is not usable; construct with New.
type Scheme struct {
	alpha float64

	n      int
	adj    []map[int32]struct{}
	fatIdx []int32 // fat index per vertex, -1 when thin

	w         int // identifier width for this epoch
	capacity  int // vertex capacity for this epoch (2^w)
	tau       int // promotion threshold for this epoch
	fatCount  int
	fatBudget int

	labels []bitstr.String
	dead   []bool // tombstones from RemoveVertex (ids never reused)
	stats  Stats
}

// New returns an empty dynamic labeling for graphs expected to follow a
// power law with the given exponent. initialCapacity sizes the first epoch
// (it grows automatically).
func New(alpha float64, initialCapacity int) (*Scheme, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("dynamic: alpha must be > 1, got %v", alpha)
	}
	if initialCapacity < 2 {
		initialCapacity = 2
	}
	s := &Scheme{alpha: alpha}
	s.setEpoch(initialCapacity, 0)
	return s, nil
}

// setEpoch fixes the epoch parameters for a capacity and current size.
func (s *Scheme) setEpoch(capacity, n int) {
	if capacity < 2 {
		capacity = 2
	}
	s.capacity = capacity
	s.w = bitstr.WidthFor(uint64(capacity))
	if s.w == 0 {
		s.w = 1
	}
	s.tau = s.predictThreshold(n)
	s.fatBudget = s.predictFatBudget(n)
}

// predictThreshold applies the paper's practical prediction
// τ = ceil((n/log n)^(1/α)) to the current size (≥ 2 vertices).
func (s *Scheme) predictThreshold(n int) int {
	if n < 4 {
		return 2
	}
	x := powF(float64(n)/log2F(n), 1/s.alpha)
	t := int(x) + 1
	if t < 2 {
		t = 2
	}
	return t
}

// predictFatBudget bounds the fat count before a rebuild: twice the
// balanced-point estimate n/τ^(α-1), with a generous floor so tiny graphs
// don't thrash. The real graph's tail constant can exceed the ideal
// power law's, so rebuild raises the budget to twice the observed fat
// count — the doubling rule that makes rebuilds amortize to O(1).
func (s *Scheme) predictFatBudget(n int) int {
	if n < 4 {
		return 16
	}
	est := float64(n) / powF(float64(s.tau), s.alpha-1)
	b := int(2*est) + 16
	return b
}

// N returns the current number of vertices.
func (s *Scheme) N() int { return s.n }

// M returns the current number of edges.
func (s *Scheme) M() int {
	total := 0
	for _, a := range s.adj {
		total += len(a)
	}
	return total / 2
}

// Stats returns the accumulated communication cost.
func (s *Scheme) Stats() Stats { return s.stats }

// Threshold returns the current epoch's promotion threshold.
func (s *Scheme) Threshold() int { return s.tau }

// Label returns vertex v's current label.
func (s *Scheme) Label(v int) (bitstr.String, error) {
	if !s.alive(v) {
		return bitstr.String{}, fmt.Errorf("%w: %d of %d", ErrVertexRange, v, s.n)
	}
	return s.labels[v], nil
}

// MaxLabelBits returns the current maximum label size.
func (s *Scheme) MaxLabelBits() int {
	max := 0
	for _, l := range s.labels {
		if l.Len() > max {
			max = l.Len()
		}
	}
	return max
}

// AddVertex adds an isolated vertex and returns its id.
func (s *Scheme) AddVertex() int {
	s.stats.Updates++
	if s.n >= s.capacity {
		s.rebuild(s.capacity * 2)
	}
	v := s.n
	s.n++
	s.adj = append(s.adj, make(map[int32]struct{}))
	s.fatIdx = append(s.fatIdx, -1)
	s.labels = append(s.labels, bitstr.String{})
	s.writeLabel(v)
	return v
}

// AddEdge inserts the undirected edge {u, v}.
func (s *Scheme) AddEdge(u, v int) error {
	if err := s.checkPair(u, v); err != nil {
		return err
	}
	if _, exists := s.adj[u][int32(v)]; exists {
		return fmt.Errorf("%w: edge (%d,%d) already present", ErrEdgeState, u, v)
	}
	s.stats.Updates++
	s.adj[u][int32(v)] = struct{}{}
	s.adj[v][int32(u)] = struct{}{}

	// Relabel the endpoints whose labels store the adjacency: thin labels
	// always change; a fat label changes only for a fat/fat edge (the bit
	// lives in whichever bitmaps are long enough, which writeLabel rebuilds
	// from the adjacency set anyway).
	s.refreshEndpoint(u, v)
	s.refreshEndpoint(v, u)

	// Promotions after both adjacency sets are updated.
	s.maybePromote(u)
	s.maybePromote(v)
	if s.fatCount > s.fatBudget {
		s.rebuild(s.capacity)
	}
	return nil
}

// RemoveVertex deletes vertex v: all its incident edges are removed (with
// the usual relabeling of the surviving endpoints) and the vertex is
// tombstoned — its identifier is never reused within the scheme's lifetime,
// so surviving labels stay valid. Operations on a removed vertex fail with
// ErrVertexRange.
func (s *Scheme) RemoveVertex(v int) error {
	if v < 0 || v >= s.n {
		return fmt.Errorf("%w: %d of %d", ErrVertexRange, v, s.n)
	}
	if s.dead != nil && s.dead[v] {
		return fmt.Errorf("%w: vertex %d already removed", ErrVertexRange, v)
	}
	s.stats.Updates++
	// Detach every incident edge.
	nbrs := make([]int32, 0, len(s.adj[v]))
	for w := range s.adj[v] {
		nbrs = append(nbrs, w)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	for _, w := range nbrs {
		delete(s.adj[v], w)
		delete(s.adj[int(w)], int32(v))
		s.refreshEndpoint(int(w), v)
	}
	if s.dead == nil {
		s.dead = make([]bool, s.capacity)
	}
	for len(s.dead) < s.n {
		s.dead = append(s.dead, false)
	}
	s.dead[v] = true
	if s.fatIdx[v] >= 0 {
		s.fatIdx[v] = -1
	}
	s.labels[v] = bitstr.String{}
	return nil
}

// alive reports whether v exists and has not been removed.
func (s *Scheme) alive(v int) bool {
	if v < 0 || v >= s.n {
		return false
	}
	return s.dead == nil || v >= len(s.dead) || !s.dead[v]
}

// RemoveEdge deletes the undirected edge {u, v}.
func (s *Scheme) RemoveEdge(u, v int) error {
	if err := s.checkPair(u, v); err != nil {
		return err
	}
	if _, exists := s.adj[u][int32(v)]; !exists {
		return fmt.Errorf("%w: edge (%d,%d) not present", ErrEdgeState, u, v)
	}
	s.stats.Updates++
	delete(s.adj[u], int32(v))
	delete(s.adj[v], int32(u))
	// Fat vertices stay fat until the next rebuild (hysteresis keeps
	// deletions cheap); labels are refreshed to drop the edge.
	s.refreshEndpoint(u, v)
	s.refreshEndpoint(v, u)
	return nil
}

func (s *Scheme) checkPair(u, v int) error {
	if !s.alive(u) || !s.alive(v) {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, s.n)
	}
	if u == v {
		return fmt.Errorf("dynamic: self-loop (%d,%d)", u, v)
	}
	return nil
}

// refreshEndpoint rewrites u's label after a change to edge {u, other} if
// the label stores that adjacency (thin: always; fat: only fat/fat edges).
func (s *Scheme) refreshEndpoint(u, other int) {
	if s.fatIdx[u] >= 0 && s.fatIdx[other] < 0 {
		return // fat/thin adjacency lives only in the thin label
	}
	s.writeLabel(u)
}

// maybePromote turns u fat when its degree reaches the epoch threshold.
// Only u's own label changes: thin neighbors keep listing u's stable id,
// and u's new bitmap covers every existing fat index.
func (s *Scheme) maybePromote(u int) {
	if s.fatIdx[u] >= 0 || len(s.adj[u]) < s.tau {
		return
	}
	s.fatIdx[u] = int32(s.fatCount)
	s.fatCount++
	s.stats.Promotions++
	s.writeLabel(u)
}

// writeLabel rebuilds vertex v's label from the current adjacency set and
// charges the relabel to the stats.
func (s *Scheme) writeLabel(v int) {
	var b bitstr.Builder
	if fi := s.fatIdx[v]; fi >= 0 {
		b.AppendBit(true)
		b.AppendUint(uint64(v), s.w)
		b.AppendUint(uint64(fi), s.w)
		// Bitmap over fat indexes 0..fatCount-1 (covers every older vertex).
		vec := bitstr.NewVector(s.fatCount)
		for w := range s.adj[v] {
			if wi := s.fatIdx[w]; wi >= 0 && int(wi) < s.fatCount {
				vec.Set(int(wi))
			}
		}
		vec.Append(&b)
	} else {
		b.AppendBit(false)
		b.AppendUint(uint64(v), s.w)
		// Deterministic neighbor order keeps labels reproducible.
		ids := make([]int, 0, len(s.adj[v]))
		for w := range s.adj[v] {
			ids = append(ids, int(w))
		}
		sort.Ints(ids)
		for _, w := range ids {
			b.AppendUint(uint64(w), s.w)
		}
	}
	s.labels[v] = b.String()
	s.stats.Relabels++
	s.stats.BitsRewritten += int64(s.labels[v].Len())
}

// rebuild starts a new epoch: recompute width/threshold, reassign fat
// indexes by decreasing degree, and rewrite every label.
func (s *Scheme) rebuild(capacity int) {
	s.stats.Rebuilds++
	s.setEpoch(capacity, s.n)
	order := make([]int, s.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(s.adj[order[i]]), len(s.adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	s.fatCount = 0
	for _, v := range order {
		if !s.alive(v) {
			s.fatIdx[v] = -1
			continue
		}
		if len(s.adj[v]) >= s.tau {
			s.fatIdx[v] = int32(s.fatCount)
			s.fatCount++
		} else {
			s.fatIdx[v] = -1
		}
	}
	// Doubling rule: the next fat-overflow rebuild happens only after the
	// fat population doubles, so the Θ(n) relabel cost amortizes.
	if b := 2 * s.fatCount; b > s.fatBudget {
		s.fatBudget = b
	}
	for v := 0; v < s.n; v++ {
		if !s.alive(v) {
			continue
		}
		s.writeLabel(v)
	}
}

// Adjacent answers a query through the current labels (and only the
// labels; see Decoder for the label-pair algorithm).
func (s *Scheme) Adjacent(u, v int) (bool, error) {
	lu, err := s.Label(u)
	if err != nil {
		return false, err
	}
	lv, err := s.Label(v)
	if err != nil {
		return false, err
	}
	return (&Decoder{W: s.w}).Adjacent(lu, lv)
}

// Snapshot exports the current graph (for verification in tests and
// experiments).
func (s *Scheme) Snapshot() *graph.Graph {
	b := graph.NewBuilder(s.n)
	for u := 0; u < s.n; u++ {
		for w := range s.adj[u] {
			if int(w) > u {
				// Adjacency sets are symmetric by construction.
				if err := b.AddEdge(u, int(w)); err != nil {
					// Unreachable: u and w are in range and u != w.
					panic(fmt.Sprintf("dynamic: snapshot: %v", err))
				}
			}
		}
	}
	return b.Build()
}

// Decoder answers adjacency from two dynamic labels; it depends only on the
// epoch's identifier width W.
type Decoder struct {
	W int
}

var _ core.AdjacencyDecoder = (*Decoder)(nil)

type parsed struct {
	fat    bool
	id     uint64
	fatIdx uint64
	body   int // bit offset of neighbor list / bitmap
	s      bitstr.String
}

func (d *Decoder) parse(s bitstr.String) (parsed, error) {
	if d.W < 1 {
		return parsed{}, fmt.Errorf("%w: decoder width %d", core.ErrBadLabel, d.W)
	}
	r := bitstr.NewReader(s)
	fat, err := r.ReadBit()
	if err != nil {
		return parsed{}, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	id, err := r.ReadUint(d.W)
	if err != nil {
		return parsed{}, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	p := parsed{fat: fat, id: id, body: 1 + d.W, s: s}
	if fat {
		fi, err := r.ReadUint(d.W)
		if err != nil {
			return parsed{}, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
		}
		p.fatIdx = fi
		p.body = 1 + 2*d.W
	} else if body := s.Len() - p.body; body%d.W != 0 {
		return parsed{}, fmt.Errorf("%w: thin body %d bits, id width %d", core.ErrBadLabel, body, d.W)
	}
	return p, nil
}

// Adjacent implements core.AdjacencyDecoder for dynamic labels: thin labels
// are scanned for the partner's stable id; fat/fat pairs OR the two bitmaps
// (bits beyond a bitmap's length read as absent, which is what makes labels
// written in different "generations" of the same epoch mutually consistent).
func (d *Decoder) Adjacent(a, b bitstr.String) (bool, error) {
	pa, err := d.parse(a)
	if err != nil {
		return false, err
	}
	pb, err := d.parse(b)
	if err != nil {
		return false, err
	}
	if pa.id == pb.id {
		return false, nil
	}
	switch {
	case !pa.fat:
		return d.thinContains(pa, pb.id)
	case !pb.fat:
		return d.thinContains(pb, pa.id)
	default:
		hit, err := d.bitmapBit(pa, pb.fatIdx)
		if err != nil || hit {
			return hit, err
		}
		return d.bitmapBit(pb, pa.fatIdx)
	}
}

func (d *Decoder) thinContains(p parsed, target uint64) (bool, error) {
	r := bitstr.NewReader(p.s)
	if err := r.Seek(p.body); err != nil {
		return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	for r.Remaining() >= d.W {
		v, err := r.ReadUint(d.W)
		if err != nil {
			return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
		}
		if v == target {
			return true, nil
		}
	}
	return false, nil
}

func (d *Decoder) bitmapBit(p parsed, i uint64) (bool, error) {
	k := p.s.Len() - p.body
	if i >= uint64(k) {
		return false, nil // out of range = written before that fat index existed
	}
	bit, err := p.s.Bit(p.body + int(i))
	if err != nil {
		return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	return bit, nil
}

func powF(base, exp float64) float64 { return math.Pow(base, exp) }

func log2F(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Log2(float64(n))
}
