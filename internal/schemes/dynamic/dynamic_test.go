package dynamic

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
)

// verifyAll checks the dynamic labeling against its own snapshot on every
// vertex pair.
func verifyAll(t *testing.T, s *Scheme) {
	t.Helper()
	g := s.Snapshot()
	for u := 0; u < s.N(); u++ {
		for v := 0; v < s.N(); v++ {
			got, err := s.Adjacent(u, v)
			if err != nil {
				t.Fatalf("Adjacent(%d,%d): %v", u, v, err)
			}
			if want := g.HasEdge(u, v); got != want {
				t.Fatalf("Adjacent(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func newScheme(t *testing.T, alpha float64, capacity int) *Scheme {
	t.Helper()
	s, err := New(alpha, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1.0, 8); err == nil {
		t.Error("alpha=1 accepted")
	}
	s, err := New(2.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 0 {
		t.Errorf("fresh scheme has %d vertices", s.N())
	}
}

func TestAddVerticesAndEdges(t *testing.T) {
	s := newScheme(t, 2.5, 8)
	for i := 0; i < 6; i++ {
		if got := s.AddVertex(); got != i {
			t.Fatalf("AddVertex returned %d, want %d", got, i)
		}
	}
	mustEdge := func(u, v int) {
		t.Helper()
		if err := s.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	mustEdge(1, 2)
	mustEdge(0, 5)
	if s.M() != 3 {
		t.Errorf("M = %d, want 3", s.M())
	}
	verifyAll(t, s)
}

func TestEdgeStateErrors(t *testing.T) {
	s := newScheme(t, 2.5, 8)
	s.AddVertex()
	s.AddVertex()
	if err := s.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := s.AddEdge(0, 5); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out of range err = %v", err)
	}
	if err := s.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(1, 0); !errors.Is(err, ErrEdgeState) {
		t.Errorf("duplicate edge err = %v", err)
	}
	if err := s.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveEdge(0, 1); !errors.Is(err, ErrEdgeState) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestCapacityGrowth(t *testing.T) {
	s := newScheme(t, 2.5, 2)
	for i := 0; i < 100; i++ {
		s.AddVertex()
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Stats().Rebuilds == 0 {
		t.Error("capacity growth should have triggered rebuilds")
	}
	// Labels must still decode after the growth rebuilds.
	if err := s.AddEdge(0, 99); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Adjacent(0, 99)
	if err != nil || !ok {
		t.Fatalf("Adjacent(0,99) = %v, %v", ok, err)
	}
}

func TestPromotionKeepsQueriesCorrect(t *testing.T) {
	// Grow a star until the hub crosses the threshold; verify before and
	// after the promotion.
	s := newScheme(t, 2.5, 64)
	hub := s.AddVertex()
	for i := 0; i < 40; i++ {
		leaf := s.AddVertex()
		if err := s.AddEdge(hub, leaf); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			verifyAll(t, s)
		}
	}
	if s.Stats().Promotions == 0 {
		t.Error("hub never promoted despite degree 40")
	}
	verifyAll(t, s)
}

func TestFatFatAcrossGenerations(t *testing.T) {
	// Two hubs promoted at different times, then connected, then
	// disconnected: the OR-of-bitmaps decode must stay exact throughout.
	s := newScheme(t, 2.5, 256)
	hubA := s.AddVertex()
	hubB := s.AddVertex()
	var leaves []int
	for i := 0; i < 60; i++ {
		leaves = append(leaves, s.AddVertex())
	}
	// Promote A first.
	for i := 0; i < 30; i++ {
		if err := s.AddEdge(hubA, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Then B.
	for i := 30; i < 60; i++ {
		if err := s.AddEdge(hubB, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Promotions < 2 {
		t.Fatalf("expected both hubs promoted, got %d promotions", s.Stats().Promotions)
	}
	if err := s.AddEdge(hubA, hubB); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Adjacent(hubA, hubB)
	if err != nil || !ok {
		t.Fatalf("fat/fat edge not decoded: %v, %v", ok, err)
	}
	if err := s.RemoveEdge(hubA, hubB); err != nil {
		t.Fatal(err)
	}
	ok, err = s.Adjacent(hubA, hubB)
	if err != nil || ok {
		t.Fatalf("fat/fat edge still decoded after removal: %v, %v", ok, err)
	}
	verifyAll(t, s)
}

func TestRemoveEdgeHysteresis(t *testing.T) {
	// Dropping a fat vertex below the threshold must not corrupt queries
	// (the vertex stays fat until the next rebuild).
	s := newScheme(t, 2.5, 128)
	hub := s.AddVertex()
	var leaves []int
	for i := 0; i < 30; i++ {
		leaves = append(leaves, s.AddVertex())
		if err := s.AddEdge(hub, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, leaf := range leaves[:25] {
		if err := s.RemoveEdge(hub, leaf); err != nil {
			t.Fatal(err)
		}
	}
	verifyAll(t, s)
}

func TestDynamicMatchesStaticAdjacency(t *testing.T) {
	// Build a Chung–Lu graph edge-by-edge through the dynamic scheme; the
	// final labeling must agree with the graph everywhere.
	g, err := gen.ChungLuPowerLaw(300, 2.5, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := newScheme(t, 2.5, 4)
	for i := 0; i < g.N(); i++ {
		s.AddVertex()
	}
	g.Edges(func(u, v int) {
		if err := s.AddEdge(u, v); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
		}
	})
	verifyAll(t, s)
}

func TestAmortizedRelabels(t *testing.T) {
	// The headline dynamic claim: O(1) amortized relabels per update. Grow
	// a preferential-attachment graph through the scheme and check the
	// ratio stays small.
	g, err := gen.BarabasiAlbert(2000, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := newScheme(t, 3.0, 4)
	for i := 0; i < g.N(); i++ {
		s.AddVertex()
	}
	g.Edges(func(u, v int) {
		if err := s.AddEdge(u, v); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	})
	st := s.Stats()
	ratio := float64(st.Relabels) / float64(st.Updates)
	// Each edge insertion rewrites at most 2 labels plus amortized
	// promotion/rebuild cost; allow generous headroom.
	if ratio > 8 {
		t.Errorf("amortized relabels per update = %.2f, want O(1) (stats: %+v)", ratio, st)
	}
	if st.Rebuilds == 0 {
		t.Error("expected at least one rebuild during growth")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newScheme(t, 2.5, 8)
	s.AddVertex()
	s.AddVertex()
	if err := s.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Updates != 3 {
		t.Errorf("Updates = %d, want 3", st.Updates)
	}
	if st.Relabels < 3 { // 2 vertex labels + 2 edge endpoint relabels
		t.Errorf("Relabels = %d, want >= 3", st.Relabels)
	}
	if st.BitsRewritten <= 0 {
		t.Errorf("BitsRewritten = %d", st.BitsRewritten)
	}
}

func TestLabelOutOfRange(t *testing.T) {
	s := newScheme(t, 2.5, 8)
	if _, err := s.Label(0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("Label on empty err = %v", err)
	}
}

func TestMaxLabelTracksStaticScale(t *testing.T) {
	// After incremental growth the max label should be within a small
	// factor of what a fresh static encode of the same graph produces.
	g, err := gen.ChungLuPowerLaw(1000, 2.5, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	s := newScheme(t, 2.5, 4)
	for i := 0; i < g.N(); i++ {
		s.AddVertex()
	}
	g.Edges(func(u, v int) {
		if err := s.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	})
	dynMax := s.MaxLabelBits()
	// Static reference at the paper's fitted threshold.
	staticLab, err := core.NewPowerLawSchemeAuto().Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	staticMax := staticLab.Stats().Max
	if dynMax > 4*staticMax {
		t.Errorf("dynamic max label %d vs static %d: drift too large", dynMax, staticMax)
	}
}

// Property: arbitrary interleaved add/remove sequences keep decode exact.
func TestQuickRandomUpdates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(2.5, 4)
		if err != nil {
			return false
		}
		n := 18
		for i := 0; i < n; i++ {
			s.AddVertex()
		}
		present := map[[2]int]bool{}
		for step := 0; step < 150; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if present[key] {
				if err := s.RemoveEdge(u, v); err != nil {
					return false
				}
				delete(present, key)
			} else {
				if err := s.AddEdge(u, v); err != nil {
					return false
				}
				present[key] = true
			}
		}
		g := s.Snapshot()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				got, err := s.Adjacent(u, v)
				if err != nil || got != g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRemoveVertex(t *testing.T) {
	s := newScheme(t, 2.5, 32)
	for i := 0; i < 10; i++ {
		s.AddVertex()
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {1, 5}, {5, 6}} {
		if err := s.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RemoveVertex(1); err != nil {
		t.Fatal(err)
	}
	// Operations on the tombstoned vertex fail.
	if _, err := s.Label(1); !errors.Is(err, ErrVertexRange) {
		t.Errorf("Label on removed vertex err = %v", err)
	}
	if err := s.AddEdge(1, 7); !errors.Is(err, ErrVertexRange) {
		t.Errorf("AddEdge on removed vertex err = %v", err)
	}
	if err := s.RemoveVertex(1); !errors.Is(err, ErrVertexRange) {
		t.Errorf("double RemoveVertex err = %v", err)
	}
	// Survivors decode correctly: 0-1, 1-2, 1-5 edges are gone; 2-3 and 5-6 remain.
	g := s.Snapshot()
	if g.HasEdge(0, 1) || g.HasEdge(1, 2) || g.HasEdge(1, 5) {
		t.Error("edges incident to removed vertex survive in snapshot")
	}
	for _, pair := range [][2]int{{2, 3}, {5, 6}, {0, 2}, {3, 5}} {
		got, err := s.Adjacent(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != g.HasEdge(pair[0], pair[1]) {
			t.Fatalf("post-removal query (%d,%d) wrong", pair[0], pair[1])
		}
	}
}

func TestRemoveFatVertex(t *testing.T) {
	// Removing a hub that had been promoted must leave fat/fat decode for
	// the others intact.
	s := newScheme(t, 2.5, 256)
	hubA := s.AddVertex()
	hubB := s.AddVertex()
	var leaves []int
	for i := 0; i < 60; i++ {
		leaves = append(leaves, s.AddVertex())
	}
	for i := 0; i < 30; i++ {
		if err := s.AddEdge(hubA, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 30; i < 60; i++ {
		if err := s.AddEdge(hubB, leaves[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddEdge(hubA, hubB); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveVertex(hubA); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Adjacent(hubB, leaves[30])
	if err != nil || !ok {
		t.Fatalf("surviving hub broken: %v %v", ok, err)
	}
	// Survive a rebuild with tombstones present.
	for i := 0; i < 300; i++ {
		s.AddVertex()
	}
	if s.Stats().Rebuilds == 0 {
		t.Fatal("expected rebuild")
	}
	ok, err = s.Adjacent(hubB, leaves[31])
	if err != nil || !ok {
		t.Fatalf("post-rebuild query broken: %v %v", ok, err)
	}
}

func TestRemoveVertexThenChurn(t *testing.T) {
	// Interleave removals with edge churn and verify decode at the end.
	s := newScheme(t, 2.5, 16)
	for i := 0; i < 30; i++ {
		s.AddVertex()
	}
	rng := rand.New(rand.NewSource(6))
	removed := map[int]bool{}
	for step := 0; step < 400; step++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u == v || removed[u] || removed[v] {
			continue
		}
		switch step % 7 {
		case 6:
			if len(removed) < 8 {
				if err := s.RemoveVertex(u); err != nil {
					t.Fatal(err)
				}
				removed[u] = true
			}
		default:
			if ok, err := s.Adjacent(u, v); err == nil && !ok {
				if err := s.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else if err == nil && ok {
				if err := s.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g := s.Snapshot()
	for u := 0; u < 30; u++ {
		for v := 0; v < 30; v++ {
			if removed[u] || removed[v] {
				continue
			}
			got, err := s.Adjacent(u, v)
			if err != nil {
				t.Fatalf("(%d,%d): %v", u, v, err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("(%d,%d) decode wrong after churn+removals", u, v)
			}
		}
	}
}
