package dynamic_test

import (
	"fmt"
	"log"

	"repro/internal/schemes/dynamic"
)

// Example maintains labels through inserts, a deletion and a vertex
// removal; every query is answered from the current labels.
func Example() {
	s, err := dynamic.New(2.5, 8)
	if err != nil {
		log.Fatal(err)
	}
	a, b, c := s.AddVertex(), s.AddVertex(), s.AddVertex()
	if err := s.AddEdge(a, b); err != nil {
		log.Fatal(err)
	}
	if err := s.AddEdge(b, c); err != nil {
		log.Fatal(err)
	}
	ab, _ := s.Adjacent(a, b)
	ac, _ := s.Adjacent(a, c)
	fmt.Println(ab, ac)

	if err := s.RemoveEdge(a, b); err != nil {
		log.Fatal(err)
	}
	ab, _ = s.Adjacent(a, b)
	fmt.Println(ab)

	if err := s.RemoveVertex(c); err != nil {
		log.Fatal(err)
	}
	_, err = s.Adjacent(b, c)
	fmt.Println(err != nil) // queries on removed vertices fail
	// Output:
	// true false
	// false
	// true
}
