package onequery

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestOneQueryCorrectness(t *testing.T) {
	ba, err := gen.BarabasiAlbert(120, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gen.ChungLuPowerLaw(300, 2.5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"empty":  graph.Empty(0),
		"single": graph.Empty(1),
		"edge":   gen.Path(2),
		"path":   gen.Path(25),
		"star":   gen.Star(40),
		"K8":     gen.Complete(8),
		"er":     gen.ErdosRenyi(100, 0.07, 3),
		"ba":     ba,
		"cl":     cl,
	}
	s := Scheme{Seed: 42}
	for name, g := range cases {
		enc, err := s.Encode(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := enc.Verify(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestOneQueryLogarithmicLabels(t *testing.T) {
	// The headline: on sparse graphs labels are O(log n) — orders of
	// magnitude below the Ω(n^(1/α)) bound for 2-label schemes.
	g, err := gen.ChungLuPowerLaw(20000, 2.5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Scheme{Seed: 1}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstr.WidthFor(uint64(g.N()))
	st := enc.Stats()
	// Max label = w + (tuples at the busiest owner)·2w. The FKS slot space
	// is ≤ 4m + n slots spread round-robin, so the busiest owner holds
	// O(m/n) tuples — single digits here.
	if st.Max > w+2*w*16 {
		t.Errorf("max 1-query label %d bits; expected O(log n) (w=%d)", st.Max, w)
	}
}

func TestOneQueryExplicitFetch(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.12, 5)
	enc, err := Scheme{Seed: 3}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	fetch := func(v int) (bitstr.String, error) {
		fetches++
		return enc.Label(v)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			lu, err := enc.Label(u)
			if err != nil {
				t.Fatal(err)
			}
			lv, err := enc.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			fetches = 0
			got, err := enc.Dec.Adjacent(lu, lv, fetch)
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("(%d,%d): got %v", u, v, got)
			}
			if fetches > 1 {
				t.Fatalf("(%d,%d): decoder fetched %d labels, may fetch at most 1", u, v, fetches)
			}
		}
	}
}

func TestOneQueryFetchFailure(t *testing.T) {
	g := gen.Path(10)
	enc, err := Scheme{Seed: 3}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := enc.Label(0)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := enc.Label(1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("network down")
	_, err = enc.Dec.Adjacent(l0, l1, func(int) (bitstr.String, error) {
		return bitstr.String{}, boom
	})
	if !errors.Is(err, ErrNoFetch) {
		t.Errorf("err = %v, want ErrNoFetch", err)
	}
}

func TestOneQueryOwnerInRange(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.1, 7)
	enc, err := Scheme{Seed: 4}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if o := enc.Dec.Owner(u, v); o < 0 || o >= g.N() {
				t.Fatalf("Owner(%d,%d) = %d", u, v, o)
			}
		}
	}
}

func TestOneQuerySelfQuery(t *testing.T) {
	g := gen.Complete(12)
	enc, err := Scheme{Seed: 8}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		got, err := enc.Adjacent(v, v)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("self-adjacency at %d", v)
		}
	}
}

func TestQuickOneQuery(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(35, 0.2, seed)
		enc, err := Scheme{Seed: seed}.Encode(g)
		if err != nil {
			return false
		}
		return enc.Verify(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
