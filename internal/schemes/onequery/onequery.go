// Package onequery implements the paper's 1-query adjacency labeling scheme
// (Section 6): labels are O(log n) bits for sparse — hence power-law —
// graphs, at the price of letting the decoder fetch one additional label.
//
// Every edge {u,v} is hashed by an FKS perfect hash to a slot, and the slot
// owner (slot mod n) stores the tuple <u,v> in its label. To answer a query
// the decoder hashes the two queried identifiers, fetches the owner's label
// (the "1 query"), and scans its constant-size tuple list. Because the FKS
// slot space is linear in the edge count, each vertex owns O(1) slots and
// labels stay at O(log n) bits.
//
// Deviation noted in DESIGN.md: the shared decoder description (the FKS
// function table) is Θ(n) machine words here, whereas the paper sketches a
// hash description of O(log n) bits; per-label sizes — the quantity the
// scheme is about — match the paper.
package onequery

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hashing"
)

// ErrNoFetch is returned when the decoder cannot fetch the third label.
var ErrNoFetch = errors.New("onequery: label fetch failed")

// Scheme is the 1-query adjacency labeling scheme.
type Scheme struct {
	// Seed drives the perfect-hash construction; fixed for reproducibility.
	Seed int64
}

// Name identifies the scheme in experiment output.
func (Scheme) Name() string { return "onequery" }

// Encode labels g. The returned Encoded bundles the labels with the decoder
// holding the shared hash description.
func (s Scheme) Encode(g *graph.Graph) (*Encoded, error) {
	n := g.N()
	keys := make([]uint64, 0, g.M())
	g.Edges(func(u, v int) {
		keys = append(keys, edgeKey(n, u, v))
	})
	ph, err := hashing.Build(keys, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("onequery: build hash: %w", err)
	}
	// Distribute tuples to slot owners.
	tuples := make([][][2]int32, n)
	g.Edges(func(u, v int) {
		owner := 0
		if n > 0 {
			owner = ph.Slot(edgeKey(n, u, v)) % n
		}
		tuples[owner] = append(tuples[owner], [2]int32{int32(u), int32(v)})
	})
	w := bitstr.WidthFor(uint64(n))
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendUint(uint64(v), w)
		for _, t := range tuples[v] {
			b.AppendUint(uint64(t[0]), w)
			b.AppendUint(uint64(t[1]), w)
		}
		labels[v] = b.String()
	}
	dec := &Decoder{ph: ph, n: n, w: w}
	return &Encoded{
		Labeling: core.NewLabeling(s.Name(), labels, &fetchAdapter{dec: dec, labels: labels}),
		Dec:      dec,
	}, nil
}

// Encoded is the result of encoding: labels plus the 1-query decoder.
type Encoded struct {
	*core.Labeling
	Dec *Decoder
}

// DescriptionBytes returns the size of the serialized shared decoder
// description (the FKS table). The paper sketches an O(log n)-bit
// description for its chaining construction; this measures what the
// concrete FKS realization costs (Θ(n) words), so experiments can report
// the deviation honestly.
func (e *Encoded) DescriptionBytes() (int, error) {
	data, err := e.Dec.ph.MarshalBinary()
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

func edgeKey(n, u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(n) + uint64(v)
}

// Decoder answers 1-query adjacency: it reads the two labels, determines
// the owner vertex of the hypothetical edge, and asks the caller for that
// owner's label.
type Decoder struct {
	ph *hashing.PerfectHash
	n  int
	w  int
}

// Owner returns the vertex whose label would store the edge {u, v}.
func (d *Decoder) Owner(u, v int) int {
	if d.n == 0 {
		return 0
	}
	return d.ph.Slot(edgeKey(d.n, u, v)) % d.n
}

// Adjacent decides adjacency of the vertices labeled a and b; fetch is
// called at most once, with the ID of the third vertex whose label is
// needed.
func (d *Decoder) Adjacent(a, b bitstr.String, fetch func(v int) (bitstr.String, error)) (bool, error) {
	idA, err := d.ownID(a)
	if err != nil {
		return false, err
	}
	idB, err := d.ownID(b)
	if err != nil {
		return false, err
	}
	if idA == idB {
		return false, nil
	}
	owner := d.Owner(int(idA), int(idB))
	third, err := fetch(owner)
	if err != nil {
		return false, fmt.Errorf("%w: vertex %d: %v", ErrNoFetch, owner, err)
	}
	return d.labelContainsTuple(third, idA, idB)
}

func (d *Decoder) ownID(s bitstr.String) (uint64, error) {
	if s.Len() < d.w {
		return 0, fmt.Errorf("%w: onequery label of %d bits, want >= %d", core.ErrBadLabel, s.Len(), d.w)
	}
	r := bitstr.NewReader(s)
	return r.ReadUint(d.w)
}

func (d *Decoder) labelContainsTuple(s bitstr.String, idA, idB uint64) (bool, error) {
	if idA > idB {
		idA, idB = idB, idA
	}
	body := s.Len() - d.w
	if d.w == 0 || body < 0 || body%(2*d.w) != 0 {
		return false, fmt.Errorf("%w: onequery body of %d bits", core.ErrBadLabel, body)
	}
	r := bitstr.NewReader(s)
	if err := r.Seek(d.w); err != nil {
		return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	for cnt := body / (2 * d.w); cnt > 0; cnt-- {
		u, err := r.ReadUint(d.w)
		if err != nil {
			return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
		}
		v, err := r.ReadUint(d.w)
		if err != nil {
			return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
		}
		if u == idA && v == idB {
			return true, nil
		}
	}
	return false, nil
}

// fetchAdapter exposes the 1-query decoder through the two-label
// core.AdjacencyDecoder interface by serving the third-label fetch from the
// stored label slice. This models the distributed setting where the decoder
// can request one extra label from the network.
type fetchAdapter struct {
	dec    *Decoder
	labels []bitstr.String
}

var _ core.AdjacencyDecoder = (*fetchAdapter)(nil)

func (f *fetchAdapter) Adjacent(a, b bitstr.String) (bool, error) {
	return f.dec.Adjacent(a, b, func(v int) (bitstr.String, error) {
		if v < 0 || v >= len(f.labels) {
			return bitstr.String{}, fmt.Errorf("vertex %d out of range", v)
		}
		return f.labels[v], nil
	})
}
