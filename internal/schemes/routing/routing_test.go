package routing

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func encode(t *testing.T, g *graph.Graph, k int) *Labeling {
	t.Helper()
	lab, err := (Scheme{K: k}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestEncodeValidation(t *testing.T) {
	if _, err := (Scheme{K: 0}).Encode(gen.Path(4)); err == nil {
		t.Error("K=0 accepted")
	}
}

// checkRoutes verifies that every pair in the same component routes
// successfully and that the realized path length matches TreeDist (and is
// at least the true distance).
func checkRoutes(t *testing.T, g *graph.Graph, k int) {
	t.Helper()
	lab := encode(t, g, k)
	dec := lab.Decoder()
	comp, _ := g.ConnectedComponents()
	for u := 0; u < g.N(); u++ {
		truth := g.BFS(u)
		for v := 0; v < g.N(); v++ {
			lu, err := lab.Label(u)
			if err != nil {
				t.Fatal(err)
			}
			lv, err := lab.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			if comp[u] != comp[v] {
				if _, err := dec.TreeDist(lu, lv); !errors.Is(err, ErrUnreachable) {
					t.Fatalf("cross-component pair (%d,%d) err = %v", u, v, err)
				}
				continue
			}
			td, err := dec.TreeDist(lu, lv)
			if err != nil {
				t.Fatalf("TreeDist(%d,%d): %v", u, v, err)
			}
			if td < truth[v] {
				t.Fatalf("TreeDist(%d,%d) = %d below true distance %d", u, v, td, truth[v])
			}
			path, err := lab.Route(u, v)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", u, v, err)
			}
			// Path must be a real walk in g ending at v.
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("Route(%d,%d) endpoints wrong: %v", u, v, path)
			}
			for i := 1; i < len(path); i++ {
				if !g.HasEdge(path[i-1], path[i]) {
					t.Fatalf("Route(%d,%d) uses non-edge (%d,%d)", u, v, path[i-1], path[i])
				}
			}
			if hops := len(path) - 1; hops > td {
				t.Fatalf("Route(%d,%d) took %d hops, TreeDist promised %d", u, v, hops, td)
			}
		}
	}
}

func TestRoutingSmallGraphs(t *testing.T) {
	cl, err := gen.ChungLuPowerLaw(120, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := gen.BarabasiAlbert(100, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"path":  gen.Path(15),
		"star":  gen.Star(20),
		"cycle": gen.Cycle(12),
		"grid":  gen.Grid(5, 5),
		"er":    gen.ErdosRenyi(60, 0.08, 2), // possibly disconnected
		"cl":    cl,
		"ba":    ba,
	}
	for name, g := range cases {
		for _, k := range []int{1, 2, 4} {
			t.Run(name, func(t *testing.T) { checkRoutes(t, g, k) })
		}
	}
}

func TestRoutingSelf(t *testing.T) {
	g := gen.Path(5)
	lab := encode(t, g, 1)
	path, err := lab.Route(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != 2 {
		t.Errorf("self route = %v", path)
	}
}

func TestMoreTreesReduceStretch(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(1500, 2.3, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	stretch := func(k int) int {
		lab := encode(t, g, k)
		dec := lab.Decoder()
		total := 0
		for u := 0; u < g.N(); u += 97 {
			truth := g.BFS(u)
			for v := 0; v < g.N(); v += 131 {
				if truth[v] < 0 || u == v {
					continue
				}
				lu, err := lab.Label(u)
				if err != nil {
					t.Fatal(err)
				}
				lv, err := lab.Label(v)
				if err != nil {
					t.Fatal(err)
				}
				td, err := dec.TreeDist(lu, lv)
				if err != nil {
					t.Fatal(err)
				}
				total += td - truth[v]
			}
		}
		return total
	}
	s1, s8 := stretch(1), stretch(8)
	if s8 > s1 {
		t.Errorf("8 trees gave total stretch %d > 1 tree's %d", s8, s1)
	}
}

func TestCoreRoots(t *testing.T) {
	g := gen.Star(10)
	roots := (Scheme{K: 1}).CoreRoots(g)
	if len(roots) != 1 || roots[0] != 0 {
		t.Errorf("core of star = %v, want [0]", roots)
	}
	if got := (Scheme{K: 99}).CoreRoots(gen.Path(5)); len(got) != 5 {
		t.Errorf("K clamping failed: %v", got)
	}
}

func TestLabelSizesSmallWorld(t *testing.T) {
	// On a BA graph labels are ≈ (avg depth · k · log n): comfortably below
	// the adjacency fat/thin labels and flat-ish in n.
	g, err := gen.BarabasiAlbert(5000, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	lab := encode(t, g, 4)
	_, max, _ := lab.Stats()
	// Depth ≤ diameter ≈ 6, so max ≈ 13·(1 + 4·7) ≈ 380 bits.
	if max > 1500 {
		t.Errorf("routing labels unexpectedly large: %d bits", max)
	}
}

func TestQuickRoutingCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 0.12, seed)
		lab, err := (Scheme{K: 2}).Encode(g)
		if err != nil {
			return false
		}
		comp, _ := g.ConnectedComponents()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if comp[u] != comp[v] || u == v {
					continue
				}
				path, err := lab.Route(u, v)
				if err != nil || path[len(path)-1] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
