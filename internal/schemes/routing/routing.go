// Package routing implements a compact routing labeling scheme for
// power-law graphs in the style of Brady–Cowen (cited by the paper's
// related work as the routing counterpart of its adjacency schemes): BFS
// trees are grown from the k highest-degree "core" vertices, every vertex's
// label stores its root paths in those trees, and packets are routed along
// the tree that minimizes the tree distance computable from the two labels
// alone. On power-law graphs the core is a few hops from everything
// (Chung–Lu's Θ(log n) diameter), so labels are O(k·log²n) bits and the
// routes have small *additive* stretch — the Brady–Cowen regime.
//
// Substitution note (see DESIGN.md): Brady–Cowen's full construction uses
// interlaced spanning trees over a core set with provable additive stretch
// bounds; this package implements the same architecture (core + tree
// cover + root-path routing) with plain BFS trees, which preserves the
// label shape and the experimental behaviour (experiment E17) without the
// paper-specific tree surgery.
package routing

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// ErrBadLabel is returned when a routing label cannot be parsed.
var ErrBadLabel = errors.New("routing: malformed label")

// ErrUnreachable is returned when no tree connects the queried pair.
var ErrUnreachable = errors.New("routing: no common tree connects the pair")

// Scheme builds core-tree routing labels.
type Scheme struct {
	// K is the number of core trees (BFS trees from the K highest-degree
	// vertices). More trees mean bigger labels and smaller stretch.
	K int
}

// Name identifies the scheme in experiment output.
func (s Scheme) Name() string { return fmt.Sprintf("routing-core%d", s.K) }

// Labeling holds per-vertex routing labels.
type Labeling struct {
	labels []bitstr.String
	dec    *Decoder
}

// N returns the number of labeled vertices.
func (l *Labeling) N() int { return len(l.labels) }

// Label returns vertex v's label.
func (l *Labeling) Label(v int) (bitstr.String, error) {
	if v < 0 || v >= len(l.labels) {
		return bitstr.String{}, fmt.Errorf("routing: vertex %d of %d", v, len(l.labels))
	}
	return l.labels[v], nil
}

// Decoder returns the label-pair decoder.
func (l *Labeling) Decoder() *Decoder { return l.dec }

// Stats reports label-size statistics in bits.
func (l *Labeling) Stats() (min, max int, mean float64) {
	if len(l.labels) == 0 {
		return 0, 0, 0
	}
	min = l.labels[0].Len()
	var total int64
	for _, s := range l.labels {
		n := s.Len()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += int64(n)
	}
	return min, max, float64(total) / float64(len(l.labels))
}

// Encode builds the labels.
//
// Label layout (w = ceil(log2 n), k trees):
//
//	[own id: w] then k sections of [path length ℓ: γ-code][path ids: ℓ·w]
//
// where the path runs from the tree root down to the vertex itself
// (inclusive), or ℓ = 0 if the vertex is outside the tree's component.
func (s Scheme) Encode(g *graph.Graph) (*Labeling, error) {
	if s.K < 1 {
		return nil, fmt.Errorf("routing: K must be >= 1, got %d", s.K)
	}
	n := g.N()
	k := s.K
	if k > n && n > 0 {
		k = n
	}
	// Core = top-k degrees, plus one extra root per component the core
	// trees do not reach, so that every connected pair is routable.
	order := g.VerticesByDegreeDesc()
	var roots []int
	for i := 0; i < k && i < len(order); i++ {
		roots = append(roots, order[i])
	}
	buildTree := func(r int) []int32 {
		par := make([]int32, n)
		for i := range par {
			par[i] = -1
		}
		par[r] = int32(r) // root is its own parent
		queue := []int32{int32(r)}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, wv := range g.Neighbors(int(u)) {
				if par[wv] == -1 {
					par[wv] = u
					queue = append(queue, wv)
				}
			}
		}
		return par
	}
	var parents [][]int32
	covered := make([]bool, n)
	for _, r := range roots {
		par := buildTree(r)
		for v := range par {
			if par[v] != -1 {
				covered[v] = true
			}
		}
		parents = append(parents, par)
	}
	// Cover the remaining components, highest-degree vertex first (the
	// degree-descending order makes root selection deterministic).
	for _, v := range order {
		if covered[v] {
			continue
		}
		par := buildTree(v)
		for u := range par {
			if par[u] != -1 {
				covered[u] = true
			}
		}
		parents = append(parents, par)
		roots = append(roots, v)
	}

	w := bitstr.WidthFor(uint64(n))
	if w == 0 {
		w = 1
	}
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	path := make([]int32, 0, 64)
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendUint(uint64(v), w)
		for t := range parents {
			par := parents[t]
			path = path[:0]
			if par[v] != -1 {
				// Walk up to the root, then reverse.
				x := int32(v)
				for {
					path = append(path, x)
					if int(par[x]) == int(x) {
						break
					}
					x = par[x]
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
			}
			b.AppendGamma0(uint64(len(path)))
			for _, x := range path {
				b.AppendUint(uint64(x), w)
			}
		}
		labels[v] = b.String()
	}
	return &Labeling{labels: labels, dec: &Decoder{n: n, w: w, k: len(roots)}}, nil
}

// Decoder computes next hops and tree distances from two labels alone.
type Decoder struct {
	n, w, k int
}

type parsed struct {
	id    uint64
	paths [][]uint64 // root → ... → self, per tree (nil if outside tree)
}

func (d *Decoder) parse(s bitstr.String) (parsed, error) {
	r := bitstr.NewReader(s)
	id, err := r.ReadUint(d.w)
	if err != nil {
		return parsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	p := parsed{id: id, paths: make([][]uint64, d.k)}
	for t := 0; t < d.k; t++ {
		l, err := r.ReadGamma0()
		if err != nil {
			return parsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		if l > uint64(d.n) {
			return parsed{}, fmt.Errorf("%w: path of %d ids in an %d-vertex family", ErrBadLabel, l, d.n)
		}
		if l == 0 {
			continue
		}
		path := make([]uint64, l)
		for i := range path {
			if path[i], err = r.ReadUint(d.w); err != nil {
				return parsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
			}
		}
		if path[len(path)-1] != id {
			return parsed{}, fmt.Errorf("%w: path does not end at the vertex", ErrBadLabel)
		}
		p.paths[t] = path
	}
	if r.Remaining() != 0 {
		return parsed{}, fmt.Errorf("%w: %d trailing bits", ErrBadLabel, r.Remaining())
	}
	return p, nil
}

// treeDist returns the tree distance between two parsed labels in tree t
// (or -1 when either endpoint is outside the tree).
func treeDist(a, b parsed, t int) int {
	pa, pb := a.paths[t], b.paths[t]
	if pa == nil || pb == nil {
		return -1
	}
	common := 0
	for common < len(pa) && common < len(pb) && pa[common] == pb[common] {
		common++
	}
	if common == 0 {
		return -1 // different roots cannot happen within one tree; treat defensively
	}
	return (len(pa) - common) + (len(pb) - common)
}

// TreeDist returns min over trees of the tree distance between the two
// labeled vertices — an upper bound on their true distance, and the length
// of the route NextHop realizes.
func (d *Decoder) TreeDist(a, b bitstr.String) (int, error) {
	pa, err := d.parse(a)
	if err != nil {
		return 0, err
	}
	pb, err := d.parse(b)
	if err != nil {
		return 0, err
	}
	if pa.id == pb.id {
		return 0, nil
	}
	best := -1
	for t := 0; t < d.k; t++ {
		if dt := treeDist(pa, pb, t); dt >= 0 && (best < 0 || dt < best) {
			best = dt
		}
	}
	if best < 0 {
		return 0, ErrUnreachable
	}
	return best, nil
}

// NextHop returns the neighbor of the vertex labeled `from` to which a
// packet destined for `to` should be forwarded, using the tree with the
// smallest label-computable distance. Routing hop-by-hop with NextHop
// follows exactly that tree path (each intermediate vertex recomputes with
// its own label and picks the same tree by the deterministic tie-break).
func (d *Decoder) NextHop(from, to bitstr.String) (int, error) {
	pf, err := d.parse(from)
	if err != nil {
		return 0, err
	}
	pt, err := d.parse(to)
	if err != nil {
		return 0, err
	}
	if pf.id == pt.id {
		return int(pf.id), nil
	}
	bestT, best := -1, -1
	for t := 0; t < d.k; t++ {
		if dt := treeDist(pf, pt, t); dt >= 0 && (best < 0 || dt < best) {
			best, bestT = dt, t
		}
	}
	if bestT < 0 {
		return 0, ErrUnreachable
	}
	pa, pb := pf.paths[bestT], pt.paths[bestT]
	common := 0
	for common < len(pa) && common < len(pb) && pa[common] == pb[common] {
		common++
	}
	if common == len(pa) {
		// from is an ancestor of to: descend along to's path.
		return int(pb[common]), nil
	}
	// Otherwise climb toward the LCA.
	return int(pa[len(pa)-2]), nil
}

// Route simulates hop-by-hop forwarding from u to v over the labeling and
// returns the visited path (including both endpoints). It fetches each
// intermediate vertex's label, as a router would consult the node it is at.
func (l *Labeling) Route(u, v int) ([]int, error) {
	target, err := l.Label(v)
	if err != nil {
		return nil, err
	}
	cur := u
	path := []int{u}
	// A correct tree route can take at most 2n hops; guard against cycles.
	for steps := 0; cur != v; steps++ {
		if steps > 2*l.N() {
			return nil, fmt.Errorf("routing: loop detected routing %d→%d (path %v)", u, v, path)
		}
		curLabel, err := l.Label(cur)
		if err != nil {
			return nil, err
		}
		next, err := l.dec.NextHop(curLabel, target)
		if err != nil {
			return nil, err
		}
		cur = next
		path = append(path, cur)
	}
	return path, nil
}

// CoreRoots exposes which vertices the scheme would use as tree roots on g
// (the top-K degrees), for experiment reporting.
func (s Scheme) CoreRoots(g *graph.Graph) []int {
	order := g.VerticesByDegreeDesc()
	k := s.K
	if k > len(order) {
		k = len(order)
	}
	roots := make([]int, k)
	copy(roots, order[:k])
	sort.Ints(roots)
	return roots
}
