package routing_test

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/schemes/routing"
)

// Example routes a packet across a star topology using labels only: every
// hop decision comes from the current node's label plus the destination's.
func Example() {
	g := gen.Star(8) // hub 0, leaves 1..7
	lab, err := (routing.Scheme{K: 1}).Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	path, err := lab.Route(3, 6) // leaf to leaf: must go via the hub
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(path)
	// Output: [3 0 6]
}
