package forest

import (
	"fmt"
	"math/rand"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
)

// EncodeBAOnline realizes the paper's tightening of Proposition 5: "if the
// encoder operates at the same time as the creation of the graph,
// Proposition 5 can be tightened to yield an m·log n labeling scheme, by
// storing the identifiers of the vertices to the node introduced."
//
// The Barabási–Albert process is run here with the encoder in the loop:
// every vertex's label records exactly the m attachment targets it chose at
// birth (seed-clique vertices record their earlier clique neighbors).
// Each edge is thus stored at exactly one endpoint — the younger one — and
// labels are (m'+1)·ceil(log2 n) bits where m' ≤ max(m, seed-clique
// degree). The same forest Decoder answers queries: the "parents" of a
// vertex are its birth targets.
//
// It returns the generated graph together with its labeling.
func EncodeBAOnline(n, m int, seed int64) (*graph.Graph, *core.Labeling, error) {
	if m < 1 {
		return nil, nil, fmt.Errorf("forest: BA attachment parameter m must be >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, nil, fmt.Errorf("forest: BA needs n >= m+1 (n=%d, m=%d)", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	birth := make([][]int32, n) // attachment targets chosen at creation

	repeated := make([]int32, 0, 2*m*n)
	addEdge := func(younger, older int) error {
		if err := b.AddEdge(younger, older); err != nil {
			return err
		}
		birth[younger] = append(birth[younger], int32(older))
		repeated = append(repeated, int32(younger), int32(older))
		return nil
	}

	// Seed clique on m+1 vertices: vertex u records its edges to the
	// earlier vertices 0..u-1.
	for u := 1; u <= m; u++ {
		for v := 0; v < u; v++ {
			if err := addEdge(u, v); err != nil {
				return nil, nil, err
			}
		}
	}
	targets := make(map[int]struct{}, m)
	picked := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		for k := range targets {
			delete(targets, k)
		}
		picked = picked[:0]
		for len(targets) < m {
			t := int(repeated[rng.Intn(len(repeated))])
			if _, dup := targets[t]; dup {
				continue
			}
			targets[t] = struct{}{}
			picked = append(picked, t)
		}
		// Pick order, not map order, for bit-reproducible labels.
		for _, t := range picked {
			if err := addEdge(v, t); err != nil {
				return nil, nil, err
			}
		}
	}

	g := b.Build()
	w := bitstr.WidthFor(uint64(n))
	labels := make([]bitstr.String, n)
	var bb bitstr.Builder
	for v := 0; v < n; v++ {
		bb.Reset()
		bb.AppendUint(uint64(v), w)
		for _, t := range birth[v] {
			bb.AppendUint(uint64(t), w)
		}
		labels[v] = bb.String()
	}
	return g, core.NewLabeling("ba-online", labels, NewDecoder(n)), nil
}
