package forest

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestForestSchemeCorrectness(t *testing.T) {
	ba, err := gen.BarabasiAlbert(150, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"empty":  graph.Empty(0),
		"single": graph.Empty(1),
		"path":   gen.Path(15),
		"cycle":  gen.Cycle(12),
		"K7":     gen.Complete(7),
		"grid":   gen.Grid(5, 6),
		"er":     gen.ErdosRenyi(90, 0.08, 2),
		"ba":     ba,
		"tree":   gen.RandomTree(60, 3),
	}
	s := Scheme{}
	for name, g := range cases {
		lab, err := s.Encode(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := lab.Verify(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestForestLabelSizeBA(t *testing.T) {
	// Proposition 5: BA graphs get (k+1)·ceil(log2 n) bit labels with
	// k <= 2m forests.
	n, m := 3000, 3
	g, err := gen.BarabasiAlbert(n, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := Scheme{}
	k := s.Forests(g)
	if k > 2*m {
		t.Errorf("forest count %d exceeds 2m = %d", k, 2*m)
	}
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstr.WidthFor(uint64(n))
	if got, want := lab.Stats().Max, (k+1)*w; got != want {
		t.Errorf("max label = %d, want exactly %d", got, want)
	}
}

func TestForestBeatsFatThinOnBA(t *testing.T) {
	// The point of Proposition 5: on BA graphs the forest labels
	// (O(m log n)) are far below the power-law scheme's Θ(n^(1/3)) bitmap
	// labels for large n.
	g, err := gen.BarabasiAlbert(5000, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := (Scheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Stats().Max > 200 {
		t.Errorf("forest labels unexpectedly large: %d bits", lab.Stats().Max)
	}
}

func TestForestDecoderTreeEquivalence(t *testing.T) {
	// On a tree the decomposition is a single forest and the scheme must
	// agree with plain parent labels semantically.
	g := gen.RandomTree(80, 9)
	lab, err := (Scheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Verify(g); err != nil {
		t.Error(err)
	}
	if k := (Scheme{}).Forests(g); k != 1 {
		t.Errorf("tree decomposed into %d forests", k)
	}
}

func TestQuickForestCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(40, 0.15, seed)
		lab, err := (Scheme{}).Encode(g)
		if err != nil {
			return false
		}
		return lab.Verify(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
