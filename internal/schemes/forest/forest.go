// Package forest implements Proposition 5's adjacency labeling scheme for
// low-arboricity graphs (in particular Barabási–Albert graphs): the graph is
// decomposed into k forests via the degeneracy orientation, and each vertex
// stores its parent in every forest. Labels are (k+1)·ceil(log2 n) bits,
// i.e. O(m log n) for BA graphs with parameter m, sidestepping the Ω(n^(1/α))
// lower bound that holds for general power-law graphs.
package forest

import (
	"fmt"

	"repro/internal/arboricity"
	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
)

// Scheme is the forest-decomposition adjacency labeling scheme.
type Scheme struct{}

var _ core.Scheme = Scheme{}

// Name implements core.Scheme.
func (Scheme) Name() string { return "forest-decomp" }

// Encode implements core.Scheme.
//
// Label layout (w = ceil(log2 n), k = number of forests):
//
//	[own id: w][parent-or-self in forest 0: w]...[parent-or-self in forest k-1: w]
//
// The decoder recovers k from the label length, so it depends only on n.
func (s Scheme) Encode(g *graph.Graph) (*core.Labeling, error) {
	n := g.N()
	dec := arboricity.Decompose(g)
	k := dec.Forests()
	w := bitstr.WidthFor(uint64(n))
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendUint(uint64(v), w)
		for i := 0; i < k; i++ {
			p := dec.Parent[i][v]
			if p < 0 {
				p = int32(v) // self = no parent in this forest
			}
			b.AppendUint(uint64(p), w)
		}
		labels[v] = b.String()
	}
	return core.NewLabeling(s.Name(), labels, NewDecoder(n)), nil
}

// Forests reports how many forests the decomposition of g uses (the label
// size is (Forests+1)·ceil(log2 n) bits).
func (Scheme) Forests(g *graph.Graph) int {
	return arboricity.Decompose(g).Forests()
}

// Decoder answers adjacency queries over forest-decomposition labels.
type Decoder struct {
	w int
}

var _ core.AdjacencyDecoder = (*Decoder)(nil)

// NewDecoder returns the decoder for n-vertex forest-decomposition labels.
func NewDecoder(n int) *Decoder { return &Decoder{w: bitstr.WidthFor(uint64(n))} }

// Adjacent implements core.AdjacencyDecoder: u and v are adjacent iff some
// forest has parent(u) = v or parent(v) = u. Runs in O(k) time.
func (d *Decoder) Adjacent(a, b bitstr.String) (bool, error) {
	ida, err := d.ownID(a)
	if err != nil {
		return false, err
	}
	idb, err := d.ownID(b)
	if err != nil {
		return false, err
	}
	if ida == idb {
		return false, nil
	}
	hit, err := d.hasParent(a, idb)
	if err != nil || hit {
		return hit, err
	}
	return d.hasParent(b, ida)
}

func (d *Decoder) ownID(s bitstr.String) (uint64, error) {
	if d.w == 0 {
		return 0, nil
	}
	if s.Len() < d.w || s.Len()%d.w != 0 {
		return 0, fmt.Errorf("%w: forest label of %d bits with id width %d", core.ErrBadLabel, s.Len(), d.w)
	}
	r := bitstr.NewReader(s)
	return r.ReadUint(d.w)
}

func (d *Decoder) hasParent(s bitstr.String, target uint64) (bool, error) {
	if d.w == 0 {
		return false, nil
	}
	r := bitstr.NewReader(s)
	if err := r.Seek(d.w); err != nil {
		return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	for r.Remaining() >= d.w {
		p, err := r.ReadUint(d.w)
		if err != nil {
			return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
		}
		if p == target {
			return true, nil
		}
	}
	return false, nil
}
