package forest

import (
	"testing"

	"repro/internal/bitstr"
)

func TestEncodeBAOnlineValidation(t *testing.T) {
	if _, _, err := EncodeBAOnline(10, 0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, _, err := EncodeBAOnline(2, 2, 1); err == nil {
		t.Error("n < m+1 accepted")
	}
}

func TestEncodeBAOnlineCorrectness(t *testing.T) {
	for _, m := range []int{1, 2, 4} {
		g, lab, err := EncodeBAOnline(300, m, int64(m))
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 300 {
			t.Fatalf("m=%d: n=%d", m, g.N())
		}
		if err := lab.Verify(g); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestEncodeBAOnlineLabelBound(t *testing.T) {
	// The tightened Proposition 5 claim: labels are at most (m+1)·log n
	// bits (own id + the m birth targets).
	n, m := 2000, 3
	_, lab, err := EncodeBAOnline(n, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstr.WidthFor(uint64(n))
	if got, want := lab.Stats().Max, (m+1)*w; got != want {
		t.Errorf("max label = %d bits, want exactly %d", got, want)
	}
}

func TestEncodeBAOnlineBeatsDecomposition(t *testing.T) {
	// Online labels (m+1)·w must not exceed the offline decomposition's
	// (k+1)·w with k <= 2m.
	n, m := 2000, 3
	g, lab, err := EncodeBAOnline(n, m, 9)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := (Scheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Stats().Max > offline.Stats().Max {
		t.Errorf("online max %d > offline max %d", lab.Stats().Max, offline.Stats().Max)
	}
}

func TestEncodeBAOnlineDeterministic(t *testing.T) {
	_, a, err := EncodeBAOnline(500, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := EncodeBAOnline(500, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 500; v++ {
		la, err := a.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		if !la.Equal(lb) {
			t.Fatalf("label %d differs across identical seeds", v)
		}
	}
}
