package baseline

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func allCases(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"empty":  graph.Empty(0),
		"single": graph.Empty(1),
		"edge":   gen.Path(2),
		"path":   gen.Path(12),
		"star":   gen.Star(20),
		"K9":     gen.Complete(9),
		"er":     gen.ErdosRenyi(90, 0.1, 1),
		"grid":   gen.Grid(4, 7),
	}
}

func TestAdjMatrixCorrectness(t *testing.T) {
	for name, g := range allCases(t) {
		lab, err := AdjMatrix{}.Encode(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := lab.Verify(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestNeighborListCorrectness(t *testing.T) {
	for name, g := range allCases(t) {
		lab, err := NeighborList{}.Encode(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := lab.Verify(g); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAdjMatrixSizes(t *testing.T) {
	n := 256
	g := gen.Complete(n)
	lab, err := AdjMatrix{}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstr.WidthFor(uint64(n))
	st := lab.Stats()
	if st.Max != w+n-1 {
		t.Errorf("max label = %d, want %d", st.Max, w+n-1)
	}
	if st.Min != w {
		t.Errorf("min label = %d, want %d (vertex 0 stores no bits)", st.Min, w)
	}
	// Mean ≈ w + (n-1)/2 — the "n/2" of Moon's bound.
	wantMean := float64(w) + float64(n-1)/2
	if st.Mean < wantMean-1 || st.Mean > wantMean+1 {
		t.Errorf("mean label = %.1f, want ≈ %.1f", st.Mean, wantMean)
	}
}

func TestAdjMatrixIndependentOfEdges(t *testing.T) {
	// Label sizes of the matrix scheme depend on n only — the scheme the
	// fat/thin approach improves on for sparse inputs.
	a, err := AdjMatrix{}.Encode(graph.Empty(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdjMatrix{}.Encode(gen.Complete(100))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats().Max != b.Stats().Max || a.Stats().Total != b.Stats().Total {
		t.Error("adjmatrix label sizes vary with edges")
	}
}

func TestNeighborListDecoderShared(t *testing.T) {
	// NeighborList labels decode with the standard fat/thin decoder.
	g := gen.ErdosRenyi(50, 0.15, 2)
	lab, err := NeighborList{}.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	dec := core.NewFatThinDecoder(g.N())
	lu, err := lab.Label(3)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := lab.Label(7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Adjacent(lu, lv)
	if err != nil {
		t.Fatal(err)
	}
	if got != g.HasEdge(3, 7) {
		t.Error("shared decoder disagrees")
	}
}

func TestQuickBaselinesAgree(t *testing.T) {
	// Both baselines must agree with each other (and the graph) everywhere.
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 0.25, seed)
		la, err := AdjMatrix{}.Encode(g)
		if err != nil {
			return false
		}
		lb, err := NeighborList{}.Encode(g)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				x, err := la.Adjacent(u, v)
				if err != nil {
					return false
				}
				y, err := lb.Adjacent(u, v)
				if err != nil {
					return false
				}
				if x != y || x != g.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
