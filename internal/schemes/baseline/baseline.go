// Package baseline implements the comparison labeling schemes the paper
// measures its contribution against:
//
//   - AdjMatrix: the classical n/2 + O(log n) scheme for general graphs
//     (Moon's bound shows this is optimal for the class of all graphs):
//     vertex i stores one adjacency bit for each vertex with a smaller
//     identifier.
//   - NeighborList: each vertex stores the identifiers of all neighbors —
//     the naive Θ(Δ·log n) scheme, equal to the fat/thin scheme with an
//     infinite threshold.
package baseline

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
)

// AdjMatrix is the adjacency-matrix-row labeling scheme for general graphs.
type AdjMatrix struct{}

var _ core.Scheme = AdjMatrix{}

// Name implements core.Scheme.
func (AdjMatrix) Name() string { return "adjmatrix" }

// Encode implements core.Scheme. Label layout (w = ceil(log2 n)):
//
//	[own id: w][adjacency bits to vertices 0..id-1: id bits]
//
// The maximum label is w + n - 1 bits; the average is w + (n-1)/2.
func (s AdjMatrix) Encode(g *graph.Graph) (*core.Labeling, error) {
	n := g.N()
	w := bitstr.WidthFor(uint64(n))
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	// One vector reused for every row: it grows with v (vertices are walked
	// in order, so Grow extends by one bit per step at amortized O(1)) and is
	// wiped by clearing only the bits that were set — O(deg) instead of
	// zeroing the whole row.
	vec := bitstr.NewVector(0)
	for v := 0; v < n; v++ {
		b.Reset()
		b.Grow(w + v)
		b.AppendUint(uint64(v), w)
		vec.Grow(v)
		nbrs := g.Neighbors(v)
		for _, u := range nbrs {
			if int(u) < v {
				vec.Set(int(u))
			}
		}
		vec.Append(&b)
		for _, u := range nbrs {
			if int(u) < v {
				vec.Clear(int(u))
			}
		}
		labels[v] = b.String()
	}
	return core.NewLabeling(s.Name(), labels, NewAdjMatrixDecoder(n)), nil
}

// AdjMatrixDecoder decodes adjacency-matrix-row labels; depends only on n.
type AdjMatrixDecoder struct {
	w int
}

var _ core.AdjacencyDecoder = (*AdjMatrixDecoder)(nil)

// NewAdjMatrixDecoder returns the decoder for n-vertex labelings.
func NewAdjMatrixDecoder(n int) *AdjMatrixDecoder {
	return &AdjMatrixDecoder{w: bitstr.WidthFor(uint64(n))}
}

// Adjacent implements core.AdjacencyDecoder in O(1).
func (d *AdjMatrixDecoder) Adjacent(a, b bitstr.String) (bool, error) {
	ida, err := d.ownID(a)
	if err != nil {
		return false, err
	}
	idb, err := d.ownID(b)
	if err != nil {
		return false, err
	}
	if ida == idb {
		return false, nil
	}
	// The higher-ID label holds the bit for the lower ID.
	hi, lo := a, idb
	if idb > ida {
		hi, lo = b, ida
	}
	bit, err := hi.Bit(d.w + int(lo))
	if err != nil {
		return false, fmt.Errorf("%w: %v", core.ErrBadLabel, err)
	}
	return bit, nil
}

func (d *AdjMatrixDecoder) ownID(s bitstr.String) (uint64, error) {
	if s.Len() < d.w {
		return 0, fmt.Errorf("%w: adjmatrix label of %d bits", core.ErrBadLabel, s.Len())
	}
	r := bitstr.NewReader(s)
	return r.ReadUint(d.w)
}

// NeighborList is the naive all-neighbors labeling scheme.
type NeighborList struct{}

var _ core.Scheme = NeighborList{}

// Name implements core.Scheme.
func (NeighborList) Name() string { return "nbrlist" }

// Encode implements core.Scheme. Labels share the thin-label layout of the
// fat/thin scheme: [0][own id: w][neighbor ids: deg·w].
func (s NeighborList) Encode(g *graph.Graph) (*core.Labeling, error) {
	n := g.N()
	w := bitstr.WidthFor(uint64(n))
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.Grow(1 + w + g.Degree(v)*w)
		b.AppendBit(false)
		b.AppendUint(uint64(v), w)
		for _, u := range g.Neighbors(v) {
			b.AppendUint(uint64(u), w)
		}
		labels[v] = b.String()
	}
	return core.NewLabeling(s.Name(), labels, core.NewFatThinDecoder(n)), nil
}
