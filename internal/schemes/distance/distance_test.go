package distance

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// checkBounded verifies the Lemma 7 contract on every pair: queries answer
// the exact distance when it is <= f, and Beyond otherwise.
func checkBounded(t *testing.T, g *graph.Graph, lab *Labeling, f int) {
	t.Helper()
	n := g.N()
	for u := 0; u < n; u++ {
		truth := g.BFS(u)
		for v := 0; v < n; v++ {
			got, err := lab.Dist(u, v)
			if err != nil {
				t.Fatalf("Dist(%d,%d): %v", u, v, err)
			}
			want := truth[v]
			if want == graph.Unreachable || want > f {
				if got != Beyond {
					t.Fatalf("Dist(%d,%d) = %d, want Beyond (true %d, f=%d)", u, v, got, want, f)
				}
				continue
			}
			if got != want {
				t.Fatalf("Dist(%d,%d) = %d, want %d (f=%d)", u, v, got, want, f)
			}
		}
	}
}

func TestDistanceSchemeSmallGraphs(t *testing.T) {
	cl, err := gen.ChungLuPowerLaw(200, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"path":   gen.Path(20),
		"cycle":  gen.Cycle(15),
		"star":   gen.Star(25),
		"grid":   gen.Grid(5, 5),
		"er":     gen.ErdosRenyi(80, 0.06, 2),
		"cl":     cl,
		"isol":   graph.Empty(10),
		"single": graph.Empty(1),
	}
	for name, g := range cases {
		for _, f := range []int{1, 2, 3, 5} {
			s := Scheme{Alpha: 2.5, F: f}
			lab, err := s.Encode(g)
			if err != nil {
				t.Fatalf("%s f=%d: %v", name, f, err)
			}
			checkBounded(t, g, lab, f)
		}
	}
}

func TestDistanceSchemeValidation(t *testing.T) {
	if _, err := (Scheme{Alpha: 2.5, F: 0}).Encode(gen.Path(5)); err == nil {
		t.Error("F=0 accepted")
	}
	if _, err := (Scheme{Alpha: 1.0, F: 2}).Encode(gen.Path(5)); err == nil {
		t.Error("alpha=1 accepted")
	}
}

func TestDistanceF1IsAdjacency(t *testing.T) {
	// With f=1 the scheme answers adjacency: 1 for edges, 0 for self,
	// Beyond for everything else.
	g := gen.ErdosRenyi(60, 0.1, 4)
	lab, err := (Scheme{Alpha: 2.5, F: 1}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			got, err := lab.Dist(u, v)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case u == v:
				if got != 0 {
					t.Fatalf("self distance %d", got)
				}
			case g.HasEdge(u, v):
				if got != 1 {
					t.Fatalf("edge (%d,%d) dist %d", u, v, got)
				}
			default:
				if got != Beyond && got != 2 && got != 1 {
					t.Fatalf("(%d,%d) dist %d", u, v, got)
				}
				if got != Beyond {
					t.Fatalf("non-adjacent (%d,%d) within f=1: %d", u, v, got)
				}
			}
		}
	}
}

func TestDistanceLabelShrinkWithF(t *testing.T) {
	// Larger f means fewer fat vertices but wider thin tables; at fixed
	// small f the dominant term is the fat table, so f=2 labels should be
	// well below the exact-vector baseline.
	g, err := gen.ChungLuPowerLaw(1000, 2.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := (Scheme{Alpha: 2.5, F: 2}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	_, maxBounded, _ := lab.Stats()
	exact, err := (ExactScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	_, maxExact, _ := exact.Stats()
	if maxBounded >= maxExact {
		t.Errorf("bounded labels (%d bits) not below exact labels (%d bits)", maxBounded, maxExact)
	}
}

func TestExactSchemeCorrect(t *testing.T) {
	cases := []*graph.Graph{
		gen.Path(15),
		gen.Grid(4, 4),
		gen.ErdosRenyi(50, 0.08, 6), // possibly disconnected
	}
	for _, g := range cases {
		lab, err := (ExactScheme{}).Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			truth := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				got, err := lab.Dist(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if got != truth[v] {
					t.Fatalf("exact Dist(%d,%d) = %d, want %d", u, v, got, truth[v])
				}
			}
		}
	}
}

func TestDistanceThresholdMonotone(t *testing.T) {
	s2 := Scheme{Alpha: 2.5, F: 2}
	s5 := Scheme{Alpha: 2.5, F: 5}
	t2, err := s2.Threshold(10000)
	if err != nil {
		t.Fatal(err)
	}
	t5, err := s5.Threshold(10000)
	if err != nil {
		t.Fatal(err)
	}
	if t5 > t2 {
		t.Errorf("threshold grew with f: f=2→%d, f=5→%d", t2, t5)
	}
}

func TestQuickDistanceBoundedContract(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 0.1, seed)
		lab, err := (Scheme{Alpha: 2.5, F: 3}).Encode(g)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			truth := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				got, err := lab.Dist(u, v)
				if err != nil {
					return false
				}
				want := truth[v]
				if want == graph.Unreachable || want > 3 {
					if got != Beyond {
						return false
					}
				} else if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
