package distance

import (
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// ExactScheme is the trivial exact distance labeling baseline: every vertex
// stores its full distance vector. Labels are n·ceil(log2(D+2)) bits where D
// is the diameter — the upper extreme Lemma 7's bounded scheme is measured
// against. Encoding runs n BFS traversals, so it is intended for modest n.
type ExactScheme struct{}

// Name identifies the scheme in experiment output.
func (ExactScheme) Name() string { return "dist-exact" }

// Encode labels every vertex of g with its distance vector.
//
// Label layout: [own id: w][dist to 0: dw]...[dist to n-1: dw] with
// unreachable stored as the sentinel D+1.
func (s ExactScheme) Encode(g *graph.Graph) (*ExactLabeling, error) {
	n := g.N()
	all := make([][]int, n)
	diam := 0
	for v := 0; v < n; v++ {
		all[v] = g.BFS(v)
		for _, d := range all[v] {
			if d > diam {
				diam = d
			}
		}
	}
	w := bitstr.WidthFor(uint64(n))
	dw := bitstr.WidthFor(uint64(diam + 2))
	sentinel := diam + 1
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendUint(uint64(v), w)
		for _, d := range all[v] {
			if d == graph.Unreachable {
				d = sentinel
			}
			b.AppendUint(uint64(d), dw)
		}
		labels[v] = b.String()
	}
	return &ExactLabeling{labels: labels, dec: &ExactDecoder{n: n, w: w, dw: dw, sentinel: sentinel}}, nil
}

// ExactLabeling holds exact distance labels.
type ExactLabeling struct {
	labels []bitstr.String
	dec    *ExactDecoder
}

// N returns the number of labeled vertices.
func (l *ExactLabeling) N() int { return len(l.labels) }

// Label returns vertex v's label.
func (l *ExactLabeling) Label(v int) (bitstr.String, error) {
	if v < 0 || v >= len(l.labels) {
		return bitstr.String{}, fmt.Errorf("distance: vertex %d of %d", v, len(l.labels))
	}
	return l.labels[v], nil
}

// DistLabels answers a query directly from two raw labels.
func (l *ExactLabeling) DistLabels(a, b bitstr.String) (int, error) {
	return l.dec.Dist(a, b)
}

// Dist answers an exact distance query (graph.Unreachable for disconnected
// pairs).
func (l *ExactLabeling) Dist(u, v int) (int, error) {
	lu, err := l.Label(u)
	if err != nil {
		return 0, err
	}
	lv, err := l.Label(v)
	if err != nil {
		return 0, err
	}
	return l.dec.Dist(lu, lv)
}

// Stats reports label-size statistics in bits.
func (l *ExactLabeling) Stats() (min, max int, mean float64) {
	if len(l.labels) == 0 {
		return 0, 0, 0
	}
	min = l.labels[0].Len()
	var total int64
	for _, s := range l.labels {
		n := s.Len()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += int64(n)
	}
	return min, max, float64(total) / float64(len(l.labels))
}

// ExactDecoder answers exact distance queries from two full-vector labels.
type ExactDecoder struct {
	n, w, dw, sentinel int
}

// Dist reads dist(a → id(b)) from a's vector.
func (d *ExactDecoder) Dist(a, b bitstr.String) (int, error) {
	want := d.w + d.n*d.dw
	if a.Len() != want || b.Len() != want {
		return 0, fmt.Errorf("%w: exact labels of %d/%d bits, want %d", ErrBadLabel, a.Len(), b.Len(), want)
	}
	rb := bitstr.NewReader(b)
	idb, err := rb.ReadUint(d.w)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	ra := bitstr.NewReader(a)
	if err := ra.Seek(d.w + int(idb)*d.dw); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	v, err := ra.ReadUint(d.dw)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	if int(v) == d.sentinel {
		return graph.Unreachable, nil
	}
	return int(v), nil
}
