// Package distance implements the f(n)-bounded distance labeling scheme of
// Lemma 7 and an exact distance-vector baseline.
//
// In the Lemma 7 scheme a vertex is fat when its degree is at least
// n^(1/(α-1+f)). Every label carries (i) a table of hop distances (capped at
// f) to every fat vertex and (ii), for thin vertices, a table of distances
// to the thin vertices reachable within f hops through thin vertices only.
// The decoder answers dist(u,v) exactly whenever it is at most f, and
// reports "more than f" otherwise — the regime the paper targets, since
// power-law graphs have Θ(log n) diameter (Chung–Lu).
package distance

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/graph"
	"repro/internal/powerlaw"
)

// ErrBadLabel is returned when a distance label cannot be parsed.
var ErrBadLabel = errors.New("distance: malformed label")

// Beyond is returned by queries whose true distance exceeds the scheme's
// bound f (including disconnected pairs).
const Beyond = -1

// Scheme is the Lemma 7 f(n)-distance labeling scheme for P_h graphs.
type Scheme struct {
	// Alpha is the power-law exponent used for the fat threshold.
	Alpha float64
	// F is the distance bound f(n); queries up to F hops are exact.
	F int
}

// Name identifies the scheme in experiment output.
func (s Scheme) Name() string { return fmt.Sprintf("dist-f%d(α=%g)", s.F, s.Alpha) }

// Labeling is the output of the distance encoder.
type Labeling struct {
	labels []bitstr.String
	dec    *Decoder
}

// N returns the number of labeled vertices.
func (l *Labeling) N() int { return len(l.labels) }

// Label returns vertex v's label.
func (l *Labeling) Label(v int) (bitstr.String, error) {
	if v < 0 || v >= len(l.labels) {
		return bitstr.String{}, fmt.Errorf("distance: vertex %d of %d", v, len(l.labels))
	}
	return l.labels[v], nil
}

// Decoder returns the scheme's decoder.
func (l *Labeling) Decoder() *Decoder { return l.dec }

// DistLabels answers a query directly from two raw labels (the network
// deployment path, where labels arrive from peers).
func (l *Labeling) DistLabels(a, b bitstr.String) (int, error) {
	return l.dec.Dist(a, b)
}

// Dist answers a distance query between u and v from their labels alone.
func (l *Labeling) Dist(u, v int) (int, error) {
	lu, err := l.Label(u)
	if err != nil {
		return 0, err
	}
	lv, err := l.Label(v)
	if err != nil {
		return 0, err
	}
	return l.dec.Dist(lu, lv)
}

// Stats reports label-size statistics in bits.
func (l *Labeling) Stats() (min, max int, mean float64) {
	if len(l.labels) == 0 {
		return 0, 0, 0
	}
	min = l.labels[0].Len()
	var total int64
	for _, s := range l.labels {
		n := s.Len()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += int64(n)
	}
	return min, max, float64(total) / float64(len(l.labels))
}

// Threshold returns the fat-degree threshold the scheme uses on an n-vertex
// graph.
func (s Scheme) Threshold(n int) (int, error) {
	p, err := powerlaw.NewParams(s.Alpha, maxInt(n, 1))
	if err != nil {
		return 0, err
	}
	return p.DistanceFatThreshold(s.F), nil
}

// Encode labels every vertex of g.
//
// Label layout (w = ceil(log2 n), dw = ceil(log2(f+2)), F fat vertices):
//
//	[fat bit][own id: w][dist to fat 0: dw]...[dist to fat F-1: dw]
//	  then, thin vertices only, entries of [thin id: w][dist: dw]
//
// Distances greater than f (or unreachable) are stored as the sentinel
// value f+1.
func (s Scheme) Encode(g *graph.Graph) (*Labeling, error) {
	if s.F < 1 {
		return nil, fmt.Errorf("distance: bound F must be >= 1, got %d", s.F)
	}
	n := g.N()
	// The fat/thin tables — one bounded BFS per fat hub, one thin-only
	// bounded BFS per thin vertex — are shared with the slab encoder
	// (boundedTables, slab.go), so both paths label from identical data.
	fat, fatDist, thin, err := s.boundedTables(g)
	if err != nil {
		return nil, err
	}
	nFat := 0
	if n > 0 {
		nFat = len(fatDist[0])
	}

	w := bitstr.WidthFor(uint64(n))
	dw := bitstr.WidthFor(uint64(s.F + 2))
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendBit(fat[v])
		b.AppendUint(uint64(v), w)
		for _, d := range fatDist[v] {
			b.AppendUint(uint64(d), dw)
		}
		if !fat[v] {
			// Thin-reachability list: any overestimate it contains (because
			// the true shortest path uses a fat hop) is corrected at query
			// time by the fat-table minimum.
			for _, e := range thin[v] {
				b.AppendUint(uint64(e.ID), w)
				b.AppendUint(uint64(e.D), dw)
			}
		}
		labels[v] = b.String()
	}
	dec := &Decoder{n: n, w: w, dw: dw, f: s.F, nFat: nFat}
	return &Labeling{labels: labels, dec: dec}, nil
}

// Decoder answers bounded distance queries from two labels. It depends only
// on the family parameters (n, f, number of fat vertices).
type Decoder struct {
	n    int
	w    int
	dw   int
	f    int
	nFat int
}

// NFat returns the number of fat vertices (the fat-table width).
func (d *Decoder) NFat() int { return d.nFat }

type parsed struct {
	fat     bool
	id      uint64
	tblOff  int // bit offset of the fat table
	listOff int // bit offset of the thin list (== end of fat table)
	s       bitstr.String
}

func (d *Decoder) parse(s bitstr.String) (parsed, error) {
	r := bitstr.NewReader(s)
	fat, err := r.ReadBit()
	if err != nil {
		return parsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	id, err := r.ReadUint(d.w)
	if err != nil {
		return parsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	tblOff := 1 + d.w
	listOff := tblOff + d.nFat*d.dw
	if s.Len() < listOff {
		return parsed{}, fmt.Errorf("%w: label of %d bits, fat table needs %d", ErrBadLabel, s.Len(), listOff)
	}
	if !fat {
		body := s.Len() - listOff
		if body%(d.w+d.dw) != 0 {
			return parsed{}, fmt.Errorf("%w: thin list of %d bits", ErrBadLabel, body)
		}
	} else if s.Len() != listOff {
		return parsed{}, fmt.Errorf("%w: fat label of %d bits, want %d", ErrBadLabel, s.Len(), listOff)
	}
	return parsed{fat: fat, id: id, tblOff: tblOff, listOff: listOff, s: s}, nil
}

// fatTableEntry reads entry i of the fat table.
func (d *Decoder) fatTableEntry(p parsed, i int) (int, error) {
	r := bitstr.NewReader(p.s)
	if err := r.Seek(p.tblOff + i*d.dw); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	v, err := r.ReadUint(d.dw)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	return int(v), nil
}

// thinListLookup scans p's thin list for the target id.
func (d *Decoder) thinListLookup(p parsed, target uint64) (int, bool, error) {
	r := bitstr.NewReader(p.s)
	if err := r.Seek(p.listOff); err != nil {
		return 0, false, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	for r.Remaining() >= d.w+d.dw {
		id, err := r.ReadUint(d.w)
		if err != nil {
			return 0, false, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		dist, err := r.ReadUint(d.dw)
		if err != nil {
			return 0, false, fmt.Errorf("%w: %v", ErrBadLabel, err)
		}
		if id == target {
			return int(dist), true, nil
		}
	}
	return 0, false, nil
}

// Dist returns the exact hop distance between the two labeled vertices if
// it is at most f, and Beyond otherwise.
func (d *Decoder) Dist(a, b bitstr.String) (int, error) {
	pa, err := d.parse(a)
	if err != nil {
		return 0, err
	}
	pb, err := d.parse(b)
	if err != nil {
		return 0, err
	}
	if pa.id == pb.id {
		return 0, nil
	}
	best := d.f + 1

	// Minimum over fat relays: dist(a, z) + dist(z, b) for every fat z.
	// When a (or b) is itself fat, its own table contains the direct entry
	// (distance 0 to itself), so this covers the fat-fat and fat-thin cases
	// of Lemma 7's decoder.
	for i := 0; i < d.nFat; i++ {
		da, err := d.fatTableEntry(pa, i)
		if err != nil {
			return 0, err
		}
		if da >= best {
			continue
		}
		db, err := d.fatTableEntry(pb, i)
		if err != nil {
			return 0, err
		}
		if s := da + db; s < best {
			best = s
		}
	}

	// Thin-only paths (both endpoints thin).
	if !pa.fat && !pb.fat {
		if v, ok, err := d.thinListLookup(pa, pb.id); err != nil {
			return 0, err
		} else if ok && v < best {
			best = v
		}
		if best > 0 {
			if v, ok, err := d.thinListLookup(pb, pa.id); err != nil {
				return 0, err
			} else if ok && v < best {
				best = v
			}
		}
	}

	if best > d.f {
		return Beyond, nil
	}
	return best, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
