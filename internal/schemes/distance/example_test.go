package distance_test

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/schemes/distance"
)

// ExampleScheme demonstrates Lemma 7's contract: distances up to F are
// answered exactly from two labels; anything farther reports Beyond.
func ExampleScheme() {
	g := gen.Path(10) // 0-1-2-...-9
	lab, err := (distance.Scheme{Alpha: 2.5, F: 3}).Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	d1, err := lab.Dist(0, 3)
	if err != nil {
		log.Fatal(err)
	}
	d2, err := lab.Dist(0, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d1, d2 == distance.Beyond)
	// Output: 3 true
}

// ExamplePLLScheme shows the exact-distance comparator: pruned landmark
// labels answer every distance.
func ExamplePLLScheme() {
	g := gen.Grid(4, 4)
	lab, err := (distance.PLLScheme{}).Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	d, err := lab.Dist(0, 15) // opposite corners of the 4x4 grid
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d)
	// Output: 6
}
