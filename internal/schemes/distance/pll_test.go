package distance

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func checkPLLExact(t *testing.T, g *graph.Graph) {
	t.Helper()
	lab, err := (PLLScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		truth := g.BFS(u)
		for v := 0; v < g.N(); v++ {
			got, err := lab.Dist(u, v)
			if err != nil {
				t.Fatalf("Dist(%d,%d): %v", u, v, err)
			}
			if got != truth[v] {
				t.Fatalf("Dist(%d,%d) = %d, want %d", u, v, got, truth[v])
			}
		}
	}
}

func TestPLLExactSmallGraphs(t *testing.T) {
	cl, err := gen.ChungLuPowerLaw(150, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := gen.BarabasiAlbert(120, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"path":   gen.Path(25),
		"cycle":  gen.Cycle(16),
		"star":   gen.Star(30),
		"grid":   gen.Grid(6, 6),
		"er":     gen.ErdosRenyi(80, 0.06, 2), // possibly disconnected
		"cl":     cl,
		"ba":     ba,
		"isol":   graph.Empty(8),
		"single": graph.Empty(1),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) { checkPLLExact(t, g) })
	}
}

func TestPLLPruningEffective(t *testing.T) {
	// On a small-world power-law graph the hub-first ordering must keep
	// labels tiny: far below n entries per vertex.
	g, err := gen.ChungLuPowerLaw(3000, 2.5, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := (PLLScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	_, max, mean := lab.Stats()
	exact, err := (ExactScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	_, exactMax, _ := exact.Stats()
	if max >= exactMax/4 {
		t.Errorf("PLL max %d not well below exact vectors %d", max, exactMax)
	}
	if mean <= 0 {
		t.Errorf("mean = %v", mean)
	}
}

func TestPLLDecoderRejectsMalformed(t *testing.T) {
	g := gen.Path(10)
	lab, err := (PLLScheme{}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := lab.Label(0)
	if err != nil {
		t.Fatal(err)
	}
	var empty = l0
	_ = empty
	// Truncate a label: the count no longer matches the body.
	if _, err := lab.Label(99); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestQuickPLLExact(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(35, 0.1, seed)
		lab, err := (PLLScheme{}).Encode(g)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			truth := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				got, err := lab.Dist(u, v)
				if err != nil || got != truth[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
