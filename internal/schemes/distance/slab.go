package distance

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Arena entry points: the slab-pipeline encoders behind the distance query
// plane. The graph work is identical to the legacy Encode paths — the same
// pruned landmark BFS sweeps for PLL, the same bounded BFS tables for
// Lemma 7 — but instead of building one bitstr.String per vertex, the
// per-vertex entry lists are handed to core's parallel size-plan →
// prefix-sum → fill pipeline, which writes the whole labeling into one
// word-aligned slab (δ-gap hub ranks for PLL; bit-identical legacy layout
// for bdist). The result is a core.DistArena that NewDistEngine adopts
// zero-copy and labelstore stores as a format-v2 blob under the matching
// scheme= record kind.

// EncodeArena builds pruned landmark labels for g directly into a slab
// arena. workers drives the pipeline's plan/fill parallelism (the pruned
// BFS itself is inherently sequential in landmark order); lay selects the
// physical body order — LayoutDegree packs hub-heavy labels first, in the
// landmark (descending-degree) order the scheme already computes.
func (s PLLScheme) EncodeArena(g *graph.Graph, workers int, lay core.Layout) (*core.DistArena, error) {
	entries, maxDist, degOrder := pllEntries(g)
	var order []int32
	if lay == core.LayoutDegree {
		order = make([]int32, len(degOrder))
		for r, v := range degOrder {
			order[r] = int32(v)
		}
	}
	return core.EncodePLLArena(entries, maxDist, order, workers)
}

// pllEntries runs the pruned landmark BFS sweep and returns each vertex's
// (landmark rank, distance) list — sorted by rank, exactly as the pruning
// emits it — plus the largest stored distance and the landmark order
// itself (vertices by descending degree).
func pllEntries(g *graph.Graph) (entries [][]core.DistEntry, maxDist int32, order []int) {
	n := g.N()
	order = g.VerticesByDegreeDesc()
	entries = make([][]core.DistEntry, n)

	// query returns the current upper bound on dist(u, v) from labels.
	query := func(u, v int) int32 {
		const inf = int32(1 << 30)
		best := inf
		eu, ev := entries[u], entries[v]
		i, j := 0, 0
		for i < len(eu) && j < len(ev) {
			switch {
			case eu[i].ID == ev[j].ID:
				if d := eu[i].D + ev[j].D; d < best {
					best = d
				}
				i++
				j++
			case eu[i].ID < ev[j].ID:
				i++
			default:
				j++
			}
		}
		return best
	}

	// Pruned BFS from each landmark in rank order.
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 256)
	var touched []int32
	for r, vk := range order {
		queue = queue[:0]
		touched = touched[:0]
		dist[vk] = 0
		queue = append(queue, int32(vk))
		touched = append(touched, int32(vk))
		for head := 0; head < len(queue); head++ {
			u := int(queue[head])
			du := dist[u]
			// Prune: if the existing labels already certify dist(vk,u) <= du,
			// u needs no new entry and its subtree is covered via vk's
			// earlier landmarks.
			if query(vk, u) <= du {
				continue
			}
			entries[u] = append(entries[u], core.DistEntry{ID: int32(r), D: du})
			if du > maxDist {
				maxDist = du
			}
			for _, wv := range g.Neighbors(u) {
				if dist[wv] < 0 {
					dist[wv] = du + 1
					queue = append(queue, wv)
					touched = append(touched, wv)
				}
			}
		}
		for _, u := range touched {
			dist[u] = -1
		}
	}
	return entries, maxDist, order
}

// EncodeArena builds the Lemma 7 bounded-distance labeling directly into a
// slab arena, each label bit-for-bit identical to the legacy Encode output.
// lay as in PLLScheme.EncodeArena (LayoutDegree orders bodies by descending
// degree, fat hubs first).
func (s Scheme) EncodeArena(g *graph.Graph, workers int, lay core.Layout) (*core.DistArena, error) {
	if s.F < 1 {
		return nil, fmt.Errorf("distance: bound F must be >= 1, got %d", s.F)
	}
	n := g.N()
	fat, fatDist, thin, err := s.boundedTables(g)
	if err != nil {
		return nil, err
	}
	var order []int32
	if lay == core.LayoutDegree {
		order = make([]int32, n)
		for r, v := range g.VerticesByDegreeDesc() {
			order[r] = int32(v)
		}
	}
	return core.EncodeBoundedArena(fat, fatDist, thin, s.F, order, workers)
}

// boundedTables computes the Lemma 7 label contents: the fat flag per
// vertex, every vertex's fat-hub distance table (sentinel F+1), and each
// thin vertex's sorted thin-reachability list.
func (s Scheme) boundedTables(g *graph.Graph) (fat []bool, fatDist [][]int32, thin [][]core.DistEntry, err error) {
	n := g.N()
	tau, err := s.Threshold(n)
	if err != nil {
		return nil, nil, nil, err
	}
	hubs, fatIsSet := fatHubs(g, tau)
	fat = fatIsSet

	sentinel := int32(s.F + 1)
	fatDist = make([][]int32, n)
	for v := range fatDist {
		row := make([]int32, len(hubs))
		for i := range row {
			row[i] = sentinel
		}
		fatDist[v] = row
	}
	for i, fv := range hubs {
		for v, d := range g.BFSBounded(fv, s.F, nil) {
			fatDist[v][i] = int32(d)
		}
	}

	thin = make([][]core.DistEntry, n)
	for v := 0; v < n; v++ {
		if fat[v] {
			continue
		}
		reach := g.BFSBounded(v, s.F, func(u int) bool { return !fat[u] })
		list := make([]core.DistEntry, 0, len(reach))
		for u, d := range reach {
			if u != v {
				list = append(list, core.DistEntry{ID: int32(u), D: int32(d)})
			}
		}
		sortDistEntries(list) // deterministic labels, sorted for binary search
		thin[v] = list
	}
	return fat, fatDist, thin, nil
}

// sortDistEntries orders a thin list by vertex id ascending.
func sortDistEntries(list []core.DistEntry) {
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
}

// sortHubs orders the fat set by (degree desc, id asc) — the table index
// order of Lemma 7's labels.
func sortHubs(g *graph.Graph, hubs []int) {
	sort.Slice(hubs, func(i, j int) bool {
		di, dj := g.Degree(hubs[i]), g.Degree(hubs[j])
		if di != dj {
			return di > dj
		}
		return hubs[i] < hubs[j]
	})
}

// fatHubs returns the fat vertices sorted by (degree desc, id asc) — table
// index order — and the per-vertex fat flag.
func fatHubs(g *graph.Graph, tau int) ([]int, []bool) {
	n := g.N()
	var hubs []int
	for v := 0; v < n; v++ {
		if g.Degree(v) >= tau {
			hubs = append(hubs, v)
		}
	}
	sortHubs(g, hubs)
	fat := make([]bool, n)
	for _, v := range hubs {
		fat[v] = true
	}
	return hubs, fat
}
