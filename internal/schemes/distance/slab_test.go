package distance

import (
	"testing"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// slabTestGraphs returns the graph sweep the equivalence suite runs over:
// a power-law graph, a denser one, a sparse disconnected one, a ring, and
// degenerate sizes.
func slabTestGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	cl, err := gen.ChungLuPowerLaw(300, 2.5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := gen.ChungLuPowerLaw(150, 2.2, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := gen.ChungLuPowerLaw(200, 3.0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rb := graph.NewBuilder(64)
	for v := 0; v < 64; v++ {
		rb.AddEdge(v, (v+1)%64)
	}
	tiny := graph.NewBuilder(2)
	tiny.AddEdge(0, 1)
	single := graph.NewBuilder(1)
	return map[string]*graph.Graph{
		"chunglu":  cl,
		"dense":    dense,
		"sparse":   sparse,
		"ring":     rb.Build(),
		"tiny":     tiny.Build(),
		"isolated": single.Build(),
	}
}

// TestDistEngineMatchesLegacyPLL pins DistEngine answers over the PLL slab
// byte-identical to PLLDecoder.Dist for every vertex pair, across worker
// counts and layouts.
func TestDistEngineMatchesLegacyPLL(t *testing.T) {
	for name, g := range slabTestGraphs(t) {
		legacy, err := PLLScheme{}.Encode(g)
		if err != nil {
			t.Fatalf("%s: legacy encode: %v", name, err)
		}
		for _, workers := range []int{1, 3} {
			for _, lay := range []core.Layout{core.LayoutID, core.LayoutDegree} {
				arena, err := PLLScheme{}.EncodeArena(g, workers, lay)
				if err != nil {
					t.Fatalf("%s w=%d lay=%v: EncodeArena: %v", name, workers, lay, err)
				}
				eng, err := core.NewDistEngine(arena)
				if err != nil {
					t.Fatalf("%s w=%d lay=%v: NewDistEngine: %v", name, workers, lay, err)
				}
				n := g.N()
				for u := 0; u < n; u++ {
					for v := 0; v < n; v++ {
						want, err := legacy.Dist(u, v)
						if err != nil {
							t.Fatalf("legacy Dist(%d,%d): %v", u, v, err)
						}
						got, err := eng.Dist(u, v)
						if err != nil {
							t.Fatalf("engine Dist(%d,%d): %v", u, v, err)
						}
						if got != want {
							t.Fatalf("%s w=%d lay=%v: Dist(%d,%d) = %d, legacy %d", name, workers, lay, u, v, got, want)
						}
					}
				}
			}
		}
	}
}

// TestDistEngineMatchesLegacyBounded pins the bounded-distance engine to
// Decoder.Dist, and additionally asserts the slab labels are bit-for-bit
// the legacy labels (the bdist layout is unchanged, only the container is).
func TestDistEngineMatchesLegacyBounded(t *testing.T) {
	for name, g := range slabTestGraphs(t) {
		for _, f := range []int{2, 4} {
			s := Scheme{Alpha: 2.5, F: f}
			legacy, err := s.Encode(g)
			if err != nil {
				t.Fatalf("%s f=%d: legacy encode: %v", name, f, err)
			}
			for _, workers := range []int{1, 4} {
				for _, lay := range []core.Layout{core.LayoutID, core.LayoutDegree} {
					arena, err := s.EncodeArena(g, workers, lay)
					if err != nil {
						t.Fatalf("%s f=%d w=%d lay=%v: EncodeArena: %v", name, f, workers, lay, err)
					}
					views, err := bitstr.SlabViewsPermuted(arena.Slab, arena.BitLens, arena.Order)
					if err != nil {
						t.Fatalf("%s f=%d: views: %v", name, f, err)
					}
					for v := 0; v < g.N(); v++ {
						want, err := legacy.Label(v)
						if err != nil {
							t.Fatal(err)
						}
						if !views[v].Equal(want) {
							t.Fatalf("%s f=%d w=%d lay=%v: label %d differs from legacy", name, f, workers, lay, v)
						}
					}
					eng, err := core.NewDistEngine(arena)
					if err != nil {
						t.Fatalf("%s f=%d w=%d lay=%v: NewDistEngine: %v", name, f, workers, lay, err)
					}
					n := g.N()
					for u := 0; u < n; u++ {
						for v := 0; v < n; v++ {
							want, err := legacy.Dist(u, v)
							if err != nil {
								t.Fatalf("legacy Dist(%d,%d): %v", u, v, err)
							}
							got, err := eng.Dist(u, v)
							if err != nil {
								t.Fatalf("engine Dist(%d,%d): %v", u, v, err)
							}
							if got != want {
								t.Fatalf("%s f=%d w=%d lay=%v: Dist(%d,%d) = %d, legacy %d", name, f, workers, lay, u, v, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestDistEngineBatchesMatchSingle pins DistMany, DistManySorted and
// DistManyParallel to the single-query path, result cache on and off.
func TestDistEngineBatchesMatchSingle(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(400, 2.5, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		arena func() (*core.DistArena, error)
	}{
		{"pll", func() (*core.DistArena, error) { return PLLScheme{}.EncodeArena(g, 0, core.LayoutDegree) }},
		{"bdist", func() (*core.DistArena, error) {
			return Scheme{Alpha: 2.5, F: 3}.EncodeArena(g, 0, core.LayoutDegree)
		}},
	} {
		arena, err := tc.arena()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		eng, err := core.NewDistEngine(arena)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, cacheBits := range []int{0, 10} {
			if err := eng.EnableResultCache(cacheBits); err != nil {
				t.Fatal(err)
			}
			pairs := make([][2]int, 0, 4096)
			x := uint64(88172645463325252)
			for i := 0; i < 4096; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				u := int(x % uint64(g.N()))
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				pairs = append(pairs, [2]int{u, int(x % uint64(g.N()))})
			}
			want := make([]int, len(pairs))
			for i, p := range pairs {
				if want[i], err = eng.Dist(p[0], p[1]); err != nil {
					t.Fatal(err)
				}
			}
			check := func(label string, got []int, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s cache=%d %s: %v", tc.name, cacheBits, label, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s cache=%d %s: pair %d = %d, want %d", tc.name, cacheBits, label, i, got[i], want[i])
					}
				}
			}
			got, err := eng.DistMany(pairs, nil)
			check("DistMany", got, err)
			var sc core.BatchScratch
			got, err = eng.DistManySorted(pairs, nil, &sc)
			check("DistManySorted", got, err)
			got, err = eng.DistManyParallel(pairs, nil, 4)
			check("DistManyParallel", got, err)
		}
	}
}

// TestDistEngineZeroAlloc is the CI allocation gate: the single-query and
// batch distance paths must not allocate.
func TestDistEngineZeroAlloc(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(1000, 2.5, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		arena func() (*core.DistArena, error)
	}{
		{"pll", func() (*core.DistArena, error) { return PLLScheme{}.EncodeArena(g, 0, core.LayoutDegree) }},
		{"bdist", func() (*core.DistArena, error) {
			return Scheme{Alpha: 2.5, F: 3}.EncodeArena(g, 0, core.LayoutDegree)
		}},
	} {
		arena, err := tc.arena()
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewDistEngine(arena)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.EnableResultCache(8); err != nil {
			t.Fatal(err)
		}
		pairs := make([][2]int, 512)
		for i := range pairs {
			pairs[i] = [2]int{(i * 37) % g.N(), (i * 101) % g.N()}
		}
		out := make([]int, 0, len(pairs))
		var sc core.BatchScratch
		if _, err := eng.DistManySorted(pairs, out, &sc); err != nil {
			t.Fatal(err) // warm the scratch outside the measured runs
		}
		if avg := testing.AllocsPerRun(10, func() {
			if _, err := eng.Dist(pairs[0][0], pairs[0][1]); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: Dist allocates %.1f/op", tc.name, avg)
		}
		if avg := testing.AllocsPerRun(10, func() {
			if _, err := eng.DistMany(pairs, out[:0]); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: DistMany allocates %.1f/op", tc.name, avg)
		}
		if avg := testing.AllocsPerRun(10, func() {
			if _, err := eng.DistManySorted(pairs, out[:0], &sc); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: DistManySorted allocates %.1f/op", tc.name, avg)
		}
	}
}

// benchDistEngine builds a PLL engine over a mid-size power-law graph.
func benchDistEngine(b *testing.B, kind string) (*core.DistEngine, [][2]int) {
	b.Helper()
	g, err := gen.ChungLuPowerLaw(1<<13, 2.5, 3, 17)
	if err != nil {
		b.Fatal(err)
	}
	var arena *core.DistArena
	switch kind {
	case "pll":
		arena, err = PLLScheme{}.EncodeArena(g, 0, core.LayoutDegree)
	case "bdist":
		arena, err = Scheme{Alpha: 2.5, F: 4}.EncodeArena(g, 0, core.LayoutDegree)
	}
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewDistEngine(arena)
	if err != nil {
		b.Fatal(err)
	}
	pairs := make([][2]int, 4096)
	x := uint64(2463534242)
	for i := range pairs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		u := int(x % uint64(g.N()))
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pairs[i] = [2]int{u, int(x % uint64(g.N()))}
	}
	return eng, pairs
}

// BenchmarkDistEngineDist measures the single-query hot path; CI asserts
// 0 B/op, 0 allocs/op.
func BenchmarkDistEngineDist(b *testing.B) {
	for _, kind := range []string{"pll", "bdist"} {
		b.Run(kind, func(b *testing.B) {
			eng, pairs := benchDistEngine(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i&4095]
				if _, err := eng.Dist(p[0], p[1]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistEngineDistMany measures the batch path at batch 4096; CI
// asserts 0 B/op, 0 allocs/op.
func BenchmarkDistEngineDistMany(b *testing.B) {
	for _, kind := range []string{"pll", "bdist"} {
		b.Run(kind, func(b *testing.B) {
			eng, pairs := benchDistEngine(b, kind)
			out := make([]int, 0, len(pairs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if out, err = eng.DistMany(pairs, out[:0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistEngineDistManySorted measures the offset-sorted batch path;
// CI asserts 0 B/op, 0 allocs/op.
func BenchmarkDistEngineDistManySorted(b *testing.B) {
	for _, kind := range []string{"pll", "bdist"} {
		b.Run(kind, func(b *testing.B) {
			eng, pairs := benchDistEngine(b, kind)
			out := make([]int, 0, len(pairs))
			var sc core.BatchScratch
			var err error
			if out, err = eng.DistManySorted(pairs, out[:0], &sc); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out, err = eng.DistManySorted(pairs, out[:0], &sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistEncodeArena compares slab-pipeline encode throughput against
// the legacy Builder-based PLL encoder (the E27 encode column).
func BenchmarkDistEncodeArena(b *testing.B) {
	g, err := gen.ChungLuPowerLaw(1<<13, 2.5, 3, 17)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pll-arena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (PLLScheme{}).EncodeArena(g, 0, core.LayoutID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pll-legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (PLLScheme{}).Encode(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}
