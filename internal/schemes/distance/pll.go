package distance

import (
	"fmt"
	"sort"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// PLLScheme is pruned landmark labeling (Akiba–Iwata–Yoshida), the standard
// practical exact distance labeling for small-world graphs. It stands in
// for the "competing labeling schemes" of Section 7 (Alstrup et al. /
// Gawrychowski et al. target the same exact-distance regime; see DESIGN.md
// for the substitution note): landmarks are processed in decreasing-degree
// order — which is precisely what makes PLL effective on power-law graphs,
// where a few hubs cover most shortest paths — and each BFS is pruned
// wherever existing labels already certify the distance.
//
// Unlike Lemma 7's scheme, PLL answers *every* distance exactly; the E5
// comparison measures what Lemma 7's f-bounded contract buys in label size.
type PLLScheme struct{}

// Name identifies the scheme in experiment output.
func (PLLScheme) Name() string { return "dist-pll" }

// Encode builds pruned landmark labels for g.
//
// Label layout (w = ceil(log2 n), dw sized to the largest stored distance):
//
//	[own id: w][entry count: w][rank: w, dist: dw] × count
//
// Entries are sorted by landmark rank, enabling merge-scan queries. The
// pruned BFS sweep itself is shared with the slab encoder (pllEntries,
// slab.go), so the legacy and arena paths label from identical entry lists.
func (s PLLScheme) Encode(g *graph.Graph) (*PLLLabeling, error) {
	n := g.N()
	entries, maxDist, _ := pllEntries(g)

	w := bitstr.WidthFor(uint64(n))
	if w == 0 {
		w = 1
	}
	wCnt := bitstr.WidthFor(uint64(n) + 1) // entry counts range over [0, n]
	if wCnt == 0 {
		wCnt = 1
	}
	dw := bitstr.WidthFor(uint64(maxDist) + 2)
	if dw == 0 {
		dw = 1
	}
	labels := make([]bitstr.String, n)
	var b bitstr.Builder
	for v := 0; v < n; v++ {
		b.Reset()
		b.AppendUint(uint64(v), w)
		b.AppendUint(uint64(len(entries[v])), wCnt)
		// Entries were appended in increasing rank order already; assert it
		// cheaply in sorted order for safety.
		es := entries[v]
		sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
		for _, e := range es {
			b.AppendUint(uint64(e.ID), w)
			b.AppendUint(uint64(e.D), dw)
		}
		labels[v] = b.String()
	}
	return &PLLLabeling{labels: labels, dec: &PLLDecoder{n: n, w: w, wCnt: wCnt, dw: dw}}, nil
}

// PLLLabeling holds pruned landmark labels.
type PLLLabeling struct {
	labels []bitstr.String
	dec    *PLLDecoder
}

// N returns the number of labeled vertices.
func (l *PLLLabeling) N() int { return len(l.labels) }

// Label returns vertex v's label.
func (l *PLLLabeling) Label(v int) (bitstr.String, error) {
	if v < 0 || v >= len(l.labels) {
		return bitstr.String{}, fmt.Errorf("distance: vertex %d of %d", v, len(l.labels))
	}
	return l.labels[v], nil
}

// DistLabels answers a query directly from two raw labels.
func (l *PLLLabeling) DistLabels(a, b bitstr.String) (int, error) {
	return l.dec.Dist(a, b)
}

// Dist answers an exact distance query from the two labels
// (graph.Unreachable for disconnected pairs).
func (l *PLLLabeling) Dist(u, v int) (int, error) {
	lu, err := l.Label(u)
	if err != nil {
		return 0, err
	}
	lv, err := l.Label(v)
	if err != nil {
		return 0, err
	}
	return l.dec.Dist(lu, lv)
}

// Stats reports label-size statistics in bits.
func (l *PLLLabeling) Stats() (min, max int, mean float64) {
	if len(l.labels) == 0 {
		return 0, 0, 0
	}
	min = l.labels[0].Len()
	var total int64
	for _, s := range l.labels {
		n := s.Len()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
		total += int64(n)
	}
	return min, max, float64(total) / float64(len(l.labels))
}

// PLLDecoder answers exact distance queries over PLL labels.
type PLLDecoder struct {
	n, w, wCnt, dw int
}

type pllParsed struct {
	id    uint64
	count int
	body  int
	s     bitstr.String
}

func (d *PLLDecoder) parse(s bitstr.String) (pllParsed, error) {
	r := bitstr.NewReader(s)
	id, err := r.ReadUint(d.w)
	if err != nil {
		return pllParsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	cnt, err := r.ReadUint(d.wCnt)
	if err != nil {
		return pllParsed{}, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	body := d.w + d.wCnt
	if want := body + int(cnt)*(d.w+d.dw); s.Len() != want {
		return pllParsed{}, fmt.Errorf("%w: pll label of %d bits, want %d", ErrBadLabel, s.Len(), want)
	}
	return pllParsed{id: id, count: int(cnt), body: body, s: s}, nil
}

// Dist merges the two sorted landmark lists and returns the minimum summed
// distance (graph.Unreachable when the lists share no landmark).
func (d *PLLDecoder) Dist(a, b bitstr.String) (int, error) {
	pa, err := d.parse(a)
	if err != nil {
		return 0, err
	}
	pb, err := d.parse(b)
	if err != nil {
		return 0, err
	}
	if pa.id == pb.id {
		return 0, nil
	}
	ra := bitstr.NewReader(pa.s)
	rb := bitstr.NewReader(pb.s)
	if err := ra.Seek(pa.body); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	if err := rb.Seek(pb.body); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
	}
	const inf = 1 << 30
	best := inf
	i, j := 0, 0
	var (
		rankA, distA uint64
		rankB, distB uint64
		haveA, haveB bool
	)
	for i < pa.count || j < pb.count {
		if !haveA && i < pa.count {
			if rankA, err = ra.ReadUint(d.w); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
			}
			if distA, err = ra.ReadUint(d.dw); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
			}
			haveA = true
		}
		if !haveB && j < pb.count {
			if rankB, err = rb.ReadUint(d.w); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
			}
			if distB, err = rb.ReadUint(d.dw); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrBadLabel, err)
			}
			haveB = true
		}
		switch {
		case !haveA:
			j = pb.count // A exhausted: no more common landmarks
		case !haveB:
			i = pa.count
		case rankA == rankB:
			if s := int(distA + distB); s < best {
				best = s
			}
			haveA, haveB = false, false
			i++
			j++
		case rankA < rankB:
			haveA = false
			i++
		default:
			haveB = false
			j++
		}
	}
	if best == inf {
		return graph.Unreachable, nil
	}
	return best, nil
}
