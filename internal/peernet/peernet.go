// Package peernet simulates the paper's deployment model — "disseminate the
// structural information of the graph to its vertices and store it locally"
// — with exact communication accounting. Every vertex is a peer holding
// only its own label; a query coordinator fetches the labels it needs and
// runs the decoder. The package measures what the paper's schemes actually
// trade: the 2-label schemes move two potentially large labels per query,
// while the 1-query scheme moves three tiny ones (experiment E16).
package peernet

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schemes/onequery"
)

// ErrUnknownPeer is returned when a label is requested for a vertex that
// does not exist.
var ErrUnknownPeer = errors.New("peernet: unknown peer")

// requestBytes models the size of a label request (vertex id + framing).
const requestBytes = 8

// responseOverheadBytes models per-response framing.
const responseOverheadBytes = 8

// Stats counts traffic through the network.
type Stats struct {
	Messages int64 // requests + responses
	Bytes    int64 // total bytes on the wire
	Fetches  int64 // label fetches (request/response pairs)
}

// Traffic is the set of atomic wire-accounting counters behind Stats. It is
// exported so that real serving paths (internal/adjserve charges one
// request/response pair and the answered query count per frame) account
// traffic with the same units as the peer-to-peer simulation, making E16/E23
// bytes-per-query columns directly comparable. The zero value is ready to
// use; all methods are safe for concurrent callers.
type Traffic struct {
	msgs  atomic.Int64
	bytes atomic.Int64
	fetch atomic.Int64
}

// Charge adds msgs messages, bytes wire bytes and fetches label fetches (or,
// for a query server, answered queries) to the counters.
func (t *Traffic) Charge(msgs, bytes, fetches int64) {
	t.msgs.Add(msgs)
	t.bytes.Add(bytes)
	t.fetch.Add(fetches)
}

// Stats returns a snapshot of the counters. Each counter is read atomically;
// a snapshot taken while traffic is in flight is consistent per counter, not
// across counters.
func (t *Traffic) Stats() Stats {
	return Stats{
		Messages: t.msgs.Load(),
		Bytes:    t.bytes.Load(),
		Fetches:  t.fetch.Load(),
	}
}

// Reset zeroes the counters.
func (t *Traffic) Reset() {
	t.msgs.Store(0)
	t.bytes.Store(0)
	t.fetch.Store(0)
}

// Register bridges the traffic atomics into an obs.Registry as counter
// funcs under prefix — the same counters back both the exposition and
// Stats, never a duplicated tally. Reset makes the exposed series
// non-monotone, so daemons that register the counters should not Reset
// mid-flight (experiments that Reset between sweeps never register).
func (t *Traffic) Register(reg *obs.Registry, prefix string) {
	reg.CounterFunc(prefix+"_messages_total",
		"Protocol messages (requests + responses) in peernet accounting units.", t.msgs.Load)
	reg.CounterFunc(prefix+"_bytes_total",
		"Wire bytes in the request/response framing units shared with the E16 simulation.", t.bytes.Load)
	reg.CounterFunc(prefix+"_fetches_total",
		"Label fetches, or answered queries for a serving-tier Traffic.", t.fetch.Load)
}

// Network is a fleet of peers, each holding one label. Fetch and the stats
// accessors are safe for concurrent use: coordinators answering a query
// stream from many goroutines (e.g. AdjacentManyParallel over a service)
// share one network, so the traffic counters are atomics.
type Network struct {
	labels  []bitstr.String
	traffic Traffic
}

// New builds a network from per-vertex labels (peer v holds labels[v]).
func New(labels []bitstr.String) *Network {
	return &Network{labels: labels}
}

// N returns the number of peers.
func (n *Network) N() int { return len(n.labels) }

// Fetch retrieves peer v's label, charging the request/response traffic.
// Safe for concurrent callers.
func (n *Network) Fetch(v int) (bitstr.String, error) {
	if v < 0 || v >= len(n.labels) {
		return bitstr.String{}, fmt.Errorf("%w: %d of %d", ErrUnknownPeer, v, len(n.labels))
	}
	l := n.labels[v]
	n.traffic.Charge(2, requestBytes+responseOverheadBytes+int64(l.SizeBytes()), 1)
	return l, nil
}

// Stats returns the accumulated traffic counters. Each counter is read
// atomically; a snapshot taken while fetches are in flight is consistent per
// counter, not across counters.
func (n *Network) Stats() Stats { return n.traffic.Stats() }

// ResetStats zeroes the traffic counters.
func (n *Network) ResetStats() { n.traffic.Reset() }

// TwoLabelService answers adjacency queries by fetching both endpoint
// labels and running a standard two-label decoder.
type TwoLabelService struct {
	Net *Network
	Dec core.AdjacencyDecoder
}

// Adjacent resolves the query over the network.
func (s *TwoLabelService) Adjacent(u, v int) (bool, error) {
	lu, err := s.Net.Fetch(u)
	if err != nil {
		return false, err
	}
	lv, err := s.Net.Fetch(v)
	if err != nil {
		return false, err
	}
	return s.Dec.Adjacent(lu, lv)
}

// AdjacentMany resolves a batch of queries, fetching each distinct endpoint
// label at most once per batch: the coordinator caches labels for the
// duration of the call, so a batch touching d distinct vertices costs d
// fetches instead of 2·len(pairs). One result per pair is appended to out.
func (s *TwoLabelService) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	cache := make(map[int]bitstr.String, 2*len(pairs))
	fetch := func(v int) (bitstr.String, error) {
		if l, ok := cache[v]; ok {
			return l, nil
		}
		l, err := s.Net.Fetch(v)
		if err != nil {
			return bitstr.String{}, err
		}
		cache[v] = l
		return l, nil
	}
	for _, p := range pairs {
		lu, err := fetch(p[0])
		if err != nil {
			return out, err
		}
		lv, err := fetch(p[1])
		if err != nil {
			return out, err
		}
		ok, err := s.Dec.Adjacent(lu, lv)
		if err != nil {
			return out, fmt.Errorf("peernet: query (%d,%d): %w", p[0], p[1], err)
		}
		out = append(out, ok)
	}
	return out, nil
}

// EngineService is the heavy-traffic coordinator for fat/thin labelings: it
// pulls every label exactly once (traffic charged to the network, the
// dissemination cost of Section 1) and then serves adjacency queries
// locally through a zero-allocation core.QueryEngine — the deployment shape
// where one replica absorbs a query stream instead of re-fetching labels
// per query.
type EngineService struct {
	Engine *core.QueryEngine
}

// NewEngineService fetches all labels from the network and builds the local
// query engine over them.
func NewEngineService(net *Network) (*EngineService, error) {
	labels := make([]bitstr.String, net.N())
	for v := range labels {
		l, err := net.Fetch(v)
		if err != nil {
			return nil, err
		}
		labels[v] = l
	}
	eng, err := core.NewQueryEngineFromLabels(labels)
	if err != nil {
		return nil, err
	}
	return &EngineService{Engine: eng}, nil
}

// Adjacent answers from the local engine; no network traffic.
func (s *EngineService) Adjacent(u, v int) (bool, error) {
	return s.Engine.Adjacent(u, v)
}

// AdjacentMany answers a batch from the local engine; no network traffic.
func (s *EngineService) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	return s.Engine.AdjacentMany(pairs, out)
}

// OneQueryService answers adjacency queries with the Section 6 protocol:
// fetch both endpoint labels, then let the decoder fetch the single extra
// label it needs.
type OneQueryService struct {
	Net *Network
	Dec *onequery.Decoder
}

// Adjacent resolves the query over the network (at most 3 fetches).
func (s *OneQueryService) Adjacent(u, v int) (bool, error) {
	lu, err := s.Net.Fetch(u)
	if err != nil {
		return false, err
	}
	lv, err := s.Net.Fetch(v)
	if err != nil {
		return false, err
	}
	return s.Dec.Adjacent(lu, lv, s.Net.Fetch)
}

// LabelsOf extracts the per-vertex labels from a core.Labeling for network
// construction.
func LabelsOf(lab *core.Labeling) ([]bitstr.String, error) {
	out := make([]bitstr.String, lab.N())
	for v := 0; v < lab.N(); v++ {
		l, err := lab.Label(v)
		if err != nil {
			return nil, err
		}
		out[v] = l
	}
	return out, nil
}
