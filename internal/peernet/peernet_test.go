package peernet

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/schemes/onequery"
)

func TestFetchAccounting(t *testing.T) {
	g := gen.Path(4)
	lab, err := core.NewSparseScheme(1).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelsOf(lab)
	if err != nil {
		t.Fatal(err)
	}
	net := New(labels)
	if net.N() != 4 {
		t.Fatalf("N = %d", net.N())
	}
	l, err := net.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Fetches != 1 || st.Messages != 2 {
		t.Errorf("stats = %+v", st)
	}
	wantBytes := int64(requestBytes + responseOverheadBytes + l.SizeBytes())
	if st.Bytes != wantBytes {
		t.Errorf("Bytes = %d, want %d", st.Bytes, wantBytes)
	}
	net.ResetStats()
	if net.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestFetchUnknownPeer(t *testing.T) {
	net := New(nil)
	if _, err := net.Fetch(0); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
	if _, err := net.Fetch(-1); !errors.Is(err, ErrUnknownPeer) {
		t.Errorf("err = %v", err)
	}
}

func TestTwoLabelServiceCorrect(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.12, 3)
	lab, err := core.NewSparseSchemeAuto().Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelsOf(lab)
	if err != nil {
		t.Fatal(err)
	}
	net := New(labels)
	svc := &TwoLabelService{Net: net, Dec: core.NewFatThinDecoder(g.N())}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			got, err := svc.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("(%d,%d) wrong over the network", u, v)
			}
		}
	}
	// Exactly two fetches per query.
	queries := int64(g.N() * (g.N() - 1) / 2)
	if st := net.Stats(); st.Fetches != 2*queries {
		t.Errorf("Fetches = %d, want %d", st.Fetches, 2*queries)
	}
}

func TestOneQueryServiceCorrectAndBounded(t *testing.T) {
	g := gen.ErdosRenyi(50, 0.15, 5)
	enc, err := (onequery.Scheme{Seed: 5}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelsOf(enc.Labeling)
	if err != nil {
		t.Fatal(err)
	}
	net := New(labels)
	svc := &OneQueryService{Net: net, Dec: enc.Dec}
	queries := 0
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			got, err := svc.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("(%d,%d) wrong over the network", u, v)
			}
			queries++
		}
	}
	st := net.Stats()
	if st.Fetches != int64(3*queries) {
		t.Errorf("Fetches = %d, want exactly 3 per query (%d)", st.Fetches, 3*queries)
	}
}

func TestOneQueryMovesFewerBytesOnHubGraphs(t *testing.T) {
	// The E16 claim in miniature: on a power-law graph large enough for
	// fat/thin labels to grow, the 1-query protocol's three tiny labels
	// move fewer bytes than the 2-label protocol's two big ones — for
	// queries touching fat vertices.
	g, err := gen.ChungLuPowerLaw(20000, 2.3, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	twoLab, err := core.NewPowerLawSchemeAuto().Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	twoLabels, err := LabelsOf(twoLab)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := (onequery.Scheme{Seed: 7}).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	oneLabels, err := LabelsOf(enc.Labeling)
	if err != nil {
		t.Fatal(err)
	}

	twoNet := New(twoLabels)
	oneNet := New(oneLabels)
	twoSvc := &TwoLabelService{Net: twoNet, Dec: core.NewFatThinDecoder(g.N())}
	oneSvc := &OneQueryService{Net: oneNet, Dec: enc.Dec}

	// Query the hub (vertex ids don't order by degree; find the max-degree
	// vertex) against a spread of partners.
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	for v := 0; v < g.N(); v += 100 {
		if v == hub {
			continue
		}
		a, err := twoSvc.Adjacent(hub, v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oneSvc.Adjacent(hub, v)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("services disagree at (%d,%d)", hub, v)
		}
	}
	if oneNet.Stats().Bytes >= twoNet.Stats().Bytes {
		t.Errorf("1-query moved %d bytes, 2-label moved %d — expected 1-query to win on hub queries",
			oneNet.Stats().Bytes, twoNet.Stats().Bytes)
	}
}

// TestAdjacentManyDedupsFetches: a batch touching d distinct vertices must
// cost exactly d fetches, not 2 per pair, and must agree with the
// pair-at-a-time service.
func TestAdjacentManyDedupsFetches(t *testing.T) {
	g := gen.ErdosRenyi(40, 0.15, 6)
	lab, err := core.NewSparseSchemeAuto().Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelsOf(lab)
	if err != nil {
		t.Fatal(err)
	}
	net := New(labels)
	svc := &TwoLabelService{Net: net, Dec: lab.Decoder()}
	// Every pair touches vertex 0: 10 pairs, 11 distinct vertices.
	var pairs [][2]int
	distinct := map[int]bool{0: true}
	for v := 1; v <= 10; v++ {
		pairs = append(pairs, [2]int{0, v})
		distinct[v] = true
	}
	out, err := svc.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := net.Stats().Fetches, int64(len(distinct)); got != want {
		t.Errorf("batch fetches = %d, want %d", got, want)
	}
	for i, p := range pairs {
		want, err := svc.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Errorf("AdjacentMany[%d] = %v, want %v", i, out[i], want)
		}
	}
}

// TestEngineService: the engine coordinator pays n fetches once, then
// serves every query locally with answers identical to the two-label
// service.
func TestEngineService(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.12, 8)
	lab, err := core.NewSparseSchemeAuto().Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelsOf(lab)
	if err != nil {
		t.Fatal(err)
	}
	net := New(labels)
	svc, err := NewEngineService(net)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := net.Stats().Fetches, int64(g.N()); got != want {
		t.Fatalf("dissemination fetches = %d, want %d", got, want)
	}
	net.ResetStats()
	ref := &TwoLabelService{Net: net, Dec: lab.Decoder()}
	var pairs [][2]int
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	refStats := net.Stats() // zero
	_ = refStats
	for _, p := range pairs {
		want, err := ref.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("engine (%d,%d) = %v, want %v", p[0], p[1], got, want)
		}
	}
	fetchesAfterRef := net.Stats().Fetches
	out, err := svc.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if net.Stats().Fetches != fetchesAfterRef {
		t.Error("engine batch touched the network")
	}
	for i, p := range pairs {
		if got := out[i]; got != g.HasEdge(p[0], p[1]) {
			t.Fatalf("engine batch (%d,%d) = %v, want %v", p[0], p[1], got, g.HasEdge(p[0], p[1]))
		}
	}
}

// TestConcurrentFetchStats hammers one network from many goroutines and
// checks the counters land on exact totals — under -race this also proves
// Fetch/Stats/ResetStats are data-race free (the coordinator shape of
// AdjacentManyParallel over a shared network).
func TestConcurrentFetchStats(t *testing.T) {
	g := gen.ErdosRenyi(32, 0.2, 9)
	lab, err := core.NewSparseScheme(1).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := LabelsOf(lab)
	if err != nil {
		t.Fatal(err)
	}
	net := New(labels)
	const (
		goroutines = 8
		perG       = 500
	)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if _, err := net.Fetch((i + j) % net.N()); err != nil {
					errs[i] = err
					return
				}
				_ = net.Stats() // concurrent reader of the counters
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := net.Stats()
	const total = goroutines * perG
	if st.Fetches != total || st.Messages != 2*total {
		t.Errorf("stats = %+v, want %d fetches", st, total)
	}
	// Replay the deterministic fetch sequence to get the exact byte total.
	var want int64
	for i := 0; i < goroutines; i++ {
		for j := 0; j < perG; j++ {
			v := (i + j) % net.N()
			want += requestBytes + responseOverheadBytes + int64(labels[v].SizeBytes())
		}
	}
	if st.Bytes != want {
		t.Errorf("Bytes = %d, want %d", st.Bytes, want)
	}
	net.ResetStats()
	if net.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}
