package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
)

// ioWorkerCounts is the invariance matrix for the parallel I/O paths.
var ioWorkerCounts = []int{1, 2, 7, runtime.GOMAXPROCS(0)}

// buildLarge returns a random graph big enough to span several read blocks
// when serialized, exercising real chunking.
func buildLarge(t *testing.T, n, count int, seed int64) *Graph {
	t.Helper()
	eb := NewEdgeBuilder(n, 1)
	eb.Shard(0).AddEdges(randomEdges(n, count, seed))
	return eb.Build(1)
}

func TestWriteEdgeListParallelMatchesSequential(t *testing.T) {
	g := buildLarge(t, 2000, 30000, 1)
	var want bytes.Buffer
	if err := g.WriteEdgeList(&want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range ioWorkerCounts {
		var got bytes.Buffer
		if err := g.WriteEdgeListParallel(&got, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("workers=%d: parallel bytes differ from sequential", workers)
		}
	}
}

func TestReadEdgeListParallelMatchesSequential(t *testing.T) {
	g := buildLarge(t, 3000, 40000, 2)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range ioWorkerCounts {
		got, err := ReadEdgeListParallel(bytes.NewReader(data), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !EqualGraph(g, got) {
			t.Errorf("workers=%d: parsed graph differs", workers)
		}
	}
}

// TestReadEdgeListParallelSemantics re-runs the sequential reader's edge
// cases through the block parser: comments, blank lines, missing header,
// self-loops, missing trailing newline.
func TestReadEdgeListParallelSemantics(t *testing.T) {
	cases := []struct {
		name string
		in   string
		n, m int
	}{
		{"no header", "0 1\n1 2\n", 3, 2},
		{"comments and blanks", "# a comment\n\n0 1\n# another\n2 3\n", 4, 2},
		{"self-loops dropped", "0 0\n0 1\n", 2, 1},
		{"isolated via header", "# n 5 m 1\n0 1\n", 5, 1},
		{"no trailing newline", "0 1\n1 2", 3, 2},
		{"self-loop extends range", "2 2\n0 1\n", 3, 1},
	}
	for _, tc := range cases {
		seq, err := ReadEdgeList(strings.NewReader(tc.in))
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		par, err := ReadEdgeListParallel(strings.NewReader(tc.in), 4)
		if err != nil {
			t.Fatalf("%s: parallel: %v", tc.name, err)
		}
		if par.N() != tc.n || par.M() != tc.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d", tc.name, par.N(), par.M(), tc.n, tc.m)
		}
		if !EqualGraph(seq, par) {
			t.Errorf("%s: parallel differs from sequential", tc.name)
		}
	}
}

func TestReadEdgeListParallelErrors(t *testing.T) {
	cases := []string{
		"0\n",              // too few fields
		"a b\n",            // non-numeric
		"0 -2\n",           // negative
		"# n 2 m 1\n0 5\n", // ID exceeds declared n
	}
	for _, in := range cases {
		if _, err := ReadEdgeListParallel(strings.NewReader(in), 4); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

// errWriter fails once the byte budget would be exceeded, covering the
// parallel writer's error-drain path.
type errWriter struct{ budget int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.budget < len(p) {
		return 0, errors.New("sink full")
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestWriteEdgeListParallelPropagatesError(t *testing.T) {
	g := buildLarge(t, 20000, 150000, 3)
	if err := g.WriteEdgeListParallel(&errWriter{budget: 1 << 12}, 4); err == nil {
		t.Error("write error not propagated")
	}
}

// TestEdgeListParallelRoundTripLarge pushes a serialization across the
// readBlockSize boundary so the parallel reader splits into multiple
// blocks.
func TestEdgeListParallelRoundTripLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large round-trip")
	}
	const n = 200000
	rng := rand.New(rand.NewSource(7))
	eb := NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for i := 0; i < 600000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			s.Add(int32(u), int32(v))
		}
	}
	g := eb.Build(4)
	var buf bytes.Buffer
	if err := g.WriteEdgeListParallel(&buf, 4); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < readBlockSize {
		t.Fatalf("fixture too small to span blocks: %d bytes", buf.Len())
	}
	got, err := ReadEdgeListParallel(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualGraph(g, got) {
		t.Error("large round-trip differs")
	}
}
