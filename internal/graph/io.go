package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain-text edge-list format:
// a header line "# n <vertices> m <edges>" followed by one "u v" pair per
// line with u < v. The format round-trips through ReadEdgeList.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# n %d m %d\n", g.n, g.M()); err != nil {
		return err
	}
	var werr error
	// One reused scratch buffer per call: AppendInt formats in place, so the
	// edge loop allocates nothing.
	buf := make([]byte, 0, 2*strconv.IntSize/3+2)
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		buf = strconv.AppendInt(buf[:0], int64(u), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			werr = err
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the header, and blank lines, are ignored. If no header
// is present, the vertex count is inferred as max ID + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := -1
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn, hm int
			if _, err := fmt.Sscanf(line, "# n %d m %d", &hn, &hm); err == nil {
				n = hn
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two vertex IDs, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex ID", lineNo)
		}
		if u > maxVertexID || v > maxVertexID {
			return nil, fmt.Errorf("graph: line %d: vertex ID exceeds int32 range", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		if u != v { // tolerate self-loops in external data by dropping them
			edges = append(edges, Edge{int32(u), int32(v)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	if n < 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return nil, fmt.Errorf("graph: vertex ID %d exceeds declared n=%d", maxID, n)
	}
	eb := NewEdgeBuilder(n, 1)
	eb.Shard(0).AddEdges(edges)
	return eb.Build(1), nil
}
