package graph

import "math"

// MeanDegree returns 2m/n (0 for the empty graph).
func (g *Graph) MeanDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.n)
}

// Triangles returns the number of triangles in g, counted once each, by
// intersecting sorted adjacency lists along each edge's higher-degree
// endpoint. Runs in O(m·α) where α is the arboricity-ish density; intended
// for analysis, not hot paths.
func (g *Graph) Triangles() int64 {
	var count int64
	g.Edges(func(u, v int) {
		// Count common neighbors w > v to count each triangle once
		// (u < v < w ordering).
		nu, nv := g.Neighbors(u), g.Neighbors(v)
		i := upperBound(nu, int32(v))
		j := upperBound(nv, int32(v))
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] == nv[j]:
				count++
				i++
				j++
			case nu[i] < nv[j]:
				i++
			default:
				j++
			}
		}
	})
	return count
}

// upperBound returns the first index with lst[i] > x (lst sorted).
func upperBound(lst []int32, x int32) int {
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if lst[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// GlobalClustering returns the transitivity 3·triangles / #open-triads
// (0 when the graph has no path of length two). Power-law graphs from
// Chung–Lu have vanishing clustering; real social networks do not — a
// standard diagnostic when deciding whether a model workload is adequate.
func (g *Graph) GlobalClustering() float64 {
	var triads int64
	for v := 0; v < g.n; v++ {
		d := int64(g.Degree(v))
		triads += d * (d - 1) / 2
	}
	if triads == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(triads)
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r). Power-law networks built by preferential attachment
// are close to neutral; social networks are assortative (r > 0),
// technological ones disassortative (r < 0). Returns 0 for graphs with no
// edges or zero degree variance.
func (g *Graph) DegreeAssortativity() float64 {
	m := g.M()
	if m == 0 {
		return 0
	}
	// Sums over edge endpoint pairs (each edge contributes (du,dv) once;
	// the symmetric formula uses (du+dv)/2 and (du²+dv²)/2 per edge).
	var sumProd, sumHalf, sumHalfSq float64
	g.Edges(func(u, v int) {
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		sumProd += du * dv
		sumHalf += (du + dv) / 2
		sumHalfSq += (du*du + dv*dv) / 2
	})
	mf := float64(m)
	num := sumProd/mf - (sumHalf/mf)*(sumHalf/mf)
	den := sumHalfSq/mf - (sumHalf/mf)*(sumHalf/mf)
	if den <= 0 || math.IsNaN(den) {
		return 0
	}
	return num / den
}
