package graph

// Unreachable is the distance value reported for vertices not reachable
// from the BFS source.
const Unreachable = -1

// BFS returns the array of hop distances from src to every vertex, with
// Unreachable (-1) for vertices in other components.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.n {
		return dist
	}
	queue := make([]int32, 0, 64)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		du := dist[u]
		for _, w := range g.Neighbors(u) {
			if dist[w] == Unreachable {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BFSBounded performs a BFS from src that stops expanding at depth maxDist
// and only traverses vertices for which allow returns true (src itself is
// always allowed). It returns the set of reached vertices and their
// distances. Vertices at distance maxDist are reported but not expanded.
// This implements the "shortest path through thin vertices only" tables of
// Lemma 7 when allow excludes fat vertices.
func (g *Graph) BFSBounded(src, maxDist int, allow func(v int) bool) map[int]int {
	out := make(map[int]int)
	if src < 0 || src >= g.n || maxDist < 0 {
		return out
	}
	out[src] = 0
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := int(queue[head])
		du := out[u]
		if du == maxDist {
			continue
		}
		for _, wi := range g.Neighbors(u) {
			w := int(wi)
			if _, seen := out[w]; seen {
				continue
			}
			if allow != nil && !allow(w) {
				// Record the distance to a disallowed frontier vertex but do
				// not expand through it; callers that do not want frontier
				// vertices filter on allow themselves.
				continue
			}
			out[w] = du + 1
			queue = append(queue, wi)
		}
	}
	return out
}

// ConnectedComponents returns a component ID per vertex (IDs are dense,
// starting at 0) and the number of components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for v := 0; v < g.n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := int(queue[head])
			for _, w := range g.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// Diameter returns the exact hop diameter of the largest connected
// component, computed by running a BFS from every vertex of that component.
// It is intended for the modest graph sizes used in tests and experiments.
func (g *Graph) Diameter() int {
	comp, count := g.ConnectedComponents()
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	big := 0
	for c, s := range sizes {
		if s > sizes[big] {
			big = c
		}
		_ = c
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		if comp[v] != big {
			continue
		}
		for _, d := range g.BFS(v) {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Dist returns the exact hop distance between u and v (Unreachable if they
// are in different components). It runs a single BFS and is intended for
// spot-checking; batch users should call BFS directly.
func (g *Graph) Dist(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return Unreachable
	}
	if u == v {
		return 0
	}
	return g.BFS(u)[v]
}
