// Package graph provides the undirected-graph substrate shared by all
// labeling schemes, generators and experiments in this repository.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected, as in
// the paper. A Graph is an immutable compressed-sparse-row structure built
// once via a Builder; after Build it is safe for concurrent readers and all
// adjacency lists are sorted, enabling O(log deg) membership tests.
package graph

import (
	"errors"
	"fmt"
	"slices"
)

// ErrVertexRange is returned for vertex IDs outside [0, n).
var ErrVertexRange = errors.New("graph: vertex out of range")

// ErrSelfLoop is returned when an edge (v, v) is added.
var ErrSelfLoop = errors.New("graph: self-loop not allowed")

// Builder accumulates edges for a graph on a fixed vertex set {0..n-1}.
// Parallel edges are deduplicated at Build time. The zero value is a builder
// for the empty graph on zero vertices.
type Builder struct {
	n   int
	adj [][]int32
}

// NewBuilder returns a builder for a graph with n vertices and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// AddEdge records the undirected edge {u, v}. Adding an existing edge is a
// no-op after Build's deduplication. Self-loops and out-of-range endpoints
// are rejected.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
	return nil
}

// HasEdge reports whether {u,v} has been added (linear scan; intended for
// generators that must avoid duplicate edges on small neighborhoods).
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false
	}
	// Scan the shorter list.
	if len(b.adj[u]) > len(b.adj[v]) {
		u, v = v, u
	}
	for _, w := range b.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Degree returns the current degree of v counting any not-yet-deduplicated
// parallel additions.
func (b *Builder) Degree(v int) int {
	if v < 0 || v >= b.n {
		return 0
	}
	return len(b.adj[v])
}

// Build freezes the builder into an immutable Graph. Adjacency lists are
// sorted and deduplicated. The builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	offsets := make([]int64, b.n+1)
	total := 0
	for v := range b.adj {
		slices.Sort(b.adj[v])
		b.adj[v] = slices.Compact(b.adj[v])
		total += len(b.adj[v])
	}
	neighbors := make([]int32, total)
	pos := 0
	for v := range b.adj {
		offsets[v] = int64(pos)
		pos += copy(neighbors[pos:], b.adj[v])
		b.adj[v] = nil
	}
	offsets[b.n] = int64(pos)
	return &Graph{n: b.n, offsets: offsets, neighbors: neighbors}
}

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	n         int
	offsets   []int64
	neighbors []int32
}

// Empty returns the graph with n vertices and no edges.
func Empty(n int) *Graph { return NewBuilder(n).Build() }

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return len(g.neighbors) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u,v} is an edge, in O(log deg(u)) time.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	// Search the smaller list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	_, found := slices.BinarySearch(g.Neighbors(u), int32(v))
	return found
}

// Edges calls fn for every edge {u,v} with u < v. Iteration order is
// deterministic (by u, then v).
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Degrees returns a fresh slice of all vertex degrees, indexed by vertex.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Degree(v)
	}
	return out
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns h where h[k] is the number of vertices of degree
// k, for k in [0, MaxDegree].
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}

// DegreeDistribution returns ddist(k) = |V_k| / n as defined in Section 2 of
// the paper, indexed by degree k. Returns nil for the empty graph.
func (g *Graph) DegreeDistribution() []float64 {
	if g.n == 0 {
		return nil
	}
	h := g.DegreeHistogram()
	d := make([]float64, len(h))
	for k, c := range h {
		d[k] = float64(c) / float64(g.n)
	}
	return d
}

// TailCounts returns t where t[k] = sum over i >= k of |V_i| — the quantity
// bounded by Definition 1 (the P_h family). t has length MaxDegree+2 so that
// t[MaxDegree+1] == 0.
func (g *Graph) TailCounts() []int {
	h := g.DegreeHistogram()
	t := make([]int, len(h)+1)
	for k := len(h) - 1; k >= 0; k-- {
		t[k] = t[k+1] + h[k]
	}
	return t
}

// VerticesByDegreeDesc returns all vertex IDs sorted by degree, highest
// first, ties broken by vertex ID for determinism. Implemented as a
// counting sort over the degree histogram — O(n + Δ) instead of a
// comparison sort — because this ordering is the sequential prefix of every
// fat/thin encode.
func (g *Graph) VerticesByDegreeDesc() []int {
	maxDeg := g.MaxDegree()
	// start[d] = first output slot for degree d, with degrees placed from
	// high to low and vertices scanned in increasing ID within each degree.
	start := make([]int, maxDeg+2)
	for v := 0; v < g.n; v++ {
		start[g.Degree(v)]++
	}
	pos := 0
	for d := maxDeg; d >= 0; d-- {
		c := start[d]
		start[d] = pos
		pos += c
	}
	vs := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		d := g.Degree(v)
		vs[start[d]] = v
		start[d]++
	}
	return vs
}

// InducedSubgraph returns the subgraph induced by the given vertices, with
// vertex i of the result corresponding to vertices[i]. Duplicate or
// out-of-range entries are rejected.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, error) {
	idx := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.n {
			return nil, fmt.Errorf("%w: %d", ErrVertexRange, v)
		}
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx[v] = i
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if j, ok := idx[int(w)]; ok && j > i {
				if err := b.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

// EqualGraph reports whether two graphs have identical vertex sets and edge
// sets.
func EqualGraph(a, b *Graph) bool {
	if a.n != b.n || len(a.neighbors) != len(b.neighbors) {
		return false
	}
	for v := 0; v < a.n; v++ {
		la, lb := a.Neighbors(v), b.Neighbors(v)
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
	}
	return true
}
