package graph

import (
	"math"
	"testing"
)

// buildComplete returns K_n without importing gen (avoiding a cycle).
func buildComplete(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(t, b, u, v)
		}
	}
	return b.Build()
}

func TestTrianglesKnown(t *testing.T) {
	if got := buildComplete(t, 4).Triangles(); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	if got := buildComplete(t, 5).Triangles(); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
	if got := buildPath(t, 10).Triangles(); got != 0 {
		t.Errorf("path triangles = %d", got)
	}
	// Star has no triangles.
	b := NewBuilder(6)
	for v := 1; v < 6; v++ {
		mustAdd(t, b, 0, v)
	}
	if got := b.Build().Triangles(); got != 0 {
		t.Errorf("star triangles = %d", got)
	}
	// One explicit triangle plus a pendant.
	b2 := NewBuilder(4)
	mustAdd(t, b2, 0, 1)
	mustAdd(t, b2, 1, 2)
	mustAdd(t, b2, 0, 2)
	mustAdd(t, b2, 2, 3)
	if got := b2.Build().Triangles(); got != 1 {
		t.Errorf("triangle+pendant = %d, want 1", got)
	}
}

func TestGlobalClustering(t *testing.T) {
	if got := buildComplete(t, 6).GlobalClustering(); math.Abs(got-1) > 1e-12 {
		t.Errorf("K6 clustering = %v, want 1", got)
	}
	if got := buildPath(t, 8).GlobalClustering(); got != 0 {
		t.Errorf("path clustering = %v, want 0", got)
	}
	if got := Empty(5).GlobalClustering(); got != 0 {
		t.Errorf("empty clustering = %v", got)
	}
}

func TestMeanDegree(t *testing.T) {
	if got := buildComplete(t, 5).MeanDegree(); got != 4 {
		t.Errorf("K5 mean degree = %v", got)
	}
	if got := Empty(0).MeanDegree(); got != 0 {
		t.Errorf("empty mean degree = %v", got)
	}
}

func TestAssortativityExtremes(t *testing.T) {
	// A star is maximally disassortative: r = -1.
	b := NewBuilder(8)
	for v := 1; v < 8; v++ {
		mustAdd(t, b, 0, v)
	}
	if got := b.Build().DegreeAssortativity(); math.Abs(got+1) > 1e-9 {
		t.Errorf("star assortativity = %v, want -1", got)
	}
	// A regular graph has zero degree variance: defined as 0 here.
	if got := buildComplete(t, 6).DegreeAssortativity(); got != 0 {
		t.Errorf("K6 assortativity = %v, want 0 (degenerate)", got)
	}
	if got := Empty(4).DegreeAssortativity(); got != 0 {
		t.Errorf("empty assortativity = %v", got)
	}
	// Two disjoint edges joined into a path of length 3: ends (deg 1)
	// attach to middles (deg 2): disassortative.
	p := buildPath(t, 4)
	if got := p.DegreeAssortativity(); got >= 0 {
		t.Errorf("P4 assortativity = %v, want negative", got)
	}
}
