package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildPath returns the path graph 0-1-2-...-(n-1).
func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// buildRandom returns a G(n, p) graph with a fixed seed.
func buildRandom(t testing.TB, n int, p float64, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := Empty(0)
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Errorf("empty graph: n=%d m=%d max=%d", g.N(), g.M(), g.MaxDegree())
	}
	if g.DegreeDistribution() != nil {
		t.Error("empty graph should have nil degree distribution")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out of range err = %v", err)
	}
	if err := b.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative err = %v", err)
	}
	if err := b.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop err = %v", err)
	}
}

func TestBuildDeduplicates(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 after dedup", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d,%d want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := buildPath(t, 5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			want := (u-v == 1) || (v-u == 1)
			if g.HasEdge(u, v) != want {
				t.Errorf("HasEdge(%d,%d) = %v, want %v", u, v, g.HasEdge(u, v), want)
			}
		}
	}
	if g.HasEdge(0, 0) {
		t.Error("HasEdge(0,0) must be false")
	}
	if g.HasEdge(-1, 2) || g.HasEdge(2, 99) {
		t.Error("out-of-range HasEdge must be false")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	for _, v := range []int{5, 2, 4, 1, 3} {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
}

func TestEdgesIteration(t *testing.T) {
	g := buildPath(t, 4)
	var got [][2]int
	g.Edges(func(u, v int) {
		got = append(got, [2]int{u, v})
		if u >= v {
			t.Errorf("Edges must emit u < v, got (%d,%d)", u, v)
		}
	})
	if len(got) != 3 {
		t.Errorf("iterated %d edges, want 3", len(got))
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star K_{1,4}: one vertex of degree 4, four of degree 1.
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	h := g.DegreeHistogram()
	want := []int{0, 4, 0, 0, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
}

func TestTailCounts(t *testing.T) {
	b := NewBuilder(5)
	for v := 1; v < 5; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	tc := g.TailCounts()
	// Degrees: 4,1,1,1,1. Tail at k=0 is 5; k=1 is 5; k=2..4 is 1; k=5 is 0.
	wants := map[int]int{0: 5, 1: 5, 2: 1, 3: 1, 4: 1, 5: 0}
	for k, want := range wants {
		if tc[k] != want {
			t.Errorf("TailCounts[%d] = %d, want %d", k, tc[k], want)
		}
	}
}

func TestVerticesByDegreeDesc(t *testing.T) {
	b := NewBuilder(4)
	// Degrees: v0=1, v1=2, v2=2, v3=1.
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 2, 3)
	g := b.Build()
	order := g.VerticesByDegreeDesc()
	want := []int{1, 2, 0, 3} // ties by vertex ID
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func mustAdd(t *testing.T, b *Builder, u, v int) {
	t.Helper()
	if err := b.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestBFSPath(t *testing.T) {
	g := buildPath(t, 6)
	d := g.BFS(0)
	for i := 0; i < 6; i++ {
		if d[i] != i {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	g := b.Build()
	d := g.BFS(0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Errorf("unreachable distances = %d,%d", d[2], d[3])
	}
}

func TestBFSBoundedDepth(t *testing.T) {
	g := buildPath(t, 10)
	got := g.BFSBounded(0, 3, nil)
	if len(got) != 4 {
		t.Fatalf("reached %d vertices, want 4 (0..3)", len(got))
	}
	for v, d := range got {
		if d != v {
			t.Errorf("dist[%d] = %d", v, d)
		}
	}
}

func TestBFSBoundedFilter(t *testing.T) {
	// 0-1-2 and 0-3, with vertex 1 disallowed: 2 must be unreachable.
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 0, 3)
	g := b.Build()
	got := g.BFSBounded(0, 5, func(v int) bool { return v != 1 })
	if _, ok := got[2]; ok {
		t.Error("vertex 2 reachable despite blocked vertex 1")
	}
	if d, ok := got[3]; !ok || d != 1 {
		t.Errorf("vertex 3: %d,%v", d, ok)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 3, 4)
	g := b.Build()
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Error("3,4 should share a component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("5 should be isolated")
	}
}

func TestDiameterPath(t *testing.T) {
	g := buildPath(t, 7)
	if d := g.Diameter(); d != 6 {
		t.Errorf("Diameter = %d, want 6", d)
	}
}

func TestDistSpotChecks(t *testing.T) {
	g := buildPath(t, 5)
	if d := g.Dist(0, 4); d != 4 {
		t.Errorf("Dist(0,4) = %d", d)
	}
	if d := g.Dist(2, 2); d != 0 {
		t.Errorf("Dist(2,2) = %d", d)
	}
	if d := g.Dist(0, 99); d != Unreachable {
		t.Errorf("Dist out of range = %d", d)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3 attached to 0.
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 0, 2)
	mustAdd(t, b, 0, 3)
	g := b.Build()
	sub, err := g.InducedSubgraph([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced triangle: n=%d m=%d", sub.N(), sub.M())
	}
	// Every pair adjacent (it is a triangle).
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			if !sub.HasEdge(u, v) {
				t.Errorf("induced HasEdge(%d,%d) = false", u, v)
			}
		}
	}
	if _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestEqualGraph(t *testing.T) {
	a := buildPath(t, 4)
	b := buildPath(t, 4)
	if !EqualGraph(a, b) {
		t.Error("identical paths not equal")
	}
	c := buildRandom(t, 4, 0.9, 7)
	if EqualGraph(a, c) && c.M() != a.M() {
		t.Error("different graphs reported equal")
	}
}

// Property: HasEdge agrees with membership in the Neighbors list.
func TestQuickHasEdgeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := buildRandom(t, 30, 0.15, seed)
		for u := 0; u < g.N(); u++ {
			inList := map[int]bool{}
			for _, w := range g.Neighbors(u) {
				inList[int(w)] = true
			}
			for v := 0; v < g.N(); v++ {
				if g.HasEdge(u, v) != inList[v] {
					return false
				}
				if g.HasEdge(u, v) != g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: sum of degrees equals twice the edge count.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		g := buildRandom(t, 50, 0.1, seed)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges:
// |d(u) - d(v)| <= 1 for every edge (u,v) reachable from the source.
func TestQuickBFSEdgeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := buildRandom(t, 40, 0.08, seed)
		d := g.BFS(0)
		ok := true
		g.Edges(func(u, v int) {
			du, dv := d[u], d[v]
			if du == Unreachable != (dv == Unreachable) {
				ok = false
				return
			}
			if du != Unreachable && abs(du-dv) > 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
