package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := buildRandom(t, 40, 0.1, 3)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualGraph(g, g2) {
		t.Error("round-tripped graph differs")
	}
}

func TestEdgeListHeaderPreservesIsolated(t *testing.T) {
	// Vertex 4 is isolated; the header must preserve n=5.
	b := NewBuilder(5)
	mustAdd(t, b, 0, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 5 {
		t.Errorf("N = %d, want 5", g2.N())
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListSkipsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n0 1\n# another\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
}

func TestReadEdgeListDropsSelfLoops(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 0\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 (self-loop dropped)", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",              // too few fields
		"a b\n",            // non-numeric
		"0 -2\n",           // negative
		"# n 2 m 1\n0 5\n", // ID exceeds declared n
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
