package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
)

// Parallel edge-list I/O
//
// The text edge-list format is line-oriented and the CSR is vertex-ordered,
// so both directions shard naturally: writing formats disjoint vertex
// ranges into private buffers that are flushed in order (output bytes are
// identical to the sequential WriteEdgeList), and reading splits the input
// into newline-aligned blocks parsed concurrently, with the final CSR
// assembled by the EdgeBuilder (same graph as ReadEdgeList for any worker
// count).

// writeChunkSlots is the per-chunk incidence budget for the parallel
// writer: ~128k incidences format into roughly 1 MiB of text, large enough
// to amortize scheduling, small enough to bound in-flight buffer memory.
const writeChunkSlots = 1 << 17

// WriteEdgeListParallel writes the same bytes as WriteEdgeList, formatting
// edge-balanced vertex ranges concurrently on workers goroutines
// (workers <= 0 means GOMAXPROCS) and flushing the per-range buffers in
// vertex order.
func (g *Graph) WriteEdgeListParallel(w io.Writer, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return g.WriteEdgeList(w)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# n %d m %d\n", g.n, g.M()); err != nil {
		return err
	}
	parts := int(g.offsets[g.n]/writeChunkSlots) + 1
	cuts := balancedRanges(g.offsets, parts)
	chunks := len(cuts) - 1
	// Workers format chunks pulled from a shared counter; the merge loop
	// below receives each chunk's buffer in vertex order. The semaphore
	// bounds in-flight formatted buffers (it is released only after a
	// buffer is written), so memory stays O(workers) buffers even when one
	// chunk formats slowly.
	sem := make(chan struct{}, workers+1)
	out := make([]chan []byte, chunks)
	for i := range out {
		out[i] = make(chan []byte, 1)
	}
	next := make(chan int, chunks)
	for i := 0; i < chunks; i++ {
		next <- i
	}
	close(next)
	for wk := 0; wk < workers; wk++ {
		go func() {
			for i := range next {
				sem <- struct{}{}
				buf := make([]byte, 0, writeChunkSlots*8)
				for u := cuts[i]; u < cuts[i+1]; u++ {
					for _, v := range g.Neighbors(u) {
						if int(v) > u {
							buf = strconv.AppendInt(buf, int64(u), 10)
							buf = append(buf, ' ')
							buf = strconv.AppendInt(buf, int64(v), 10)
							buf = append(buf, '\n')
						}
					}
				}
				out[i] <- buf
			}
		}()
	}
	var werr error
	for i := 0; i < chunks; i++ {
		buf := <-out[i]
		if werr == nil {
			if _, err := bw.Write(buf); err != nil {
				werr = err
			}
		}
		<-sem
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// readBlockSize is the target byte size of one newline-aligned parse block.
const readBlockSize = 1 << 22

// maxVertexID bounds parsed IDs to the CSR's int32 neighbor storage.
const maxVertexID = 1<<31 - 1

// edgeBlock is one parsed block's result.
type edgeBlock struct {
	pairs   []Edge
	headerN int // n from the last header line in the block, -1 if none
	maxID   int
	err     error
}

// ReadEdgeListParallel parses the WriteEdgeList format with workers
// goroutines (workers <= 0 means GOMAXPROCS), splitting the input into
// newline-aligned blocks and assembling the CSR through an EdgeBuilder. It
// accepts exactly the inputs ReadEdgeList accepts and returns the same
// graph.
func ReadEdgeListParallel(r io.Reader, workers int) (*Graph, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return ReadEdgeList(r)
	}
	br := bufio.NewReaderSize(r, 1<<20)
	var blocks [][]byte
	var startLines []int
	line := 0
	var pending []byte
	for {
		chunk := make([]byte, readBlockSize)
		n, err := io.ReadFull(br, chunk)
		data := chunk[:n]
		if len(pending) > 0 {
			data = append(pending, data...)
			pending = nil
		}
		if err == nil {
			if cut := bytes.LastIndexByte(data, '\n'); cut >= 0 {
				pending = append(pending, data[cut+1:]...)
				data = data[:cut+1]
			} else {
				pending = data
				data = nil
			}
		}
		if len(data) > 0 {
			blocks = append(blocks, data)
			startLines = append(startLines, line)
			line += bytes.Count(data, []byte{'\n'})
			if data[len(data)-1] != '\n' {
				line++ // final unterminated line
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: read: %w", err)
		}
	}
	results := make([]edgeBlock, len(blocks))
	parallelJobs(workers, len(blocks), func(i int) {
		results[i] = parseEdgeBlock(blocks[i], startLines[i])
	})
	n, maxID := -1, -1
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		if results[i].headerN >= 0 {
			n = results[i].headerN // last header in file order wins
		}
		if results[i].maxID > maxID {
			maxID = results[i].maxID
		}
	}
	if n < 0 {
		n = maxID + 1
	}
	if maxID >= n {
		return nil, fmt.Errorf("graph: vertex ID %d exceeds declared n=%d", maxID, n)
	}
	eb := NewEdgeBuilder(n, workers)
	for i := range results {
		eb.Shard(i % workers).AddEdges(results[i].pairs)
	}
	return eb.Build(workers), nil
}

// parseEdgeBlock parses one newline-aligned block starting at the given
// 0-based line offset, mirroring ReadEdgeList's per-line semantics:
// blank lines and non-header comments are skipped, header lines set n
// (last wins), self-loops are tolerated by dropping them (but still count
// toward the inferred vertex range).
func parseEdgeBlock(data []byte, startLine int) edgeBlock {
	res := edgeBlock{headerN: -1, maxID: -1}
	ln := startLine
	for len(data) > 0 {
		ln++
		var lineB []byte
		if idx := bytes.IndexByte(data, '\n'); idx >= 0 {
			lineB, data = data[:idx], data[idx+1:]
		} else {
			lineB, data = data, nil
		}
		lineB = bytes.TrimSpace(lineB)
		if len(lineB) == 0 {
			continue
		}
		if lineB[0] == '#' {
			var hn, hm int
			if _, err := fmt.Sscanf(string(lineB), "# n %d m %d", &hn, &hm); err == nil {
				res.headerN = hn
			}
			continue
		}
		fields := bytes.Fields(lineB)
		if len(fields) < 2 {
			res.err = fmt.Errorf("graph: line %d: want two vertex IDs, got %q", ln, string(lineB))
			return res
		}
		u, err := strconv.Atoi(string(fields[0]))
		if err != nil {
			res.err = fmt.Errorf("graph: line %d: %w", ln, err)
			return res
		}
		v, err := strconv.Atoi(string(fields[1]))
		if err != nil {
			res.err = fmt.Errorf("graph: line %d: %w", ln, err)
			return res
		}
		if u < 0 || v < 0 {
			res.err = fmt.Errorf("graph: line %d: negative vertex ID", ln)
			return res
		}
		if u > maxVertexID || v > maxVertexID {
			res.err = fmt.Errorf("graph: line %d: vertex ID exceeds int32 range", ln)
			return res
		}
		if u > res.maxID {
			res.maxID = u
		}
		if v > res.maxID {
			res.maxID = v
		}
		if u == v {
			continue
		}
		res.pairs = append(res.pairs, Edge{int32(u), int32(v)})
	}
	return res
}
