package graph

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// randomEdges returns count random non-loop edges on n vertices, with
// duplicates (both orientations) likely.
func randomEdges(n, count int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, count)
	for len(edges) < count {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, Edge{int32(u), int32(v)})
	}
	return edges
}

// buildReference constructs the same graph through the incremental Builder.
func buildReference(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(int(e.U), int(e.V)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestEdgeBuilderMatchesBuilder(t *testing.T) {
	const n, count = 500, 4000
	edges := randomEdges(n, count, 1)
	want := buildReference(t, n, edges)
	eb := NewEdgeBuilder(n, 3)
	for i, e := range edges {
		eb.Shard(i % 3).Add(e.U, e.V)
	}
	if got := eb.Len(); got != count {
		t.Fatalf("Len=%d, want %d", got, count)
	}
	got := eb.Build(2)
	if !EqualGraph(want, got) {
		t.Error("EdgeBuilder graph differs from Builder graph")
	}
}

// TestEdgeBuilderWorkerInvariance asserts the central determinism contract:
// the built graph is byte-identical for every worker and shard count given
// the same edge multiset.
func TestEdgeBuilderWorkerInvariance(t *testing.T) {
	const n, count = 800, 6000
	edges := randomEdges(n, count, 2)
	serialize := func(g *Graph) []byte {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var ref []byte
	for _, workers := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		for _, shards := range []int{1, workers} {
			eb := NewEdgeBuilder(n, shards)
			for i, e := range edges {
				eb.Shard(i % shards).Add(e.U, e.V)
			}
			got := serialize(eb.Build(workers))
			if ref == nil {
				ref = got
			} else if !bytes.Equal(ref, got) {
				t.Errorf("workers=%d shards=%d: graph bytes differ", workers, shards)
			}
		}
	}
}

func TestEdgeBuilderDegenerate(t *testing.T) {
	if g := NewEdgeBuilder(0, 1).Build(4); g.N() != 0 || g.M() != 0 {
		t.Error("empty build wrong")
	}
	if g := NewEdgeBuilder(5, 2).Build(0); g.N() != 5 || g.M() != 0 {
		t.Error("edgeless build wrong")
	}
	if g := NewEdgeBuilder(-3, 0).Build(1); g.N() != 0 {
		t.Error("negative n not clamped")
	}
}

func TestEdgeBuilderAddEdgeValidates(t *testing.T) {
	eb := NewEdgeBuilder(4, 1)
	if err := eb.AddEdge(0, 4); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := eb.AddEdge(-1, 2); err == nil {
		t.Error("negative accepted")
	}
	if err := eb.AddEdge(2, 2); err == nil {
		t.Error("self-loop accepted")
	}
	if err := eb.AddEdge(1, 3); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	g := eb.Build(1)
	if g.M() != 1 || !g.HasEdge(1, 3) {
		t.Error("built graph wrong")
	}
}

func TestEdgeBuilderBuildPanicsOnRangeViolation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build accepted out-of-range unchecked Add")
		}
	}()
	eb := NewEdgeBuilder(3, 1)
	eb.Shard(0).Add(0, 9)
	eb.Build(1)
}

func TestEdgeBuilderAddEdgesAdopts(t *testing.T) {
	const n = 100
	edges := randomEdges(n, 1000, 3)
	want := buildReference(t, n, edges)
	eb := NewEdgeBuilder(n, 2)
	eb.Shard(0).AddEdges(edges[:600])
	eb.Shard(1).AddEdges(edges[600:])
	if !EqualGraph(want, eb.Build(3)) {
		t.Error("adopted edges build differs")
	}
}

// TestEdgeBuilderChunkRollover crosses the shard chunk boundary to cover
// the parked-chunk path.
func TestEdgeBuilderChunkRollover(t *testing.T) {
	const n = 64
	count := edgeChunk + edgeChunk/2
	rng := rand.New(rand.NewSource(4))
	eb := NewEdgeBuilder(n, 1)
	b := NewBuilder(n)
	s := eb.Shard(0)
	for i := 0; i < count; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		s.Add(int32(u), int32(v))
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	if !EqualGraph(b.Build(), eb.Build(2)) {
		t.Error("chunk rollover build differs")
	}
}

// TestEdgeBuilderConcurrentShards is the -race stress test: one goroutine
// per shard filling concurrently, then a parallel build.
func TestEdgeBuilderConcurrentShards(t *testing.T) {
	const n, perShard = 300, 5000
	shards := runtime.GOMAXPROCS(0) + 3
	eb := NewEdgeBuilder(n, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for i := 0; i < shards; i++ {
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			s := eb.Shard(i)
			for j := 0; j < perShard; j++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					s.Add(int32(u), int32(v))
				}
			}
		}(i)
	}
	wg.Wait()
	g := eb.Build(runtime.GOMAXPROCS(0) + 2)
	if g.N() != n {
		t.Fatalf("n=%d", g.N())
	}
	// Sanity: rows sorted and deduplicated.
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] <= nbrs[i-1] {
				t.Fatalf("row %d not strictly sorted", v)
			}
		}
	}
}

func TestBalancedRanges(t *testing.T) {
	offs := []int64{0, 10, 10, 30, 31, 100}
	cuts := balancedRanges(offs, 3)
	if cuts[0] != 0 || cuts[len(cuts)-1] != 5 {
		t.Fatalf("cuts endpoints wrong: %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	if got := balancedRanges([]int64{0}, 4); got[0] != 0 || got[len(got)-1] != 0 {
		t.Errorf("empty cuts wrong: %v", got)
	}
}
