package graph

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// Two-pass CSR construction
//
// Builder (graph.go) is convenient for generators that need incremental
// HasEdge membership, but its per-vertex append slices cost one allocation
// trail per vertex and its Build sorts n tiny slices one at a time. The
// EdgeBuilder below is the bulk path: edges are collected into per-shard
// chunked buffers (one shard per producer goroutine, no locks), and Build
// assembles the CSR in flat passes over those buffers:
//
//  1. count: per-vertex incidence counts (atomic adds when parallel);
//  2. prefix-sum: one offsets array over the counts;
//  3. scatter: every edge written to both endpoints' ranges, slots claimed
//     by per-vertex cursors;
//  4. sort+dedup: each vertex's range sorted and compacted in place,
//     parallel over edge-balanced vertex ranges, then compacted into the
//     final neighbors array with a second prefix-sum.
//
// Because every adjacency row is sorted and deduplicated before it becomes
// visible, the resulting Graph depends only on the *multiset* of added
// edges — never on shard assignment, scatter interleaving, or worker
// count. Build(w) is therefore bit-identical for every w given the same
// edges, which the worker-invariance tests assert.

// edgeChunk is the number of edges per shard buffer chunk (64k edges =
// 512 KiB). Chunking keeps shard growth allocation-cheap: full chunks are
// parked and never copied again.
const edgeChunk = 1 << 16

// Edge is one undirected edge {U, V} held in a shard buffer.
type Edge struct{ U, V int32 }

// EdgeBuilder accumulates edges for a graph on {0..n-1} into per-shard
// buffers and freezes them into a CSR Graph with a two-pass parallel build.
// Use one shard per producer goroutine; a shard must not be shared between
// goroutines without external synchronization, but distinct shards may be
// filled concurrently.
type EdgeBuilder struct {
	n      int
	shards []EdgeShard
}

// EdgeShard is one producer's chunked edge buffer. The pad keeps hot shard
// headers on distinct cache lines when shards are filled concurrently.
type EdgeShard struct {
	chunks [][]Edge
	cur    []Edge
	_      [64]byte
}

// NewEdgeBuilder returns a builder for a graph with n vertices and the
// given number of producer shards (clamped to at least 1).
func NewEdgeBuilder(n, shards int) *EdgeBuilder {
	if n < 0 {
		n = 0
	}
	if shards < 1 {
		shards = 1
	}
	return &EdgeBuilder{n: n, shards: make([]EdgeShard, shards)}
}

// N returns the number of vertices.
func (b *EdgeBuilder) N() int { return b.n }

// Shards returns the number of producer shards.
func (b *EdgeBuilder) Shards() int { return len(b.shards) }

// Shard returns producer shard i.
func (b *EdgeBuilder) Shard(i int) *EdgeShard { return &b.shards[i] }

// Len returns the total number of buffered edges (duplicates included).
func (b *EdgeBuilder) Len() int64 {
	var total int64
	for i := range b.shards {
		s := &b.shards[i]
		for _, c := range s.chunks {
			total += int64(len(c))
		}
		total += int64(len(s.cur))
	}
	return total
}

// Add buffers the undirected edge {u, v}. The caller guarantees
// 0 <= u, v < n and u != v — generators add edges from in-range loop
// indices, so the hot path carries no checks (out-of-range endpoints are
// caught by a build-time validation pass; self-loops are not). Use the
// builder's checked AddEdge for untrusted input.
func (s *EdgeShard) Add(u, v int32) {
	if len(s.cur) == cap(s.cur) {
		if s.cur != nil {
			s.chunks = append(s.chunks, s.cur)
		}
		s.cur = make([]Edge, 0, edgeChunk)
	}
	s.cur = append(s.cur, Edge{u, v})
}

// AddEdges adopts a pre-collected edge slice into the shard without
// copying. The slice must not be modified afterwards and obeys the same
// endpoint contract as Add.
func (s *EdgeShard) AddEdges(edges []Edge) {
	if len(edges) == 0 {
		return
	}
	s.chunks = append(s.chunks, edges)
}

// AddEdge validates and buffers {u, v} into shard 0. It mirrors
// Builder.AddEdge's error contract and is intended for single-goroutine
// callers with untrusted input.
func (b *EdgeBuilder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	b.shards[0].Add(int32(u), int32(v))
	return nil
}

// chunkList flattens all shard buffers into one slice of chunks — the unit
// of work for the count and scatter passes.
func (b *EdgeBuilder) chunkList() [][]Edge {
	var chunks [][]Edge
	for i := range b.shards {
		s := &b.shards[i]
		chunks = append(chunks, s.chunks...)
		if len(s.cur) > 0 {
			chunks = append(chunks, s.cur)
		}
	}
	return chunks
}

// Build freezes the buffered edges into an immutable Graph using workers
// goroutines (workers <= 0 means GOMAXPROCS). The builder must not be used
// afterwards. The result is independent of the worker and shard counts:
// only the multiset of added edges matters. Build panics if any buffered
// endpoint is out of range (the unchecked Add contract was violated).
func (b *EdgeBuilder) Build(workers int) *Graph {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := b.n
	chunks := b.chunkList()
	b.shards = nil // free producer buffers on return

	// Pass 1: per-vertex incidence counts. Every edge contributes to both
	// endpoint rows. The parallel path uses atomic adds — contention is
	// negligible except on power-law hubs, and correctness never depends on
	// arrival order.
	counts := make([]int32, n)
	validateRange := func(e Edge) {
		if int(e.U) >= n || e.U < 0 || int(e.V) >= n || e.V < 0 {
			panic(fmt.Sprintf("graph: EdgeBuilder edge (%d,%d) out of range n=%d", e.U, e.V, n))
		}
	}
	if workers == 1 || len(chunks) == 1 {
		for _, c := range chunks {
			for _, e := range c {
				validateRange(e)
				counts[e.U]++
				counts[e.V]++
			}
		}
	} else {
		parallelJobs(workers, len(chunks), func(j int) {
			for _, e := range chunks[j] {
				validateRange(e)
				atomic.AddInt32(&counts[e.U], 1)
				atomic.AddInt32(&counts[e.V], 1)
			}
		})
	}

	// Pass 2: prefix-sum the counts into slot ranges and scatter every edge
	// into both endpoints' ranges. Cursors claim slots with atomic
	// fetch-adds; the interleaving is nondeterministic but erased by the
	// sort below.
	offs := make([]int64, n+1)
	var pos int64
	for v := 0; v < n; v++ {
		offs[v] = pos
		pos += int64(counts[v])
	}
	offs[n] = pos
	tmp := make([]int32, pos)
	cur := make([]int32, n)
	if workers == 1 || len(chunks) == 1 {
		for _, c := range chunks {
			for _, e := range c {
				tmp[offs[e.U]+int64(cur[e.U])] = e.V
				cur[e.U]++
				tmp[offs[e.V]+int64(cur[e.V])] = e.U
				cur[e.V]++
			}
		}
	} else {
		parallelJobs(workers, len(chunks), func(j int) {
			for _, e := range chunks[j] {
				su := atomic.AddInt32(&cur[e.U], 1) - 1
				tmp[offs[e.U]+int64(su)] = e.V
				sv := atomic.AddInt32(&cur[e.V], 1) - 1
				tmp[offs[e.V]+int64(sv)] = e.U
			}
		})
	}

	// Pass 3: sort and deduplicate each row in place, parallel over
	// edge-balanced vertex ranges; counts[v] becomes the deduplicated row
	// length.
	ranges := balancedRanges(offs, workers*4)
	parallelJobs(workers, len(ranges)-1, func(j int) {
		for v := ranges[j]; v < ranges[j+1]; v++ {
			row := tmp[offs[v]:offs[v+1]]
			slices.Sort(row)
			counts[v] = int32(len(slices.Compact(row)))
		}
	})

	// Pass 4: prefix-sum the deduplicated lengths and compact the rows into
	// the final neighbors array.
	fin := make([]int64, n+1)
	pos = 0
	for v := 0; v < n; v++ {
		fin[v] = pos
		pos += int64(counts[v])
	}
	fin[n] = pos
	neighbors := make([]int32, pos)
	parallelJobs(workers, len(ranges)-1, func(j int) {
		for v := ranges[j]; v < ranges[j+1]; v++ {
			copy(neighbors[fin[v]:fin[v+1]], tmp[offs[v]:offs[v]+int64(counts[v])])
		}
	})
	return &Graph{n: n, offsets: fin, neighbors: neighbors}
}

// balancedRanges cuts the vertex set [0, n) into at most parts ranges with
// roughly equal total slot counts, given the n+1 prefix-sum offs. The
// returned cut points are monotone with ranges[0]=0 and ranges[len-1]=n.
func balancedRanges(offs []int64, parts int) []int {
	n := len(offs) - 1
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if n == 0 {
		return []int{0, 0}
	}
	total := offs[n]
	cuts := make([]int, 0, parts+1)
	cuts = append(cuts, 0)
	for i := 1; i < parts; i++ {
		target := total * int64(i) / int64(parts)
		// First vertex whose range starts at or beyond the target.
		lo, _ := slices.BinarySearch(offs, target)
		if lo > n {
			lo = n
		}
		if lo <= cuts[len(cuts)-1] || lo >= n {
			continue
		}
		cuts = append(cuts, lo)
	}
	cuts = append(cuts, n)
	return cuts
}

// parallelJobs runs fn(j) for every j in [0, jobs), spread over at most
// workers goroutines pulling jobs from a shared atomic counter. With one
// worker (or one job) it degrades to a plain loop on the calling
// goroutine.
func parallelJobs(workers, jobs int, fn func(j int)) {
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for j := 0; j < jobs; j++ {
			fn(j)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				j := next.Add(1) - 1
				if j >= int64(jobs) {
					return
				}
				fn(int(j))
			}
		}()
	}
	wg.Wait()
}
