package hashing

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildEmpty(t *testing.T) {
	ph, err := Build(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Total() != 0 || ph.NKeys() != 0 {
		t.Errorf("empty hash: total=%d nkeys=%d", ph.Total(), ph.NKeys())
	}
	if ph.Slot(42) != 0 {
		t.Errorf("empty hash Slot = %d", ph.Slot(42))
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	if _, err := Build([]uint64{1, 2, 1}, 1); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestPerfectInjective(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		keys := make([]uint64, 0, n)
		seen := map[uint64]struct{}{}
		for len(keys) < n {
			k := rng.Uint64()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
		ph, err := Build(keys, 7)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		slots := map[int]uint64{}
		for _, k := range keys {
			s := ph.Slot(k)
			if s < 0 || s >= ph.Total() {
				t.Fatalf("n=%d: slot %d out of [0,%d)", n, s, ph.Total())
			}
			if other, clash := slots[s]; clash {
				t.Fatalf("n=%d: keys %d and %d share slot %d", n, k, other, s)
			}
			slots[s] = k
		}
	}
}

func TestLinearSpace(t *testing.T) {
	n := 10000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 17
	}
	ph, err := Build(keys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Total() > 4*n {
		t.Errorf("slot space %d exceeds 4n = %d", ph.Total(), 4*n)
	}
}

func TestSequentialKeys(t *testing.T) {
	// Structured keys (the edge-key pattern u*n+v) must hash fine too.
	n := 3000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	ph, err := Build(keys, 11)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, k := range keys {
		s := ph.Slot(k)
		if seen[s] {
			t.Fatalf("collision at slot %d", s)
		}
		seen[s] = true
	}
}

func TestLookupStable(t *testing.T) {
	keys := []uint64{5, 99, 12345, 1 << 40}
	ph, err := Build(keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		a, b := ph.Slot(k), ph.Slot(k)
		if a != b {
			t.Errorf("Slot(%d) unstable: %d vs %d", k, a, b)
		}
	}
}

func TestNonKeyLookupInRange(t *testing.T) {
	keys := []uint64{10, 20, 30}
	ph, err := Build(keys, 9)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		s := ph.Slot(k)
		if s < 0 || s >= ph.Total() {
			t.Fatalf("non-key %d mapped to slot %d outside [0,%d)", k, s, ph.Total())
		}
	}
}

func TestMulMod61(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {mersenne61 - 1, mersenne61 - 1},
		{mersenne61 - 1, 2}, {1 << 60, 1 << 60}, {123456789, 987654321},
	}
	for _, tc := range cases {
		got := mulMod61(tc.a, tc.b)
		// Verify against big-integer-free reference: (a*b) mod p via
		// repeated addition in 128-bit space is impractical here, so check
		// the algebraic identity (a·b mod p) ≡ ((a mod p)·(b mod p)) and
		// ranges, plus a few hand values.
		if got >= mersenne61 {
			t.Errorf("mulMod61(%d,%d) = %d >= p", tc.a, tc.b, got)
		}
	}
	if got := mulMod61(2, 3); got != 6 {
		t.Errorf("2*3 = %d", got)
	}
	if got := mulMod61(mersenne61-1, 2); got != mersenne61-2 {
		// (p-1)*2 = 2p-2 ≡ p-2.
		t.Errorf("(p-1)*2 mod p = %d, want %d", got, mersenne61-2)
	}
}

// Property: Build is deterministic for a fixed seed and injective for
// arbitrary distinct key sets.
func TestQuickPerfect(t *testing.T) {
	f := func(raw []uint64, seed int64) bool {
		seen := map[uint64]struct{}{}
		keys := make([]uint64, 0, len(raw))
		for _, k := range raw {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
		ph, err := Build(keys, seed)
		if err != nil {
			return false
		}
		slots := map[int]bool{}
		for _, k := range keys {
			s := ph.Slot(k)
			if slots[s] {
				return false
			}
			slots[s] = true
		}
		ph2, err := Build(keys, seed)
		if err != nil {
			return false
		}
		for _, k := range keys {
			if ph.Slot(k) != ph2.Slot(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 3
	}
	ph, err := Build(keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ph.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back PerfectHash
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Total() != ph.Total() || back.NKeys() != ph.NKeys() {
		t.Fatalf("metadata differs: total %d/%d keys %d/%d",
			back.Total(), ph.Total(), back.NKeys(), ph.NKeys())
	}
	for _, k := range keys {
		if back.Slot(k) != ph.Slot(k) {
			t.Fatalf("Slot(%d) differs after round trip", k)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var p PerfectHash
	if err := p.UnmarshalBinary([]byte("nope")); err == nil {
		t.Error("garbage accepted")
	}
	if err := p.UnmarshalBinary([]byte{'F', 'K', 'S', '1'}); err == nil {
		t.Error("truncated accepted")
	}
}

func TestMarshalEmpty(t *testing.T) {
	ph, err := Build(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ph.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back PerfectHash
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 0 {
		t.Errorf("empty total = %d", back.Total())
	}
}
