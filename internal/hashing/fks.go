// Package hashing implements FKS (Fredman–Komlós–Szemerédi) two-level
// perfect hashing over uint64 keys, the "classic chaining perfect hash
// function" the paper's 1-query labeling scheme builds on: n keys are
// hashed into n first-level buckets, and each bucket of size b gets a
// collision-free secondary table of size b². Retrying the first level until
// Σ b² ≤ 4n keeps the total size linear, and lookups are two universal-hash
// evaluations — O(1) worst case.
package hashing

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// ErrTooManyRetries is returned if a suitable hash function is not found
// within the retry budget (vanishingly unlikely for correct inputs).
var ErrTooManyRetries = errors.New("hashing: exceeded retry budget")

// ErrDuplicateKey is returned when the key set contains duplicates, which a
// perfect hash cannot separate.
var ErrDuplicateKey = errors.New("hashing: duplicate key")

// mersenne61 is the prime 2^61 - 1 used by the universal hash family.
const mersenne61 = (1 << 61) - 1

// mulMod61 returns a*b mod 2^61-1 without overflow.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a·b = hi·2^64 + lo, and 2^64 ≡ 8, 2^61 ≡ 1 (mod 2^61-1).
	r := (lo & mersenne61) + (lo >> 61) + hi*8
	for r >= mersenne61 {
		r -= mersenne61
	}
	return r
}

// universal is one member of the Carter–Wegman family
// h(k) = ((a·k + b) mod p) mod m.
type universal struct {
	a, b uint64
	m    uint64
}

func (u universal) hash(key uint64) uint64 {
	v := mulMod61(u.a, key%mersenne61) + u.b
	if v >= mersenne61 {
		v -= mersenne61
	}
	return v % u.m
}

func randomUniversal(rng *rand.Rand, m uint64) universal {
	a := uint64(rng.Int63n(mersenne61-1)) + 1 // a in [1, p)
	b := uint64(rng.Int63n(mersenne61))       // b in [0, p)
	return universal{a: a, b: b, m: m}
}

// PerfectHash maps a fixed key set injectively into [0, Total()).
type PerfectHash struct {
	level1  universal
	buckets []bucket
	total   int
	nKeys   int
}

type bucket struct {
	fn     universal
	offset int
	size   int
}

// maxRetries bounds the number of hash-function draws per level. With
// universal hashing each draw succeeds with probability >= 1/2, so failure
// of 64 consecutive draws indicates a bug rather than bad luck.
const maxRetries = 64

// Build constructs a perfect hash for the given distinct keys.
func Build(keys []uint64, seed int64) (*PerfectHash, error) {
	rng := rand.New(rand.NewSource(seed))
	n := len(keys)
	if n == 0 {
		return &PerfectHash{total: 0}, nil
	}
	seen := make(map[uint64]struct{}, n)
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateKey, k)
		}
		seen[k] = struct{}{}
	}

	m := uint64(n)
	var h1 universal
	var sizes []int
	for try := 0; ; try++ {
		if try >= maxRetries {
			return nil, fmt.Errorf("%w: level 1", ErrTooManyRetries)
		}
		h1 = randomUniversal(rng, m)
		sizes = make([]int, n)
		for _, k := range keys {
			sizes[h1.hash(k)]++
		}
		sum := 0
		for _, b := range sizes {
			sum += b * b
		}
		// E[Σ b²] < 2n for a universal family; accept within 4n.
		if sum <= 4*n {
			break
		}
	}

	byBucket := make([][]uint64, n)
	for _, k := range keys {
		i := h1.hash(k)
		byBucket[i] = append(byBucket[i], k)
	}
	ph := &PerfectHash{level1: h1, buckets: make([]bucket, n), nKeys: n}
	offset := 0
	occupied := make([]bool, 0, 64)
	for i, bk := range byBucket {
		size := len(bk) * len(bk)
		ph.buckets[i] = bucket{offset: offset, size: size}
		if size > 0 {
			fn, err := findInjective(rng, bk, uint64(size), &occupied)
			if err != nil {
				return nil, err
			}
			ph.buckets[i].fn = fn
		}
		offset += size
	}
	ph.total = offset
	return ph, nil
}

func findInjective(rng *rand.Rand, keys []uint64, size uint64, scratch *[]bool) (universal, error) {
	if len(keys) == 1 {
		return universal{a: 1, b: 0, m: size}, nil
	}
	for try := 0; try < maxRetries; try++ {
		fn := randomUniversal(rng, size)
		if cap(*scratch) < int(size) {
			*scratch = make([]bool, size)
		}
		occ := (*scratch)[:size]
		for i := range occ {
			occ[i] = false
		}
		ok := true
		for _, k := range keys {
			s := fn.hash(k)
			if occ[s] {
				ok = false
				break
			}
			occ[s] = true
		}
		if ok {
			return fn, nil
		}
	}
	return universal{}, fmt.Errorf("%w: level 2 (bucket of %d keys)", ErrTooManyRetries, len(keys))
}

// Total returns the size of the slot space; Σ b² ≤ 4·len(keys).
func (p *PerfectHash) Total() int { return p.total }

// NKeys returns the number of keys the hash was built over.
func (p *PerfectHash) NKeys() int { return p.nKeys }

// Slot returns the key's slot in [0, Total()). Keys in the build set map to
// distinct slots; other keys map to an arbitrary slot (membership must be
// confirmed by the caller, which is exactly what the 1-query decoder does).
func (p *PerfectHash) Slot(key uint64) int {
	if p.total == 0 {
		return 0
	}
	b := p.buckets[p.level1.hash(key)]
	if b.size == 0 {
		return b.offset % p.total
	}
	return b.offset + int(b.fn.hash(key))
}
