package hashing

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// fksMagic guards the serialized form.
var fksMagic = [4]byte{'F', 'K', 'S', '1'}

// MarshalBinary serializes the hash description — the shared state a
// decoder needs besides the labels. Its size quantifies the deviation noted
// in the onequery package: the paper sketches an O(log n)-bit description,
// while a concrete FKS table costs Θ(n) words (level-1 params, then per
// bucket: size and, when occupied, its universal-hash parameters). Offsets
// are reconstructed from the sizes, so they are not stored.
func (p *PerfectHash) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(fksMagic[:])
	var scratch [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUv(uint64(p.nKeys))
	putUv(p.level1.a)
	putUv(p.level1.b)
	putUv(p.level1.m)
	putUv(uint64(len(p.buckets)))
	for _, bk := range p.buckets {
		putUv(uint64(bk.size))
		if bk.size > 0 {
			putUv(bk.fn.a)
			putUv(bk.fn.b)
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary reconstructs a hash from MarshalBinary output.
func (p *PerfectHash) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := r.Read(magic[:]); err != nil || magic != fksMagic {
		return fmt.Errorf("hashing: bad magic")
	}
	getUv := func() (uint64, error) { return binary.ReadUvarint(r) }
	nKeys, err := getUv()
	if err != nil {
		return fmt.Errorf("hashing: nKeys: %w", err)
	}
	a1, err := getUv()
	if err != nil {
		return fmt.Errorf("hashing: level1.a: %w", err)
	}
	b1, err := getUv()
	if err != nil {
		return fmt.Errorf("hashing: level1.b: %w", err)
	}
	m1, err := getUv()
	if err != nil {
		return fmt.Errorf("hashing: level1.m: %w", err)
	}
	nBuckets, err := getUv()
	if err != nil {
		return fmt.Errorf("hashing: bucket count: %w", err)
	}
	const maxBuckets = 1 << 31
	if nBuckets > maxBuckets {
		return fmt.Errorf("hashing: %d buckets", nBuckets)
	}
	p.nKeys = int(nKeys)
	p.level1 = universal{a: a1, b: b1, m: m1}
	p.buckets = make([]bucket, nBuckets)
	offset := 0
	for i := range p.buckets {
		size, err := getUv()
		if err != nil {
			return fmt.Errorf("hashing: bucket %d size: %w", i, err)
		}
		bk := bucket{offset: offset, size: int(size)}
		if size > 0 {
			if bk.fn.a, err = getUv(); err != nil {
				return fmt.Errorf("hashing: bucket %d a: %w", i, err)
			}
			if bk.fn.b, err = getUv(); err != nil {
				return fmt.Errorf("hashing: bucket %d b: %w", i, err)
			}
			bk.fn.m = size
		}
		p.buckets[i] = bk
		offset += int(size)
	}
	p.total = offset
	return nil
}
