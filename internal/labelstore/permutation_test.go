package labelstore

import (
	"bytes"
	"encoding/binary"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// permutedStore encodes g degree-ordered and returns the store file plus the
// labeling it came from.
func permutedStore(t *testing.T, g *graph.Graph) (*File, *core.Labeling) {
	t.Helper()
	s := core.NewPowerLawScheme(2.5)
	s.SetLayout(core.LayoutDegree)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		t.Fatal("pipeline labeling is not arena-backed")
	}
	if order == nil {
		t.Fatal("degree layout produced no permutation")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	f, err := NewPermutedArenaFile(lab.Scheme(), map[string]string{"n": strconv.Itoa(g.N())}, slab, bitLens, order)
	if err != nil {
		t.Fatal(err)
	}
	return f, lab
}

// TestPermutedRoundTrip checks that a degree-ordered store survives both the
// streaming and the zero-copy reader with its permutation intact: every label
// read back is byte-equal to the logical label, and the reconstructed engine
// answers exactly the graph's adjacency.
func TestPermutedRoundTrip(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(300, 2.5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	f, lab := permutedStore(t, g)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, r := range []struct {
		name string
		load func() (*File, error)
	}{
		{"Read", func() (*File, error) { return Read(bytes.NewReader(data)) }},
		{"ReadBytes", func() (*File, error) { return ReadBytes(data) }},
	} {
		t.Run(r.name, func(t *testing.T) {
			got, err := r.load()
			if err != nil {
				t.Fatal(err)
			}
			if got.LayoutOrder() == nil {
				t.Fatal("loaded store lost its layout permutation")
			}
			for v := 0; v < g.N(); v++ {
				want, err := lab.Label(v)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Labels[v].Equal(want) {
					t.Fatalf("label %d differs after round trip", v)
				}
			}
			slab, bitLens, order, ok := got.ArenaLayout()
			if !ok {
				t.Fatal("loaded store is not arena-backed")
			}
			eng, err := core.NewQueryEngineFromPermutedArena(slab, bitLens, order)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < g.N(); u++ {
				for _, v := range g.Neighbors(u) {
					adj, err := eng.Adjacent(u, int(v))
					if err != nil {
						t.Fatal(err)
					}
					if !adj {
						t.Fatalf("edge (%d,%d) answered false", u, v)
					}
				}
			}
		})
	}
}

// TestPermutedStoreArenaHidden: the plain Arena accessor must refuse to hand
// out a permuted slab — a caller unaware of the permutation would misread
// every label offset.
func TestPermutedStoreArenaHidden(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(120, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := permutedStore(t, g)
	if _, _, ok := f.Arena(); ok {
		t.Fatal("Arena() handed out a permuted slab")
	}
	if _, _, _, ok := f.ArenaLayout(); !ok {
		t.Fatal("ArenaLayout() should expose the permuted slab")
	}
}

// permBlockRange locates the [start, end) byte range of the permutation
// block inside a serialized format-v2 store image by walking the header
// fields in front of it.
func permBlockRange(t *testing.T, data []byte, n int) (int, int) {
	t.Helper()
	off := 5 // magic + version
	uv := func(what string) uint64 {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			t.Fatalf("parsing %s at offset %d", what, off)
		}
		off += k
		return v
	}
	skipString := func(what string) { off += int(uv(what)) }
	skipString("scheme")
	nParams := uv("param count")
	for i := uint64(0); i < nParams; i++ {
		skipString("param key")
		skipString("param value")
	}
	if got := uv("label count"); int(got) != n {
		t.Fatalf("label count %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		uv("label length")
	}
	start := off
	for i := 0; i < n; i++ {
		uv("perm entry")
	}
	return start, off
}

// TestPermutationCorruptionErrors is the load-time safety property of the
// permutation block: any truncation inside it, and any single corrupted byte
// of it, must make both readers fail — a damaged permutation may never load
// and silently mis-answer. (A corrupted entry either breaks the uvarint
// framing, leaves the permutation's range, or collides with another entry;
// all three are checked at load.)
func TestPermutationCorruptionErrors(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(60, 2.5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := permutedStore(t, g)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	start, end := permBlockRange(t, data, g.N())
	if start >= end {
		t.Fatalf("degenerate perm block [%d,%d)", start, end)
	}
	// Sanity: the intact image still parses.
	if _, err := ReadBytes(data); err != nil {
		t.Fatal(err)
	}
	for cut := start; cut < end; cut++ {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("Read accepted a store truncated at byte %d (perm block [%d,%d))", cut, start, end)
		}
		if _, err := ReadBytes(data[:cut]); err == nil {
			t.Fatalf("ReadBytes accepted a store truncated at byte %d", cut)
		}
	}
	for i := start; i < end; i++ {
		bad := bytes.Clone(data)
		bad[i] ^= 0xFF
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("Read accepted a store with perm byte %d corrupted", i)
		}
		if _, err := ReadBytes(bad); err == nil {
			t.Fatalf("ReadBytes accepted a store with perm byte %d corrupted", i)
		}
	}
}

// TestNewPermutedArenaFileValidates rejects malformed permutations at
// construction: wrong length, out-of-range entries, duplicates.
func TestNewPermutedArenaFileValidates(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(80, 2.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := permutedStore(t, g)
	slab, bitLens, order, _ := f.ArenaLayout()
	params := map[string]string{"n": strconv.Itoa(g.N())}
	cases := map[string][]int32{
		"short":        order[:len(order)-1],
		"out-of-range": append(append([]int32{}, order[:len(order)-1]...), int32(len(order))),
		"duplicate":    append(append([]int32{}, order[:len(order)-1]...), order[0]),
	}
	for name, bad := range cases {
		if _, err := NewPermutedArenaFile(f.Scheme, params, slab, bitLens, bad); err == nil {
			t.Errorf("%s permutation accepted", name)
		}
	}
}

// TestV1LayoutParamRejected: the v1 format predates physical layouts, so a v1
// store that claims one is corrupt by definition and must not load (its
// labels would be read un-permuted).
func TestV1LayoutParamRejected(t *testing.T) {
	f := sampleFile(t)
	f.Params["layout"] = "degree"
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("v1 store declaring a layout was accepted")
	}
}

// TestV2WithoutPermutationBackCompat: id-ordered v2 stores carry no
// permutation block and must keep loading exactly as before the layout
// extension — LayoutOrder nil, arena exposed by the plain accessor.
func TestV2WithoutPermutationBackCompat(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(100, 2.5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := lab.Arena()
	if !ok {
		t.Fatal("id-ordered pipeline labeling is not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	f, err := NewArenaFile(lab.Scheme(), map[string]string{"n": strconv.Itoa(g.N())}, slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, load := range []func() (*File, error){
		func() (*File, error) { return Read(bytes.NewReader(data)) },
		func() (*File, error) { return ReadBytes(data) },
	} {
		got, err := load()
		if err != nil {
			t.Fatal(err)
		}
		if got.LayoutOrder() != nil {
			t.Fatal("id-ordered store grew a permutation")
		}
		if _, _, ok := got.Arena(); !ok {
			t.Fatal("id-ordered v2 store hides its arena")
		}
		for v := 0; v < g.N(); v++ {
			want, err := lab.Label(v)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Labels[v].Equal(want) {
				t.Fatalf("label %d differs", v)
			}
		}
	}
}
