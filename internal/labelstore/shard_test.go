package labelstore

import (
	"bytes"
	"encoding/binary"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// shardStores splits a degree-ordered labeling of g into count shard store
// files, returning them alongside the source labeling.
func shardStores(t *testing.T, g *graph.Graph, count int, fn core.ShardFn) ([]*File, *core.Labeling) {
	t.Helper()
	s := core.NewPowerLawScheme(2.5)
	s.SetLayout(core.LayoutDegree)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		t.Fatal("pipeline labeling is not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	arenas, err := core.ShardLabelArenas(slab, bitLens, order, count, fn)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*File, count)
	params := map[string]string{"n": strconv.Itoa(g.N())}
	for i, a := range arenas {
		m := core.ShardMap{Count: count, Index: i, Fn: fn}
		f, err := NewShardArenaFile(lab.Scheme(), params, a.Slab, a.BitLens, order, m)
		if err != nil {
			t.Fatalf("shard %d store: %v", i, err)
		}
		files[i] = f
	}
	return files, lab
}

// routeShardIdx mirrors the router's rule (see core.ShardOwner docs): a thin
// endpoint forces its owner, otherwise the min owner answers.
func routeShardIdx(e *core.QueryEngine, fn core.ShardFn, count, u, v int) int {
	n := e.N()
	ou, ov := core.ShardOwner(fn, u, n, count), core.ShardOwner(fn, v, n, count)
	uFat, vFat := e.Fat(u), e.Fat(v)
	switch {
	case u == v || uFat == vFat:
		return min(ou, ov)
	case !uFat:
		return ou
	default:
		return ov
	}
}

// TestShardStoreRoundTrip: every shard file survives both readers with its
// shard map, permutation, and labels intact, and the reconstructed per-shard
// engines — routed by the ownership rule — answer exactly the graph's edges.
func TestShardStoreRoundTrip(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(200, 2.5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []core.ShardFn{core.ShardRange, core.ShardHash} {
		files, _ := shardStores(t, g, 3, fn)
		engines := make([]*core.QueryEngine, len(files))
		for i, f := range files {
			var buf bytes.Buffer
			if err := Write(&buf, f); err != nil {
				t.Fatal(err)
			}
			data := buf.Bytes()
			for _, r := range []struct {
				name string
				load func() (*File, error)
			}{
				{"Read", func() (*File, error) { return Read(bytes.NewReader(data)) }},
				{"ReadBytes", func() (*File, error) { return ReadBytes(data) }},
			} {
				got, err := r.load()
				if err != nil {
					t.Fatalf("%s shard %d: %v", r.name, i, err)
				}
				m, ok := got.Shard()
				if !ok {
					t.Fatalf("%s shard %d: loaded store lost its shard map", r.name, i)
				}
				if want := (core.ShardMap{Count: 3, Index: i, Fn: fn}); m != want {
					t.Fatalf("%s shard %d: shard map %+v, want %+v", r.name, i, m, want)
				}
				for v := range got.Labels {
					if !got.Labels[v].Equal(f.Labels[v]) {
						t.Fatalf("%s shard %d: label %d differs after round trip", r.name, i, v)
					}
				}
				slab, bitLens, order, ok := got.ArenaLayout()
				if !ok {
					t.Fatalf("%s shard %d: store is not arena-backed", r.name, i)
				}
				eng, err := core.NewQueryEngineFromPermutedArena(slab, bitLens, order)
				if err != nil {
					t.Fatalf("%s shard %d engine: %v", r.name, i, err)
				}
				if err := eng.SetShard(m); err != nil {
					t.Fatalf("%s shard %d SetShard: %v", r.name, i, err)
				}
				engines[i] = eng
			}
		}
		for u := 0; u < g.N(); u++ {
			for _, v32 := range g.Neighbors(u) {
				v := int(v32)
				s := routeShardIdx(engines[0], fn, 3, u, v)
				adj, err := engines[s].Adjacent(u, v)
				if err != nil {
					t.Fatalf("fn=%v: edge (%d,%d) on shard %d: %v", fn, u, v, s, err)
				}
				if !adj {
					t.Fatalf("fn=%v: edge (%d,%d) answered false on shard %d", fn, u, v, s)
				}
			}
		}
	}
}

// shardBlockRange locates the [start, end) byte range of the shard block in a
// serialized format-v2 store image by walking every header field in front of
// it (including the permutation block when the store is degree-ordered).
func shardBlockRange(t *testing.T, data []byte, n int, permuted bool) (int, int) {
	t.Helper()
	off := 5 // magic + version
	uv := func(what string) uint64 {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 {
			t.Fatalf("parsing %s at offset %d", what, off)
		}
		off += k
		return v
	}
	skipString := func(what string) { off += int(uv(what)) }
	skipString("scheme")
	nParams := uv("param count")
	for i := uint64(0); i < nParams; i++ {
		skipString("param key")
		skipString("param value")
	}
	if got := uv("label count"); int(got) != n {
		t.Fatalf("label count %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		uv("label length")
	}
	if permuted {
		for i := 0; i < n; i++ {
			uv("perm entry")
		}
	}
	start := off
	uv("shard index")
	off++ // ownership function byte
	uv("shard owned count")
	return start, off
}

// TestShardCorruptionErrors is the load-time safety property of the shard
// block, mirroring the permutation block's: any truncation inside it, and any
// single corrupted byte of it, must make both readers fail. (A corrupted
// field either breaks the uvarint framing — shifting the blob length out of
// agreement — or decodes to a map the validators reject: index out of range,
// unknown function, owned count disagreeing with the function, or full thin
// bodies where the claimed map demands stubs.)
func TestShardCorruptionErrors(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(60, 2.5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := shardStores(t, g, 3, core.ShardRange)
	// Shard 1: a nonzero index exercises both uvarint fields.
	var buf bytes.Buffer
	if err := Write(&buf, files[1]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	start, end := shardBlockRange(t, data, g.N(), true)
	if start >= end {
		t.Fatalf("degenerate shard block [%d,%d)", start, end)
	}
	// Sanity: the intact image still parses.
	if _, err := ReadBytes(data); err != nil {
		t.Fatal(err)
	}
	for cut := start; cut < end; cut++ {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("Read accepted a store truncated at byte %d (shard block [%d,%d))", cut, start, end)
		}
		if _, err := ReadBytes(data[:cut]); err == nil {
			t.Fatalf("ReadBytes accepted a store truncated at byte %d", cut)
		}
	}
	for i := start; i < end; i++ {
		bad := bytes.Clone(data)
		bad[i] ^= 0xFF
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("Read accepted a store with shard byte %d corrupted", i)
		}
		if _, err := ReadBytes(bad); err == nil {
			t.Fatalf("ReadBytes accepted a store with shard byte %d corrupted", i)
		}
	}
}

// TestShardWrongIndexRejected: patching the serialized index to a different
// but structurally valid shard (same count, near-equal owned counts) must
// still fail on open — the stub pattern of the blob belongs to the true
// index, so labels the forged map calls foreign carry full thin bodies.
func TestShardWrongIndexRejected(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(60, 2.5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	files, _ := shardStores(t, g, 3, core.ShardRange)
	var buf bytes.Buffer
	if err := Write(&buf, files[1]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	start, _ := shardBlockRange(t, data, g.N(), true)
	if data[start] != 1 {
		t.Fatalf("shard index byte at %d is %d, want 1", start, data[start])
	}
	for _, forged := range []byte{0, 2} {
		bad := bytes.Clone(data)
		bad[start] = forged
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("Read accepted shard 1's blob under forged index %d", forged)
		}
		if _, err := ReadBytes(bad); err == nil {
			t.Fatalf("ReadBytes accepted shard 1's blob under forged index %d", forged)
		}
	}
}

// TestNewShardArenaFileValidates rejects maps that disagree with the arena at
// construction: an overlapping/wrong-index map (labels it calls foreign have
// full bodies), an out-of-range index, a degenerate count, an unknown
// ownership function.
func TestNewShardArenaFileValidates(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(60, 2.5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	files, lab := shardStores(t, g, 3, core.ShardRange)
	slab, bitLens, order, _ := files[0].ArenaLayout()
	params := map[string]string{"n": strconv.Itoa(g.N())}
	for name, m := range map[string]core.ShardMap{
		"wrong index":      {Count: 3, Index: 1, Fn: core.ShardRange},
		"wrong function":   {Count: 3, Index: 0, Fn: core.ShardHash},
		"index range":      {Count: 3, Index: 3, Fn: core.ShardRange},
		"one shard":        {Count: 1, Index: 0, Fn: core.ShardRange},
		"unknown function": {Count: 3, Index: 0, Fn: core.ShardFn(9)},
	} {
		if _, err := NewShardArenaFile(lab.Scheme(), params, slab, bitLens, order, m); err == nil {
			t.Errorf("%s: shard map %+v accepted over shard 0's arena", name, m)
		}
	}
}

// TestV1ShardsParamRejected: the v1 format predates sharding, so a v1 store
// that claims shards is corrupt by definition and must not load (its stripped
// foreign labels would silently answer false).
func TestV1ShardsParamRejected(t *testing.T) {
	f := sampleFile(t)
	f.Params["shards"] = "3"
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("v1 store declaring shards was accepted")
	}
}

// TestUnshardedStoreNoShard: ordinary v2 stores (permuted or not) report no
// shard map and keep loading exactly as before the shard extension.
func TestUnshardedStoreNoShard(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(80, 2.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := permutedStore(t, g)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, load := range []func() (*File, error){
		func() (*File, error) { return Read(bytes.NewReader(data)) },
		func() (*File, error) { return ReadBytes(data) },
	} {
		got, err := load()
		if err != nil {
			t.Fatal(err)
		}
		if m, ok := got.Shard(); ok {
			t.Fatalf("unsharded store grew shard map %+v", m)
		}
	}
}
