package labelstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/internal/bitstr"
)

// ReadBytes parses a store from an in-memory byte slice — typically a
// memory-mapped file (see Open). For a format-v2 store the body blob is
// adopted zero-copy: the returned File's arena is a sub-slice of data and
// the labels are views into it, so nothing is relocated and nothing is
// written. data must therefore stay alive (and unmodified) for the lifetime
// of the File; a read-only mapping is fine because, unlike the streaming
// Read path, ReadBytes never masks padding bits in place. Files written by
// Write carry zero padding (the slab writer guarantees it), so label
// equality is unaffected; a hand-built v2 file with dirty padding would
// compare labels unequal while still answering queries correctly (the query
// engine only probes bits inside each label's declared length).
//
// Format-v1 payloads are not word-aligned, so they take the copying Read
// path and the returned File does not reference data at all.
func ReadBytes(data []byte) (*File, error) {
	p := &byteParser{data: data}
	if err := p.need(5); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrFormat, err)
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:4])
	}
	ver := data[4]
	p.off = 5
	switch ver {
	case version1:
		// v1 labels are copied and masked on the heap anyway; reuse the
		// streaming parser.
		return Read(bytes.NewReader(data))
	case version2:
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}
	scheme, err := p.string()
	if err != nil {
		return nil, err
	}
	nParams, err := p.uvarint("param count")
	if err != nil {
		return nil, err
	}
	if nParams > maxParams {
		return nil, fmt.Errorf("%w: %d params", ErrFormat, nParams)
	}
	params := make(map[string]string, nParams)
	for i := uint64(0); i < nParams; i++ {
		k, err := p.string()
		if err != nil {
			return nil, err
		}
		v, err := p.string()
		if err != nil {
			return nil, err
		}
		params[k] = v
	}
	n, err := p.uvarint("label count")
	if err != nil {
		return nil, err
	}
	if n > maxLabels {
		return nil, fmt.Errorf("%w: %d labels", ErrFormat, n)
	}
	bitLens := make([]int, n)
	var words int64
	for i := range bitLens {
		bits, err := p.uvarint("label length")
		if err != nil {
			return nil, fmt.Errorf("%w: label %d length: %v", ErrFormat, i, err)
		}
		if bits > maxLabelBits {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrFormat, i, bits)
		}
		bitLens[i] = int(bits)
		words += int64(bitstr.SlabWords(int(bits)))
	}
	var order []int32
	if lay, ok := params[layoutKey]; ok {
		if lay != layoutDegree {
			return nil, fmt.Errorf("%w: unknown layout %q", ErrFormat, lay)
		}
		// Range-checked here, permutation-checked (no label missing or
		// repeated) by SlabViewsPermuted below: a truncated or garbage block
		// errors at load, it can never mis-answer.
		order = make([]int32, n)
		for i := range order {
			v, err := p.uvarint("layout permutation entry")
			if err != nil {
				return nil, fmt.Errorf("%w: layout permutation entry %d: %v", ErrFormat, i, err)
			}
			if v >= n {
				return nil, fmt.Errorf("%w: layout permutation entry %d = %d of %d labels", ErrFormat, i, v, n)
			}
			order[i] = int32(v)
		}
	}
	var sb *shardBlock
	if val, ok := params[shardsKey]; ok {
		count, err := parseShardCount(val)
		if err != nil {
			return nil, err
		}
		index, err := p.uvarint("shard index")
		if err != nil {
			return nil, err
		}
		if err := p.need(1); err != nil {
			return nil, fmt.Errorf("%w: shard ownership function: %v", ErrFormat, err)
		}
		fnByte := p.data[p.off]
		p.off++
		owned, err := p.uvarint("shard owned count")
		if err != nil {
			return nil, err
		}
		if sb, err = newShardBlock(count, index, fnByte, owned, int(n)); err != nil {
			return nil, err
		}
	}
	dist, err := parseSchemeParams(params, int(n))
	if err != nil {
		return nil, err
	}
	if dist != nil && sb != nil {
		return nil, fmt.Errorf("%w: sharded store declares distance scheme %q", ErrFormat, dist.Kind)
	}
	// Validate the declared geometry before any view is constructed: the
	// blob-length field must agree with the bit lengths, and the blob must
	// actually be present in data — a short or truncated body fails here, at
	// load, never at query time.
	need := words << 3
	blobLen, err := p.uvarint("blob length")
	if err != nil {
		return nil, err
	}
	if err := checkBlobLen(int64(blobLen), need); err != nil {
		return nil, err
	}
	if int64(len(data)-p.off) < need {
		return nil, fmt.Errorf("%w: blob truncated: %d bytes of body, lengths require %d",
			ErrFormat, len(data)-p.off, need)
	}
	arena := data[p.off : p.off+int(need) : p.off+int(need)]
	// SlabViewsPermuted (identity when order is nil) never masks, keeping
	// read-only mappings safe; it also revalidates the permutation.
	labels, err := bitstr.SlabViewsPermuted(arena, bitLens, order)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	f := &File{Scheme: scheme, Params: params, Labels: labels, arena: arena, bitLens: bitLens, order: order}
	if sb != nil {
		if err := validateShardFile(f, sb); err != nil {
			return nil, err
		}
		f.shard = sb
	}
	f.dist = dist
	return f, nil
}

// checkBlobLen validates the declared blob byte count against the size the
// per-label bit lengths occupy. The two mismatch directions get distinct
// messages: a short blob is the truncation/corruption case, an oversized one
// a disagreeing header.
func checkBlobLen(blobLen, need int64) error {
	switch {
	case blobLen < need:
		return fmt.Errorf("%w: blob of %d bytes too short, declared lengths require %d", ErrFormat, blobLen, need)
	case blobLen > need:
		return fmt.Errorf("%w: blob of %d bytes, declared lengths occupy only %d", ErrFormat, blobLen, need)
	}
	return nil
}

// byteParser is a bounds-checked cursor over an in-memory store image.
type byteParser struct {
	data []byte
	off  int
}

func (p *byteParser) need(n int) error {
	if len(p.data)-p.off < n {
		return fmt.Errorf("need %d bytes, have %d", n, len(p.data)-p.off)
	}
	return nil
}

func (p *byteParser) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(p.data[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s: truncated or overlong uvarint", ErrFormat, what)
	}
	p.off += n
	return v, nil
}

func (p *byteParser) string() (string, error) {
	n, err := p.uvarint("string length")
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("%w: string of %d bytes", ErrFormat, n)
	}
	if err := p.need(int(n)); err != nil {
		return "", fmt.Errorf("%w: string payload: %v", ErrFormat, err)
	}
	s := string(p.data[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

// MappedFile is a File backed by a memory-mapped store file. For format-v2
// stores on platforms with mmap support, the arena (and every label view) is
// a window into the page cache: Open costs O(header) regardless of body
// size, and any number of processes serving the same file share one
// physical copy of the labels. Close unmaps; the File and anything derived
// from its arena (query engines included) must not be used afterwards.
type MappedFile struct {
	*File
	mapping []byte
}

// Mapped reports whether the file's labels are served from a live memory
// mapping (false for v1 stores and on platforms without mmap, where Open
// fell back to a heap copy and Close is a no-op).
func (m *MappedFile) Mapped() bool { return m.mapping != nil }

// Close releases the mapping, if any.
func (m *MappedFile) Close() error {
	if m.mapping == nil {
		return nil
	}
	b := m.mapping
	m.mapping = nil
	storeMetrics.MappedBytes.Add(-int64(len(b)))
	return munmapFile(b)
}

// Open maps the store at path and parses it with ReadBytes. A format-v2
// store is adopted zero-copy from the mapping; a v1 store (or a platform
// without mmap, or a file mmap refuses) is loaded through the plain copying
// reader instead, so Open works everywhere and is merely fastest where it
// matters. The caller owns the returned MappedFile and must Close it when
// the labels are no longer in use.
func Open(path string) (*MappedFile, error) {
	start := time.Now()
	defer func() { storeMetrics.OpenNs.ObserveDuration(time.Since(start)) }()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || size > int64(maxInt) {
		return openFallback(f)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return openFallback(f)
	}
	store, err := ReadBytes(data)
	if err != nil {
		_ = munmapFile(data)
		return nil, err
	}
	arena, _, _, ok := store.ArenaLayout()
	if !ok {
		// v1: every label was copied to the heap, nothing references the
		// mapping — drop it now rather than at Close.
		_ = munmapFile(data)
		storeMetrics.OpenCopy.Inc()
		return &MappedFile{File: store}, nil
	}
	storeMetrics.OpenMmap.Inc()
	storeMetrics.MappedBytes.Add(int64(len(data)))
	storeMetrics.BlobBytes.Add(int64(len(arena)))
	return &MappedFile{File: store, mapping: data}, nil
}

// openFallback reads the store sequentially from the start of f.
func openFallback(f *os.File) (*MappedFile, error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	store, err := Read(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	storeMetrics.OpenCopy.Inc()
	if arena, _, _, ok := store.ArenaLayout(); ok {
		storeMetrics.BlobBytes.Add(int64(len(arena)))
	}
	return &MappedFile{File: store}, nil
}

const maxInt = int(^uint(0) >> 1)
