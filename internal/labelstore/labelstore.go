// Package labelstore persists labelings to a compact binary format, so that
// labels can be computed once and then distributed to the peers that answer
// queries (the deployment model of Section 1: structural information
// disseminated to vertices and stored locally).
//
// Format (all integers little-endian or uvarint):
//
//	magic   "PLLB"               4 bytes
//	version u8                   1 or 2
//	scheme  uvarint len + bytes  scheme name (informational)
//	params  uvarint count, then  key/value string pairs (decoder metadata,
//	        per pair: len+bytes   e.g. "n", "w")
//	n       uvarint              number of labels
//
// followed by the label payloads. Version 1 packs each label tightly:
//
//	labels  n × (uvarint bit length + ceil(len/8) bytes)
//
// Version 2 stores the word-aligned slab of the encode pipeline verbatim —
// one header, one body blob:
//
//	lens    n × uvarint          per-label bit lengths
//	blob    uvarint byte count,  label v starts at byte offset
//	        then the slab        8·Σ_{u<v} ceil(lens[u]/64)
//
// A v2 blob is byte-identical to the in-memory arena of a pipeline-built
// core.Labeling, so Write(arena-backed file) is a header plus a single
// contiguous copy, and Read hands the blob to core.NewQueryEngineFromArena
// with zero relocation. Read understands both versions; Write emits v2 when
// the file is arena-backed (NewArenaFile) and v1 otherwise.
package labelstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"

	"repro/internal/bitstr"
)

// ErrFormat is returned when the input is not a valid label store.
var ErrFormat = errors.New("labelstore: malformed input")

var magic = [4]byte{'P', 'L', 'L', 'B'}

const (
	version1 = 1 // tightly packed per-label payloads
	version2 = 2 // single word-aligned slab blob
)

// Hard caps on header-declared sizes, shared by the streaming (Read) and
// in-memory (ReadBytes) parsers: a corrupt or adversarial header must fail
// validation before it can drive a large allocation or an out-of-bounds
// view.
const (
	maxParams    = 1 << 16
	maxLabels    = 1 << 31
	maxString    = 1 << 20
	maxLabelBits = 1 << 34
	// blobChunk bounds how much body is bought at a time on the streaming
	// path, so a header declaring a huge blob over a short stream fails at
	// EOF having over-allocated at most one chunk.
	blobChunk = 64 << 20
)

// File is an in-memory representation of a label store.
type File struct {
	Scheme string
	Params map[string]string
	Labels []bitstr.String
	// arena, when non-nil, is the word-aligned slab the Labels are views
	// into, with bitLens the per-label bit lengths. Set by NewArenaFile and
	// by Read on v2 files; selects the v2 single-blob path in Write.
	arena   []byte
	bitLens []int
}

// N returns the number of labels.
func (f *File) N() int { return len(f.Labels) }

// NewArenaFile builds a store over a word-aligned label slab (the arena of a
// pipeline-built core.Labeling): label v occupies bits
// [off_v, off_v+bitLens[v]) where off_v = 64·Σ_{u<v} ceil(bitLens[u]/64).
// Write serializes such a file in format v2 — one header and the slab as a
// single body blob.
func NewArenaFile(scheme string, params map[string]string, slab []byte, bitLens []int) (*File, error) {
	labels := make([]bitstr.String, len(bitLens))
	var off int64
	for v, bits := range bitLens {
		view, err := bitstr.SlabView(slab, off, bits)
		if err != nil {
			return nil, fmt.Errorf("labelstore: arena label %d: %w", v, err)
		}
		labels[v] = view
		off += int64(bitstr.SlabWords(bits)) * bitstr.SlabWordBits
	}
	if int(off>>3) != len(slab) {
		return nil, fmt.Errorf("labelstore: arena slab has %d bytes, labels occupy %d", len(slab), off>>3)
	}
	return &File{Scheme: scheme, Params: params, Labels: labels, arena: slab, bitLens: bitLens}, nil
}

// Arena returns the word-aligned slab backing the store plus the per-label
// bit lengths, or ok=false when the store is not arena-backed (a v1 file).
// The pair is accepted directly by core.NewQueryEngineFromArena.
func (f *File) Arena() (slab []byte, bitLens []int, ok bool) {
	return f.arena, f.bitLens, f.arena != nil
}

// IntParam returns an integer metadata parameter.
func (f *File) IntParam(key string) (int, error) {
	v, ok := f.Params[key]
	if !ok {
		return 0, fmt.Errorf("%w: missing param %q", ErrFormat, key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: param %q: %v", ErrFormat, key, err)
	}
	return n, nil
}

// Write serializes the store: format v2 (single slab blob) for arena-backed
// files, v1 (tightly packed per-label payloads) otherwise.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	ver := byte(version1)
	if f.arena != nil {
		ver = version2
	}
	if err := bw.WriteByte(ver); err != nil {
		return err
	}
	if err := writeString(bw, f.Scheme); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.Params))
	for k := range f.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic files
	if err := writeUvarint(bw, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeString(bw, k); err != nil {
			return err
		}
		if err := writeString(bw, f.Params[k]); err != nil {
			return err
		}
	}
	if ver == version2 {
		if err := writeUvarint(bw, uint64(len(f.bitLens))); err != nil {
			return err
		}
		for _, bits := range f.bitLens {
			if err := writeUvarint(bw, uint64(bits)); err != nil {
				return err
			}
		}
		if err := writeUvarint(bw, uint64(len(f.arena))); err != nil {
			return err
		}
		if _, err := bw.Write(f.arena); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := writeUvarint(bw, uint64(len(f.Labels))); err != nil {
		return err
	}
	for _, l := range f.Labels {
		if err := writeUvarint(bw, uint64(l.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(l.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a store written by Write.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrFormat, err)
	}
	if ver != version1 && ver != version2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}
	scheme, err := readString(br)
	if err != nil {
		return nil, err
	}
	nParams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: param count: %v", ErrFormat, err)
	}
	if nParams > maxParams {
		return nil, fmt.Errorf("%w: %d params", ErrFormat, nParams)
	}
	params := make(map[string]string, nParams)
	for i := uint64(0); i < nParams; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readString(br)
		if err != nil {
			return nil, err
		}
		params[k] = v
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: label count: %v", ErrFormat, err)
	}
	if n > maxLabels {
		return nil, fmt.Errorf("%w: %d labels", ErrFormat, n)
	}
	if ver == version2 {
		return readSlab(br, scheme, params, int(n))
	}
	// Arena decode: all label payloads land in one contiguous slab and the
	// returned strings are (offset, bitlen) views into it — one allocation
	// for the whole store instead of one per label, matching the layout
	// core.(*Labeling).Compact produces.
	type span struct {
		off  int
		bits int
	}
	spans := make([]span, n)
	var slab []byte
	for i := uint64(0); i < n; i++ {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d length: %v", ErrFormat, i, err)
		}
		if bits > maxLabelBits {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrFormat, i, bits)
		}
		nBytes := int((bits + 7) / 8)
		off := len(slab)
		slab = slices.Grow(slab, nBytes)[:off+nBytes]
		if _, err := io.ReadFull(br, slab[off:]); err != nil {
			return nil, fmt.Errorf("%w: label %d payload: %v", ErrFormat, i, err)
		}
		spans[i] = span{off: off, bits: int(bits)}
	}
	// The slab no longer moves; build the views.
	labels := make([]bitstr.String, n)
	for i, sp := range spans {
		end := sp.off + (sp.bits+7)/8
		s, err := bitstr.Wrap(slab[sp.off:end:end], sp.bits)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d: %v", ErrFormat, i, err)
		}
		labels[i] = s
	}
	return &File{Scheme: scheme, Params: params, Labels: labels}, nil
}

// readSlab parses the v2 payload: n bit lengths followed by the word-aligned
// slab as one blob. The blob is read with a single contiguous ReadFull and
// becomes the store's arena; labels are zero-copy views into it.
func readSlab(br *bufio.Reader, scheme string, params map[string]string, n int) (*File, error) {
	bitLens := make([]int, n)
	var words int64
	for i := range bitLens {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d length: %v", ErrFormat, i, err)
		}
		if bits > maxLabelBits {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrFormat, i, bits)
		}
		bitLens[i] = int(bits)
		words += int64(bitstr.SlabWords(int(bits)))
	}
	// Validate the declared geometry before buying the body: the blob-length
	// field must agree with what the bit lengths occupy (both mismatch
	// directions are corruption), and the body is then read in bounded
	// chunks so a header lying about a huge blob fails at EOF instead of
	// forcing one giant allocation up front.
	need := words << 3
	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: blob length: %v", ErrFormat, err)
	}
	if err := checkBlobLen(int64(blobLen), need); err != nil {
		return nil, err
	}
	slab := make([]byte, 0, min(need, blobChunk))
	for int64(len(slab)) < need {
		chunk := int(min(need-int64(len(slab)), blobChunk))
		off := len(slab)
		slab = slices.Grow(slab, chunk)[:off+chunk]
		if _, err := io.ReadFull(br, slab[off:]); err != nil {
			return nil, fmt.Errorf("%w: blob payload at byte %d of %d: %v", ErrFormat, off, need, err)
		}
	}
	f, err := NewArenaFile(scheme, params, slab, bitLens)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return f, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrFormat, err)
	}
	if n > maxString {
		return "", fmt.Errorf("%w: string of %d bytes", ErrFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string payload: %v", ErrFormat, err)
	}
	return string(buf), nil
}
