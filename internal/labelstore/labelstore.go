// Package labelstore persists labelings to a compact binary format, so that
// labels can be computed once and then distributed to the peers that answer
// queries (the deployment model of Section 1: structural information
// disseminated to vertices and stored locally).
//
// Format (all integers little-endian or uvarint):
//
//	magic   "PLLB"               4 bytes
//	version u8                   currently 1
//	scheme  uvarint len + bytes  scheme name (informational)
//	params  uvarint count, then  key/value string pairs (decoder metadata,
//	        per pair: len+bytes   e.g. "n", "w")
//	n       uvarint              number of labels
//	labels  n × (uvarint bit length + ceil(len/8) bytes)
package labelstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"

	"repro/internal/bitstr"
)

// ErrFormat is returned when the input is not a valid label store.
var ErrFormat = errors.New("labelstore: malformed input")

var magic = [4]byte{'P', 'L', 'L', 'B'}

const version = 1

// File is an in-memory representation of a label store.
type File struct {
	Scheme string
	Params map[string]string
	Labels []bitstr.String
}

// N returns the number of labels.
func (f *File) N() int { return len(f.Labels) }

// IntParam returns an integer metadata parameter.
func (f *File) IntParam(key string) (int, error) {
	v, ok := f.Params[key]
	if !ok {
		return 0, fmt.Errorf("%w: missing param %q", ErrFormat, key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: param %q: %v", ErrFormat, key, err)
	}
	return n, nil
}

// Write serializes the store.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	if err := writeString(bw, f.Scheme); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.Params))
	for k := range f.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic files
	if err := writeUvarint(bw, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeString(bw, k); err != nil {
			return err
		}
		if err := writeString(bw, f.Params[k]); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, uint64(len(f.Labels))); err != nil {
		return err
	}
	for _, l := range f.Labels {
		if err := writeUvarint(bw, uint64(l.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(l.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a store written by Write.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrFormat, err)
	}
	if ver != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}
	scheme, err := readString(br)
	if err != nil {
		return nil, err
	}
	nParams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: param count: %v", ErrFormat, err)
	}
	const maxParams = 1 << 16
	if nParams > maxParams {
		return nil, fmt.Errorf("%w: %d params", ErrFormat, nParams)
	}
	params := make(map[string]string, nParams)
	for i := uint64(0); i < nParams; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readString(br)
		if err != nil {
			return nil, err
		}
		params[k] = v
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: label count: %v", ErrFormat, err)
	}
	const maxLabels = 1 << 31
	if n > maxLabels {
		return nil, fmt.Errorf("%w: %d labels", ErrFormat, n)
	}
	// Arena decode: all label payloads land in one contiguous slab and the
	// returned strings are (offset, bitlen) views into it — one allocation
	// for the whole store instead of one per label, matching the layout
	// core.(*Labeling).Compact produces.
	type span struct {
		off  int
		bits int
	}
	spans := make([]span, n)
	var slab []byte
	for i := uint64(0); i < n; i++ {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d length: %v", ErrFormat, i, err)
		}
		if bits > 1<<34 {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrFormat, i, bits)
		}
		nBytes := int((bits + 7) / 8)
		off := len(slab)
		slab = slices.Grow(slab, nBytes)[:off+nBytes]
		if _, err := io.ReadFull(br, slab[off:]); err != nil {
			return nil, fmt.Errorf("%w: label %d payload: %v", ErrFormat, i, err)
		}
		spans[i] = span{off: off, bits: int(bits)}
	}
	// The slab no longer moves; build the views.
	labels := make([]bitstr.String, n)
	for i, sp := range spans {
		end := sp.off + (sp.bits+7)/8
		s, err := bitstr.Wrap(slab[sp.off:end:end], sp.bits)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d: %v", ErrFormat, i, err)
		}
		labels[i] = s
	}
	return &File{Scheme: scheme, Params: params, Labels: labels}, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrFormat, err)
	}
	const maxString = 1 << 20
	if n > maxString {
		return "", fmt.Errorf("%w: string of %d bytes", ErrFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string payload: %v", ErrFormat, err)
	}
	return string(buf), nil
}
