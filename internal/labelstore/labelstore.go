// Package labelstore persists labelings to a compact binary format, so that
// labels can be computed once and then distributed to the peers that answer
// queries (the deployment model of Section 1: structural information
// disseminated to vertices and stored locally).
//
// Format (all integers little-endian or uvarint):
//
//	magic   "PLLB"               4 bytes
//	version u8                   1 or 2
//	scheme  uvarint len + bytes  scheme name (informational)
//	params  uvarint count, then  key/value string pairs (decoder metadata,
//	        per pair: len+bytes   e.g. "n", "w")
//	n       uvarint              number of labels
//
// followed by the label payloads. Version 1 packs each label tightly:
//
//	labels  n × (uvarint bit length + ceil(len/8) bytes)
//
// Version 2 stores the word-aligned slab of the encode pipeline verbatim —
// one header, one body blob:
//
//	lens    n × uvarint          per-label bit lengths (always id-indexed)
//	perm    n × uvarint          rank→label layout permutation; present iff
//	                             params carries "layout" (value "degree")
//	shard   uvarint index,       shard map of a partitioned store; present
//	        u8 fn, uvarint owned iff params carries "shards" (see shard.go)
//	blob    uvarint byte count,  label perm[r] (or label r when no perm)
//	        then the slab        starts at the r-th word-aligned slot
//
// A v2 blob is byte-identical to the in-memory arena of a pipeline-built
// core.Labeling, so Write(arena-backed file) is a header plus a single
// contiguous copy, and Read hands the blob to core.NewQueryEngineFromArena
// with zero relocation. A degree-ordered arena (core.LayoutDegree) rides the
// same path with its permutation block: readers reconstruct id-indexed
// lookup from the permutation, readers too old to know the "layout" param
// fail loudly on the extra block (a blob-length mismatch) rather than
// mis-answer. A distance store (params carry "scheme" = pll | bdist, see
// scheme.go) rides the same v2 body with no extra block — its engine
// parameters live entirely in the params. Read understands both versions;
// Write emits v2 when the file is arena-backed (NewArenaFile,
// NewPermutedArenaFile) and v1 otherwise.
package labelstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"

	"repro/internal/bitstr"
	"repro/internal/core"
)

// ErrFormat is returned when the input is not a valid label store.
var ErrFormat = errors.New("labelstore: malformed input")

var magic = [4]byte{'P', 'L', 'L', 'B'}

const (
	version1 = 1 // tightly packed per-label payloads
	version2 = 2 // single word-aligned slab blob
)

// layoutKey is the params entry announcing a physically permuted v2 blob;
// its presence means a permutation block sits between the lens block and the
// blob. The only defined value is layoutDegree (descending-degree order).
// Any other value is rejected — misreading a permuted slab as id-ordered
// would silently answer queries from the wrong labels.
const (
	layoutKey    = "layout"
	layoutDegree = "degree"
)

// Hard caps on header-declared sizes, shared by the streaming (Read) and
// in-memory (ReadBytes) parsers: a corrupt or adversarial header must fail
// validation before it can drive a large allocation or an out-of-bounds
// view.
const (
	maxParams    = 1 << 16
	maxLabels    = 1 << 31
	maxString    = 1 << 20
	maxLabelBits = 1 << 34
	// blobChunk bounds how much body is bought at a time on the streaming
	// path, so a header declaring a huge blob over a short stream fails at
	// EOF having over-allocated at most one chunk.
	blobChunk = 64 << 20
)

// File is an in-memory representation of a label store.
type File struct {
	Scheme string
	Params map[string]string
	Labels []bitstr.String
	// arena, when non-nil, is the word-aligned slab the Labels are views
	// into, with bitLens the per-label bit lengths. Set by NewArenaFile and
	// by Read on v2 files; selects the v2 single-blob path in Write.
	arena   []byte
	bitLens []int
	// order, when non-nil, is the arena's physical layout permutation: slab
	// rank r holds label order[r]. Labels stays id-indexed either way.
	order []int32
	// shard, when non-nil, marks one shard of a partitioned store: owned
	// vertices (plus replicated fat labels) in full, foreign thin labels as
	// header stubs. See shard.go.
	shard *shardBlock
	// dist, when non-nil, marks a distance store (scheme kind pll or bdist)
	// and carries the engine parameters. See scheme.go.
	dist *core.DistParams
}

// N returns the number of labels.
func (f *File) N() int { return len(f.Labels) }

// NewArenaFile builds a store over a word-aligned label slab (the arena of a
// pipeline-built core.Labeling): label v occupies bits
// [off_v, off_v+bitLens[v]) where off_v = 64·Σ_{u<v} ceil(bitLens[u]/64).
// Write serializes such a file in format v2 — one header and the slab as a
// single body blob.
func NewArenaFile(scheme string, params map[string]string, slab []byte, bitLens []int) (*File, error) {
	labels := make([]bitstr.String, len(bitLens))
	var off int64
	for v, bits := range bitLens {
		view, err := bitstr.SlabView(slab, off, bits)
		if err != nil {
			return nil, fmt.Errorf("labelstore: arena label %d: %w", v, err)
		}
		labels[v] = view
		off += int64(bitstr.SlabWords(bits)) * bitstr.SlabWordBits
	}
	if int(off>>3) != len(slab) {
		return nil, fmt.Errorf("labelstore: arena slab has %d bytes, labels occupy %d", len(slab), off>>3)
	}
	return &File{Scheme: scheme, Params: params, Labels: labels, arena: slab, bitLens: bitLens}, nil
}

// NewPermutedArenaFile is NewArenaFile for a physically permuted slab: the
// label at word-aligned slab rank r is label order[r] with bitLens[order[r]]
// bits (the arena of a core.LayoutDegree labeling). Write serializes it in
// format v2 with a "layout" param and the permutation block. order must be a
// permutation of 0..len(bitLens)-1; nil delegates to NewArenaFile.
func NewPermutedArenaFile(scheme string, params map[string]string, slab []byte, bitLens []int, order []int32) (*File, error) {
	if order == nil {
		return NewArenaFile(scheme, params, slab, bitLens)
	}
	n := len(bitLens)
	if len(order) != n {
		return nil, fmt.Errorf("labelstore: layout permutation of %d entries over %d labels", len(order), n)
	}
	labels := make([]bitstr.String, n)
	seen := make([]uint64, (n+63)>>6)
	var off int64
	for r, v32 := range order {
		v := int(v32)
		if v < 0 || v >= n {
			return nil, fmt.Errorf("labelstore: layout permutation entry %d = %d of %d labels", r, v32, n)
		}
		if seen[v>>6]&(1<<uint(v&63)) != 0 {
			return nil, fmt.Errorf("labelstore: layout permutation repeats label %d at rank %d", v, r)
		}
		seen[v>>6] |= 1 << uint(v&63)
		view, err := bitstr.SlabView(slab, off, bitLens[v])
		if err != nil {
			return nil, fmt.Errorf("labelstore: arena label %d: %w", v, err)
		}
		labels[v] = view
		off += int64(bitstr.SlabWords(bitLens[v])) * bitstr.SlabWordBits
	}
	if int(off>>3) != len(slab) {
		return nil, fmt.Errorf("labelstore: arena slab has %d bytes, labels occupy %d", len(slab), off>>3)
	}
	return &File{Scheme: scheme, Params: params, Labels: labels, arena: slab, bitLens: bitLens, order: order}, nil
}

// Arena returns the word-aligned slab backing the store plus the per-label
// bit lengths, or ok=false when the store is not arena-backed (a v1 file).
// The pair is accepted directly by core.NewQueryEngineFromArena. For a
// permuted store Arena reports ok=false — label v is not at the v-th slot,
// and a caller unaware of the permutation would misread every offset; use
// ArenaLayout, which hands out the permutation alongside.
func (f *File) Arena() (slab []byte, bitLens []int, ok bool) {
	if f.order != nil {
		return nil, nil, false
	}
	return f.arena, f.bitLens, f.arena != nil
}

// ArenaLayout returns the backing slab, the per-label bit lengths, and the
// physical layout permutation (nil for the id-ordered layout) — the triple
// core.NewQueryEngineFromPermutedArena accepts for any v2 store.
func (f *File) ArenaLayout() (slab []byte, bitLens []int, order []int32, ok bool) {
	return f.arena, f.bitLens, f.order, f.arena != nil
}

// LayoutOrder returns the physical layout permutation, or nil when the store
// is id-ordered (v1, or v2 without a layout param).
func (f *File) LayoutOrder() []int32 { return f.order }

// PermutationOverheadBytes returns the serialized size of a layout
// permutation block — the header bytes a permuted store carries beyond its
// id-ordered equivalent (pllabel reports it in its summary line).
func PermutationOverheadBytes(order []int32) int {
	var buf [binary.MaxVarintLen64]byte
	total := 0
	for _, v := range order {
		total += binary.PutUvarint(buf[:], uint64(uint32(v)))
	}
	return total
}

// IntParam returns an integer metadata parameter.
func (f *File) IntParam(key string) (int, error) {
	v, ok := f.Params[key]
	if !ok {
		return 0, fmt.Errorf("%w: missing param %q", ErrFormat, key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: param %q: %v", ErrFormat, key, err)
	}
	return n, nil
}

// Write serializes the store: format v2 (single slab blob) for arena-backed
// files, v1 (tightly packed per-label payloads) otherwise.
func Write(w io.Writer, f *File) error {
	if f.dist != nil {
		// Distance stores are v2-only (the engine adopts the slab as-is) and
		// never sharded; refusing here keeps the two readers' rejections
		// unreachable for files this package itself wrote.
		if f.arena == nil {
			return fmt.Errorf("labelstore: distance scheme %q requires an arena-backed store", f.dist.Kind)
		}
		if f.shard != nil {
			return fmt.Errorf("labelstore: sharded store cannot declare distance scheme %q", f.dist.Kind)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	ver := byte(version1)
	if f.arena != nil {
		ver = version2
	}
	if err := bw.WriteByte(ver); err != nil {
		return err
	}
	if err := writeString(bw, f.Scheme); err != nil {
		return err
	}
	// A permuted store must announce its layout and a sharded store its shard
	// count: readers key the permutation and shard blocks off these params,
	// so param and block are written (and read) as one unit.
	params := f.Params
	if f.order != nil || f.shard != nil || f.dist != nil {
		params = make(map[string]string, len(f.Params)+5)
		for k, v := range f.Params {
			params[k] = v
		}
		if f.order != nil {
			params[layoutKey] = layoutDegree
		}
		if f.shard != nil {
			params[shardsKey] = strconv.Itoa(f.shard.m.Count)
		}
		if f.dist != nil { // scheme kind + its companion engine params
			params[schemeKey] = f.dist.Kind.String()
			params[distWidthKey] = strconv.Itoa(f.dist.DW)
			if f.dist.Kind == core.DistBounded {
				params[distBoundKey] = strconv.Itoa(f.dist.F)
				params[distNFatKey] = strconv.Itoa(f.dist.NFat)
			}
		}
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic files
	if err := writeUvarint(bw, uint64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := writeString(bw, k); err != nil {
			return err
		}
		if err := writeString(bw, params[k]); err != nil {
			return err
		}
	}
	if ver == version2 {
		if err := writeUvarint(bw, uint64(len(f.bitLens))); err != nil {
			return err
		}
		for _, bits := range f.bitLens {
			if err := writeUvarint(bw, uint64(bits)); err != nil {
				return err
			}
		}
		for _, v := range f.order { // permutation block (empty when id-ordered)
			if err := writeUvarint(bw, uint64(uint32(v))); err != nil {
				return err
			}
		}
		if f.shard != nil { // shard block (absent for whole-labeling stores)
			if err := writeUvarint(bw, uint64(f.shard.m.Index)); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(f.shard.m.Fn)); err != nil {
				return err
			}
			if err := writeUvarint(bw, uint64(f.shard.owned)); err != nil {
				return err
			}
		}
		if err := writeUvarint(bw, uint64(len(f.arena))); err != nil {
			return err
		}
		if _, err := bw.Write(f.arena); err != nil {
			return err
		}
		return bw.Flush()
	}
	if err := writeUvarint(bw, uint64(len(f.Labels))); err != nil {
		return err
	}
	for _, l := range f.Labels {
		if err := writeUvarint(bw, uint64(l.Len())); err != nil {
			return err
		}
		if _, err := bw.Write(l.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a store written by Write.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrFormat, err)
	}
	if ver != version1 && ver != version2 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}
	scheme, err := readString(br)
	if err != nil {
		return nil, err
	}
	nParams, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: param count: %v", ErrFormat, err)
	}
	if nParams > maxParams {
		return nil, fmt.Errorf("%w: %d params", ErrFormat, nParams)
	}
	params := make(map[string]string, nParams)
	for i := uint64(0); i < nParams; i++ {
		k, err := readString(br)
		if err != nil {
			return nil, err
		}
		v, err := readString(br)
		if err != nil {
			return nil, err
		}
		params[k] = v
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: label count: %v", ErrFormat, err)
	}
	if n > maxLabels {
		return nil, fmt.Errorf("%w: %d labels", ErrFormat, n)
	}
	if ver == version2 {
		return readSlab(br, scheme, params, int(n))
	}
	if lay, ok := params[layoutKey]; ok {
		// v1 payloads are inherently id-ordered; a layout param can only be
		// corruption or a format from the future. Refuse rather than guess.
		return nil, fmt.Errorf("%w: v1 store declares layout %q", ErrFormat, lay)
	}
	if sh, ok := params[shardsKey]; ok {
		// Likewise: sharding postdates v1, and loading a shard as a whole
		// labeling would answer foreign queries from stripped stubs.
		return nil, fmt.Errorf("%w: v1 store declares %s shards", ErrFormat, sh)
	}
	if sch, ok := params[schemeKey]; ok && sch != SchemeAdjacency {
		// Distance stores are v2-only; a v1 file declaring one is corrupt or
		// from a writer this reader cannot serve.
		return nil, fmt.Errorf("%w: v1 store declares scheme %q", ErrFormat, sch)
	}
	// Arena decode: all label payloads land in one contiguous slab and the
	// returned strings are (offset, bitlen) views into it — one allocation
	// for the whole store instead of one per label, matching the layout
	// core.(*Labeling).Compact produces.
	type span struct {
		off  int
		bits int
	}
	spans := make([]span, n)
	var slab []byte
	for i := uint64(0); i < n; i++ {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d length: %v", ErrFormat, i, err)
		}
		if bits > maxLabelBits {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrFormat, i, bits)
		}
		nBytes := int((bits + 7) / 8)
		off := len(slab)
		slab = slices.Grow(slab, nBytes)[:off+nBytes]
		if _, err := io.ReadFull(br, slab[off:]); err != nil {
			return nil, fmt.Errorf("%w: label %d payload: %v", ErrFormat, i, err)
		}
		spans[i] = span{off: off, bits: int(bits)}
	}
	// The slab no longer moves; build the views.
	labels := make([]bitstr.String, n)
	for i, sp := range spans {
		end := sp.off + (sp.bits+7)/8
		s, err := bitstr.Wrap(slab[sp.off:end:end], sp.bits)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d: %v", ErrFormat, i, err)
		}
		labels[i] = s
	}
	return &File{Scheme: scheme, Params: params, Labels: labels}, nil
}

// readSlab parses the v2 payload: n bit lengths, the layout permutation when
// the params announce one, then the word-aligned slab as one blob. The blob
// is read with a single contiguous ReadFull and becomes the store's arena;
// labels are zero-copy views into it.
func readSlab(br *bufio.Reader, scheme string, params map[string]string, n int) (*File, error) {
	bitLens := make([]int, n)
	var words int64
	for i := range bitLens {
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: label %d length: %v", ErrFormat, i, err)
		}
		if bits > maxLabelBits {
			return nil, fmt.Errorf("%w: label %d has %d bits", ErrFormat, i, bits)
		}
		bitLens[i] = int(bits)
		words += int64(bitstr.SlabWords(int(bits)))
	}
	var order []int32
	if lay, ok := params[layoutKey]; ok {
		if lay != layoutDegree {
			return nil, fmt.Errorf("%w: unknown layout %q", ErrFormat, lay)
		}
		// Entries are range-checked here and permutation-checked (no label
		// missing or repeated) by NewPermutedArenaFile below: a truncated or
		// garbage block errors at load, it can never mis-answer.
		order = make([]int32, n)
		for i := range order {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: layout permutation entry %d: %v", ErrFormat, i, err)
			}
			if v >= uint64(n) {
				return nil, fmt.Errorf("%w: layout permutation entry %d = %d of %d labels", ErrFormat, i, v, n)
			}
			order[i] = int32(v)
		}
	}
	var sb *shardBlock
	if val, ok := params[shardsKey]; ok {
		count, err := parseShardCount(val)
		if err != nil {
			return nil, err
		}
		index, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: shard index: %v", ErrFormat, err)
		}
		fnByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: shard ownership function: %v", ErrFormat, err)
		}
		owned, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: shard owned count: %v", ErrFormat, err)
		}
		if sb, err = newShardBlock(count, index, fnByte, owned, n); err != nil {
			return nil, err
		}
	}
	dist, err := parseSchemeParams(params, n)
	if err != nil {
		return nil, err
	}
	if dist != nil && sb != nil {
		return nil, fmt.Errorf("%w: sharded store declares distance scheme %q", ErrFormat, dist.Kind)
	}
	// Validate the declared geometry before buying the body: the blob-length
	// field must agree with what the bit lengths occupy (both mismatch
	// directions are corruption), and the body is then read in bounded
	// chunks so a header lying about a huge blob fails at EOF instead of
	// forcing one giant allocation up front.
	need := words << 3
	blobLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: blob length: %v", ErrFormat, err)
	}
	if err := checkBlobLen(int64(blobLen), need); err != nil {
		return nil, err
	}
	slab := make([]byte, 0, min(need, blobChunk))
	for int64(len(slab)) < need {
		chunk := int(min(need-int64(len(slab)), blobChunk))
		off := len(slab)
		slab = slices.Grow(slab, chunk)[:off+chunk]
		if _, err := io.ReadFull(br, slab[off:]); err != nil {
			return nil, fmt.Errorf("%w: blob payload at byte %d of %d: %v", ErrFormat, off, need, err)
		}
	}
	f, err := NewPermutedArenaFile(scheme, params, slab, bitLens, order)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if sb != nil {
		if err := validateShardFile(f, sb); err != nil {
			return nil, err
		}
		f.shard = sb
	}
	f.dist = dist
	return f, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrFormat, err)
	}
	if n > maxString {
		return "", fmt.Errorf("%w: string of %d bytes", ErrFormat, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string payload: %v", ErrFormat, err)
	}
	return string(buf), nil
}
