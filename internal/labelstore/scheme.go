package labelstore

import (
	"fmt"
	"strconv"

	"repro/internal/bitstr"
	"repro/internal/core"
)

// Scheme record kind: the format-v2 extension for distance stores.
//
// A store's "scheme" param declares which query plane its labels belong to:
//
//	adjacency  fat/thin adjacency labels (the default when the param is
//	           absent — every store written before this param existed)
//	pll        pruned landmark distance labels (δ-gap hub ranks)
//	bdist      Lemma 7 f(n)-bounded distance labels
//
// Unlike "layout" and "shards", the scheme kind carries no binary block —
// its companion values ride in the params themselves: "dw" (the fixed
// distance width, both kinds), plus "f" and "nfat" for bdist. Together they
// are exactly a core.DistParams, so a reader hands DistArena() straight to
// core.NewDistEngine. An unknown kind is rejected by name — misreading
// distance labels as adjacency labels (or the reverse) must fail loudly at
// load, never mis-answer. Distance stores are inherently v2 (the engine
// adopts the slab zero-copy) and never sharded (distance serving replicates
// whole stores; see plroute), so v1 + scheme and shards + scheme are both
// refused by writers and readers alike.

// Param keys of the scheme record kind. The kind values are
// SchemeAdjacency, SchemePLL and SchemeBDist.
const (
	schemeKey    = "scheme"
	distWidthKey = "dw"   // fixed distance field width in bits
	distBoundKey = "f"    // bdist: the distance bound f(n)
	distNFatKey  = "nfat" // bdist: fat-table width (number of fat hubs)
)

// Scheme kinds a store may declare. Absence of the param means adjacency.
const (
	SchemeAdjacency = "adjacency"
	SchemePLL       = "pll"
	SchemeBDist     = "bdist"
)

// SchemeKind returns the store's record kind: SchemeAdjacency, SchemePLL or
// SchemeBDist.
func (f *File) SchemeKind() string {
	if f.dist == nil {
		return SchemeAdjacency
	}
	return f.dist.Kind.String()
}

// DistParams returns the distance-engine parameters of a pll or bdist store,
// or ok=false for an adjacency store.
func (f *File) DistParams() (core.DistParams, bool) {
	if f.dist == nil {
		return core.DistParams{}, false
	}
	return *f.dist, true
}

// DistArena returns the store's labels as the arena triple plus parameters
// that core.NewDistEngine adopts zero-copy, or ok=false for an adjacency
// store.
func (f *File) DistArena() (*core.DistArena, bool) {
	if f.dist == nil || f.arena == nil {
		return nil, false
	}
	return &core.DistArena{Slab: f.arena, BitLens: f.bitLens, Order: f.order, Params: *f.dist}, true
}

// NewDistArenaFile builds a distance store over a pipeline-built
// core.DistArena (the output of the distance EncodeArena paths). Write
// serializes it in format v2 with the scheme params; both readers hand the
// kind and engine parameters back via DistParams/DistArena.
func NewDistArenaFile(scheme string, params map[string]string, a *core.DistArena) (*File, error) {
	f, err := NewPermutedArenaFile(scheme, params, a.Slab, a.BitLens, a.Order)
	if err != nil {
		return nil, err
	}
	dp := a.Params
	if err := checkDistParams(dp, f.N()); err != nil {
		return nil, fmt.Errorf("labelstore: %v", err)
	}
	f.dist = &dp
	return f, nil
}

// checkDistParams validates an engine parameter set against the label count,
// shared by the constructor and both readers. The checks mirror what
// core.NewDistEngineFromArena enforces so that a store accepted here is
// structurally able to build an engine (the engine still walks every label).
func checkDistParams(dp core.DistParams, n int) error {
	switch dp.Kind {
	case core.DistPLL:
		if dp.DW < 1 || dp.DW > 32 {
			return fmt.Errorf("pll scheme distance width %d (want 1..32)", dp.DW)
		}
		if dp.F != 0 || dp.NFat != 0 {
			return fmt.Errorf("pll scheme carries bounded-distance params f=%d nfat=%d", dp.F, dp.NFat)
		}
	case core.DistBounded:
		if dp.F < 1 {
			return fmt.Errorf("bdist scheme bound f=%d (want >= 1)", dp.F)
		}
		if want := bitstr.WidthFor(uint64(dp.F) + 2); dp.DW != want {
			return fmt.Errorf("bdist scheme distance width %d, bound f=%d requires %d", dp.DW, dp.F, want)
		}
		if dp.NFat < 0 || dp.NFat > n {
			return fmt.Errorf("bdist scheme declares %d fat hubs over %d labels", dp.NFat, n)
		}
	default:
		return fmt.Errorf("unknown distance kind %d", dp.Kind)
	}
	return nil
}

// parseSchemeParams interprets the scheme params of a v2 store: nil for an
// adjacency store (param absent or explicitly "adjacency"), the assembled
// core.DistParams for a distance store, and a clear error for a kind this
// reader does not know — the forward-compatibility contract that keeps an
// old binary from probing labels of a plane it cannot decode.
func parseSchemeParams(params map[string]string, n int) (*core.DistParams, error) {
	val, ok := params[schemeKey]
	if !ok || val == SchemeAdjacency {
		return nil, nil
	}
	var dp core.DistParams
	switch val {
	case SchemePLL:
		dp.Kind = core.DistPLL
	case SchemeBDist:
		dp.Kind = core.DistBounded
	default:
		return nil, fmt.Errorf("%w: unknown scheme kind %q (know %q, %q, %q)",
			ErrFormat, val, SchemeAdjacency, SchemePLL, SchemeBDist)
	}
	var err error
	if dp.DW, err = schemeIntParam(params, distWidthKey); err != nil {
		return nil, err
	}
	if dp.Kind == core.DistBounded {
		if dp.F, err = schemeIntParam(params, distBoundKey); err != nil {
			return nil, err
		}
		if dp.NFat, err = schemeIntParam(params, distNFatKey); err != nil {
			return nil, err
		}
	}
	if err := checkDistParams(dp, n); err != nil {
		return nil, fmt.Errorf("%w: scheme %q: %v", ErrFormat, val, err)
	}
	return &dp, nil
}

// schemeIntParam reads a required companion param of the scheme kind.
func schemeIntParam(params map[string]string, key string) (int, error) {
	val, ok := params[key]
	if !ok {
		return 0, fmt.Errorf("%w: scheme %q requires param %q", ErrFormat, params[schemeKey], key)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("%w: scheme param %q = %q: %v", ErrFormat, key, val, err)
	}
	if v < 0 || int64(v) > maxLabels {
		return 0, fmt.Errorf("%w: scheme param %q = %d", ErrFormat, key, v)
	}
	return v, nil
}
