package labelstore

import (
	"bufio"
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/schemes/distance"
)

// distArenas builds one pll and one bdist arena over a small power-law graph
// (degree layout for pll, id layout for bdist, so both body orders are
// exercised by the store round trip).
func distArenas(t *testing.T) (*graph.Graph, map[string]*core.DistArena) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(120, 2.5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	pll, err := distance.PLLScheme{}.EncodeArena(g, 2, core.LayoutDegree)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := distance.Scheme{Alpha: 2.5, F: 3}.EncodeArena(g, 2, core.LayoutID)
	if err != nil {
		t.Fatal(err)
	}
	return g, map[string]*core.DistArena{SchemePLL: pll, SchemeBDist: bd}
}

// TestDistStoreRoundTrip: a distance store survives both readers with its
// scheme kind and engine params intact, and the engine rebuilt from the
// loaded arena answers exactly like one built from the source arena.
func TestDistStoreRoundTrip(t *testing.T) {
	g, arenas := distArenas(t)
	n := g.N()
	for kind, a := range arenas {
		want, err := core.NewDistEngine(a)
		if err != nil {
			t.Fatalf("%s: source engine: %v", kind, err)
		}
		f, err := NewDistArenaFile("dist-"+kind, map[string]string{"n": strconv.Itoa(n)}, a)
		if err != nil {
			t.Fatalf("%s: NewDistArenaFile: %v", kind, err)
		}
		if got := f.SchemeKind(); got != kind {
			t.Fatalf("SchemeKind = %q, want %q", got, kind)
		}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			t.Fatalf("%s: Write: %v", kind, err)
		}
		data := buf.Bytes()
		for _, r := range []struct {
			name string
			load func() (*File, error)
		}{
			{"Read", func() (*File, error) { return Read(bytes.NewReader(data)) }},
			{"ReadBytes", func() (*File, error) { return ReadBytes(data) }},
		} {
			got, err := r.load()
			if err != nil {
				t.Fatalf("%s %s: %v", r.name, kind, err)
			}
			if got.SchemeKind() != kind {
				t.Fatalf("%s %s: loaded kind %q", r.name, kind, got.SchemeKind())
			}
			dp, ok := got.DistParams()
			if !ok || dp != a.Params {
				t.Fatalf("%s %s: DistParams = %+v ok=%v, want %+v", r.name, kind, dp, ok, a.Params)
			}
			la, ok := got.DistArena()
			if !ok {
				t.Fatalf("%s %s: loaded store has no dist arena", r.name, kind)
			}
			eng, err := core.NewDistEngine(la)
			if err != nil {
				t.Fatalf("%s %s: loaded engine: %v", r.name, kind, err)
			}
			for u := 0; u < n; u += 7 {
				for v := 0; v < n; v += 11 {
					gd, err1 := eng.Dist(u, v)
					wd, err2 := want.Dist(u, v)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s %s: Dist(%d,%d): %v / %v", r.name, kind, u, v, err1, err2)
					}
					if gd != wd {
						t.Fatalf("%s %s: Dist(%d,%d) = %d, want %d", r.name, kind, u, v, gd, wd)
					}
				}
			}
		}
	}
}

// TestDistSchemeUnknownKindRejected: a scheme kind this reader does not know
// must fail by name in both readers, and a known kind missing its companion
// params must name the missing key.
func TestDistSchemeUnknownKindRejected(t *testing.T) {
	slab := make([]byte, 8)
	for _, tc := range []struct {
		params map[string]string
		want   string
	}{
		{map[string]string{schemeKey: "frobnicate", distWidthKey: "3"}, "unknown scheme kind"},
		{map[string]string{schemeKey: SchemePLL}, `requires param "dw"`},
		{map[string]string{schemeKey: SchemeBDist, distWidthKey: "3", distBoundKey: "5"}, `requires param "nfat"`},
		{map[string]string{schemeKey: SchemePLL, distWidthKey: "40"}, "distance width"},
		{map[string]string{schemeKey: SchemeBDist, distWidthKey: "2", distBoundKey: "9", distNFatKey: "0"}, "requires 4"},
	} {
		f, err := NewArenaFile("x", tc.params, slab, []int{10})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for _, r := range []struct {
			name string
			load func() (*File, error)
		}{
			{"Read", func() (*File, error) { return Read(bytes.NewReader(data)) }},
			{"ReadBytes", func() (*File, error) { return ReadBytes(data) }},
		} {
			_, err := r.load()
			if !errors.Is(err, ErrFormat) {
				t.Errorf("%s params %v: err = %v, want ErrFormat", r.name, tc.params, err)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s params %v: err = %q, want mention of %q", r.name, tc.params, err, tc.want)
			}
		}
	}
}

// TestDistSchemeV1Rejected: v1 payloads predate the distance plane; a v1
// store declaring a distance scheme is corruption or a future format.
func TestDistSchemeV1Rejected(t *testing.T) {
	f := sampleFile(t)
	f.Params[schemeKey] = SchemePLL
	f.Params[distWidthKey] = "4"
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	_, err := Read(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrFormat) || !strings.Contains(err.Error(), "v1 store declares scheme") {
		t.Errorf("v1 + scheme: err = %v", err)
	}
}

// TestDistSchemeShardConflictRejected: distance stores are never sharded —
// the writer refuses to emit the combination and both readers refuse a
// hand-crafted header declaring it.
func TestDistSchemeShardConflictRejected(t *testing.T) {
	_, arenas := distArenas(t)
	f, err := NewDistArenaFile("dist-pll", nil, arenas[SchemePLL])
	if err != nil {
		t.Fatal(err)
	}
	f.shard = &shardBlock{m: core.ShardMap{Count: 2, Index: 0, Fn: core.ShardRange}, owned: f.N() / 2}
	var buf bytes.Buffer
	if err := Write(&buf, f); err == nil || !strings.Contains(err.Error(), "sharded store cannot declare") {
		t.Errorf("Write shard+scheme: err = %v", err)
	}

	// Reader side: a crafted v2 header carrying both params plus a shard
	// block. The conflict check fires after both parse, before the body.
	buf.Reset()
	bw := bufio.NewWriter(&buf)
	bw.Write(magic[:])
	bw.WriteByte(version2)
	writeString(bw, "dist-pll")
	writeUvarint(bw, 3) // params
	for _, kv := range [][2]string{{distWidthKey, "4"}, {schemeKey, SchemePLL}, {shardsKey, "2"}} {
		writeString(bw, kv[0])
		writeString(bw, kv[1])
	}
	writeUvarint(bw, 4) // n labels
	for i := 0; i < 4; i++ {
		writeUvarint(bw, 10) // bit lengths
	}
	writeUvarint(bw, 0) // shard block: index
	bw.WriteByte(0)     // ... ownership fn (range)
	writeUvarint(bw, 2) // ... owned count
	bw.Flush()
	data := buf.Bytes()
	for _, r := range []struct {
		name string
		load func() (*File, error)
	}{
		{"Read", func() (*File, error) { return Read(bytes.NewReader(data)) }},
		{"ReadBytes", func() (*File, error) { return ReadBytes(data) }},
	} {
		_, err := r.load()
		if !errors.Is(err, ErrFormat) || !strings.Contains(err.Error(), "sharded store declares distance scheme") {
			t.Errorf("%s shard+scheme: err = %v", r.name, err)
		}
	}
}

// TestDistStoreCorruption sweeps byte flips and truncations over serialized
// distance stores: neither reader may panic, both must agree on whether the
// bytes still parse, every truncation must be rejected, and any store that
// does parse must either refuse engine construction or answer queries
// in-range without panicking (a flip inside the blob can legitimately
// produce a different but structurally valid labeling).
func TestDistStoreCorruption(t *testing.T) {
	_, arenas := distArenas(t)
	for kind, a := range arenas {
		f, err := NewDistArenaFile("dist-"+kind, nil, a)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()

		for cut := 0; cut < len(data); cut += 3 {
			if _, err := readNoPanic(t, kind, cut, func() (*File, error) { return Read(bytes.NewReader(data[:cut])) }); err == nil {
				t.Fatalf("%s: truncation at %d accepted by Read", kind, cut)
			}
			if _, err := readNoPanic(t, kind, cut, func() (*File, error) { return ReadBytes(data[:cut]) }); err == nil {
				t.Fatalf("%s: truncation at %d accepted by ReadBytes", kind, cut)
			}
		}

		bad := make([]byte, len(data))
		for i := range data {
			for _, mask := range []byte{0x01, 0xff} {
				copy(bad, data)
				bad[i] ^= mask
				fr, errR := readNoPanic(t, kind, i, func() (*File, error) { return Read(bytes.NewReader(bad)) })
				fb, errB := readNoPanic(t, kind, i, func() (*File, error) { return ReadBytes(bad) })
				if (errR == nil) != (errB == nil) {
					t.Fatalf("%s: flip %#x at byte %d: Read err = %v, ReadBytes err = %v", kind, mask, i, errR, errB)
				}
				if errR != nil {
					continue
				}
				// ReadBytes aliases bad, which the next iteration rewrites;
				// probe its result now. Read's copy is independent.
				for _, got := range []*File{fb, fr} {
					la, ok := got.DistArena()
					if !ok {
						continue // flip demoted the store to adjacency
					}
					eng, err := core.NewDistEngine(la)
					if err != nil {
						continue // engine validation caught the damage
					}
					n := eng.N()
					for u := 0; u < n; u += 17 {
						d, err := eng.Dist(u, n-1-u)
						if err == nil && d < -1 {
							t.Fatalf("%s: flip %#x at byte %d: Dist = %d", kind, mask, i, d)
						}
					}
				}
			}
		}
	}
}

// readNoPanic runs a reader, converting a panic into a test failure.
func readNoPanic(t *testing.T, kind string, pos int, load func() (*File, error)) (f *File, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: reader panicked at byte %d: %v", kind, pos, r)
		}
	}()
	return load()
}
