//go:build linux || darwin

package labelstore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: every process mapping
// the same store file sees one physical copy of the label blob in the page
// cache. Nothing in the ReadBytes path writes through the returned slice
// (v2 views are built with bitstr.SlabViews, which never masks in place), so
// PROT_READ is safe.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
