package labelstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// v2Fixture encodes a power-law graph with the pipeline (arena-backed) and
// returns the graph, the labeling, and the serialized v2 store image.
func v2Fixture(t *testing.T, n int, seed int64) (*core.Labeling, []byte) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := lab.Arena()
	if !ok {
		t.Fatal("pipeline labeling is not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	f, err := NewArenaFile(lab.Scheme(), map[string]string{"n": "x"}, slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return lab, buf.Bytes()
}

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.pllb")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReadBytesMatchesRead: the in-memory parser and the streaming parser
// agree on every field of a v2 store, and the in-memory arena is the file's
// body verbatim (zero-copy: a sub-slice of the input).
func TestReadBytesMatchesRead(t *testing.T) {
	_, data := v2Fixture(t, 200, 5)
	a, err := ReadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if a.Scheme != b.Scheme || a.N() != b.N() || a.Params["n"] != b.Params["n"] {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", a.Scheme, a.N(), b.Scheme, b.N())
	}
	for v := range a.Labels {
		if !a.Labels[v].Equal(b.Labels[v]) {
			t.Fatalf("label %d differs between ReadBytes and Read", v)
		}
	}
	arena, _, ok := a.Arena()
	if !ok {
		t.Fatal("ReadBytes lost the arena")
	}
	// Zero-copy: the arena must be the tail of the input slice, not a copy.
	if len(arena) > 0 && &arena[0] != &data[len(data)-len(arena)] {
		t.Error("ReadBytes copied the blob instead of adopting it")
	}
}

// TestOpenServesQueries: an Open'ed v2 store feeds the query engine directly
// and answers exactly like the original labeling. On Linux the store must be
// a live mapping (the zero-copy startup path).
func TestOpenServesQueries(t *testing.T) {
	lab, data := v2Fixture(t, 300, 7)
	mf, err := Open(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if runtime.GOOS == "linux" && !mf.Mapped() {
		t.Error("v2 store on linux should be memory-mapped")
	}
	slab, bitLens, ok := mf.Arena()
	if !ok {
		t.Fatal("opened v2 store has no arena")
	}
	eng, err := core.NewQueryEngineFromArena(slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < lab.N(); u += 5 {
		for v := u + 1; v < lab.N(); v += 3 {
			want, err := lab.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("mmap engine (%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	if mf.Mapped() {
		t.Error("Mapped() true after Close")
	}
	if err := mf.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestOpenV1Fallback: a v1 store opens through the copying path — usable,
// but not mapped.
func TestOpenV1Fallback(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	mf, err := Open(writeTemp(t, buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if mf.Mapped() {
		t.Error("v1 store claims a mapping")
	}
	if mf.N() != f.N() {
		t.Fatalf("N = %d, want %d", mf.N(), f.N())
	}
	for i := range f.Labels {
		if !mf.Labels[i].Equal(f.Labels[i]) {
			t.Fatalf("label %d differs after Open of v1 store", i)
		}
	}
}

// TestOpenRejectsTruncation: a v2 file cut anywhere inside the body (or the
// header) must fail at Open — never surface a partially-backed arena that
// would fault at query time.
func TestOpenRejectsTruncation(t *testing.T) {
	_, data := v2Fixture(t, 150, 3)
	for _, keep := range []int{len(data) - 1, len(data) - 17, len(data) / 2, 10, 4, 0} {
		mf, err := Open(writeTemp(t, data[:keep]))
		if err == nil {
			mf.Close()
			t.Fatalf("truncated store of %d/%d bytes opened without error", keep, len(data))
		}
		if keep > 5 && !errors.Is(err, ErrFormat) {
			t.Errorf("truncation at %d: err = %v, want ErrFormat", keep, err)
		}
	}
}

// corruptBlobLen returns a copy of a v2 image whose blob-length uvarint is
// rewritten by delta bytes (the field sits immediately before the body blob,
// which is blobBytes long).
func corruptBlobLen(t *testing.T, data []byte, blobBytes int, newLen uint64) []byte {
	t.Helper()
	var lenField [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenField[:], newLen)
	head := data[: len(data)-blobBytes-uvarintLen(uint64(blobBytes)) : len(data)-blobBytes-uvarintLen(uint64(blobBytes))]
	out := append(append(append([]byte{}, head...), lenField[:n]...), data[len(data)-blobBytes:]...)
	return out
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// TestBlobLengthMismatchRejected: both parsers reject a blob-length field
// that disagrees with the declared bit lengths, in both directions, before
// constructing any views.
func TestBlobLengthMismatchRejected(t *testing.T) {
	lab, data := v2Fixture(t, 120, 11)
	slab, _ := lab.Arena()
	for _, wrong := range []uint64{0, uint64(len(slab) - 8), uint64(len(slab) + 8), uint64(len(slab)) * 3} {
		bad := corruptBlobLen(t, data, len(slab), wrong)
		if _, err := ReadBytes(bad); !errors.Is(err, ErrFormat) {
			t.Errorf("ReadBytes with blobLen=%d: err = %v, want ErrFormat", wrong, err)
		}
		if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
			t.Errorf("Read with blobLen=%d: err = %v, want ErrFormat", wrong, err)
		}
	}
}

// TestReadBytesRejectsGarbage mirrors TestReadRejectsGarbage for the
// in-memory parser.
func TestReadBytesRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("PLLB"),
		[]byte("PLLB\x09"),
		[]byte("PLLB\x02\x05abc"),
	}
	for _, in := range cases {
		if _, err := ReadBytes(in); !errors.Is(err, ErrFormat) {
			t.Errorf("input %q: err = %v, want ErrFormat", in, err)
		}
	}
}
