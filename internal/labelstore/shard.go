package labelstore

import (
	"fmt"
	"strconv"

	"repro/internal/bitstr"
	"repro/internal/core"
)

// Shard block: the format-v2 extension for partitioned stores.
//
// A sharded store (pllabel -shards N) is one shard of a fat/thin labeling:
// it holds the full labels of the vertices it owns plus every fat label
// (replicated fat–fat data), with foreign thin labels stripped to their
// 1+w-bit [fat-bit][id] header stub (core.ShardLabelArenas). The store
// announces itself with a "shards" param (the shard count), which — exactly
// like the "layout" param and its permutation block — keys a binary shard
// block between the permutation block and the body blob:
//
//	shard   uvarint shard index, u8 ownership function (0 = range,
//	        1 = hash), uvarint owned-vertex count; present iff params
//	        carries "shards"
//
// Readers too old to know the param fail loudly on the extra bytes (the
// blob-length check cannot match), and v1 stores declaring shards are
// rejected outright. The block is validated on open the same way the
// permutation block is: structurally (index < count, a defined function,
// the owned count recomputed from the function and compared) and against
// the labels themselves (every foreign thin label must be a stub) — a
// corrupted or mislabeled shard map errors at load, it never silently
// mis-answers for vertices the shard does not hold.

// shardsKey is the params entry announcing a sharded store; its value is the
// decimal shard count.
const shardsKey = "shards"

// shardBlock is the parsed shard header of a sharded store.
type shardBlock struct {
	m     core.ShardMap
	owned int
}

// Shard returns the shard map of a partitioned store, or ok=false for an
// ordinary (whole-labeling) store.
func (f *File) Shard() (core.ShardMap, bool) {
	if f.shard == nil {
		return core.ShardMap{}, false
	}
	return f.shard.m, true
}

// NewShardArenaFile builds one shard's store over a per-shard arena produced
// by core.ShardLabelArenas: slab/bitLens/order exactly as
// NewPermutedArenaFile takes them, plus the shard map the arena was split
// under. The shard geometry is validated against the labels here, at
// construction, with the same checks every reader re-runs at load.
func NewShardArenaFile(scheme string, params map[string]string, slab []byte, bitLens []int, order []int32, m core.ShardMap) (*File, error) {
	f, err := NewPermutedArenaFile(scheme, params, slab, bitLens, order)
	if err != nil {
		return nil, err
	}
	sb := &shardBlock{m: m, owned: m.OwnedCount(len(bitLens))}
	if err := validateShardFile(f, sb); err != nil {
		return nil, err
	}
	f.shard = sb
	return f, nil
}

// validateShardFile cross-checks a shard block against the store's labels:
// the map must be well-formed for this n, the recorded owned count must
// match what the ownership function yields, and every foreign thin label
// must be a header-only stub. Shared by the constructor and both readers.
func validateShardFile(f *File, sb *shardBlock) error {
	n := len(f.Labels)
	m := sb.m
	if m.Count < 2 {
		return fmt.Errorf("%w: sharded store with %d shards (want >= 2)", ErrFormat, m.Count)
	}
	if err := m.Validate(n); err != nil {
		return fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if want := m.OwnedCount(n); sb.owned != want {
		return fmt.Errorf("%w: shard %d/%d records %d owned vertices, ownership function %s yields %d",
			ErrFormat, m.Index, m.Count, sb.owned, m.Fn, want)
	}
	w := bitstr.WidthFor(uint64(n))
	stub := 1 + w
	for v, l := range f.Labels {
		if l.Len() < stub {
			return fmt.Errorf("%w: sharded store label %d has %d bits, fat/thin header needs %d",
				ErrFormat, v, l.Len(), stub)
		}
		if m.Owns(v, n) {
			continue
		}
		// Foreign: fat labels are replicated in full, thin labels must be
		// stripped to the stub — a full foreign thin body means the block
		// describes a different shard than the blob holds.
		if fat := l.MustPeekUint(0, 1) == 1; !fat && l.Len() != stub {
			return fmt.Errorf("%w: vertex %d is foreign to shard %d/%d yet its thin label has %d bits (stub is %d)",
				ErrFormat, v, m.Index, m.Count, l.Len(), stub)
		}
	}
	return nil
}

// parseShardCount interprets the "shards" param value.
func parseShardCount(val string) (int, error) {
	count, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("%w: shards param %q: %v", ErrFormat, val, err)
	}
	if count < 2 || int64(count) > maxLabels {
		return 0, fmt.Errorf("%w: shards param %d", ErrFormat, count)
	}
	return count, nil
}

// newShardBlock assembles and range-checks the parsed block fields (full
// validation against the labels happens once the File exists).
func newShardBlock(count int, index uint64, fnByte byte, owned uint64, n int) (*shardBlock, error) {
	if index >= uint64(count) {
		return nil, fmt.Errorf("%w: shard index %d of %d shards", ErrFormat, index, count)
	}
	fn := core.ShardFn(fnByte)
	if !fn.Valid() {
		return nil, fmt.Errorf("%w: unknown shard ownership function %d", ErrFormat, fnByte)
	}
	if owned > uint64(n) {
		return nil, fmt.Errorf("%w: shard owns %d of %d vertices", ErrFormat, owned, n)
	}
	return &shardBlock{
		m:     core.ShardMap{Count: count, Index: int(index), Fn: fn},
		owned: int(owned),
	}, nil
}
