package labelstore

import (
	"repro/internal/obs"
)

// storeMetrics instruments store loading: which path Open took (mmap vs the
// copying fallback), how long it cost, and how many label-body bytes are
// live. Package-level because Open is a free function; the counters
// accumulate whether or not a registry exposes them, so loads that happen
// before registration (the usual daemon startup order) still show up.
var storeMetrics struct {
	OpenMmap    obs.Counter
	OpenCopy    obs.Counter
	OpenNs      obs.Histogram
	MappedBytes obs.Gauge
	BlobBytes   obs.Counter
}

// RegisterMetrics exposes the labelstore metrics on reg under the
// labelstore_* family names. Call once per registry.
func RegisterMetrics(reg *obs.Registry) {
	reg.Counter("labelstore_open_total", "Stores opened, by load mode.", &storeMetrics.OpenMmap, "mode", "mmap")
	reg.Counter("labelstore_open_total", "Stores opened, by load mode.", &storeMetrics.OpenCopy, "mode", "copy")
	reg.Histogram("labelstore_open_ns", "Open duration (map or copy, header parse included).", &storeMetrics.OpenNs)
	reg.Gauge("labelstore_mapped_bytes", "Bytes of live store mappings.", &storeMetrics.MappedBytes)
	reg.Counter("labelstore_blob_bytes_total", "Label-body blob bytes loaded (mapped or copied).", &storeMetrics.BlobBytes)
}
