package labelstore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	g := gen.ErdosRenyi(50, 0.1, 1)
	lab, err := core.NewSparseScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := 0; v < g.N(); v++ {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		labels[v] = l
	}
	return &File{
		Scheme: lab.Scheme(),
		Params: map[string]string{"n": "50"},
		Labels: labels,
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != f.Scheme {
		t.Errorf("scheme %q, want %q", got.Scheme, f.Scheme)
	}
	if got.Params["n"] != "50" {
		t.Errorf("params = %v", got.Params)
	}
	if got.N() != f.N() {
		t.Fatalf("N = %d, want %d", got.N(), f.N())
	}
	for i := range f.Labels {
		if !got.Labels[i].Equal(f.Labels[i]) {
			t.Fatalf("label %d differs after round trip", i)
		}
	}
}

func TestRoundTripDecodes(t *testing.T) {
	// Labels loaded from disk must still answer queries.
	g := gen.ErdosRenyi(40, 0.15, 2)
	lab, err := core.NewSparseScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := range labels {
		labels[v], err = lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, &File{Scheme: "sparse", Params: map[string]string{"n": "40"}, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := loaded.IntParam("n")
	if err != nil {
		t.Fatal(err)
	}
	dec := core.NewFatThinDecoder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			got, err := dec.Adjacent(loaded.Labels[u], loaded.Labels[v])
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("loaded labels wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestIntParam(t *testing.T) {
	f := &File{Params: map[string]string{"n": "7", "bad": "x"}}
	if v, err := f.IntParam("n"); err != nil || v != 7 {
		t.Errorf("IntParam(n) = %d, %v", v, err)
	}
	if _, err := f.IntParam("missing"); !errors.Is(err, ErrFormat) {
		t.Errorf("missing param err = %v", err)
	}
	if _, err := f.IntParam("bad"); !errors.Is(err, ErrFormat) {
		t.Errorf("bad param err = %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"PLLB",            // truncated after magic
		"PLLB\x09",        // bad version
		"PLLB\x01\x05abc", // truncated scheme string
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Errorf("input %q: err = %v, want ErrFormat", in, err)
		}
	}
}

func TestReadTruncatedLabels(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-3])); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated file err = %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &File{Scheme: "x"}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || got.Scheme != "x" {
		t.Errorf("empty store: %+v", got)
	}
}

// Property: arbitrary label payloads round-trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, trims []uint8) bool {
		labels := make([]bitstr.String, len(payloads))
		for i, p := range payloads {
			var b bitstr.Builder
			for _, by := range p {
				b.AppendUint(uint64(by), 8)
			}
			// Trim to a ragged bit length.
			if len(trims) > 0 {
				t := int(trims[i%len(trims)]) % 8
				for j := 0; j < t; j++ {
					b.AppendBit(j%2 == 0)
				}
			}
			labels[i] = b.String()
		}
		var buf bytes.Buffer
		if err := Write(&buf, &File{Scheme: "q", Labels: labels}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N() != len(labels) {
			return false
		}
		for i := range labels {
			if !got.Labels[i].Equal(labels[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArenaReadRoundTrip: Read decodes all labels into one shared slab; the
// views must be bit-identical to the originals (including odd bit lengths
// that leave padding in the final byte) and must answer queries correctly
// through a core.QueryEngine built straight over the store.
func TestArenaReadRoundTrip(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(300, 2.5, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := range labels {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		labels[v] = l
	}
	f := &File{Scheme: lab.Scheme(), Params: map[string]string{"n": "300"}, Labels: labels}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if !got.Labels[i].Equal(labels[i]) {
			t.Fatalf("label %d differs after arena round trip", i)
		}
	}
	// Labels with i>0 share the slab with label 0 (single allocation): the
	// second label's backing array must sit inside the same slab as the
	// first non-empty one. We can't compare pointers across allocations
	// portably, so instead assert the functional property: a query engine
	// over the arena views answers exactly like the original labeling.
	eng, err := core.NewQueryEngineFromLabels(got.Labels)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			want, err := lab.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			gotAdj, err := eng.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if gotAdj != want {
				t.Fatalf("arena engine (%d,%d) = %v, want %v", u, v, gotAdj, want)
			}
		}
	}
}

// TestSlabRoundTrip: a pipeline-built labeling round-trips through format v2
// — labels bit-identical, arena recovered, and a query engine built straight
// over the loaded blob (zero relocation) answers like the original labeling.
func TestSlabRoundTrip(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(500, 2.4, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.4).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := lab.Arena()
	if !ok {
		t.Fatal("pipeline labeling is not arena-backed")
	}
	bitLens := make([]int, g.N())
	origLabels := make([]bitstr.String, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		origLabels[v] = l
		bitLens[v] = l.Len()
	}
	f, err := NewArenaFile(lab.Scheme(), map[string]string{"n": "500"}, slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	// The v2 body is the slab verbatim: the file carries exactly one blob of
	// len(slab) bytes (plus a small header), not n padded payloads.
	if buf.Len() >= len(slab)+len(slab)/8+256 {
		t.Errorf("v2 file is %d bytes for a %d-byte slab", buf.Len(), len(slab))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != lab.Scheme() || got.N() != g.N() {
		t.Fatalf("loaded scheme=%q n=%d", got.Scheme, got.N())
	}
	for v := range origLabels {
		if !got.Labels[v].Equal(origLabels[v]) {
			t.Fatalf("label %d differs after v2 round trip", v)
		}
	}
	gotSlab, gotLens, ok := got.Arena()
	if !ok {
		t.Fatal("v2 store lost its arena")
	}
	if !bytes.Equal(gotSlab, slab) {
		t.Fatal("v2 blob differs from the encoder's slab")
	}
	eng, err := core.NewQueryEngineFromArena(gotSlab, gotLens)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 7 {
		for v := u + 1; v < g.N(); v += 3 {
			want, err := lab.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			gotAdj, err := eng.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if gotAdj != want {
				t.Fatalf("slab engine (%d,%d) = %v, want %v", u, v, gotAdj, want)
			}
		}
	}
}

// TestV1BackCompat: files produced by the v1 writer still load — a store
// built from plain labels takes the v1 path and comes back without an arena.
func TestV1BackCompat(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != version1 {
		t.Fatalf("plain store wrote version %d, want %d", v, version1)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := got.Arena(); ok {
		t.Error("v1 store claims an arena")
	}
	for i := range f.Labels {
		if !got.Labels[i].Equal(f.Labels[i]) {
			t.Fatalf("label %d differs after v1 round trip", i)
		}
	}
}

// TestSlabReadRejectsCorruption: v2-specific failure modes — truncated blob,
// blob length disagreeing with the bit lengths — must surface as ErrFormat.
func TestSlabReadRejectsCorruption(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(100, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, _ := lab.Arena()
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, _ := lab.Label(v)
		bitLens[v] = l.Len()
	}
	f, err := NewArenaFile(lab.Scheme(), nil, slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-5])); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated v2 blob: err = %v, want ErrFormat", err)
	}
	// Corrupt the last bit-length uvarint region so lengths and blob size
	// disagree. The blob length field sits right before the blob.
	bad := append([]byte(nil), data...)
	bad[len(bad)-len(slab)-1] ^= 0x01 // perturb blob length varint
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("mismatched v2 blob length: err = %v, want ErrFormat", err)
	}
}

// TestNewArenaFileValidates: slab/length mismatches are rejected up front.
func TestNewArenaFileValidates(t *testing.T) {
	if _, err := NewArenaFile("x", nil, make([]byte, 8), []int{65}); err == nil {
		t.Error("oversized label accepted")
	}
	if _, err := NewArenaFile("x", nil, make([]byte, 24), []int{64}); err == nil {
		t.Error("trailing slab bytes accepted")
	}
	f, err := NewArenaFile("x", nil, make([]byte, 16), []int{3, 64})
	if err != nil {
		t.Fatal(err)
	}
	if f.Labels[0].Len() != 3 || f.Labels[1].Len() != 64 {
		t.Errorf("view lengths %d, %d", f.Labels[0].Len(), f.Labels[1].Len())
	}
}

// TestArenaReadMasksDirtyPadding: files written by other producers may
// carry garbage in the padding bits of a label's final byte; Read must
// zero them so Equal and lexicographic comparisons behave.
func TestArenaReadMasksDirtyPadding(t *testing.T) {
	var b bitstr.Builder
	b.AppendUint(0b10110, 5)
	clean := b.String()
	var buf bytes.Buffer
	if err := Write(&buf, &File{Scheme: "x", Params: map[string]string{}, Labels: []bitstr.String{clean}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The label payload is the final byte of the file; dirty its padding.
	raw[len(raw)-1] |= 0x07
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Labels[0].Equal(clean) {
		t.Fatalf("dirty padding leaked: got %v, want %v", got.Labels[0], clean)
	}
}
