package labelstore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
)

func sampleFile(t *testing.T) *File {
	t.Helper()
	g := gen.ErdosRenyi(50, 0.1, 1)
	lab, err := core.NewSparseScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := 0; v < g.N(); v++ {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		labels[v] = l
	}
	return &File{
		Scheme: lab.Scheme(),
		Params: map[string]string{"n": "50"},
		Labels: labels,
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != f.Scheme {
		t.Errorf("scheme %q, want %q", got.Scheme, f.Scheme)
	}
	if got.Params["n"] != "50" {
		t.Errorf("params = %v", got.Params)
	}
	if got.N() != f.N() {
		t.Fatalf("N = %d, want %d", got.N(), f.N())
	}
	for i := range f.Labels {
		if !got.Labels[i].Equal(f.Labels[i]) {
			t.Fatalf("label %d differs after round trip", i)
		}
	}
}

func TestRoundTripDecodes(t *testing.T) {
	// Labels loaded from disk must still answer queries.
	g := gen.ErdosRenyi(40, 0.15, 2)
	lab, err := core.NewSparseScheme(2).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := range labels {
		labels[v], err = lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, &File{Scheme: "sparse", Params: map[string]string{"n": "40"}, Labels: labels}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := loaded.IntParam("n")
	if err != nil {
		t.Fatal(err)
	}
	dec := core.NewFatThinDecoder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			got, err := dec.Adjacent(loaded.Labels[u], loaded.Labels[v])
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("loaded labels wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestIntParam(t *testing.T) {
	f := &File{Params: map[string]string{"n": "7", "bad": "x"}}
	if v, err := f.IntParam("n"); err != nil || v != 7 {
		t.Errorf("IntParam(n) = %d, %v", v, err)
	}
	if _, err := f.IntParam("missing"); !errors.Is(err, ErrFormat) {
		t.Errorf("missing param err = %v", err)
	}
	if _, err := f.IntParam("bad"); !errors.Is(err, ErrFormat) {
		t.Errorf("bad param err = %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXX",
		"PLLB",            // truncated after magic
		"PLLB\x09",        // bad version
		"PLLB\x01\x05abc", // truncated scheme string
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Errorf("input %q: err = %v, want ErrFormat", in, err)
		}
	}
}

func TestReadTruncatedLabels(t *testing.T) {
	f := sampleFile(t)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-3])); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated file err = %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &File{Scheme: "x"}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || got.Scheme != "x" {
		t.Errorf("empty store: %+v", got)
	}
}

// Property: arbitrary label payloads round-trip exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, trims []uint8) bool {
		labels := make([]bitstr.String, len(payloads))
		for i, p := range payloads {
			var b bitstr.Builder
			for _, by := range p {
				b.AppendUint(uint64(by), 8)
			}
			// Trim to a ragged bit length.
			if len(trims) > 0 {
				t := int(trims[i%len(trims)]) % 8
				for j := 0; j < t; j++ {
					b.AppendBit(j%2 == 0)
				}
			}
			labels[i] = b.String()
		}
		var buf bytes.Buffer
		if err := Write(&buf, &File{Scheme: "q", Labels: labels}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.N() != len(labels) {
			return false
		}
		for i := range labels {
			if !got.Labels[i].Equal(labels[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArenaReadRoundTrip: Read decodes all labels into one shared slab; the
// views must be bit-identical to the originals (including odd bit lengths
// that leave padding in the final byte) and must answer queries correctly
// through a core.QueryEngine built straight over the store.
func TestArenaReadRoundTrip(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(300, 2.5, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := range labels {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		labels[v] = l
	}
	f := &File{Scheme: lab.Scheme(), Params: map[string]string{"n": "300"}, Labels: labels}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if !got.Labels[i].Equal(labels[i]) {
			t.Fatalf("label %d differs after arena round trip", i)
		}
	}
	// Labels with i>0 share the slab with label 0 (single allocation): the
	// second label's backing array must sit inside the same slab as the
	// first non-empty one. We can't compare pointers across allocations
	// portably, so instead assert the functional property: a query engine
	// over the arena views answers exactly like the original labeling.
	eng, err := core.NewQueryEngineFromLabels(got.Labels)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			want, err := lab.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			gotAdj, err := eng.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if gotAdj != want {
				t.Fatalf("arena engine (%d,%d) = %v, want %v", u, v, gotAdj, want)
			}
		}
	}
}

// TestArenaReadMasksDirtyPadding: files written by other producers may
// carry garbage in the padding bits of a label's final byte; Read must
// zero them so Equal and lexicographic comparisons behave.
func TestArenaReadMasksDirtyPadding(t *testing.T) {
	var b bitstr.Builder
	b.AppendUint(0b10110, 5)
	clean := b.String()
	var buf bytes.Buffer
	if err := Write(&buf, &File{Scheme: "x", Params: map[string]string{}, Labels: []bitstr.String{clean}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The label payload is the final byte of the file; dirty its padding.
	raw[len(raw)-1] |= 0x07
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Labels[0].Equal(clean) {
		t.Fatalf("dirty padding leaked: got %v, want %v", got.Labels[0], clean)
	}
}
