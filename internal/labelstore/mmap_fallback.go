//go:build !linux && !darwin

package labelstore

import (
	"errors"
	"os"
)

// mmapFile reports mmap as unavailable; Open falls back to the plain
// sequential reader.
func mmapFile(*os.File, int) ([]byte, error) { return nil, errors.ErrUnsupported }

func munmapFile([]byte) error { return nil }
