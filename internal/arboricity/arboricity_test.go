package arboricity

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestOrientEveryEdgeOnce(t *testing.T) {
	g := gen.ErdosRenyi(200, 0.05, 1)
	o := Orient(g)
	count := 0
	seen := map[[2]int]bool{}
	for v := range o.Out {
		for _, w := range o.Out[v] {
			a, b := v, int(w)
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				t.Fatalf("edge (%d,%d) oriented twice", a, b)
			}
			seen[[2]int{a, b}] = true
			if !g.HasEdge(v, int(w)) {
				t.Fatalf("oriented non-edge (%d,%d)", v, w)
			}
			count++
		}
	}
	if count != g.M() {
		t.Errorf("oriented %d edges, graph has %d", count, g.M())
	}
}

func TestOrientAcyclic(t *testing.T) {
	// The orientation must follow the peeling order: every out-edge goes to
	// a vertex removed later.
	g := gen.ErdosRenyi(150, 0.08, 2)
	o := Orient(g)
	rank := make([]int, g.N())
	for i, v := range o.Order {
		rank[v] = i
	}
	for v := range o.Out {
		for _, w := range o.Out[v] {
			if rank[v] >= rank[int(w)] {
				t.Fatalf("out-edge (%d→%d) violates peeling order", v, w)
			}
		}
	}
}

func TestDegeneracyKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.Empty(5), 0},
		{"path", gen.Path(10), 1},
		{"tree", gen.RandomTree(50, 3), 1},
		{"cycle", gen.Cycle(10), 2},
		{"K5", gen.Complete(5), 4},
		{"K3x3", gen.CompleteBipartite(3, 3), 3},
		{"grid", gen.Grid(4, 4), 2},
	}
	for _, tc := range tests {
		if got := Degeneracy(tc.g); got != tc.want {
			t.Errorf("%s: degeneracy = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestDecomposePartitionsEdges(t *testing.T) {
	g := gen.ErdosRenyi(120, 0.06, 3)
	d := Decompose(g)
	count := 0
	seen := map[[2]int]bool{}
	for i := 0; i < d.Forests(); i++ {
		for v, p := range d.Parent[i] {
			if p < 0 {
				continue
			}
			a, b := v, int(p)
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				t.Fatalf("edge (%d,%d) in two forests", a, b)
			}
			seen[key] = true
			if !g.HasEdge(v, int(p)) {
				t.Fatalf("forest contains non-edge (%d,%d)", v, p)
			}
			count++
		}
	}
	if count != g.M() {
		t.Errorf("forests hold %d edges, graph has %d", count, g.M())
	}
}

func TestDecomposePartsAreForests(t *testing.T) {
	g := gen.ErdosRenyi(100, 0.1, 4)
	d := Decompose(g)
	for i := 0; i < d.Forests(); i++ {
		// Build each part as a graph and check acyclicity: edges <= n - #components.
		b := graph.NewBuilder(d.N)
		edges := 0
		for v, p := range d.Parent[i] {
			if p >= 0 {
				if err := b.AddEdge(v, int(p)); err != nil {
					t.Fatal(err)
				}
				edges++
			}
		}
		part := b.Build()
		if part.M() != edges {
			t.Fatalf("forest %d: duplicate parent edges", i)
		}
		_, comps := part.ConnectedComponents()
		if edges != d.N-comps {
			t.Errorf("forest %d: %d edges, %d components on %d vertices — contains a cycle",
				i, edges, comps, d.N)
		}
	}
}

func TestDecomposeBAForestCount(t *testing.T) {
	// Proposition 5's premise: BA graphs decompose into O(m) forests. The
	// degeneracy of a BA graph with parameter m is exactly m (the last
	// attached vertex has degree m), so the decomposition has ~m forests —
	// and certainly at most 2m (the cited 2-approximation guarantee).
	for _, m := range []int{1, 2, 3, 5} {
		g, err := gen.BarabasiAlbert(2000, m, int64(m))
		if err != nil {
			t.Fatal(err)
		}
		d := Decompose(g)
		if d.Forests() < 1 || d.Forests() > 2*m {
			t.Errorf("BA(m=%d): %d forests, want in [1, %d]", m, d.Forests(), 2*m)
		}
	}
}

func TestArboricityLowerBound(t *testing.T) {
	if got := ArboricityLowerBound(gen.Complete(5)); got != 3 {
		t.Errorf("K5 lower bound = %d, want ceil(10/4)=3", got)
	}
	if got := ArboricityLowerBound(gen.Path(10)); got != 1 {
		t.Errorf("path lower bound = %d, want 1", got)
	}
	if got := ArboricityLowerBound(graph.Empty(1)); got != 0 {
		t.Errorf("trivial lower bound = %d, want 0", got)
	}
}

func TestDegeneracyUpperBoundsLowerBound(t *testing.T) {
	// density lower bound <= arboricity <= degeneracy must hold everywhere
	// (a d-degenerate graph splits into d forests, so arboricity <= d).
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(60, 0.1, seed)
		return ArboricityLowerBound(g) <= Degeneracy(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
