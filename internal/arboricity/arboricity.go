// Package arboricity computes low-outdegree acyclic orientations and forest
// decompositions of sparse graphs.
//
// Proposition 5 of the paper labels Barabási–Albert graphs by decomposing
// them into O(m) forests and labeling each forest with a tree scheme. The
// decomposition here is the classical degeneracy (smallest-last) peeling:
// repeatedly remove a minimum-degree vertex and orient its remaining edges
// away from it. The resulting orientation is acyclic with maximum outdegree
// equal to the graph's degeneracy d, and d ≤ 2·arboricity - 1, matching the
// 2-approximation the paper cites (Arikati–Maheshwari–Zaroliagis).
// Splitting the out-edges by rank then yields d forests.
package arboricity

import (
	"repro/internal/graph"
)

// Orientation is an acyclic orientation of a graph with bounded outdegree.
type Orientation struct {
	// Out[v] lists the heads of v's out-edges, in peeling order.
	Out [][]int32
	// MaxOut is the maximum outdegree (the graph's degeneracy).
	MaxOut int
	// Order is the peeling order (Order[i] = i-th removed vertex).
	Order []int
}

// Orient computes the degeneracy ordering and the induced acyclic
// orientation in O(n + m) time using bucketed min-degree peeling.
func Orient(g *graph.Graph) *Orientation {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over current degrees.
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	out := make([][]int32, n)
	order := make([]int, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		// Find the lowest non-empty bucket; cur may need to step back by at
		// most 1 after each removal, so clamp rather than reset.
		if cur > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		v := int(buckets[cur][len(buckets[cur])-1])
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale bucket entry (degree changed since insertion).
			continue
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Neighbors(v) {
			if removed[w] {
				continue
			}
			// Orient v -> w (w survives v).
			out[v] = append(out[v], w)
			deg[w]--
			buckets[deg[w]] = append(buckets[deg[w]], w)
		}
	}
	maxOut := 0
	for v := range out {
		if len(out[v]) > maxOut {
			maxOut = len(out[v])
		}
	}
	return &Orientation{Out: out, MaxOut: maxOut, Order: order}
}

// Degeneracy returns the degeneracy of g. A vertex's outdegree in the
// smallest-last orientation equals its degree at removal time, so the
// degeneracy is exactly the orientation's maximum outdegree.
func Degeneracy(g *graph.Graph) int { return Orient(g).MaxOut }

// Decomposition is a partition of a graph's edges into rooted forests,
// each represented as a parent array: Parent[i][v] is v's parent in forest
// i, or -1 if v has no parent there. Every edge {u,v} appears in exactly one
// forest, as either Parent[i][u] = v or Parent[i][v] = u.
type Decomposition struct {
	Parent [][]int32
	N      int
}

// Forests returns the number of forests in the decomposition.
func (d *Decomposition) Forests() int { return len(d.Parent) }

// Decompose splits g's edges into at most degeneracy(g) forests: forest i
// consists of every vertex's i-th out-edge in the acyclic orientation.
// Because the orientation is acyclic and each vertex contributes at most one
// edge per forest, each part is indeed a forest.
func Decompose(g *graph.Graph) *Decomposition {
	o := Orient(g)
	n := g.N()
	k := o.MaxOut
	parent := make([][]int32, k)
	for i := range parent {
		p := make([]int32, n)
		for v := range p {
			p[v] = -1
		}
		parent[i] = p
	}
	for v := 0; v < n; v++ {
		for i, w := range o.Out[v] {
			parent[i][v] = w
		}
	}
	return &Decomposition{Parent: parent, N: n}
}

// ArboricityLowerBound returns the density lower bound
// ceil(m / (n-1)) ≤ arboricity, from Nash-Williams' formula applied to the
// whole graph.
func ArboricityLowerBound(g *graph.Graph) int {
	if g.N() <= 1 {
		return 0
	}
	m, n := g.M(), g.N()
	return (m + n - 2) / (n - 1) // ceil(m / (n-1))
}
