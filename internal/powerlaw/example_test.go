package powerlaw_test

import (
	"fmt"
	"log"

	"repro/internal/powerlaw"
)

// ExampleZeta evaluates the Riemann zeta normalisation used throughout the
// paper's Definition 2 (C = 1/ζ(α)).
func ExampleZeta() {
	z, err := powerlaw.Zeta(2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.6f\n", z) // π²/6
	// Output: 1.644934
}

// ExampleNewParams derives the Section 3 constants for an n-vertex graph.
func ExampleNewParams() {
	p, err := powerlaw.NewParams(2.5, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C=%.4f i1=%d lowerBound=%d bits\n", p.C, p.I1, p.AdjacencyLowerBound())
	// Output: C=0.7454 i1=68 lowerBound=34 bits
}

// ExampleParams_PowerLawThreshold computes the Theorem 4 degree threshold.
func ExampleParams_PowerLawThreshold() {
	p, err := powerlaw.NewParams(2.5, 65536)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.PowerLawThreshold())
	// Output: 173
}

// ExampleFitAlphaAt estimates the exponent from a degree sample.
func ExampleFitAlphaAt() {
	// Degrees with an exact k^-2 histogram shape over a small support.
	var degrees []int
	for k := 1; k <= 8; k++ {
		count := 256 / (k * k)
		for i := 0; i < count; i++ {
			degrees = append(degrees, k)
		}
	}
	fit, err := powerlaw.FitAlphaAt(degrees, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alpha within [1.7, 2.3]: %v\n", fit.Alpha > 1.7 && fit.Alpha < 2.3)
	// Output: alpha within [1.7, 2.3]: true
}
