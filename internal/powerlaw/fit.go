package powerlaw

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned when a fit is attempted on an empty sample.
var ErrNoData = errors.New("powerlaw: no degrees >= xmin to fit")

// Fit holds the result of fitting a discrete power law to a degree sample.
type Fit struct {
	Alpha float64 // fitted exponent
	Xmin  int     // lower cutoff at which the power law begins
	KS    float64 // Kolmogorov–Smirnov distance of the fit above Xmin
	NTail int     // number of samples >= Xmin
}

// FitAlphaAt estimates α by discrete maximum likelihood for the tail
// degrees >= xmin, using the Clauset–Shalizi–Newman approximation
// α ≈ 1 + n / Σ ln(x_i / (xmin - 1/2)), which is accurate for xmin ≳ 2 and
// adequate at xmin = 1 for our use (threshold prediction, where only the
// rough scale of α matters).
func FitAlphaAt(degrees []int, xmin int) (Fit, error) {
	if xmin < 1 {
		xmin = 1
	}
	var sumLog float64
	nTail := 0
	for _, d := range degrees {
		if d >= xmin {
			sumLog += math.Log(float64(d) / (float64(xmin) - 0.5))
			nTail++
		}
	}
	if nTail == 0 || sumLog <= 0 {
		return Fit{}, fmt.Errorf("%w (xmin=%d)", ErrNoData, xmin)
	}
	alpha := 1 + float64(nTail)/sumLog
	f := Fit{Alpha: alpha, Xmin: xmin, NTail: nTail}
	f.KS = ksDistance(degrees, alpha, xmin)
	return f, nil
}

// FitAlpha scans xmin over the distinct degree values (capped at maxXmin
// candidates) and returns the fit minimizing the KS distance, following the
// standard Clauset–Shalizi–Newman procedure.
func FitAlpha(degrees []int) (Fit, error) {
	if len(degrees) == 0 {
		return Fit{}, ErrNoData
	}
	distinct := distinctSorted(degrees)
	const maxCandidates = 50
	if len(distinct) > maxCandidates {
		distinct = distinct[:maxCandidates]
	}
	best := Fit{KS: math.Inf(1)}
	var firstErr error
	for _, xmin := range distinct {
		f, err := FitAlphaAt(degrees, xmin)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Require a minimally meaningful tail.
		if f.NTail < 10 && best.NTail > 0 {
			continue
		}
		if f.KS < best.KS {
			best = f
		}
	}
	if math.IsInf(best.KS, 1) {
		if firstErr != nil {
			return Fit{}, firstErr
		}
		return Fit{}, ErrNoData
	}
	return best, nil
}

func distinctSorted(xs []int) []int {
	seen := make(map[int]struct{}, len(xs))
	for _, x := range xs {
		if x >= 1 {
			seen[x] = struct{}{}
		}
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// ksDistance computes the Kolmogorov–Smirnov distance between the empirical
// CDF of the sample tail (values >= xmin) and the fitted discrete power-law
// CDF with exponent alpha.
func ksDistance(degrees []int, alpha float64, xmin int) float64 {
	var tail []int
	for _, d := range degrees {
		if d >= xmin {
			tail = append(tail, d)
		}
	}
	if len(tail) == 0 {
		return math.Inf(1)
	}
	sort.Ints(tail)
	zx, err := HurwitzZeta(alpha, float64(xmin))
	if err != nil || zx <= 0 {
		return math.Inf(1)
	}
	n := float64(len(tail))
	maxDiff := 0.0
	// Walk distinct values ascending; empirical CDF steps at each, model CDF
	// is 1 - ζ(α, x+1)/ζ(α, xmin). The shift identity
	// ζ(α, q+1) = ζ(α, q) - q^{-α} turns the tail zetas into one running
	// subtraction instead of a fresh series evaluation per distinct value.
	zTail := zx // ζ(α, xmin); becomes ζ(α, x+1) as x advances
	prevX := xmin - 1
	for i := 0; i < len(tail); {
		j := i
		for j < len(tail) && tail[j] == tail[i] {
			j++
		}
		x := tail[i]
		for k := prevX + 1; k <= x; k++ {
			zTail -= math.Pow(float64(k), -alpha)
		}
		prevX = x
		emp := float64(j) / n
		model := 1 - zTail/zx
		if d := math.Abs(emp - model); d > maxDiff {
			maxDiff = d
		}
		i = j
	}
	return maxDiff
}
