package powerlaw

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// PhReport describes the outcome of a P_h membership check.
type PhReport struct {
	Member bool
	// WorstK is the degree k at which the tail bound was tightest (or first
	// violated), and WorstRatio is (Σ_{i≥k}|V_i|) / (C'·n/k^(α-1)) there.
	WorstK     int
	WorstRatio float64
}

// CheckPh verifies Definition 1: for all integers k in [χ(n), n-1],
// Σ_{i=k}^{n-1} |V_i| ≤ C'·n/k^(α-1). chi is the cutoff function value χ(n);
// pass 1 to require the bound across the whole degree range.
func CheckPh(g *graph.Graph, p Params, chi int) PhReport {
	if chi < 1 {
		chi = 1
	}
	n := g.N()
	tails := g.TailCounts()
	rep := PhReport{Member: true}
	maxK := n - 1
	if maxK >= len(tails) {
		maxK = len(tails) - 1
	}
	for k := chi; k <= maxK; k++ {
		tail := float64(tails[k])
		bound := p.CPrim * float64(n) / math.Pow(float64(k), p.Alpha-1)
		ratio := 0.0
		if bound > 0 {
			ratio = tail / bound
		}
		if ratio > rep.WorstRatio {
			rep.WorstRatio = ratio
			rep.WorstK = k
		}
		if tail > bound {
			rep.Member = false
		}
	}
	// Degrees above len(tails)-1 have zero tail and trivially satisfy the
	// bound, so the loop range above is exhaustive.
	return rep
}

// PlViolation describes why a graph fails P_l membership.
type PlViolation struct {
	Rule   int    // which numbered condition of Definition 2 failed (1-4)
	Degree int    // the degree k at which it failed
	Detail string // human-readable description
}

func (v *PlViolation) Error() string {
	return fmt.Sprintf("powerlaw: P_l condition %d violated at degree %d: %s", v.Rule, v.Degree, v.Detail)
}

// CheckPl verifies Definition 2 exactly:
//  1. ⌊Cn⌋ - i₁ - 1 ≤ |V_1| ≤ ⌈Cn⌉,
//  2. ⌊Cn/2^α⌋ ≤ |V_2| ≤ ⌈Cn/2^α⌉ + 1,
//  3. for 3 ≤ i ≤ n: |V_i| ∈ {⌊Cn/i^α⌋, ⌈Cn/i^α⌉},
//  4. for 2 ≤ i ≤ n-1: |V_i| ≥ |V_{i+1}|.
//
// A nil return means the graph is a member of P_l(α).
func CheckPl(g *graph.Graph, p Params) error {
	n := g.N()
	if n != p.N {
		return fmt.Errorf("powerlaw: params built for n=%d but graph has n=%d", p.N, n)
	}
	hist := g.DegreeHistogram()
	sizeAt := func(k int) int {
		if k < len(hist) {
			return hist[k]
		}
		return 0
	}
	cn := p.C * float64(n)

	v1 := sizeAt(1)
	lo1 := int(math.Floor(cn)) - p.I1 - 1
	hi1 := int(math.Ceil(cn))
	if v1 < lo1 || v1 > hi1 {
		return &PlViolation{Rule: 1, Degree: 1,
			Detail: fmt.Sprintf("|V_1| = %d not in [%d, %d]", v1, lo1, hi1)}
	}

	e2 := cn / math.Pow(2, p.Alpha)
	v2 := sizeAt(2)
	lo2, hi2 := int(math.Floor(e2)), int(math.Ceil(e2))+1
	if v2 < lo2 || v2 > hi2 {
		return &PlViolation{Rule: 2, Degree: 2,
			Detail: fmt.Sprintf("|V_2| = %d not in [%d, %d]", v2, lo2, hi2)}
	}

	// Conditions 3 and 4 must hold up to degree n; degrees beyond the
	// histogram length have |V_i| = 0 which is only acceptable when the
	// expected count rounds down to 0. Since ⌊Cn/i^α⌋ = 0 for all i ≥ i₁+1
	// or so, scanning up to max(len(hist), i₁)+1 suffices; beyond that the
	// expected floor is 0 and |V_i| = 0 always satisfies condition 3.
	upper := len(hist)
	if p.I1+2 > upper {
		upper = p.I1 + 2
	}
	if upper > n {
		upper = n
	}
	for i := 3; i <= upper; i++ {
		e := cn / math.Pow(float64(i), p.Alpha)
		lo, hi := int(math.Floor(e)), int(math.Ceil(e))
		vi := sizeAt(i)
		if vi < lo || vi > hi {
			return &PlViolation{Rule: 3, Degree: i,
				Detail: fmt.Sprintf("|V_%d| = %d not in {%d, %d}", i, vi, lo, hi)}
		}
	}
	maxD := g.MaxDegree()
	for i := 2; i < maxD; i++ {
		if sizeAt(i) < sizeAt(i+1) {
			return &PlViolation{Rule: 4, Degree: i,
				Detail: fmt.Sprintf("|V_%d| = %d < |V_%d| = %d", i, sizeAt(i), i+1, sizeAt(i+1))}
		}
	}
	return nil
}

// MaxDegreeBoundPl returns Proposition 1's bound on the maximum degree of an
// n-vertex member of P_l: (C/(α-1) + 2)·n^(1/α) + i₁ + 3.
func (p Params) MaxDegreeBoundPl() float64 {
	return (p.C/(p.Alpha-1)+2)*math.Pow(float64(p.N), 1/p.Alpha) + float64(p.I1) + 3
}

// SparsityBoundPl returns an upper bound on the edge count of an n-vertex
// member of P_l following the Proposition 2 computation:
// 1 + k'(k'+1)/4 + C·n·ζ(α-1) where k' is the Proposition 1 degree bound.
// Only meaningful for α > 2 (otherwise ζ(α-1) diverges and math.Inf is
// returned).
func (p Params) SparsityBoundPl() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	k := p.MaxDegreeBoundPl()
	z, err := Zeta(p.Alpha - 1)
	if err != nil {
		return math.Inf(1)
	}
	return 1 + k*(k+1)/4 + p.C*float64(p.N)*z
}
