package powerlaw

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestZetaKnownValues(t *testing.T) {
	tests := []struct {
		alpha, want float64
	}{
		{2, math.Pi * math.Pi / 6},
		{4, math.Pow(math.Pi, 4) / 90},
		{3, 1.2020569031595942},
		{1.5, 2.612375348685488},
		{2.5, 1.3414872572509171},
	}
	for _, tc := range tests {
		got, err := Zeta(tc.alpha)
		if err != nil {
			t.Fatalf("Zeta(%v): %v", tc.alpha, err)
		}
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("Zeta(%v) = %.12f, want %.12f", tc.alpha, got, tc.want)
		}
	}
}

func TestZetaRejectsBadAlpha(t *testing.T) {
	for _, a := range []float64{1, 0.5, 0, -2} {
		if _, err := Zeta(a); !errors.Is(err, ErrAlphaRange) {
			t.Errorf("Zeta(%v) err = %v, want ErrAlphaRange", a, err)
		}
	}
}

func TestHurwitzShiftIdentity(t *testing.T) {
	// ζ(α, q+1) = ζ(α, q) - q^{-α}.
	for _, alpha := range []float64{1.7, 2.2, 3.5} {
		for _, q := range []float64{1, 2, 5, 10} {
			zq, err := HurwitzZeta(alpha, q)
			if err != nil {
				t.Fatal(err)
			}
			zq1, err := HurwitzZeta(alpha, q+1)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(zq1, zq-math.Pow(q, -alpha), 1e-9) {
				t.Errorf("Hurwitz shift identity fails at α=%v q=%v", alpha, q)
			}
		}
	}
}

func TestNewParamsBasic(t *testing.T) {
	p, err := NewParams(2.5, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p.C, 1/1.3414872572509171, 1e-9) {
		t.Errorf("C = %v", p.C)
	}
	// i₁ must be the smallest i with ⌊Cn/i^α⌋ ≤ 1.
	fl := func(i int) float64 {
		return math.Floor(p.C * float64(p.N) / math.Pow(float64(i), p.Alpha))
	}
	if fl(p.I1) > 1 {
		t.Errorf("⌊Cn/i₁^α⌋ = %v > 1", fl(p.I1))
	}
	if p.I1 > 1 && fl(p.I1-1) <= 1 {
		t.Errorf("i₁ = %d not minimal", p.I1)
	}
	// i₁ = Θ(n^(1/α)): sanity window.
	nRoot := math.Pow(float64(p.N), 1/p.Alpha)
	if float64(p.I1) < 0.3*nRoot || float64(p.I1) > 3*nRoot {
		t.Errorf("i₁ = %d not within Θ(n^(1/α)) window around %.1f", p.I1, nRoot)
	}
	if p.CPrim <= p.C/(p.Alpha-1) {
		t.Errorf("C' = %v too small", p.CPrim)
	}
}

func TestNewParamsErrors(t *testing.T) {
	if _, err := NewParams(1.0, 100); !errors.Is(err, ErrAlphaRange) {
		t.Errorf("alpha=1 err = %v", err)
	}
	if _, err := NewParams(2.5, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestSmallestI1EdgeCases(t *testing.T) {
	// Tiny n: i₁ should be 1 when ⌊Cn⌋ ≤ 1 already.
	p, err := NewParams(2.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.I1 != 1 {
		t.Errorf("i₁ for n=1: %d, want 1", p.I1)
	}
}

func TestSparseThresholdMatchesFormula(t *testing.T) {
	for _, n := range []int{100, 1000, 100000} {
		for _, c := range []float64{1, 2, 5} {
			got := SparseThreshold(c, n)
			want := int(math.Ceil(math.Sqrt(2 * c * float64(n) / math.Log2(float64(n)))))
			if got != want {
				t.Errorf("SparseThreshold(%v,%d) = %d, want %d", c, n, got, want)
			}
		}
	}
}

func TestThresholdBalancesParts(t *testing.T) {
	// At the chosen threshold, thin cost τ·log n and fat cost 2cn/τ should be
	// within a factor ~2+ of each other (they cross at the optimum).
	n, c := 1<<16, 2.0
	tau := float64(SparseThreshold(c, n))
	thin := tau * math.Log2(float64(n))
	fat := 2 * c * float64(n) / tau
	if thin < fat/4 || thin > fat*4 {
		t.Errorf("unbalanced parts at threshold: thin=%v fat=%v", thin, fat)
	}
}

func TestPowerLawThresholdMatchesFormula(t *testing.T) {
	p, err := NewParams(2.5, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Pow(p.CPrim*float64(p.N)/math.Log2(float64(p.N)), 1/p.Alpha)))
	if got := p.PowerLawThreshold(); got != want {
		t.Errorf("PowerLawThreshold = %d, want %d", got, want)
	}
	// Theorem 4 requires τ(n) ≥ (n/log n)^(1/α).
	min := math.Pow(float64(p.N)/math.Log2(float64(p.N)), 1/p.Alpha)
	if float64(p.PowerLawThreshold()) < min {
		t.Errorf("threshold %d below Definition 1 floor %.2f", p.PowerLawThreshold(), min)
	}
}

func TestBoundsMonotoneInN(t *testing.T) {
	prevSparse, prevPl := 0.0, 0.0
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		s := SparseLabelBound(2, n)
		p, err := NewParams(2.5, n)
		if err != nil {
			t.Fatal(err)
		}
		pl := p.PowerLawLabelBound()
		if s <= prevSparse || pl <= prevPl {
			t.Errorf("bounds not increasing at n=%d: sparse %v→%v, pl %v→%v", n, prevSparse, s, prevPl, pl)
		}
		prevSparse, prevPl = s, pl
	}
}

func TestPowerLawBeatsSparseAsymptotically(t *testing.T) {
	// For α > 2 the n^(1/α) power-law bound must undercut the √n sparse
	// bound for large n (the paper's headline comparison).
	n := 1 << 22
	p, err := NewParams(2.5, n)
	if err != nil {
		t.Fatal(err)
	}
	if p.PowerLawLabelBound() >= SparseLabelBound(2, n) {
		t.Errorf("power-law bound %.0f >= sparse bound %.0f at n=%d",
			p.PowerLawLabelBound(), SparseLabelBound(2, n), n)
	}
}

func TestLowerBounds(t *testing.T) {
	p, err := NewParams(2.5, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if p.AdjacencyLowerBound() != p.I1/2 {
		t.Errorf("AdjacencyLowerBound = %d, want %d", p.AdjacencyLowerBound(), p.I1/2)
	}
	if got, want := SparseLowerBound(4, 10000), int(math.Floor(math.Sqrt(40000)/2)); got != want {
		t.Errorf("SparseLowerBound = %d, want %d", got, want)
	}
}

func TestDistanceFatThreshold(t *testing.T) {
	p, err := NewParams(2.5, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1, 2, 3, 10} {
		got := p.DistanceFatThreshold(f)
		want := int(math.Ceil(math.Pow(float64(p.N), 1/(p.Alpha-1+float64(f)))))
		if got != want {
			t.Errorf("DistanceFatThreshold(%d) = %d, want %d", f, got, want)
		}
	}
	// Larger f ⇒ lower threshold (more vertices become fat).
	if p.DistanceFatThreshold(2) > p.DistanceFatThreshold(1) {
		t.Error("threshold should be non-increasing in f")
	}
	if p.DistanceFatThreshold(0) != p.DistanceFatThreshold(1) {
		t.Error("f<1 should clamp to f=1")
	}
}

func TestExpectedHistogram(t *testing.T) {
	p, err := NewParams(2.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h := p.ExpectedHistogram(5)
	for k := 1; k <= 5; k++ {
		want := int(math.Floor(p.C * 1000 / math.Pow(float64(k), 2)))
		if h[k] != want {
			t.Errorf("h[%d] = %d, want %d", k, h[k], want)
		}
	}
	if h[0] != 0 {
		t.Errorf("h[0] = %d, want 0", h[0])
	}
}

// Property: Params constants satisfy the paper's defining inequalities for
// arbitrary α ∈ (2, 3.5] and n.
func TestQuickParamsInvariants(t *testing.T) {
	f := func(aRaw, nRaw uint16) bool {
		alpha := 2.0 + 1.5*float64(aRaw)/65535.0 + 1e-6
		n := int(nRaw)%100000 + 10
		p, err := NewParams(alpha, n)
		if err != nil {
			return false
		}
		// Definition of i₁.
		if math.Floor(p.C*float64(n)/math.Pow(float64(p.I1), alpha)) > 1 {
			return false
		}
		// C' inequality from Section 3.
		base := p.C/(alpha-1) + float64(p.I1)/math.Pow(float64(n), 1/alpha) + 5
		return p.CPrim >= math.Pow(base, alpha)+p.C/(alpha-1)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFitAlphaRecoversZetaExponent feeds the estimator samples drawn from
// the exact discrete power law and requires the MLE to recover the true
// exponent within a tight tolerance — the statistical backbone of the
// paper's "fit a power-law curve to the degree distribution" step.
func TestFitAlphaRecoversZetaExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, alpha := range []float64{2.2, 2.5, 3.0} {
		z, err := Zeta(alpha)
		if err != nil {
			t.Fatal(err)
		}
		// Inverse-CDF sampling from P(k) = k^{-α}/ζ(α), truncated at 10^6.
		const kmax = 1 << 20
		cdf := make([]float64, 0, 4096)
		sum := 0.0
		for k := 1; k <= kmax && sum < 0.999999; k++ {
			sum += math.Pow(float64(k), -alpha) / z
			cdf = append(cdf, sum)
		}
		const samples = 30000
		degrees := make([]int, samples)
		for i := range degrees {
			u := rng.Float64() * sum
			lo, hi := 0, len(cdf)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			degrees[i] = lo + 1
		}
		fit, err := FitAlpha(degrees)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.12 {
			t.Errorf("alpha=%v: fitted %.3f (xmin=%d, ks=%.4f)", alpha, fit.Alpha, fit.Xmin, fit.KS)
		}
	}
}

func TestFitAlphaNoData(t *testing.T) {
	if _, err := FitAlpha(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := FitAlphaAt([]int{0, 0}, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("all-zero degrees err = %v", err)
	}
}
