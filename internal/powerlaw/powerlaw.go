// Package powerlaw implements the number-theoretic and statistical machinery
// behind the paper's power-law graph families: the Riemann/Hurwitz zeta
// functions, the constants C = 1/ζ(α), i₁ and C' from Section 3, the
// degree thresholds of Theorems 3 and 4, membership verifiers for the P_h
// and P_l families, and a discrete maximum-likelihood estimator for the
// power-law exponent α (Clauset–Shalizi–Newman).
package powerlaw

import (
	"errors"
	"fmt"
	"math"
)

// ErrAlphaRange is returned when α is outside the supported domain (α > 1).
var ErrAlphaRange = errors.New("powerlaw: alpha must be > 1")

// Zeta returns the Riemann zeta function ζ(α) for α > 1, computed by direct
// summation with an Euler–Maclaurin tail correction. Absolute error is far
// below 1e-10 across the α range used in this repository (α ∈ (1, 10]).
func Zeta(alpha float64) (float64, error) {
	return HurwitzZeta(alpha, 1)
}

// HurwitzZeta returns ζ(α, q) = Σ_{k≥0} (q+k)^{-α} for α > 1, q >= 1.
func HurwitzZeta(alpha, q float64) (float64, error) {
	if alpha <= 1 {
		return 0, fmt.Errorf("%w: got %v", ErrAlphaRange, alpha)
	}
	if q < 1 {
		return 0, fmt.Errorf("powerlaw: hurwitz q must be >= 1, got %v", q)
	}
	const cutoff = 1 << 11
	var sum float64
	for k := 0; k < cutoff; k++ {
		sum += math.Pow(q+float64(k), -alpha)
	}
	// Euler–Maclaurin tail starting at N = q + cutoff:
	// ∫_N^∞ x^{-α} dx + N^{-α}/2 + α N^{-α-1}/12 - α(α+1)(α+2) N^{-α-3}/720
	n := q + cutoff
	sum += math.Pow(n, 1-alpha)/(alpha-1) + math.Pow(n, -alpha)/2
	sum += alpha * math.Pow(n, -alpha-1) / 12
	sum -= alpha * (alpha + 1) * (alpha + 2) * math.Pow(n, -alpha-3) / 720
	return sum, nil
}

// Params bundles the constants of Section 3 for a given α and n.
type Params struct {
	Alpha float64 // power-law exponent, α > 1
	N     int     // number of vertices
	C     float64 // normalisation constant 1/ζ(α)
	I1    int     // smallest integer with ⌊C·n/i₁^α⌋ ≤ 1; i₁ = Θ(n^(1/α))
	CPrim float64 // the constant C' from Section 3 (tail bound of P_h)
}

// NewParams computes the paper's constants for an n-vertex power-law graph
// with exponent α.
func NewParams(alpha float64, n int) (Params, error) {
	if alpha <= 1 {
		return Params{}, fmt.Errorf("%w: got %v", ErrAlphaRange, alpha)
	}
	if n < 1 {
		return Params{}, fmt.Errorf("powerlaw: n must be >= 1, got %d", n)
	}
	z, err := Zeta(alpha)
	if err != nil {
		return Params{}, err
	}
	c := 1 / z
	i1 := smallestI1(c, alpha, n)
	// C' ≥ (C/(α-1) + i₁/n^(1/α) + 5)^α + C/(α-1); we take equality.
	nRoot := math.Pow(float64(n), 1/alpha)
	base := c/(alpha-1) + float64(i1)/nRoot + 5
	cPrim := math.Pow(base, alpha) + c/(alpha-1)
	return Params{Alpha: alpha, N: n, C: c, I1: i1, CPrim: cPrim}, nil
}

// smallestI1 returns the smallest positive integer i with ⌊c·n/i^α⌋ ≤ 1.
func smallestI1(c, alpha float64, n int) int {
	// ⌊c·n/i^α⌋ ≤ 1  ⇔  c·n/i^α < 2  ⇔  i > (c·n/2)^(1/α).
	// Start from the analytic estimate and adjust to be exact.
	i := int(math.Pow(c*float64(n)/2, 1/alpha))
	if i < 1 {
		i = 1
	}
	for i > 1 && math.Floor(c*float64(n)/math.Pow(float64(i-1), alpha)) <= 1 {
		i--
	}
	for math.Floor(c*float64(n)/math.Pow(float64(i), alpha)) > 1 {
		i++
	}
	return i
}

// ExpectedHistogram returns the ideal P_l degree histogram sizes
// ⌊C·n/k^α⌋ for k = 1..kmax (index 0 unused, set to 0).
func (p Params) ExpectedHistogram(kmax int) []int {
	h := make([]int, kmax+1)
	for k := 1; k <= kmax; k++ {
		h[k] = int(math.Floor(p.C * float64(p.N) / math.Pow(float64(k), p.Alpha)))
	}
	return h
}

// Log2 returns log₂(n) as used in the paper's label-size formulas, with
// Log2(1) = 1 to keep widths positive on degenerate inputs.
func Log2(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// SparseThreshold returns the degree threshold τ(n) = ⌈√(2cn / log n)⌉ of
// Theorem 3 for c-sparse graphs.
func SparseThreshold(c float64, n int) int {
	if n < 2 {
		return 1
	}
	x := math.Sqrt(2 * c * float64(n) / Log2(n))
	t := int(math.Ceil(x))
	if t < 1 {
		t = 1
	}
	return t
}

// SparseLabelBound returns Theorem 3's guaranteed maximum label size in bits
// for c-sparse n-vertex graphs: √(2cn·log n) + 2·log n + 1.
func SparseLabelBound(c float64, n int) float64 {
	return math.Sqrt(2*c*float64(n)*Log2(n)) + 2*Log2(n) + 1
}

// PowerLawThreshold returns the degree threshold
// τ(n) = ⌈(C'·n / log n)^(1/α)⌉ of Theorem 4.
func (p Params) PowerLawThreshold() int {
	x := math.Pow(p.CPrim*float64(p.N)/Log2(p.N), 1/p.Alpha)
	t := int(math.Ceil(x))
	if t < 1 {
		t = 1
	}
	return t
}

// PowerLawLabelBound returns Theorem 4's guaranteed maximum label size in
// bits: (C'n)^(1/α)·(log n)^(1-1/α) + 2·log n + 1.
func (p Params) PowerLawLabelBound() float64 {
	n := float64(p.N)
	return math.Pow(p.CPrim*n, 1/p.Alpha)*math.Pow(Log2(p.N), 1-1/p.Alpha) + 2*Log2(p.N) + 1
}

// AdjacencyLowerBound returns the paper's Ω(n^(1/α)) lower bound witness
// value ⌊i₁/2⌋: any adjacency labeling scheme for P_l must assign labels of
// at least this many bits to some vertex of some n-vertex member (Thm 6).
func (p Params) AdjacencyLowerBound() int {
	return p.I1 / 2
}

// SparseLowerBound returns Proposition 4's lower bound ⌊√(cn)/2⌋ for
// c-sparse graphs.
func SparseLowerBound(c float64, n int) int {
	return int(math.Floor(math.Sqrt(c*float64(n)) / 2))
}

// DistanceFatThreshold returns the fat-degree threshold n^(1/(α-1+f)) used
// by the f(n)-distance labeling scheme of Lemma 7.
func (p Params) DistanceFatThreshold(f int) int {
	if f < 1 {
		f = 1
	}
	x := math.Pow(float64(p.N), 1/(p.Alpha-1+float64(f)))
	t := int(math.Ceil(x))
	if t < 1 {
		t = 1
	}
	return t
}
