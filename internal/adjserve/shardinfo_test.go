package adjserve

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// shardEngines labels a power-law graph, splits the arena into count shards,
// and returns the full engine plus the per-shard engines (shard maps set).
func shardEngines(t testing.TB, n, count int, fn core.ShardFn, seed int64) (*core.QueryEngine, []*core.QueryEngine) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewPowerLawScheme(2.5)
	s.SetLayout(core.LayoutDegree)
	lab, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		t.Fatal("pipeline labeling is not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	full, err := core.NewQueryEngineFromPermutedArena(slab, bitLens, order)
	if err != nil {
		t.Fatal(err)
	}
	arenas, err := core.ShardLabelArenas(slab, bitLens, order, count, fn)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.QueryEngine, count)
	for i, a := range arenas {
		e, err := core.NewQueryEngineFromPermutedArena(a.Slab, a.BitLens, order)
		if err != nil {
			t.Fatalf("shard %d engine: %v", i, err)
		}
		if err := e.SetShard(core.ShardMap{Count: count, Index: i, Fn: fn}); err != nil {
			t.Fatalf("shard %d SetShard: %v", i, err)
		}
		engines[i] = e
	}
	return full, engines
}

// TestShardInfoUnsharded: a plain server answers the handshake with the
// trivial 1-shard map and its engine's fat bitmap, so a router can front it.
func TestShardInfoUnsharded(t *testing.T) {
	eng := testEngine(t, 300, 5)
	addr, _, _ := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	si, err := c.ShardInfo()
	if err != nil {
		t.Fatal(err)
	}
	if si.N != eng.N() {
		t.Fatalf("shard-info n = %d, engine has %d", si.N, eng.N())
	}
	if want := (core.ShardMap{Count: 1, Index: 0, Fn: core.ShardRange}); si.Map != want {
		t.Fatalf("unsharded shard map %+v, want %+v", si.Map, want)
	}
	for v := 0; v < eng.N(); v++ {
		if si.Fat(v) != eng.Fat(v) {
			t.Fatalf("fat bit of vertex %d = %v, engine says %v", v, si.Fat(v), eng.Fat(v))
		}
	}
}

// TestShardInfoSharded: each shard server reports its own index under the
// shared count/fn, and all report byte-identical fat bitmaps (fat labels are
// replicated, so every shard knows the full fat set).
func TestShardInfoSharded(t *testing.T) {
	full, engines := shardEngines(t, 300, 3, core.ShardHash, 5)
	var first []byte
	for i, e := range engines {
		addr, _, _ := startServer(t, e, 0)
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		si, err := c.ShardInfo()
		c.Close()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if want := (core.ShardMap{Count: 3, Index: i, Fn: core.ShardHash}); si.Map != want {
			t.Fatalf("shard %d map %+v, want %+v", i, si.Map, want)
		}
		if si.N != full.N() {
			t.Fatalf("shard %d n = %d, want %d", i, si.N, full.N())
		}
		for v := 0; v < full.N(); v++ {
			if si.Fat(v) != full.Fat(v) {
				t.Fatalf("shard %d fat bit of %d = %v, full engine says %v", i, v, si.Fat(v), full.Fat(v))
			}
		}
		if i == 0 {
			first = append([]byte(nil), si.FatBits...)
		} else if string(first) != string(si.FatBits) {
			t.Fatalf("shard %d fat bitmap differs from shard 0", i)
		}
	}
}

// TestClientPending tracks the pipelining depth across an unanswered frame.
func TestClientPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c) // swallow frames, never answer
		c.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending() = %d before any call", got)
	}
	done := make(chan struct{})
	go func() {
		c.Adjacent(0, 1) // blocks until Close fails it
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Pending() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("Pending() never reached 1 (now %d)", c.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	<-done
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after Close", got)
	}
}

// TestAdjacentManyZeroAlloc asserts the pooled steady state of the client
// batch path: with a warm connection, recycled calls, and an out slice of
// sufficient capacity, AdjacentMany performs zero heap allocations per batch
// (the server shares the process, so its frame loop is covered too).
func TestAdjacentManyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	eng := testEngine(t, 400, 3)
	addr, _, _ := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pairs := randomPairs(eng.N(), 512, 7)
	out := make([]bool, 0, len(pairs))
	// Warm the connection, the pools, and both sides' I/O buffers.
	for i := 0; i < 8; i++ {
		if _, err := c.AdjacentMany(pairs, out[:0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.AdjacentMany(pairs, out[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AdjacentMany allocates %.1f times per batch, want 0", allocs)
	}
}
