package adjserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Redial policy defaults. A lost connection is redialed transparently, but
// not forever: attempts are capped and spaced by exponential backoff, so a
// dead server surfaces as an error carrying the last dial failure instead of
// an infinitely retrying call.
const (
	// DefaultMaxDialAttempts is the consecutive dial-attempt cap per
	// reconnect when Client.MaxDialAttempts is unset.
	DefaultMaxDialAttempts = 4
	// DefaultRedialBackoff is the initial inter-attempt backoff when
	// Client.RedialBackoff is unset; it doubles per failure up to
	// maxRedialBackoff.
	DefaultRedialBackoff = 25 * time.Millisecond
	maxRedialBackoff     = 1 * time.Second
)

// Client is a pipelining client for one adjacency server. A batch call
// splits its pairs into frames of at most MaxBatch, writes them all before
// reading any response, and lets the server's in-order answering match
// responses back up — so one TCP round trip covers an arbitrarily large
// batch. Calls are safe for concurrent goroutines, which share (and
// pipeline over) a single connection; if the connection dies, the next call
// transparently redials — bounded by MaxDialAttempts with exponential
// backoff, so a dead server surfaces as the last dial error rather than a
// silent retry loop.
type Client struct {
	// MaxBatch caps pairs per request frame (<= 0 selects DefaultMaxBatch).
	// It must not exceed the server's limit or batches above that limit are
	// rejected remotely.
	MaxBatch int

	// MaxDialAttempts caps consecutive dial attempts per reconnect (<= 0
	// selects DefaultMaxDialAttempts). After that many consecutive failures
	// the triggering call returns the last dial error.
	MaxDialAttempts int

	// RedialBackoff is the initial delay between dial attempts (<= 0
	// selects DefaultRedialBackoff), doubling per consecutive failure up to
	// one second with ±20% jitter per sleep. The backoff sleeps while holding
	// the client's connection lock, so concurrent calls wait out the same
	// reconnect rather than piling up their own dial storms; the jitter keeps
	// a fleet of such clients (plroute holds one per shard) from
	// synchronizing their reconnect storms after a shared server restart.
	RedialBackoff time.Duration

	// DialFunc, when non-nil, replaces net.Dial("tcp", addr) for every
	// connection this client establishes. It is the hook chaos harnesses use
	// to interpose throttled or fault-injecting connections (plload's
	// slow-client mode) without the client growing transport knowledge. Set
	// before the first call; never mutated afterwards.
	DialFunc func(addr string) (net.Conn, error)

	addr string
	mu   sync.Mutex // guards conn lifecycle and interleaves frame writes
	cc   *clientConn
	req  []byte // pooled request-encoding buffer, guarded by mu

	everConnected bool // a redial (vs first dial) is a reconnect, for metrics
	metrics       ClientMetrics

	// caps caches the server's advertised capability bits (guarded by mu);
	// capsKnown distinguishes "no capabilities" from "never asked". Fetched
	// lazily by Caps with one info round trip and kept for the client's
	// lifetime — capabilities describe the server build, not the connection.
	caps      uint64
	capsKnown bool

	// sleep and jitterFloat are the backoff clock and jitter source,
	// swappable by tests (fake clock, deterministic rand); nil selects
	// time.Sleep and a lazily seeded rand.Float64. Guarded by mu like the
	// backoff itself.
	sleep       func(time.Duration)
	jitterFloat func() float64
	jitterRNG   *rand.Rand
}

// backoffJitterFrac is the redial jitter amplitude: each backoff sleep is
// scaled by a factor drawn uniformly from [1-frac, 1+frac].
const backoffJitterFrac = 0.2

// jitterBackoff scales d by the client's jitter source. Exposed as a method
// so the fake-clock test exercises exactly the production path.
func (c *Client) jitterBackoff(d time.Duration) time.Duration {
	if c.jitterFloat == nil {
		if c.jitterRNG == nil {
			c.jitterRNG = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		c.jitterFloat = c.jitterRNG.Float64
	}
	f := 1 - backoffJitterFrac + 2*backoffJitterFrac*c.jitterFloat()
	return time.Duration(float64(d) * f)
}

// NewClient returns a client that dials lazily: the first call establishes
// the connection (with the same bounded-retry policy as any redial). Useful
// when the server may come up after the client, or to configure the redial
// knobs before any network traffic.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Dial connects to an adjacency server eagerly, returning the first
// connection error (after the client's bounded retry policy) instead of
// deferring it to the first call.
func Dial(addr string) (*Client, error) {
	c := NewClient(addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Metrics returns the client's instrumentation, for registering on an
// obs.Registry (c.Metrics().Register(reg)) or reading in tests.
func (c *Client) Metrics() *ClientMetrics { return &c.metrics }

// Close tears down the connection. In-flight calls fail with ErrClosed;
// subsequent calls redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil {
		c.cc.nc.Close()
		c.cc = nil
	}
	return nil
}

// call is one outstanding request: the response fills dest (query), dists
// (dist), infoN (info) or shard (shard-info), and done delivers the per-call
// verdict exactly once. tr, when non-nil, receives the response's trace
// block (the reader goroutine writes it strictly before the done send, so
// the waiting caller reads it race-free); caps, when non-nil, receives the
// info response's trailing capability bits.
type call struct {
	dest  []bool
	dists []int
	infoN *int
	shard *ShardInfo
	tr    *obs.SpanTally
	caps  *uint64
	done  chan error
}

// callPool recycles calls (and their verdict channels) across batches, so the
// steady-state encode path of AdjacentMany performs zero heap allocations.
var callPool = sync.Pool{New: func() any { return &call{done: make(chan error, 1)} }}

func getCall() *call { return callPool.Get().(*call) }

// putCall returns a call to the pool. Callers normally hand back a call whose
// verdict they consumed; the non-blocking drain covers the one exception — a
// send-side failure where fail() already buffered the verdict nobody reads —
// so a recycled call can never surface a stale verdict.
func putCall(ca *call) {
	select {
	case <-ca.done:
	default:
	}
	ca.dest = nil
	ca.dists = nil
	ca.infoN = nil
	ca.shard = nil
	ca.tr = nil
	ca.caps = nil
	callPool.Put(ca)
}

// callsPool recycles the per-batch slice of outstanding calls.
var callsPool = sync.Pool{New: func() any { return new(callList) }}

type callList struct{ s []*call }

// clientConn is one live connection plus its FIFO of outstanding calls. The
// reader goroutine owns the receive side; writers enqueue under the queue
// lock, so a call is either matched by the reader or failed at shutdown —
// never lost.
type clientConn struct {
	nc      net.Conn
	bw      *bufio.Writer
	metrics *ClientMetrics // owning client's, for in-flight accounting
	// hdr is the frame-header encode scratch, shared by all frame writers
	// under the client's mu. A function-local array would be re-heap-allocated
	// per frame (bufio may hand large writes straight to the net.Conn
	// interface, so the slice argument escapes).
	hdr [frameHeaderLen]byte

	qmu sync.Mutex
	// pending[head:] is the FIFO of outstanding calls. Popping advances head
	// instead of re-slicing, and the slice resets to its start whenever the
	// queue drains, so the backing array is reused frame after frame — the
	// enqueue path allocates only while the pipelining depth is still growing.
	pending  []*call
	head     int
	shutdown bool
	err      error
}

func (cc *clientConn) enqueue(ca *call) error {
	cc.qmu.Lock()
	defer cc.qmu.Unlock()
	if cc.shutdown {
		return cc.err
	}
	cc.pending = append(cc.pending, ca)
	cc.metrics.InFlight.Add(1)
	return nil
}

func (cc *clientConn) pop() *call {
	cc.qmu.Lock()
	defer cc.qmu.Unlock()
	if cc.head == len(cc.pending) {
		return nil
	}
	ca := cc.pending[cc.head]
	cc.pending[cc.head] = nil
	cc.head++
	if cc.head == len(cc.pending) {
		cc.pending = cc.pending[:0]
		cc.head = 0
	}
	cc.metrics.InFlight.Add(-1)
	return ca
}

// fail marks the connection dead and delivers err to every outstanding call.
func (cc *clientConn) fail(err error) {
	cc.qmu.Lock()
	if cc.shutdown {
		cc.qmu.Unlock()
		return
	}
	cc.shutdown = true
	cc.err = err
	pending := cc.pending[cc.head:]
	cc.pending = nil
	cc.head = 0
	cc.metrics.InFlight.Add(-int64(len(pending)))
	cc.qmu.Unlock()
	cc.nc.Close()
	for _, ca := range pending {
		ca.done <- err
	}
}

// ensureConn returns the live connection, dialing a fresh one if the
// previous connection has shut down. A reconnect tries at most
// MaxDialAttempts dials with exponential backoff between them and then
// surfaces the last dial error — transparent redial is bounded, never an
// infinite silent retry. Callers hold c.mu, so one caller performs the
// reconnect while the rest queue behind it.
func (c *Client) ensureConn() (*clientConn, error) {
	if c.cc != nil {
		c.cc.qmu.Lock()
		dead := c.cc.shutdown
		c.cc.qmu.Unlock()
		if !dead {
			return c.cc, nil
		}
		c.cc = nil
	}
	attempts := c.MaxDialAttempts
	if attempts <= 0 {
		attempts = DefaultMaxDialAttempts
	}
	backoff := c.RedialBackoff
	if backoff <= 0 {
		backoff = DefaultRedialBackoff
	}
	dial := c.DialFunc
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			sleep(c.jitterBackoff(backoff))
			if backoff *= 2; backoff > maxRedialBackoff {
				backoff = maxRedialBackoff
			}
		}
		c.metrics.DialAttempts.Inc()
		nc, err := dial(c.addr)
		if err != nil {
			c.metrics.DialFailures.Inc()
			lastErr = err
			continue
		}
		if c.everConnected {
			c.metrics.Redials.Inc()
		}
		c.everConnected = true
		cc := &clientConn{nc: nc, bw: bufio.NewWriterSize(nc, 64<<10), metrics: &c.metrics}
		go cc.readLoop()
		c.cc = cc
		return cc, nil
	}
	return nil, fmt.Errorf("adjserve: dial %s: %d consecutive failures, last: %w", c.addr, attempts, lastErr)
}

// readLoop receives response frames and delivers them to calls in FIFO
// order. Any framing violation or I/O error kills the connection and fails
// everything outstanding.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, 64<<10)
	var hdr [frameHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:]))
		if plen > maxFramePayload {
			cc.fail(fmt.Errorf("%w: response frame of %d bytes", ErrClosed, plen))
			return
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		cc.metrics.BytesIn.Add(int64(frameHeaderLen + plen))
		if plen > 0 && payload[0] == statusShed {
			cc.metrics.ShedFrames.Inc()
		}
		ca := cc.pop()
		if ca == nil {
			cc.fail(fmt.Errorf("%w: unsolicited response frame", ErrClosed))
			return
		}
		if err := deliver(ca, payload); err != nil {
			ca.done <- err
			cc.fail(err)
			return
		}
	}
}

// deliver parses one response payload into its call. A non-nil return is a
// protocol-level corruption that must kill the connection; per-call server
// errors are delivered through the call and return nil.
func deliver(ca *call, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty response", ErrClosed)
	}
	status, body := payload[0], payload[1:]
	// A traced OK response echoes opTraceFlag on the status byte and appends
	// a trace block after the normal body; strip the flag here and hand the
	// block to the per-shape parsers below (old servers never set the bit).
	traced := status&opTraceFlag != 0
	status &^= opTraceFlag
	switch status {
	case statusShed:
		// The server refused the request under load; the connection stays up
		// (unless the shed answered an admission rejection, in which case the
		// server closes it right after and the next call redials). The single
		// package-level ErrShed keeps this path allocation-free.
		ca.done <- ErrShed
		return nil
	case statusErr:
		msgLen, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body)-n) < msgLen {
			return fmt.Errorf("%w: truncated error frame", ErrClosed)
		}
		ca.done <- &RemoteError{Msg: string(body[n : n+int(msgLen)])}
		return nil
	case statusOK:
		if ca.infoN != nil {
			v, n := binary.Uvarint(body)
			if n <= 0 {
				return fmt.Errorf("%w: truncated info response", ErrClosed)
			}
			*ca.infoN = int(v)
			// Optional trailing capability uvarint: absent on servers that
			// predate capabilities (which means "none"); any bytes beyond it
			// belong to future extensions and are ignored the same way.
			if ca.caps != nil {
				*ca.caps = 0
				if rest := body[n:]; len(rest) > 0 {
					if cv, k := binary.Uvarint(rest); k > 0 {
						*ca.caps = cv
					}
				}
			}
			ca.done <- nil
			return nil
		}
		if ca.shard != nil {
			if err := parseShardInfo(ca.shard, body); err != nil {
				return err
			}
			ca.done <- nil
			return nil
		}
		if ca.dists != nil {
			count, n := binary.Uvarint(body)
			if n <= 0 || int(count) != len(ca.dists) {
				return fmt.Errorf("%w: response for %d pairs, asked %d", ErrClosed, count, len(ca.dists))
			}
			body = body[n:]
			for i := range ca.dists {
				d, k := binary.Uvarint(body)
				if k <= 0 {
					return fmt.Errorf("%w: truncated distance %d of %d", ErrClosed, i, count)
				}
				body = body[k:]
				if d > distBeyondWire {
					return fmt.Errorf("%w: distance %d out of wire range", ErrClosed, d)
				}
				if d == distBeyondWire {
					ca.dists[i] = graph.Unreachable
				} else {
					ca.dists[i] = int(d)
				}
			}
			if traced {
				if err := deliverTrace(ca, body); err != nil {
					return err
				}
			} else if len(body) != 0 {
				return fmt.Errorf("%w: %d trailing bytes after %d distances", ErrClosed, len(body), count)
			}
			ca.done <- nil
			return nil
		}
		count, n := binary.Uvarint(body)
		if n <= 0 || int(count) != len(ca.dest) {
			return fmt.Errorf("%w: response for %d pairs, asked %d", ErrClosed, count, len(ca.dest))
		}
		bits := body[n:]
		need := (len(ca.dest) + 7) / 8
		if traced {
			if len(bits) < need {
				return fmt.Errorf("%w: %d answer bytes for %d pairs", ErrClosed, len(bits), len(ca.dest))
			}
			if err := deliverTrace(ca, bits[need:]); err != nil {
				return err
			}
			bits = bits[:need]
		} else if len(bits) != need {
			return fmt.Errorf("%w: %d answer bytes for %d pairs", ErrClosed, len(bits), len(ca.dest))
		}
		for i := range ca.dest {
			ca.dest[i] = bits[i/8]&(1<<(7-uint(i)%8)) != 0
		}
		ca.done <- nil
		return nil
	default:
		return fmt.Errorf("%w: unknown response status %d", ErrClosed, status)
	}
}

// deliverTrace merges a response's appended trace block into the call's
// tally, relabeling the peer's own stages to HopPeer (shard-labeled stages a
// router gathered pass through). A call that didn't ask for tracing still
// validates and discards the block, keeping the framing check total.
func deliverTrace(ca *call, block []byte) error {
	if ca.tr == nil {
		var discard obs.SpanTally
		return parseTraceBlock(block, &discard, obs.HopPeer)
	}
	return parseTraceBlock(block, ca.tr, obs.HopPeer)
}

// sendFrame enqueues ca and writes one frame. Callers hold c.mu, so frames
// from concurrent callers interleave at whole-frame granularity, matching
// the FIFO. The write is buffered; the caller flushes after its last frame.
func (c *Client) sendFrame(cc *clientConn, payload []byte, ca *call) error {
	if err := cc.enqueue(ca); err != nil {
		return err
	}
	c.metrics.FramesSent.Inc()
	c.metrics.BytesOut.Add(int64(frameHeaderLen + len(payload)))
	cc.hdr = frameHeader(len(payload))
	if _, err := cc.bw.Write(cc.hdr[:]); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return err
	}
	if _, err := cc.bw.Write(payload); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return err
	}
	return nil
}

// AdjacentMany answers a batch of queries remotely, appending one result per
// pair to out (same contract as core.QueryEngine.AdjacentMany). The batch is
// split into pipelined frames of at most MaxBatch pairs; answers land in
// pair order. On any error the appended results must not be trusted.
func (c *Client) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	start := len(out)
	if need := start + len(pairs); cap(out) >= need {
		out = out[:need]
	} else {
		grown := make([]bool, need)
		copy(grown, out)
		out = grown
	}
	if len(pairs) == 0 {
		return out, nil
	}
	dest := out[start:]
	maxBatch := c.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}

	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return out[:start], err
	}
	cl := callsPool.Get().(*callList)
	calls := cl.s[:0]
	for off := 0; off < len(pairs); off += maxBatch {
		chunk := pairs[off:min(off+maxBatch, len(pairs))]
		c.req = appendQueryReq(c.req[:0], chunk)
		ca := getCall()
		ca.dest = dest[off : off+len(chunk)]
		if err := c.sendFrame(cc, c.req, ca); err != nil {
			c.mu.Unlock()
			putCall(ca)
			waitCalls(calls)
			putCalls(cl, calls)
			return out[:start], err
		}
		calls = append(calls, ca)
	}
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	c.mu.Unlock()

	for _, ca := range calls {
		if cerr := <-ca.done; cerr != nil && err == nil {
			err = cerr
		}
	}
	putCalls(cl, calls)
	if err != nil {
		return out[:start], err
	}
	return out, nil
}

// waitCalls drains calls that were already enqueued when a later frame
// failed; their verdicts (delivered by the reader or by fail) are discarded.
func waitCalls(calls []*call) {
	for _, ca := range calls {
		<-ca.done
	}
}

// putCalls recycles a batch's calls (verdicts already consumed) and its list.
func putCalls(cl *callList, calls []*call) {
	for _, ca := range calls {
		putCall(ca)
	}
	cl.s = calls[:0]
	callsPool.Put(cl)
}

// Adjacent answers a single query remotely. For throughput, prefer
// AdjacentMany — one frame per call is the naive baseline E23 measures
// against.
func (c *Client) Adjacent(u, v int) (bool, error) {
	var res [1]bool
	if _, err := c.AdjacentMany([][2]int{{u, v}}, res[:0]); err != nil {
		return false, err
	}
	return res[0], nil
}

// DistMany answers a batch of distance queries remotely, appending one hop
// distance per pair to out (same contract as core.DistEngine.DistMany:
// graph.Unreachable for unreachable or beyond-bound pairs). Batches split,
// pipeline and recover exactly as AdjacentMany's do. Distances of 255 or more
// are indistinguishable from unreachable on the wire; see the package doc.
func (c *Client) DistMany(pairs [][2]int, out []int) ([]int, error) {
	start := len(out)
	if need := start + len(pairs); cap(out) >= need {
		out = out[:need]
	} else {
		grown := make([]int, need)
		copy(grown, out)
		out = grown
	}
	if len(pairs) == 0 {
		return out, nil
	}
	dest := out[start:]
	maxBatch := c.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}

	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return out[:start], err
	}
	cl := callsPool.Get().(*callList)
	calls := cl.s[:0]
	for off := 0; off < len(pairs); off += maxBatch {
		chunk := pairs[off:min(off+maxBatch, len(pairs))]
		c.req = appendPairsReq(c.req[:0], opDist, chunk)
		ca := getCall()
		ca.dists = dest[off : off+len(chunk)]
		if err := c.sendFrame(cc, c.req, ca); err != nil {
			c.mu.Unlock()
			putCall(ca)
			waitCalls(calls)
			putCalls(cl, calls)
			return out[:start], err
		}
		calls = append(calls, ca)
	}
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	c.mu.Unlock()

	for _, ca := range calls {
		if cerr := <-ca.done; cerr != nil && err == nil {
			err = cerr
		}
	}
	putCalls(cl, calls)
	if err != nil {
		return out[:start], err
	}
	return out, nil
}

// Dist answers a single distance query remotely (graph.Unreachable for
// unreachable or beyond-bound pairs). For throughput, prefer DistMany.
func (c *Client) Dist(u, v int) (int, error) {
	var res [1]int
	if _, err := c.DistMany([][2]int{{u, v}}, res[:0]); err != nil {
		return 0, err
	}
	return res[0], nil
}

// Caps returns the capability bits the server advertises in its info
// response (capTrace and future extensions), performing one info round trip
// on first use and caching the answer for the client's lifetime. Servers
// that predate capabilities advertise none, so a zero return against a
// reachable server means "speak the base protocol only".
func (c *Client) Caps() (uint64, error) {
	c.mu.Lock()
	if c.capsKnown {
		caps := c.caps
		c.mu.Unlock()
		return caps, nil
	}
	c.mu.Unlock()
	var n int
	var caps uint64
	ca := getCall()
	ca.infoN = &n
	ca.caps = &caps
	if err := c.sendSmall(opInfo, ca); err != nil {
		putCall(ca)
		return 0, err
	}
	err := <-ca.done
	putCall(ca)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.caps, c.capsKnown = caps, true
	c.mu.Unlock()
	return caps, nil
}

// supportsTrace reports whether the server advertises the trace capability,
// fetching capabilities on first use. A probe error means "no" — the traced
// call that asked will surface the real error on its own frames.
func (c *Client) supportsTrace() bool {
	caps, err := c.Caps()
	return err == nil && caps&capTrace != 0
}

// AdjacentManyTrace is AdjacentMany with end-to-end tracing. When the server
// advertises the trace capability, every request frame carries t.ID
// (generated if zero), each hop's stage report is merged into t — the direct
// peer's own stages relabeled HopPeer, shard-labeled stages from a router
// passing through — and the client appends its own encode and flush stages
// plus the residual net stage (wall time minus everything else attributed),
// so on success the HopSelf+HopPeer stages in t sum exactly to the call's
// wall time. Against a server without the capability the batch is sent
// untraced and t records the client-side stages only.
func (c *Client) AdjacentManyTrace(pairs [][2]int, out []bool, t *obs.SpanTally) ([]bool, error) {
	if t == nil {
		return c.AdjacentMany(pairs, out)
	}
	return c.manyTrace(pairs, out, t)
}

// DistManyTrace is DistMany with end-to-end tracing; same contract as
// AdjacentManyTrace.
func (c *Client) DistManyTrace(pairs [][2]int, out []int, t *obs.SpanTally) ([]int, error) {
	if t == nil {
		return c.DistMany(pairs, out)
	}
	return c.manyTraceDist(pairs, out, t)
}

// manyTrace runs one traced adjacency batch: AdjacentMany's chunking,
// pipelining and failure handling, plus per-call stage measurement around
// the encode loop and the flush.
func (c *Client) manyTrace(pairs [][2]int, boolOut []bool, t *obs.SpanTally) ([]bool, error) {
	if t.ID == 0 {
		t.ID = obs.NewTraceID()
	}
	wire := c.supportsTrace()
	start := time.Now()
	peerBefore := t.SumHop(obs.HopPeer)

	outStart := len(boolOut)
	if need := outStart + len(pairs); cap(boolOut) >= need {
		boolOut = boolOut[:need]
	} else {
		grown := make([]bool, need)
		copy(grown, boolOut)
		boolOut = grown
	}
	if len(pairs) == 0 {
		return boolOut, nil
	}
	dest := boolOut[outStart:]
	maxBatch := c.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}

	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return boolOut[:outStart], err
	}
	cl := callsPool.Get().(*callList)
	calls := cl.s[:0]
	var encodeNs int64
	for off := 0; off < len(pairs); off += maxBatch {
		chunk := pairs[off:min(off+maxBatch, len(pairs))]
		encStart := time.Now()
		if wire {
			c.req = appendPairsReqTrace(c.req[:0], opQuery, t.ID, chunk)
		} else {
			c.req = appendQueryReq(c.req[:0], chunk)
		}
		ca := getCall()
		ca.dest = dest[off : off+len(chunk)]
		if wire {
			ca.tr = t
		}
		ferr := c.sendFrame(cc, c.req, ca)
		encodeNs += int64(time.Since(encStart))
		if ferr != nil {
			c.mu.Unlock()
			putCall(ca)
			waitCalls(calls)
			putCalls(cl, calls)
			return boolOut[:outStart], ferr
		}
		calls = append(calls, ca)
	}
	flushStart := time.Now()
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	flushNs := int64(time.Since(flushStart))
	c.mu.Unlock()

	for _, ca := range calls {
		if cerr := <-ca.done; cerr != nil && err == nil {
			err = cerr
		}
	}
	putCalls(cl, calls)
	if err != nil {
		return boolOut[:outStart], err
	}
	c.recordCallStages(t, start, encodeNs, flushNs, peerBefore)
	return boolOut, nil
}

// recordCallStages appends the client-side stages of a completed traced
// call: encode, flush, and the residual net — the call's wall time minus
// encode, flush and the direct peer's self-reported stages. Shard-labeled
// stages nest inside the peer's own upstream stage, so they are excluded
// from the residual; by construction the HopSelf and HopPeer entries then
// sum exactly to the wall time, which is what makes end-to-end attribution
// checkable ("stages cover X% of e2e") rather than approximate.
func (c *Client) recordCallStages(t *obs.SpanTally, start time.Time, encodeNs, flushNs, peerBefore int64) {
	totalNs := int64(time.Since(start))
	t.Add(obs.StageEncode, obs.HopSelf, encodeNs)
	t.Add(obs.StageFlush, obs.HopSelf, flushNs)
	net := totalNs - encodeNs - flushNs - (t.SumHop(obs.HopPeer) - peerBefore)
	if net < 0 {
		// Pipelined chunks can overlap peer stage time with wall time;
		// attribute nothing to the wire rather than a negative duration.
		net = 0
	}
	t.Add(obs.StageNet, obs.HopSelf, net)
}

// manyTraceDist is manyTrace's distance-plane body (separate because the
// answer buffer is []int; the control flow is identical).
func (c *Client) manyTraceDist(pairs [][2]int, out []int, t *obs.SpanTally) ([]int, error) {
	if t.ID == 0 {
		t.ID = obs.NewTraceID()
	}
	wire := c.supportsTrace()
	start := time.Now()
	peerBefore := t.SumHop(obs.HopPeer)

	outStart := len(out)
	if need := outStart + len(pairs); cap(out) >= need {
		out = out[:need]
	} else {
		grown := make([]int, need)
		copy(grown, out)
		out = grown
	}
	if len(pairs) == 0 {
		return out, nil
	}
	dest := out[outStart:]
	maxBatch := c.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}

	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return out[:outStart], err
	}
	cl := callsPool.Get().(*callList)
	calls := cl.s[:0]
	var encodeNs int64
	for off := 0; off < len(pairs); off += maxBatch {
		chunk := pairs[off:min(off+maxBatch, len(pairs))]
		encStart := time.Now()
		if wire {
			c.req = appendPairsReqTrace(c.req[:0], opDist, t.ID, chunk)
		} else {
			c.req = appendPairsReq(c.req[:0], opDist, chunk)
		}
		ca := getCall()
		ca.dists = dest[off : off+len(chunk)]
		if wire {
			ca.tr = t
		}
		ferr := c.sendFrame(cc, c.req, ca)
		encodeNs += int64(time.Since(encStart))
		if ferr != nil {
			c.mu.Unlock()
			putCall(ca)
			waitCalls(calls)
			putCalls(cl, calls)
			return out[:outStart], ferr
		}
		calls = append(calls, ca)
	}
	flushStart := time.Now()
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	flushNs := int64(time.Since(flushStart))
	c.mu.Unlock()

	for _, ca := range calls {
		if cerr := <-ca.done; cerr != nil && err == nil {
			err = cerr
		}
	}
	putCalls(cl, calls)
	if err != nil {
		return out[:outStart], err
	}
	c.recordCallStages(t, start, encodeNs, flushNs, peerBefore)
	return out, nil
}

// Info returns the number of vertices the server's engine answers for.
func (c *Client) Info() (int, error) {
	var n int
	ca := getCall()
	ca.infoN = &n
	if err := c.sendSmall(opInfo, ca); err != nil {
		putCall(ca)
		return 0, err
	}
	err := <-ca.done
	putCall(ca)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// ShardInfo describes the slice of the labeling a server holds, as reported
// by the shard-info handshake: the vertex count, the shard map (the trivial
// 1-shard map for an unsharded server), and the fat-vertex bitmap (bit v
// MSB-first within byte v/8) — everything a router needs to place queries.
type ShardInfo struct {
	N       int
	Map     core.ShardMap
	FatBits []byte
}

// Fat reports whether vertex v is fat on the serving engine.
func (si *ShardInfo) Fat(v int) bool {
	return si.FatBits[v>>3]&(1<<(7-uint(v)&7)) != 0
}

// ShardInfo performs the shard-info handshake.
func (c *Client) ShardInfo() (*ShardInfo, error) {
	si := new(ShardInfo)
	ca := getCall()
	ca.shard = si
	if err := c.sendSmall(opShardInfo, ca); err != nil {
		putCall(ca)
		return nil, err
	}
	err := <-ca.done
	putCall(ca)
	if err != nil {
		return nil, err
	}
	return si, nil
}

// sendSmall writes a one-byte request frame for ca and flushes.
func (c *Client) sendSmall(op byte, ca *call) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc, err := c.ensureConn()
	if err != nil {
		return err
	}
	if err := c.sendFrame(cc, []byte{op}, ca); err != nil {
		return err
	}
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	return nil
}

// parseShardInfo decodes a shard-info response body into si. Errors are
// protocol corruption (they kill the connection); semantic validation of the
// map against sibling shards is the router's job.
func parseShardInfo(si *ShardInfo, body []byte) error {
	n, k := binary.Uvarint(body)
	if k <= 0 {
		return fmt.Errorf("%w: truncated shard-info n", ErrClosed)
	}
	body = body[k:]
	count, k := binary.Uvarint(body)
	if k <= 0 {
		return fmt.Errorf("%w: truncated shard-info count", ErrClosed)
	}
	body = body[k:]
	index, k := binary.Uvarint(body)
	if k <= 0 || len(body) <= k {
		return fmt.Errorf("%w: truncated shard-info index", ErrClosed)
	}
	fnByte := body[k]
	body = body[k+1:]
	fn := core.ShardFn(fnByte)
	if count < 1 || index >= count || !fn.Valid() {
		return fmt.Errorf("%w: shard-info map %d/%d fn %d", ErrClosed, index, count, fnByte)
	}
	if uint64(len(body)) != (n+7)/8 {
		return fmt.Errorf("%w: %d fat-bitmap bytes for %d vertices", ErrClosed, len(body), n)
	}
	si.N = int(n)
	si.Map = core.ShardMap{Count: int(count), Index: int(index), Fn: fn}
	si.FatBits = append(si.FatBits[:0], body...)
	return nil
}

// Pending returns the number of request frames written but not yet answered
// on the live connection — the pipelining depth, for orchestrators (the
// router's per-upstream in-flight gauge) and tests.
func (c *Client) Pending() int {
	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	if cc == nil {
		return 0
	}
	cc.qmu.Lock()
	defer cc.qmu.Unlock()
	return len(cc.pending) - cc.head
}
