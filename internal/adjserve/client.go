package adjserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Redial policy defaults. A lost connection is redialed transparently, but
// not forever: attempts are capped and spaced by exponential backoff, so a
// dead server surfaces as an error carrying the last dial failure instead of
// an infinitely retrying call.
const (
	// DefaultMaxDialAttempts is the consecutive dial-attempt cap per
	// reconnect when Client.MaxDialAttempts is unset.
	DefaultMaxDialAttempts = 4
	// DefaultRedialBackoff is the initial inter-attempt backoff when
	// Client.RedialBackoff is unset; it doubles per failure up to
	// maxRedialBackoff.
	DefaultRedialBackoff = 25 * time.Millisecond
	maxRedialBackoff     = 1 * time.Second
)

// Client is a pipelining client for one adjacency server. A batch call
// splits its pairs into frames of at most MaxBatch, writes them all before
// reading any response, and lets the server's in-order answering match
// responses back up — so one TCP round trip covers an arbitrarily large
// batch. Calls are safe for concurrent goroutines, which share (and
// pipeline over) a single connection; if the connection dies, the next call
// transparently redials — bounded by MaxDialAttempts with exponential
// backoff, so a dead server surfaces as the last dial error rather than a
// silent retry loop.
type Client struct {
	// MaxBatch caps pairs per request frame (<= 0 selects DefaultMaxBatch).
	// It must not exceed the server's limit or batches above that limit are
	// rejected remotely.
	MaxBatch int

	// MaxDialAttempts caps consecutive dial attempts per reconnect (<= 0
	// selects DefaultMaxDialAttempts). After that many consecutive failures
	// the triggering call returns the last dial error.
	MaxDialAttempts int

	// RedialBackoff is the initial delay between dial attempts (<= 0
	// selects DefaultRedialBackoff), doubling per consecutive failure up to
	// one second. The backoff sleeps while holding the client's connection
	// lock, so concurrent calls wait out the same reconnect rather than
	// piling up their own dial storms.
	RedialBackoff time.Duration

	addr string
	mu   sync.Mutex // guards conn lifecycle and interleaves frame writes
	cc   *clientConn
	req  []byte // pooled request-encoding buffer, guarded by mu

	everConnected bool // a redial (vs first dial) is a reconnect, for metrics
	metrics       ClientMetrics
}

// NewClient returns a client that dials lazily: the first call establishes
// the connection (with the same bounded-retry policy as any redial). Useful
// when the server may come up after the client, or to configure the redial
// knobs before any network traffic.
func NewClient(addr string) *Client { return &Client{addr: addr} }

// Dial connects to an adjacency server eagerly, returning the first
// connection error (after the client's bounded retry policy) instead of
// deferring it to the first call.
func Dial(addr string) (*Client, error) {
	c := NewClient(addr)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Metrics returns the client's instrumentation, for registering on an
// obs.Registry (c.Metrics().Register(reg)) or reading in tests.
func (c *Client) Metrics() *ClientMetrics { return &c.metrics }

// Close tears down the connection. In-flight calls fail with ErrClosed;
// subsequent calls redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil {
		c.cc.nc.Close()
		c.cc = nil
	}
	return nil
}

// call is one outstanding request: the response either fills dest (query) or
// infoN (info), and done delivers the per-call verdict exactly once.
type call struct {
	dest  []bool
	infoN *int
	done  chan error
}

// clientConn is one live connection plus its FIFO of outstanding calls. The
// reader goroutine owns the receive side; writers enqueue under the queue
// lock, so a call is either matched by the reader or failed at shutdown —
// never lost.
type clientConn struct {
	nc      net.Conn
	bw      *bufio.Writer
	metrics *ClientMetrics // owning client's, for in-flight accounting

	qmu      sync.Mutex
	pending  []*call
	shutdown bool
	err      error
}

func (cc *clientConn) enqueue(ca *call) error {
	cc.qmu.Lock()
	defer cc.qmu.Unlock()
	if cc.shutdown {
		return cc.err
	}
	cc.pending = append(cc.pending, ca)
	cc.metrics.InFlight.Add(1)
	return nil
}

func (cc *clientConn) pop() *call {
	cc.qmu.Lock()
	defer cc.qmu.Unlock()
	if len(cc.pending) == 0 {
		return nil
	}
	ca := cc.pending[0]
	cc.pending = cc.pending[1:]
	cc.metrics.InFlight.Add(-1)
	return ca
}

// fail marks the connection dead and delivers err to every outstanding call.
func (cc *clientConn) fail(err error) {
	cc.qmu.Lock()
	if cc.shutdown {
		cc.qmu.Unlock()
		return
	}
	cc.shutdown = true
	cc.err = err
	pending := cc.pending
	cc.pending = nil
	cc.metrics.InFlight.Add(-int64(len(pending)))
	cc.qmu.Unlock()
	cc.nc.Close()
	for _, ca := range pending {
		ca.done <- err
	}
}

// ensureConn returns the live connection, dialing a fresh one if the
// previous connection has shut down. A reconnect tries at most
// MaxDialAttempts dials with exponential backoff between them and then
// surfaces the last dial error — transparent redial is bounded, never an
// infinite silent retry. Callers hold c.mu, so one caller performs the
// reconnect while the rest queue behind it.
func (c *Client) ensureConn() (*clientConn, error) {
	if c.cc != nil {
		c.cc.qmu.Lock()
		dead := c.cc.shutdown
		c.cc.qmu.Unlock()
		if !dead {
			return c.cc, nil
		}
		c.cc = nil
	}
	attempts := c.MaxDialAttempts
	if attempts <= 0 {
		attempts = DefaultMaxDialAttempts
	}
	backoff := c.RedialBackoff
	if backoff <= 0 {
		backoff = DefaultRedialBackoff
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxRedialBackoff {
				backoff = maxRedialBackoff
			}
		}
		c.metrics.DialAttempts.Inc()
		nc, err := net.Dial("tcp", c.addr)
		if err != nil {
			c.metrics.DialFailures.Inc()
			lastErr = err
			continue
		}
		if c.everConnected {
			c.metrics.Redials.Inc()
		}
		c.everConnected = true
		cc := &clientConn{nc: nc, bw: bufio.NewWriterSize(nc, 64<<10), metrics: &c.metrics}
		go cc.readLoop()
		c.cc = cc
		return cc, nil
	}
	return nil, fmt.Errorf("adjserve: dial %s: %d consecutive failures, last: %w", c.addr, attempts, lastErr)
}

// readLoop receives response frames and delivers them to calls in FIFO
// order. Any framing violation or I/O error kills the connection and fails
// everything outstanding.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, 64<<10)
	var hdr [frameHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:]))
		if plen > maxFramePayload {
			cc.fail(fmt.Errorf("%w: response frame of %d bytes", ErrClosed, plen))
			return
		}
		if cap(payload) < plen {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		ca := cc.pop()
		if ca == nil {
			cc.fail(fmt.Errorf("%w: unsolicited response frame", ErrClosed))
			return
		}
		if err := deliver(ca, payload); err != nil {
			ca.done <- err
			cc.fail(err)
			return
		}
	}
}

// deliver parses one response payload into its call. A non-nil return is a
// protocol-level corruption that must kill the connection; per-call server
// errors are delivered through the call and return nil.
func deliver(ca *call, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("%w: empty response", ErrClosed)
	}
	status, body := payload[0], payload[1:]
	switch status {
	case statusErr:
		msgLen, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body)-n) < msgLen {
			return fmt.Errorf("%w: truncated error frame", ErrClosed)
		}
		ca.done <- &RemoteError{Msg: string(body[n : n+int(msgLen)])}
		return nil
	case statusOK:
		if ca.infoN != nil {
			v, n := binary.Uvarint(body)
			if n <= 0 {
				return fmt.Errorf("%w: truncated info response", ErrClosed)
			}
			*ca.infoN = int(v)
			ca.done <- nil
			return nil
		}
		count, n := binary.Uvarint(body)
		if n <= 0 || int(count) != len(ca.dest) {
			return fmt.Errorf("%w: response for %d pairs, asked %d", ErrClosed, count, len(ca.dest))
		}
		bits := body[n:]
		if len(bits) != (len(ca.dest)+7)/8 {
			return fmt.Errorf("%w: %d answer bytes for %d pairs", ErrClosed, len(bits), len(ca.dest))
		}
		for i := range ca.dest {
			ca.dest[i] = bits[i/8]&(1<<(7-uint(i)%8)) != 0
		}
		ca.done <- nil
		return nil
	default:
		return fmt.Errorf("%w: unknown response status %d", ErrClosed, status)
	}
}

// sendFrame enqueues ca and writes one frame. Callers hold c.mu, so frames
// from concurrent callers interleave at whole-frame granularity, matching
// the FIFO. The write is buffered; the caller flushes after its last frame.
func (c *Client) sendFrame(cc *clientConn, payload []byte, ca *call) error {
	if err := cc.enqueue(ca); err != nil {
		return err
	}
	c.metrics.FramesSent.Inc()
	fh := frameHeader(len(payload))
	if _, err := cc.bw.Write(fh[:]); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return err
	}
	if _, err := cc.bw.Write(payload); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
		return err
	}
	return nil
}

// AdjacentMany answers a batch of queries remotely, appending one result per
// pair to out (same contract as core.QueryEngine.AdjacentMany). The batch is
// split into pipelined frames of at most MaxBatch pairs; answers land in
// pair order. On any error the appended results must not be trusted.
func (c *Client) AdjacentMany(pairs [][2]int, out []bool) ([]bool, error) {
	start := len(out)
	if need := start + len(pairs); cap(out) >= need {
		out = out[:need]
	} else {
		grown := make([]bool, need)
		copy(grown, out)
		out = grown
	}
	if len(pairs) == 0 {
		return out, nil
	}
	dest := out[start:]
	maxBatch := c.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}

	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return out[:start], err
	}
	calls := make([]*call, 0, (len(pairs)+maxBatch-1)/maxBatch)
	for off := 0; off < len(pairs); off += maxBatch {
		chunk := pairs[off:min(off+maxBatch, len(pairs))]
		c.req = appendQueryReq(c.req[:0], chunk)
		ca := &call{dest: dest[off : off+len(chunk)], done: make(chan error, 1)}
		if err := c.sendFrame(cc, c.req, ca); err != nil {
			c.mu.Unlock()
			waitCalls(calls)
			return out[:start], err
		}
		calls = append(calls, ca)
	}
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	c.mu.Unlock()

	for _, ca := range calls {
		if cerr := <-ca.done; cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return out[:start], err
	}
	return out, nil
}

// waitCalls drains calls that were already enqueued when a later frame
// failed; their verdicts (delivered by the reader or by fail) are discarded.
func waitCalls(calls []*call) {
	for _, ca := range calls {
		<-ca.done
	}
}

// Adjacent answers a single query remotely. For throughput, prefer
// AdjacentMany — one frame per call is the naive baseline E23 measures
// against.
func (c *Client) Adjacent(u, v int) (bool, error) {
	var res [1]bool
	if _, err := c.AdjacentMany([][2]int{{u, v}}, res[:0]); err != nil {
		return false, err
	}
	return res[0], nil
}

// Info returns the number of vertices the server's engine answers for.
func (c *Client) Info() (int, error) {
	var n int
	ca := &call{infoN: &n, done: make(chan error, 1)}
	c.mu.Lock()
	cc, err := c.ensureConn()
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	if err := c.sendFrame(cc, []byte{opInfo}, ca); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	if err := cc.bw.Flush(); err != nil {
		cc.fail(fmt.Errorf("%w: %v", ErrClosed, err))
	}
	c.mu.Unlock()
	if err := <-ca.done; err != nil {
		return 0, err
	}
	return n, nil
}
