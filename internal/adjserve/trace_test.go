package adjserve

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// sumHops totals the tally's entries per hop, keyed by the raw hop byte.
func sumHops(t *obs.SpanTally) map[uint8]int64 {
	m := make(map[uint8]int64)
	for _, st := range t.Stages() {
		m[st.Hop] += st.Ns
	}
	return m
}

// stageSet collects which (stage, hop) combinations appeared.
func stageSet(t *obs.SpanTally) map[[2]uint8]bool {
	m := make(map[[2]uint8]bool)
	for _, st := range t.Stages() {
		m[[2]uint8{st.Stage, st.Hop}] = true
	}
	return m
}

// TestTraceDirectE2E traces one batched call against a plain server and
// checks the acceptance invariant: the client's own stages plus the server's
// echoed stage report sum to the observed end-to-end latency within 5%
// (the client constructs its net stage as exactly the unattributed remainder,
// so the invariant is structural — the tolerance only absorbs the wall-clock
// reads outside the traced window).
func TestTraceDirectE2E(t *testing.T) {
	eng := testEngine(t, 400, 11)
	addr, srv, _ := startServer(t, eng, 0)
	sink := &obs.TraceSink{Ring: obs.NewTraceRing(16)}
	srv.SetTraceSink(sink)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	caps, err := c.Caps()
	if err != nil {
		t.Fatal(err)
	}
	if caps&capTrace == 0 {
		t.Fatalf("server caps %#x missing capTrace", caps)
	}

	pairs := randomPairs(eng.N(), 2000, 11)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tally obs.SpanTally
	start := time.Now()
	got, err := c.AdjacentManyTrace(pairs, nil, &tally)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}

	set := stageSet(&tally)
	for _, wantStage := range [][2]uint8{
		{obs.StageEncode, obs.HopSelf},
		{obs.StageFlush, obs.HopSelf},
		{obs.StageNet, obs.HopSelf},
		{obs.StageQueue, obs.HopPeer},
		{obs.StageRead, obs.HopPeer},
		{obs.StageProbe, obs.HopPeer},
	} {
		if !set[wantStage] {
			t.Errorf("missing stage %s@%s in %v",
				obs.StageName(wantStage[0]), obs.HopName(wantStage[1]), tally.Stages())
		}
	}

	var sum int64
	for _, st := range tally.Stages() {
		sum += st.Ns
	}
	lo, hi := int64(float64(wall)*0.95)-int64(2*time.Millisecond), int64(wall)
	if sum < lo || sum > hi {
		t.Errorf("stage sum %v outside [%v, %v] of e2e %v", time.Duration(sum),
			time.Duration(lo), time.Duration(hi), wall)
	}

	// The traced frame was deposited at the server under the propagated id.
	snap := sink.Ring.Snapshot(nil)
	if len(snap) == 0 {
		t.Fatal("server sink captured no traces")
	}
	found := false
	for _, tr := range snap {
		if tr.ID == tally.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace id %s not in server ring", obs.TraceID(tally.ID))
	}
}

// TestTraceRoutedE2E is the acceptance check through the full scatter-gather
// path: client → router → 3 shard servers. The reconstructed timeline must
// contain the router's hop stages and per-shard sub-traces, and the top-level
// stages (client self + router hop) must sum to the observed e2e latency
// within 5% — shard-indexed entries nest inside the router's upstream window
// and are excluded from the invariant.
func TestTraceRoutedE2E(t *testing.T) {
	full, engines := shardEngines(t, 400, 3, core.ShardRange, 7)
	addrs, srvs := startShardFleet(t, engines)
	for _, s := range srvs {
		s.SetTraceSink(&obs.TraceSink{Ring: obs.NewTraceRing(16)})
	}
	addr, r := startRouter(t, addrs, 0)
	sink := &obs.TraceSink{Ring: obs.NewTraceRing(16)}
	r.SetTraceSink(sink)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pairs := randomPairs(full.N(), 3000, 7)
	var tally obs.SpanTally
	start := time.Now()
	got, err := c.AdjacentManyTrace(pairs, nil, &tally)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, err := full.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("pair %d (%d,%d) = %v, engine says %v", i, p[0], p[1], got[i], want)
		}
	}

	set := stageSet(&tally)
	for _, wantStage := range [][2]uint8{
		{obs.StageScatter, obs.HopPeer},
		{obs.StageUpstream, obs.HopPeer},
		{obs.StageGather, obs.HopPeer},
	} {
		if !set[wantStage] {
			t.Errorf("missing router stage %s@%s in %v",
				obs.StageName(wantStage[0]), obs.HopName(wantStage[1]), tally.Stages())
		}
	}
	hops := sumHops(&tally)
	for shard := uint8(0); shard < 3; shard++ {
		if hops[shard] <= 0 {
			t.Errorf("no stages attributed to shard %d: %v", shard, tally.Stages())
		}
		if !set[[2]uint8{obs.StageProbe, shard}] {
			t.Errorf("shard %d missing probe stage", shard)
		}
		if !set[[2]uint8{obs.StageNet, shard}] {
			t.Errorf("shard %d missing net stage", shard)
		}
	}

	// Top-level invariant: self + router-hop stages cover the wall time.
	top := hops[obs.HopSelf] + hops[obs.HopPeer]
	lo, hi := int64(float64(wall)*0.95)-int64(2*time.Millisecond), int64(wall)
	if top < lo || top > hi {
		t.Errorf("top-level stage sum %v outside [%v, %v] of e2e %v",
			time.Duration(top), time.Duration(lo), time.Duration(hi), wall)
	}

	// Shard sub-traces nest inside the router's upstream window. The upstream
	// stage is a wall-clock window over concurrent per-shard calls, so each
	// single shard's total must fit within it (plus scheduling slop).
	var up int64
	for _, st := range tally.Stages() {
		if st.Stage == obs.StageUpstream && st.Hop == obs.HopPeer {
			up = st.Ns
		}
	}
	for shard := uint8(0); shard < 3; shard++ {
		if hops[shard] > up+int64(2*time.Millisecond) {
			t.Errorf("shard %d stages (%v) exceed router upstream window (%v)",
				shard, time.Duration(hops[shard]), time.Duration(up))
		}
	}

	// The router deposited the downstream-traced frame under the same id.
	snap := sink.Ring.Snapshot(nil)
	found := false
	for _, tr := range snap {
		if tr.ID == tally.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace id %s not in router ring (got %d traces)", obs.TraceID(tally.ID), len(snap))
	}
}

// TestTraceCapsFallback pins the downgrade path: against a server that does
// not advertise capTrace, a traced call still answers correctly and the tally
// carries the client-side stages only — no peer report, no wire extension.
func TestTraceCapsFallback(t *testing.T) {
	eng := testEngine(t, 400, 13)
	addr, _, _ := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// White-box: pin the negotiated capability word to "none", as dialing a
	// pre-trace build would have.
	c.mu.Lock()
	c.caps, c.capsKnown = 0, true
	c.mu.Unlock()

	pairs := randomPairs(eng.N(), 500, 13)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tally obs.SpanTally
	got, err := c.AdjacentManyTrace(pairs, nil, &tally)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if tally.Len() == 0 {
		t.Fatal("fallback tally is empty")
	}
	for _, st := range tally.Stages() {
		if st.Hop != obs.HopSelf {
			t.Errorf("unexpected non-self stage %s@%s against an untraced server",
				obs.StageName(st.Stage), obs.HopName(st.Hop))
		}
	}
}

// TestTraceSlowlog pins threshold capture: with a 0-sample sink whose slow
// threshold is 1ns, plain untraced calls land in the slowlog ring with the
// server's coarse stages attached, and the OnSlow hook fires.
func TestTraceSlowlog(t *testing.T) {
	eng := testEngine(t, 400, 17)
	addr, srv, _ := startServer(t, eng, 0)
	sink := &obs.TraceSink{
		Ring:   obs.NewTraceRing(16),
		Slow:   obs.NewTraceRing(16),
		SlowNs: 1,
	}
	hit := make(chan struct{}, 16)
	sink.OnSlow = func(tr *obs.Trace) {
		select {
		case hit <- struct{}{}:
		default:
		}
	}
	srv.SetTraceSink(sink)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.AdjacentMany(randomPairs(eng.N(), 64, 17), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hit:
	case <-time.After(5 * time.Second):
		t.Fatal("OnSlow hook never fired")
	}
	if sink.SlowHits.Load() == 0 {
		t.Error("slow-hit counter stayed 0")
	}
	snap := sink.Slow.Snapshot(nil)
	if len(snap) == 0 {
		t.Fatal("slowlog ring is empty")
	}
	if snap[0].ID == 0 {
		t.Error("slowlog trace has no id")
	}
	if snap[0].NStages == 0 {
		t.Error("slowlog trace has no stages")
	}
	// The unsampled slow frame must not have leaked into the sampled ring.
	if got := sink.Ring.Len(); got != 0 {
		t.Errorf("sampled ring has %d traces, want 0", got)
	}

	// And the admin endpoint renders it as JSON.
	reg := obs.NewRegistry()
	sink.Register(reg)
	var sb strings.Builder
	if err := obs.WriteTracesJSON(&sb, sink.Slow, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Stages  []struct {
				Stage string `json:"stage"`
				Hop   string `json:"hop"`
				Ns    int64  `json:"ns"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("slowlog JSON does not parse: %v\n%s", err, sb.String())
	}
	if len(doc.Traces) == 0 || len(doc.Traces[0].Stages) == 0 {
		t.Fatalf("slowlog JSON missing traces/stages:\n%s", sb.String())
	}
}

// TestTraceSelfSample pins server-side sampling: with SampleEvery=2 and plain
// untraced clients, every second frame lands in the sampled ring, and the
// responses stay byte-identical to the untraced protocol (no echo without the
// request flag).
func TestTraceSelfSample(t *testing.T) {
	eng := testEngine(t, 400, 19)
	addr, srv, _ := startServer(t, eng, 0)
	sink := &obs.TraceSink{Ring: obs.NewTraceRing(64), SampleEvery: 2}
	srv.SetTraceSink(sink)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pairs := randomPairs(eng.N(), 64, 19)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 10
	for f := 0; f < frames; f++ {
		got, err := c.AdjacentMany(pairs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("frame %d pair %d: got %v, want %v", f, i, got[i], want[i])
			}
		}
	}
	// Client Dial does one Info frame too; sampling counts all frames, so the
	// exact count depends on op interleaving — bound it instead.
	n := sink.Ring.Len()
	if n < frames/2-1 || n > frames/2+2 {
		t.Errorf("sampled %d traces from %d frames at 1/2, want about %d", n, frames, frames/2)
	}
	if sink.Sampled.Load() == 0 {
		t.Error("sampled counter stayed 0")
	}
}

// TestServeFrameTraceDisabledZeroAlloc asserts the tentpole's perf guarantee:
// with a sink installed but sampling and slowlog off, the serve path
// allocates nothing per frame (the trace machinery must stay entirely off the
// untraced path).
func TestServeFrameTraceDisabledZeroAlloc(t *testing.T) {
	srv := NewServer(testEngine(t, 2000, 23), 0)
	srv.SetTraceSink(&obs.TraceSink{Ring: obs.NewTraceRing(16), Slow: obs.NewTraceRing(16)})
	req := appendQueryReq(nil, randomPairs(2000, 64, 23))
	bufs := &connBuffers{resp: make([]byte, 0, 4096)}
	allocs := testing.AllocsPerRun(200, func() {
		start := time.Now()
		resp, _ := srv.serveFrame(req, bufs, start, 1, 1)
		bufs.resp = resp[:0]
	})
	if allocs != 0 {
		t.Errorf("serveFrame with tracing disabled allocates %.1f/op, want 0", allocs)
	}
}

// TestRouterOpInfoCaps: the router advertises capTrace downstream, so a
// tracing client treats a fleet behind a router exactly like a single traced
// server.
func TestRouterOpInfoCaps(t *testing.T) {
	_, engines := shardEngines(t, 400, 3, core.ShardRange, 7)
	addrs, _ := startShardFleet(t, engines)
	addr, _ := startRouter(t, addrs, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	caps, err := c.Caps()
	if err != nil {
		t.Fatal(err)
	}
	if caps&capTrace == 0 {
		t.Fatalf("router caps %#x missing capTrace", caps)
	}
}
