//go:build race

package adjserve

// raceEnabled reports that the race detector is active: sync.Pool drops puts
// at random under race instrumentation, so strict zero-allocation assertions
// cannot hold and are skipped.
const raceEnabled = true
