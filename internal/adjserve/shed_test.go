package adjserve

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// TestShedHysteresis drives the latch through its trip/hold/release cycle by
// steering the queued-frame gauge directly. shouldShed sees the gauge with
// the asking frame included (handle() increments before process()), so every
// steered value below is "other queued frames + the asking one": trip above
// depth, hold in the (depth/2, depth] band, release at depth/2.
func TestShedHysteresis(t *testing.T) {
	srv := NewServer(testEngine(t, 200, 3), 0)
	srv.SetShedDepth(10)
	q := &srv.metrics.QueuedFrames

	q.Add(1) // just the asking frame, nothing else queued
	if srv.shouldShed() {
		t.Fatal("shed with an empty queue")
	}
	q.Add(10) // 10 others: exactly depth, not yet over
	if srv.shouldShed() {
		t.Fatal("shed at depth, want trip only above it")
	}
	q.Add(1) // 11 others > 10: trips
	if !srv.shouldShed() {
		t.Fatal("no shed above depth")
	}
	if got := srv.metrics.ShedEvents.Load(); got != 1 {
		t.Fatalf("ShedEvents = %d, want 1", got)
	}
	q.Add(-5) // 6 others > depth/2 = 5: latch holds
	if !srv.shouldShed() {
		t.Fatal("latch released above depth/2")
	}
	if got := srv.metrics.ShedEvents.Load(); got != 1 {
		t.Fatalf("ShedEvents = %d after hold, want still 1 (no re-trip)", got)
	}
	q.Add(-1) // 5 others <= depth/2: releases
	if srv.shouldShed() {
		t.Fatal("latch held at depth/2, want release")
	}
	if srv.shedding.Load() {
		t.Fatal("latch flag still set after release")
	}
}

// TestSheddingReadyzRelease verifies the readiness view of the latch: after a
// storm trips it, Shedding() itself releases once the queue has drained, so
// /readyz recovers even when no further frame re-evaluates shouldShed.
func TestSheddingReadyzRelease(t *testing.T) {
	srv := NewServer(testEngine(t, 200, 3), 0)
	srv.SetShedDepth(4)
	srv.metrics.QueuedFrames.Add(6) // asking frame + 5 others > depth
	if !srv.shouldShed() {
		t.Fatal("no trip above depth")
	}
	if !srv.Shedding() {
		t.Fatal("Shedding() false while the queue is past the bound")
	}
	srv.metrics.QueuedFrames.Add(-6) // storm stops dead; no frames arrive
	if srv.Shedding() {
		t.Fatal("Shedding() true after the queue drained to zero")
	}
	if srv.shedding.Load() {
		t.Fatal("latch not released by Shedding()")
	}
}

// TestShedFrameEndToEnd forces the latch over the wire path: with the queue
// gauge held past the bound, a client query draws ErrShed (one status byte,
// connection intact), and once the queue drains the same connection serves
// again.
func TestShedFrameEndToEnd(t *testing.T) {
	eng := testEngine(t, 500, 7)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, 0)
	srv.SetShedDepth(1)
	go srv.Serve(ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pin the gauge past the bound: every query/dist frame sheds, while the
	// info op still answers (handshakes survive overload).
	srv.Metrics().QueuedFrames.Add(5)
	if _, err := c.Adjacent(1, 2); err != ErrShed {
		t.Fatalf("query under overload: err = %v, want ErrShed", err)
	}
	if n, err := c.Info(); err != nil || n != eng.N() {
		t.Fatalf("info under overload: n=%d err=%v, want n=%d nil (info is never shed)", n, err, eng.N())
	}
	if got := srv.Metrics().ShedFrames.Load(); got != 1 {
		t.Fatalf("server ShedFrames = %d, want 1", got)
	}
	if got := c.Metrics().ShedFrames.Load(); got != 1 {
		t.Fatalf("client ShedFrames = %d, want 1", got)
	}

	// Drain: the extra decrement below brings the real queue depth back in
	// charge, the latch releases on the next frame, and the same connection
	// (never closed by a shed) serves normally.
	srv.Metrics().QueuedFrames.Add(-5)
	want, err := eng.Adjacent(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Adjacent(1, 2)
	if err != nil {
		t.Fatalf("query after drain: %v", err)
	}
	if got != want {
		t.Fatalf("post-shed answer = %v, want %v", got, want)
	}
}

// TestAdmissionCap verifies the connection cap: the over-cap client's call
// fails with ErrShed (not a bare reset), the admitted client keeps serving,
// and closing the admitted connection frees the slot.
func TestAdmissionCap(t *testing.T) {
	eng := testEngine(t, 500, 11)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, 0)
	srv.SetMaxConns(1)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	first, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Adjacent(1, 2); err != nil {
		t.Fatal(err)
	}

	// The second connection is accepted at the TCP level but refused at
	// admission: its first call draws ErrShed. The client then redials on the
	// next call and is refused again while the slot is held.
	second := NewClient(addr)
	second.MaxDialAttempts = 1
	defer second.Close()
	if _, err := second.Adjacent(3, 4); err != ErrShed {
		t.Fatalf("over-cap call: err = %v, want ErrShed", err)
	}
	if got := srv.Metrics().ConnsShed.Load(); got == 0 {
		t.Fatal("ConnsShed not counted")
	}
	if _, err := first.Adjacent(5, 6); err != nil {
		t.Fatalf("admitted connection disturbed by the refusal: %v", err)
	}

	// Free the slot; the refused client's transparent redial must now get in.
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := second.Adjacent(3, 4); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the admitted connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShedZeroAlloc asserts the shed path allocates nothing: answering a
// query frame with a shed frame is one status byte into a reused buffer.
func TestShedZeroAlloc(t *testing.T) {
	srv := NewServer(testEngine(t, 500, 13), 0)
	srv.SetShedDepth(1)
	srv.metrics.QueuedFrames.Add(5) // pinned past the bound: always shed
	req := appendQueryReq(nil, randomPairs(500, 64, 1))
	bufs := &connBuffers{resp: make([]byte, 0, 64)}
	if resp, _ := srv.process(req, bufs); len(resp) != 1 || resp[0] != statusShed {
		t.Fatalf("forced shed answered %v, want one shed status byte", resp)
	}
	if avg := testing.AllocsPerRun(200, func() {
		resp, _ := srv.process(req, bufs)
		bufs.resp = resp[:0]
	}); avg != 0 {
		t.Fatalf("shed path allocates %.1f/op, want 0", avg)
	}
}

// TestServeZeroAllocSteadyState asserts the admitted serve path stays
// allocation-free once the connection scratch is warm — the property the CI
// bench gate watches, checked here directly against process().
func TestServeZeroAllocSteadyState(t *testing.T) {
	srv := NewServer(testEngine(t, 500, 17), 0)
	srv.SetShedDepth(8) // armed but idle: the depth check itself must not cost
	req := appendQueryReq(nil, randomPairs(500, 64, 2))
	bufs := &connBuffers{}
	resp, queries := srv.process(req, bufs)
	if queries != 64 {
		t.Fatalf("warmup answered %d queries, want 64 (resp %v)", queries, resp)
	}
	bufs.resp = resp[:0]
	if avg := testing.AllocsPerRun(200, func() {
		resp, _ := srv.process(req, bufs)
		bufs.resp = resp[:0]
	}); avg != 0 {
		t.Fatalf("armed serve path allocates %.1f/op, want 0", avg)
	}
}

// TestResponseCoalescingBounded verifies correctness under the tightest
// coalescing bound: with at most one pending response per flush, a heavily
// pipelined batch still answers bit-for-bit like the engine.
func TestResponseCoalescingBounded(t *testing.T) {
	eng := testEngine(t, 800, 19)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, 0)
	srv.SetMaxPendingResponses(1)
	go srv.Serve(ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxBatch = 8 // 50 pipelined frames per call
	pairs := randomPairs(800, 400, 5)
	want, err := eng.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestJitterBackoffBounds checks the jitter math at its extremes: the scale
// factor spans exactly [1-frac, 1+frac] as the uniform draw spans [0, 1).
func TestJitterBackoffBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for _, tc := range []struct {
		draw float64
		want time.Duration
	}{
		{0, 80 * time.Millisecond},
		{0.5, 100 * time.Millisecond},
		{1, 120 * time.Millisecond},
	} {
		c := NewClient("unused")
		c.jitterFloat = func() float64 { return tc.draw }
		if got := c.jitterBackoff(d); got != tc.want {
			t.Fatalf("jitterBackoff(%v) with draw %.1f = %v, want %v", d, tc.draw, got, tc.want)
		}
	}
}

// TestRedialBackoffJittered drives a full bounded-redial cycle against a dead
// address with an injected clock and jitter source: the recorded sleeps must
// be the exponential ladder scaled by the injected draws, and no real time
// may pass.
func TestRedialBackoffJittered(t *testing.T) {
	c := NewClient("127.0.0.1:1") // never dialed: DialFunc injects failures
	c.MaxDialAttempts = 4
	c.RedialBackoff = 100 * time.Millisecond
	dials := 0
	c.DialFunc = func(addr string) (net.Conn, error) {
		dials++
		return nil, &net.OpError{Op: "dial", Err: &timeoutErr{}}
	}
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	draws := []float64{0, 1, 0.5}
	c.jitterFloat = func() float64 { d := draws[0]; draws = draws[1:]; return d }

	if _, err := c.Adjacent(0, 1); err == nil {
		t.Fatal("call against a dead dialer succeeded")
	}
	if dials != 4 {
		t.Fatalf("dials = %d, want MaxDialAttempts = 4", dials)
	}
	// Backoff ladder 100ms, 200ms, 400ms scaled by draws 0 → ×0.8,
	// 1 → ×1.2, 0.5 → ×1.0. Sleeps happen before attempts 2..4.
	want := []time.Duration{80 * time.Millisecond, 240 * time.Millisecond, 400 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %d sleeps", slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (jittered ladder)", i, slept[i], want[i])
		}
	}
	if got := c.Metrics().DialFailures.Load(); got != 4 {
		t.Fatalf("DialFailures = %d, want 4", got)
	}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string   { return "injected dial failure" }
func (*timeoutErr) Timeout() bool   { return true }
func (*timeoutErr) Temporary() bool { return true }

// TestRouterShedPropagation pins one shard of a fleet into shedding and
// checks the router's granularity contract: a downstream frame that needs the
// shedding shard is answered with a shed frame (ErrShed, retryable), while
// frames routed entirely to live shards keep serving; once the shard drains,
// the same router connection recovers.
func TestRouterShedPropagation(t *testing.T) {
	full, engines := shardEngines(t, 400, 3, core.ShardRange, 21)
	addrs := make([]string, len(engines))
	srvs := make([]*Server, len(engines))
	for i, e := range engines {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(e, 0)
		srv.SetShedDepth(1) // armed everywhere; only shard 0's gauge is pinned
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i], srvs[i] = ln.Addr().String(), srv
	}
	routerAddr, r := startRouter(t, addrs, 0)

	// A pair is forced to its thin endpoint's owner, so find a thin vertex
	// owned by shard 2 — its self-pair can never be routed to shard 0.
	sc, err := Dial(addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	si, err := sc.ShardInfo()
	sc.Close()
	if err != nil {
		t.Fatal(err)
	}
	liveVertex := -1
	for v := 0; v < si.N; v++ {
		if si.Map.Owner(v, si.N) == 2 && !si.Fat(v) {
			liveVertex = v
			break
		}
	}
	if liveVertex < 0 {
		t.Fatal("no thin vertex owned by shard 2")
	}

	c, err := Dial(routerAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pin shard 0 past its bound: sub-batches sent to it shed.
	srvs[0].Metrics().QueuedFrames.Add(5)

	// A whole-keyspace batch needs shard 0, so the downstream frame sheds.
	all := make([][2]int, full.N())
	for v := range all {
		all[v] = [2]int{v, v}
	}
	if _, err := c.AdjacentMany(all, nil); err != ErrShed {
		t.Fatalf("frame needing the shedding shard: err = %v, want ErrShed", err)
	}
	if got := r.Metrics().ShedFrames.Load(); got == 0 {
		t.Fatal("router ShedFrames not counted")
	}

	// A frame confined to the live shard is untouched by shard 0's state.
	want, err := full.Adjacent(liveVertex, liveVertex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Adjacent(liveVertex, liveVertex)
	if err != nil {
		t.Fatalf("live-shard pair during a sibling's overload: %v", err)
	}
	if got != want {
		t.Fatalf("live-shard answer = %v, want %v", got, want)
	}

	// Drain shard 0: the same downstream connection serves the full keyspace
	// again — a shed never kills connections anywhere in the chain.
	srvs[0].Metrics().QueuedFrames.Add(-5)
	res, err := c.AdjacentMany(all, nil)
	if err != nil {
		t.Fatalf("after drain: %v", err)
	}
	for v := range all {
		w, err := full.Adjacent(v, v)
		if err != nil {
			t.Fatal(err)
		}
		if res[v] != w {
			t.Fatalf("post-drain pair (%d,%d) = %v, want %v", v, v, res[v], w)
		}
	}
}
