package adjserve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Router is the scatter-gather front of a sharded serving tier. Downstream it
// speaks the ordinary adjserve wire protocol — clients cannot tell a router
// from a single server holding the whole labeling — and upstream it holds one
// pipelined Client per shard server. Each query frame is split by the
// ownership rule, the per-shard sub-batches are fanned out concurrently, and
// the per-shard bit-vector answers are scattered back into request order.
//
// Routing rule (the invariant TestRouterRoutingInvariant pins down): a query
// (u,v) can only be answered by a shard holding a full thin body of u or v,
// or — when both are fat — by any shard, since fat–fat bitmaps are
// replicated everywhere. So a thin endpoint forces its owner, and every
// remaining case (u==v, thin–thin, fat–fat) goes to min(owner(u), owner(v)).
// Min rather than either owner keeps the choice deterministic; the sharded
// engine's residency guard (core.ErrNotResident) turns any violation of this
// rule into a loud error frame instead of a silent wrong answer. The rule
// needs the fat set, which is why the shard-info handshake carries the fat
// bitmap: naive min-owner alone would misroute a fat–thin pair whose fat
// endpoint has the smaller owner.
//
// Per-request failure semantics mirror the single server's: a shard error
// (or a dead shard) poisons only the query frames routed to it — each gets an
// error frame, the downstream connection stays up, and frames touching only
// live shards keep answering.
type Router struct {
	clients  []*Client // by shard index (partition) or address order (replicas)
	fatBits  []byte    // replicated fat set, bit v MSB-first within byte v/8
	n        int
	fn       core.ShardFn
	maxBatch int
	// replicas marks a replica fleet: every upstream reported the trivial
	// 1-shard map, so each holds a whole store (the distance-serving
	// deployment; a single plain server is the degenerate 1-replica fleet).
	// Queries route by owner-of-u (floor(u*R/n)) purely for load spreading —
	// any replica could answer any pair.
	replicas bool

	// maxConns, when > 0, caps concurrently open downstream connections,
	// mirroring Server.SetMaxConns: over-cap accepts get one shed frame and a
	// close. Set before Serve.
	maxConns int

	metrics RouterMetrics
	bufPool sync.Pool // *routerBufs; per-router because sizes scale with shard count

	// sink, when non-nil, collects completed traces at the router hop,
	// mirroring Server.sink: traced downstream frames, self-sampled frames,
	// and slow frames. Set before Serve.
	sink *obs.TraceSink

	// draining is read once per frame by every downstream connection's loop;
	// atomic so the frame loop takes no lock (mu guards only the registry).
	draining atomic.Bool

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// NewRouter dials one server per address, performs the shard-info handshake
// with each, and admits the fleet as one of two coherent shapes:
//
//   - A partition: every shard reports the same vertex count and ownership
//     function, a shard count equal to the fleet size, a distinct index (two
//     servers claiming the same shard — overlapping ownership — is a
//     deployment error caught here), and a byte-identical fat bitmap.
//     clients are held in shard-index order, so addrs may be listed in any
//     order.
//   - A replica fleet: every upstream reports the trivial 1-shard map with
//     the same vertex count and fat bitmap — R whole copies of one store,
//     the distance-serving deployment (op=dist on a partition is refused;
//     distance stores are never sharded). clients stay in addr order.
//
// maxBatch caps pairs per downstream frame (<= 0 selects DefaultMaxBatch);
// upstream sub-batches are never larger, so upstream servers need an equal
// or larger limit.
func NewRouter(addrs []string, maxBatch int) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("adjserve: router needs at least one shard address")
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	r := &Router{
		clients:  make([]*Client, len(addrs)),
		maxBatch: maxBatch,
		conns:    make(map[net.Conn]struct{}),
	}
	infos := make([]*ShardInfo, len(addrs))
	for i, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			r.closeClients()
			return nil, fmt.Errorf("adjserve: router: shard %s: %w", addr, err)
		}
		c.MaxBatch = maxBatch
		r.clients[i] = c
		si, err := c.ShardInfo()
		if err != nil {
			r.closeClients()
			return nil, fmt.Errorf("adjserve: router: shard %s handshake: %w", addr, err)
		}
		infos[i] = si
	}
	r.replicas = true
	for _, si := range infos {
		if si.Map.Count != 1 || si.Map.Index != 0 {
			r.replicas = false
			break
		}
	}
	if r.replicas {
		r.n, r.fn, r.fatBits = infos[0].N, infos[0].Map.Fn, infos[0].FatBits
		for i, si := range infos {
			if si.N != r.n {
				r.closeClients()
				return nil, fmt.Errorf("adjserve: router: replica %s serves %d vertices, fleet serves %d",
					addrs[i], si.N, r.n)
			}
			if !bytes.Equal(si.FatBits, r.fatBits) {
				r.closeClients()
				return nil, fmt.Errorf("adjserve: router: replica %s reports a different fat set than the fleet (mixed labelings?)", addrs[i])
			}
		}
	} else {
		ordered := make([]*Client, len(addrs))
		seen := make([]string, len(addrs)) // claimed address by shard index
		for i, si := range infos {
			if err := r.admit(addrs[i], si, seen); err != nil {
				r.closeClients()
				return nil, err
			}
			ordered[si.Map.Index] = r.clients[i]
			seen[si.Map.Index] = addrs[i]
		}
		r.clients = ordered
	}
	r.metrics.init(len(addrs))
	return r, nil
}

// admit validates one partition handshake against the fleet shape established
// by the shards admitted before it.
func (r *Router) admit(addr string, si *ShardInfo, seen []string) error {
	if si.Map.Count != len(r.clients) {
		return fmt.Errorf("adjserve: router: shard %s is %d of %d shards, fleet has %d servers",
			addr, si.Map.Index, si.Map.Count, len(r.clients))
	}
	if prev := seen[si.Map.Index]; prev != "" {
		return fmt.Errorf("adjserve: router: shards %s and %s both claim index %d (overlapping ownership)",
			prev, addr, si.Map.Index)
	}
	if r.fatBits == nil {
		r.n, r.fn, r.fatBits = si.N, si.Map.Fn, si.FatBits
		return nil
	}
	if si.N != r.n {
		return fmt.Errorf("adjserve: router: shard %s serves %d vertices, fleet serves %d", addr, si.N, r.n)
	}
	if si.Map.Fn != r.fn {
		return fmt.Errorf("adjserve: router: shard %s uses ownership function %s, fleet uses %s", addr, si.Map.Fn, r.fn)
	}
	if !bytes.Equal(si.FatBits, r.fatBits) {
		return fmt.Errorf("adjserve: router: shard %s reports a different fat set than the fleet (mixed labelings?)", addr)
	}
	return nil
}

func (r *Router) closeClients() {
	for _, c := range r.clients {
		if c != nil {
			c.Close()
		}
	}
}

// N returns the vertex count of the fronted labeling.
func (r *Router) N() int { return r.n }

// Shards returns the number of upstream servers (partition shards, or
// replicas when Replicas reports true).
func (r *Router) Shards() int { return len(r.clients) }

// Replicas reports whether the fleet handshook as identical whole-store
// replicas (owner-of-u routing, distance frames allowed) rather than a
// shard partition.
func (r *Router) Replicas() bool { return r.replicas }

// SetMaxConns caps concurrently open downstream connections; n <= 0 means
// unlimited. Over-cap connections are answered with one shed frame and
// closed, exactly like Server.SetMaxConns. Must be called before Serve.
func (r *Router) SetMaxConns(n int) { r.maxConns = n }

// SetTraceSink installs the router's trace collection point, mirroring
// Server.SetTraceSink. Must be called before Serve.
func (r *Router) SetTraceSink(sink *obs.TraceSink) { r.sink = sink }

// Metrics returns the router's instrumentation; RegisterMetrics exposes it
// (and every upstream client's) on a registry.
func (r *Router) Metrics() *RouterMetrics { return &r.metrics }

// RegisterMetrics exposes the router metrics plus each upstream client's
// metrics (labeled by shard index) on reg, including a per-upstream in-flight
// gauge backed by Client.Pending. Call once per registry.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	r.metrics.Register(reg)
	for i, c := range r.clients {
		shard := strconv.Itoa(i)
		c.Metrics().RegisterWith(reg, "shard", shard)
		cl := c
		reg.GaugeFunc("adjserve_router_upstream_pending_frames",
			"Upstream frames written but not yet answered, by shard.",
			func() int64 { return int64(cl.Pending()) }, "shard", shard)
	}
}

// fat reports whether vertex v is fat on the fronted labeling.
func (r *Router) fat(v int) bool {
	return r.fatBits[v>>3]&(1<<(7-uint(v)&7)) != 0
}

// route picks the shard that answers (u, v); both must be in range.
func (r *Router) route(u, v int) int {
	if r.replicas {
		return r.ownerOf(u)
	}
	count := len(r.clients)
	ou := core.ShardOwner(r.fn, u, r.n, count)
	ov := core.ShardOwner(r.fn, v, r.n, count)
	uFat, vFat := r.fat(u), r.fat(v)
	switch {
	case u == v || uFat == vFat:
		return min(ou, ov)
	case !uFat:
		return ou
	default:
		return ov
	}
}

// ownerOf is the replica-fleet placement rule: replica floor(u*R/n) answers
// every query whose first endpoint is u. Any replica could — each holds the
// whole store — but keying on u alone spreads load and keeps each vertex's
// queries on one upstream, warming that replica's result cache for exactly
// its slice of the id space.
func (r *Router) ownerOf(u int) int {
	return int(int64(u) * int64(len(r.clients)) / int64(r.n))
}

// Serve accepts downstream connections on ln until Close, mirroring
// Server.Serve: each connection's frames are answered in order on its own
// goroutine (the fan-out inside a frame is concurrent, the frames are not
// reordered).
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.draining.Load() {
		r.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if r.draining.Load() {
				return ErrClosed
			}
			return err
		}
		r.mu.Lock()
		if r.draining.Load() {
			r.mu.Unlock()
			c.Close()
			continue
		}
		if r.maxConns > 0 && len(r.conns) >= r.maxConns {
			r.mu.Unlock()
			r.metrics.ConnsShed.Inc()
			go refuseConn(c)
			continue
		}
		r.conns[c] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		go r.handle(c)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (r *Router) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return r.Serve(ln)
}

// Close drains the router exactly as Server.Close drains a server — stop
// accepting, let every connection finish its in-flight frame, wait — and
// then closes the upstream clients. Idempotent.
func (r *Router) Close() error {
	r.mu.Lock()
	if !r.draining.CompareAndSwap(false, true) {
		r.mu.Unlock()
		r.wg.Wait()
		return nil
	}
	ln := r.ln
	for c := range r.conns {
		c.SetReadDeadline(time.Now())
	}
	r.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	r.wg.Wait()
	r.closeClients()
	return err
}

// shardJob is one shard's slice of a query or dist frame, handed to that
// shard's worker goroutine and joined on wg. op selects the upstream call
// (opQuery fills out, opDist fills dists). pairs/idx/out/dists grow to the
// connection's working set and are reused for every subsequent frame.
type shardJob struct {
	op    byte
	pairs [][2]int
	idx   []int32 // request positions of pairs, for the scatter
	out   []bool
	dists []int
	err   error
	wg    *sync.WaitGroup
	// traced selects the traced upstream call; tr then accumulates the
	// upstream client's stages plus the shard's own stage report, merged into
	// the frame's tally (relabeled with the shard index) after the join. The
	// tally lives in the pooled job so the traced fan-out allocates nothing
	// per frame either.
	traced bool
	tr     obs.SpanTally
}

// routerBufs is the pooled per-connection scratch: request/response payloads
// plus one shardJob (sub-batch, scatter indexes, answers) per shard, the
// gathered distance slice, and the join WaitGroup — everything a frame
// needs, so the steady-state fan-out performs zero heap allocations.
type routerBufs struct {
	req, resp []byte
	jobs      []shardJob
	dists     []int // request-ordered distance gather
	wg        sync.WaitGroup
}

func (r *Router) getBufs() *routerBufs {
	if b, ok := r.bufPool.Get().(*routerBufs); ok {
		return b
	}
	b := &routerBufs{jobs: make([]shardJob, len(r.clients))}
	for s := range b.jobs {
		b.jobs[s].wg = &b.wg
	}
	return b
}

// handle runs one downstream connection's frame loop. Each connection gets
// one persistent worker goroutine per shard, fed over a buffered channel, so
// the per-frame fan-out is channel sends and a WaitGroup join — no goroutine
// spawning on the query path.
func (r *Router) handle(c net.Conn) {
	r.metrics.ConnsTotal.Inc()
	r.metrics.ConnsActive.Add(1)
	defer func() {
		r.metrics.ConnsActive.Add(-1)
		r.mu.Lock()
		delete(r.conns, c)
		r.mu.Unlock()
		c.Close()
		r.wg.Done()
	}()
	bufs := r.getBufs()
	defer r.bufPool.Put(bufs)
	chans := make([]chan *shardJob, len(r.clients))
	for s := range chans {
		chans[s] = make(chan *shardJob, 1)
		go r.worker(s, chans[s])
	}
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var hdr, fhdr [frameHeaderLen]byte
	pending := 0
	// burstStart tracks queue wait exactly like Server.handle: a frame whose
	// header was already buffered when we looped back waited in this
	// connection's read burst since burstStart.
	var burstStart time.Time
	for {
		if r.draining.Load() {
			bw.Flush()
			return
		}
		waiting := br.Buffered() >= frameHeaderLen
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			bw.Flush()
			return
		}
		tHdr := time.Now()
		if !waiting {
			burstStart = tHdr
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:]))
		var resp []byte
		if plen > maxFramePayload {
			if _, err := io.CopyN(io.Discard, br, int64(plen)); err != nil {
				return
			}
			resp = appendErr(bufs.resp[:0], "frame of %d bytes exceeds limit %d", plen, maxFramePayload)
			r.metrics.ErrorFrames.Inc()
		} else {
			if cap(bufs.req) < plen {
				bufs.req = make([]byte, plen)
			}
			req := bufs.req[:plen]
			if _, err := io.ReadFull(br, req); err != nil {
				return
			}
			tPayload := time.Now()
			resp, _ = r.routeFrame(req, bufs, chans, tPayload,
				int64(tPayload.Sub(tHdr)), int64(tHdr.Sub(burstStart)))
		}
		r.metrics.Frames.Inc()
		r.metrics.BytesIn.Add(int64(frameHeaderLen + plen))
		r.metrics.BytesOut.Add(int64(frameHeaderLen + len(resp)))
		bufs.resp = resp[:0]
		fhdr = frameHeader(len(resp))
		if _, err := bw.Write(fhdr[:]); err != nil {
			return
		}
		if _, err := bw.Write(resp); err != nil {
			return
		}
		pending++
		// One Flush per read-burst, bounded like the server's coalescing so a
		// downstream client that stopped reading backpressures this loop
		// instead of growing the write buffer.
		if br.Buffered() < frameHeaderLen || pending >= DefaultMaxPendingResponses {
			if err := bw.Flush(); err != nil {
				return
			}
			pending = 0
		}
	}
}

// worker answers one shard's sub-batches for one downstream connection.
func (r *Router) worker(s int, jobs <-chan *shardJob) {
	c := r.clients[s]
	m := &r.metrics.Upstreams[s]
	for job := range jobs {
		start := time.Now()
		var err error
		if job.op == opDist {
			var dists []int
			if job.traced {
				dists, err = c.DistManyTrace(job.pairs, job.dists[:0], &job.tr)
			} else {
				dists, err = c.DistMany(job.pairs, job.dists[:0])
			}
			job.dists = dists
		} else {
			var out []bool
			if job.traced {
				out, err = c.AdjacentManyTrace(job.pairs, job.out[:0], &job.tr)
			} else {
				out, err = c.AdjacentMany(job.pairs, job.out[:0])
			}
			job.out = out
		}
		m.Batches.Inc()
		m.Pairs.Add(int64(len(job.pairs)))
		m.LatencyNs.ObserveDuration(time.Since(start))
		if errors.Is(err, ErrShed) {
			m.Sheds.Inc()
		} else if err != nil {
			m.Errors.Inc()
		}
		job.err = err
		job.wg.Done()
	}
}

// routeFrame is the router's analogue of Server.serveFrame: it strips an
// inbound trace context, decides whether this frame is captured (remote trace,
// self-sample, or slow), answers via process, and on capture echoes the
// router-hop stage report back downstream and deposits the completed trace.
// start is the instant the payload finished reading; readNs and queueNs are
// the header→payload read time and the pre-read queue wait.
//
// The untraced path materializes no SpanTally and performs no extra work
// beyond the timestamps already taken by the frame loop, preserving the
// zero-allocation router batch path.
func (r *Router) routeFrame(req []byte, bufs *routerBufs, chans []chan *shardJob, start time.Time, readNs, queueNs int64) ([]byte, int) {
	var tc traceCtx
	if len(req) > traceIDLen && req[0]&opTraceFlag != 0 {
		tc.remote = true
		tc.id = binary.LittleEndian.Uint64(req[1 : 1+traceIDLen])
		req[traceIDLen] = req[0] &^ opTraceFlag
		req = req[traceIDLen:]
	}
	var op byte
	if len(req) > 0 {
		op = req[0]
	}
	sink := r.sink
	if !tc.remote && sink.SampleNow() {
		tc.sample = true
		tc.id = obs.NewTraceID()
	}
	// Captured frames thread a tally through process so the fan-out records
	// scatter/upstream/gather windows and per-shard sub-traces. Slow-only
	// frames (detected after the fact) get the coarse queue/read/route stages.
	var t obs.SpanTally
	var tp *obs.SpanTally
	if tc.remote || tc.sample {
		t.ID = tc.id
		tp = &t
	}
	resp, queries := r.process(req, bufs, chans, tp)
	routeNs := int64(time.Since(start))
	switch {
	case len(resp) > 0 && resp[0] == statusErr:
		r.metrics.ErrorFrames.Inc()
	case len(resp) > 0 && resp[0] == statusShed:
		r.metrics.ShedFrames.Inc()
	case queries > 0:
		r.metrics.Queries.Add(int64(queries))
		h := &r.metrics.FrameLatencyNs[batchClass(queries)]
		if tc.id != 0 {
			h.ObserveExemplar(routeNs, tc.id)
		} else {
			h.Observe(routeNs)
		}
	}
	total := queueNs + readNs + routeNs
	slowNs := sink.SlowThreshold()
	slow := slowNs > 0 && total > slowNs
	if tc.remote || tc.sample || slow {
		if tp == nil {
			// Slow-only capture: no fan-out detail was recorded, attribute the
			// whole routing window as one upstream stage.
			t.Add(obs.StageUpstream, obs.HopSelf, routeNs)
		}
		t.Add(obs.StageQueue, obs.HopSelf, queueNs)
		t.Add(obs.StageRead, obs.HopSelf, readNs)
		if tc.remote && len(resp) > 0 && resp[0] == statusOK {
			resp[0] |= opTraceFlag
			resp = appendTraceTally(resp, &t)
		}
		if t.ID == 0 {
			t.ID = obs.NewTraceID()
		}
		var tr obs.Trace
		tr.Fill(&t, op, queries, total)
		if tc.remote || tc.sample {
			sink.Deposit(&tr)
		}
		if slow {
			sink.DepositSlow(&tr)
		}
	}
	return resp, queries
}

// mergeShardTrace folds one shard job's tally into the frame tally: the
// upstream client's own stages (encode/flush/net at HopSelf) collapse into a
// single per-shard net stage, the shard server's stage report (HopPeer after
// the client's relabel) is re-labeled with the shard index, and anything else
// — already shard-labeled by a nested router — passes through unchanged.
func mergeShardTrace(dst, jt *obs.SpanTally, shard uint8) {
	var netNs int64
	for _, st := range jt.Stages() {
		switch st.Hop {
		case obs.HopSelf:
			netNs += st.Ns
		case obs.HopPeer:
			dst.Add(st.Stage, shard, st.Ns)
		default:
			dst.Add(st.Stage, st.Hop, st.Ns)
		}
	}
	dst.Add(obs.StageNet, shard, netNs)
}

// process answers one downstream request payload, appending the response to
// bufs.resp (reused from its start). Info ops are answered locally — the
// router already knows the fleet's n and fat set from the handshake, and
// presents itself as a single unsharded server so routers compose with every
// existing client (plquery -remote, plbench, even another router). A non-nil
// tp marks the frame as traced: query/dist paths record their fan-out stages
// into it and thread the trace upstream.
func (r *Router) process(req []byte, bufs *routerBufs, chans []chan *shardJob, tp *obs.SpanTally) (out []byte, queries int) {
	resp := bufs.resp[:0]
	if len(req) == 0 {
		return appendErr(resp, "empty request"), 0
	}
	op, body := req[0], req[1:]
	switch op {
	case opInfo:
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(r.n))
		return binary.AppendUvarint(resp, localCaps), 0
	case opShardInfo:
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(r.n))
		resp = binary.AppendUvarint(resp, 1)
		resp = binary.AppendUvarint(resp, 0)
		resp = append(resp, byte(core.ShardRange))
		return append(resp, r.fatBits...), 0
	case opQuery:
		count, k := binary.Uvarint(body)
		if k <= 0 {
			return appendErr(resp, "bad pair count"), 0
		}
		if count > uint64(r.maxBatch) {
			return appendErr(resp, "batch of %d pairs exceeds limit %d", count, r.maxBatch), 0
		}
		return r.processQuery(body[k:], resp, int(count), bufs, chans, tp)
	case opDist:
		if !r.replicas {
			return appendErr(resp, "distance queries require a replica fleet (this router fronts a %d-shard partition)", len(r.clients)), 0
		}
		count, k := binary.Uvarint(body)
		if k <= 0 {
			return appendErr(resp, "bad pair count"), 0
		}
		if count > uint64(r.maxBatch) {
			return appendErr(resp, "batch of %d pairs exceeds limit %d", count, r.maxBatch), 0
		}
		return r.processDist(body[k:], resp, int(count), bufs, chans, tp)
	default:
		return appendErr(resp, "unknown op %d", op), 0
	}
}

// processQuery decodes, routes, fans out and scatters one query batch.
func (r *Router) processQuery(body, resp []byte, count int, bufs *routerBufs, chans []chan *shardJob, tp *obs.SpanTally) (out []byte, queries int) {
	var tScatter time.Time
	if tp != nil {
		tScatter = time.Now()
	}
	jobs := bufs.jobs
	for s := range jobs {
		jobs[s].op = opQuery
		jobs[s].pairs = jobs[s].pairs[:0]
		jobs[s].idx = jobs[s].idx[:0]
		jobs[s].out = jobs[s].out[:0]
		jobs[s].err = nil
		jobs[s].traced = tp != nil
		if tp != nil {
			jobs[s].tr.Reset()
			jobs[s].tr.ID = tp.ID
		}
	}
	for i := 0; i < count; i++ {
		u, nu := binary.Uvarint(body)
		if nu <= 0 {
			return appendErr(resp, "pair %d: bad u", i), 0
		}
		body = body[nu:]
		v, nv := binary.Uvarint(body)
		if nv <= 0 {
			return appendErr(resp, "pair %d: bad v", i), 0
		}
		body = body[nv:]
		if u >= uint64(r.n) || v >= uint64(r.n) {
			return appendErr(resp, "pair %d (%d,%d): vertex out of range [0,%d)", i, u, v, r.n), 0
		}
		s := r.route(int(u), int(v))
		jobs[s].pairs = append(jobs[s].pairs, [2]int{int(u), int(v)})
		jobs[s].idx = append(jobs[s].idx, int32(i))
	}
	if len(body) != 0 {
		return appendErr(resp, "%d trailing bytes after %d pairs", len(body), count), 0
	}
	// Scatter phase: one channel send per active shard, answered concurrently
	// by the connection's workers, joined on the shared WaitGroup.
	active := 0
	for s := range jobs {
		if len(jobs[s].pairs) > 0 {
			active++
		}
	}
	var tUpstream time.Time
	if tp != nil {
		tUpstream = time.Now()
		tp.Add(obs.StageScatter, obs.HopSelf, int64(tUpstream.Sub(tScatter)))
	}
	bufs.wg.Add(active)
	for s := range jobs {
		if len(jobs[s].pairs) > 0 {
			chans[s] <- &jobs[s]
		}
	}
	bufs.wg.Wait()
	var tGather time.Time
	if tp != nil {
		tGather = time.Now()
		tp.Add(obs.StageUpstream, obs.HopSelf, int64(tGather.Sub(tUpstream)))
	}
	// A shed from one shard poisons only the sub-batches routed to it: the
	// downstream frame that needed the overloaded shard answers with a shed
	// frame (so the client sees ErrShed, a retryable refusal, not a generic
	// failure), while frames touching only live shards keep answering. A
	// non-shed error wins over a shed when both happen in one frame — it is
	// the more informative verdict.
	shed := false
	for s := range jobs {
		if err := jobs[s].err; err != nil {
			if errors.Is(err, ErrShed) {
				shed = true
				continue
			}
			return appendErr(resp, "shard %d (%d pairs): %v", s, len(jobs[s].pairs), err), 0
		}
	}
	if shed {
		return appendShed(resp), 0
	}
	// Gather phase: fold each shard's bit answers back into request order.
	resp = append(resp, statusOK)
	resp = binary.AppendUvarint(resp, uint64(count))
	bitsOff := len(resp)
	for i := 0; i < (count+7)/8; i++ {
		resp = append(resp, 0)
	}
	for s := range jobs {
		idx := jobs[s].idx
		for j, adj := range jobs[s].out {
			if adj {
				i := idx[j]
				resp[bitsOff+int(i)/8] |= 1 << (7 - uint(i)%8)
			}
		}
	}
	if tp != nil {
		for s := range jobs {
			if len(jobs[s].pairs) > 0 {
				mergeShardTrace(tp, &jobs[s].tr, uint8(s))
			}
		}
		tp.Add(obs.StageGather, obs.HopSelf, int64(time.Since(tGather)))
	}
	return resp, count
}

// processDist decodes, routes, fans out and gathers one distance batch on a
// replica fleet. The shape mirrors processQuery; only the routing rule
// (owner-of-u) and the response encoding (uvarint distances, scattered
// through a request-ordered int slice because uvarints have no fixed offsets)
// differ.
func (r *Router) processDist(body, resp []byte, count int, bufs *routerBufs, chans []chan *shardJob, tp *obs.SpanTally) (out []byte, queries int) {
	var tScatter time.Time
	if tp != nil {
		tScatter = time.Now()
	}
	jobs := bufs.jobs
	for s := range jobs {
		jobs[s].op = opDist
		jobs[s].pairs = jobs[s].pairs[:0]
		jobs[s].idx = jobs[s].idx[:0]
		jobs[s].dists = jobs[s].dists[:0]
		jobs[s].err = nil
		jobs[s].traced = tp != nil
		if tp != nil {
			jobs[s].tr.Reset()
			jobs[s].tr.ID = tp.ID
		}
	}
	for i := 0; i < count; i++ {
		u, nu := binary.Uvarint(body)
		if nu <= 0 {
			return appendErr(resp, "pair %d: bad u", i), 0
		}
		body = body[nu:]
		v, nv := binary.Uvarint(body)
		if nv <= 0 {
			return appendErr(resp, "pair %d: bad v", i), 0
		}
		body = body[nv:]
		if u >= uint64(r.n) || v >= uint64(r.n) {
			return appendErr(resp, "pair %d (%d,%d): vertex out of range [0,%d)", i, u, v, r.n), 0
		}
		s := r.ownerOf(int(u))
		jobs[s].pairs = append(jobs[s].pairs, [2]int{int(u), int(v)})
		jobs[s].idx = append(jobs[s].idx, int32(i))
	}
	if len(body) != 0 {
		return appendErr(resp, "%d trailing bytes after %d pairs", len(body), count), 0
	}
	active := 0
	for s := range jobs {
		if len(jobs[s].pairs) > 0 {
			active++
		}
	}
	var tUpstream time.Time
	if tp != nil {
		tUpstream = time.Now()
		tp.Add(obs.StageScatter, obs.HopSelf, int64(tUpstream.Sub(tScatter)))
	}
	bufs.wg.Add(active)
	for s := range jobs {
		if len(jobs[s].pairs) > 0 {
			chans[s] <- &jobs[s]
		}
	}
	bufs.wg.Wait()
	var tGather time.Time
	if tp != nil {
		tGather = time.Now()
		tp.Add(obs.StageUpstream, obs.HopSelf, int64(tGather.Sub(tUpstream)))
	}
	shed := false
	for s := range jobs {
		if err := jobs[s].err; err != nil {
			if errors.Is(err, ErrShed) {
				shed = true
				continue
			}
			return appendErr(resp, "replica %d (%d pairs): %v", s, len(jobs[s].pairs), err), 0
		}
	}
	if shed {
		return appendShed(resp), 0
	}
	all := bufs.dists[:0]
	for i := 0; i < count; i++ {
		all = append(all, 0)
	}
	for s := range jobs {
		idx := jobs[s].idx
		for j, d := range jobs[s].dists {
			all[idx[j]] = d
		}
	}
	bufs.dists = all
	resp = append(resp, statusOK)
	resp = binary.AppendUvarint(resp, uint64(count))
	for _, d := range all {
		resp = binary.AppendUvarint(resp, wireDist(d))
	}
	if tp != nil {
		for s := range jobs {
			if len(jobs[s].pairs) > 0 {
				mergeShardTrace(tp, &jobs[s].tr, uint8(s))
			}
		}
		tp.Add(obs.StageGather, obs.HopSelf, int64(time.Since(tGather)))
	}
	return resp, count
}

// RouterMetrics is the router's always-on instrumentation: the downstream
// side mirrors ServerMetrics under the adjserve_router_* names, and Upstreams
// carries the per-shard fan-out counters (one entry per shard, exposed with a
// "shard" label). The upstream clients' own metrics (frames, bytes, redials,
// in-flight) are registered alongside by Router.RegisterMetrics.
type RouterMetrics struct {
	ConnsActive obs.Gauge   // open downstream connections
	ConnsTotal  obs.Counter // downstream connections accepted
	ConnsShed   obs.Counter // downstream connections refused at the admission cap
	Frames      obs.Counter // downstream request frames answered
	ErrorFrames obs.Counter // downstream frames answered with an error status
	ShedFrames  obs.Counter // downstream frames answered with a shed status
	Queries     obs.Counter // adjacency pairs answered
	BytesIn     obs.Counter // downstream request bytes, frame headers included
	BytesOut    obs.Counter // downstream response bytes, frame headers included
	// FrameLatencyNs[batchClass] is the downstream frame handling time
	// (request fully read → response buffered) of successful query frames —
	// routing, fan-out, and scatter included.
	FrameLatencyNs [len(batchClassLabels)]obs.Histogram

	Upstreams []UpstreamMetrics // by shard index
}

// UpstreamMetrics counts one shard's slice of the fan-out.
type UpstreamMetrics struct {
	Batches   obs.Counter   // sub-batches fanned out to this shard
	Pairs     obs.Counter   // pairs routed to this shard
	Errors    obs.Counter   // sub-batches that failed (error frame or dead shard)
	Sheds     obs.Counter   // sub-batches the shard refused under load
	LatencyNs obs.Histogram // upstream round-trip per sub-batch
}

func (m *RouterMetrics) init(shards int) { m.Upstreams = make([]UpstreamMetrics, shards) }

// Register exposes the metrics on reg under the adjserve_router_* family
// names. Call once per registry (Router.RegisterMetrics also covers the
// upstream clients).
func (m *RouterMetrics) Register(reg *obs.Registry) {
	reg.Gauge("adjserve_router_connections_active", "Open downstream connections.", &m.ConnsActive)
	reg.Counter("adjserve_router_connections_total", "Downstream connections accepted.", &m.ConnsTotal)
	reg.Counter("adjserve_router_connections_shed_total", "Downstream connections refused at the admission cap.", &m.ConnsShed)
	reg.Counter("adjserve_router_frames_total", "Downstream request frames answered (all ops).", &m.Frames)
	reg.Counter("adjserve_router_error_frames_total", "Downstream frames answered with an error status.", &m.ErrorFrames)
	reg.Counter("adjserve_router_shed_frames_total", "Downstream frames answered with a shed status.", &m.ShedFrames)
	reg.Counter("adjserve_router_queries_total", "Adjacency pairs answered.", &m.Queries)
	reg.Counter("adjserve_router_bytes_in_total", "Downstream request bytes read, frame headers included.", &m.BytesIn)
	reg.Counter("adjserve_router_bytes_out_total", "Downstream response bytes written, frame headers included.", &m.BytesOut)
	for i := range m.FrameLatencyNs {
		reg.Histogram("adjserve_router_frame_latency_ns",
			"Downstream query-frame handling time in nanoseconds by batch-size class.",
			&m.FrameLatencyNs[i], "batch", batchClassLabels[i])
	}
	for s := range m.Upstreams {
		um := &m.Upstreams[s]
		shard := strconv.Itoa(s)
		reg.Counter("adjserve_router_upstream_batches_total", "Sub-batches fanned out, by shard.", &um.Batches, "shard", shard)
		reg.Counter("adjserve_router_upstream_pairs_total", "Pairs routed upstream, by shard.", &um.Pairs, "shard", shard)
		reg.Counter("adjserve_router_upstream_errors_total", "Failed upstream sub-batches, by shard.", &um.Errors, "shard", shard)
		reg.Counter("adjserve_router_upstream_sheds_total", "Upstream sub-batches refused under load, by shard.", &um.Sheds, "shard", shard)
		reg.Histogram("adjserve_router_upstream_latency_ns", "Upstream sub-batch round-trip in nanoseconds, by shard.", &um.LatencyNs, "shard", shard)
	}
}
