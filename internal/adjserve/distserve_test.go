package adjserve

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/schemes/distance"
)

func netListen(t testing.TB) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

// testDistEngines builds a pll and a bdist engine over the same power-law
// graph (degree layout, the serving default).
func testDistEngines(t testing.TB, n int, seed int64) map[string]*core.DistEngine {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	engines := make(map[string]*core.DistEngine, 2)
	pll, err := distance.PLLScheme{}.EncodeArena(g, 2, core.LayoutDegree)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := distance.Scheme{Alpha: 2.5, F: 3}.EncodeArena(g, 2, core.LayoutDegree)
	if err != nil {
		t.Fatal(err)
	}
	for kind, a := range map[string]*core.DistArena{"pll": pll, "bdist": bd} {
		eng, err := core.NewDistEngine(a)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		engines[kind] = eng
	}
	return engines
}

// startDistServer serves a distance-only server (no adjacency engine).
func startDistServer(t testing.TB, eng *core.DistEngine, maxBatch int) (string, *Server) {
	t.Helper()
	srv := NewServer(nil, maxBatch)
	srv.SetDistEngine(eng)
	ln, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

// TestDistLoopbackEquivalence: remote distance answers are identical to the
// in-process engine, across both schemes, batch sizes that exercise single-
// and multi-frame paths, and the streaming vs sorted-batch server modes.
func TestDistLoopbackEquivalence(t *testing.T) {
	engines := testDistEngines(t, 400, 3)
	for kind, eng := range engines {
		for _, sortedMin := range []int{0, 100} {
			srv := NewServer(nil, 0)
			srv.SetDistEngine(eng)
			srv.SetSortedBatchMin(sortedMin)
			ln, err := netListen(t)
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			for _, batch := range []int{1, 64, 4096} {
				c, err := Dial(ln.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				c.MaxBatch = batch
				pairs := randomPairs(eng.N(), 3000, int64(batch))
				want, err := eng.DistMany(pairs, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.DistMany(pairs, nil)
				if err != nil {
					t.Fatalf("%s sortedMin=%d batch=%d: %v", kind, sortedMin, batch, err)
				}
				for i := range want {
					w := want[i]
					if w > 254 {
						w = graph.Unreachable // wire clamp; unhit on log-diameter graphs
					}
					if got[i] != w {
						t.Fatalf("%s sortedMin=%d batch=%d: pair %d %v = %d, engine says %d",
							kind, sortedMin, batch, i, pairs[i], got[i], want[i])
					}
				}
				d, err := c.Dist(pairs[0][0], pairs[0][1])
				if err != nil || d != got[0] {
					t.Fatalf("%s: Dist = %d, %v; DistMany said %d", kind, d, err, got[0])
				}
				c.Close()
			}
			srv.Close()
		}
	}
}

// TestDistPlaneErrors: a frame for a plane the server does not hold gets an
// error frame (connection stays up), and info/shard-info work on a
// distance-only server so routers can admit it.
func TestDistPlaneErrors(t *testing.T) {
	engines := testDistEngines(t, 200, 5)
	addr, _ := startDistServer(t, engines["pll"], 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Adjacent(0, 1); err == nil || !strings.Contains(err.Error(), "no adjacency engine") {
		t.Errorf("opQuery on distance-only server: err = %v", err)
	}
	n, err := c.Info()
	if err != nil || n != engines["pll"].N() {
		t.Errorf("Info = %d, %v; want %d", n, err, engines["pll"].N())
	}
	si, err := c.ShardInfo()
	if err != nil {
		t.Fatal(err)
	}
	if si.N != n || si.Map.Count != 1 || si.Map.Index != 0 {
		t.Errorf("ShardInfo = %+v", si)
	}
	// Still alive after the error frame, and dist answers flow.
	if _, err := c.DistMany([][2]int{{0, 1}, {2, 3}}, nil); err != nil {
		t.Errorf("DistMany after error frame: %v", err)
	}

	// The converse: an adjacency-only server refuses distance frames.
	aAddr, _, _ := startServer(t, testEngine(t, 100, 7), 0)
	ac, err := Dial(aAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	var rerr *RemoteError
	if _, err := ac.Dist(0, 1); err == nil || !errors.As(err, &rerr) || !strings.Contains(err.Error(), "no distance engine") {
		t.Errorf("opDist on adjacency server: err = %v", err)
	}
	if _, err := ac.Adjacent(0, 1); err != nil {
		t.Errorf("Adjacent after error frame: %v", err)
	}
}

// TestRouterReplicaFleet: a router fronting R identical distance servers
// admits them as a replica fleet and answers distance batches identically to
// the engine; a sharded partition refuses distance frames with a clear error.
func TestRouterReplicaFleet(t *testing.T) {
	engines := testDistEngines(t, 400, 11)
	for kind, eng := range engines {
		addrs := make([]string, 3)
		for i := range addrs {
			addrs[i], _ = startDistServer(t, eng, 0)
		}
		addr, r := startRouter(t, addrs, 0)
		if !r.replicas {
			t.Fatalf("%s: fleet not admitted as replicas", kind)
		}
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		pairs := randomPairs(eng.N(), 4000, 17)
		want, err := eng.DistMany(pairs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DistMany(pairs, nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: pair %d %v = %d, engine says %d", kind, i, pairs[i], got[i], want[i])
			}
		}
		// Every replica saw traffic: owner-of-u spreads a uniform workload.
		for s := range addrs {
			if r.metrics.Upstreams[s].Pairs.Load() == 0 {
				t.Errorf("%s: replica %d answered no pairs", kind, s)
			}
		}
		c.Close()
	}

	// Partition fleet: distance frames are refused, adjacency still works.
	full, shards := shardEngines(t, 300, 2, core.ShardRange, 9)
	addrs, _ := startShardFleet(t, shards)
	addr, r := startRouter(t, addrs, 0)
	if r.replicas {
		t.Fatal("2-shard partition admitted as replicas")
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var rerr *RemoteError
	if _, err := c.Dist(0, 1); err == nil || !errors.As(err, &rerr) || !strings.Contains(err.Error(), "replica fleet") {
		t.Errorf("opDist on partition router: err = %v", err)
	}
	if _, err := c.AdjacentMany(randomPairs(full.N(), 100, 3), nil); err != nil {
		t.Errorf("adjacency after refused dist frame: %v", err)
	}
}

// TestRouterReplicaMismatch: replicas disagreeing on n are refused at
// handshake.
func TestRouterReplicaMismatch(t *testing.T) {
	engines := testDistEngines(t, 200, 13)
	small := testDistEngines(t, 100, 13)
	a1, _ := startDistServer(t, engines["pll"], 0)
	a2, _ := startDistServer(t, small["pll"], 0)
	if _, err := NewRouter([]string{a1, a2}, 0); err == nil || !strings.Contains(err.Error(), "serves 100 vertices") {
		t.Errorf("mismatched replica fleet: err = %v", err)
	}
}
