package adjserve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestBatchClass(t *testing.T) {
	cases := []struct {
		pairs int
		want  string
	}{
		{1, "1"}, {2, "2-64"}, {64, "2-64"}, {65, "65-1024"},
		{1024, "65-1024"}, {1025, "1025-4096"}, {4096, "1025-4096"},
		{4097, ">4096"}, {1 << 20, ">4096"},
	}
	for _, c := range cases {
		if got := batchClassLabels[batchClass(c.pairs)]; got != c.want {
			t.Errorf("batchClass(%d) = %q, want %q", c.pairs, got, c.want)
		}
	}
}

// scrapeSeries fetches url and returns the value of the exactly-named series
// (name including any label set, e.g. `adjserve_queries_total` or
// `labelstore_open_total{mode="mmap"}`).
func scrapeSeries(t *testing.T, url, series string) float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("series %s: bad value %q", series, rest)
		}
		return v
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, body)
	return 0
}

// TestServerMetricsE2E is the admin-endpoint acceptance check: a loopback
// server handles a concurrent batch storm while its metrics (and the engine's)
// are exposed through a real obs.AdminServer, and the scraped counters must
// equal the client-side ground truth exactly — every pair sent is one query
// counted, once.
func TestServerMetricsE2E(t *testing.T) {
	eng := testEngine(t, 300, 11)
	var em core.EngineMetrics
	eng.AttachMetrics(&em)
	addr, srv, _ := startServer(t, eng, 0)

	reg := obs.NewRegistry()
	srv.Metrics().Register(reg)
	em.Register(reg)
	srv.Traffic.Register(reg, "adjserve_traffic")
	admin := obs.NewAdminServer(reg)
	adminAddr, err := admin.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go admin.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		admin.Shutdown(ctx)
	}()
	metricsURL := fmt.Sprintf("http://%s/metrics", adminAddr)

	const (
		workers = 8
		batches = 20
		pairsN  = 64
	)
	var wg sync.WaitGroup
	scraped := make(chan struct{})
	go func() {
		// Scrape mid-storm: rendering must be safe against concurrent
		// observation, and the snapshot must be a plausible partial count.
		<-scraped
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := NewClient(addr)
			defer c.Close()
			for b := 0; b < batches; b++ {
				pairs := randomPairs(eng.N(), pairsN, int64(100*w+b))
				if _, err := c.AdjacentMany(pairs, nil); err != nil {
					t.Errorf("worker %d batch %d: %v", w, b, err)
					return
				}
				if w == 0 && b == batches/2 {
					mid := scrapeSeries(t, metricsURL, "adjserve_queries_total")
					if mid <= 0 || mid > workers*batches*pairsN {
						t.Errorf("mid-storm adjserve_queries_total = %v, want in (0, %d]", mid, workers*batches*pairsN)
					}
					close(scraped)
				}
			}
		}(w)
	}
	wg.Wait()

	const wantQueries = workers * batches * pairsN
	if got := scrapeSeries(t, metricsURL, "adjserve_queries_total"); got != wantQueries {
		t.Errorf("adjserve_queries_total = %v, want %d", got, wantQueries)
	}
	if got := scrapeSeries(t, metricsURL, "engine_queries_total"); got != wantQueries {
		t.Errorf("engine_queries_total = %v, want %d", got, wantQueries)
	}
	if got := scrapeSeries(t, metricsURL, "engine_batches_total"); got != workers*batches {
		t.Errorf("engine_batches_total = %v, want %d", got, workers*batches)
	}
	if got := scrapeSeries(t, metricsURL, "adjserve_frames_total"); got != workers*batches {
		t.Errorf("adjserve_frames_total = %v, want %d", got, workers*batches)
	}
	if got := scrapeSeries(t, metricsURL, "adjserve_traffic_fetches_total"); got != wantQueries {
		t.Errorf("adjserve_traffic_fetches_total = %v, want %d", got, wantQueries)
	}
	// The branch split partitions the queries.
	thin := scrapeSeries(t, metricsURL, "engine_branch_thin_total")
	fat := scrapeSeries(t, metricsURL, "engine_branch_fat_total")
	self := scrapeSeries(t, metricsURL, "engine_branch_self_total")
	if thin+fat+self != wantQueries {
		t.Errorf("branch split %v+%v+%v != %d", thin, fat, self, wantQueries)
	}
	if got := scrapeSeries(t, metricsURL, "adjserve_error_frames_total"); got != 0 {
		t.Errorf("adjserve_error_frames_total = %v before any error", got)
	}
	if got := scrapeSeries(t, metricsURL, "adjserve_connections_total"); got != workers {
		t.Errorf("adjserve_connections_total = %v, want %d", got, workers)
	}
	if in := scrapeSeries(t, metricsURL, "adjserve_bytes_in_total"); in <= 0 {
		t.Errorf("adjserve_bytes_in_total = %v, want > 0", in)
	}
	if out := scrapeSeries(t, metricsURL, "adjserve_bytes_out_total"); out <= 0 {
		t.Errorf("adjserve_bytes_out_total = %v, want > 0", out)
	}
	// Frame latency lands in the histogram for the exact batch class driven.
	if got := scrapeSeries(t, metricsURL, `adjserve_frame_latency_ns_count{batch="2-64"}`); got != workers*batches {
		t.Errorf(`frame_latency count{batch="2-64"} = %v, want %d`, got, workers*batches)
	}

	// An out-of-range vertex produces an error frame, visible in the scrape,
	// and charges no query.
	c := NewClient(addr)
	defer c.Close()
	if _, err := c.Adjacent(eng.N()+5, 0); err == nil {
		t.Fatal("out-of-range query succeeded")
	}
	if got := scrapeSeries(t, metricsURL, "adjserve_error_frames_total"); got != 1 {
		t.Errorf("adjserve_error_frames_total = %v after one error frame, want 1", got)
	}
	if got := scrapeSeries(t, metricsURL, "adjserve_queries_total"); got != wantQueries {
		t.Errorf("adjserve_queries_total = %v after error frame, want unchanged %d", got, wantQueries)
	}

	// All calls answered: nothing is in flight.
	if got := srv.Metrics().ConnsActive.Load(); got < 1 {
		t.Errorf("ConnsActive = %d with open clients, want >= 1", got)
	}
	cl := NewClient(addr)
	cl.Close()
}

// TestClientDialBounded: a client pointed at a dead address gives up after
// MaxDialAttempts with the last dial error, and the attempt/failure counters
// record exactly the configured cap.
func TestClientDialBounded(t *testing.T) {
	// A listener opened and closed immediately yields an address that
	// reliably refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr)
	c.MaxDialAttempts = 3
	c.RedialBackoff = time.Millisecond
	_, err = c.AdjacentMany([][2]int{{0, 1}}, nil)
	if err == nil {
		t.Fatal("call to dead server succeeded")
	}
	if !strings.Contains(err.Error(), "3 consecutive failures") {
		t.Errorf("error %q does not mention the attempt cap", err)
	}
	m := c.Metrics()
	if got := m.DialAttempts.Load(); got != 3 {
		t.Errorf("DialAttempts = %d, want 3", got)
	}
	if got := m.DialFailures.Load(); got != 3 {
		t.Errorf("DialFailures = %d, want 3", got)
	}
	if got := m.Redials.Load(); got != 0 {
		t.Errorf("Redials = %d for a never-connected client, want 0", got)
	}

	// Dial surfaces the same bounded policy eagerly.
	if _, err := Dial(addr); err == nil {
		t.Fatal("Dial of dead server succeeded")
	}
}

// TestClientRedialCounted: a reconnect after a lost connection counts as a
// redial; the first connection does not.
func TestClientRedialCounted(t *testing.T) {
	eng := testEngine(t, 50, 2)
	addr, _, _ := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Metrics().Redials.Load(); got != 0 {
		t.Errorf("Redials = %d after first dial, want 0", got)
	}
	if _, err := c.AdjacentMany([][2]int{{0, 1}}, nil); err != nil {
		t.Fatal(err)
	}
	c.Close() // drop the connection; the next call must redial
	if _, err := c.AdjacentMany([][2]int{{1, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Redials.Load(); got != 1 {
		t.Errorf("Redials = %d after reconnect, want 1", got)
	}
	if got := c.Metrics().InFlight.Load(); got != 0 {
		t.Errorf("InFlight = %d at rest, want 0", got)
	}
}
