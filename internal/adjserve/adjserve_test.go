package adjserve

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// testEngine labels a power-law graph and builds the serving engine.
func testEngine(t testing.TB, n int, seed int64) *core.QueryEngine {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// startServer serves eng on a loopback listener and returns the address, the
// server, and a channel carrying Serve's return value.
func startServer(t testing.TB, eng *core.QueryEngine, maxBatch int) (string, *Server, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, maxBatch)
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv, served
}

func randomPairs(n, count int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int, count)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return pairs
}

// TestLoopbackEquivalence is the e2e acceptance check: remote batch answers
// are bit-for-bit identical to the in-process engine on the same labeling,
// across batch sizes that exercise single-frame, multi-frame and sub-byte
// bit-vector paths.
func TestLoopbackEquivalence(t *testing.T) {
	eng := testEngine(t, 400, 3)
	addr, srv, _ := startServer(t, eng, 0)
	for _, batch := range []int{1, 3, 64, 4096} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		c.MaxBatch = batch
		pairs := randomPairs(eng.N(), 5000, int64(batch))
		want, err := eng.AdjacentMany(pairs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.AdjacentMany(pairs, nil)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d answers, want %d", batch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: pair %d %v: got %v, want %v", batch, i, pairs[i], got[i], want[i])
			}
		}
		c.Close()
	}
	if st := srv.Traffic.Stats(); st.Fetches != 4*5000 {
		t.Errorf("served %d queries, want %d", st.Fetches, 4*5000)
	}
}

// TestSortedBatchModeEquivalence: a server with the offset-sorted batch path
// enabled answers bit-for-bit like the streaming server, both below the
// threshold (frames stream) and above it (frames sort); an out-of-range pair
// in a sorted frame still produces an error frame, not a dead connection.
func TestSortedBatchModeEquivalence(t *testing.T) {
	eng := testEngine(t, 400, 5)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, 0)
	srv.SetSortedBatchMin(100)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, batch := range []int{64, 4096} { // below and above the threshold
		c.MaxBatch = batch
		pairs := randomPairs(eng.N(), 5000, int64(batch))
		want, err := eng.AdjacentMany(pairs, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.AdjacentMany(pairs, nil)
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: pair %d %v: got %v, want %v", batch, i, pairs[i], got[i], want[i])
			}
		}
	}
	// Error inside a sorted frame: whole batch fails with a RemoteError,
	// connection stays usable.
	bad := randomPairs(eng.N(), 500, 99)
	bad[250] = [2]int{eng.N() + 7, 0}
	if _, err := c.AdjacentMany(bad, nil); err == nil {
		t.Fatal("out-of-range pair in sorted frame did not error")
	} else if !errors.As(err, new(*RemoteError)) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if adj, err := c.Adjacent(0, 1); err != nil {
		t.Fatalf("connection dead after error frame: %v", err)
	} else if want, _ := eng.Adjacent(0, 1); adj != want {
		t.Fatal("wrong answer after error frame")
	}
}

func TestSingleQueryAndInfo(t *testing.T) {
	eng := testEngine(t, 120, 9)
	addr, _, _ := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.Info()
	if err != nil || n != eng.N() {
		t.Fatalf("Info = %d, %v; want %d", n, err, eng.N())
	}
	for u := 0; u < 30; u++ {
		for v := u; v < 30; v++ {
			want, werr := eng.Adjacent(u, v)
			got, gerr := c.Adjacent(u, v)
			if werr != nil || gerr != nil || got != want {
				t.Fatalf("(%d,%d): remote %v/%v, local %v/%v", u, v, got, gerr, want, werr)
			}
		}
	}
}

// TestOversizedBatchErrorFrame: a batch above the server's limit is rejected
// with an error frame that poisons only that request — the connection
// survives and later batches work.
func TestOversizedBatchErrorFrame(t *testing.T) {
	eng := testEngine(t, 100, 5)
	addr, _, _ := startServer(t, eng, 8)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.MaxBatch = 64 // client happily frames more than the server admits
	_, err = c.AdjacentMany(randomPairs(eng.N(), 16, 1), nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("oversized batch: err = %v, want RemoteError", err)
	}
	// Same connection, admissible batch: must succeed.
	pairs := randomPairs(eng.N(), 8, 2)
	want, _ := eng.AdjacentMany(pairs, nil)
	got, err := c.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatalf("follow-up batch after error frame: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d diverged after error frame", i)
		}
	}
}

// TestOutOfRangeVertexErrorFrame: engine-level errors surface as
// RemoteErrors without killing the connection.
func TestOutOfRangeVertexErrorFrame(t *testing.T) {
	eng := testEngine(t, 50, 2)
	addr, _, _ := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Adjacent(0, eng.N()); err == nil {
		t.Fatal("out-of-range vertex answered without error")
	} else {
		var remote *RemoteError
		if !errors.As(err, &remote) {
			t.Fatalf("err = %v, want RemoteError", err)
		}
	}
	if _, err := c.Adjacent(0, 1); err != nil {
		t.Fatalf("connection unusable after range error: %v", err)
	}
}

// TestClientReconnect: a server restart kills in-flight connections; the
// client's next call after the failure redials transparently and answers
// correctly against the new server.
func TestClientReconnect(t *testing.T) {
	eng := testEngine(t, 150, 7)
	addr, srv, served := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Adjacent(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve returned %v, want ErrClosed", err)
	}
	// Restart on the same address.
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv2 := NewServer(eng, 0)
	go srv2.Serve(ln)
	defer srv2.Close()
	// The old connection is dead; the call that discovers that may fail.
	// Every later call must succeed via the redial path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = c.Adjacent(3, 4); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
	}
	pairs := randomPairs(eng.N(), 200, 4)
	want, _ := eng.AdjacentMany(pairs, nil)
	got, err := c.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d diverged after reconnect", i)
		}
	}
}

// TestGracefulClose: Close drains — Serve returns ErrClosed, double Close is
// fine, and a Serve attempt after Close refuses.
func TestGracefulClose(t *testing.T) {
	eng := testEngine(t, 80, 1)
	addr, srv, served := startServer(t, eng, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Adjacent(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve = %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentClients hammers one engine through one shared pipelining
// client AND per-goroutine clients simultaneously; run under -race this is
// the data-race check for the whole serving path.
func TestConcurrentClients(t *testing.T) {
	eng := testEngine(t, 300, 11)
	addr, _, _ := startServer(t, eng, 0)
	shared, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	shared.MaxBatch = 100 // force multi-frame pipelining
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := shared
			if w%2 == 0 {
				own, err := Dial(addr)
				if err != nil {
					errs[w] = err
					return
				}
				defer own.Close()
				own.MaxBatch = 100
				c = own
			}
			for round := 0; round < 20; round++ {
				pairs := randomPairs(eng.N(), 257, int64(w*1000+round))
				want, err := eng.AdjacentMany(pairs, nil)
				if err != nil {
					errs[w] = err
					return
				}
				got, err := c.AdjacentMany(pairs, nil)
				if err != nil {
					errs[w] = err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						errs[w] = errors.New("answer diverged under concurrency")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
