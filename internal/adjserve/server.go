package adjserve

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/peernet"
)

// Server answers adjacency batches from a shared read-only QueryEngine. The
// engine is immutable, so any number of connection goroutines query it with
// no synchronization at all; the only shared mutable state is the connection
// registry and the traffic counters. Request and response buffers are
// sync.Pool-backed and reused across every frame of a connection, so the
// steady-state frame loop performs zero heap allocations.
type Server struct {
	engine   *core.QueryEngine
	dist     *core.DistEngine
	maxBatch int

	// sortedMin, when > 0, routes frames of at least that many pairs through
	// core.AdjacentManySorted: pairs are decoded up front, probed in
	// arena-offset order, and the answers scattered back into request order.
	// 0 keeps the streaming per-pair path. Set before Serve; never mutated
	// under traffic.
	sortedMin int

	// maxConns, when > 0, caps concurrently open client connections: an
	// accept past the cap is answered with one shed frame and closed, so a
	// protocol-speaking client sees ErrShed on its next call instead of a
	// bare RST. Set before Serve.
	maxConns int

	// shedDepth, when > 0, is the aggregate queued-frame bound: while more
	// than shedDepth frames are read-but-unflushed across all connections,
	// new query/dist frames are answered with shed frames (one buffered byte,
	// no engine work) until the depth drains below shedDepth/2. The hysteresis
	// keeps the server from flapping at the boundary; info and shard-info
	// frames are always answered so handshakes survive overload. Set before
	// Serve.
	shedDepth int

	// maxPendingResp, when > 0, caps responses coalesced into a connection's
	// write buffer before a forced Flush. Coalescing amortizes one syscall
	// over a read-burst of pipelined frames; the cap bounds both the latency a
	// buffered answer can sit unflushed and — because Flush blocks when the
	// client stops reading — the per-connection buffered state. 0 selects
	// DefaultMaxPendingResponses.
	maxPendingResp int

	// shedding is the hysteresis latch (see shedDepth); read once per frame.
	// The aggregate queued-frame depth itself lives in metrics.QueuedFrames:
	// frames whose payload has been read but whose response has not yet been
	// flushed, across every connection. Because responses coalesce per
	// read-burst, a connection sitting on a pipelined burst charges the whole
	// burst to the gauge — the queue the shedding bound watches.
	shedding atomic.Bool

	// draining is read by every connection's frame loop once per frame, so it
	// is an atomic rather than a field under mu (the mutex protects only the
	// connection registry now).
	draining atomic.Bool

	// Traffic accounts wire bytes, frames (as message pairs) and answered
	// queries in the same units as the peernet simulation.
	Traffic peernet.Traffic

	// metrics is the always-on Prometheus-facing instrumentation; see
	// ServerMetrics for what the frame loop charges and why it stays off
	// the per-query path.
	metrics ServerMetrics

	// sink, when non-nil, collects completed traces: frames that arrived
	// with a trace context, frames self-selected by the sink's sampler, and
	// frames over the slow threshold. Set before Serve; a nil sink still
	// echoes trace blocks to remotely-traced frames (the capability is
	// protocol-level, collection is per-daemon policy).
	sink *obs.TraceSink

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// DefaultMaxPendingResponses is the per-connection coalescing bound when
// Server.SetMaxPendingResponses is unset: how many answered frames may sit in
// the write buffer before the server forces a Flush.
const DefaultMaxPendingResponses = 64

// NewServer builds a server over an engine. maxBatch caps pairs per frame
// (<= 0 selects DefaultMaxBatch); larger batches are rejected with an error
// frame, not a dropped connection. engine may be nil for a distance-only
// server (SetDistEngine must then install the distance engine before Serve);
// query frames on a plane the server does not hold get an error frame.
func NewServer(engine *core.QueryEngine, maxBatch int) *Server {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	return &Server{engine: engine, maxBatch: maxBatch, conns: make(map[net.Conn]struct{})}
}

// SetDistEngine installs the distance engine answering op=dist frames. A
// server may hold either plane or both; the engines must agree on n when both
// are present. Must be called before Serve; never mutated under traffic.
func (s *Server) SetDistEngine(e *core.DistEngine) {
	s.dist = e
}

// Metrics returns the server's instrumentation, for registering on an
// obs.Registry (srv.Metrics().Register(reg)) or reading in tests.
func (s *Server) Metrics() *ServerMetrics { return &s.metrics }

// SetSortedBatchMin opts frames of >= min pairs into offset-sorted probing
// (core.AdjacentManySorted); min <= 0 disables it. Answers are identical to
// the streaming path — only the probe order changes. Must be called before
// Serve.
func (s *Server) SetSortedBatchMin(min int) { s.sortedMin = min }

// SetMaxConns caps concurrently open client connections; n <= 0 means
// unlimited. A connection accepted past the cap is answered with a single
// shed frame and closed (counted in ConnsShed), so load generators and
// routers observe ErrShed rather than a connection reset. Must be called
// before Serve.
func (s *Server) SetMaxConns(n int) { s.maxConns = n }

// SetShedDepth arms load shedding: while more than depth frames are in flight
// across all connections (read but not yet answered), query and dist frames
// are answered with shed frames until the depth drains below depth/2.
// depth <= 0 disables shedding. Must be called before Serve.
func (s *Server) SetShedDepth(depth int) { s.shedDepth = depth }

// SetMaxPendingResponses caps responses coalesced per connection between
// flushes; n <= 0 selects DefaultMaxPendingResponses. Must be called before
// Serve.
func (s *Server) SetMaxPendingResponses(n int) { s.maxPendingResp = n }

// SetTraceSink installs the trace collection point (sampling policy, trace
// ring, slow-frame log). nil disables collection; trace blocks are still
// echoed to traced requests. Must be called before Serve.
func (s *Server) SetTraceSink(sink *obs.TraceSink) { s.sink = sink }

// Shedding reports whether the server is currently refusing query frames
// under the SetShedDepth bound — the signal /readyz surfaces so load
// balancers route around an overloaded replica while it drains. Like the
// frame loop, it releases the latch once the queued depth has drained below
// half the bound, so readiness recovers even if the storm stops dead and no
// further frame re-evaluates the latch.
func (s *Server) Shedding() bool {
	if !s.shedding.Load() {
		return false
	}
	if s.metrics.QueuedFrames.Load() <= int64(s.shedDepth/2) {
		s.shedding.Store(false)
		return false
	}
	return true
}

// Serve accepts connections on ln until Close, answering each connection's
// frames in order on its own goroutine. It returns ErrClosed after Close, or
// the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		// Close raced ahead of us and never saw this listener; close it here
		// or it would keep accepting handshakes into the kernel backlog that
		// no goroutine will ever answer.
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		if s.maxConns > 0 && len(s.conns) >= s.maxConns {
			// Admission control: the cap protects the connections already
			// admitted. The rejection is answered off the accept loop so a
			// slow or dead peer cannot stall further accepts.
			s.mu.Unlock()
			s.metrics.ConnsShed.Inc()
			go refuseConn(c)
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(c)
	}
}

// refuseConn answers an over-cap connection with one shed frame and closes
// it. It waits for (and discards) the peer's first request before answering,
// so the shed frame is always matched FIFO to a call the client actually made
// — an unsolicited response would make the client condemn the whole
// connection as protocol corruption instead of failing one call with ErrShed.
// A peer that never writes just sees the close after the deadline.
func refuseConn(c net.Conn) {
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	c.SetReadDeadline(deadline)
	c.SetWriteDeadline(deadline)
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[:]))
	if plen > maxFramePayload {
		return
	}
	if _, err := io.CopyN(io.Discard, c, plen); err != nil {
		return
	}
	shed := appendShed(nil)
	fhdr := frameHeader(len(shed))
	if _, err := c.Write(fhdr[:]); err != nil {
		return
	}
	c.Write(shed)
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close drains the server: the listener stops accepting, every connection
// finishes the frame it is answering (pending responses are flushed), and
// Close returns once all connection goroutines have exited. Frames a
// pipelining client had buffered beyond the in-flight one are dropped with
// the connection; clients recover by reconnecting. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.draining.CompareAndSwap(false, true) {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	ln := s.ln
	// Wake handlers blocked in a read; they observe draining and exit after
	// flushing whatever they already answered.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// connBuffers is the pooled per-connection scratch: request and response
// payload buffers plus the sorted-batch working set (decoded pairs, answer
// slice, sort keys), all growing to the connection's working-set size and
// then reused for every subsequent frame.
type connBuffers struct {
	req, resp []byte
	pairs     [][2]int
	res       []bool
	dists     []int
	sc        core.BatchScratch
}

var bufPool = sync.Pool{New: func() any { return new(connBuffers) }}

// handle runs one connection's frame loop.
func (s *Server) handle(c net.Conn) {
	s.metrics.ConnsTotal.Inc()
	s.metrics.ConnsActive.Add(1)
	defer func() {
		s.metrics.ConnsActive.Add(-1)
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
		s.wg.Done()
	}()
	bufs := bufPool.Get().(*connBuffers)
	defer bufPool.Put(bufs)
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	maxPending := s.maxPendingResp
	if maxPending <= 0 {
		maxPending = DefaultMaxPendingResponses
	}
	// Both header arrays escape (their slices reach the net.Conn interface
	// through bufio's large-write bypass), so they live here — one allocation
	// per connection, not one per frame.
	var hdr, fhdr [frameHeaderLen]byte
	// pending counts responses coalesced into bw since the last Flush: the
	// flush below fires once per read-burst rather than once per frame, and
	// maxPending bounds how long an answer can sit buffered (and, because a
	// full socket makes Flush block, how far the loop can read ahead of a
	// client that stopped reading — backpressure, not unbounded buffering).
	pending := 0
	// queued is this connection's contribution to the aggregate QueuedFrames
	// gauge: frames whose payload has been read but whose response has not yet
	// been flushed. Charging the whole unflushed burst (rather than just the
	// frame inside process()) is what makes the gauge a real queue-depth
	// signal — a connection sitting on eight pipelined frames is eight frames
	// of backlog even though only one is on the CPU.
	queued := 0
	release := func() {
		if queued > 0 {
			s.metrics.QueuedFrames.Add(int64(-queued))
			queued = 0
		}
	}
	defer release()
	// burstStart anchors the queue-wait stage: it is reset whenever a header
	// read actually blocked (the connection was idle), so a frame's queue
	// time is how long it sat buffered behind earlier frames of the same
	// pipelined read-burst — zero for unpipelined traffic.
	var burstStart time.Time
	for {
		if s.draining.Load() {
			s.flushFinal(bw)
			return
		}
		waiting := br.Buffered() >= frameHeaderLen
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// EOF (client went away), the Close wake-up deadline, or a torn
			// header; nothing more to answer either way.
			s.flushFinal(bw)
			return
		}
		tHdr := time.Now()
		if !waiting {
			burstStart = tHdr
		}
		plen := int(binary.LittleEndian.Uint32(hdr[:]))
		var resp []byte
		queries := 0
		if plen > maxFramePayload {
			// The framing itself is still trustworthy, so skip the payload
			// and answer with an error frame instead of dropping the
			// connection.
			if _, err := io.CopyN(io.Discard, br, int64(plen)); err != nil {
				return
			}
			resp = appendErr(bufs.resp[:0], "frame of %d bytes exceeds limit %d", plen, maxFramePayload)
			s.metrics.ErrorFrames.Inc()
		} else {
			if cap(bufs.req) < plen {
				bufs.req = make([]byte, plen)
			}
			req := bufs.req[:plen]
			if _, err := io.ReadFull(br, req); err != nil {
				return
			}
			// The queued-frame window opens once the payload is fully read and
			// closes when the response is flushed (see release); summed over
			// connections it is the depth the shedding bound compares against.
			s.metrics.QueuedFrames.Add(1)
			queued++
			tPayload := time.Now()
			resp, queries = s.serveFrame(req, bufs, tPayload,
				int64(tPayload.Sub(tHdr)), int64(tHdr.Sub(burstStart)))
		}
		// Frame-granular accounting: a few uncontended atomic adds per
		// frame, amortized over the whole batch — the per-query serving path
		// stays untouched.
		s.metrics.Frames.Inc()
		s.metrics.BytesIn.Add(int64(frameHeaderLen + plen))
		s.metrics.BytesOut.Add(int64(frameHeaderLen + len(resp)))
		bufs.resp = resp[:0]
		fhdr = frameHeader(len(resp))
		if _, err := bw.Write(fhdr[:]); err != nil {
			s.metrics.WriteErrors.Inc()
			return
		}
		if _, err := bw.Write(resp); err != nil {
			s.metrics.WriteErrors.Inc()
			return
		}
		s.Traffic.Charge(2, int64(2*frameHeaderLen+plen+len(resp)), int64(queries))
		pending++
		// Pipelining-aware flush: hold responses while more complete frames
		// are already buffered (one Flush per read-burst), but never hold
		// more than maxPending answers; flush before the next read could
		// block. A flush failure means the peer is gone — close now rather
		// than discovering it one sticky-errored write later.
		if br.Buffered() < frameHeaderLen || pending >= maxPending {
			if err := bw.Flush(); err != nil {
				s.metrics.WriteErrors.Inc()
				return
			}
			pending = 0
			release()
		}
	}
}

// flushFinal is the end-of-connection flush (drain or read error): its
// failure cannot change control flow — the loop is returning either way —
// but it is still counted, so dead-peer writes show up in /metrics instead
// of vanishing.
func (s *Server) flushFinal(bw *bufio.Writer) {
	if err := bw.Flush(); err != nil {
		s.metrics.WriteErrors.Inc()
	}
}

// shouldShed is the per-frame admission decision for query work, one or two
// atomic loads on the hot path. The latch trips when the aggregate queued-
// frame depth passes shedDepth and releases only once the depth has drained
// to half that, so the server does not flap between serving and shedding at
// the boundary.
func (s *Server) shouldShed() bool {
	depth := s.shedDepth
	if depth <= 0 {
		return false
	}
	// The frame asking is itself inside the queued-frame window, so subtract
	// it: the decision is about the *other* work already queued. Without the
	// exclusion a shedDepth of 1 can never release — the asking frame alone
	// holds the gauge above depth/2 = 0 forever.
	q := s.metrics.QueuedFrames.Load() - 1
	if s.shedding.Load() {
		if q <= int64(depth/2) {
			s.shedding.Store(false)
			return false
		}
		return true
	}
	if q > int64(depth) {
		s.shedding.Store(true)
		s.metrics.ShedEvents.Inc()
		return true
	}
	return false
}

// traceCtx is the per-frame trace state serveFrame keeps on the stack:
// zero-valued (two bools, a word) when the frame is untraced and unsampled.
type traceCtx struct {
	remote bool   // request carried a trace context; echo a trace block
	sample bool   // self-selected by the sink's sampler; deposit locally
	id     uint64 // propagated or freshly generated trace id
}

// serveFrame answers one fully-read request payload exactly as the frame
// loop sees it: strip the optional trace context, process the request,
// charge the per-status metrics, and — for traced, sampled or slow frames —
// append the response trace block and deposit the completed trace into the
// sink. start is the instant the payload finished reading; readNs and
// queueNs are the frame's already-measured read and queue-wait stages.
//
// The untraced, unsampled path through here performs zero heap allocations
// (CI-asserted by BenchmarkServeTraceDisabled): the trace state is a stack
// struct, and the SpanTally/Trace records are only materialized inside the
// capture branch.
func (s *Server) serveFrame(req []byte, bufs *connBuffers, start time.Time, readNs, queueNs int64) ([]byte, int) {
	var tc traceCtx
	if len(req) > traceIDLen && req[0]&opTraceFlag != 0 {
		// Strip the trace context in place: overwrite the last id byte with
		// the bare op and re-slice, so process() sees the untraced request
		// shape and its signature stays untouched.
		tc.remote = true
		tc.id = binary.LittleEndian.Uint64(req[1 : 1+traceIDLen])
		req[traceIDLen] = req[0] &^ opTraceFlag
		req = req[traceIDLen:]
	}
	var op byte
	if len(req) > 0 {
		op = req[0]
	}
	sink := s.sink
	if !tc.remote && sink.SampleNow() {
		tc.sample = true
		tc.id = obs.NewTraceID()
	}
	resp, queries := s.process(req, bufs)
	probeNs := int64(time.Since(start))
	switch {
	case len(resp) > 0 && resp[0] == statusErr:
		s.metrics.ErrorFrames.Inc()
	case len(resp) > 0 && resp[0] == statusShed:
		s.metrics.ShedFrames.Inc()
	case queries > 0:
		s.metrics.Queries.Add(int64(queries))
		h := &s.metrics.FrameLatencyNs[batchClass(queries)]
		if tc.id != 0 {
			h.ObserveExemplar(probeNs, tc.id)
		} else {
			h.Observe(probeNs)
		}
		s.observeProbe(op, probeNs, tc.id)
	}
	total := queueNs + readNs + probeNs
	slowNs := sink.SlowThreshold()
	slow := slowNs > 0 && total > slowNs
	if tc.remote || tc.sample || slow {
		var t obs.SpanTally
		t.ID = tc.id
		t.Add(obs.StageQueue, obs.HopSelf, queueNs)
		t.Add(obs.StageRead, obs.HopSelf, readNs)
		t.Add(obs.StageProbe, obs.HopSelf, probeNs)
		if tc.remote && len(resp) > 0 && resp[0] == statusOK {
			// Echo the stages to the caller. Error and shed responses stay
			// byte-identical to the untraced protocol.
			resp[0] |= opTraceFlag
			resp = appendTraceTally(resp, &t)
		}
		if t.ID == 0 {
			t.ID = obs.NewTraceID() // slow-captured but never sampled
		}
		var tr obs.Trace
		tr.Fill(&t, op, queries, total)
		if tc.remote || tc.sample {
			sink.Deposit(&tr)
		}
		if slow {
			sink.DepositSlow(&tr)
		}
	}
	return resp, queries
}

// observeProbe charges a successful frame's probe time to the serving
// engine's probe histogram, exemplar-stamped when the frame was traced.
func (s *Server) observeProbe(op byte, ns int64, traceID uint64) {
	switch op {
	case opQuery:
		if s.engine != nil {
			s.engine.ObserveProbe(ns, traceID)
		}
	case opDist:
		if s.dist != nil {
			s.dist.ObserveProbe(ns, traceID)
		}
	}
}

// process answers one request payload, appending the response payload to
// bufs.resp (reused from its start) and returning it along with the number of
// adjacency queries answered. Malformed requests and engine errors produce
// error frames; only I/O can kill the connection.
func (s *Server) process(req []byte, bufs *connBuffers) (out []byte, queries int) {
	resp := bufs.resp[:0]
	if len(req) == 0 {
		return appendErr(resp, "empty request"), 0
	}
	op, body := req[0], req[1:]
	switch op {
	case opInfo:
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(s.servedN()))
		// Trailing capability advertisement (see the package doc): clients
		// that predate capabilities stop reading after the vertex count.
		return binary.AppendUvarint(resp, localCaps), 0
	case opShardInfo:
		if s.engine == nil {
			// Distance-only server: the trivial 1-shard map with an empty fat
			// set, so a router can admit it into a replica fleet.
			n := s.servedN()
			resp = append(resp, statusOK)
			resp = binary.AppendUvarint(resp, uint64(n))
			resp = binary.AppendUvarint(resp, 1)
			resp = binary.AppendUvarint(resp, 0)
			resp = append(resp, byte(core.ShardRange))
			for i := 0; i < (n+7)/8; i++ {
				resp = append(resp, 0)
			}
			return resp, 0
		}
		// An unsharded engine reports the trivial 1-shard map, so a router can
		// front plain servers with the same handshake.
		m, ok := s.engine.Shard()
		if !ok {
			m = core.ShardMap{Count: 1, Index: 0, Fn: core.ShardRange}
		}
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, uint64(s.engine.N()))
		resp = binary.AppendUvarint(resp, uint64(m.Count))
		resp = binary.AppendUvarint(resp, uint64(m.Index))
		resp = append(resp, byte(m.Fn))
		return s.engine.AppendFatBits(resp), 0
	case opDist:
		// Shed before touching the payload: under overload the whole point is
		// that a refused frame costs one status byte, not a batch of probes.
		// Info and shard-info frames are never shed — they are O(1) and
		// routers need the handshake to survive an overloaded fleet.
		if s.shouldShed() {
			return appendShed(resp), 0
		}
		if s.dist == nil {
			return appendErr(resp, "server holds no distance engine"), 0
		}
		count, n := binary.Uvarint(body)
		if n <= 0 {
			return appendErr(resp, "bad pair count"), 0
		}
		if count > uint64(s.maxBatch) {
			return appendErr(resp, "batch of %d pairs exceeds limit %d", count, s.maxBatch), 0
		}
		body = body[n:]
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, count)
		if s.sortedMin > 0 && int(count) >= s.sortedMin {
			return s.processDistSorted(body, resp, int(count), bufs)
		}
		var t core.QueryTally
		for i := 0; i < int(count); i++ {
			u, nu := binary.Uvarint(body)
			if nu <= 0 {
				return appendErr(resp[:0], "pair %d: bad u", i), 0
			}
			body = body[nu:]
			v, nv := binary.Uvarint(body)
			if nv <= 0 {
				return appendErr(resp[:0], "pair %d: bad v", i), 0
			}
			body = body[nv:]
			d, err := s.dist.DistTallied(int(u), int(v), &t)
			if err != nil {
				s.dist.FlushTally(&t, 0)
				return appendErr(resp[:0], "pair %d (%d,%d): %v", i, u, v, err), 0
			}
			resp = binary.AppendUvarint(resp, wireDist(d))
		}
		if len(body) != 0 {
			s.dist.FlushTally(&t, 0)
			return appendErr(resp[:0], "%d trailing bytes after %d pairs", len(body), count), 0
		}
		s.dist.FlushTally(&t, int(count))
		return resp, int(count)
	case opQuery:
		if s.shouldShed() {
			return appendShed(resp), 0
		}
		if s.engine == nil {
			return appendErr(resp, "server holds no adjacency engine"), 0
		}
		count, n := binary.Uvarint(body)
		if n <= 0 {
			return appendErr(resp, "bad pair count"), 0
		}
		if count > uint64(s.maxBatch) {
			return appendErr(resp, "batch of %d pairs exceeds limit %d", count, s.maxBatch), 0
		}
		body = body[n:]
		resp = append(resp, statusOK)
		resp = binary.AppendUvarint(resp, count)
		bitsOff := len(resp)
		for i := 0; i < int(count+7)/8; i++ {
			resp = append(resp, 0)
		}
		if s.sortedMin > 0 && int(count) >= s.sortedMin {
			return s.processSorted(body, resp, bitsOff, int(count), bufs)
		}
		// One tally per frame, flushed below: the engine's per-query metric
		// cost on this path is two stack increments (see core.QueryTally).
		var t core.QueryTally
		for i := 0; i < int(count); i++ {
			u, nu := binary.Uvarint(body)
			if nu <= 0 {
				return appendErr(resp[:0], "pair %d: bad u", i), 0
			}
			body = body[nu:]
			v, nv := binary.Uvarint(body)
			if nv <= 0 {
				return appendErr(resp[:0], "pair %d: bad v", i), 0
			}
			body = body[nv:]
			adj, err := s.engine.AdjacentTallied(int(u), int(v), &t)
			if err != nil {
				s.engine.FlushTally(&t, 0)
				return appendErr(resp[:0], "pair %d (%d,%d): %v", i, u, v, err), 0
			}
			if adj {
				resp[bitsOff+i/8] |= 1 << (7 - uint(i)%8)
			}
		}
		if len(body) != 0 {
			s.engine.FlushTally(&t, 0)
			return appendErr(resp[:0], "%d trailing bytes after %d pairs", len(body), count), 0
		}
		s.engine.FlushTally(&t, int(count))
		return resp, int(count)
	default:
		return appendErr(resp, "unknown op %d", op), 0
	}
}

// processSorted is the opt-in locality path for large frames: it decodes the
// whole pair list into the connection scratch, answers it with one
// AdjacentManySorted call (probes run in arena-offset order, answers come
// back in request order), and packs the answer bits exactly as the streaming
// loop would. resp already carries the status byte, count and zeroed bit
// block starting at bitsOff. The pair list, answer slice and sort keys all
// live in bufs, so the steady-state frame loop stays allocation-free.
func (s *Server) processSorted(body, resp []byte, bitsOff, count int, bufs *connBuffers) (out []byte, queries int) {
	pairs := bufs.pairs[:0]
	for i := 0; i < count; i++ {
		u, nu := binary.Uvarint(body)
		if nu <= 0 {
			bufs.pairs = pairs
			return appendErr(resp[:0], "pair %d: bad u", i), 0
		}
		body = body[nu:]
		v, nv := binary.Uvarint(body)
		if nv <= 0 {
			bufs.pairs = pairs
			return appendErr(resp[:0], "pair %d: bad v", i), 0
		}
		body = body[nv:]
		pairs = append(pairs, [2]int{int(u), int(v)})
	}
	bufs.pairs = pairs
	if len(body) != 0 {
		return appendErr(resp[:0], "%d trailing bytes after %d pairs", len(body), count), 0
	}
	res, err := s.engine.AdjacentManySorted(pairs, bufs.res[:0], &bufs.sc)
	if cap(res) > cap(bufs.res) {
		bufs.res = res
	}
	if err != nil {
		return appendErr(resp[:0], "%v", err), 0
	}
	for i, adj := range res {
		if adj {
			resp[bitsOff+i/8] |= 1 << (7 - uint(i)%8)
		}
	}
	return resp, count
}

// servedN is the vertex count of whichever plane the server holds (equal when
// it holds both).
func (s *Server) servedN() int {
	if s.engine != nil {
		return s.engine.N()
	}
	return s.dist.N()
}

// processDistSorted is processSorted for distance frames: the whole pair list
// is decoded into the connection scratch and answered with one DistManySorted
// call (probes in arena-offset order, answers in request order), then encoded
// as uvarint distances. resp already carries the status byte and count.
func (s *Server) processDistSorted(body, resp []byte, count int, bufs *connBuffers) (out []byte, queries int) {
	pairs := bufs.pairs[:0]
	for i := 0; i < count; i++ {
		u, nu := binary.Uvarint(body)
		if nu <= 0 {
			bufs.pairs = pairs
			return appendErr(resp[:0], "pair %d: bad u", i), 0
		}
		body = body[nu:]
		v, nv := binary.Uvarint(body)
		if nv <= 0 {
			bufs.pairs = pairs
			return appendErr(resp[:0], "pair %d: bad v", i), 0
		}
		body = body[nv:]
		pairs = append(pairs, [2]int{int(u), int(v)})
	}
	bufs.pairs = pairs
	if len(body) != 0 {
		return appendErr(resp[:0], "%d trailing bytes after %d pairs", len(body), count), 0
	}
	dists, err := s.dist.DistManySorted(pairs, bufs.dists[:0], &bufs.sc)
	if cap(dists) > cap(bufs.dists) {
		bufs.dists = dists
	}
	if err != nil {
		return appendErr(resp[:0], "%v", err), 0
	}
	for _, d := range dists {
		resp = binary.AppendUvarint(resp, wireDist(d))
	}
	return resp, count
}
