package adjserve

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// benchSetup shares one engine + server across all serving benchmarks.
var benchSetup struct {
	once sync.Once
	addr string
	eng  interface {
		AdjacentMany(pairs [][2]int, out []bool) ([]bool, error)
		N() int
	}
}

func benchServer(b *testing.B) (string, int) {
	benchSetup.once.Do(func() {
		eng := testEngine(b, 20000, 42)
		// No Cleanup here: the server must outlive the sub-benchmark that
		// happened to initialize it, so it runs for the whole process.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go NewServer(eng, 0).Serve(ln)
		benchSetup.addr, benchSetup.eng = ln.Addr().String(), eng
	})
	return benchSetup.addr, benchSetup.eng.N()
}

// BenchmarkAdjserveBatch measures remote queries/sec per batch size over one
// connection; b.N counts queries, not frames.
func BenchmarkAdjserveBatch(b *testing.B) {
	for _, batch := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			addr, n := benchServer(b)
			c, err := Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			pairs := randomPairs(n, batch, int64(batch))
			out := make([]bool, 0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += batch {
				var err error
				out, err = c.AdjacentMany(pairs, out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdjserveParallelConns measures aggregate throughput with one
// pipelined connection per GOMAXPROCS worker at a fixed batch size.
func BenchmarkAdjserveParallelConns(b *testing.B) {
	const batch = 1024
	addr, n := benchServer(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.SetParallelism(1)
	b.RunParallel(func(pb *testing.PB) {
		c, err := Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		pairs := randomPairs(n, batch, int64(workers))
		out := make([]bool, 0, batch)
		for pb.Next() {
			var err error
			out, err = c.AdjacentMany(pairs, out[:0])
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRouterBatch measures routed queries/sec through a 3-shard fleet
// over one downstream connection; b.N counts queries, not frames. The 4096
// point is the E26 batch size and must report 0 allocs/op (CI asserts it).
func BenchmarkRouterBatch(b *testing.B) {
	_, engines := shardEngines(b, 20000, 3, core.ShardRange, 42)
	addrs := make([]string, len(engines))
	for i, e := range engines {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go NewServer(e, 0).Serve(ln)
		addrs[i] = ln.Addr().String()
	}
	r, err := NewRouter(addrs, 0)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go r.Serve(ln)
	defer r.Close()
	for _, batch := range []int{64, 4096} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			c, err := Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			pairs := randomPairs(r.N(), batch, int64(batch))
			out := make([]bool, 0, batch)
			if _, err := c.AdjacentMany(pairs, out[:0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += batch {
				var err error
				out, err = c.AdjacentMany(pairs, out[:0])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeTraceDisabled measures the serve path with a trace sink
// installed but sampling and slowlog off — the production default. The trace
// plane's contract is that this path costs nothing: CI asserts 0 allocs/op,
// and ns/op must stay within noise of the pre-trace serve path.
func BenchmarkServeTraceDisabled(b *testing.B) {
	srv := NewServer(testEngine(b, 20000, 42), 0)
	srv.SetTraceSink(&obs.TraceSink{Ring: obs.NewTraceRing(256), Slow: obs.NewTraceRing(64)})
	req := appendQueryReq(nil, randomPairs(20000, 64, 1))
	bufs := &connBuffers{resp: make([]byte, 0, 4096)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		resp, _ := srv.serveFrame(req, bufs, start, 1, 1)
		bufs.resp = resp[:0]
	}
}

// BenchmarkAdjserveShed measures the refusal path: answering a 64-pair query
// frame with a shed frame while the latch is tripped. Shedding exists to be
// far cheaper than serving, so this must report 0 allocs/op (CI asserts it)
// and a tiny ns/op.
func BenchmarkAdjserveShed(b *testing.B) {
	srv := NewServer(testEngine(b, 20000, 42), 0)
	srv.SetShedDepth(1)
	srv.metrics.QueuedFrames.Add(5) // pinned past the bound: every frame sheds
	req := appendQueryReq(nil, randomPairs(20000, 64, 1))
	bufs := &connBuffers{resp: make([]byte, 0, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := srv.process(req, bufs)
		bufs.resp = resp[:0]
	}
}
