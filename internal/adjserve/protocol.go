// Package adjserve is the network serving tier for adjacency labelings: a
// length-prefixed binary batch protocol over TCP, a server that answers
// query frames from a shared read-only core.QueryEngine, and a pipelining
// client. It turns the paper's "two tiny labels, no global state" property
// into the obvious deployment: one process memory-maps a label store
// (labelstore.Open), builds an engine over the mapped arena in O(header)
// time, and serves adjacency to the network; any number of such processes
// share a single page-cache copy of the labels.
//
// Wire format (all multi-byte integers are unsigned LEB128 uvarints except
// the frame length, which is fixed-width):
//
//	frame    u32 little-endian payload length, then the payload
//
//	request  op u8
//	         op=1 (query): uvarint pair count, then per pair uvarint u, uvarint v
//	         op=2 (info):  empty
//	         op=3 (shard-info): empty
//	         op=4 (dist):  uvarint pair count, then per pair uvarint u, uvarint v
//
//	response status u8
//	         status=0 (ok), query: uvarint pair count, then ceil(count/8)
//	                        bytes of answers, bit i MSB-first within its byte
//	         status=0 (ok), info:  uvarint n (vertex count served)
//	         status=0 (ok), shard-info: uvarint n, uvarint shard count,
//	                        uvarint shard index, ownership function u8, then
//	                        ceil(n/8) bytes of fat-vertex bits, bit v MSB-first
//	                        within its byte (count=1/index=0 for an unsharded
//	                        server, so a router can front plain servers too)
//	         status=0 (ok), dist: uvarint pair count, then one uvarint hop
//	                        distance per pair; 255 means unreachable or beyond
//	                        the serving scheme's bound (distances >= 255 are
//	                        clamped to the sentinel — power-law graphs have
//	                        Θ(log n) diameter, so real distances never get
//	                        close)
//	         status=1 (error): uvarint message length, message bytes
//	         status=2 (shed):  empty — the server (or a shard behind a
//	                        router) refused the work to protect its latency:
//	                        either the aggregate in-flight frame depth passed
//	                        the configured shedding bound, or the connection
//	                        itself was refused at the admission cap. Sheds are
//	                        retryable by construction (nothing was queried)
//	                        and poison only the request that drew them; the
//	                        connection stays up unless the shed answered an
//	                        admission rejection, which closes it right after.
//
// Requests on one connection are answered in order, so a client may write
// many frames before reading any response (pipelining); batching amortizes
// the syscall and framing cost, and the bit-vector response makes a 4096-
// query answer 512 bytes + 3 bytes of header.
//
// # Trace context
//
// Any query or dist frame may carry an optional trace context, negotiated so
// old and new peers interoperate:
//
//	request  op u8 with the high bit (0x80) set, then a fixed 8-byte
//	         little-endian trace id, then the normal request body. Servers
//	         that predate tracing would reject the unknown op with an error
//	         frame, so a client only sets the flag after the server
//	         advertised the capability (below).
//
//	response for a traced request answered with status=0, the status byte has
//	         the high bit (0x80) set and a trace block follows the normal
//	         response body: uvarint stage count, then per stage u8 stage id,
//	         u8 hop label, uvarint duration ns. Stage ids and hop labels are
//	         defined in package obs (StageRead..StageFlush, HopSelf/HopPeer);
//	         a hop reports its own stages as HopSelf and passes through
//	         shard-labeled stages it gathered from its own upstreams. Error
//	         and shed responses are never extended — they stay byte-identical
//	         to the untraced protocol.
//
//	caps     the info response carries a trailing capability uvarint after
//	         the vertex count: bit 0 (capTrace) advertises trace-context
//	         support. Old clients never read past the vertex count (the
//	         trailing bytes are ignored by construction), old servers send no
//	         capability bytes, and new clients treat the absence as "no
//	         capabilities" — both directions interoperate with no version
//	         handshake round trip. The shard-info response is deliberately
//	         not extended: its parser has always rejected trailing bytes.
package adjserve

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Protocol constants. A frame payload is capped independently of the batch
// size so a malicious length prefix cannot make either side buy gigabytes.
const (
	opQuery     = 1
	opInfo      = 2
	opShardInfo = 3
	opDist      = 4

	statusOK   = 0
	statusErr  = 1
	statusShed = 2

	// distBeyondWire is the on-wire distance sentinel: unreachable pairs,
	// distances beyond a bounded scheme's f, and (degenerately) any true
	// distance >= 255 all map to it. Clients surface it as -1
	// (graph.Unreachable / distance.Beyond).
	distBeyondWire = 255

	frameHeaderLen  = 4
	maxFramePayload = 16 << 20

	// DefaultMaxBatch is the default per-frame pair limit, for both the
	// server's admission check and the client's transparent chunking.
	DefaultMaxBatch = 1 << 16

	// opTraceFlag marks a traced frame: set on a request op byte (followed by
	// an 8-byte little-endian trace id before the normal body) and echoed on
	// the response status byte (followed by a trace block after the normal
	// body). Ops and statuses stay below 0x80, so the bit is unambiguous.
	opTraceFlag = 0x80
	// traceIDLen is the fixed width of the on-wire trace id.
	traceIDLen = 8

	// capTrace is the trace-context capability bit in the info response's
	// trailing capability uvarint; a client only sets opTraceFlag on requests
	// to a server that advertised it.
	capTrace = 1 << 0

	// localCaps is what this build advertises in info responses.
	localCaps = capTrace
)

// ErrClosed is returned for calls on a client whose connection is gone and
// for servers that have been shut down.
var ErrClosed = errors.New("adjserve: closed")

// ErrShed is returned for a request the server refused under load: the
// aggregate in-flight frame depth was past the shedding bound (or the
// connection was over the admission cap), so the server answered a shed frame
// instead of querying the engine. Nothing was computed — the request is safe
// to retry, ideally after backing off. A single package-level value keeps the
// client's shed path allocation-free.
var ErrShed = errors.New("adjserve: request shed under load")

// appendShed builds a shed-response payload: the status byte alone. Kept to
// one byte so the shed path costs a single buffered write and zero
// allocations — shedding exists to be cheaper than serving.
func appendShed(resp []byte) []byte { return append(resp, statusShed) }

// RemoteError is a server-reported per-request failure (malformed frame,
// oversized batch, out-of-range vertex). It poisons only the request that
// caused it: the connection stays up and later requests proceed.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "adjserve: server: " + e.Msg }

// appendErr builds an error-response payload.
func appendErr(resp []byte, format string, args ...any) []byte {
	msg := fmt.Sprintf(format, args...)
	resp = append(resp, statusErr)
	resp = binary.AppendUvarint(resp, uint64(len(msg)))
	return append(resp, msg...)
}

// appendQueryReq builds a query-request payload for a batch of pairs.
func appendQueryReq(buf []byte, pairs [][2]int) []byte {
	return appendPairsReq(buf, opQuery, pairs)
}

// appendPairsReq builds a pair-batch request payload under op (query or dist
// — the two share request framing and differ only in the response shape).
func appendPairsReq(buf []byte, op byte, pairs [][2]int) []byte {
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p[0]))
		buf = binary.AppendUvarint(buf, uint64(p[1]))
	}
	return buf
}

// appendPairsReqTrace is appendPairsReq with a trace context prepended: the
// op byte carries opTraceFlag, followed by the fixed-width trace id.
func appendPairsReqTrace(buf []byte, op byte, id uint64, pairs [][2]int) []byte {
	buf = append(buf, op|opTraceFlag)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p[0]))
		buf = binary.AppendUvarint(buf, uint64(p[1]))
	}
	return buf
}

// appendTraceTally appends a response trace block carrying t's stages:
// uvarint stage count, then per stage u8 id, u8 hop, uvarint nanoseconds.
// Negative durations (clock retreat) clamp to zero so the uvarint encoding
// stays compact.
func appendTraceTally(resp []byte, t *obs.SpanTally) []byte {
	st := t.Stages()
	resp = binary.AppendUvarint(resp, uint64(len(st)))
	for _, s := range st {
		resp = append(resp, s.Stage, s.Hop)
		ns := s.Ns
		if ns < 0 {
			ns = 0
		}
		resp = binary.AppendUvarint(resp, uint64(ns))
	}
	return resp
}

// errMalformedTrace poisons a call whose response trace block cannot be
// decoded; like any RemoteError it fails the one call, not the connection.
var errMalformedTrace = &RemoteError{Msg: "malformed trace block"}

// parseTraceBlock merges a response trace block (exactly the bytes of b)
// into t, relabeling the sender's own HopSelf stages to hop; shard-labeled
// stages the sender gathered from its upstreams pass through unchanged.
func parseTraceBlock(b []byte, t *obs.SpanTally, hop uint8) error {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return errMalformedTrace
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		if len(b) < 2 {
			return errMalformedTrace
		}
		stage, h := b[0], b[1]
		b = b[2:]
		ns, n := binary.Uvarint(b)
		if n <= 0 {
			return errMalformedTrace
		}
		b = b[n:]
		if h == obs.HopSelf {
			h = hop
		}
		t.Add(stage, h, int64(ns))
	}
	if len(b) != 0 {
		return errMalformedTrace
	}
	return nil
}

// wireDist clamps an engine distance to its on-wire byte: -1 (unreachable /
// beyond bound) and anything that cannot fit under the sentinel both become
// distBeyondWire.
func wireDist(d int) uint64 {
	if d < 0 || d >= distBeyondWire {
		return distBeyondWire
	}
	return uint64(d)
}

// frameHeader encodes a payload length.
func frameHeader(n int) [frameHeaderLen]byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(n))
	return hdr
}
