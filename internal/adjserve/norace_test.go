//go:build !race

package adjserve

// raceEnabled is false in ordinary builds; see race_test.go.
const raceEnabled = false
