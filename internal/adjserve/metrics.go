package adjserve

import (
	"repro/internal/obs"
)

// batchClassLabels partitions query-frame sizes into the label values of the
// per-batch-size latency histograms. The classes straddle the benchmark and
// experiment batch sizes (1, 64, 1024, 4096, 65536), so each sweep point
// lands in its own series.
var batchClassLabels = [...]string{"1", "2-64", "65-1024", "1025-4096", ">4096"}

// batchClass maps a frame's answered pair count to its histogram class.
func batchClass(pairs int) int {
	switch {
	case pairs <= 1:
		return 0
	case pairs <= 64:
		return 1
	case pairs <= 1024:
		return 2
	case pairs <= 4096:
		return 3
	default:
		return 4
	}
}

// ServerMetrics is the server's always-on instrumentation: plain atomics the
// frame loop updates unconditionally (a handful of uncontended adds per
// frame, nothing per query), exposed by Register. Every Server owns one —
// the metrics exist whether or not a registry ever reads them, so the hot
// path carries no nil checks and no registration state.
type ServerMetrics struct {
	ConnsActive obs.Gauge   // open client connections
	ConnsTotal  obs.Counter // connections accepted since start
	ConnsShed   obs.Counter // connections refused at the admission cap
	Frames      obs.Counter // request frames answered, all ops
	ErrorFrames obs.Counter // frames answered with an error status
	ShedFrames  obs.Counter // frames answered with a shed status (load refused)
	ShedEvents  obs.Counter // times the shedding latch tripped on
	WriteErrors obs.Counter // response writes/flushes that failed (dead peer)
	// QueuedFrames is the aggregate in-flight frame depth: frames fully read
	// but whose response has not yet been flushed, across all connections —
	// the queue the shedding bound (Server.SetShedDepth) watches. A pipelined
	// burst charges every read frame until the burst's coalesced flush.
	QueuedFrames obs.Gauge
	Queries      obs.Counter // adjacency pairs answered
	BytesIn      obs.Counter // request wire bytes, frame headers included
	BytesOut     obs.Counter // response wire bytes, frame headers included
	// FrameLatencyNs[batchClass] is the server-side frame handling time
	// (request fully read → response buffered, excluding the flush) of
	// successful query frames, one histogram per batch-size class.
	FrameLatencyNs [len(batchClassLabels)]obs.Histogram
}

// Register exposes the metrics on reg under the adjserve_* family names.
// Call once per registry.
func (m *ServerMetrics) Register(reg *obs.Registry) {
	reg.Gauge("adjserve_connections_active", "Open client connections.", &m.ConnsActive)
	reg.Counter("adjserve_connections_total", "Client connections accepted.", &m.ConnsTotal)
	reg.Counter("adjserve_connections_shed_total", "Connections refused at the admission cap.", &m.ConnsShed)
	reg.Counter("adjserve_frames_total", "Request frames answered (all ops).", &m.Frames)
	reg.Counter("adjserve_error_frames_total", "Frames answered with an error status.", &m.ErrorFrames)
	reg.Counter("adjserve_shed_frames_total", "Frames answered with a shed status (load refused).", &m.ShedFrames)
	reg.Counter("adjserve_shed_events_total", "Times the load-shedding latch tripped on.", &m.ShedEvents)
	reg.Counter("adjserve_write_errors_total", "Response writes or flushes that failed (dead peer).", &m.WriteErrors)
	reg.Gauge("adjserve_queued_frames", "Frames read but not yet flushed, across all connections.", &m.QueuedFrames)
	reg.Counter("adjserve_queries_total", "Adjacency pairs answered.", &m.Queries)
	reg.Counter("adjserve_bytes_in_total", "Request bytes read, frame headers included.", &m.BytesIn)
	reg.Counter("adjserve_bytes_out_total", "Response bytes written, frame headers included.", &m.BytesOut)
	for i := range m.FrameLatencyNs {
		reg.Histogram("adjserve_frame_latency_ns",
			"Server-side query-frame handling time in nanoseconds by batch-size class.",
			&m.FrameLatencyNs[i], "batch", batchClassLabels[i])
	}
}

// ClientMetrics is the client's always-on instrumentation, mirroring
// ServerMetrics: redial behavior and pipelining depth, updated by the call
// path and exposed by Register.
type ClientMetrics struct {
	DialAttempts obs.Counter // dials tried, including retries
	DialFailures obs.Counter // dials that returned an error
	Redials      obs.Counter // successful reconnects after a lost connection
	FramesSent   obs.Counter // request frames written
	ShedFrames   obs.Counter // responses that were shed frames (ErrShed)
	BytesOut     obs.Counter // request wire bytes written, frame headers included
	BytesIn      obs.Counter // response wire bytes read, frame headers included
	InFlight     obs.Gauge   // frames written but not yet answered
}

// Register exposes the metrics on reg under the adjserve_client_* family
// names. Call once per registry.
func (m *ClientMetrics) Register(reg *obs.Registry) { m.RegisterWith(reg) }

// RegisterWith is Register with label pairs attached to every series, so
// multiple clients (the router's per-upstream connections) can share one
// registry: each client registers under a distinguishing label such as
// "shard", "2".
func (m *ClientMetrics) RegisterWith(reg *obs.Registry, labels ...string) {
	reg.Counter("adjserve_client_dial_attempts_total", "Connection dials attempted, retries included.", &m.DialAttempts, labels...)
	reg.Counter("adjserve_client_dial_failures_total", "Connection dials that failed.", &m.DialFailures, labels...)
	reg.Counter("adjserve_client_redials_total", "Successful reconnects after a lost connection.", &m.Redials, labels...)
	reg.Counter("adjserve_client_frames_total", "Request frames written.", &m.FramesSent, labels...)
	reg.Counter("adjserve_client_shed_frames_total", "Responses that were shed frames.", &m.ShedFrames, labels...)
	reg.Counter("adjserve_client_bytes_out_total", "Request bytes written, frame headers included.", &m.BytesOut, labels...)
	reg.Counter("adjserve_client_bytes_in_total", "Response bytes read, frame headers included.", &m.BytesIn, labels...)
	reg.Gauge("adjserve_client_inflight_frames", "Frames written but not yet answered.", &m.InFlight, labels...)
}
