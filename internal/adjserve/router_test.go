package adjserve

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
)

// startShardFleet serves each sharded engine and returns the addresses (by
// shard index) plus the servers.
func startShardFleet(t testing.TB, engines []*core.QueryEngine) ([]string, []*Server) {
	t.Helper()
	addrs := make([]string, len(engines))
	srvs := make([]*Server, len(engines))
	for i, e := range engines {
		addrs[i], srvs[i], _ = startServer(t, e, 0)
	}
	return addrs, srvs
}

// startRouter fronts addrs with a router on a loopback listener.
func startRouter(t testing.TB, addrs []string, maxBatch int) (string, *Router) {
	t.Helper()
	r, err := NewRouter(addrs, maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Close() })
	return ln.Addr().String(), r
}

// TestRouterEquivalence is the tentpole acceptance check: answers through the
// router are bit-for-bit identical to the full single-store engine, across
// ownership functions and batch sizes (sub-byte, multi-frame, large).
func TestRouterEquivalence(t *testing.T) {
	for _, fn := range []core.ShardFn{core.ShardRange, core.ShardHash} {
		full, engines := shardEngines(t, 400, 3, fn, 7)
		addrs, _ := startShardFleet(t, engines)
		addr, _ := startRouter(t, addrs, 0)
		for _, batch := range []int{1, 3, 64, 4096} {
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			c.MaxBatch = batch
			pairs := randomPairs(full.N(), 5000, int64(batch))
			for v := 0; v < full.N(); v++ {
				pairs = append(pairs, [2]int{v, v})
			}
			got, err := c.AdjacentMany(pairs, nil)
			if err != nil {
				t.Fatalf("fn=%v batch=%d: %v", fn, batch, err)
			}
			for i, p := range pairs {
				want, err := full.Adjacent(p[0], p[1])
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("fn=%v batch=%d: pair %d (%d,%d) = %v, engine says %v",
						fn, batch, i, p[0], p[1], got[i], want)
				}
			}
			c.Close()
		}
	}
}

// TestRouterRoutingInvariant pins down the routing rule: for every pair, the
// shard route() picks answers without ErrNotResident and agrees with the full
// engine. This is exactly the invariant that makes scatter-gather correct —
// a thin endpoint forces its owner (the only shard holding its neighbor
// list), and fat–fat pairs may go anywhere because fat bitmaps are
// replicated. Any weaker rule (plain min-owner, say) fails this test on
// fat–thin pairs.
func TestRouterRoutingInvariant(t *testing.T) {
	for _, fn := range []core.ShardFn{core.ShardRange, core.ShardHash} {
		full, engines := shardEngines(t, 400, 3, fn, 7)
		addrs, _ := startShardFleet(t, engines)
		r, err := NewRouter(addrs, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 5000; i++ {
			u, v := rng.Intn(full.N()), rng.Intn(full.N())
			s := r.route(u, v)
			got, err := engines[s].Adjacent(u, v)
			if err != nil {
				t.Fatalf("fn=%v: route(%d,%d) = shard %d, which answered: %v", fn, u, v, s, err)
			}
			want, err := full.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("fn=%v: (%d,%d) on routed shard %d = %v, full engine says %v", fn, u, v, s, got, want)
			}
		}
	}
}

// thinPairsOwnedBy collects pairs whose endpoints are both thin and owned by
// shard s — pairs the routing rule must send to s and no other shard.
func thinPairsOwnedBy(e *core.QueryEngine, fn core.ShardFn, count, s, want int) [][2]int {
	n := e.N()
	var own []int
	for v := 0; v < n; v++ {
		if !e.Fat(v) && core.ShardOwner(fn, v, n, count) == s {
			own = append(own, v)
		}
	}
	rng := rand.New(rand.NewSource(int64(s)))
	pairs := make([][2]int, 0, want)
	for len(pairs) < want {
		pairs = append(pairs, [2]int{own[rng.Intn(len(own))], own[rng.Intn(len(own))]})
	}
	return pairs
}

// TestRouterShardKill: killing one shard mid-stream poisons only the requests
// routed to it — each gets a clean error frame (surfacing as RemoteError, the
// connection-survives error type) — while the same downstream connection
// keeps answering requests for the remaining shards.
func TestRouterShardKill(t *testing.T) {
	full, engines := shardEngines(t, 400, 3, core.ShardRange, 7)
	addrs, srvs := startShardFleet(t, engines)
	addr, _ := startRouter(t, addrs, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const victim = 2
	victimPairs := thinPairsOwnedBy(full, core.ShardRange, 3, victim, 64)
	livePairs := thinPairsOwnedBy(full, core.ShardRange, 3, 0, 64)
	if _, err := c.AdjacentMany(victimPairs, nil); err != nil {
		t.Fatalf("victim shard up, batch failed: %v", err)
	}
	srvs[victim].Close()
	// Requests needing the dead shard: error frame, not a dead connection.
	var rerr *RemoteError
	if _, err := c.AdjacentMany(victimPairs, nil); !errors.As(err, &rerr) {
		t.Fatalf("batch for dead shard: err = %v, want a RemoteError error frame", err)
	}
	// Same connection, live shards: still answering, still correct.
	got, err := c.AdjacentMany(livePairs, nil)
	if err != nil {
		t.Fatalf("live-shard batch after kill: %v", err)
	}
	for i, p := range livePairs {
		want, err := full.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("after kill: pair (%d,%d) = %v, engine says %v", p[0], p[1], got[i], want)
		}
	}
	// A mixed batch is poisoned as a unit (one request, one error frame), and
	// the connection still survives it.
	mixed := append(append([][2]int{}, livePairs[:8]...), victimPairs[:8]...)
	if _, err := c.AdjacentMany(mixed, nil); !errors.As(err, &rerr) {
		t.Fatalf("mixed batch: err = %v, want RemoteError", err)
	}
	if _, err := c.AdjacentMany(livePairs[:8], nil); err != nil {
		t.Fatalf("live batch after poisoned mixed batch: %v", err)
	}
}

// TestRouterHandshakeValidation: a fleet that is not exactly one coherent
// partition is rejected at construction — overlapping ownership (two servers
// claiming one shard), an incomplete fleet, and mixed labelings all fail the
// handshake rather than mis-route later.
func TestRouterHandshakeValidation(t *testing.T) {
	_, engines := shardEngines(t, 400, 3, core.ShardRange, 7)
	addrs, _ := startShardFleet(t, engines)
	if _, err := NewRouter(nil, 0); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewRouter([]string{addrs[0], addrs[1], addrs[1]}, 0); err == nil {
		t.Fatal("overlapping ownership accepted (shard 1 listed twice)")
	}
	if _, err := NewRouter(addrs[:2], 0); err == nil {
		t.Fatal("incomplete fleet accepted (2 servers of a 3-shard partition)")
	}
	// A shard from a different partition of the same size: wrong fat set or
	// wrong ownership function must be caught.
	_, hashEngines := shardEngines(t, 400, 3, core.ShardHash, 7)
	hashAddr, _, _ := startServer(t, hashEngines[0], 0)
	if _, err := NewRouter([]string{hashAddr, addrs[1], addrs[2]}, 0); err == nil {
		t.Fatal("mixed ownership functions accepted")
	}
	// A whole different labeling behind one address: n mismatch.
	other := testEngine(t, 200, 9)
	otherAddr, _, _ := startServer(t, other, 0)
	if _, err := NewRouter([]string{otherAddr, addrs[1], addrs[2]}, 0); err == nil {
		t.Fatal("mixed vertex counts accepted")
	}
}

// TestRouterFrontsPlainServer: a single unsharded server behind a router
// answers identically to direct access — the trivial 1-shard fleet — and the
// router re-exports the unsharded shard-info, so routers compose.
func TestRouterFrontsPlainServer(t *testing.T) {
	eng := testEngine(t, 300, 5)
	srvAddr, _, _ := startServer(t, eng, 0)
	addr, _ := startRouter(t, []string{srvAddr}, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.Info()
	if err != nil || n != eng.N() {
		t.Fatalf("Info = %d, %v; want %d", n, err, eng.N())
	}
	si, err := c.ShardInfo()
	if err != nil {
		t.Fatal(err)
	}
	if want := (core.ShardMap{Count: 1, Index: 0, Fn: core.ShardRange}); si.Map != want {
		t.Fatalf("router shard-info map %+v, want %+v", si.Map, want)
	}
	pairs := randomPairs(eng.N(), 2000, 3)
	got, err := c.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want, err := eng.Adjacent(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("pair (%d,%d) = %v, engine says %v", p[0], p[1], got[i], want)
		}
	}
}

// TestRouterConcurrent hammers one router from concurrent goroutines sharing
// one client (pipelined) plus goroutines with their own connections, under
// the race detector in CI.
func TestRouterConcurrent(t *testing.T) {
	full, engines := shardEngines(t, 400, 3, core.ShardHash, 7)
	addrs, _ := startShardFleet(t, engines)
	addr, _ := startRouter(t, addrs, 0)
	shared, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		c := shared
		if g%2 == 0 {
			if c, err = Dial(addr); err != nil {
				t.Fatal(err)
			}
			defer c.Close()
		}
		wg.Add(1)
		go func(g int, c *Client) {
			defer wg.Done()
			pairs := randomPairs(full.N(), 600, int64(g))
			for iter := 0; iter < 5; iter++ {
				got, err := c.AdjacentMany(pairs, nil)
				if err != nil {
					errc <- err
					return
				}
				for i, p := range pairs {
					want, _ := full.Adjacent(p[0], p[1])
					if got[i] != want {
						errc <- errors.New("answer mismatch under concurrency")
						return
					}
				}
			}
		}(g, c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestRouterZeroAlloc asserts the pooled steady state of the whole in-process
// chain — downstream client encode, router routing + fan-out + scatter, and
// three shard servers: zero heap allocations per batch.
func TestRouterZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under the race detector")
	}
	full, engines := shardEngines(t, 400, 3, core.ShardRange, 7)
	addrs, _ := startShardFleet(t, engines)
	addr, _ := startRouter(t, addrs, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pairs := randomPairs(full.N(), 512, 7)
	out := make([]bool, 0, len(pairs))
	for i := 0; i < 8; i++ {
		if _, err := c.AdjacentMany(pairs, out[:0]); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.AdjacentMany(pairs, out[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("routed AdjacentMany allocates %.1f times per batch, want 0", allocs)
	}
}

// TestRouterMetrics: per-upstream counters move and the downstream side
// accounts frames/queries — the observability satellite's contract.
func TestRouterMetrics(t *testing.T) {
	full, engines := shardEngines(t, 400, 3, core.ShardRange, 7)
	addrs, _ := startShardFleet(t, engines)
	addr, r := startRouter(t, addrs, 0)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pairs := randomPairs(full.N(), 4096, 3)
	if _, err := c.AdjacentMany(pairs, nil); err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if got := m.Queries.Load(); got != int64(len(pairs)) {
		t.Fatalf("router queries = %d, want %d", got, len(pairs))
	}
	var pairsRouted int64
	for s := range m.Upstreams {
		um := &m.Upstreams[s]
		if um.Batches.Load() == 0 {
			t.Fatalf("shard %d saw no sub-batches over a 4096-pair batch", s)
		}
		if um.LatencyNs.Count() == 0 {
			t.Fatalf("shard %d latency histogram empty", s)
		}
		pairsRouted += um.Pairs.Load()
	}
	if pairsRouted != int64(len(pairs)) {
		t.Fatalf("shards saw %d pairs total, router answered %d", pairsRouted, len(pairs))
	}
}
