package compressgraph

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestRoundTrip(t *testing.T) {
	cl, err := gen.ChungLuPowerLaw(500, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*graph.Graph{
		"empty":  graph.Empty(0),
		"single": graph.Empty(1),
		"isol":   graph.Empty(12),
		"path":   gen.Path(20),
		"K7":     gen.Complete(7),
		"er":     gen.ErdosRenyi(100, 0.1, 2),
		"cl":     cl,
	}
	for name, g := range cases {
		c := Encode(g)
		back, err := c.Decode()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.EqualGraph(g, back) {
			t.Errorf("%s: round trip differs", name)
		}
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := gen.Star(20)
	c := Encode(g)
	d, err := c.Degree(0)
	if err != nil || d != 19 {
		t.Errorf("Degree(0) = %d, %v", d, err)
	}
	ns, err := c.Neighbors(0)
	if err != nil || len(ns) != 19 {
		t.Fatalf("Neighbors(0) = %d entries, %v", len(ns), err)
	}
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatal("decoded neighbors not sorted")
		}
	}
}

func TestHasEdgeAgainstGraph(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.1, 7)
	c := Encode(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			got, err := c.HasEdge(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if got != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
	if _, err := c.HasEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("err = %v", err)
	}
}

func TestCompressionBeatsFixedWidth(t *testing.T) {
	// On power-law graphs the shared stream must beat the fixed-width CSR
	// encoding (2m neighbor entries of ceil(log2 n) bits each).
	g, err := gen.ChungLuPowerLaw(10000, 2.3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := Encode(g)
	fixedBits := int64(2*g.M()) * 14 // ceil(log2 10000) = 14
	if c.StreamBits() >= fixedBits {
		t.Errorf("stream %d bits >= fixed-width %d bits", c.StreamBits(), fixedBits)
	}
	if c.TotalBits() <= c.StreamBits() {
		t.Error("index accounting missing")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(50, 0.12, seed)
		back, err := Encode(g).Decode()
		return err == nil && graph.EqualGraph(g, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
