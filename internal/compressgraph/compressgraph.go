// Package compressgraph implements a WebGraph-flavored globally compressed
// adjacency structure: sorted adjacency lists stored as Elias-γ degree
// counts and Elias-δ neighbor gaps in one shared bit stream, plus a
// fixed-width offset index for random access.
//
// The paper's introduction contrasts two ways of storing large networks:
// global compression (Boldi–Vigna et al.) and per-vertex labels. This
// package is the global side of that comparison; experiment E18 measures
// the "price of locality" — how many more total bits the peer-to-peer
// labelings spend than one globally compressed structure.
package compressgraph

import (
	"errors"
	"fmt"

	"repro/internal/bitstr"
	"repro/internal/graph"
)

// ErrVertexRange is returned for out-of-range vertex ids.
var ErrVertexRange = errors.New("compressgraph: vertex out of range")

// Compressed is an immutable compressed adjacency structure.
type Compressed struct {
	n       int
	stream  bitstr.String
	offsets []int64 // bit offset of each vertex's list in the stream
}

// Encode compresses g.
func Encode(g *graph.Graph) *Compressed {
	n := g.N()
	var b bitstr.Builder
	offsets := make([]int64, n)
	for v := 0; v < n; v++ {
		offsets[v] = int64(b.Len())
		ns := g.Neighbors(v)
		b.AppendGamma0(uint64(len(ns)))
		prev := uint64(0)
		for i, u := range ns {
			gap := uint64(u) - prev
			if i == 0 {
				gap = uint64(u) // first neighbor stored absolutely
			}
			b.AppendDelta0(gap)
			prev = uint64(u)
		}
	}
	return &Compressed{n: n, stream: b.String(), offsets: offsets}
}

// N returns the number of vertices.
func (c *Compressed) N() int { return c.n }

// StreamBits returns the size of the shared adjacency stream in bits.
func (c *Compressed) StreamBits() int64 { return int64(c.stream.Len()) }

// IndexBits returns the size of the random-access offset index in bits
// (n fixed-width offsets into the stream).
func (c *Compressed) IndexBits() int64 {
	w := bitstr.WidthFor(uint64(c.stream.Len()) + 1)
	return int64(c.n) * int64(w)
}

// TotalBits returns stream plus index.
func (c *Compressed) TotalBits() int64 { return c.StreamBits() + c.IndexBits() }

// Degree returns the degree of v.
func (c *Compressed) Degree(v int) (int, error) {
	r, err := c.seek(v)
	if err != nil {
		return 0, err
	}
	d, err := r.ReadGamma0()
	if err != nil {
		return 0, err
	}
	return int(d), nil
}

// Neighbors decodes v's sorted adjacency list.
func (c *Compressed) Neighbors(v int) ([]int32, error) {
	r, err := c.seek(v)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadGamma0()
	if err != nil {
		return nil, err
	}
	out := make([]int32, d)
	prev := uint64(0)
	for i := range out {
		gap, err := r.ReadDelta0()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = gap
		} else {
			prev += gap
		}
		if prev >= uint64(c.n) {
			return nil, fmt.Errorf("compressgraph: decoded neighbor %d out of range", prev)
		}
		out[i] = int32(prev)
	}
	return out, nil
}

// HasEdge reports adjacency by scanning the shorter of the two lists.
func (c *Compressed) HasEdge(u, v int) (bool, error) {
	if u < 0 || u >= c.n || v < 0 || v >= c.n {
		return false, fmt.Errorf("%w: (%d,%d)", ErrVertexRange, u, v)
	}
	if u == v {
		return false, nil
	}
	du, err := c.Degree(u)
	if err != nil {
		return false, err
	}
	dv, err := c.Degree(v)
	if err != nil {
		return false, err
	}
	if dv < du {
		u, v = v, u
	}
	ns, err := c.Neighbors(u)
	if err != nil {
		return false, err
	}
	for _, x := range ns {
		if int(x) == v {
			return true, nil
		}
		if int(x) > v {
			return false, nil
		}
	}
	return false, nil
}

// Decode reconstructs the full graph (used by round-trip tests).
func (c *Compressed) Decode() (*graph.Graph, error) {
	b := graph.NewBuilder(c.n)
	for v := 0; v < c.n; v++ {
		ns, err := c.Neighbors(v)
		if err != nil {
			return nil, err
		}
		for _, u := range ns {
			if int(u) > v {
				if err := b.AddEdge(v, int(u)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(), nil
}

func (c *Compressed) seek(v int) (*bitstr.Reader, error) {
	if v < 0 || v >= c.n {
		return nil, fmt.Errorf("%w: %d of %d", ErrVertexRange, v, c.n)
	}
	r := bitstr.NewReader(c.stream)
	if err := r.Seek(int(c.offsets[v])); err != nil {
		return nil, err
	}
	return r, nil
}
