package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Waxman generates a Waxman random geometric graph: n points uniform in the
// unit square, with each pair {u,v} connected independently with probability
// β·exp(-d(u,v)/(L·γ)) where L = √2 is the maximal distance. This is one of
// the non-power-law generative models the paper contrasts with (Section 6);
// it serves as a control workload. Runs in O(n²) and is intended for the
// modest sizes used in experiments.
func Waxman(n int, beta, gamma float64, seed int64) (*graph.Graph, error) {
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: Waxman beta must be in [0,1], got %v", beta)
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("gen: Waxman gamma must be positive, got %v", gamma)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	l := math.Sqrt2
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			if rng.Float64() < beta*math.Exp(-d/(l*gamma)) {
				s.Add(int32(u), int32(v))
			}
		}
	}
	return eb.Build(1), nil
}
