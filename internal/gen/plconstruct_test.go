package gen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/powerlaw"
)

// newTestRand returns a deterministic rand source for tests in this package.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func plParams(t *testing.T, alpha float64, n int) powerlaw.Params {
	t.Helper()
	p, err := powerlaw.NewParams(alpha, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlEmbedRejectsWrongH(t *testing.T) {
	p := plParams(t, 2.5, 10000)
	if _, err := PlEmbed(p, Path(p.I1+1)); err == nil {
		t.Error("wrong-sized H accepted")
	}
}

func TestPlEmbedMembershipAndInducedSubgraph(t *testing.T) {
	cases := []struct {
		alpha float64
		n     int
	}{
		{2.2, 5000},
		{2.5, 10000},
		{2.5, 30000},
		{3.0, 20000},
	}
	for _, tc := range cases {
		p := plParams(t, tc.alpha, tc.n)
		// H: a random graph on i₁ vertices — the "arbitrary graph" of the
		// lower-bound proof.
		rng := newTestRand(int64(tc.n))
		hb := graph.NewBuilder(p.I1)
		for u := 0; u < p.I1; u++ {
			for v := u + 1; v < p.I1; v++ {
				if rng.Intn(2) == 0 {
					if err := hb.AddEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		h := hb.Build()

		emb, err := PlEmbed(p, h)
		if err != nil {
			t.Fatalf("α=%v n=%d: %v", tc.alpha, tc.n, err)
		}
		if emb.G.N() != tc.n {
			t.Fatalf("α=%v n=%d: graph has %d vertices", tc.alpha, tc.n, emb.G.N())
		}

		// G must be a member of P_l (Definition 2), verified exactly.
		if err := powerlaw.CheckPl(emb.G, p); err != nil {
			t.Errorf("α=%v n=%d: not in P_l: %v", tc.alpha, tc.n, err)
		}

		// H must be an induced subgraph of G on the host vertices.
		sub, err := emb.G.InducedSubgraph(emb.Host)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.EqualGraph(sub, h) {
			t.Errorf("α=%v n=%d: induced subgraph differs from H", tc.alpha, tc.n)
		}

		// Proposition 1: the max degree must respect the P_l bound.
		if got, bound := emb.G.MaxDegree(), p.MaxDegreeBoundPl(); float64(got) > bound {
			t.Errorf("α=%v n=%d: max degree %d exceeds Proposition 1 bound %.1f", tc.alpha, tc.n, got, bound)
		}

		// Proposition 3: P_l ⊆ P_h — the same graph passes the P_h check.
		if rep := powerlaw.CheckPh(emb.G, p, 1); !rep.Member {
			t.Errorf("α=%v n=%d: P_l member fails P_h check (worst k=%d ratio=%.3f)",
				tc.alpha, tc.n, rep.WorstK, rep.WorstRatio)
		}
	}
}

func TestPlEmbedCliqueH(t *testing.T) {
	// The hardest H: a clique, maximizing host degrees.
	p := plParams(t, 2.5, 10000)
	h := Complete(p.I1)
	emb, err := PlEmbed(p, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := powerlaw.CheckPl(emb.G, p); err != nil {
		t.Errorf("clique embedding not in P_l: %v", err)
	}
	sub, err := emb.G.InducedSubgraph(emb.Host)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualGraph(sub, h) {
		t.Error("induced subgraph differs from clique")
	}
}

func TestPlEmbedEmptyH(t *testing.T) {
	p := plParams(t, 2.5, 10000)
	h := graph.Empty(p.I1)
	emb, err := PlEmbed(p, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := powerlaw.CheckPl(emb.G, p); err != nil {
		t.Errorf("empty-H embedding not in P_l: %v", err)
	}
	sub, err := emb.G.InducedSubgraph(emb.Host)
	if err != nil {
		t.Fatal(err)
	}
	if sub.M() != 0 {
		t.Errorf("induced subgraph has %d edges, want 0", sub.M())
	}
}

func TestPlEmbedSparsity(t *testing.T) {
	// Proposition 2: for α > 2, members of P_l are sparse; verify against
	// the explicit Proposition 2 edge bound.
	p := plParams(t, 2.5, 20000)
	emb, err := PlEmbed(p, Path(p.I1))
	if err != nil {
		t.Fatal(err)
	}
	if got, bound := float64(emb.G.M()), p.SparsityBoundPl(); got > bound {
		t.Errorf("edge count %v exceeds Proposition 2 bound %v", got, bound)
	}
}

func TestPlEmbedDeterministic(t *testing.T) {
	p := plParams(t, 2.5, 8000)
	h := Cycle(p.I1)
	a, err := PlEmbed(p, h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlEmbed(p, h)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualGraph(a.G, b.G) {
		t.Error("PlEmbed is not deterministic")
	}
}
