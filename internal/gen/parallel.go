package gen

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Sharded parallel samplers
//
// The skipping samplers (Miller–Hagberg for Chung–Lu, Batagelj–Brandes for
// G(n,p)) draw each source row's edges from a contiguous run of the RNG
// stream, so rows are independent given independent streams. The parallel
// variants below exploit that: source rows are partitioned into a *fixed*
// set of ranges (sized by expected edge work, but never by worker count),
// each range draws from its own RNG stream seeded by a splitmix64 mix of
// (seed, range index), and workers pull ranges from a shared counter into
// per-worker EdgeBuilder shards. Because the range decomposition and every
// range's stream depend only on the seed, the sampled edge multiset — and
// hence the built graph — is bit-identical for every worker count; only
// scheduling changes. (The draws differ from the single-stream sequential
// samplers, which remain available; conformance is asserted statistically
// in parallel_test.go.)
//
// The erased configuration model is different: its randomness is one global
// stub shuffle, which stays sequential, while stub filling and pairing —
// the O(Σdeg) passes — fan out over index ranges. Its parallel output is
// therefore *identical* to the sequential ConfigurationModel, not merely
// equal in distribution.

// samplerRanges is the fixed number of row ranges a parallel sampler cuts
// its source rows into. It is a constant — never derived from the worker
// count — so the range→stream mapping, and with it the sampled graph, is
// invariant under the degree of parallelism. 512 ranges keep the work
// queue fine-grained enough to balance power-law row skew at any plausible
// GOMAXPROCS.
const samplerRanges = 512

// rngStream returns the RNG for stream id under the given master seed,
// derived with a splitmix64 finalizer so that nearby (seed, id) pairs give
// uncorrelated streams.
func rngStream(seed int64, id int) *rand.Rand {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// workCuts splits rows [0, rows) into at most parts contiguous ranges of
// roughly equal total work, where work is the given monotone prefix sum
// (prefix[i] = work of rows < i). Returns monotone cut points starting at
// 0 and ending at rows. The cuts depend only on the prefix, keeping them
// worker-count invariant.
func workCuts(prefix []float64, parts int) []int {
	rows := len(prefix) - 1
	if parts > rows {
		parts = rows
	}
	if parts < 1 {
		parts = 1
	}
	if rows == 0 {
		return []int{0, 0}
	}
	total := prefix[rows]
	cuts := make([]int, 0, parts+1)
	cuts = append(cuts, 0)
	for i := 1; i < parts; i++ {
		target := total * float64(i) / float64(parts)
		lo, _ := slices.BinarySearch(prefix, target)
		if lo > rows {
			lo = rows
		}
		if lo <= cuts[len(cuts)-1] || lo >= rows {
			continue
		}
		cuts = append(cuts, lo)
	}
	cuts = append(cuts, rows)
	return cuts
}

// runSharded executes fn(shard, range) for every range r in [0, ranges),
// pulling ranges off a shared counter with workers goroutines, each owning
// one EdgeBuilder shard. Range order within a shard is nondeterministic,
// which the EdgeBuilder erases at Build time.
func runSharded(eb *graph.EdgeBuilder, workers, ranges int, fn func(s *graph.EdgeShard, r int)) {
	if workers > ranges {
		workers = ranges
	}
	if workers <= 1 {
		s := eb.Shard(0)
		for r := 0; r < ranges; r++ {
			fn(s, r)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(s *graph.EdgeShard) {
			defer wg.Done()
			for {
				r := next.Add(1) - 1
				if r >= int64(ranges) {
					return
				}
				fn(s, int(r))
			}
		}(eb.Shard(w))
	}
	wg.Wait()
}

func clampWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ChungLuParallelEdges samples the Chung–Lu edge set for the given
// expected-degree weights into an unbuilt EdgeBuilder, fanning the
// Miller–Hagberg row loop out over workers goroutines. Vertex i of the
// output has weight rank i, as in ChungLu. The sampled multiset depends
// only on the seed, never on workers.
func ChungLuParallelEdges(weights []float64, seed int64, workers int) *graph.EdgeBuilder {
	workers = clampWorkers(workers)
	n := len(weights)
	w := slices.Clone(weights)
	// Non-increasing, matching ChungLu's sort.Reverse.
	slices.SortFunc(w, func(a, b float64) int { return cmp.Compare(b, a) })
	var total float64
	for _, x := range w {
		total += x
	}
	eb := graph.NewEdgeBuilder(n, workers)
	if total <= 0 || n < 2 {
		return eb
	}
	// Expected edges from source row u ≈ w_u · (Σ_{v>u} w_v)/total; +1 for
	// the fixed per-row cost. With weights sorted non-increasing the early
	// rows are hubs, so equal-row ranges would be badly skewed.
	rowWork := make([]float64, n-1)
	suffix := 0.0
	for u := n - 2; u >= 0; u-- {
		suffix += w[u+1]
		rowWork[u] = 1 + w[u]*suffix/total
	}
	prefix := make([]float64, n)
	for u, rw := range rowWork {
		prefix[u+1] = prefix[u] + rw
	}
	cuts := workCuts(prefix, samplerRanges)
	runSharded(eb, workers, len(cuts)-1, func(s *graph.EdgeShard, r int) {
		rng := rngStream(seed, r)
		for u := cuts[r]; u < cuts[r+1]; u++ {
			v := u + 1
			p := math.Min(w[u]*w[v]/total, 1)
			for v < n && p > 0 {
				if p != 1 {
					x := rng.Float64()
					v += int(logf(x) / logOneMinus(p))
				}
				if v < n {
					q := math.Min(w[u]*w[v]/total, 1)
					if rng.Float64() < q/p {
						s.Add(int32(u), int32(v))
					}
					p = q
					v++
				}
			}
		}
	})
	return eb
}

// ChungLuParallel is ChungLuParallelEdges followed by a parallel CSR
// build: a Chung–Lu sample constructed end-to-end with workers
// goroutines, bit-identical across worker counts for a fixed seed.
func ChungLuParallel(weights []float64, seed int64, workers int) *graph.Graph {
	workers = clampWorkers(workers)
	return ChungLuParallelEdges(weights, seed, workers).Build(workers)
}

// ChungLuPowerLawParallel composes PowerLawWeights with the parallel
// Chung–Lu sampler — the parallel counterpart of ChungLuPowerLaw.
func ChungLuPowerLawParallel(n int, alpha, wmin float64, seed int64, workers int) (*graph.Graph, error) {
	w, err := PowerLawWeights(n, alpha, wmin)
	if err != nil {
		return nil, err
	}
	return ChungLuParallel(w, seed, workers), nil
}

// ErdosRenyiParallelEdges samples G(n, p) into an unbuilt EdgeBuilder
// using per-range Batagelj–Brandes skipping: row u (the larger endpoint)
// owns cells w = 0..u-1, and each row range skips through its own cell
// sequence with its own RNG stream. Requires 0 < p < 1; the ErdosRenyiParallel
// wrapper handles the degenerate cases.
func ErdosRenyiParallelEdges(n int, p float64, seed int64, workers int) *graph.EdgeBuilder {
	workers = clampWorkers(workers)
	eb := graph.NewEdgeBuilder(n, workers)
	if p <= 0 || p >= 1 || n < 2 {
		return eb
	}
	lnq := logOneMinus(p)
	// Row u has u cells; expected edges u·p. Work prefix over rows 1..n-1
	// (row 0 owns no cells).
	prefix := make([]float64, n)
	prefix[0] = 0
	for u := 1; u < n; u++ {
		prefix[u] = prefix[u-1] + 1 + float64(u)*p
	}
	cuts := workCuts(prefix, samplerRanges)
	runSharded(eb, workers, len(cuts)-1, func(s *graph.EdgeShard, r int) {
		lo, hi := cuts[r]+1, cuts[r+1]+1 // shift: range row i covers source u=i+1
		rng := rngStream(seed, r)
		u, w := lo, -1
		for u < hi {
			x := rng.Float64()
			w += 1 + int(logf(1-x)/lnq)
			for u < hi && w >= u {
				w -= u
				u++
			}
			if u < hi {
				s.Add(int32(u), int32(w))
			}
		}
	})
	return eb
}

// ErdosRenyiParallel returns a G(n, p) sample constructed with workers
// goroutines, bit-identical across worker counts for a fixed seed.
func ErdosRenyiParallel(n int, p float64, seed int64, workers int) *graph.Graph {
	workers = clampWorkers(workers)
	if p >= 1 && n >= 2 {
		return Complete(n)
	}
	return ErdosRenyiParallelEdges(n, p, seed, workers).Build(workers)
}

// ConfigurationModelEdges realizes a degree sequence as erased
// configuration-model edges in an unbuilt EdgeBuilder. The stub shuffle —
// the only randomness — is one sequential Fisher–Yates pass, exactly as in
// ConfigurationModel; stub filling and the pairing pass fan out over index
// ranges. Self-loops are dropped here; parallel edges are erased by the
// EdgeBuilder's build-time dedup, which yields the same simple graph as
// dropping them at insertion.
func ConfigurationModelEdges(degrees []int, seed int64, workers int) (*graph.EdgeBuilder, error) {
	workers = clampWorkers(workers)
	n := len(degrees)
	offs := make([]int64, n+1)
	var total int64
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("gen: negative degree %d at vertex %d", d, v)
		}
		if d >= n {
			return nil, fmt.Errorf("gen: degree %d at vertex %d exceeds n-1=%d", d, v, n-1)
		}
		offs[v] = total
		total += int64(d)
	}
	offs[n] = total
	if total%2 == 1 {
		return nil, fmt.Errorf("gen: degree sum %d is odd", total)
	}
	eb := graph.NewEdgeBuilder(n, workers)
	if total == 0 {
		return eb, nil
	}
	stubs := make([]int32, total)
	vertexCuts := workCuts(prefixFloat(offs), samplerRanges)
	runSharded(eb, workers, len(vertexCuts)-1, func(_ *graph.EdgeShard, r int) {
		for v := vertexCuts[r]; v < vertexCuts[r+1]; v++ {
			row := stubs[offs[v]:offs[v+1]]
			for i := range row {
				row[i] = int32(v)
			}
		}
	})
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	pairs := int(total / 2)
	pairPrefix := make([]float64, pairs+1)
	for i := 1; i <= pairs; i++ {
		pairPrefix[i] = float64(i)
	}
	pairCuts := workCuts(pairPrefix, samplerRanges)
	runSharded(eb, workers, len(pairCuts)-1, func(s *graph.EdgeShard, r int) {
		for i := pairCuts[r]; i < pairCuts[r+1]; i++ {
			u, v := stubs[2*i], stubs[2*i+1]
			if u != v {
				s.Add(u, v)
			}
		}
	})
	return eb, nil
}

// prefixFloat converts an int64 prefix-sum into the float64 form workCuts
// consumes.
func prefixFloat(offs []int64) []float64 {
	out := make([]float64, len(offs))
	for i, x := range offs {
		out[i] = float64(x)
	}
	return out
}

// ConfigurationModelParallel realizes a degree sequence with workers
// goroutines. For a fixed seed the result is identical to the sequential
// ConfigurationModel at every worker count (the shuffle is shared; only
// the stub filling, pairing and CSR build are parallel).
func ConfigurationModelParallel(degrees []int, seed int64, workers int) (*graph.Graph, error) {
	workers = clampWorkers(workers)
	eb, err := ConfigurationModelEdges(degrees, seed, workers)
	if err != nil {
		return nil, err
	}
	return eb.Build(workers), nil
}
