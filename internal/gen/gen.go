// Package gen provides deterministic graph generators used as workloads by
// the experiments and tests: classical fixtures, Erdős–Rényi, random trees,
// Barabási–Albert preferential attachment, Chung–Lu expected-degree graphs,
// the power-law configuration model, Waxman's geometric model, and the
// paper's Section-5 constructive embedding into the P_l family.
//
// All generators take an explicit seed (or *rand.Rand) so that every
// experiment is reproducible bit-for-bit.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Path returns the path graph on n vertices: 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(b, i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices (n >= 3 for a proper cycle;
// smaller n degrade to a path).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustEdge(b, i, i+1)
	}
	if n >= 3 {
		mustEdge(b, n-1, 0)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		mustEdge(b, 0, i)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustEdge(b, u, v)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	bl := graph.NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			mustEdge(bl, u, v)
		}
	}
	return bl.Build()
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustEdge(b, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustEdge(b, id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// ErdosRenyi returns a G(n, p) sample using geometric edge skipping, which
// runs in O(n + m) expected time.
func ErdosRenyi(n int, p float64, seed int64) *graph.Graph {
	b := graph.NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	rng := rand.New(rand.NewSource(seed))
	// Batagelj–Brandes geometric skipping: u is the larger endpoint, w the
	// smaller; row u has cells w = 0..u-1.
	lnq := logOneMinus(p)
	u, w := 1, -1
	for u < n {
		r := rng.Float64()
		w += 1 + int(logf(1-r)/lnq)
		for w >= u && u < n {
			w -= u
			u++
		}
		if u < n {
			mustEdge(b, u, w)
		}
	}
	return b.Build()
}

// ErdosRenyiM returns a uniform graph with exactly m distinct edges
// (m is clamped to the number of available vertex pairs).
func ErdosRenyiM(n, m int, seed int64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	added := 0
	for added < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		mustEdge(b, u, v)
		added++
	}
	return b.Build()
}

// RandomTree returns a uniform-attachment random tree on n vertices:
// vertex i attaches to a uniformly random earlier vertex.
func RandomTree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		mustEdge(b, rng.Intn(v), v)
	}
	return b.Build()
}

func mustEdge(b *graph.Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		// Generators construct edges from in-range loop indices; an error
		// here is a programming bug, not a runtime condition.
		panic(fmt.Sprintf("gen: internal edge error: %v", err))
	}
}

// logf and logOneMinus wrap math.Log with guards for the skipping sampler.
func logf(x float64) float64 {
	if x <= 0 {
		x = 1e-300
	}
	return math.Log(x)
}

func logOneMinus(p float64) float64 {
	q := 1 - p
	if q <= 0 {
		q = 1e-300
	}
	return math.Log(q)
}
