// Package gen provides deterministic graph generators used as workloads by
// the experiments and tests: classical fixtures, Erdős–Rényi, random trees,
// Barabási–Albert preferential attachment, Chung–Lu expected-degree graphs,
// the power-law configuration model, Waxman's geometric model, and the
// paper's Section-5 constructive embedding into the P_l family.
//
// All generators take an explicit seed (or *rand.Rand) so that every
// experiment is reproducible bit-for-bit. Generators that stream edges
// without needing incremental membership tests collect into a
// graph.EdgeBuilder (the two-pass CSR path); the ones that must query the
// partial graph while generating (ErdosRenyiM, Hierarchical, PlEmbed) stay
// on graph.Builder. The *Parallel variants in parallel.go shard the
// samplers across workers with fixed per-range RNG streams.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Path returns the path graph on n vertices: 0-1-...-(n-1).
func Path(n int) *graph.Graph {
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for i := 0; i+1 < n; i++ {
		s.Add(int32(i), int32(i+1))
	}
	return eb.Build(1)
}

// Cycle returns the cycle graph on n vertices (n >= 3 for a proper cycle;
// smaller n degrade to a path).
func Cycle(n int) *graph.Graph {
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for i := 0; i+1 < n; i++ {
		s.Add(int32(i), int32(i+1))
	}
	if n >= 3 {
		s.Add(int32(n-1), 0)
	}
	return eb.Build(1)
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for i := 1; i < n; i++ {
		s.Add(0, int32(i))
	}
	return eb.Build(1)
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			s.Add(int32(u), int32(v))
		}
	}
	return eb.Build(1)
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	eb := graph.NewEdgeBuilder(a+b, 1)
	s := eb.Shard(0)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			s.Add(int32(u), int32(v))
		}
	}
	return eb.Build(1)
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	eb := graph.NewEdgeBuilder(rows*cols, 1)
	s := eb.Shard(0)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				s.Add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				s.Add(id(r, c), id(r+1, c))
			}
		}
	}
	return eb.Build(1)
}

// ErdosRenyi returns a G(n, p) sample using geometric edge skipping, which
// runs in O(n + m) expected time.
func ErdosRenyi(n int, p float64, seed int64) *graph.Graph {
	if p <= 0 || n < 2 {
		return graph.Empty(n)
	}
	if p >= 1 {
		return Complete(n)
	}
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	rng := rand.New(rand.NewSource(seed))
	// Batagelj–Brandes geometric skipping: u is the larger endpoint, w the
	// smaller; row u has cells w = 0..u-1.
	lnq := logOneMinus(p)
	u, w := 1, -1
	for u < n {
		r := rng.Float64()
		w += 1 + int(logf(1-r)/lnq)
		for w >= u && u < n {
			w -= u
			u++
		}
		if u < n {
			s.Add(int32(u), int32(w))
		}
	}
	return eb.Build(1)
}

// ErdosRenyiM returns a uniform graph with exactly m distinct edges
// (m is clamped to the number of available vertex pairs). Needs incremental
// HasEdge rejection, so it builds through graph.Builder.
func ErdosRenyiM(n, m int, seed int64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	added := 0
	for added < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		mustEdge(b, u, v)
		added++
	}
	return b.Build()
}

// RandomTree returns a uniform-attachment random tree on n vertices:
// vertex i attaches to a uniformly random earlier vertex.
func RandomTree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	for v := 1; v < n; v++ {
		s.Add(int32(rng.Intn(v)), int32(v))
	}
	return eb.Build(1)
}

func mustEdge(b *graph.Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		// Generators construct edges from in-range loop indices; an error
		// here is a programming bug, not a runtime condition.
		panic(fmt.Sprintf("gen: internal edge error: %v", err))
	}
}

// logf and logOneMinus wrap math.Log with guards for the skipping sampler.
func logf(x float64) float64 {
	if x <= 0 {
		x = 1e-300
	}
	return math.Log(x)
}

func logOneMinus(p float64) float64 {
	q := 1 - p
	if q <= 0 {
		q = 1e-300
	}
	return math.Log(q)
}
