package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestPathCycleStar(t *testing.T) {
	p := Path(5)
	if p.N() != 5 || p.M() != 4 {
		t.Errorf("path: n=%d m=%d", p.N(), p.M())
	}
	c := Cycle(5)
	if c.M() != 5 {
		t.Errorf("cycle: m=%d", c.M())
	}
	for v := 0; v < 5; v++ {
		if c.Degree(v) != 2 {
			t.Errorf("cycle degree(%d)=%d", v, c.Degree(v))
		}
	}
	s := Star(6)
	if s.Degree(0) != 5 || s.M() != 5 {
		t.Errorf("star: center=%d m=%d", s.Degree(0), s.M())
	}
	// Degenerate sizes must not panic.
	if Path(0).N() != 0 || Cycle(1).N() != 1 || Star(1).M() != 0 {
		t.Error("degenerate fixtures wrong")
	}
}

func TestCompleteAndBipartite(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 {
		t.Errorf("K6 m=%d", k.M())
	}
	kb := CompleteBipartite(3, 4)
	if kb.M() != 12 || kb.N() != 7 {
		t.Errorf("K(3,4): n=%d m=%d", kb.N(), kb.M())
	}
	if kb.HasEdge(0, 1) {
		t.Error("edge within bipartite part")
	}
	if !kb.HasEdge(0, 3) {
		t.Error("missing cross edge")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Errorf("n=%d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Errorf("m=%d, want 17", g.M())
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	if g := ErdosRenyi(10, 0, 1); g.M() != 0 {
		t.Errorf("p=0: m=%d", g.M())
	}
	if g := ErdosRenyi(6, 1, 1); g.M() != 15 {
		t.Errorf("p=1: m=%d", g.M())
	}
	if g := ErdosRenyi(1, 0.5, 1); g.N() != 1 || g.M() != 0 {
		t.Error("n=1 wrong")
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	n, p := 500, 0.05
	g := ErdosRenyi(n, p, 42)
	want := p * float64(n*(n-1)/2)
	got := float64(g.M())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("m=%v, expected near %v", got, want)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 0.1, 7)
	b := ErdosRenyi(100, 0.1, 7)
	if !graph.EqualGraph(a, b) {
		t.Error("same seed produced different graphs")
	}
	c := ErdosRenyi(100, 0.1, 8)
	if graph.EqualGraph(a, c) {
		t.Error("different seeds produced identical graphs (suspicious)")
	}
}

func TestErdosRenyiM(t *testing.T) {
	g := ErdosRenyiM(50, 100, 3)
	if g.M() != 100 {
		t.Errorf("m=%d, want 100", g.M())
	}
	// Clamp beyond max possible.
	g2 := ErdosRenyiM(5, 1000, 3)
	if g2.M() != 10 {
		t.Errorf("clamped m=%d, want 10", g2.M())
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(200, 11)
	if g.M() != 199 {
		t.Errorf("tree edges=%d", g.M())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("tree components=%d", count)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(3, 3, 1); err == nil {
		t.Error("n < m+1 accepted")
	}
}

func TestBarabasiAlbertStructure(t *testing.T) {
	n, m := 500, 3
	g, err := BarabasiAlbert(n, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Errorf("n=%d", g.N())
	}
	wantM := m*(m+1)/2 + m*(n-m-1)
	if g.M() != wantM {
		t.Errorf("m=%d, want %d", g.M(), wantM)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) < m {
			t.Errorf("degree(%d)=%d < m", v, g.Degree(v))
		}
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("BA graph disconnected: %d components", count)
	}
}

func TestBarabasiAlbertHubGrowth(t *testing.T) {
	// Preferential attachment must produce hubs far above the minimum
	// degree; uniform attachment would cap near O(log n).
	g, err := BarabasiAlbert(3000, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 30 {
		t.Errorf("max degree %d suspiciously small for BA", g.MaxDegree())
	}
}

func TestPowerLawWeights(t *testing.T) {
	if _, err := PowerLawWeights(10, 2.0, 1); err == nil {
		t.Error("alpha=2 accepted")
	}
	if _, err := PowerLawWeights(10, 2.5, 0); err == nil {
		t.Error("wmin=0 accepted")
	}
	w, err := PowerLawWeights(1000, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Non-increasing and bounded below by wmin-ish at the tail.
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1]+1e-12 {
			t.Fatalf("weights increase at %d", i)
		}
	}
	if w[len(w)-1] < 1.9 {
		t.Errorf("tail weight %v below wmin", w[len(w)-1])
	}
}

func TestChungLuMeanDegree(t *testing.T) {
	n := 5000
	alpha, wmin := 2.5, 2.0
	g, err := ChungLuPowerLaw(n, alpha, wmin, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Mean weight ≈ wmin(α-1)/(α-2) = 6; realized mean degree should be in
	// the same ballpark (cap and sampling lose a little).
	mean := 2 * float64(g.M()) / float64(n)
	if mean < 2 || mean > 12 {
		t.Errorf("mean degree %.2f outside sane window", mean)
	}
}

func TestChungLuDeterministic(t *testing.T) {
	a, err := ChungLuPowerLaw(500, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChungLuPowerLaw(500, 2.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualGraph(a, b) {
		t.Error("same seed produced different Chung–Lu graphs")
	}
}

func TestChungLuHeavyTail(t *testing.T) {
	g, err := ChungLuPowerLaw(10000, 2.2, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	// A power-law graph must have a hub much larger than the mean degree.
	mean := 2 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 8*mean {
		t.Errorf("max degree %d vs mean %.1f: tail too light", g.MaxDegree(), mean)
	}
}

func TestZetaSampler(t *testing.T) {
	if _, err := NewZetaDegreeSampler(1.0, 10); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := NewZetaDegreeSampler(2.5, 0); err == nil {
		t.Error("kmax=0 accepted")
	}
	s, err := NewZetaDegreeSampler(3.0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(1)
	var sum float64
	const samples = 20000
	for i := 0; i < samples; i++ {
		sum += float64(s.Sample(rng))
	}
	mean := sum / samples
	// E[K] = ζ(2)/ζ(3) ≈ 1.3684 for α=3.
	want := (math.Pi * math.Pi / 6) / 1.2020569
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("zeta sample mean %.3f, want ≈ %.3f", mean, want)
	}
}

func TestPowerLawDegreeSequenceEven(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		deg, err := PowerLawDegreeSequence(101, 2.5, 100, seed)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, d := range deg {
			sum += d
		}
		if sum%2 != 0 {
			t.Errorf("seed %d: odd degree sum %d", seed, sum)
		}
	}
}

func TestConfigurationModelValidation(t *testing.T) {
	if _, err := ConfigurationModel([]int{1, 1, 1}, 1); err == nil {
		t.Error("odd sum accepted")
	}
	if _, err := ConfigurationModel([]int{-1, 1}, 1); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := ConfigurationModel([]int{3, 1}, 1); err == nil {
		t.Error("degree >= n accepted")
	}
}

func TestConfigurationModelRealizesBounds(t *testing.T) {
	deg := []int{3, 2, 2, 2, 1, 1, 1, 2} // sum 14, even
	g, err := ConfigurationModel(deg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range deg {
		if g.Degree(v) > want {
			t.Errorf("vertex %d: degree %d exceeds requested %d", v, g.Degree(v), want)
		}
	}
	// Erased model may drop a few, but most stubs should survive.
	if g.M() < 4 {
		t.Errorf("only %d edges realized", g.M())
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	g, err := PowerLawConfiguration(2000, 2.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Errorf("n=%d", g.N())
	}
	// Most vertices have degree 1 under a zeta distribution.
	h := g.DegreeHistogram()
	if len(h) > 1 && h[1] < 1000 {
		t.Errorf("|V_1| = %d, expected majority", h[1])
	}
}

func TestWaxmanValidation(t *testing.T) {
	if _, err := Waxman(10, -0.1, 0.5, 1); err == nil {
		t.Error("beta<0 accepted")
	}
	if _, err := Waxman(10, 0.5, 0, 1); err == nil {
		t.Error("gamma=0 accepted")
	}
	g, err := Waxman(50, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Errorf("beta=0 produced %d edges", g.M())
	}
}

func TestWaxmanDensityScalesWithBeta(t *testing.T) {
	lo, err := Waxman(200, 0.1, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Waxman(200, 0.9, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hi.M() <= lo.M() {
		t.Errorf("beta=0.9 gave %d edges vs %d at beta=0.1", hi.M(), lo.M())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, err := BarabasiAlbert(400, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(400, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualGraph(a, b) {
		t.Error("same seed produced different BA graphs")
	}
}

func TestLogNormalWeights(t *testing.T) {
	if _, err := LogNormalWeights(10, 1, 0, 1); err == nil {
		t.Error("sigma=0 accepted")
	}
	if _, err := LogNormalWeights(-1, 1, 1, 1); err == nil {
		t.Error("negative n accepted")
	}
	w, err := LogNormalWeights(5000, 1.0, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if x < 1 {
			t.Fatalf("weight %v below the floor", x)
		}
	}
}

func TestChungLuLogNormal(t *testing.T) {
	g, err := ChungLuLogNormal(3000, 1.0, 1.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3000 || g.M() == 0 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
	// Lognormal tails are lighter than power laws but still produce hubs.
	if g.MaxDegree() < 3*int(g.MeanDegree()) {
		t.Errorf("maxdeg %d vs mean %.1f: no hubs at all", g.MaxDegree(), g.MeanDegree())
	}
}

func TestHierarchicalValidation(t *testing.T) {
	if _, err := Hierarchical(0, 4, 8, 0.2, 1); err == nil {
		t.Error("levels=0 accepted")
	}
	if _, err := Hierarchical(2, 1, 8, 0.2, 1); err == nil {
		t.Error("fanout=1 accepted")
	}
	if _, err := Hierarchical(2, 4, 1, 0.2, 1); err == nil {
		t.Error("leafSize=1 accepted")
	}
	if _, err := Hierarchical(2, 4, 8, 0, 1); err == nil {
		t.Error("pIntra=0 accepted")
	}
}

func TestHierarchicalStructure(t *testing.T) {
	g, err := Hierarchical(3, 4, 16, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16*16 {
		t.Fatalf("n=%d, want 256", g.N())
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Errorf("hierarchical topology disconnected: %d components", count)
	}
	// Clustering should be clearly nonzero (dense leaf domains), unlike a
	// Chung–Lu graph of similar density.
	if cc := g.GlobalClustering(); cc < 0.05 {
		t.Errorf("clustering %v suspiciously low for dense leaf domains", cc)
	}
}

func TestHierarchicalSingleLevel(t *testing.T) {
	g, err := Hierarchical(1, 4, 20, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Errorf("single-level n=%d, want 20", g.N())
	}
}
