package gen

import (
	"bytes"
	"math"
	"runtime"
	"sort"
	"testing"

	"repro/internal/graph"
)

// workerCounts is the matrix every parallel sampler must be invariant over.
var workerCounts = []int{1, 2, 7, runtime.GOMAXPROCS(0)}

func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertWorkerInvariant builds the graph at every worker count and asserts
// byte-identical serializations.
func assertWorkerInvariant(t *testing.T, name string, build func(workers int) *graph.Graph) {
	t.Helper()
	var ref []byte
	for _, w := range workerCounts {
		got := graphBytes(t, build(w))
		if ref == nil {
			ref = got
		} else if !bytes.Equal(ref, got) {
			t.Errorf("%s: graph differs between workers=%d and workers=%d", name, workerCounts[0], w)
		}
	}
}

func TestChungLuParallelWorkerInvariance(t *testing.T) {
	w, err := PowerLawWeights(2000, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkerInvariant(t, "chunglu", func(workers int) *graph.Graph {
		return ChungLuParallel(w, 11, workers)
	})
}

func TestErdosRenyiParallelWorkerInvariance(t *testing.T) {
	assertWorkerInvariant(t, "er", func(workers int) *graph.Graph {
		return ErdosRenyiParallel(1500, 0.01, 11, workers)
	})
}

func TestConfigurationModelParallelWorkerInvariance(t *testing.T) {
	deg, err := PowerLawDegreeSequence(2000, 2.5, 1999, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkerInvariant(t, "config", func(workers int) *graph.Graph {
		g, err := ConfigurationModelParallel(deg, 11, workers)
		if err != nil {
			t.Fatal(err)
		}
		return g
	})
}

// TestConfigurationModelParallelMatchesSequential: the parallel variant
// shares the sequential shuffle, so it must produce the *identical* graph,
// not merely one from the same distribution.
func TestConfigurationModelParallelMatchesSequential(t *testing.T) {
	deg, err := PowerLawDegreeSequence(1500, 2.5, 1499, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ConfigurationModel(deg, 42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ConfigurationModelParallel(deg, 42, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualGraph(seq, par) {
		t.Error("parallel configuration model differs from sequential")
	}
}

func TestParallelSamplersDeterministicAndSeedSensitive(t *testing.T) {
	w, err := PowerLawWeights(1000, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := graphBytes(t, ChungLuParallel(w, 3, 4))
	b := graphBytes(t, ChungLuParallel(w, 3, 4))
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different graphs")
	}
	c := graphBytes(t, ChungLuParallel(w, 4, 4))
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical graphs")
	}
}

// ksStatistic computes the two-sample Kolmogorov–Smirnov statistic of two
// integer samples: the max distance between their empirical CDFs,
// evaluated at distinct values (ties advance both cursors together, as
// required for discrete data).
func ksStatistic(a, b []int) float64 {
	sa, sb := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(sa)
	sort.Ints(sb)
	i, j, d := 0, 0, 0.0
	for i < len(sa) || j < len(sb) {
		var x int
		switch {
		case i >= len(sa):
			x = sb[j]
		case j >= len(sb):
			x = sa[i]
		case sa[i] <= sb[j]:
			x = sa[i]
		default:
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// TestChungLuParallelConformance: the sharded sampler draws a different
// realization than the single-stream ChungLu, but from the same
// distribution. Check edge-count agreement and a KS-style bound on the
// degree distributions.
func TestChungLuParallelConformance(t *testing.T) {
	const n = 6000
	w, err := PowerLawWeights(n, 2.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq := ChungLu(w, 17)
	par := ChungLuParallel(w, 17, 4)
	ms, mp := float64(seq.M()), float64(par.M())
	if mp < ms*0.9 || mp > ms*1.1 {
		t.Errorf("edge counts diverge: sequential %v, parallel %v", ms, mp)
	}
	if d := ksStatistic(seq.Degrees(), par.Degrees()); d > 0.05 {
		t.Errorf("degree-distribution KS statistic %.4f exceeds 0.05", d)
	}
	// Degree sums must agree within a few percent (same expected value).
	var ds, dp int
	for _, d := range seq.Degrees() {
		ds += d
	}
	for _, d := range par.Degrees() {
		dp += d
	}
	if math.Abs(float64(ds-dp)) > 0.1*float64(ds) {
		t.Errorf("degree sums diverge: %d vs %d", ds, dp)
	}
}

// TestErdosRenyiParallelConformance checks the parallel G(n,p) edge count
// against its binomial expectation.
func TestErdosRenyiParallelConformance(t *testing.T) {
	const (
		n = 3000
		p = 0.004
	)
	g := ErdosRenyiParallel(n, p, 23, 4)
	mean := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(mean * (1 - p))
	if m := float64(g.M()); math.Abs(m-mean) > 6*sd {
		t.Errorf("m=%v, expected %v ± %v", m, mean, 6*sd)
	}
	// Cross-seed independence sanity: two seeds differ.
	if graph.EqualGraph(g, ErdosRenyiParallel(n, p, 24, 4)) {
		t.Error("different seeds produced identical G(n,p)")
	}
}

func TestErdosRenyiParallelExtremes(t *testing.T) {
	if g := ErdosRenyiParallel(10, 0, 1, 4); g.M() != 0 {
		t.Errorf("p=0: m=%d", g.M())
	}
	if g := ErdosRenyiParallel(6, 1, 1, 4); g.M() != 15 {
		t.Errorf("p=1: m=%d", g.M())
	}
	if g := ErdosRenyiParallel(1, 0.5, 1, 4); g.N() != 1 || g.M() != 0 {
		t.Error("n=1 wrong")
	}
}

func TestChungLuParallelDegenerate(t *testing.T) {
	if g := ChungLuParallel(nil, 1, 4); g.N() != 0 {
		t.Error("empty weights wrong")
	}
	if g := ChungLuParallel([]float64{5}, 1, 4); g.N() != 1 || g.M() != 0 {
		t.Error("single vertex wrong")
	}
	if g := ChungLuParallel([]float64{0, 0, 0}, 1, 4); g.M() != 0 {
		t.Error("zero weights produced edges")
	}
}

func TestChungLuPowerLawParallel(t *testing.T) {
	g, err := ChungLuPowerLawParallel(2000, 2.5, 2, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 || g.M() == 0 {
		t.Errorf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := ChungLuPowerLawParallel(100, 1.5, 2, 7, 3); err == nil {
		t.Error("alpha <= 2 accepted")
	}
}

func TestConfigurationModelEdgesErrors(t *testing.T) {
	if _, err := ConfigurationModelEdges([]int{-1, 1}, 1, 2); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := ConfigurationModelEdges([]int{3, 1}, 1, 2); err == nil {
		t.Error("degree >= n accepted")
	}
	if _, err := ConfigurationModelEdges([]int{1, 1, 1}, 1, 2); err == nil {
		t.Error("odd degree sum accepted")
	}
	eb, err := ConfigurationModelEdges([]int{0, 0}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g := eb.Build(1); g.M() != 0 {
		t.Error("empty degree sequence produced edges")
	}
}

// TestRngStreamsDiffer guards the stream derivation: adjacent range ids
// under the same seed must give visibly different streams.
func TestRngStreamsDiffer(t *testing.T) {
	a, b := rngStream(1, 0), rngStream(1, 1)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 16 {
		t.Error("adjacent streams identical")
	}
}
