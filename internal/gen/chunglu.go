package gen

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/graph"
)

// PowerLawWeights returns n expected-degree weights following a power law
// with exponent alpha > 2: w_i = wmin·(n/(i+1))^(1/(α-1)). The tail
// |{i : w_i ≥ x}| ∝ x^{-(α-1)} yields a degree density exponent of α, and
// the mean weight tends to wmin·(α-1)/(α-2). Weights are capped at √(Σw) to
// keep Chung–Lu edge probabilities below 1 (cap distortion affects only the
// few largest hubs).
func PowerLawWeights(n int, alpha, wmin float64) ([]float64, error) {
	if alpha <= 2 {
		return nil, fmt.Errorf("gen: Chung–Lu weights need alpha > 2, got %v", alpha)
	}
	if wmin <= 0 {
		return nil, fmt.Errorf("gen: wmin must be positive, got %v", wmin)
	}
	w := make([]float64, n)
	exp := 1 / (alpha - 1)
	var sum float64
	for i := 0; i < n; i++ {
		w[i] = wmin * math.Pow(float64(n)/float64(i+1), exp)
		sum += w[i]
	}
	wCap := math.Sqrt(sum)
	for i := range w {
		if w[i] > wCap {
			w[i] = wCap
		}
	}
	return w, nil
}

// ChungLu samples a graph where edge {u,v} appears independently with
// probability min(1, w_u·w_v / Σw). Uses the Miller–Hagberg skipping
// algorithm, which runs in O(n + m) expected time and requires the weights
// sorted in non-increasing order (the function sorts a copy; vertex i of the
// output has weight rank i). This is the single-RNG-stream reference
// sampler; ChungLuParallel draws the same distribution from sharded
// per-range streams.
func ChungLu(weights []float64, seed int64) *graph.Graph {
	n := len(weights)
	w := slices.Clone(weights)
	slices.SortFunc(w, func(a, b float64) int { return cmp.Compare(b, a) })
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 || n < 2 {
		return graph.Empty(n)
	}
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(w[u]*w[v]/total, 1)
		for v < n && p > 0 {
			if p != 1 {
				r := rng.Float64()
				v += int(logf(r) / logOneMinus(p))
			}
			if v < n {
				q := math.Min(w[u]*w[v]/total, 1)
				if rng.Float64() < q/p {
					s.Add(int32(u), int32(v))
				}
				p = q
				v++
			}
		}
	}
	return eb.Build(1)
}

// ChungLuPowerLaw is the composition used throughout the experiments: a
// Chung–Lu graph whose expected degrees follow a power law with exponent
// alpha and minimum expected degree wmin.
func ChungLuPowerLaw(n int, alpha, wmin float64, seed int64) (*graph.Graph, error) {
	w, err := PowerLawWeights(n, alpha, wmin)
	if err != nil {
		return nil, err
	}
	return ChungLu(w, seed), nil
}
