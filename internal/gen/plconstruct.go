package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/powerlaw"
)

// PlEmbedding is the result of the Section-5 construction: a graph G in the
// family P_l(α) together with the vertex IDs of G hosting the embedded graph
// H as an induced subgraph (Host[i] hosts H's vertex i).
type PlEmbedding struct {
	G    *graph.Graph
	Host []int
}

// PlEmbed implements the constructive proof of Theorem 6: given the paper's
// parameters for (α, n) and an arbitrary graph H on exactly i₁ = Θ(n^(1/α))
// vertices, it builds an n-vertex graph G ∈ P_l containing H as an induced
// subgraph. Because adjacency labels for G restrict to labels for the
// arbitrary H, any labeling scheme for P_l needs ⌊i₁/2⌋-bit labels.
//
// The construction follows the paper exactly: target degree classes
// V_1, ..., V_n are sized per Definition 2; H is planted on i₁ of the
// singleton high-degree classes; then three phases of edge padding raise
// every vertex to its target degree.
func PlEmbed(p powerlaw.Params, h *graph.Graph) (*PlEmbedding, error) {
	n := p.N
	i1 := p.I1
	if h.N() != i1 {
		return nil, fmt.Errorf("gen: H must have exactly i₁=%d vertices, got %d", i1, h.N())
	}
	cn := p.C * float64(n)

	// Size the degree classes. class sizes: |V_1| = ⌊Cn⌋ - i₁,
	// |V_i| = ⌊Cn/i^α⌋ for 2 <= i <= i₁-1, then n-n' singletons with target
	// degrees i₁, i₁+1, ..., and empty classes beyond.
	size1 := int(math.Floor(cn)) - i1
	if size1 < 0 {
		return nil, fmt.Errorf("gen: n=%d too small for α=%v (⌊Cn⌋-i₁ = %d < 0)", n, p.Alpha, size1)
	}
	classSize := make([]int, i1) // classSize[i] for degrees 1..i1-1; index 0 unused
	if i1 >= 2 {
		classSize[1] = size1
	}
	nPrime := size1
	for i := 2; i < i1; i++ {
		s := int(math.Floor(cn / math.Pow(float64(i), p.Alpha)))
		classSize[i] = s
		nPrime += s
	}
	singles := n - nPrime // number of singleton classes V_{i₁}..V_{i₁+singles-1}
	if singles < i1 {
		return nil, fmt.Errorf("gen: construction needs n-n' >= i₁ (have %d < %d); increase n", singles, i1)
	}

	// Assign vertex IDs: V_1 first, then V_2, ..., V_{i₁-1}, then singletons.
	target := make([]int, n) // target degree per vertex
	id := 0
	for i := 1; i < i1; i++ {
		for k := 0; k < classSize[i]; k++ {
			target[id] = i
			id++
		}
	}
	firstSingle := id
	for k := 0; k < singles; k++ {
		target[id] = i1 + k
		id++
	}
	if id != n {
		return nil, fmt.Errorf("gen: internal: assigned %d of %d vertices", id, n)
	}

	b := graph.NewBuilder(n)
	deg := make([]int, n)
	addEdge := func(u, v int) error {
		if err := b.AddEdge(u, v); err != nil {
			return err
		}
		deg[u]++
		deg[v]++
		return nil
	}

	// Plant H on the first i₁ singleton classes (targets i₁..2i₁-1, all of
	// which exceed H's maximum possible degree i₁-1).
	host := make([]int, i1)
	for i := range host {
		host[i] = firstSingle + i
	}
	var edgeErr error
	h.Edges(func(u, v int) {
		if edgeErr == nil {
			edgeErr = addEdge(host[u], host[v])
		}
	})
	if edgeErr != nil {
		return nil, edgeErr
	}

	inHost := make([]bool, n)
	for _, v := range host {
		inHost[v] = true
	}
	// V' = V \ (V_1 ∪ V_H): vertices with target >= 2 that are not hosts.
	var vPrime []int
	for v := 0; v < n; v++ {
		if target[v] >= 2 && !inHost[v] {
			vPrime = append(vPrime, v)
		}
	}

	// Phase 1: raise every host vertex to its target degree using fresh V'
	// partners. A queue over V' guarantees each (host, partner) pair is used
	// at most once.
	queue := make([]int, len(vPrime))
	copy(queue, vPrime)
	qHead := 0
	for _, hv := range host {
		for deg[hv] < target[hv] {
			// Find the next V' vertex with remaining capacity that is not
			// already adjacent to hv.
			found := -1
			for probe := qHead; probe < len(queue); probe++ {
				u := queue[probe]
				if deg[u] < target[u] && !b.HasEdge(u, hv) {
					found = probe
					break
				}
			}
			if found == -1 {
				return nil, fmt.Errorf("gen: phase 1 exhausted V' capacity (n too small for α=%v)", p.Alpha)
			}
			// Compact the queue head past filled vertices.
			u := queue[found]
			if err := addEdge(u, hv); err != nil {
				return nil, err
			}
			for qHead < len(queue) && deg[queue[qHead]] >= target[queue[qHead]] {
				qHead++
			}
		}
	}

	// Phase 2: realize the residual degrees within V' by a bucket-based
	// Havel–Hakimi: repeatedly extract a vertex with maximum deficit d and
	// connect it to d vertices of next-largest deficits. The extracted
	// vertex never reappears, and the only pre-existing V'-incident edges go
	// to hosts, so no duplicate edge can be attempted among live V' pairs.
	// A vertex whose deficit exceeds the number of remaining live vertices
	// is set aside as a leftover and later satisfied from V_1, exactly as in
	// the paper's Phase 2 tail step.
	type defVertex struct{ v, deficit int }
	maxTarget := 0
	for _, v := range vPrime {
		if target[v] > maxTarget {
			maxTarget = target[v]
		}
	}
	buckets := make([][]int, maxTarget+1) // buckets[d] = vertices with deficit d
	deficit := make(map[int]int, len(vPrime))
	for _, v := range vPrime {
		if d := target[v] - deg[v]; d > 0 {
			buckets[d] = append(buckets[d], v)
			deficit[v] = d
		}
	}
	// pop removes and returns any vertex from buckets[d].
	pop := func(d int) int {
		lst := buckets[d]
		v := lst[len(lst)-1]
		buckets[d] = lst[:len(lst)-1]
		return v
	}
	var leftovers []defVertex
	maxD := maxTarget
	for {
		for maxD > 0 && len(buckets[maxD]) == 0 {
			maxD--
		}
		if maxD == 0 {
			break
		}
		top := pop(maxD)
		d := maxD
		delete(deficit, top)
		// Collect up to d partners, scanning deficits from high to low.
		partners := make([]int, 0, d)
		scan := maxD
		for len(partners) < d && scan > 0 {
			if len(buckets[scan]) == 0 {
				scan--
				continue
			}
			partners = append(partners, pop(scan))
		}
		for _, u := range partners {
			if err := addEdge(top, u); err != nil {
				return nil, err
			}
			nd := deficit[u] - 1
			if nd > 0 {
				deficit[u] = nd
				buckets[nd] = append(buckets[nd], u)
			} else {
				delete(deficit, u)
			}
		}
		if len(partners) < d {
			leftovers = append(leftovers, defVertex{v: top, deficit: d - len(partners)})
		}
	}

	// Vertices of V_1 (target degree 1), all still at degree 0.
	var v1 []int
	for v := 0; v < n; v++ {
		if target[v] == 1 {
			v1 = append(v1, v)
		}
	}
	v1Pos := 0
	// Satisfy Phase-2 leftovers from degree-0 V_1 vertices.
	for _, lo := range leftovers {
		for k := 0; k < lo.deficit; k++ {
			if v1Pos >= len(v1) {
				return nil, fmt.Errorf("gen: phase 2 leftover needs %d more V_1 vertices", lo.deficit-k)
			}
			if err := addEdge(lo.v, v1[v1Pos]); err != nil {
				return nil, err
			}
			v1Pos++
		}
	}

	// Phase 3: pair up the remaining degree-0 V_1 vertices.
	var unprocessed []int
	for _, v := range v1[v1Pos:] {
		if deg[v] == 0 {
			unprocessed = append(unprocessed, v)
		}
	}
	for i := 0; i+1 < len(unprocessed); i += 2 {
		if err := addEdge(unprocessed[i], unprocessed[i+1]); err != nil {
			return nil, err
		}
	}
	if len(unprocessed)%2 == 1 {
		// One degree-0 vertex w remains: connect it to a processed V_1
		// vertex w', moving w' into V_2. Definition 2's slack on |V_1| and
		// |V_2| absorbs this.
		w := unprocessed[len(unprocessed)-1]
		placed := false
		for _, cand := range v1 {
			if cand != w && deg[cand] == 1 && !b.HasEdge(w, cand) {
				if err := addEdge(w, cand); err != nil {
					return nil, err
				}
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("gen: phase 3 could not place final V_1 vertex")
		}
	}

	g := b.Build()
	// Construction invariant: every vertex hits its target degree (modulo
	// the single w' promoted from V_1 to V_2 in phase 3).
	return &PlEmbedding{G: g, Host: host}, nil
}
