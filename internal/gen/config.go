package gen

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/graph"
)

// ZetaDegreeSampler draws degrees from the discrete power-law ("zeta")
// distribution P(k) ∝ k^{-α} for k in [1, kmax], by inversion on a
// precomputed CDF.
type ZetaDegreeSampler struct {
	cdf []float64 // cdf[k-1] = P(K <= k)
}

// NewZetaDegreeSampler builds a sampler for exponent alpha > 1 truncated at
// kmax (use n-1 for an n-vertex simple graph).
func NewZetaDegreeSampler(alpha float64, kmax int) (*ZetaDegreeSampler, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("gen: zeta sampler needs alpha > 1, got %v", alpha)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("gen: kmax must be >= 1, got %d", kmax)
	}
	cdf := make([]float64, kmax)
	var sum float64
	for k := 1; k <= kmax; k++ {
		sum += math.Pow(float64(k), -alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZetaDegreeSampler{cdf: cdf}, nil
}

// Sample draws one degree.
func (s *ZetaDegreeSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i, _ := slices.BinarySearch(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	return i + 1
}

// PowerLawDegreeSequence draws n degrees from the truncated zeta
// distribution, adjusting the last entry's parity so the total is even (a
// requirement for any realizable degree sequence).
func PowerLawDegreeSequence(n int, alpha float64, kmax int, seed int64) ([]int, error) {
	s, err := NewZetaDegreeSampler(alpha, kmax)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	total := 0
	for i := range deg {
		deg[i] = s.Sample(rng)
		total += deg[i]
	}
	if total%2 == 1 {
		// Bump a degree-capped-safe entry by one.
		for i := range deg {
			if deg[i] < kmax {
				deg[i]++
				break
			}
		}
	}
	return deg, nil
}

// ConfigurationModel realizes a degree sequence by the erased configuration
// model: stubs are shuffled and paired, and self-loops/parallel edges are
// dropped. The realized degrees are therefore ≤ the requested ones, with the
// discrepancy concentrated on the largest hubs, which preserves the
// power-law tail shape used in the experiments. Parallel-edge erasure
// happens in the EdgeBuilder's build-time dedup (equivalent to dropping at
// insertion, without the per-edge HasEdge scan); ConfigurationModelParallel
// runs the same pairing fanned out over workers and returns the identical
// graph.
func ConfigurationModel(degrees []int, seed int64) (*graph.Graph, error) {
	return ConfigurationModelParallel(degrees, seed, 1)
}

// PowerLawConfiguration composes the two: an n-vertex erased
// configuration-model graph with zeta-distributed degrees.
func PowerLawConfiguration(n int, alpha float64, seed int64) (*graph.Graph, error) {
	kmax := n - 1
	if kmax < 1 {
		kmax = 1
	}
	deg, err := PowerLawDegreeSequence(n, alpha, kmax, seed)
	if err != nil {
		return nil, err
	}
	return ConfigurationModel(deg, seed+1)
}
