package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ZetaDegreeSampler draws degrees from the discrete power-law ("zeta")
// distribution P(k) ∝ k^{-α} for k in [1, kmax], by inversion on a
// precomputed CDF.
type ZetaDegreeSampler struct {
	cdf []float64 // cdf[k-1] = P(K <= k)
}

// NewZetaDegreeSampler builds a sampler for exponent alpha > 1 truncated at
// kmax (use n-1 for an n-vertex simple graph).
func NewZetaDegreeSampler(alpha float64, kmax int) (*ZetaDegreeSampler, error) {
	if alpha <= 1 {
		return nil, fmt.Errorf("gen: zeta sampler needs alpha > 1, got %v", alpha)
	}
	if kmax < 1 {
		return nil, fmt.Errorf("gen: kmax must be >= 1, got %d", kmax)
	}
	cdf := make([]float64, kmax)
	var sum float64
	for k := 1; k <= kmax; k++ {
		sum += math.Pow(float64(k), -alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZetaDegreeSampler{cdf: cdf}, nil
}

// Sample draws one degree.
func (s *ZetaDegreeSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	return i + 1
}

// PowerLawDegreeSequence draws n degrees from the truncated zeta
// distribution, adjusting the last entry's parity so the total is even (a
// requirement for any realizable degree sequence).
func PowerLawDegreeSequence(n int, alpha float64, kmax int, seed int64) ([]int, error) {
	s, err := NewZetaDegreeSampler(alpha, kmax)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	total := 0
	for i := range deg {
		deg[i] = s.Sample(rng)
		total += deg[i]
	}
	if total%2 == 1 {
		// Bump a degree-capped-safe entry by one.
		for i := range deg {
			if deg[i] < kmax {
				deg[i]++
				break
			}
		}
	}
	return deg, nil
}

// ConfigurationModel realizes a degree sequence by the erased configuration
// model: stubs are shuffled and paired, and self-loops/parallel edges are
// dropped. The realized degrees are therefore ≤ the requested ones, with the
// discrepancy concentrated on the largest hubs, which preserves the
// power-law tail shape used in the experiments.
func ConfigurationModel(degrees []int, seed int64) (*graph.Graph, error) {
	n := len(degrees)
	var stubs []int32
	total := 0
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("gen: negative degree %d at vertex %d", d, v)
		}
		if d >= n {
			return nil, fmt.Errorf("gen: degree %d at vertex %d exceeds n-1=%d", d, v, n-1)
		}
		total += d
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	if total%2 == 1 {
		return nil, fmt.Errorf("gen: degree sum %d is odd", total)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := int(stubs[i]), int(stubs[i+1])
		if u == v || b.HasEdge(u, v) {
			continue // erased configuration model: drop collisions
		}
		mustEdge(b, u, v)
	}
	return b.Build(), nil
}

// PowerLawConfiguration composes the two: an n-vertex erased
// configuration-model graph with zeta-distributed degrees.
func PowerLawConfiguration(n int, alpha float64, seed int64) (*graph.Graph, error) {
	kmax := n - 1
	if kmax < 1 {
		kmax = 1
	}
	deg, err := PowerLawDegreeSequence(n, alpha, kmax, seed)
	if err != nil {
		return nil, err
	}
	return ConfigurationModel(deg, seed+1)
}
