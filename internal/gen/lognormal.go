package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// LogNormalWeights returns n expected-degree weights drawn from a lognormal
// distribution with the given log-mean μ and log-stddev σ, clipped below at
// 1 and above at √(Σw) like the power-law weights. Lognormal degree
// distributions are the main competitor to power laws for fitting
// real-world networks (the paper's future work cites Clauset–Shalizi–Newman
// on distributions that "may fit better"); experiment E12 measures how the
// power-law-predicted threshold behaves under this misspecification.
func LogNormalWeights(n int, mu, sigma float64, seed int64) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("gen: negative n %d", n)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("gen: lognormal sigma must be positive, got %v", sigma)
	}
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Exp(mu + sigma*rng.NormFloat64())
		if w[i] < 1 {
			w[i] = 1
		}
		sum += w[i]
	}
	wCap := math.Sqrt(sum)
	for i := range w {
		if w[i] > wCap {
			w[i] = wCap
		}
	}
	return w, nil
}

// ChungLuLogNormal samples a Chung–Lu graph with lognormal expected degrees.
func ChungLuLogNormal(n int, mu, sigma float64, seed int64) (*graph.Graph, error) {
	w, err := LogNormalWeights(n, mu, sigma, seed)
	if err != nil {
		return nil, err
	}
	return ChungLu(w, seed+1), nil
}
