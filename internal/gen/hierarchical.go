package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Hierarchical generates an N-level hierarchical topology in the spirit of
// Calvert–Doar–Zegura (the "N-level Hierarchical" model the paper's
// Section 6 lists among generative models with no obviously small labels):
// the vertex set is partitioned into a tree of domains with fanout children
// per level; vertices connect densely inside leaf domains, and each domain
// is linked to its sibling domains through randomly chosen border vertices.
//
// levels >= 1; fanout >= 2. The vertex count is leafSize · fanout^(levels-1).
func Hierarchical(levels, fanout, leafSize int, pIntra float64, seed int64) (*graph.Graph, error) {
	if levels < 1 {
		return nil, fmt.Errorf("gen: hierarchical levels must be >= 1, got %d", levels)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("gen: hierarchical fanout must be >= 2, got %d", fanout)
	}
	if leafSize < 2 {
		return nil, fmt.Errorf("gen: hierarchical leaf size must be >= 2, got %d", leafSize)
	}
	if pIntra <= 0 || pIntra > 1 {
		return nil, fmt.Errorf("gen: pIntra must be in (0,1], got %v", pIntra)
	}
	leaves := 1
	for i := 1; i < levels; i++ {
		leaves *= fanout
	}
	n := leaves * leafSize
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)

	// Leaf domains: G(leafSize, pIntra) inside each, plus a spanning path so
	// domains are internally connected.
	leafStart := func(leaf int) int { return leaf * leafSize }
	for leaf := 0; leaf < leaves; leaf++ {
		s := leafStart(leaf)
		for i := 0; i+1 < leafSize; i++ {
			mustEdge(b, s+i, s+i+1)
		}
		for i := 0; i < leafSize; i++ {
			for j := i + 2; j < leafSize; j++ {
				if rng.Float64() < pIntra {
					if !b.HasEdge(s+i, s+j) {
						mustEdge(b, s+i, s+j)
					}
				}
			}
		}
	}

	// Inter-domain links: at every level, connect each group of `fanout`
	// sibling subtrees in a ring through random border vertices.
	groupSize := leafSize // vertices per subtree at the current level
	for level := levels - 1; level >= 1; level-- {
		groups := n / (groupSize * fanout)
		for gI := 0; gI < groups; gI++ {
			base := gI * groupSize * fanout
			for c := 0; c < fanout; c++ {
				next := (c + 1) % fanout
				u := base + c*groupSize + rng.Intn(groupSize)
				v := base + next*groupSize + rng.Intn(groupSize)
				if u != v && !b.HasEdge(u, v) {
					mustEdge(b, u, v)
				}
			}
		}
		groupSize *= fanout
	}
	return b.Build(), nil
}
