package gen_test

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/internal/powerlaw"
)

// ExampleChungLuPowerLaw generates the workhorse workload of the
// experiments: a Chung–Lu expected-degree graph with a power-law tail.
func ExampleChungLuPowerLaw() {
	g, err := gen.ChungLuPowerLaw(5000, 2.5, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.N(), g.M() > 0, g.MaxDegree() > 50)
	// Output: 5000 true true
}

// ExamplePlEmbed runs the Section 5 lower-bound construction: an arbitrary
// graph H on i₁ vertices embedded into a member of P_l.
func ExamplePlEmbed() {
	p, err := powerlaw.NewParams(2.5, 10000)
	if err != nil {
		log.Fatal(err)
	}
	h := gen.Complete(p.I1) // the hardest H: a clique
	emb, err := gen.PlEmbed(p, h)
	if err != nil {
		log.Fatal(err)
	}
	inPl := powerlaw.CheckPl(emb.G, p) == nil
	sub, err := emb.G.InducedSubgraph(emb.Host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d inPl=%v cliqueEdges=%d\n", emb.G.N(), inPl, sub.M())
	// Output: n=10000 inPl=true cliqueEdges=351
}

// ExampleBarabasiAlbert grows a preferential-attachment graph, the model
// behind Proposition 5's O(m log n) labels.
func ExampleBarabasiAlbert() {
	g, err := gen.BarabasiAlbert(1000, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.N(), g.M())
	// Output: 1000 2994
}
