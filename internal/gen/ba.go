package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// BarabasiAlbert generates a graph by the Barabási–Albert preferential
// attachment process: starting from a small seed clique on m+1 vertices,
// each new vertex attaches to m distinct existing vertices chosen with
// probability proportional to their current degree. The resulting degree
// distribution is asymptotically power-law with α = 3 (Section 6 of the
// paper), and the graph has arboricity O(m).
func BarabasiAlbert(n, m int, seed int64) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: BA attachment parameter m must be >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: BA needs n >= m+1 (n=%d, m=%d)", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	eb := graph.NewEdgeBuilder(n, 1)
	s := eb.Shard(0)

	// repeated holds one copy of each edge endpoint; sampling uniformly from
	// it realises degree-proportional selection in O(1).
	repeated := make([]int32, 0, 2*m*n)
	addEdge := func(u, v int) {
		s.Add(int32(u), int32(v))
		repeated = append(repeated, int32(u), int32(v))
	}

	// Seed: a clique on m+1 vertices so every vertex starts with degree >= m.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			addEdge(u, v)
		}
	}

	targets := make(map[int]struct{}, m)
	picked := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		for k := range targets {
			delete(targets, k)
		}
		picked = picked[:0]
		for len(targets) < m {
			t := int(repeated[rng.Intn(len(repeated))])
			if _, dup := targets[t]; dup {
				continue
			}
			targets[t] = struct{}{}
			picked = append(picked, t)
		}
		// Iterate in pick order, not map order: the repeated array feeds
		// future sampling, so iteration order must be deterministic.
		for _, t := range picked {
			addEdge(t, v)
		}
	}
	return eb.Build(1), nil
}
