// Package conformance runs the strongest correctness check in the
// repository: EVERY adjacency labeling scheme is exercised on EVERY graph
// of a small vertex count (exhaustive enumeration over all 2^(n(n-1)/2)
// edge subsets), and all schemes must agree with the graph — and therefore
// with each other — on every vertex pair. Labeling schemes are promises
// about entire graph families; this verifies the promise family-wide rather
// than on sampled instances.
package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

// allSchemes returns every adjacency scheme under test.
func allSchemes() []core.Scheme {
	return []core.Scheme{
		core.NewSparseScheme(2),
		core.NewSparseSchemeAuto(),
		core.NewPowerLawScheme(2.5),
		core.NewFixedThresholdScheme(2),
		core.NewCompressedScheme(core.NewFixedThresholdScheme(2)),
		baseline.NeighborList{},
		baseline.AdjMatrix{},
		forest.Scheme{},
		oneQueryScheme{},
	}
}

// oneQueryScheme adapts the 1-query scheme to core.Scheme.
type oneQueryScheme struct{}

func (oneQueryScheme) Name() string { return "onequery" }
func (oneQueryScheme) Encode(g *graph.Graph) (*core.Labeling, error) {
	enc, err := (onequery.Scheme{Seed: 1}).Encode(g)
	if err != nil {
		return nil, err
	}
	return enc.Labeling, nil
}

// graphFromMask decodes an edge-subset bitmask into the graph on n vertices.
func graphFromMask(n int, mask uint64) (*graph.Graph, error) {
	b := graph.NewBuilder(n)
	bit := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if mask&(1<<uint(bit)) != 0 {
				if err := b.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
			bit++
		}
	}
	return b.Build(), nil
}

// TestExhaustiveAllGraphsN4 checks every scheme on all 64 graphs with 4
// vertices, every vertex pair.
func TestExhaustiveAllGraphsN4(t *testing.T) {
	exhaustive(t, 4)
}

// TestExhaustiveAllGraphsN5 checks every scheme on all 1024 graphs with 5
// vertices.
func TestExhaustiveAllGraphsN5(t *testing.T) {
	exhaustive(t, 5)
}

func exhaustive(t *testing.T, n int) {
	t.Helper()
	pairs := n * (n - 1) / 2
	total := uint64(1) << uint(pairs)
	schemes := allSchemes()
	for mask := uint64(0); mask < total; mask++ {
		g, err := graphFromMask(n, mask)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range schemes {
			lab, err := s.Encode(g)
			if err != nil {
				t.Fatalf("mask=%d scheme=%s: encode: %v", mask, s.Name(), err)
			}
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					got, err := lab.Adjacent(u, v)
					if err != nil {
						t.Fatalf("mask=%d scheme=%s (%d,%d): %v", mask, s.Name(), u, v, err)
					}
					if got != g.HasEdge(u, v) {
						t.Fatalf("mask=%d scheme=%s: adjacency(%d,%d) = %v, graph says %v",
							mask, s.Name(), u, v, got, g.HasEdge(u, v))
					}
				}
			}
		}
	}
}

// TestExhaustiveForestsN6 checks the tree scheme on every labeled forest
// with 6 vertices (enumerated as the acyclic members of all 2^15 graphs).
func TestExhaustiveForestsN6(t *testing.T) {
	n := 6
	pairs := n * (n - 1) / 2
	checked := 0
	for mask := uint64(0); mask < 1<<uint(pairs); mask++ {
		g, err := graphFromMask(n, mask)
		if err != nil {
			t.Fatal(err)
		}
		// Forests only: acyclic ⇔ m = n - #components.
		_, comps := g.ConnectedComponents()
		if g.M() != n-comps {
			continue
		}
		lab, err := (forest.Scheme{}).Encode(g)
		if err != nil {
			t.Fatalf("mask=%d: %v", mask, err)
		}
		if err := lab.Verify(g); err != nil {
			t.Fatalf("mask=%d: %v", mask, err)
		}
		checked++
	}
	// Labeled forests on 6 vertices: 2932 (OEIS A001858).
	if checked != 2932 {
		t.Errorf("enumerated %d forests on 6 vertices, want 2932", checked)
	}
}
