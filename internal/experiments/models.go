package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/schemes/forest"

	"repro/internal/arboricity"
	"repro/internal/gen"
	"repro/internal/powerlaw"
)

// E19GenerativeModels tests the paper's Section 6 remark head-on: "other
// generative models such as Waxman's, N-level Hierarchical, and Chung and
// Liu's do not seem to have an obvious smaller label size" — unlike the BA
// model, whose low arboricity yields O(m log n) forest labels. For each
// model at comparable size/density the experiment reports the degeneracy
// (what the forest trick pays per label) and the resulting label sizes.
func E19GenerativeModels(cfg Config) ([]*Table, error) {
	n := 1 << 13
	if cfg.Quick {
		n = 1 << 11
	}
	tb := &Table{
		ID:    "E19",
		Title: fmt.Sprintf("generative models: who admits small labels? (n≈%d)", n),
		Cols: []string{"model", "n", "m", "maxdeg", "degeneracy", "forest.max",
			"fatthin.max", "best"},
	}
	type model struct {
		name string
		g    *graph.Graph
	}
	ba, err := gen.BarabasiAlbert(n, 3, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cl, err := gen.ChungLuPowerLaw(n, 2.5, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cfgModel, err := gen.PowerLawConfiguration(n, 2.5, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Waxman at matching average degree; O(n²) generation caps its size.
	waxN := n
	if waxN > 1<<11 {
		waxN = 1 << 11
	}
	wax, err := gen.Waxman(waxN, 0.08, 0.2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hier, err := gen.Hierarchical(3, 4, n/16, 0.2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The adversarial member of P_l: a clique on i₁ = Θ(n^(1/α)) vertices
	// planted by the Section 5 construction. This is the instance class the
	// Ω(n^(1/α)) lower bound lives on.
	params, err := powerlaw.NewParams(2.5, n)
	if err != nil {
		return nil, err
	}
	emb, err := gen.PlEmbed(params, gen.Complete(params.I1))
	if err != nil {
		return nil, err
	}
	models := []model{
		{"barabasi-albert(m=3)", ba},
		{"chung-lu(α=2.5)", cl},
		{"config(α=2.5)", cfgModel},
		{"waxman", wax},
		{"hierarchical(3 lvl)", hier},
		{"P_l+planted-clique", emb.G},
	}
	for _, m := range models {
		g := m.g
		fo, err := (forest.Scheme{}).Encode(g)
		if err != nil {
			return nil, err
		}
		ft, err := core.NewPowerLawSchemeAuto().Encode(g)
		if err != nil {
			return nil, err
		}
		best := "forest"
		if ft.Stats().Max < fo.Stats().Max {
			best = "fatthin"
		}
		tb.AddRow(m.name, fmt.Sprintf("%d", g.N()), fmt.Sprintf("%d", g.M()),
			fmt.Sprintf("%d", g.MaxDegree()),
			fmt.Sprintf("%d", arboricity.Degeneracy(g)),
			fmtBits(fo.Stats().Max), fmtBits(ft.Stats().Max), best)
	}
	tb.Notes = append(tb.Notes,
		"forest labels cost (degeneracy+1)·log n: tiny on BA (degeneracy = m) and tolerable on benign random models, but the planted-clique P_l member drives degeneracy to Θ(n^(1/α)) — there the fat/thin bitmap is what keeps labels near the Ω(n^(1/α)) floor",
		"this is Section 6's point from both sides: BA-like locality admits O(m log n) labels, while the worst-case power-law family does not",
		"Waxman runs at a smaller n (quadratic generator); its near-regular degrees make everything thin")
	return []*Table{tb}, nil
}
