package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/powerlaw"
	"repro/internal/schemes/distance"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

// E5DistanceLabels measures Lemma 7's f(n)-bounded distance labels against
// the exact distance-vector baseline, across f, and spot-checks query
// correctness against BFS ground truth.
func E5DistanceLabels(cfg Config) ([]*Table, error) {
	alpha := 2.5
	sizes := []int{1 << 10, 1 << 11, 1 << 12}
	if cfg.Quick {
		sizes = []int{1 << 9, 1 << 10}
	}
	tb := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("distance label bits: Lemma 7 vs PLL vs exact vectors (Chung–Lu, α=%.1f)", alpha),
		Cols: []string{"n", "diam", "f", "τ.fat", "#fat", "f.max", "f.avg",
			"pll.max", "exact.max", "f/exact", "f/pll", "checked"},
	}
	for _, n := range sizes {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		exact, err := (distance.ExactScheme{}).Encode(g)
		if err != nil {
			return nil, err
		}
		_, exactMax, _ := exact.Stats()
		pll, err := (distance.PLLScheme{}).Encode(g)
		if err != nil {
			return nil, err
		}
		_, pllMax, _ := pll.Stats()
		diam := g.Diameter()
		fs := []int{2, 3, 4, int(math.Ceil(math.Log2(float64(n))))}
		for _, f := range fs {
			s := distance.Scheme{Alpha: alpha, F: f}
			lab, err := s.Encode(g)
			if err != nil {
				return nil, err
			}
			tau, err := s.Threshold(n)
			if err != nil {
				return nil, err
			}
			nFat := lab.Decoder().NFat()
			_, fMax, fAvg := lab.Stats()

			// Spot-check correctness on a deterministic pair sample.
			checked, err := checkDistanceSample(g, lab, f, 64)
			if err != nil {
				return nil, err
			}
			ratioExact, ratioPll := math.Inf(1), math.Inf(1)
			if exactMax > 0 {
				ratioExact = float64(fMax) / float64(exactMax)
			}
			if pllMax > 0 {
				ratioPll = float64(fMax) / float64(pllMax)
			}
			tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", diam), fmt.Sprintf("%d", f),
				fmt.Sprintf("%d", tau), fmt.Sprintf("%d", nFat),
				fmtBits(fMax), fmtF(fAvg), fmtBits(pllMax), fmtBits(exactMax),
				fmtF2(ratioExact), fmtF2(ratioPll),
				fmt.Sprintf("%d ok", checked))
		}
	}
	tb.Notes = append(tb.Notes,
		"Chung–Lu power-law graphs have Θ(log n) diameter, so f=⌈log2 n⌉ answers almost every query (Section 7)",
		"pll = pruned landmark labeling, the practical exact-distance competitor standing in for the Section 7 comparison schemes (see DESIGN.md)",
		"expected shape: f.max ≪ exact.max for small f; PLL (exact, all distances) sits between — the f-bounded contract is what buys the extra factor")
	return []*Table{tb}, nil
}

// checkDistanceSample verifies the Lemma 7 contract on sources spread over
// the vertex set; returns the number of verified pairs.
func checkDistanceSample(g interface {
	N() int
	BFS(int) []int
}, lab *distance.Labeling, f, sources int) (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	step := n / sources
	if step == 0 {
		step = 1
	}
	checked := 0
	for u := 0; u < n; u += step {
		truth := g.BFS(u)
		for _, v := range []int{0, n / 3, n / 2, 2 * n / 3, n - 1} {
			got, err := lab.Dist(u, v)
			if err != nil {
				return checked, err
			}
			want := truth[v]
			if want < 0 || want > f {
				if got != distance.Beyond {
					return checked, fmt.Errorf("experiments: dist(%d,%d) = %d, want Beyond (true %d)", u, v, got, want)
				}
			} else if got != want {
				return checked, fmt.Errorf("experiments: dist(%d,%d) = %d, want %d", u, v, got, want)
			}
			checked++
		}
	}
	return checked, nil
}

// E6BAForest reproduces the Proposition 5 comparison: on BA graphs, the
// forest-decomposition scheme's O(m log n) labels against the fat/thin
// power-law scheme (BA graphs have α = 3 asymptotically).
func E6BAForest(cfg Config) ([]*Table, error) {
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 11, 1 << 12}
	}
	tb := &Table{
		ID:    "E6",
		Title: "BA graphs: forest-decomposition labels vs fat/thin (Prop 5, α=3)",
		Cols:  []string{"n", "m.BA", "forests", "forest.max", "online.max", "fatthin.max", "fatthin.avg", "win"},
	}
	for _, m := range []int{1, 2, 3, 5, 8} {
		for _, n := range sizes {
			g, err := gen.BarabasiAlbert(n, m, cfg.Seed+int64(n*m))
			if err != nil {
				return nil, err
			}
			fs := forest.Scheme{}
			fLab, err := fs.Encode(g)
			if err != nil {
				return nil, err
			}
			// The m·log n tightening: encoder running during BA growth.
			_, online, err := forest.EncodeBAOnline(n, m, cfg.Seed+int64(n*m))
			if err != nil {
				return nil, err
			}
			// BA graphs have power-law exponent 3.
			ft, err := core.NewPowerLawScheme(3.0).Encode(g)
			if err != nil {
				return nil, err
			}
			fMax := fLab.Stats().Max
			tMax := ft.Stats().Max
			win := "forest"
			if tMax < fMax {
				win = "fatthin"
			}
			tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", m),
				fmt.Sprintf("%d", fs.Forests(g)),
				fmtBits(fMax), fmtBits(online.Stats().Max),
				fmtBits(tMax), fmtF(ft.Stats().Mean), win)
		}
	}
	tb.Notes = append(tb.Notes,
		"expected shape: forest labels ≈ (m+1)·log n stay flat in n and win for every realistic m",
		"online.max = the paper's m·log n tightening (encoder operating during graph creation); exactly (m+1)·ceil(log2 n) bits",
		"this is the Section 6 separation: BA locality differs from worst-case power-law graphs")
	return []*Table{tb}, nil
}

// E7OneQuery measures the Section 6 1-query relaxation: O(log n) labels on
// the same Chung–Lu workloads where 2-label schemes need Ω(n^(1/α)).
func E7OneQuery(cfg Config) ([]*Table, error) {
	alpha := 2.5
	tb := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("1-query labels vs 2-label fat/thin (Chung–Lu, α=%.1f)", alpha),
		Cols:  []string{"n", "m", "1q.max", "1q.avg", "dec.desc(KiB)", "fatthin.max", "LB(2-label)", "1q/LB"},
	}
	for _, n := range e1Sizes(cfg) {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		enc, err := (onequery.Scheme{Seed: cfg.Seed}).Encode(g)
		if err != nil {
			return nil, err
		}
		descBytes, err := enc.DescriptionBytes()
		if err != nil {
			return nil, err
		}
		ft, err := core.NewPowerLawScheme(alpha).Encode(g)
		if err != nil {
			return nil, err
		}
		p, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			return nil, err
		}
		lb := p.AdjacencyLowerBound()
		ratio := math.Inf(1)
		if lb > 0 {
			ratio = float64(enc.Stats().Max) / float64(lb)
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", g.M()),
			fmtBits(enc.Stats().Max), fmtF(enc.Stats().Mean),
			fmtF(float64(descBytes)/1024),
			fmtBits(ft.Stats().Max), fmt.Sprintf("%d", lb), fmtF2(ratio))
	}
	tb.Notes = append(tb.Notes,
		"expected shape: 1q.max ≈ O(log n) stays flat while the 2-label lower bound Ω(n^(1/α)) grows — the relaxation bypasses Theorem 6",
		"dec.desc = serialized FKS table shared by the decoder; Θ(n) words in this concrete realization (the paper sketches an O(log n)-bit description — see DESIGN.md)")
	return []*Table{tb}, nil
}
