// Package experiments implements the evaluation harness: every table and
// figure of the paper's experimental study (full version, arXiv:1502.03971)
// plus bound-check experiments for each theorem, regenerated on synthetic
// workloads whose degree tails are verified members of P_h. The same
// experiment implementations back both cmd/plbench and the testing.B
// benchmarks in bench_test.go; see EXPERIMENTS.md for paper-vs-measured
// discussion.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"
)

// Config controls experiment scale.
type Config struct {
	// Quick reduces graph sizes so the full suite runs in seconds; the full
	// sizes reproduce the paper-scale sweeps.
	Quick bool
	// Seed drives every generator; experiments are bit-reproducible.
	Seed int64
	// Dist, when non-empty, restricts probe-driven experiments (E25) to one
	// vertex-pair sampling distribution: uniform | zipf | degprop. Empty
	// runs each experiment's default distribution sweep.
	Dist string
	// ZipfS is the Zipf exponent used when Dist selects zipf (0 picks the
	// experiment default).
	ZipfS float64
	// Remote, when non-empty, points E26's throughput drive at an external
	// adjserve-protocol address (a plroute front or a plserve) instead of
	// booting an in-process fleet.
	Remote string
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig() Config { return Config{Seed: 20160711} }

// Table is a rendered experiment result.
type Table struct {
	ID    string
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// RenderCSV writes the table as RFC-4180-ish CSV (one header row; the title
// and notes become `#`-prefixed comment lines). This is the machine-readable
// path for regenerating the evaluation's figures with external plotters.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Cols); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Cols)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner is one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Config) ([]*Table, error)
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Description: "label size vs n: power-law scheme vs sparse scheme vs baselines (Thm 3/4)", Run: E1LabelSizeVsN},
		{ID: "E2", Description: "predicted threshold vs empirically optimal threshold (full-version experiment)", Run: E2ThresholdSweep},
		{ID: "E3", Description: "label size vs alpha at fixed n (Thm 4's n^(1/alpha) dependence)", Run: E3AlphaSweep},
		{ID: "E4", Description: "lower-bound construction: embed arbitrary H into P_l (Thm 6)", Run: E4LowerBound},
		{ID: "E5", Description: "f(n)-distance labels vs exact distance vectors (Lemma 7)", Run: E5DistanceLabels},
		{ID: "E6", Description: "BA graphs: forest-decomposition labels vs fat/thin (Prop 5)", Run: E6BAForest},
		{ID: "E7", Description: "1-query labels vs 2-label scheme (Section 6 relaxation)", Run: E7OneQuery},
		{ID: "E8", Description: "encode time and decode throughput per scheme", Run: E8DecodeThroughput},
		{ID: "E9", Description: "ablation: threshold choice (sparse vs power-law vs degeneracy)", Run: E9ThresholdAblation},
		{ID: "E10", Description: "ablation: fat bitmap vs fat neighbor-list encoding", Run: E10FatEncoding},
		{ID: "E11", Description: "dynamic extension: amortized relabels per update (Section 8.1)", Run: E11DynamicRelabels},
		{ID: "E12", Description: "incomplete knowledge + lognormal misspecification (Section 8.1)", Run: E12IncompleteKnowledge},
		{ID: "E13", Description: "induced-universal graphs from labeling schemes (KNR, Section 5)", Run: E13UniversalGraphs},
		{ID: "E14", Description: "expected worst-case label size on random power-law graphs (Thm 5)", Run: E14ExpectedLabelSize},
		{ID: "E15", Description: "ablation: thin-label encoding, fixed-width vs adaptive δ-gaps", Run: E15CompressedThin},
		{ID: "E16", Description: "peer-to-peer communication cost per query across schemes", Run: E16CommunicationCost},
		{ID: "E17", Description: "core-tree routing labels: size and additive stretch (Brady–Cowen)", Run: E17RoutingStretch},
		{ID: "E18", Description: "price of locality: global compression vs per-vertex labels", Run: E18PriceOfLocality},
		{ID: "E19", Description: "generative models (§6): which admit small labels, by degeneracy", Run: E19GenerativeModels},
		{ID: "E20", Description: "encoder scalability: sequential vs parallel, ns/vertex", Run: E20EncodeScalability},
		{ID: "E21", Description: "lower-bound construction: labels are invariant to the embedded H", Run: E21AdversarialH},
		{ID: "E23", Description: "adjacency serving: loopback TCP throughput/latency + mmap startup", Run: E23ServingThroughput},
		{ID: "E24", Description: "observability: obs primitive cost + engine instrumentation overhead", Run: E24ObservabilityOverhead},
		{ID: "E25", Description: "skew-aware layout: id- vs degree-ordered arena under Zipf/degree-proportional query skew", Run: E25SkewLayout},
		{ID: "E26", Description: "sharded serving: routed-fleet equivalence + aggregate q/s scaling with shard count", Run: E26ShardedServing},
		{ID: "E27", Description: "distance serving: DistEngine vs QueryEngine q/s local + loopback TCP; slab encode vs legacy PLL", Run: E27DistanceServing},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment IDs sorted.
func IDs() []string {
	rs := All()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}

// fmtBits renders a bit count compactly.
func fmtBits(bits int) string {
	return fmt.Sprintf("%d", bits)
}

// fmtF renders a float with 1 decimal.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtF2 renders a float with 2 decimals.
func fmtF2(v float64) string { return fmt.Sprintf("%.2f", v) }
