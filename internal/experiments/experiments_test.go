package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 20160711} }

// TestAllExperimentsRun executes every experiment at quick scale and checks
// the resulting tables have rows and render cleanly.
func TestAllExperimentsRun(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := r.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", r.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", r.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Errorf("%s: row has %d cells, header has %d", r.ID, len(row), len(tb.Cols))
					}
				}
				var buf bytes.Buffer
				if err := tb.Render(&buf); err != nil {
					t.Errorf("%s: render: %v", r.ID, err)
				}
				if !strings.Contains(buf.String(), tb.ID) {
					t.Errorf("%s: rendered output missing ID header", r.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := ByID("e4"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All length mismatch")
	}
}

// TestE2PredictionQuality pins the paper's experimental claim: the fitted
// threshold prediction lands within 25% of the empirically optimal maximum
// label size.
func TestE2PredictionQuality(t *testing.T) {
	tables, err := E2ThresholdSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := indexOf(t, tb.Cols, "auto.ratio")
	for _, row := range tb.Rows {
		var ratio float64
		if _, err := fmtSscan(row[col], &ratio); err != nil {
			t.Fatalf("parse %q: %v", row[col], err)
		}
		if ratio > 1.25 {
			t.Errorf("auto threshold ratio %.2f exceeds 1.25 (row %v)", ratio, row)
		}
	}
}

// TestE4ConstructionCertified pins that every E4 row certifies P_l and P_h
// membership of the constructed graph.
func TestE4ConstructionCertified(t *testing.T) {
	tables, err := E4LowerBound(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	plCol := indexOf(t, tb.Cols, "P_l?")
	phCol := indexOf(t, tb.Cols, "P_h?")
	for _, row := range tb.Rows {
		if row[plCol] != "true" || row[phCol] != "true" {
			t.Errorf("membership not certified in row %v", row)
		}
	}
}

// TestE6ForestAlwaysWins pins the Prop 5 shape: on BA graphs the forest
// scheme beats fat/thin for every (n, m) in the sweep.
func TestE6ForestAlwaysWins(t *testing.T) {
	tables, err := E6BAForest(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	winCol := indexOf(t, tb.Cols, "win")
	for _, row := range tb.Rows {
		if row[winCol] != "forest" {
			t.Errorf("fat/thin beat forest in row %v", row)
		}
	}
}

func indexOf(t *testing.T, cols []string, name string) int {
	t.Helper()
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not found in %v", name, cols)
	return -1
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestRenderCSV(t *testing.T) {
	tb := &Table{ID: "EX", Title: "t", Cols: []string{"a", "b"}, Notes: []string{"n1"}}
	tb.AddRow("1", `va"l,ue`)
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a,b\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, `1,"va""l,ue"`) {
		t.Errorf("quoting wrong: %q", out)
	}
	if !strings.Contains(out, "# note: n1") {
		t.Errorf("missing note: %q", out)
	}
}

// TestE13UniversalSizeIsKNR pins |U| = 2^(label bits) for every row.
func TestE13UniversalSizeIsKNR(t *testing.T) {
	tables, err := E13UniversalGraphs(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	bitsCol := indexOf(t, tb.Cols, "label.bits")
	uCol := indexOf(t, tb.Cols, "|U| vertices")
	for _, row := range tb.Rows {
		var bits, u int
		if _, err := fmt.Sscan(row[bitsCol], &bits); err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Sscan(row[uCol], &u); err != nil {
			t.Fatal(err)
		}
		if u != 1<<uint(bits) {
			t.Errorf("|U| = %d, want 2^%d", u, bits)
		}
	}
}

// TestE14ExpectationBelowBound pins E[max] <= the deterministic bound.
func TestE14ExpectationBelowBound(t *testing.T) {
	tables, err := E14ExpectedLabelSize(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := indexOf(t, tb.Cols, "E[max]/bound")
	for _, row := range tb.Rows {
		var ratio float64
		if _, err := fmt.Sscan(row[col], &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio > 1.0 {
			t.Errorf("E[max]/bound = %.2f > 1 in row %v", ratio, row)
		}
	}
}

// TestE17StretchMonotoneInTrees pins that adding core trees never increases
// mean stretch (within one n block).
func TestE17StretchMonotoneInTrees(t *testing.T) {
	tables, err := E17RoutingStretch(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	nCol := indexOf(t, tb.Cols, "n")
	sCol := indexOf(t, tb.Cols, "mean.stretch")
	prevN, prevS := "", -1.0
	for _, row := range tb.Rows {
		var s float64
		if _, err := fmt.Sscan(row[sCol], &s); err != nil {
			t.Fatal(err)
		}
		if row[nCol] == prevN && s > prevS+0.05 {
			t.Errorf("stretch rose from %.2f to %.2f within n=%s", prevS, s, row[nCol])
		}
		prevN, prevS = row[nCol], s
	}
}

// TestE21LabelsInvariantToH pins that the achieved max label varies by at
// most a few bits across the embedded-H sweep at each n.
func TestE21LabelsInvariantToH(t *testing.T) {
	tables, err := E21AdversarialH(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	nCol := indexOf(t, tb.Cols, "n")
	maxCol := indexOf(t, tb.Cols, "pl.max")
	plCol := indexOf(t, tb.Cols, "P_l?")
	byN := map[string][]int{}
	for _, row := range tb.Rows {
		if row[plCol] != "true" {
			t.Fatalf("construction left P_l in row %v", row)
		}
		var m int
		if _, err := fmt.Sscan(row[maxCol], &m); err != nil {
			t.Fatal(err)
		}
		byN[row[nCol]] = append(byN[row[nCol]], m)
	}
	for n, ms := range byN {
		lo, hi := ms[0], ms[0]
		for _, m := range ms {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if hi-lo > hi/10 {
			t.Errorf("n=%s: max labels vary %d..%d across H (>10%%)", n, lo, hi)
		}
	}
}
