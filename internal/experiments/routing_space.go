package experiments

import (
	"fmt"

	"repro/internal/compressgraph"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/onequery"
	"repro/internal/schemes/routing"
)

// E17RoutingStretch measures the Brady–Cowen-style routing labels the
// paper's related work positions next to its adjacency schemes: label size
// and additive stretch of core-tree routing on power-law graphs, as the
// number of core trees grows.
func E17RoutingStretch(cfg Config) ([]*Table, error) {
	alpha := 2.3
	sizes := []int{1 << 12, 1 << 14}
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12}
	}
	tb := &Table{
		ID:    "E17",
		Title: fmt.Sprintf("core-tree routing: label size and additive stretch (Chung–Lu, α=%.1f)", alpha),
		Cols: []string{"n", "k.trees", "lab.max", "lab.avg", "mean.stretch", "max.stretch",
			"exact%", "pairs"},
	}
	for _, n := range sizes {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		comp, _ := g.ConnectedComponents()
		for _, k := range []int{1, 2, 4, 8} {
			lab, err := (routing.Scheme{K: k}).Encode(g)
			if err != nil {
				return nil, err
			}
			dec := lab.Decoder()
			_, labMax, labAvg := lab.Stats()

			// Deterministic pair sample over the giant component.
			pairs, exact, totalStretch, maxStretch := 0, 0, 0, 0
			for u := 0; u < n; u += maxIntE(n/64, 1) {
				truth := g.BFS(u)
				for v := 0; v < n; v += maxIntE(n/64, 1) {
					if u == v || comp[u] != comp[v] {
						continue
					}
					lu, err := lab.Label(u)
					if err != nil {
						return nil, err
					}
					lv, err := lab.Label(v)
					if err != nil {
						return nil, err
					}
					td, err := dec.TreeDist(lu, lv)
					if err != nil {
						return nil, err
					}
					s := td - truth[v]
					if s < 0 {
						return nil, fmt.Errorf("E17: tree distance below true distance at (%d,%d)", u, v)
					}
					pairs++
					totalStretch += s
					if s > maxStretch {
						maxStretch = s
					}
					if s == 0 {
						exact++
					}
				}
			}
			meanStretch := 0.0
			exactPct := 0.0
			if pairs > 0 {
				meanStretch = float64(totalStretch) / float64(pairs)
				exactPct = 100 * float64(exact) / float64(pairs)
			}
			tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
				fmtBits(labMax), fmtF(labAvg),
				fmtF2(meanStretch), fmt.Sprintf("%d", maxStretch),
				fmtF(exactPct), fmt.Sprintf("%d", pairs))
		}
	}
	tb.Notes = append(tb.Notes,
		"routes follow BFS trees from the k highest-degree core vertices; stretch is additive (routed hops − true distance)",
		"expected shape: stretch falls as k grows while labels grow ≈ linearly in k — the Brady–Cowen trade-off the related work describes")
	return []*Table{tb}, nil
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E18PriceOfLocality compares the two storage paradigms of the paper's
// introduction: one globally compressed adjacency structure versus the sum
// of all per-vertex labels (which buys fully local, peer-to-peer queries).
func E18PriceOfLocality(cfg Config) ([]*Table, error) {
	alpha := 2.3
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 11, 1 << 13}
	}
	tb := &Table{
		ID:    "E18",
		Title: fmt.Sprintf("price of locality: total bits, global compression vs per-vertex labels (Chung–Lu, α=%.1f)", alpha),
		Cols: []string{"n", "m", "global(KiB)", "fatthin(KiB)", "compressed(KiB)",
			"nbrlist(KiB)", "onequery(KiB)", "fatthin/global"},
	}
	for _, n := range sizes {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		global := compressgraph.Encode(g).TotalBits()

		ft, err := core.NewPowerLawSchemeAuto().Encode(g)
		if err != nil {
			return nil, err
		}
		cp, err := core.NewCompressedScheme(core.NewPowerLawSchemeAuto()).Encode(g)
		if err != nil {
			return nil, err
		}
		nb, err := baseline.NeighborList{}.Encode(g)
		if err != nil {
			return nil, err
		}
		oq, err := (onequery.Scheme{Seed: cfg.Seed}).Encode(g)
		if err != nil {
			return nil, err
		}
		kib := func(bits int64) string { return fmtF(float64(bits) / 8192) }
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", g.M()),
			kib(global), kib(ft.Stats().Total), kib(cp.Stats().Total),
			kib(nb.Stats().Total), kib(oq.Stats().Total),
			fmtF2(float64(ft.Stats().Total)/float64(global)))
	}
	tb.Notes = append(tb.Notes,
		"global = γ/δ gap-compressed CSR stream + random-access index (the WebGraph paradigm the introduction contrasts with)",
		"a ratio near (or below) 1 means locality comes nearly free: the fat/thin layout stores each fat–thin edge once and collapses hub rows into bitmaps, offsetting the per-label overhead the peer-to-peer model requires")
	return []*Table{tb}, nil
}
