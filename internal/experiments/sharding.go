package experiments

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// E26ShardedServing measures the sharded scatter-gather serving tier. Table 1
// is the correctness matrix: for each scheme × layout × ownership function,
// every pair routed through a 3-shard fleet must answer exactly what the
// unsharded engine answers — sharding is a pure serving-plane transform, the
// labeling math is untouched. Table 2 is the scaling claim: one pipelined
// driver connection at batch 4096, against a direct single server and routed
// fleets of 2/4/8 shards. Each frame fans out to all shards concurrently, so
// per-frame latency drops toward 1/S of the direct server's and aggregate q/s
// grows near-linearly until the router or the driver saturates a core.
//
// With cfg.Remote set, table 2 instead drives that external adjserve-protocol
// address (a plroute front or a plserve) and reports absolute q/s only — the
// in-process fleet and the speedup baseline are skipped.
func E26ShardedServing(cfg Config) ([]*Table, error) {
	eqTb, err := shardEquivalenceTable(cfg)
	if err != nil {
		return nil, err
	}
	thTb, err := shardThroughputTable(cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{eqTb, thTb}, nil
}

// shardEquivalenceTable routes pairs through a real 3-shard TCP fleet and
// diffs every answer against the unsharded engine.
func shardEquivalenceTable(cfg Config) (*Table, error) {
	n := 1 << 12
	probes := 1 << 13
	if cfg.Quick {
		n = 1 << 10
		probes = 1 << 11
	}
	g, err := gen.ChungLuPowerLaw(n, 2.5, 3, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:    "E26",
		Title: fmt.Sprintf("sharded serving equivalence: routed fleet vs unsharded engine (Chung–Lu n=%d, 3 shards)", n),
		Cols:  []string{"scheme", "layout", "fn", "pairs", "mismatches", "status"},
	}
	schemes := []struct {
		name string
		mk   func() *core.FatThinScheme
	}{
		{"powerlaw", func() *core.FatThinScheme { return core.NewPowerLawScheme(2.5) }},
		{"sparse", func() *core.FatThinScheme { return core.NewSparseSchemeAuto() }},
	}
	// Pairs cover every routing case: random (mostly thin–thin), self pairs,
	// and a stride that crosses every ownership-range boundary.
	pairs := randomQueryPairs(n, probes, cfg.Seed+3)
	for v := 0; v < n; v += 97 {
		pairs = append(pairs, [2]int{v, v}, [2]int{v, n - 1 - v})
	}
	for _, sc := range schemes {
		for _, lay := range []core.Layout{core.LayoutID, core.LayoutDegree} {
			for _, fn := range []core.ShardFn{core.ShardRange, core.ShardHash} {
				scheme := sc.mk()
				scheme.SetLayout(lay)
				lab, err := scheme.Encode(g)
				if err != nil {
					return nil, err
				}
				full, err := core.NewQueryEngine(lab)
				if err != nil {
					return nil, err
				}
				addrs, closeFleet, err := bootShardFleet(lab, n, 3, fn)
				if err != nil {
					return nil, err
				}
				mismatches, err := diffRouted(addrs, full, pairs)
				closeFleet()
				if err != nil {
					return nil, err
				}
				status := "ok"
				if mismatches != 0 {
					status = "FAIL"
				}
				tb.AddRow(sc.name, lay.String(), fn.String(),
					strconv.Itoa(len(pairs)), strconv.Itoa(mismatches), status)
			}
		}
	}
	tb.Notes = append(tb.Notes,
		"answers travel the full path: client → router TCP → per-shard scatter → shard servers → gather; zero mismatches required",
		"pairs include self pairs and ownership-boundary strides, so thin-forced, fat–fat, and min-owner routing branches all execute",
		"hash ownership scatters each range shard's vertices across the fleet — equivalence must hold under both functions")
	return tb, nil
}

// bootShardFleet splits lab into count shard engines under fn and serves each
// on a loopback listener; closeFleet tears all servers down.
func bootShardFleet(lab *core.Labeling, n, count int, fn core.ShardFn) (addrs []string, closeFleet func(), err error) {
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		return nil, nil, fmt.Errorf("labeling is not arena-backed")
	}
	bitLens := make([]int, n)
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			return nil, nil, err
		}
		bitLens[v] = l.Len()
	}
	arenas, err := core.ShardLabelArenas(slab, bitLens, order, count, fn)
	if err != nil {
		return nil, nil, err
	}
	srvs := make([]*adjserve.Server, 0, count)
	closeFleet = func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	addrs = make([]string, count)
	for i, a := range arenas {
		eng, err := core.NewQueryEngineFromPermutedArena(a.Slab, a.BitLens, order)
		if err != nil {
			closeFleet()
			return nil, nil, err
		}
		if err := eng.SetShard(core.ShardMap{Count: count, Index: i, Fn: fn}); err != nil {
			closeFleet()
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			closeFleet()
			return nil, nil, err
		}
		srv := adjserve.NewServer(eng, 0)
		go srv.Serve(ln)
		srvs = append(srvs, srv)
		addrs[i] = ln.Addr().String()
	}
	return addrs, closeFleet, nil
}

// diffRouted drives pairs through a router over the fleet and counts answers
// that differ from the unsharded engine's.
func diffRouted(addrs []string, full *core.QueryEngine, pairs [][2]int) (int, error) {
	r, err := adjserve.NewRouter(addrs, 0)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go r.Serve(ln)
	c, err := adjserve.Dial(ln.Addr().String())
	if err != nil {
		return 0, err
	}
	defer c.Close()
	got, err := c.AdjacentMany(pairs, make([]bool, 0, len(pairs)))
	if err != nil {
		return 0, err
	}
	want, err := full.AdjacentMany(pairs, make([]bool, 0, len(pairs)))
	if err != nil {
		return 0, err
	}
	mismatches := 0
	for i := range pairs {
		if got[i] != want[i] {
			mismatches++
		}
	}
	return mismatches, nil
}

// shardThroughputTable drives batch-4096 frames over one pipelined connection
// against a direct server and routed fleets of growing shard counts, under
// uniform and Zipf-skewed probes.
func shardThroughputTable(cfg Config) (*Table, error) {
	const batch = 4096
	alpha := 2.5
	n := 1 << 15
	targetQ := 1 << 19
	shardCounts := []int{2, 4, 8}
	if cfg.Quick {
		n = 1 << 12
		targetQ = 1 << 15
		shardCounts = []int{2, 4}
	}
	zipfS := cfg.ZipfS
	if zipfS == 0 {
		zipfS = 1.1
	}
	dists := []skewDist{
		{"uniform", DistUniform, 0},
		{fmt.Sprintf("zipf(s=%.1f)", zipfS), DistZipf, zipfS},
	}
	if cfg.Dist != "" {
		d, err := ParseProbeDist(cfg.Dist)
		if err != nil {
			return nil, err
		}
		dists = []skewDist{{cfg.Dist, d, zipfS}}
	}

	if cfg.Remote != "" {
		return remoteThroughputTable(cfg, dists, batch, targetQ)
	}

	g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	scheme := core.NewPowerLawScheme(alpha)
	scheme.SetLayout(core.LayoutDegree)
	lab, err := scheme.EncodeParallel(g, 0)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:    "E26",
		Title: fmt.Sprintf("sharded serving throughput: 1 driver connection, batch %d (Chung–Lu n=%d, α=%.1f, GOMAXPROCS=%d)", batch, n, alpha, runtime.GOMAXPROCS(0)),
		Cols:  []string{"dist", "target", "shards", "queries", "q/s", "p50.µs", "p99.µs", "speedup"},
	}

	// Direct baseline: one unsharded server, no router in the path.
	full, err := core.NewQueryEngine(lab)
	if err != nil {
		return nil, err
	}
	directLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	directSrv := adjserve.NewServer(full, 0)
	go directSrv.Serve(directLn)
	defer directSrv.Close()

	for _, d := range dists {
		ps, err := NewProbeSampler(g, d.dist, d.s, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pairs := ps.Pairs(nil, 1<<14)
		queries, elapsed, lats, err := driveAddr(directLn.Addr().String(), pairs, batch, targetQ)
		if err != nil {
			return nil, err
		}
		baseQPS := float64(queries) / elapsed.Seconds()
		tb.AddRow(d.name, "direct", "1", strconv.Itoa(queries),
			fmtQPS(queries, elapsed), fmtMicros(quantile(lats, 0.50)), fmtMicros(quantile(lats, 0.99)), "1.00")

		for _, s := range shardCounts {
			addrs, closeFleet, err := bootShardFleet(lab, n, s, core.ShardRange)
			if err != nil {
				return nil, err
			}
			r, err := adjserve.NewRouter(addrs, 0)
			if err != nil {
				closeFleet()
				return nil, err
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				r.Close()
				closeFleet()
				return nil, err
			}
			go r.Serve(rln)
			queries, elapsed, lats, err := driveAddr(rln.Addr().String(), pairs, batch, targetQ)
			r.Close()
			closeFleet()
			if err != nil {
				return nil, err
			}
			qps := float64(queries) / elapsed.Seconds()
			tb.AddRow(d.name, "router", strconv.Itoa(s), strconv.Itoa(queries),
				fmtQPS(queries, elapsed), fmtMicros(quantile(lats, 0.50)), fmtMicros(quantile(lats, 0.99)),
				fmt.Sprintf("%.2f", qps/float64max(baseQPS, 1)))
		}
	}
	tb.Notes = append(tb.Notes,
		"one pipelined driver connection: each frame's pairs scatter to all shards, which probe concurrently — per-frame latency shrinks toward 1/S",
		"acceptance bar: speedup >= 1.6x at 2 shards and >= 3x at 4 — requires a multi-core runner (>= shards+2 cores); the whole fleet is in-process, so shard parallelism is real only when GOMAXPROCS > shards",
		"on a single-core runner the concurrent probes serialize and the table shows pure router overhead instead (speedup < 1 is expected there)",
		"Zipf probes concentrate on hub vertices; the fat set is replicated on every shard, so skew does not unbalance the fan-out",
		"speedups saturate when the single driver connection or the router core becomes the bottleneck, not the shard servers")
	return tb, nil
}

// remoteThroughputTable drives an externally-provided adjserve-protocol
// address (plroute or plserve) instead of an in-process fleet. The probe
// distributions are built over the remote keyspace via its Info answer; no
// speedup column — there is no in-process baseline to compare against.
func remoteThroughputTable(cfg Config, dists []skewDist, batch, targetQ int) (*Table, error) {
	c, err := adjserve.Dial(cfg.Remote)
	if err != nil {
		return nil, err
	}
	n, err := c.Info()
	c.Close()
	if err != nil {
		return nil, err
	}
	// Degree-proportional sampling needs the graph; a remote store only
	// exposes n, so the skew sweep runs over vertex ids (uniform and Zipf
	// by id rank — on a degree-ordered store, low rank = high degree).
	g := graph.NewBuilder(n).Build()
	tb := &Table{
		ID:    "E26",
		Title: fmt.Sprintf("sharded serving throughput: remote %s, 1 driver connection, batch %d (n=%d)", cfg.Remote, batch, n),
		Cols:  []string{"dist", "target", "shards", "queries", "q/s", "p50.µs", "p99.µs", "speedup"},
	}
	for _, d := range dists {
		if d.dist == DistDegProp {
			return nil, fmt.Errorf("-dist degprop needs the graph; remote mode supports uniform and zipf")
		}
		ps, err := NewProbeSampler(g, d.dist, d.s, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pairs := ps.Pairs(nil, 1<<14)
		queries, elapsed, lats, err := driveAddr(cfg.Remote, pairs, batch, targetQ)
		if err != nil {
			return nil, err
		}
		tb.AddRow(d.name, "remote", "-", strconv.Itoa(queries),
			fmtQPS(queries, elapsed), fmtMicros(quantile(lats, 0.50)), fmtMicros(quantile(lats, 0.99)), "-")
	}
	tb.Notes = append(tb.Notes,
		"remote drive: point -remote at a plroute front (or a single plserve) started out of process; scrape its /metrics for the per-shard split",
		"Zipf skew is by vertex id rank here — on a degree-ordered store that coincides with degree rank")
	return tb, nil
}

// driveAddr pipelines AdjacentMany frames of the given batch size over one
// connection until targetQ queries are answered, returning total queries,
// wall time, and per-frame latencies. The first frame warms pools and is
// untimed.
func driveAddr(addr string, pairs [][2]int, batch, targetQ int) (int, time.Duration, []time.Duration, error) {
	frames := targetQ / batch
	if frames < 8 {
		frames = 8
	}
	c, err := adjserve.Dial(addr)
	if err != nil {
		return 0, 0, nil, err
	}
	defer c.Close()
	c.MaxBatch = batch
	chunkAt := func(f int) [][2]int {
		lo := (f * batch) % len(pairs)
		chunk := pairs[lo:min(lo+batch, len(pairs))]
		for len(chunk) < batch {
			chunk = append(chunk[:len(chunk):len(chunk)], pairs[:min(batch-len(chunk), len(pairs))]...)
		}
		return chunk
	}
	out := make([]bool, 0, batch)
	if out, err = c.AdjacentMany(chunkAt(0), out[:0]); err != nil {
		return 0, 0, nil, err
	}
	lats := make([]time.Duration, 0, frames)
	start := time.Now()
	for f := 0; f < frames; f++ {
		fs := time.Now()
		if out, err = c.AdjacentMany(chunkAt(f), out[:0]); err != nil {
			return 0, 0, nil, err
		}
		lats = append(lats, time.Since(fs))
	}
	return frames * batch, time.Since(start), lats, nil
}
