package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/powerlaw"
)

// E14ExpectedLabelSize exercises Theorem 5: for random graphs whose degree
// sequences follow a power law, the *expected worst-case* label size of the
// fat/thin scheme is O(n^(1/α)·(log n)^(1-1/α)). The experiment samples
// many independent graphs per (α, n), reports the mean, stddev and max of
// the per-graph maximum label, and compares the mean against the Theorem 4
// deterministic bound (which Theorem 5's expectation sits below).
func E14ExpectedLabelSize(cfg Config) ([]*Table, error) {
	samples := 20
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		samples = 8
		sizes = []int{1 << 11, 1 << 12}
	}
	tb := &Table{
		ID:    "E14",
		Title: fmt.Sprintf("Theorem 5: expected worst-case label size over %d random graphs", samples),
		Cols:  []string{"α", "n", "E[max] bits", "stddev", "worst sample", "thm4.bound", "E[max]/bound"},
	}
	for _, alpha := range []float64{2.2, 2.5, 2.8} {
		for _, n := range sizes {
			var sum, sumSq float64
			worst := 0
			scheme := core.NewPowerLawScheme(alpha)
			for s := 0; s < samples; s++ {
				g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(s)*7919+int64(n))
				if err != nil {
					return nil, err
				}
				lab, err := scheme.Encode(g)
				if err != nil {
					return nil, err
				}
				m := lab.Stats().Max
				sum += float64(m)
				sumSq += float64(m) * float64(m)
				if m > worst {
					worst = m
				}
			}
			mean := sum / float64(samples)
			variance := sumSq/float64(samples) - mean*mean
			if variance < 0 {
				variance = 0
			}
			bound, err := core.PowerLawTheoremBound(alpha, n)
			if err != nil {
				return nil, err
			}
			p, err := powerlaw.NewParams(alpha, n)
			if err != nil {
				return nil, err
			}
			_ = p
			tb.AddRow(fmtF(alpha), fmt.Sprintf("%d", n),
				fmtF(mean), fmtF(math.Sqrt(variance)), fmtBits(worst),
				fmtBits(bound), fmtF2(mean/float64(bound)))
		}
	}
	tb.Notes = append(tb.Notes,
		"Theorem 5: E[max label] = O(n^(1/α)(log n)^(1-1/α)) for random power-law graphs; E[max]/bound ≤ 1 with small variance confirms the expectation argument",
		"samples are independent Chung–Lu draws at the same (n, α)")
	return []*Table{tb}, nil
}
