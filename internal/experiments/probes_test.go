package experiments

import (
	"testing"

	"repro/internal/gen"
)

// TestProbeSamplerDegreesEquivalence pins the refactoring contract: a sampler
// built from (n, Degrees()) draws the identical stream as one built from the
// graph, for every distribution — plload's graph-free construction must not
// change any experiment's probe sequence.
func TestProbeSamplerDegreesEquivalence(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(1500, 2.5, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []ProbeDist{DistUniform, DistZipf, DistDegProp} {
		fromGraph, err := NewProbeSampler(g, dist, 1.1, 77)
		if err != nil {
			t.Fatal(err)
		}
		deg := g.Degrees()
		if dist == DistUniform {
			deg = nil // uniform needs no degrees at all
		}
		fromDegrees, err := NewProbeSamplerDegrees(g.N(), deg, dist, 1.1, 77)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			a, b := fromGraph.Vertex(), fromDegrees.Vertex()
			if a != b {
				t.Fatalf("%s: draw %d: graph sampler %d, degrees sampler %d", dist, i, a, b)
			}
		}
		for v := 0; v < g.N(); v += 97 {
			if pa, pb := fromGraph.VertexProb(v), fromDegrees.VertexProb(v); pa != pb {
				t.Fatalf("%s: VertexProb(%d): %g vs %g", dist, v, pa, pb)
			}
		}
	}
}

func TestProbeSamplerDegreesValidation(t *testing.T) {
	if _, err := NewProbeSamplerDegrees(0, nil, DistUniform, 0, 1); err == nil {
		t.Fatal("empty vertex set accepted")
	}
	if _, err := NewProbeSamplerDegrees(10, []int{1, 2}, DistZipf, 1.1, 1); err == nil {
		t.Fatal("degree slice of the wrong length accepted for zipf")
	}
	if _, err := NewProbeSamplerDegrees(10, nil, DistDegProp, 0, 1); err == nil {
		t.Fatal("nil degrees accepted for degprop")
	}
	if _, err := NewProbeSamplerDegrees(3, []int{1, 2, 3}, DistZipf, 0, 1); err == nil {
		t.Fatal("non-positive zipf exponent accepted")
	}
	s, err := NewProbeSamplerDegrees(10, nil, DistUniform, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := s.Vertex(); v < 0 || v >= 10 {
			t.Fatalf("uniform draw %d out of range", v)
		}
	}
}
