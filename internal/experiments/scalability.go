package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// E20EncodeScalability measures the encoder itself: wall time of the
// sequential and parallel fat/thin encoders as n grows, the per-vertex
// cost, and the parallel speedup. Encoding is the one-off cost of the
// paper's peer-to-peer deployment (labels are computed once, centrally,
// then shipped), so linear scaling and multicore headroom matter in
// practice even though the paper's focus is label size.
func E20EncodeScalability(cfg Config) ([]*Table, error) {
	alpha := 2.5
	sizes := []int{1 << 14, 1 << 16, 1 << 18}
	if cfg.Quick {
		sizes = []int{1 << 12, 1 << 14}
	}
	tb := &Table{
		ID:    "E20",
		Title: fmt.Sprintf("encoder scalability (Chung–Lu, α=%.1f, GOMAXPROCS=%d)", alpha, runtime.GOMAXPROCS(0)),
		Cols:  []string{"n", "m", "seq.ms", "ns/vertex", "par.ms", "speedup", "fit.ms", "total.KiB"},
	}
	// Fixed-α scheme isolates the encoder; the α-fit (a one-off per graph)
	// is timed separately in fit.ms.
	s := core.NewPowerLawScheme(alpha)
	auto := core.NewPowerLawSchemeAuto()
	for _, n := range sizes {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		// Median-of-3 timings to damp scheduler noise.
		seq, err := timeEncode(3, func() error {
			_, err := s.Encode(g)
			return err
		})
		if err != nil {
			return nil, err
		}
		var lab *core.Labeling
		par, err := timeEncode(3, func() error {
			var err error
			lab, err = s.EncodeParallel(g, 0)
			return err
		})
		if err != nil {
			return nil, err
		}
		fit, err := timeEncode(3, func() error {
			_, err := auto.Threshold(g)
			return err
		})
		if err != nil {
			return nil, err
		}
		speedup := float64(seq) / float64(par)
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", g.M()),
			fmtF2(float64(seq.Microseconds())/1000),
			fmtF(float64(seq.Nanoseconds())/float64(n)),
			fmtF2(float64(par.Microseconds())/1000),
			fmtF2(speedup),
			fmtF2(float64(fit.Microseconds())/1000),
			fmtF(float64(lab.Stats().Total)/8192))
	}
	tb.Notes = append(tb.Notes,
		"ns/vertex staying flat across the n sweep is the O(n+m) encoder claim; speedup is machine-dependent (1 on a single-core runner)",
		"fit.ms = the α-MLE + tail-coefficient estimation used by the auto threshold, a one-off per graph",
		"label construction parallelizes per vertex; only the degree-sort identifier assignment is sequential")
	return []*Table{tb}, nil
}

// timeEncode returns the median duration of reps runs of fn.
func timeEncode(reps int, fn func() error) (time.Duration, error) {
	durations := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		durations = append(durations, time.Since(start))
	}
	// Median of small slice by selection.
	for i := range durations {
		for j := i + 1; j < len(durations); j++ {
			if durations[j] < durations[i] {
				durations[i], durations[j] = durations[j], durations[i]
			}
		}
	}
	return durations[len(durations)/2], nil
}
