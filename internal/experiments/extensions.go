package experiments

import (
	"fmt"
	"math"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/powerlaw"
	"repro/internal/schemes/dynamic"
	"repro/internal/schemes/tree"
	"repro/internal/universal"
)

// E11DynamicRelabels measures the dynamic extension (future work, Section
// 8.1): grow graphs edge-by-edge through the dynamic fat/thin scheme and
// report the communication cost — amortized relabels and bits rewritten per
// update — plus the label-size drift against a fresh static encode of the
// final graph.
func E11DynamicRelabels(cfg Config) ([]*Table, error) {
	sizes := []int{1 << 11, 1 << 13, 1 << 15}
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12}
	}
	tb := &Table{
		ID:    "E11",
		Title: "dynamic scheme: amortized relabel cost of incremental growth",
		Cols: []string{"workload", "n", "updates", "relabels/upd", "bits/upd",
			"promotions", "rebuilds", "dyn.max", "static.max", "drift"},
	}
	type workload struct {
		name  string
		alpha float64
		build func(n int) (edges [][2]int, err error)
	}
	workloads := []workload{
		{
			name:  "ba(m=3)",
			alpha: 3.0,
			build: func(n int) ([][2]int, error) {
				g, err := gen.BarabasiAlbert(n, 3, cfg.Seed+int64(n))
				if err != nil {
					return nil, err
				}
				var es [][2]int
				g.Edges(func(u, v int) { es = append(es, [2]int{u, v}) })
				return es, nil
			},
		},
		{
			name:  "chunglu(α=2.5)",
			alpha: 2.5,
			build: func(n int) ([][2]int, error) {
				g, err := gen.ChungLuPowerLaw(n, 2.5, 2, cfg.Seed+int64(n))
				if err != nil {
					return nil, err
				}
				var es [][2]int
				g.Edges(func(u, v int) { es = append(es, [2]int{u, v}) })
				return es, nil
			},
		},
	}
	for _, wl := range workloads {
		for _, n := range sizes {
			edges, err := wl.build(n)
			if err != nil {
				return nil, err
			}
			s, err := dynamic.New(wl.alpha, 4)
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				s.AddVertex()
			}
			for _, e := range edges {
				if err := s.AddEdge(e[0], e[1]); err != nil {
					return nil, fmt.Errorf("E11: add edge: %w", err)
				}
			}
			st := s.Stats()
			staticLab, err := core.NewPowerLawSchemeAuto().Encode(s.Snapshot())
			if err != nil {
				return nil, err
			}
			staticMax := staticLab.Stats().Max
			drift := math.Inf(1)
			if staticMax > 0 {
				drift = float64(s.MaxLabelBits()) / float64(staticMax)
			}
			tb.AddRow(wl.name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", st.Updates),
				fmtF2(float64(st.Relabels)/float64(st.Updates)),
				fmtF(float64(st.BitsRewritten)/float64(st.Updates)),
				fmt.Sprintf("%d", st.Promotions), fmt.Sprintf("%d", st.Rebuilds),
				fmtBits(s.MaxLabelBits()), fmtBits(staticMax), fmtF2(drift))
		}
	}
	tb.Notes = append(tb.Notes,
		"the paper's future work asks for the re-label count of a dynamic extension; relabels/upd staying flat in n is the O(1)-amortized answer",
		"drift = dynamic max label / fresh static encode of the same final graph")
	return []*Table{tb}, nil
}

// E12IncompleteKnowledge measures the two robustness questions of Section
// 8.1: (a) a threshold predicted from the *model only* (expected degree
// frequencies, never the realized graph) versus the data-fitted and optimal
// thresholds; (b) the power-law machinery applied to a workload whose
// degrees are actually lognormal.
func E12IncompleteKnowledge(cfg Config) ([]*Table, error) {
	alpha := 2.5
	sizes := []int{1 << 12, 1 << 14}
	if cfg.Quick {
		sizes = []int{1 << 11, 1 << 12}
	}
	modelC, err := core.ZetaTailCoefficient(alpha)
	if err != nil {
		return nil, err
	}
	tbA := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("incomplete knowledge: model-only threshold (config model, α=%.1f, Ĉ=%.3f)", alpha, modelC),
		Cols:  []string{"n", "τ.model", "max@model", "τ.fit", "max@fit", "τ*", "max@τ*", "model.ratio", "fit.ratio"},
	}
	for _, n := range sizes {
		g, err := gen.PowerLawConfiguration(n, alpha, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		model := core.NewPowerLawSchemeModel(alpha, modelC)
		tauModel, err := model.Threshold(g)
		if err != nil {
			return nil, err
		}
		fit := core.NewPowerLawSchemeAuto()
		tauFit, err := fit.Threshold(g)
		if err != nil {
			return nil, err
		}
		maxAt := func(tau int) (int, error) {
			lab, err := core.NewFixedThresholdScheme(tau).Encode(g)
			if err != nil {
				return 0, err
			}
			return lab.Stats().Max, nil
		}
		atModel, err := maxAt(tauModel)
		if err != nil {
			return nil, err
		}
		atFit, err := maxAt(tauFit)
		if err != nil {
			return nil, err
		}
		best, bestTau := atModel, tauModel
		if atFit < best {
			best, bestTau = atFit, tauFit
		}
		for tau := 1; tau <= g.MaxDegree()+1; tau = next(tau) {
			m, err := maxAt(tau)
			if err != nil {
				return nil, err
			}
			if m < best {
				best, bestTau = m, tau
			}
		}
		tbA.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", tauModel), fmtBits(atModel),
			fmt.Sprintf("%d", tauFit), fmtBits(atFit),
			fmt.Sprintf("%d", bestTau), fmtBits(best),
			fmtF2(float64(atModel)/float64(best)),
			fmtF2(float64(atFit)/float64(best)))
	}
	tbA.Notes = append(tbA.Notes,
		"τ.model is computed from (α, ζ) alone — the encoder never sees the realized degrees (Section 8.1's incomplete-knowledge setting)")

	tbB := &Table{
		ID:    "E12",
		Title: "model misspecification: power-law threshold on lognormal degree data",
		Cols:  []string{"n", "maxdeg", "fit.α", "τ.fit", "max@fit", "τ*", "max@τ*", "fit.ratio"},
	}
	for _, n := range sizes {
		g, err := gen.ChungLuLogNormal(n, 1.0, 1.1, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		fitScheme := core.NewPowerLawSchemeAuto()
		tauFit, err := fitScheme.Threshold(g)
		if err != nil {
			return nil, err
		}
		maxAt := func(tau int) (int, error) {
			lab, err := core.NewFixedThresholdScheme(tau).Encode(g)
			if err != nil {
				return 0, err
			}
			return lab.Stats().Max, nil
		}
		atFit, err := maxAt(tauFit)
		if err != nil {
			return nil, err
		}
		best, bestTau := atFit, tauFit
		for tau := 1; tau <= g.MaxDegree()+1; tau = next(tau) {
			m, err := maxAt(tau)
			if err != nil {
				return nil, err
			}
			if m < best {
				best, bestTau = m, tau
			}
		}
		degrees := g.Degrees()
		fitAlpha := "-"
		if f, err := fitAlphaOf(degrees); err == nil {
			fitAlpha = fmtF2(f)
		}
		tbB.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", g.MaxDegree()), fitAlpha,
			fmt.Sprintf("%d", tauFit), fmtBits(atFit),
			fmt.Sprintf("%d", bestTau), fmtBits(best),
			fmtF2(float64(atFit)/float64(best)))
	}
	tbB.Notes = append(tbB.Notes,
		"the fat/thin idea degrades gracefully under the wrong distribution family: fit.ratio quantifies the cost of assuming a power law on lognormal data (Section 8.1's final question)")
	return []*Table{tbA, tbB}, nil
}

// E13UniversalGraphs materializes the labeling-scheme ↔ induced-universal-
// graph correspondence (Kannan–Naor–Rudich) used in Section 5: the tree
// scheme's 2·log n-bit labels induce an n²-vertex universal graph for
// n-vertex forests; the experiment builds it and verifies embeddings.
func E13UniversalGraphs(cfg Config) ([]*Table, error) {
	sizes := []int{4, 8, 16, 32}
	if !cfg.Quick {
		sizes = append(sizes, 64)
	}
	tb := &Table{
		ID:    "E13",
		Title: "induced-universal graphs from the forest labeling scheme (KNR)",
		Cols:  []string{"n", "label.bits", "|U| vertices", "|U| edges", "n²", "forests verified"},
	}
	for _, n := range sizes {
		bits := 2 * bitstr.WidthFor(uint64(n))
		u, err := universal.Build(bits, tree.NewDecoder(n))
		if err != nil {
			return nil, err
		}
		verified := 0
		for seed := int64(0); seed < 25; seed++ {
			f := gen.RandomTree(n, cfg.Seed+seed)
			lab, err := (tree.Scheme{}).Encode(f)
			if err != nil {
				return nil, err
			}
			if err := universal.VerifyEmbedding(u, lab, f, bits); err != nil {
				return nil, fmt.Errorf("E13: n=%d seed=%d: %w", n, seed, err)
			}
			verified++
		}
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", bits),
			fmt.Sprintf("%d", u.N()), fmt.Sprintf("%d", u.M()),
			fmt.Sprintf("%d", n*n), fmt.Sprintf("%d/25", verified))
	}
	tb.Notes = append(tb.Notes,
		"an f(n)-bit scheme induces a universal graph on 2^f(n) vertices; for the 2·log n tree labels that is exactly n² (KNR [36], used for the Section 5 corollary)")
	return []*Table{tb}, nil
}

func fitAlphaOf(degrees []int) (float64, error) {
	f, err := powerlaw.FitAlpha(degrees)
	if err != nil {
		return 0, err
	}
	return f.Alpha, nil
}
