package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/peernet"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

// E15CompressedThin ablates the thin-label encoding: fixed-width neighbor
// identifiers (the paper's layout) versus the adaptive Elias-δ gap coding
// (the distribution-aware refinement of Section 8.1's last question). The
// win should grow as α falls toward 2, where thin vertices' neighbors
// concentrate on the hub identifiers.
func E15CompressedThin(cfg Config) ([]*Table, error) {
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 12
	}
	tb := &Table{
		ID:    "E15",
		Title: fmt.Sprintf("thin-label encoding ablation: fixed-width vs adaptive δ-gaps (Chung–Lu, n=%d)", n),
		Cols:  []string{"α", "m", "plain.total(KiB)", "comp.total(KiB)", "saving", "plain.mean", "comp.mean", "plain.max", "comp.max"},
	}
	for _, alpha := range []float64{2.05, 2.1, 2.2, 2.4, 2.6, 2.8, 3.0} {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(alpha*1000))
		if err != nil {
			return nil, err
		}
		inner := core.NewPowerLawSchemeAuto()
		plain, err := inner.Encode(g)
		if err != nil {
			return nil, err
		}
		comp, err := core.NewCompressedScheme(inner).Encode(g)
		if err != nil {
			return nil, err
		}
		ps, cs := plain.Stats(), comp.Stats()
		saving := 1 - float64(cs.Total)/float64(ps.Total)
		tb.AddRow(fmtF2(alpha), fmt.Sprintf("%d", g.M()),
			fmtF(float64(ps.Total)/8192), fmtF(float64(cs.Total)/8192),
			fmt.Sprintf("%.1f%%", 100*saving),
			fmtF(ps.Mean), fmtF(cs.Mean), fmtBits(ps.Max), fmtBits(cs.Max))
	}
	tb.Notes = append(tb.Notes,
		"the adaptive 1-bit flag guarantees comp ≤ plain + 1 bit per thin label; real savings appear only when hubs dominate (α near 2)",
		"this quantifies the Section 8.1 question about distribution-aware refinements: the generic power-law layout is already near-optimal for α ≳ 2.4")
	return []*Table{tb}, nil
}

// E16CommunicationCost measures the peer-to-peer deployment trade-off: bytes
// on the wire per adjacency query for the 2-label fat/thin scheme, its
// compressed variant, the forest scheme, and the 1-query scheme (three
// fetches of tiny labels). This is the systems-level meaning of label size
// that the paper's introduction motivates.
func E16CommunicationCost(cfg Config) ([]*Table, error) {
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	queries := 20000
	if cfg.Quick {
		sizes = []int{1 << 11, 1 << 13}
		queries = 4000
	}
	alpha := 2.3
	tb := &Table{
		ID:    "E16",
		Title: fmt.Sprintf("bytes on the wire per adjacency query (Chung–Lu, α=%.1f, %d queries)", alpha, queries),
		Cols:  []string{"n", "scheme", "fetches/query", "bytes/query(mixed)", "bytes/query(hub)", "max.label.bits"},
	}
	for _, n := range sizes {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		// Deterministic query mix: half edges, half random pairs.
		rng := rand.New(rand.NewSource(cfg.Seed))
		type pair struct{ u, v int }
		pairs := make([]pair, 0, queries)
		edgeBudget := queries / 2
		g.Edges(func(u, v int) {
			if edgeBudget > 0 {
				pairs = append(pairs, pair{u, v})
				edgeBudget--
			}
		})
		for len(pairs) < queries {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				pairs = append(pairs, pair{u, v})
			}
		}
		// Hub mix: every query touches the highest-degree vertex — the
		// worst case for 2-label schemes, whose hub labels are the largest.
		hub := 0
		for v := 1; v < n; v++ {
			if g.Degree(v) > g.Degree(hub) {
				hub = v
			}
		}
		hubPairs := make([]pair, 0, queries)
		for len(hubPairs) < queries {
			v := rng.Intn(n)
			if v != hub {
				hubPairs = append(hubPairs, pair{hub, v})
			}
		}

		type twoLabelCase struct {
			name string
			lab  *core.Labeling
			dec  core.AdjacencyDecoder
		}
		var cases []twoLabelCase
		ft, err := core.NewPowerLawSchemeAuto().Encode(g)
		if err != nil {
			return nil, err
		}
		cases = append(cases, twoLabelCase{"fatthin(auto)", ft, core.NewFatThinDecoder(n)})
		comp, err := core.NewCompressedScheme(core.NewPowerLawSchemeAuto()).Encode(g)
		if err != nil {
			return nil, err
		}
		cases = append(cases, twoLabelCase{"compressed", comp, core.NewCompressedDecoder(n)})
		fo, err := (forest.Scheme{}).Encode(g)
		if err != nil {
			return nil, err
		}
		cases = append(cases, twoLabelCase{"forest", fo, forest.NewDecoder(n)})

		for _, c := range cases {
			labels, err := peernet.LabelsOf(c.lab)
			if err != nil {
				return nil, err
			}
			net := peernet.New(labels)
			svc := &peernet.TwoLabelService{Net: net, Dec: c.dec}
			for _, p := range pairs {
				if _, err := svc.Adjacent(p.u, p.v); err != nil {
					return nil, fmt.Errorf("E16: %s: %w", c.name, err)
				}
			}
			mixed := net.Stats()
			net.ResetStats()
			for _, p := range hubPairs {
				if _, err := svc.Adjacent(p.u, p.v); err != nil {
					return nil, fmt.Errorf("E16: %s hub: %w", c.name, err)
				}
			}
			hubStats := net.Stats()
			tb.AddRow(fmt.Sprintf("%d", n), c.name,
				fmtF2(float64(mixed.Fetches)/float64(len(pairs))),
				fmtF(float64(mixed.Bytes)/float64(len(pairs))),
				fmtF(float64(hubStats.Bytes)/float64(len(hubPairs))),
				fmtBits(c.lab.Stats().Max))
		}

		enc, err := (onequery.Scheme{Seed: cfg.Seed}).Encode(g)
		if err != nil {
			return nil, err
		}
		oqLabels, err := peernet.LabelsOf(enc.Labeling)
		if err != nil {
			return nil, err
		}
		oqNet := peernet.New(oqLabels)
		oqSvc := &peernet.OneQueryService{Net: oqNet, Dec: enc.Dec}
		for _, p := range pairs {
			if _, err := oqSvc.Adjacent(p.u, p.v); err != nil {
				return nil, fmt.Errorf("E16: onequery: %w", err)
			}
		}
		mixed := oqNet.Stats()
		oqNet.ResetStats()
		for _, p := range hubPairs {
			if _, err := oqSvc.Adjacent(p.u, p.v); err != nil {
				return nil, fmt.Errorf("E16: onequery hub: %w", err)
			}
		}
		hubStats := oqNet.Stats()
		tb.AddRow(fmt.Sprintf("%d", n), "onequery",
			fmtF2(float64(mixed.Fetches)/float64(len(pairs))),
			fmtF(float64(mixed.Bytes)/float64(len(pairs))),
			fmtF(float64(hubStats.Bytes)/float64(len(hubPairs))),
			fmtBits(enc.Stats().Max))
	}
	tb.Notes = append(tb.Notes,
		"bytes/query includes request/response framing (8+8 bytes per fetch)",
		"mixed queries mostly touch thin vertices, so the 2-label schemes' small average labels win there; on hub-touching queries the 1-query scheme's flat O(log n) labels win and the gap widens with n — the Section 6 trade-off in systems terms")
	return []*Table{tb}, nil
}
