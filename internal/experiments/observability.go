package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/obs"
)

// E24ObservabilityOverhead prices the observability layer. Table one times
// the obs primitives themselves — the costs every instrumented hot path pays
// per event. Table two answers the question that gates shipping metrics in
// the serving path at all: the engine's batch-4096 AdjacentMany throughput
// with no metrics attached versus with a live EngineMetrics, as an overhead
// percentage. The instrumented design (stack-local tally, O(1) atomic
// flushes per batch) is accepted when that delta stays within the noise
// budget (≤2%); the raw numbers are recorded in EXPERIMENTS.md E24.
func E24ObservabilityOverhead(cfg Config) ([]*Table, error) {
	prim := &Table{
		ID:    "E24",
		Title: "observability primitive cost (single goroutine unless noted)",
		Cols:  []string{"primitive", "ops", "ns/op"},
	}
	primOps := 1 << 22
	if cfg.Quick {
		primOps = 1 << 19
	}

	var c obs.Counter
	prim.AddRow("Counter.Add", fmt.Sprint(primOps), fmtNsOp(timeOps(primOps, func(i int) { c.Add(1) })))
	var g obs.Gauge
	prim.AddRow("Gauge.Set", fmt.Sprint(primOps), fmtNsOp(timeOps(primOps, func(i int) { g.Set(int64(i)) })))
	var h obs.Histogram
	prim.AddRow("Histogram.Observe", fmt.Sprint(primOps), fmtNsOp(timeOps(primOps, func(i int) { h.Observe(int64(i)) })))

	// Contended observe: every worker hammering one histogram — the worst
	// case for the serving path, where per-connection goroutines share the
	// frame-latency histograms.
	workers := runtime.GOMAXPROCS(0)
	var contended obs.Histogram
	perWorker := primOps / workers
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				contended.Observe(int64(w + i))
			}
		}(w)
	}
	wg.Wait()
	prim.AddRow(fmt.Sprintf("Histogram.Observe x%d goroutines", workers),
		fmt.Sprint(workers*perWorker),
		fmtNsOp(float64(time.Since(start).Nanoseconds())/float64(workers*perWorker)))

	// A full registry render at serving shape: the scrape cost an admin
	// endpoint pays, amortized over however often Prometheus polls.
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	reg.Counter("e24_counter", "E24 scratch.", &c)
	reg.Gauge("e24_gauge", "E24 scratch.", &g)
	reg.Histogram("e24_hist", "E24 scratch.", &h)
	renders := 200
	if cfg.Quick {
		renders = 50
	}
	var sb strings.Builder
	rstart := time.Now()
	for i := 0; i < renders; i++ {
		sb.Reset()
		if err := reg.WritePrometheus(&sb); err != nil {
			return nil, err
		}
	}
	prim.AddRow("Registry render (runtime+3 fams)", fmt.Sprint(renders),
		fmtNsOp(float64(time.Since(rstart).Nanoseconds())/float64(renders)))

	// Engine batch path, uninstrumented vs instrumented.
	alpha := 2.5
	n := 1 << 14
	reps := 9
	if cfg.Quick {
		n = 1 << 11
		reps = 5
	}
	graph, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	lab, err := core.NewPowerLawScheme(alpha).Encode(graph)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewQueryEngine(lab)
	if err != nil {
		return nil, err
	}
	pairs := randomQueryPairs(n, 1<<12, cfg.Seed+1)
	out := make([]bool, 0, len(pairs))
	batchesPerRep := 64
	runBatches := func() error {
		for b := 0; b < batchesPerRep; b++ {
			var err error
			if out, err = eng.AdjacentMany(pairs, out[:0]); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm caches before either arm so the first-touch cost lands on neither.
	if err := runBatches(); err != nil {
		return nil, err
	}
	plainT, err := medianTime(reps, runBatches)
	if err != nil {
		return nil, err
	}
	var em core.EngineMetrics
	eng.AttachMetrics(&em)
	instrT, err := medianTime(reps, runBatches)
	if err != nil {
		return nil, err
	}
	eng.AttachMetrics(nil)

	queries := batchesPerRep * len(pairs)
	overhead := &Table{
		ID:    "E24",
		Title: fmt.Sprintf("engine instrumentation overhead (AdjacentMany, batch %d, Chung–Lu n=%d)", len(pairs), n),
		Cols:  []string{"engine", "q/s", "ns/query", "overhead.%"},
	}
	nsq := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(queries) }
	overhead.AddRow("metrics detached", fmtQPS(queries, plainT), fmtF2(nsq(plainT)), "0.00")
	delta := (nsq(instrT) - nsq(plainT)) / nsq(plainT) * 100
	overhead.AddRow("metrics attached", fmtQPS(queries, instrT), fmtF2(nsq(instrT)), fmtF2(delta))
	if em.Queries.Load() != int64(reps*queries) {
		return nil, fmt.Errorf("E24: attached run counted %d queries, drove %d", em.Queries.Load(), reps*queries)
	}
	return []*Table{prim, overhead}, nil
}

// timeOps times n calls of fn and returns ns/op.
func timeOps(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

func fmtNsOp(ns float64) string { return fmt.Sprintf("%.1f", ns) }
