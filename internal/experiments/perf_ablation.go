package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/arboricity"
	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

// E8DecodeThroughput measures encode time and decode throughput for every
// adjacency scheme on the same power-law workload — the practicality claim
// behind "both decoding processes can be computed in O(log n) time".
func E8DecodeThroughput(cfg Config) ([]*Table, error) {
	alpha := 2.5
	n := 1 << 16
	queries := 200000
	if cfg.Quick {
		n = 1 << 12
		queries = 20000
	}
	g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("encode time and decode throughput (Chung–Lu, n=%d, α=%.1f)", n, alpha),
		Cols:  []string{"scheme", "encode.ms", "max.bits", "avg.bits", "ns/query", "Mq/s"},
	}
	type labeled struct {
		name string
		lab  *core.Labeling
		enc  time.Duration
	}
	var rows []labeled
	encodeAll := []core.Scheme{
		core.NewPowerLawScheme(alpha),
		core.NewPowerLawSchemeAuto(),
		core.NewCompressedScheme(core.NewPowerLawSchemeAuto()),
		core.NewSparseSchemeAuto(),
		baseline.NeighborList{},
		forest.Scheme{},
	}
	for _, s := range encodeAll {
		start := time.Now()
		lab, err := s.Encode(g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, labeled{name: s.Name(), lab: lab, enc: time.Since(start)})
	}
	start := time.Now()
	oq, err := (onequery.Scheme{Seed: cfg.Seed}).Encode(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, labeled{name: "onequery", lab: oq.Labeling, enc: time.Since(start)})

	// Deterministic query mix: half edges, half random pairs.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type pair struct{ u, v int }
	pairs := make([]pair, 0, queries)
	edgeBudget := queries / 2
	g.Edges(func(u, v int) {
		if edgeBudget > 0 {
			pairs = append(pairs, pair{u, v})
			edgeBudget--
		}
	})
	for len(pairs) < queries {
		pairs = append(pairs, pair{rng.Intn(n), rng.Intn(n)})
	}

	for _, r := range rows {
		startQ := time.Now()
		hits := 0
		for _, p := range pairs {
			ok, err := r.lab.Adjacent(p.u, p.v)
			if err != nil {
				return nil, fmt.Errorf("%s: query (%d,%d): %w", r.name, p.u, p.v, err)
			}
			if ok {
				hits++
			}
		}
		elapsed := time.Since(startQ)
		nsPerQuery := float64(elapsed.Nanoseconds()) / float64(len(pairs))
		st := r.lab.Stats()
		tb.AddRow(r.name,
			fmtF2(float64(r.enc.Microseconds())/1000),
			fmtBits(st.Max), fmtF(st.Mean),
			fmtF(nsPerQuery), fmtF2(1e3/nsPerQuery))
		_ = hits
	}
	// Query-engine rows: the Theorem 4 labels again, but served through the
	// pre-parsed arena-backed core.QueryEngine — single queries, one batch
	// call, and the sharded parallel driver. encode.ms for these rows is
	// the engine build time (compaction + header pre-parse) on top of the
	// already-encoded labels.
	base := rows[0].lab // powerlaw(α) labeling from the loop above
	buildStart := time.Now()
	eng, err := core.NewQueryEngine(base.Compact())
	if err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
	qp := make([][2]int, len(pairs))
	for i, p := range pairs {
		qp[i] = [2]int{p.u, p.v}
	}
	st := base.Stats()
	addEngineRow := func(name string, elapsed time.Duration) {
		nsPerQuery := float64(elapsed.Nanoseconds()) / float64(len(qp))
		tb.AddRow(name, fmtF2(buildMS), fmtBits(st.Max), fmtF(st.Mean),
			fmtF(nsPerQuery), fmtF2(1e3/nsPerQuery))
	}

	startQ := time.Now()
	for _, p := range qp {
		if _, err := eng.Adjacent(p[0], p[1]); err != nil {
			return nil, fmt.Errorf("engine: query (%d,%d): %w", p[0], p[1], err)
		}
	}
	addEngineRow("engine(single)", time.Since(startQ))

	out := make([]bool, 0, len(qp))
	startQ = time.Now()
	if out, err = eng.AdjacentMany(qp, out[:0]); err != nil {
		return nil, fmt.Errorf("engine batch: %w", err)
	}
	addEngineRow("engine(batch)", time.Since(startQ))

	workers := runtime.GOMAXPROCS(0)
	startQ = time.Now()
	if out, err = eng.AdjacentManyParallel(qp, out[:0], workers); err != nil {
		return nil, fmt.Errorf("engine parallel: %w", err)
	}
	addEngineRow(fmt.Sprintf("engine(par=%d)", workers), time.Since(startQ))
	_ = out

	tb.Notes = append(tb.Notes,
		"absolute timings are machine-dependent; the shape to check is that every decoder is sub-microsecond",
		"engine rows serve the powerlaw(α) labels through the zero-allocation QueryEngine; encode.ms there is engine build time")
	return []*Table{tb}, nil
}

// E9ThresholdAblation compares the three natural threshold rules on the same
// workloads: Theorem 3's sparse rule, Theorem 4's power-law rule, and a
// degeneracy-based rule (τ = degeneracy+1). This isolates the value of the
// paper's "threshold prediction" idea.
func E9ThresholdAblation(cfg Config) ([]*Table, error) {
	alpha := 2.5
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 12
	}
	cl, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ba, err := gen.BarabasiAlbert(n, 3, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("threshold-rule ablation (n=%d)", n),
		Cols:  []string{"workload", "rule", "τ", "#fat", "max.bits", "avg.bits"},
	}
	for _, wl := range []struct {
		name string
		g    *graph.Graph
	}{{"chunglu(α=2.5)", cl}, {"ba(m=3)", ba}} {
		g := wl.g
		degeneracyTau := arboricity.Degeneracy(g) + 1
		rules := []struct {
			name string
			s    *core.FatThinScheme
		}{
			{"sparse(thm3)", core.NewSparseSchemeAuto()},
			{"powerlaw(thm4)", core.NewPowerLawScheme(alpha)},
			{"powerlaw(fit)", core.NewPowerLawSchemeAuto()},
			{"degeneracy+1", core.NewFixedThresholdScheme(degeneracyTau)},
		}
		for _, r := range rules {
			tau, err := r.s.Threshold(g)
			if err != nil {
				return nil, err
			}
			lab, err := r.s.Encode(g)
			if err != nil {
				return nil, err
			}
			nFat := 0
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) >= tau {
					nFat++
				}
			}
			st := lab.Stats()
			tb.AddRow(wl.name, r.name, fmt.Sprintf("%d", tau),
				fmt.Sprintf("%d", nFat), fmtBits(st.Max), fmtF(st.Mean))
		}
	}
	tb.Notes = append(tb.Notes,
		"expected shape: on power-law inputs the thm4 rule beats the thm3 rule on max.bits; a degeneracy threshold makes nearly everything thin")
	return []*Table{tb}, nil
}

// E10FatEncoding ablates the design choice inside the fat label of Theorem
// 3/4: a k-bit bitmap over fat identifiers versus an explicit list of fat
// neighbor identifiers. The bitmap is what makes the fat label independent
// of its fat degree; the list wins only when fat-fat adjacency is sparse.
func E10FatEncoding(cfg Config) ([]*Table, error) {
	alpha := 2.5
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 12
	}
	tb := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("fat-label encoding ablation (n=%d)", n),
		Cols:  []string{"workload", "τ", "k=#fat", "bitmap.maxfat", "list.maxfat", "bitmap.avgfat", "list.avgfat", "win"},
	}
	cl, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// A dense-core control: a clique of hubs planted over a sparse graph,
	// where fat-fat adjacency is dense and the bitmap must win.
	dense, err := denseCoreGraph(n/4, 60, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, wl := range []struct {
		name string
		g    *graph.Graph
		s    *core.FatThinScheme
	}{
		{"chunglu(α=2.5)", cl, core.NewPowerLawScheme(alpha)},
		{"dense-core", dense, core.NewFixedThresholdScheme(30)},
	} {
		g := wl.g
		tau, err := wl.s.Threshold(g)
		if err != nil {
			return nil, err
		}
		w := bitstr.WidthFor(uint64(g.N()))
		var fat []int
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) >= tau {
				fat = append(fat, v)
			}
		}
		isFat := make(map[int]bool, len(fat))
		for _, v := range fat {
			isFat[v] = true
		}
		k := len(fat)
		bitmapMax, listMax := 0, 0
		var bitmapSum, listSum int64
		for _, v := range fat {
			fatDeg := 0
			for _, u := range g.Neighbors(v) {
				if isFat[int(u)] {
					fatDeg++
				}
			}
			bm := 1 + w + k        // header + bitmap
			ls := 1 + w + fatDeg*w // header + explicit fat-neighbor ids
			if bm > bitmapMax {
				bitmapMax = bm
			}
			if ls > listMax {
				listMax = ls
			}
			bitmapSum += int64(bm)
			listSum += int64(ls)
		}
		if k == 0 {
			tb.AddRow(wl.name, fmt.Sprintf("%d", tau), "0", "-", "-", "-", "-", "-")
			continue
		}
		win := "bitmap"
		if listMax < bitmapMax {
			win = "list"
		}
		tb.AddRow(wl.name, fmt.Sprintf("%d", tau), fmt.Sprintf("%d", k),
			fmtBits(bitmapMax), fmtBits(listMax),
			fmtF(float64(bitmapSum)/float64(k)), fmtF(float64(listSum)/float64(k)), win)
	}
	tb.Notes = append(tb.Notes,
		"the bitmap guarantees 1+w+k bits regardless of fat-fat density, which is what the Theorem 3/4 proofs charge for; lists lose exactly when hubs interconnect (dense-core)")
	return []*Table{tb}, nil
}

// denseCoreGraph plants a clique of `core` hub vertices over a sparse ring.
func denseCoreGraph(n, coreSize int, seed int64) (*graph.Graph, error) {
	if coreSize > n {
		coreSize = n
	}
	b := graph.NewBuilder(n)
	for u := 0; u < coreSize; u++ {
		for v := u + 1; v < coreSize; v++ {
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for v := coreSize; v < n; v++ {
		if err := b.AddEdge(v, rng.Intn(coreSize)); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
