package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/adjserve"
	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/labelstore"
	"repro/internal/peernet"
)

// E23ServingThroughput measures the serving tier end to end: a loopback
// adjserve server over a power-law labeling, driven at batch sizes
// 1/64/4096 over 1 and GOMAXPROCS pipelined connections. Batch size 1 is
// the naive one-request-per-pair remote loop; the peer-to-peer
// TwoLabelService from E16 is the in-process per-pair baseline the paper's
// deployment model implies. A second table times labelstore.Open (mmap)
// against labelstore.Read (copying) at two file sizes: the map-don't-copy
// startup is O(header), so its time must not grow with the label file.
func E23ServingThroughput(cfg Config) ([]*Table, error) {
	alpha := 2.5
	n := 1 << 15
	targetQ := 1 << 18
	if cfg.Quick {
		n = 1 << 11
		targetQ = 1 << 13
	}
	g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	lab, err := core.NewPowerLawScheme(alpha).Encode(g)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewQueryEngine(lab)
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := adjserve.NewServer(eng, 0)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	tb := &Table{
		ID:    "E23",
		Title: fmt.Sprintf("adjacency serving throughput (loopback TCP, Chung–Lu n=%d, α=%.1f)", n, alpha),
		Cols:  []string{"transport", "batch", "conns", "queries", "q/s", "p50.µs", "p99.µs", "B/query"},
	}

	// In-process per-pair baseline: the simulated peer-to-peer service whose
	// traffic units (request + response framing + label bytes) the server
	// shares, so B/query is directly comparable.
	labels := make([]bitstr.String, g.N())
	for v := range labels {
		if labels[v], err = lab.Label(v); err != nil {
			return nil, err
		}
	}
	pnet := peernet.New(labels)
	svc := &peernet.TwoLabelService{Net: pnet, Dec: core.NewFatThinDecoder(g.N())}
	pairs := randomQueryPairs(g.N(), 1<<12, cfg.Seed+1)
	baseQ := min(targetQ, 1<<15) // per-pair loops are slow; cap the sample
	lat := make([]time.Duration, 0, baseQ)
	start := time.Now()
	for i := 0; i < baseQ; i++ {
		p := pairs[i%len(pairs)]
		qs := time.Now()
		if _, err := svc.Adjacent(p[0], p[1]); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(qs))
	}
	elapsed := time.Since(start)
	pst := pnet.Stats()
	tb.AddRow("peernet(sim)", "1", "1", strconv.Itoa(baseQ),
		fmtQPS(baseQ, elapsed), fmtMicros(quantile(lat, 0.50)), fmtMicros(quantile(lat, 0.99)),
		fmtF(float64(pst.Bytes)/float64(pst.Fetches)))

	// Remote sweeps. Frame latency is per AdjacentMany call, so at batch b a
	// p50 of t µs means t/b µs per query.
	conns := []int{1, runtime.GOMAXPROCS(0)}
	if conns[1] == 1 {
		conns = conns[:1]
	}
	for _, batch := range []int{1, 64, 4096} {
		tq := targetQ
		if batch == 1 {
			tq = min(targetQ, 1<<15) // one RTT per query; cap the sample
		}
		for _, nc := range conns {
			queries, elapsed, lats, bytesPerQ, err := driveServer(srv, addr, pairs, batch, nc, tq)
			if err != nil {
				return nil, err
			}
			tb.AddRow("adjserve(tcp)", strconv.Itoa(batch), strconv.Itoa(nc), strconv.Itoa(queries),
				fmtQPS(queries, elapsed), fmtMicros(quantile(lats, 0.50)), fmtMicros(quantile(lats, 0.99)),
				fmtF2(bytesPerQ))
		}
	}
	tb.Notes = append(tb.Notes,
		"batch=1 is the naive one-request-per-pair remote loop; the acceptance bar is batch=4096 q/s >= 10x that",
		"p50/p99 are per-frame round-trip latencies: at batch b, divide by b for per-query time",
		"B/query counts frame headers + payloads with the same request/response units as the E16 peer simulation",
		"loopback TCP: no real network latency, so this isolates protocol + server cost")

	mmapTb, err := mmapStartupTable(lab, g.N(), cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{tb, mmapTb}, nil
}

// driveServer runs nc connections, each pipelining AdjacentMany frames of
// the given batch size until the shared target is met, and returns total
// queries, wall time, per-frame latencies, and server-accounted bytes/query.
func driveServer(srv *adjserve.Server, addr string, pairs [][2]int, batch, nc, targetQ int) (int, time.Duration, []time.Duration, float64, error) {
	framesPerConn := targetQ / (batch * nc)
	if framesPerConn < 8 {
		framesPerConn = 8
	}
	clients := make([]*adjserve.Client, nc)
	for i := range clients {
		c, err := adjserve.Dial(addr)
		if err != nil {
			return 0, 0, nil, 0, err
		}
		defer c.Close()
		c.MaxBatch = batch
		clients[i] = c
	}
	// Warm up connections and pools outside the timed window.
	for _, c := range clients {
		if _, err := c.AdjacentMany(pairs[:min(batch, len(pairs))], nil); err != nil {
			return 0, 0, nil, 0, err
		}
	}
	srv.Traffic.Reset()

	type res struct {
		lats []time.Duration
		err  error
	}
	results := make(chan res, nc)
	start := time.Now()
	for i, c := range clients {
		go func(i int, c *adjserve.Client) {
			lats := make([]time.Duration, 0, framesPerConn)
			out := make([]bool, 0, batch)
			off := i * 31 // decorrelate the per-connection query streams
			for f := 0; f < framesPerConn; f++ {
				lo := (off + f*batch) % len(pairs)
				chunk := pairs[lo:min(lo+batch, len(pairs))]
				for len(chunk) < batch {
					chunk = append(chunk[:len(chunk):len(chunk)], pairs[:min(batch-len(chunk), len(pairs))]...)
				}
				fs := time.Now()
				var err error
				out, err = c.AdjacentMany(chunk, out[:0])
				if err != nil {
					results <- res{err: err}
					return
				}
				lats = append(lats, time.Since(fs))
			}
			results <- res{lats: lats}
		}(i, c)
	}
	var all []time.Duration
	for range clients {
		r := <-results
		if r.err != nil {
			return 0, 0, nil, 0, r.err
		}
		all = append(all, r.lats...)
	}
	elapsed := time.Since(start)
	st := srv.Traffic.Stats()
	queries := framesPerConn * batch * nc
	bytesPerQ := 0.0
	if st.Fetches > 0 {
		bytesPerQ = float64(st.Bytes) / float64(st.Fetches)
	}
	return queries, elapsed, all, bytesPerQ, nil
}

// mmapStartupTable times labelstore.Open (mmap, O(header)) vs labelstore.Read
// (copying, O(file)) on two stores with the same n but very different label
// bodies: Open's cost is the n bit-length uvarints of the header and must
// stay flat as the body grows, while Read's tracks the whole file.
func mmapStartupTable(sparse *core.Labeling, n int, cfg Config) (*Table, error) {
	// Same vertex count, ~16x the mean degree: much fatter labels, same
	// header size.
	g, err := gen.ChungLuPowerLaw(n, 2.5, 32, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	dense, err := core.NewPowerLawScheme(2.5).EncodeParallel(g, 0)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:    "E23",
		Title: fmt.Sprintf("startup cost at n=%d: mmap Open vs copying Read", n),
		Cols:  []string{"store", "file.KiB", "open.µs", "read.µs", "read/open"},
	}
	dir, err := os.MkdirTemp("", "plserve-e23-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	for _, tc := range []struct {
		name string
		lab  *core.Labeling
	}{{"sparse", sparse}, {"dense", dense}} {
		path := filepath.Join(dir, "labels-"+tc.name+".pllb")
		size, err := writeArenaStore(path, tc.lab, n)
		if err != nil {
			return nil, err
		}
		openT, err := medianTime(5, func() error {
			mf, err := labelstore.Open(path)
			if err != nil {
				return err
			}
			return mf.Close()
		})
		if err != nil {
			return nil, err
		}
		readT, err := medianTime(5, func() error {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = labelstore.Read(f)
			return err
		})
		if err != nil {
			return nil, err
		}
		ratio := float64(readT) / float64max(float64(openT), 1)
		tb.AddRow(tc.name, fmtF(float64(size)/1024),
			fmtMicros(openT), fmtMicros(readT), fmtF2(ratio))
	}
	tb.Notes = append(tb.Notes,
		"same n, so both stores have identical headers (n bit-length uvarints); only the label bodies differ",
		"Open parses the header and maps the body: its time must stay flat as the body grows; Read decodes every label, so its time tracks the file",
		"N plserve processes mapping the same file share one page-cache copy of the label bodies")
	return tb, nil
}

// writeArenaStore writes lab as a format-v2 arena store and returns the file
// size in bytes.
func writeArenaStore(path string, lab *core.Labeling, n int) (int64, error) {
	slab, ok := lab.Arena()
	if !ok {
		return 0, fmt.Errorf("labeling is not arena-backed")
	}
	bitLens := make([]int, n)
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			return 0, err
		}
		bitLens[v] = l.Len()
	}
	store, err := labelstore.NewArenaFile(lab.Scheme(),
		map[string]string{"n": strconv.Itoa(n)}, slab, bitLens)
	if err != nil {
		return 0, err
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func randomQueryPairs(n, count int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int, count)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return pairs
}

// quantile returns the q-th latency quantile (sorts a copy).
func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// medianTime returns the median duration of reps runs of fn.
func medianTime(reps int, fn func() error) (time.Duration, error) {
	return timeEncode(reps, fn)
}

func fmtQPS(queries int, elapsed time.Duration) string {
	if elapsed <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(queries)/elapsed.Seconds())
}

func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

func float64max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
