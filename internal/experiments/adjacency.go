package experiments

import (
	"fmt"
	"math"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/powerlaw"
	"repro/internal/schemes/baseline"
)

// e1Sizes returns the n sweep for E1/E7.
func e1Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1 << 10, 1 << 12, 1 << 14}
	}
	return []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
}

// E1LabelSizeVsN regenerates the paper's headline comparison: maximum and
// average label size of the Theorem 4 power-law scheme against the Theorem 3
// sparse scheme and the neighbor-list / adjacency-matrix baselines, as n
// grows, for α across the real-world range. Every workload graph is checked
// for P_h membership so the Theorem 4 guarantee applies.
func E1LabelSizeVsN(cfg Config) ([]*Table, error) {
	var tables []*Table
	for _, alpha := range []float64{2.2, 2.5, 2.8} {
		tb := &Table{
			ID:    "E1",
			Title: fmt.Sprintf("max/avg label bits vs n (Chung–Lu, α=%.1f)", alpha),
			Cols: []string{"n", "m", "P_h?", "pl.max", "pl.avg", "thm4.bound", "auto.max", "auto.avg",
				"sparse.max", "sparse.avg", "thm3.bound", "nbr.max", "adjmat.max"},
		}
		for _, n := range e1Sizes(cfg) {
			g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
			if err != nil {
				return nil, err
			}
			p, err := powerlaw.NewParams(alpha, n)
			if err != nil {
				return nil, err
			}
			member := powerlaw.CheckPh(g, p, 1).Member

			plLab, err := core.NewPowerLawScheme(alpha).Encode(g)
			if err != nil {
				return nil, err
			}
			plStats := plLab.Stats()

			autoLab, err := core.NewPowerLawSchemeAuto().Encode(g)
			if err != nil {
				return nil, err
			}
			autoStats := autoLab.Stats()

			c := float64(g.M()) / float64(n)
			spLab, err := core.NewSparseScheme(c).Encode(g)
			if err != nil {
				return nil, err
			}
			spStats := spLab.Stats()

			nbrLab, err := baseline.NeighborList{}.Encode(g)
			if err != nil {
				return nil, err
			}

			// Adjacency-matrix sizes are a function of n alone; computed
			// analytically to avoid materializing Θ(n²) bits.
			adjMax := bitstr.WidthFor(uint64(n)) + n - 1

			thm4, err := core.PowerLawTheoremBound(alpha, n)
			if err != nil {
				return nil, err
			}
			tb.AddRow(
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", g.M()), fmt.Sprintf("%v", member),
				fmtBits(plStats.Max), fmtF(plStats.Mean), fmtBits(thm4),
				fmtBits(autoStats.Max), fmtF(autoStats.Mean),
				fmtBits(spStats.Max), fmtF(spStats.Mean), fmtBits(core.SparseTheoremBound(c, n)),
				fmtBits(nbrLab.Stats().Max), fmtBits(adjMax),
			)
		}
		tb.Notes = append(tb.Notes,
			"expected shape: labels grow ≈ n^(1/α), below sparse.max ≈ √(n log n) and far below adjmat.max ≈ n",
			"pl.* uses the worst-case Theorem 4 threshold (constant C'); auto.* fits the threshold from the degree curve — the paper's practical variant")
		tables = append(tables, tb)
	}
	return tables, nil
}

// E2ThresholdSweep reproduces the full version's threshold experiment: sweep
// the degree threshold τ, find the τ* minimizing the maximum label size, and
// compare against the predicted τ(n) = ceil((C'n/log n)^(1/α)).
func E2ThresholdSweep(cfg Config) ([]*Table, error) {
	alpha := 2.5
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 12, 1 << 13}
	}
	tb := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("predicted vs optimal threshold (Chung–Lu, α=%.1f)", alpha),
		Cols: []string{"n", "τ.auto", "max@auto", "τ.prac", "max@prac", "τ.thm4", "max@thm4",
			"τ*", "max@τ*", "auto/τ*", "auto.ratio", "thm4.ratio"},
	}
	for _, n := range sizes {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		p, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			return nil, err
		}
		thm4 := p.PowerLawThreshold()
		prac, err := core.NewPowerLawSchemePractical(alpha).Threshold(g)
		if err != nil {
			return nil, err
		}
		auto, err := core.NewPowerLawSchemeAuto().Threshold(g)
		if err != nil {
			return nil, err
		}
		maxAt := func(tau int) (int, error) {
			lab, err := core.NewFixedThresholdScheme(tau).Encode(g)
			if err != nil {
				return 0, err
			}
			return lab.Stats().Max, nil
		}
		atThm4, err := maxAt(thm4)
		if err != nil {
			return nil, err
		}
		atPrac, err := maxAt(prac)
		if err != nil {
			return nil, err
		}
		atAuto, err := maxAt(auto)
		if err != nil {
			return nil, err
		}
		// Sweep a geometric+linear grid of thresholds up to the max degree
		// (beyond which nothing changes).
		best, bestTau := atPrac, prac
		maxTau := g.MaxDegree() + 1
		seen := map[int]bool{prac: true, thm4: true, auto: true}
		if atThm4 < best {
			best, bestTau = atThm4, thm4
		}
		if atAuto < best {
			best, bestTau = atAuto, auto
		}
		for tau := 1; tau <= maxTau; tau = next(tau) {
			if seen[tau] {
				continue
			}
			seen[tau] = true
			m, err := maxAt(tau)
			if err != nil {
				return nil, err
			}
			if m < best {
				best, bestTau = m, tau
			}
		}
		tb.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", auto), fmtBits(atAuto),
			fmt.Sprintf("%d", prac), fmtBits(atPrac),
			fmt.Sprintf("%d", thm4), fmtBits(atThm4),
			fmt.Sprintf("%d", bestTau), fmtBits(best),
			fmtF2(float64(auto)/float64(bestTau)),
			fmtF2(float64(atAuto)/float64(best)),
			fmtF2(float64(atThm4)/float64(best)),
		)
	}
	tb.Notes = append(tb.Notes,
		"paper (full version): the fitted-curve threshold is reasonably close to the optimum — auto.ratio ≈ 1 confirms it",
		"the worst-case constant C' inflates the Theorem 4 threshold by C'^(1/α) ≈ 5x (thm4.ratio); fitting the real tail coefficient recovers the paper's practical behaviour")
	return []*Table{tb}, nil
}

// next advances a sweep grid: dense for small τ, ~10% steps afterwards.
func next(tau int) int {
	if tau < 16 {
		return tau + 1
	}
	step := tau / 10
	if step < 1 {
		step = 1
	}
	return tau + step
}

// E3AlphaSweep measures label size as a function of the power-law exponent
// at fixed n, exhibiting Theorem 4's n^(1/α) dependence.
func E3AlphaSweep(cfg Config) ([]*Table, error) {
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	tb := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("label bits vs α (Chung–Lu, n=%d)", n),
		Cols:  []string{"α", "m", "τ.pred", "pl.max", "pl.avg", "thm4.bound", "fit.α"},
	}
	for _, alpha := range []float64{2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7, 2.8, 2.9, 3.0} {
		g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed+int64(alpha*100))
		if err != nil {
			return nil, err
		}
		p, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			return nil, err
		}
		lab, err := core.NewPowerLawScheme(alpha).Encode(g)
		if err != nil {
			return nil, err
		}
		st := lab.Stats()
		bound, err := core.PowerLawTheoremBound(alpha, n)
		if err != nil {
			return nil, err
		}
		degrees := g.Degrees()
		fitStr := "-"
		if fit, err := powerlaw.FitAlpha(degrees); err == nil {
			fitStr = fmtF2(fit.Alpha)
		}
		tb.AddRow(fmtF(alpha), fmt.Sprintf("%d", g.M()),
			fmt.Sprintf("%d", p.PowerLawThreshold()),
			fmtBits(st.Max), fmtF(st.Mean), fmtBits(bound), fitStr)
	}
	tb.Notes = append(tb.Notes,
		"expected shape: pl.max decreases as α grows (labels ≈ n^(1/α)·(log n)^(1-1/α))")
	return []*Table{tb}, nil
}

// E4LowerBound exercises the Theorem 6 construction: embed a random graph H
// on i₁ = Θ(n^(1/α)) vertices into an n-vertex member of P_l, verify
// membership, and report the implied lower bound ⌊i₁/2⌋ next to what the
// Theorem 4 scheme actually assigns on the constructed graph.
func E4LowerBound(cfg Config) ([]*Table, error) {
	tb := &Table{
		ID:    "E4",
		Title: "lower-bound construction: G ∈ P_l containing arbitrary H (random H, p=1/2)",
		Cols:  []string{"α", "n", "i₁", "LB=⌊i₁/2⌋", "P_l?", "P_h?", "pl.max", "max/LB", "thm4/LB"},
	}
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 12, 1 << 13}
	}
	for _, alpha := range []float64{2.2, 2.5, 3.0} {
		for _, n := range sizes {
			p, err := powerlaw.NewParams(alpha, n)
			if err != nil {
				return nil, err
			}
			h := gen.ErdosRenyi(p.I1, 0.5, cfg.Seed+int64(n))
			emb, err := gen.PlEmbed(p, h)
			if err != nil {
				return nil, err
			}
			inPl := powerlaw.CheckPl(emb.G, p) == nil
			inPh := powerlaw.CheckPh(emb.G, p, 1).Member
			lab, err := core.NewPowerLawScheme(alpha).Encode(emb.G)
			if err != nil {
				return nil, err
			}
			lb := p.AdjacencyLowerBound()
			bound, err := core.PowerLawTheoremBound(alpha, n)
			if err != nil {
				return nil, err
			}
			ratio, thmRatio := math.Inf(1), math.Inf(1)
			if lb > 0 {
				ratio = float64(lab.Stats().Max) / float64(lb)
				thmRatio = float64(bound) / float64(lb)
			}
			tb.AddRow(fmtF(alpha), fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", p.I1), fmt.Sprintf("%d", lb),
				fmt.Sprintf("%v", inPl), fmt.Sprintf("%v", inPh),
				fmtBits(lab.Stats().Max), fmtF(ratio), fmtF(thmRatio))
		}
	}
	tb.Notes = append(tb.Notes,
		"the gap max/LB tracks the (log n)^(1-1/α) factor between Theorem 4 and Theorem 6",
		"P_l?=true certifies the constructed graph satisfies Definition 2 exactly")
	return []*Table{tb}, nil
}

// phMemberCheck is a shared helper for workloads that must be in P_h.
func phMemberCheck(g *graph.Graph, alpha float64) (bool, error) {
	p, err := powerlaw.NewParams(alpha, g.N())
	if err != nil {
		return false, err
	}
	return powerlaw.CheckPh(g, p, 1).Member, nil
}
