package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// E25SkewLayout measures what the degree-ordered slab layout buys under
// skewed traffic: the same Chung–Lu workload is labeled twice (id-ordered and
// degree-ordered physical layout), served through the query engine, and timed
// against probe streams of varying skew — uniform, Zipf over the degree
// ranking, and degree-proportional — at small and large batch sizes, with the
// streaming (request-order) and offset-sorted batch modes. Every
// configuration's answers are checked pair-for-pair against the id-ordered
// streaming reference before timing, so the table cannot trade correctness
// for locality. A second table re-runs the E10 bitmap-vs-list fat-label
// ablation with label sizes weighted by query mass instead of uniformly —
// under skew the hot hubs are exactly the fat vertices, so per-query cost
// follows the skew-weighted average, not the plain one.
func E25SkewLayout(cfg Config) ([]*Table, error) {
	alpha := 2.5
	n := 1 << 20
	queries := 1 << 18
	if cfg.Quick {
		n = 1 << 13
		queries = 1 << 14
	}
	raw, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Chung–Lu assigns descending weights by vertex id, so the generator's id
	// order is already degree order — the id-ordered baseline would get the
	// hub-packing under test for free. Real-world vertex ids carry no such
	// order; shuffle them so the two layouts genuinely differ.
	g, err := shuffleIDs(raw, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	encode := func(lay core.Layout) (*core.QueryEngine, error) {
		s := core.NewPowerLawScheme(alpha)
		s.SetLayout(lay)
		lab, err := s.EncodeParallel(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewQueryEngine(lab)
	}
	engID, err := encode(core.LayoutID)
	if err != nil {
		return nil, err
	}
	engDeg, err := encode(core.LayoutDegree)
	if err != nil {
		return nil, err
	}

	var dists []skewDist
	if cfg.Dist != "" {
		d, err := ParseProbeDist(cfg.Dist)
		if err != nil {
			return nil, err
		}
		s := cfg.ZipfS
		if s == 0 {
			s = 1.1
		}
		name := string(d)
		if d == DistZipf {
			name = fmt.Sprintf("zipf(s=%.1f)", s)
		}
		dists = []skewDist{{name, d, s}}
	} else {
		dists = []skewDist{
			{"uniform", DistUniform, 0},
			{"zipf(s=0.8)", DistZipf, 0.8},
			{"zipf(s=1.1)", DistZipf, 1.1},
			{"degprop", DistDegProp, 0},
		}
	}

	tb := &Table{
		ID:    "E25",
		Title: fmt.Sprintf("skew-aware layout: probe cost by distribution × layout × batch (Chung–Lu, n=%d, α=%.1f, %d queries)", n, alpha, queries),
		Cols:  []string{"dist", "layout", "batch", "mode", "ns/query", "Mq/s", "speedup.vs.id"},
	}
	layouts := []struct {
		name string
		eng  *core.QueryEngine
	}{{"id", engID}, {"degree", engDeg}}
	// idNs remembers the id-layout timing per (dist,batch,mode) so the
	// matching degree-layout row can report its speedup.
	idNs := make(map[string]float64)
	for _, d := range dists {
		ps, err := NewProbeSampler(g, d.dist, d.s, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pairs := ps.Pairs(make([][2]int, 0, queries), queries)
		ref, err := engID.AdjacentMany(pairs, make([]bool, 0, len(pairs)))
		if err != nil {
			return nil, err
		}
		for _, batch := range []int{64, 4096} {
			for _, mode := range []string{"stream", "sorted"} {
				for _, lay := range layouts {
					run := func(check bool) (time.Duration, error) {
						out := make([]bool, 0, batch)
						var sc core.BatchScratch
						start := time.Now()
						for off := 0; off < len(pairs); off += batch {
							end := min(off+batch, len(pairs))
							chunk := pairs[off:end]
							var err error
							if mode == "sorted" {
								out, err = lay.eng.AdjacentManySorted(chunk, out[:0], &sc)
							} else {
								out, err = lay.eng.AdjacentMany(chunk, out[:0])
							}
							if err != nil {
								return 0, fmt.Errorf("%s/%s/%d: %w", d.name, lay.name, batch, err)
							}
							if check {
								for i, got := range out {
									if got != ref[off+i] {
										p := pairs[off+i]
										return 0, fmt.Errorf("%s/%s/batch=%d/%s: answer mismatch at pair (%d,%d): got %v, id-ordered reference says %v",
											d.name, lay.name, batch, mode, p[0], p[1], got, ref[off+i])
									}
								}
							}
						}
						return time.Since(start), nil
					}
					// Untimed verification pass (also warms the page cache
					// evenly for both layouts), then the timed pass.
					if _, err := run(true); err != nil {
						return nil, err
					}
					elapsed, err := run(false)
					if err != nil {
						return nil, err
					}
					nsQ := float64(elapsed.Nanoseconds()) / float64(len(pairs))
					key := fmt.Sprintf("%s|%d|%s", d.name, batch, mode)
					speedup := "1.00"
					if lay.name == "id" {
						idNs[key] = nsQ
					} else if base, ok := idNs[key]; ok && nsQ > 0 {
						speedup = fmtF2(base / nsQ)
					}
					tb.AddRow(d.name, lay.name, fmt.Sprintf("%d", batch), mode,
						fmtF(nsQ), fmtF2(1e3/nsQ), speedup)
				}
			}
		}
	}
	tb.Notes = append(tb.Notes,
		"answers of every configuration are verified pair-for-pair against the id-ordered streaming reference before timing",
		"degree-ordered + sorted batches pack the hot probe stream into a few contiguous pages; the win grows with skew and batch size and vanishes under uniform traffic",
		"the (u,v) result cache (plserve -pair-cache-bits) is deliberately off here: the table isolates layout, not memoization")

	tb2, err := skewWeightedFatAblation(cfg, g, alpha, dists)
	if err != nil {
		return nil, err
	}
	return []*Table{tb, tb2}, nil
}

// shuffleIDs relabels g's vertices by a seeded random permutation.
func shuffleIDs(g *graph.Graph, seed int64) (*graph.Graph, error) {
	perm := rand.New(rand.NewSource(seed)).Perm(g.N())
	b := graph.NewBuilder(g.N())
	var addErr error
	g.Edges(func(u, v int) {
		if addErr == nil {
			addErr = b.AddEdge(perm[u], perm[v])
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	return b.Build(), nil
}

// skewDist is one probe-distribution configuration of the E25 sweep.
type skewDist struct {
	name string
	dist ProbeDist
	s    float64
}

// skewWeightedFatAblation is E10's bitmap-vs-list fat-label ablation re-run
// under query skew: instead of averaging fat-label sizes uniformly, each fat
// vertex's label is weighted by its probability of appearing in a query. The
// bitmap's flat 1+w+k cost is insensitive to the weighting; the list's cost
// concentrates on the best-connected hubs, which is exactly where skewed
// traffic lands.
func skewWeightedFatAblation(cfg Config, g *graph.Graph, alpha float64, dists []skewDist) (*Table, error) {
	scheme := core.NewPowerLawScheme(alpha)
	tau, err := scheme.Threshold(g)
	if err != nil {
		return nil, err
	}
	w := bitstr.WidthFor(uint64(g.N()))
	var fat []int
	isFat := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) >= tau {
			fat = append(fat, v)
			isFat[v] = true
		}
	}
	k := len(fat)
	tb := &Table{
		ID:    "E25",
		Title: fmt.Sprintf("fat-label bitmap-vs-list ablation under query skew (τ=%d, k=%d)", tau, k),
		Cols:  []string{"dist", "fat.query.mass", "bitmap.wavg", "list.wavg", "win"},
	}
	for _, d := range dists {
		ps, err := NewProbeSampler(g, d.dist, d.s, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			tb.AddRow(d.name, "0.000", "-", "-", "-")
			continue
		}
		var mass, bmSum, lsSum float64
		for _, v := range fat {
			p := ps.VertexProb(v)
			fatDeg := 0
			for _, u := range g.Neighbors(v) {
				if isFat[int(u)] {
					fatDeg++
				}
			}
			mass += p
			bmSum += p * float64(1+w+k)        // header + bitmap, degree-free
			lsSum += p * float64(1+w+fatDeg*w) // header + explicit fat-neighbor ids
		}
		win := "bitmap"
		if lsSum < bmSum {
			win = "list"
		}
		tb.AddRow(d.name, fmt.Sprintf("%.3f", mass), fmtF(bmSum/mass), fmtF(lsSum/mass), win)
	}
	tb.Notes = append(tb.Notes,
		"fat.query.mass is the probability a sampled endpoint is fat — skew concentrates traffic on exactly the vertices E10 ablates",
		"weights follow each distribution's vertex marginal (VertexProb); uniform reproduces E10's plain averages over the fat set")
	return tb, nil
}
