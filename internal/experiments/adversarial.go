package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/powerlaw"
)

// E21AdversarialH sweeps the structure of the embedded graph H in the
// Section 5 construction: the lower-bound argument needs H to be
// *arbitrary*, so the achieved labels on G ∈ P_l should be governed by the
// construction's global histogram — essentially independent of whether H is
// empty, a cycle, a random graph or a clique. The table confirms this: the
// labeling scheme cannot tell which H is hiding inside, which is exactly
// why ⌊i₁/2⌋ bits are forced.
func E21AdversarialH(cfg Config) ([]*Table, error) {
	alpha := 2.5
	sizes := []int{1 << 13, 1 << 15}
	if cfg.Quick {
		sizes = []int{1 << 12, 1 << 13}
	}
	tb := &Table{
		ID:    "E21",
		Title: fmt.Sprintf("lower-bound construction: achieved labels across embedded H (α=%.1f)", alpha),
		Cols:  []string{"n", "i₁", "H", "H.edges", "G.m", "P_l?", "pl.max", "auto.max"},
	}
	for _, n := range sizes {
		p, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			return nil, err
		}
		hs := []struct {
			name string
			h    *graph.Graph
		}{
			{"empty", graph.Empty(p.I1)},
			{"cycle", gen.Cycle(p.I1)},
			{"gnp(1/2)", gen.ErdosRenyi(p.I1, 0.5, cfg.Seed)},
			{"clique", gen.Complete(p.I1)},
		}
		for _, hc := range hs {
			emb, err := gen.PlEmbed(p, hc.h)
			if err != nil {
				return nil, err
			}
			inPl := powerlaw.CheckPl(emb.G, p) == nil
			plLab, err := core.NewPowerLawScheme(alpha).Encode(emb.G)
			if err != nil {
				return nil, err
			}
			autoLab, err := core.NewPowerLawSchemeAuto().Encode(emb.G)
			if err != nil {
				return nil, err
			}
			tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", p.I1),
				hc.name, fmt.Sprintf("%d", hc.h.M()), fmt.Sprintf("%d", emb.G.M()),
				fmt.Sprintf("%v", inPl),
				fmtBits(plLab.Stats().Max), fmtBits(autoLab.Stats().Max))
		}
	}
	tb.Notes = append(tb.Notes,
		"all four G's pass the exact Definition 2 verifier and have nearly identical edge counts and label sizes — the embedded H is invisible to the scheme, which is precisely the lower-bound mechanism",
		"the construction pads every vertex to its target degree, so H's own edges displace padding edges rather than change the histogram")
	return []*Table{tb}, nil
}
